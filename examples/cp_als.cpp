// CP decomposition by alternating least squares — the paper's first
// motivating workload (Section 2.3). Every MTTKRP goes through the
// SpTTN planner + fused executor.
//
//   build/examples/cp_als [--rank R] [--sweeps S]
#include <iostream>

#include "apps/decompose.hpp"
#include "tensor/generate.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace spttn;
  Cli cli("cp_als");
  const auto* rank = cli.add_int("rank", 8, "CP rank");
  const auto* sweeps = cli.add_int("sweeps", 10, "ALS sweeps");
  const auto* n = cli.add_int("n", 60, "mode size");
  const auto* seed = cli.add_int("seed", 1, "random seed");
  cli.parse(argc, argv);

  Rng rng(static_cast<std::uint64_t>(*seed));
  // Ground truth: a fully observed rank-R tensor (stored sparsely) with a
  // little noise — ALS should drive the fit toward 1. Lower the nnz target
  // to see the sparse-sample regime where the attainable fit is bounded.
  const auto nnz = static_cast<std::int64_t>(static_cast<double>(*n) *
                                             static_cast<double>(*n) *
                                             static_cast<double>(*n));
  const CooTensor t = lowrank_coo({*n, *n, *n}, static_cast<int>(*rank), nnz,
                                  0.01, rng);
  std::cout << "tensor: " << t.describe() << "\n";

  CpModel model = make_cp_model(t, static_cast<int>(*rank), rng);
  std::cout << strfmt("initial fit: %.4f\n", cp_fit(t, model));

  const AlsReport report = cp_als(t, &model, static_cast<int>(*sweeps));
  for (int s = 0; s < report.sweeps; ++s) {
    std::cout << strfmt("sweep %2d  fit %.5f\n", s + 1,
                        report.fits[static_cast<std::size_t>(s)]);
  }
  std::cout << strfmt("time in SpTTN kernels: %.3fs\n",
                      report.seconds_in_kernels);
  return 0;
}
