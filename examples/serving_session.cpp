// Serving sessions: bind a sparse tensor once, serve many contractions.
//
//   build/examples/serving_session
//
// Demonstrates the plan/format caching layer (src/serve/): a Session owns
// one CSF build + one stats extraction, every kernel resolves through the
// process-wide KernelCache (the planner search runs at most once per
// distinct kernel), and submit() overlaps independent requests on the
// thread pool. The timing table shows per-iteration plan cost collapsing
// to ~0 after the first iteration — the paper's search-once-execute-many
// value proposition made a process-wide property.
#include <iostream>
#include <vector>

#include "serve/session.hpp"
#include "tensor/generate.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

int main() {
  using namespace spttn;

  Rng rng(2026);
  const CooTensor t =
      hierarchical_coo({1200, 900, 1000}, 500, {40.0, 6.0}, rng);
  const DenseTensor u0 = random_dense({1200, 32}, rng);
  const DenseTensor u1 = random_dense({900, 32}, rng);
  const DenseTensor u2 = random_dense({1000, 32}, rng);
  std::cout << "sparse tensor: " << t.describe() << "\n\n";

  // Bind once: CSF + exact sparsity statistics + structure fingerprint.
  Session session(t);

  // Prepare the CP-ALS per-mode MTTKRP family. Each prepare() is a cache
  // miss the first time (planner search runs) and a pure lookup from then
  // on — including in future sessions over the same structure.
  const std::vector<std::string> exprs = {
      "M0(i,r) = T(i,j,k) * U1(j,r) * U2(k,r)",
      "M1(j,r) = T(i,j,k) * U0(i,r) * U2(k,r)",
      "M2(k,r) = T(i,j,k) * U0(i,r) * U1(j,r)",
  };
  const std::vector<std::vector<const DenseTensor*>> factors = {
      {&u1, &u2}, {&u0, &u2}, {&u0, &u1}};

  std::cout << "iter   prepare[ms]   exec[ms]   (prepare = parse+bind+plan; "
               "hits skip the search)\n";
  std::vector<int> ids(exprs.size(), -1);
  for (int iter = 0; iter < 4; ++iter) {
    // Fresh session per iteration to show the cross-session amortization;
    // within one session prepare() is memoized by expression anyway.
    Session s(t);
    Timer prep_t;
    for (std::size_t m = 0; m < exprs.size(); ++m) {
      ids[m] = s.prepare(exprs[m], factors[m]);
    }
    const double prep_ms = prep_t.millis();
    Timer exec_t;
    for (std::size_t m = 0; m < exprs.size(); ++m) {
      DenseTensor out = s.make_output(ids[m]);
      s.run(ids[m], &out);
    }
    std::cout << strfmt("%4d   %11.3f   %8.3f\n", iter + 1, prep_ms,
                        exec_t.millis());
  }

  // Batched service: submit() enqueues executions on the process pool and
  // returns waitable handles; independent requests overlap on pool lanes.
  for (std::size_t m = 0; m < exprs.size(); ++m) {
    ids[m] = session.prepare(exprs[m], factors[m]);
  }
  std::vector<DenseTensor> outs;
  for (std::size_t m = 0; m < exprs.size(); ++m) {
    outs.push_back(session.make_output(ids[m]));
  }
  Timer batch_t;
  std::vector<TaskHandle> handles;
  for (std::size_t m = 0; m < exprs.size(); ++m) {
    handles.push_back(session.submit(ids[m], &outs[m]));
  }
  for (auto& h : handles) h.wait();
  std::cout << "\nbatched 3 MTTKRPs via submit(): "
            << strfmt("%.3f", batch_t.millis()) << " ms\n";

  const auto c = KernelCache::global().counters();
  std::cout << "\nglobal KernelCache: " << c.hits << " hits, " << c.misses
            << " misses, " << c.evictions << " evictions, " << c.entries
            << " resident entries\n";
  std::cout << "(every iteration after the first served its plans from the "
               "cache — the planner searched exactly once per kernel)\n";
  return 0;
}
