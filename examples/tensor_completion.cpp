// Sparse tensor completion — the paper's TTTP workload (Section 2.3).
// Each epoch evaluates the model on the observed pattern (a TTTP kernel)
// and takes a gradient step per factor (MTTKRP kernels on the residual).
//
//   build/examples/tensor_completion [--rank R] [--epochs E]
#include <iostream>

#include "apps/decompose.hpp"
#include "tensor/generate.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace spttn;
  Cli cli("tensor_completion");
  const auto* rank = cli.add_int("rank", 4, "CP rank of the model");
  const auto* epochs = cli.add_int("epochs", 40, "gradient epochs");
  const auto* step = cli.add_double("step", 0.03, "gradient step size");
  const auto* n = cli.add_int("n", 40, "mode size");
  const auto* seed = cli.add_int("seed", 3, "random seed");
  cli.parse(argc, argv);

  Rng rng(static_cast<std::uint64_t>(*seed));
  // Observed entries of a low-rank ground truth (5% observed).
  const auto nnz = static_cast<std::int64_t>(
      0.05 * static_cast<double>(*n) * static_cast<double>(*n) *
      static_cast<double>(*n));
  const CooTensor observed =
      lowrank_coo({*n, *n, *n}, static_cast<int>(*rank), nnz, 0.005, rng);
  std::cout << "observations: " << observed.describe() << "\n";

  CpModel model = make_cp_model(observed, static_cast<int>(*rank), rng);
  const CompletionReport report =
      cp_complete(observed, &model, static_cast<int>(*epochs), *step);
  for (int e = 0; e < report.epochs; e += 5) {
    std::cout << strfmt("epoch %3d  observed RMSE %.5f\n", e,
                        report.rmse[static_cast<std::size_t>(e)]);
  }
  std::cout << strfmt("final RMSE %.5f (started at %.5f)\n",
                      report.rmse.back(), report.rmse.front());
  std::cout << strfmt("time in SpTTN kernels: %.3fs\n",
                      report.seconds_in_kernels);
  return 0;
}
