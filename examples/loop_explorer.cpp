// Loop-nest explorer: type any SpTTN einsum and inspect what the planner
// sees — every executable contraction path, the cost-optimal loop nest per
// path, and the chosen plan rendered as pseudocode.
//
//   build/examples/loop_explorer --expr "S(i,r,s) = T(i,j,k)*U(j,r)*V(k,s)" --sparse-dim 200 --rank 16
#include <iostream>

#include "core/enumerate.hpp"
#include "core/order_dp.hpp"
#include "exec/spttn.hpp"
#include "tensor/generate.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace spttn;
  Cli cli("loop_explorer");
  const auto* expr = cli.add_string(
      "expr", "S(i,r,s) = T(i,j,k)*U(j,r)*V(k,s)", "kernel expression");
  const auto* sparse_dim = cli.add_int("sparse-dim", 200, "sparse mode size");
  const auto* rank = cli.add_int("rank", 16, "dense index extent");
  const auto* sparsity = cli.add_double("sparsity", 0.01, "nnz fraction");
  const auto* bound = cli.add_int("bound", 2, "buffer dimension bound");
  const auto* seed = cli.add_int("seed", 5, "random seed");
  cli.parse(argc, argv);

  Rng rng(static_cast<std::uint64_t>(*seed));
  Kernel probe = Kernel::parse(*expr);
  std::vector<std::int64_t> sdims(
      static_cast<std::size_t>(probe.sparse_ref().order()), *sparse_dim);
  double space = 1;
  for (auto d : sdims) space *= static_cast<double>(d);
  const CooTensor t = random_coo(
      sdims, static_cast<std::int64_t>(space * *sparsity) + 1, rng);

  std::vector<DenseTensor> factors;
  std::vector<const DenseTensor*> ptrs;
  for (int i = 0; i < probe.num_inputs(); ++i) {
    if (i == probe.sparse_input()) continue;
    std::vector<std::int64_t> dims;
    for (int id : probe.input(i).idx) {
      const int lvl = probe.csf_level(id);
      dims.push_back(lvl >= 0 ? sdims[static_cast<std::size_t>(lvl)] : *rank);
    }
    factors.push_back(random_dense(dims, rng));
  }
  for (const auto& f : factors) ptrs.push_back(&f);
  const BoundKernel bk = bind(*expr, t, ptrs);

  std::cout << "kernel:  " << bk.kernel.to_string() << "\n";
  std::cout << "dims:    " << bk.kernel.dims_to_string() << "\n";
  std::cout << "tensor:  " << t.describe() << "\n\n";

  int total = 0;
  const auto paths = executable_paths(bk.kernel, bk.stats, &total);
  std::cout << total << " contraction paths enumerated, " << paths.size()
            << " single-CSF executable:\n\n";

  const BoundedBufferBlasCost cost(static_cast<int>(*bound), 1, &bk.stats,
                                   true);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const double flops = path_flops(bk.kernel, paths[i], bk.stats);
    const double orders = count_orders(bk.kernel, paths[i], true);
    std::cout << "path " << i + 1 << ": " << paths[i].to_string(bk.kernel)
              << "\n  ~" << human_count(flops) << " flops, "
              << human_count(orders) << " CSF-consistent loop orders\n";
    const DpResult dp = optimal_order(bk.kernel, paths[i], cost);
    if (dp.feasible) {
      std::cout << "  optimal order " << order_to_string(bk.kernel, dp.best)
                << "  cost " << dp.best_cost.to_string() << "  ("
                << dp.subproblems << " DP subproblems)\n";
    } else {
      std::cout << "  no loop nest within buffer bound " << *bound << "\n";
    }
  }

  PlannerOptions opts;
  opts.buffer_dim_bound = static_cast<int>(*bound);
  const Plan plan = plan_kernel(bk, opts);
  std::cout << "\n=== chosen plan ===\n" << plan.describe(bk.kernel);
  return 0;
}
