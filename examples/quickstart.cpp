// Quickstart: plan and execute one SpTTN kernel (MTTKRP) end to end.
//
//   build/examples/quickstart
//
// Shows the three-call public API: bind -> plan_kernel -> run_plan, plus
// the plan introspection (chosen contraction path, loop nest, buffers).
#include <iostream>

#include "exec/spttn.hpp"
#include "tensor/generate.hpp"
#include "util/rng.hpp"

int main() {
  using namespace spttn;

  // A sparse 3-way tensor with realistic fiber structure.
  Rng rng(2024);
  const CooTensor t = hierarchical_coo({1000, 800, 900}, 400, {40.0, 6.0},
                                       rng);
  std::cout << "sparse tensor: " << t.describe() << "\n";

  // Dense CP factors.
  const DenseTensor b = random_dense({800, 32}, rng);
  const DenseTensor c = random_dense({900, 32}, rng);

  // 1) Bind the kernel expression to tensors (dims inferred, CSF built).
  const BoundKernel bound =
      bind("A(i,r) = T(i,j,k) * B(j,r) * C(k,r)", t, {&b, &c});

  // 2) Plan: enumerate contraction paths, run Algorithm 1, pick the
  //    minimum-cost fully-fused loop nest.
  const Plan plan = plan_kernel(bound);
  std::cout << "\n--- chosen plan ---\n" << plan.describe(bound.kernel);
  std::cout << "paths: " << plan.paths_executable << " executable of "
            << plan.paths_total << " enumerated; DP solved "
            << plan.dp_subproblems << " subproblems\n";

  // 3) Execute.
  DenseTensor a = make_output(bound);
  run_plan(bound, plan, &a, {});
  std::cout << "\noutput " << a.describe() << ", |A| = " << a.norm() << "\n";
  return 0;
}
