// Distributed-memory SpTTN execution: cyclic layout over a processor
// grid, per-rank local kernels, collectives through a pluggable backend
// (paper Section 5.2) — modeled alpha-beta charges by default, measured
// shared-memory movement with --backend shmem.
//
//   build/examples/distributed_scaling [--ranks 16] [--kernel mttkrp|ttmc]
//                                      [--backend modeled|shmem]
#include <iostream>

#include "dist/comm_backend.hpp"
#include "dist/dist_spttn.hpp"
#include "exec/spttn.hpp"
#include "tensor/generate.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace spttn;
  Cli cli("distributed_scaling");
  const auto* max_ranks = cli.add_int("ranks", 16, "largest rank count");
  const auto* n = cli.add_int("n", 300, "mode size");
  const auto* rank = cli.add_int("rank", 16, "dense rank");
  const auto* kernel_name =
      cli.add_string("kernel", "mttkrp", "mttkrp or ttmc");
  const auto* seed = cli.add_int("seed", 4, "random seed");
  const auto* backend =
      cli.add_string("backend", "modeled",
                     "comm backend: modeled (alpha-beta) or shmem (measured)");
  cli.parse(argc, argv);

  Rng rng(static_cast<std::uint64_t>(*seed));
  const CooTensor t = hierarchical_coo({*n, *n, *n}, *n / 2, {30.0, 5.0},
                                       rng);
  const DenseTensor u = random_dense({*n, *rank}, rng);
  const DenseTensor v = random_dense({*n, *rank}, rng);

  const std::string expr =
      *kernel_name == "ttmc" ? "S(i,r,s) = T(i,j,k)*U(j,r)*V(k,s)"
                             : "A(i,r) = T(i,j,k)*U(j,r)*V(k,r)";
  const BoundKernel bound = bind(expr, t, {&u, &v});
  std::cout << "kernel: " << bound.kernel.to_string() << "\n"
            << "tensor: " << t.describe() << "\n\n";
  std::cout << "ranks  grid        local[s]  comm[s]   total[s]  speedup  "
               "imbalance\n";

  double t1 = 0;
  for (int p = 1; p <= *max_ranks; p *= 2) {
    DistSpttn dist(bound, p);
    const auto comm = make_comm_backend(*backend, p);
    // Sequential ranks: this table reads per-rank seconds, so don't let
    // concurrently scheduled ranks time-share the cores under the timer.
    const DistResult r = dist.run(*comm, {}, nullptr, {},
                                  /*local_threads=*/1,
                                  /*concurrent_ranks=*/false);
    if (p == 1) t1 = r.time();
    std::cout << strfmt("%5d  %-10s  %.5f   %.6f  %.5f   %5.2fx   %.2f\n", p,
                        r.grid.describe().c_str(), r.max_local_seconds,
                        r.comm_seconds, r.time(), t1 / r.time(), r.imbalance);
  }
  std::cout << "\n(local kernel times are measured per rank; collectives "
            << (*backend == "modeled"
                    ? "follow the alpha-beta model of src/dist/comm_model.hpp"
                    : "are measured around real buffer movement")
            << ")\n";
  return 0;
}
