// Tucker decomposition by HOOI — the paper's TTMc workload (Section 2.3).
// Each sweep runs three mode-wise TTMc kernels plus one all-mode TTMc for
// the core, all planned by the SpTTN stack.
//
//   build/examples/tucker_hooi [--ranks R] [--sweeps S]
#include <cmath>
#include <iostream>

#include "apps/decompose.hpp"
#include "tensor/generate.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace spttn;
  Cli cli("tucker_hooi");
  const auto* rank = cli.add_int("ranks", 6, "Tucker ranks (same per mode)");
  const auto* sweeps = cli.add_int("sweeps", 6, "HOOI sweeps");
  const auto* n = cli.add_int("n", 50, "mode size");
  const auto* seed = cli.add_int("seed", 2, "random seed");
  cli.parse(argc, argv);

  Rng rng(static_cast<std::uint64_t>(*seed));
  const auto nnz = static_cast<std::int64_t>(
      0.08 * static_cast<double>(*n) * static_cast<double>(*n) *
      static_cast<double>(*n));
  const CooTensor t =
      lowrank_coo({*n, *n, *n}, static_cast<int>(*rank), nnz, 0.02, rng);
  double tnorm = 0;
  for (double v : t.values()) tnorm += v * v;
  tnorm = std::sqrt(tnorm);
  std::cout << "tensor: " << t.describe() << "  |T| = " << tnorm << "\n";

  TuckerModel model = make_tucker_model(t, {*rank, *rank, *rank}, rng);
  const HooiReport report = tucker_hooi(t, &model, static_cast<int>(*sweeps));
  for (int s = 0; s < report.sweeps; ++s) {
    const double g = report.core_norms[static_cast<std::size_t>(s)];
    std::cout << strfmt("sweep %2d  |core| %.4f  (captured %.1f%% of |T|)\n",
                        s + 1, g, 100.0 * g / tnorm);
  }
  std::cout << strfmt("time in SpTTN kernels: %.3fs\n",
                      report.seconds_in_kernels);
  return 0;
}
