// Dedicated tests for the CTF-style pairwise engine: path selection,
// statistics, memory-cap behaviour, and mixed operand kinds.
#include <gtest/gtest.h>

#include "exec/pairwise.hpp"
#include "exec/reference.hpp"
#include "test_helpers.hpp"

namespace spttn {
namespace {

using testing::paper_kernels;

TEST(PairwiseStats, OpsAndPeakArePlausible) {
  const auto inst = testing::make_instance(paper_kernels()[0], 5150);
  const Kernel& k = inst->bound.kernel;
  const ContractionPath path = pairwise_best_path(k, inst->bound.stats);
  DenseTensor out = make_output(inst->bound);
  const PairwiseStats st = pairwise_execute(
      k, path, inst->sparse, inst->dense_slots(), &out, {});
  // At least one multiply per nonzero per rank column.
  EXPECT_GE(st.total_scalar_ops, inst->sparse.nnz());
  EXPECT_GT(st.peak_intermediate_entries, 0);
}

TEST(PairwiseMemoryCap, ThrowsWhenIntermediateExceedsBudget) {
  const auto inst = testing::make_instance(paper_kernels()[2], 5151);
  const Kernel& k = inst->bound.kernel;
  const ContractionPath path = pairwise_best_path(k, inst->bound.stats);
  DenseTensor out = make_output(inst->bound);
  EXPECT_THROW(pairwise_execute(k, path, inst->sparse, inst->dense_slots(),
                                &out, {}, /*max_entries=*/4),
               Error);
}

TEST(PairwisePathChoice, PrefersSparseChainForTttp) {
  // The fused-optimistic estimate would pick the dense (U*V) pre-product;
  // a pairwise framework must not, because that intermediate materializes
  // densely. The chosen first term must involve the sparse tensor.
  const auto inst = testing::make_instance(paper_kernels()[4], 5152);
  const Kernel& k = inst->bound.kernel;
  const ContractionPath path = pairwise_best_path(k, inst->bound.stats);
  const PathTerm& first = path.terms.front();
  const bool sparse_first =
      (first.lhs.kind == PathOperand::Kind::kInput &&
       first.lhs.id == k.sparse_input()) ||
      (first.rhs.kind == PathOperand::Kind::kInput &&
       first.rhs.id == k.sparse_input());
  EXPECT_TRUE(sparse_first) << path.to_string(k);
}

TEST(PairwiseFlops, DensePreProductCostsMoreThanChain) {
  const auto inst = testing::make_instance(paper_kernels()[4], 5153);
  const Kernel& k = inst->bound.kernel;
  double chain_cost = -1;
  double dense_first_cost = -1;
  for (const auto& p : enumerate_paths(k)) {
    const PathTerm& first = p.terms.front();
    const bool sparse_first =
        (first.lhs.kind == PathOperand::Kind::kInput &&
         first.lhs.id == k.sparse_input()) ||
        (first.rhs.kind == PathOperand::Kind::kInput &&
         first.rhs.id == k.sparse_input());
    const double c = pairwise_path_flops(k, p, inst->bound.stats);
    if (sparse_first) {
      if (chain_cost < 0 || c < chain_cost) chain_cost = c;
    } else {
      if (dense_first_cost < 0 || c < dense_first_cost) dense_first_cost = c;
    }
  }
  ASSERT_GT(chain_cost, 0);
  ASSERT_GT(dense_first_cost, 0);
  EXPECT_LT(chain_cost, dense_first_cost);
}

TEST(PairwiseEdgeCases, EmptySparseTensor) {
  CooTensor empty({4, 4, 4});
  empty.sort_dedup();
  Rng rng(1);
  const DenseTensor b = random_dense({4, 3}, rng);
  const DenseTensor c = random_dense({4, 3}, rng);
  const BoundKernel bound =
      bind("A(i,r) = T(i,j,k)*B(j,r)*C(k,r)", empty, {&b, &c});
  const ContractionPath path = pairwise_best_path(bound.kernel, bound.stats);
  DenseTensor out = make_output(bound);
  out.fill(3.0);
  pairwise_execute(bound.kernel, path, empty, bound.dense, &out, {});
  EXPECT_DOUBLE_EQ(out.norm(), 0.0);
}

TEST(PairwiseEdgeCases, SingleContractionKernel) {
  // Two-input kernel: the single term writes the output directly.
  Rng rng(2);
  CooTensor t = random_coo({6, 5}, 12, rng);
  const DenseTensor x = random_dense({5}, rng);
  const BoundKernel bound = bind("y(i) = T(i,j)*x(j)", t, {&x});
  const ContractionPath path = pairwise_best_path(bound.kernel, bound.stats);
  DenseTensor got = make_output(bound);
  pairwise_execute(bound.kernel, path, t, bound.dense, &got, {});
  DenseTensor want = make_output(bound);
  reference_execute(bound.kernel, t, bound.dense, &want, {});
  EXPECT_LT(want.max_abs_diff(got), 1e-12);
}

}  // namespace
}  // namespace spttn
