// Shared fixtures for the spttn test suite: kernel templates from the paper
// plus randomized instantiation helpers.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "exec/spttn.hpp"
#include "tensor/generate.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace spttn::testing {

/// Pin the global pool to real lanes for the scope of a test (single-core
/// CI boxes otherwise degrade the pool to one inline lane and the nested
/// partitioner correctly refuses to over-split), then restore the default
/// on destruction — including on early return from a failed ASSERT, so one
/// failure cannot leak a pinned pool into later tests.
struct ScopedLanes {
  explicit ScopedLanes(int lanes) { ThreadPool::set_global_threads(lanes); }
  ~ScopedLanes() { ThreadPool::set_global_threads(0); }
  ScopedLanes(const ScopedLanes&) = delete;
  ScopedLanes& operator=(const ScopedLanes&) = delete;
};

/// A kernel template: expression plus the dimensions of every index.
struct KernelCase {
  std::string name;
  std::string expr;
  std::vector<std::pair<std::string, std::int64_t>> dims;
  double sparsity = 0.05;  ///< fraction of nonzero coordinates

  std::vector<std::int64_t> sparse_dims() const {
    // Dims of the first input's indices, in order.
    Kernel k = Kernel::parse(expr);
    std::vector<std::int64_t> out;
    for (int id : k.sparse_ref().idx) {
      for (const auto& [n, d] : dims) {
        if (n == k.index_name(id)) out.push_back(d);
      }
    }
    return out;
  }

  std::int64_t dim_of(const std::string& name) const {
    for (const auto& [n, d] : dims) {
      if (n == name) return d;
    }
    return -1;
  }
};

/// The paper's kernel families (Section 2.3) at test-friendly sizes, plus a
/// few stress shapes (shared factor indices, all-mode contraction, deep
/// chains).
inline std::vector<KernelCase> paper_kernels() {
  return {
      {"mttkrp3", "A(i,r) = T(i,j,k)*B(j,r)*C(k,r)",
       {{"i", 9}, {"j", 7}, {"k", 8}, {"r", 5}}, 0.08},
      {"mttkrp4", "A(i,r) = T(i,j,k,l)*B(j,r)*C(k,r)*D(l,r)",
       {{"i", 6}, {"j", 5}, {"k", 4}, {"l", 5}, {"r", 4}}, 0.04},
      {"ttmc3", "S(i,r,s) = T(i,j,k)*U(j,r)*V(k,s)",
       {{"i", 8}, {"j", 6}, {"k", 7}, {"r", 4}, {"s", 5}}, 0.08},
      {"ttmc4", "S(i,r,s,t) = T(i,j,k,l)*U(j,r)*V(k,s)*W(l,t)",
       {{"i", 5}, {"j", 4}, {"k", 5}, {"l", 4}, {"r", 3}, {"s", 3}, {"t", 3}},
       0.05},
      {"tttp3", "S(i,j,k) = T(i,j,k)*U(i,r)*V(j,r)*W(k,r)",
       {{"i", 8}, {"j", 7}, {"k", 6}, {"r", 5}}, 0.08},
      {"allmode_ttmc3", "S(r,s,u) = T(i,j,k)*U(i,r)*V(j,s)*W(k,u)",
       {{"i", 7}, {"j", 6}, {"k", 5}, {"r", 4}, {"s", 3}, {"u", 4}}, 0.08},
      {"tttc4", "Z(e,n) = T(i,j,k,n)*A(i,a)*B(a,j,b)*C(b,k,e)",
       {{"i", 5}, {"j", 4}, {"k", 4}, {"n", 3}, {"a", 3}, {"b", 3}, {"e", 3}},
       0.06},
      {"spmv_like", "y(i) = T(i,j)*x(j)", {{"i", 16}, {"j", 12}}, 0.2},
      {"sddmm_like", "S(i,j) = T(i,j)*U(i,r)*V(j,r)",
       {{"i", 10}, {"j", 9}, {"r", 6}}, 0.15},
      {"shared_factor", "A(i,r) = T(i,j,k)*B(j,r)*C(j,k,r)",
       {{"i", 6}, {"j", 5}, {"k", 6}, {"r", 4}}, 0.08},
  };
}

/// Instantiated problem: tensors generated deterministically from a seed.
/// Heap-allocated so that BoundKernel's internal pointers stay valid.
struct Instance {
  CooTensor sparse;
  std::vector<DenseTensor> factors;  // owned; order of appearance
  BoundKernel bound;                 // references sparse/factors

  std::span<const DenseTensor* const> dense_slots() const {
    return bound.dense;
  }
};

inline std::unique_ptr<Instance> make_instance(const KernelCase& kc,
                                               std::uint64_t seed) {
  Rng rng(seed);
  auto out = std::make_unique<Instance>();
  Kernel k = Kernel::parse(kc.expr);
  const auto sdims = kc.sparse_dims();
  double space = 1;
  for (auto d : sdims) space *= static_cast<double>(d);
  const auto nnz = static_cast<std::int64_t>(space * kc.sparsity) + 1;
  out->sparse = random_coo(sdims, nnz, rng);
  // Generate factors in order of appearance.
  for (int i = 0; i < k.num_inputs(); ++i) {
    if (i == k.sparse_input()) continue;
    std::vector<std::int64_t> dims;
    for (int id : k.input(i).idx) {
      dims.push_back(kc.dim_of(k.index_name(id)));
    }
    out->factors.push_back(random_dense(dims, rng));
  }
  std::vector<const DenseTensor*> ptrs;
  for (const auto& f : out->factors) ptrs.push_back(&f);
  out->bound = spttn::bind(kc.expr, out->sparse, ptrs);
  return out;
}

}  // namespace spttn::testing
