// Shared fixtures for the spttn test suite: kernel templates from the paper
// plus randomized instantiation helpers.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/kernel_suite.hpp"
#include "exec/spttn.hpp"
#include "tensor/generate.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace spttn::testing {

/// Pin the global pool to real lanes for the scope of a test (single-core
/// CI boxes otherwise degrade the pool to one inline lane and the nested
/// partitioner correctly refuses to over-split), then restore the default
/// on destruction — including on early return from a failed ASSERT, so one
/// failure cannot leak a pinned pool into later tests.
struct ScopedLanes {
  explicit ScopedLanes(int lanes) { ThreadPool::set_global_threads(lanes); }
  ~ScopedLanes() { ThreadPool::set_global_threads(0); }
  ScopedLanes(const ScopedLanes&) = delete;
  ScopedLanes& operator=(const ScopedLanes&) = delete;
};

/// Kernel templates and instantiation live in the library's shared suite
/// (analysis/kernel_suite.hpp) so the lint tool, the verifier bench, and
/// the tests all iterate the same kernels; these aliases keep the
/// historical testing:: names working.
using KernelCase = SuiteKernel;
using Instance = SuiteInstance;

/// The paper's kernel families (Section 2.3) at test-friendly sizes, plus a
/// few stress shapes (shared factor indices, all-mode contraction, deep
/// chains).
inline std::vector<KernelCase> paper_kernels() { return paper_kernel_suite(); }

inline std::unique_ptr<Instance> make_instance(const KernelCase& kc,
                                               std::uint64_t seed) {
  return make_suite_instance(kc, seed);
}

}  // namespace spttn::testing
