// Tests for the extension APIs beyond the paper's evaluated system: CSF
// storage-order search and measurement-based autotuning.
#include <gtest/gtest.h>

#include "exec/reference.hpp"
#include "exec/spttn.hpp"
#include "test_helpers.hpp"

namespace spttn {
namespace {

using testing::paper_kernels;

TEST(PermuteModes, PhysicallyReordersCoordinates) {
  CooTensor t({4, 5, 6});
  t.push_back({1, 2, 3}, 7.0);
  t.push_back({0, 4, 5}, 2.0);
  t.sort_dedup();
  const CooTensor p = permute_sparse_modes(t, {2, 0, 1});
  EXPECT_EQ(p.dims(), (std::vector<std::int64_t>{6, 4, 5}));
  ASSERT_EQ(p.nnz(), 2);
  // Sorted order after permutation: (3,1,2)=7 then (5,0,4)=2.
  EXPECT_EQ(p.coord(0)[0], 3);
  EXPECT_EQ(p.coord(0)[1], 1);
  EXPECT_EQ(p.coord(0)[2], 2);
  EXPECT_DOUBLE_EQ(p.value(0), 7.0);
}

TEST(RewriteExpr, PermutesOnlySparseOperand) {
  const std::string out = rewrite_expr_with_csf_order(
      "A(i,a) = T(i,j,k)*B(j,a)*C(k,a)", {2, 0, 1});
  EXPECT_EQ(out, "A(i,a) = T(k,i,j) * B(j,a) * C(k,a)");
}

TEST(CsfSearch, IdentityIsOptimalForSymmetricTensor) {
  // With identical mode extents and uniform sparsity no permutation should
  // beat the identity by model cost — and the search must return an
  // executable result.
  const auto inst = testing::make_instance(paper_kernels()[0], 808);
  std::vector<const DenseTensor*> dense;
  for (const auto& f : inst->factors) dense.push_back(&f);
  const CsfSearchResult r = search_csf_orders(
      paper_kernels()[0].expr, inst->sparse, dense);
  EXPECT_EQ(r.mode_order.size(), 3u);
  EXPECT_FALSE(r.expr.empty());
}

TEST(CsfSearch, PermutedProblemExecutesCorrectly) {
  const auto inst = testing::make_instance(paper_kernels()[2], 809);
  std::vector<const DenseTensor*> dense;
  for (const auto& f : inst->factors) dense.push_back(&f);
  const CsfSearchResult r =
      search_csf_orders(paper_kernels()[2].expr, inst->sparse, dense);
  const CooTensor permuted =
      permute_sparse_modes(inst->sparse, r.mode_order);
  const BoundKernel bound = bind(r.expr, permuted, dense);
  const Plan plan = plan_kernel(bound);
  DenseTensor got = make_output(bound);
  run_plan(bound, plan, &got, {});
  // The reference on the ORIGINAL problem must agree (outputs have the
  // same index meaning; only the sparse storage order changed).
  DenseTensor want = make_output(inst->bound);
  reference_execute(inst->bound.kernel, inst->sparse, inst->dense_slots(),
                    &want, {});
  EXPECT_LT(want.max_abs_diff(got), 1e-9);
}

TEST(Autotune, ReturnsRunnableFastPlan) {
  const auto inst = testing::make_instance(paper_kernels()[2], 810);
  const AutotuneResult r = autotune_kernel(inst->bound);
  EXPECT_GT(r.candidates, 2);
  EXPECT_GT(r.best_seconds, 0.0);
  // The tuned plan must execute and agree with the reference.
  DenseTensor got = make_output(inst->bound);
  run_plan(inst->bound, r.best, &got, {});
  DenseTensor want = make_output(inst->bound);
  reference_execute(inst->bound.kernel, inst->sparse, inst->dense_slots(),
                    &want, {});
  EXPECT_LT(want.max_abs_diff(got), 1e-9);
}

TEST(Autotune, WorksOnSparseOutputKernels) {
  const auto inst = testing::make_instance(paper_kernels()[4], 811);  // tttp
  const AutotuneResult r = autotune_kernel(inst->bound, {}, 2, 2, 1);
  EXPECT_GT(r.candidates, 0);
  std::vector<double> got(static_cast<std::size_t>(inst->sparse.nnz()));
  run_plan(inst->bound, r.best, nullptr, got);
  std::vector<double> want(got.size());
  reference_execute(inst->bound.kernel, inst->sparse, inst->dense_slots(),
                    nullptr, want);
  for (std::size_t e = 0; e < got.size(); ++e) {
    ASSERT_NEAR(got[e], want[e], 1e-9);
  }
}

}  // namespace
}  // namespace spttn
