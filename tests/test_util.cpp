#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/error.hpp"
#include "util/index_set.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace spttn {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowInRangeAndCoversValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextInBounds) {
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NormalHasReasonableMoments) {
  Rng rng(13);
  double sum = 0;
  double sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.next_below(0), Error);
}

TEST(IndexSet, BasicOps) {
  IndexSet s{1, 3, 5};
  EXPECT_TRUE(s.contains(1));
  EXPECT_FALSE(s.contains(2));
  EXPECT_EQ(s.size(), 3);
  s.erase(3);
  EXPECT_FALSE(s.contains(3));
  EXPECT_EQ(s.size(), 2);
  s.insert(63);
  EXPECT_TRUE(s.contains(63));
}

TEST(IndexSet, SetAlgebra) {
  IndexSet a{0, 1, 2};
  IndexSet b{2, 3};
  EXPECT_EQ((a | b), (IndexSet{0, 1, 2, 3}));
  EXPECT_EQ((a & b), (IndexSet{2}));
  EXPECT_EQ((a - b), (IndexSet{0, 1}));
  EXPECT_TRUE((IndexSet{0, 1}).subset_of(a));
  EXPECT_FALSE(a.subset_of(b));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE((IndexSet{5}).intersects(a));
}

TEST(IndexSet, IterationAscending) {
  IndexSet s{9, 2, 40};
  std::vector<int> got;
  for (int id : s.elements()) got.push_back(id);
  EXPECT_EQ(got, (std::vector<int>{2, 9, 40}));
  EXPECT_EQ(s.to_vector(), got);
}

TEST(IndexSet, EmptyAndBoundsChecks) {
  IndexSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0);
  EXPECT_FALSE(s.contains(-1));
  EXPECT_FALSE(s.contains(64));
  EXPECT_THROW(s.insert(64), Error);
}

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
}

TEST(Strings, TrimAndStrip) {
  EXPECT_EQ(trim("  x y \n"), "x y");
  EXPECT_EQ(strip_whitespace(" a b\tc\n"), "abc");
}

TEST(Strings, FormatAndHuman) {
  EXPECT_EQ(strfmt("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(human_count(1.5e6), "1.5M");
  EXPECT_EQ(human_count(12), "12");
  EXPECT_EQ(join({"a", "b"}, "+"), "a+b");
}

TEST(Stats, SummaryBasics) {
  const Summary s = summarize({3, 1, 2});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 3);
  EXPECT_DOUBLE_EQ(s.median, 2);
  EXPECT_DOUBLE_EQ(s.mean, 2);
}

TEST(Stats, EvenMedianAndEmpty) {
  EXPECT_DOUBLE_EQ(summarize({1, 2, 3, 4}).median, 2.5);
  EXPECT_EQ(summarize({}).count, 0u);
}

TEST(Table, RendersAlignedRows) {
  Table t("demo");
  t.set_header({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  t.add_note("a note");
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("note: a note"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t("demo");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(ErrorMacros, CheckMessages) {
  try {
    SPTTN_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace spttn
