#include <gtest/gtest.h>

#include <vector>

#include "util/cli.hpp"
#include "util/error.hpp"

namespace spttn {
namespace {

/// argv builder (strings must outlive the char* views).
struct Argv {
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
  explicit Argv(std::initializer_list<const char*> args) {
    storage.emplace_back("prog");
    for (const char* a : args) storage.emplace_back(a);
    for (auto& s : storage) ptrs.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs.size()); }
  char** argv() { return ptrs.data(); }
};

TEST(Cli, ParsesAllValueForms) {
  Cli cli("t");
  const auto* i = cli.add_int("count", 1, "");
  const auto* d = cli.add_double("ratio", 0.5, "");
  const auto* b = cli.add_bool("fast", false, "");
  const auto* s = cli.add_string("name", "x", "");
  Argv a({"--count=7", "--ratio", "2.5", "--fast", "--name=hello"});
  cli.parse(a.argc(), a.argv());
  EXPECT_EQ(*i, 7);
  EXPECT_DOUBLE_EQ(*d, 2.5);
  EXPECT_TRUE(*b);
  EXPECT_EQ(*s, "hello");
}

TEST(Cli, DefaultsSurviveWhenUnset) {
  Cli cli("t");
  const auto* i = cli.add_int("count", 42, "");
  Argv a({});
  cli.parse(a.argc(), a.argv());
  EXPECT_EQ(*i, 42);
}

TEST(Cli, BoolAcceptsExplicitFalse) {
  Cli cli("t");
  const auto* b = cli.add_bool("fast", true, "");
  Argv a({"--fast=false"});
  cli.parse(a.argc(), a.argv());
  EXPECT_FALSE(*b);
}

TEST(Cli, UnknownFlagThrowsWithUsage) {
  Cli cli("t");
  cli.add_int("count", 1, "the count");
  Argv a({"--nope=3"});
  try {
    cli.parse(a.argc(), a.argv());
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("--count"), std::string::npos);
  }
}

TEST(Cli, PositionalArgumentRejected) {
  Cli cli("t");
  Argv a({"stray"});
  EXPECT_THROW(cli.parse(a.argc(), a.argv()), Error);
}

TEST(Cli, MissingValueRejected) {
  Cli cli("t");
  cli.add_int("count", 1, "");
  Argv a({"--count"});
  EXPECT_THROW(cli.parse(a.argc(), a.argv()), Error);
}

TEST(Cli, DuplicateRegistrationRejected) {
  Cli cli("t");
  cli.add_int("x", 1, "");
  EXPECT_THROW(cli.add_bool("x", false, ""), Error);
}

TEST(Cli, UsageListsFlagsAndDefaults) {
  Cli cli("prog");
  cli.add_int("count", 3, "how many");
  cli.add_string("mode", "fast", "which mode");
  const std::string u = cli.usage();
  EXPECT_NE(u.find("--count=<int> (default 3)"), std::string::npos);
  EXPECT_NE(u.find("how many"), std::string::npos);
  EXPECT_NE(u.find("'fast'"), std::string::npos);
}

}  // namespace
}  // namespace spttn
