#include <gtest/gtest.h>

#include "tensor/einsum.hpp"
#include "util/error.hpp"

namespace spttn {
namespace {

TEST(Einsum, ParsesMttkrp) {
  const Kernel k = Kernel::parse("A(i,a) = T(i,j,k)*B(j,a)*C(k,a)");
  EXPECT_EQ(k.num_inputs(), 3);
  EXPECT_EQ(k.output().name, "A");
  EXPECT_EQ(k.sparse_input(), 0);
  EXPECT_EQ(k.sparse_ref().name, "T");
  EXPECT_EQ(k.num_indices(), 4);
  EXPECT_EQ(k.index_name(0), "i");  // ids assigned by first appearance
  EXPECT_EQ(k.index_id("k"), 3);
  EXPECT_EQ(k.index_id("zz"), -1);
}

TEST(Einsum, WhitespaceInsensitive) {
  const Kernel k = Kernel::parse("  A( i , a ) =  T(i,j,k) * B(j,a)*C(k,a) ");
  EXPECT_EQ(k.to_string(), "A(i,a) = T(i,j,k) * B(j,a) * C(k,a)");
}

TEST(Einsum, MultiCharacterIndexNames) {
  const Kernel k = Kernel::parse("Out(row,rank) = T(row,col)*F(col,rank)");
  EXPECT_EQ(k.num_indices(), 3);
  // Ids by first appearance: row, rank (output), then col.
  EXPECT_EQ(k.index_name(1), "rank");
  EXPECT_EQ(k.index_name(2), "col");
}

TEST(Einsum, SparseByName) {
  const Kernel k = Kernel::parse("A(i,a) = B(j,a)*T(i,j)", "T");
  EXPECT_EQ(k.sparse_input(), 1);
  EXPECT_EQ(k.sparse_ref().name, "T");
}

TEST(Einsum, IndexSetsAndContraction) {
  const Kernel k = Kernel::parse("S(i,r,s) = T(i,j,k)*U(j,r)*V(k,s)");
  EXPECT_EQ(k.all_indices().size(), 5);
  EXPECT_EQ(k.contracted_indices().size(), 2);  // j, k
  EXPECT_TRUE(k.contracted_indices().contains(k.index_id("j")));
  EXPECT_EQ(k.dense_only_indices().size(), 2);  // r, s
  EXPECT_EQ(k.sparse_modes().size(), 3);
}

TEST(Einsum, CsfLevels) {
  const Kernel k = Kernel::parse("A(i,a) = T(i,j,k)*B(j,a)*C(k,a)");
  EXPECT_EQ(k.csf_level(k.index_id("i")), 0);
  EXPECT_EQ(k.csf_level(k.index_id("j")), 1);
  EXPECT_EQ(k.csf_level(k.index_id("k")), 2);
  EXPECT_EQ(k.csf_level(k.index_id("a")), -1);
}

TEST(Einsum, SparseOutputDetection) {
  EXPECT_TRUE(Kernel::parse("S(i,j,k) = T(i,j,k)*U(i,r)*V(j,r)*W(k,r)")
                  .output_is_sparse());
  EXPECT_FALSE(
      Kernel::parse("S(i,r,s) = T(i,j,k)*U(j,r)*V(k,s)").output_is_sparse());
  // Reordered output indices do not count as the sparse pattern.
  EXPECT_FALSE(Kernel::parse("S(j,i,k) = T(i,j,k)*U(i,r)*V(j,r)*W(k,r)")
                   .output_is_sparse());
}

TEST(Einsum, DimBindingAndConflicts) {
  Kernel k = Kernel::parse("A(i,a) = T(i,j)*B(j,a)");
  EXPECT_FALSE(k.dims_bound());
  EXPECT_THROW(k.index_dim(0), Error);
  k.set_index_dim(0, 10);
  k.set_index_dim(1, 20);
  k.set_index_dim(2, 5);
  EXPECT_TRUE(k.dims_bound());
  EXPECT_EQ(k.index_dim(1), 20);
  k.set_index_dim(1, 20);                       // idempotent rebind OK
  EXPECT_THROW(k.set_index_dim(1, 21), Error);  // conflict
  EXPECT_THROW(k.set_index_dim(1, 0), Error);   // nonpositive
}

TEST(Einsum, RejectsMalformedExpressions) {
  EXPECT_THROW(Kernel::parse("A(i,a) = "), Error);
  EXPECT_THROW(Kernel::parse("A(i,a) T(i,j)"), Error);
  EXPECT_THROW(Kernel::parse("A(i,a) = T(i,j"), Error);
  EXPECT_THROW(Kernel::parse("A(i,a) = T()"), Error);
  EXPECT_THROW(Kernel::parse("A(i,a) = T(i,j) * "), Error);
  EXPECT_THROW(Kernel::parse("A(i,a) = T(i,j) extra"), Error);
}

TEST(Einsum, RejectsDiagonalAccess) {
  EXPECT_THROW(Kernel::parse("A(i) = T(i,i)"), Error);
}

TEST(Einsum, RejectsOutputOnlyIndex) {
  EXPECT_THROW(Kernel::parse("A(i,z) = T(i,j)*B(j)"), Error);
}

TEST(Einsum, RejectsUnknownSparseName) {
  EXPECT_THROW(Kernel::parse("A(i) = T(i,j)*B(j)", "Q"), Error);
}

TEST(Einsum, DimsToStringShowsUnbound) {
  Kernel k = Kernel::parse("A(i) = T(i,j)*B(j)");
  k.set_index_dim(0, 4);
  const std::string s = k.dims_to_string();
  EXPECT_NE(s.find("i=4"), std::string::npos);
  EXPECT_NE(s.find("j=?"), std::string::npos);
}

}  // namespace
}  // namespace spttn
