#include <gtest/gtest.h>

#include <algorithm>

#include "dist/comm_model.hpp"
#include "dist/dist_spttn.hpp"
#include "dist/grid.hpp"
#include "exec/reference.hpp"
#include "test_helpers.hpp"
#include "util/thread_pool.hpp"

namespace spttn {
namespace {

using testing::paper_kernels;

TEST(ProcGrid, FactorizesBalanced) {
  const std::vector<std::int64_t> modes{1000, 1000, 1000};
  const ProcGrid g = ProcGrid::make(8, modes);
  EXPECT_EQ(g.size(), 8);
  EXPECT_EQ(g.order(), 3);
  int prod = 1;
  for (int d : g.dims()) prod *= d;
  EXPECT_EQ(prod, 8);
  // Balanced: no grid dim exceeds 4 for p=8 over 3 modes.
  for (int d : g.dims()) EXPECT_LE(d, 4);
}

TEST(ProcGrid, SkewedModesGetMoreProcs) {
  const std::vector<std::int64_t> modes{100000, 10, 10};
  const ProcGrid g = ProcGrid::make(16, modes);
  EXPECT_EQ(g.dims()[0], 16);  // all processes along the large mode
}

TEST(ProcGrid, OwnerIsCyclicAndComplete) {
  const std::vector<std::int64_t> modes{50, 40};
  const ProcGrid g = ProcGrid::make(6, modes);
  std::vector<int> counts(static_cast<std::size_t>(g.size()), 0);
  for (std::int64_t i = 0; i < 20; ++i) {
    for (std::int64_t j = 0; j < 20; ++j) {
      const std::vector<std::int64_t> c{i, j};
      const int r = g.owner_of(c);
      ASSERT_GE(r, 0);
      ASSERT_LT(r, g.size());
      ++counts[static_cast<std::size_t>(r)];
    }
  }
  // Cyclic layout is perfectly balanced on aligned blocks.
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(ProcGrid, RankCoordRoundTrips) {
  const std::vector<std::int64_t> modes{64, 64, 64};
  const ProcGrid g = ProcGrid::make(12, modes);
  for (int r = 0; r < g.size(); ++r) {
    const auto coord = g.rank_coord(r);
    // Rebuild the rank by the same mixed-radix rule owner_of uses.
    int rank = 0;
    for (std::size_t m = 0; m < coord.size(); ++m) {
      rank = rank * g.dims()[m] + coord[m];
    }
    EXPECT_EQ(rank, r);
  }
}

TEST(ProcGrid, SingleProcessGridIsAllOnes) {
  const std::vector<std::int64_t> modes{32, 16, 8};
  const ProcGrid g = ProcGrid::make(1, modes);
  EXPECT_EQ(g.size(), 1);
  EXPECT_EQ(g.describe(), "1x1x1");
  for (int d : g.dims()) EXPECT_EQ(d, 1);
  EXPECT_EQ(g.owner_of({5, 3, 1}), 0);
  EXPECT_EQ(g.rank_coord(0), (std::vector<int>{0, 0, 0}));
}

TEST(ProcGrid, PrimeLargerThanAnyModeStaysWhole) {
  // p = 13 has no nontrivial factorization, so it lands whole on one mode
  // even though every extent is smaller; ownership must stay in range (the
  // surplus ranks simply own no coordinates).
  const std::vector<std::int64_t> modes{4, 5};
  const ProcGrid g = ProcGrid::make(13, modes);
  int prod = 1;
  int max_dim = 0;
  for (int d : g.dims()) {
    prod *= d;
    max_dim = std::max(max_dim, d);
  }
  EXPECT_EQ(prod, 13);
  EXPECT_EQ(max_dim, 13);
  for (std::int64_t i = 0; i < modes[0]; ++i) {
    for (std::int64_t j = 0; j < modes[1]; ++j) {
      const int r = g.owner_of({i, j});
      EXPECT_GE(r, 0);
      EXPECT_LT(r, g.size());
    }
  }
}

TEST(ProcGrid, SingleModeTensor) {
  const std::vector<std::int64_t> modes{100};
  const ProcGrid g = ProcGrid::make(6, modes);
  EXPECT_EQ(g.order(), 1);
  ASSERT_EQ(g.dims().size(), 1u);
  EXPECT_EQ(g.dims()[0], 6);
  for (std::int64_t i = 0; i < modes[0]; ++i) {
    EXPECT_EQ(g.owner_of({i}), static_cast<int>(i % 6));
  }
  for (int r = 0; r < g.size(); ++r) {
    EXPECT_EQ(g.rank_coord(r), (std::vector<int>{r}));
  }
}

TEST(CommModel, CollectivesScaleSensibly) {
  const CommParams p;
  // Zero cost on one process or zero bytes.
  EXPECT_DOUBLE_EQ(allreduce_seconds(1 << 20, 1, p), 0.0);
  EXPECT_DOUBLE_EQ(allreduce_seconds(0, 8, p), 0.0);
  // Monotone in bytes.
  EXPECT_LT(allreduce_seconds(1 << 10, 8, p), allreduce_seconds(1 << 20, 8, p));
  // Bandwidth term dominates for large messages: doubling bytes roughly
  // doubles time.
  const double t1 = allreduce_seconds(64 << 20, 8, p);
  const double t2 = allreduce_seconds(128 << 20, 8, p);
  EXPECT_NEAR(t2 / t1, 2.0, 0.1);
  // Allgather moves ~half the all-reduce volume.
  EXPECT_LT(allgather_seconds(1 << 20, 8, p), allreduce_seconds(1 << 20, 8, p));
  EXPECT_GT(bcast_seconds(1 << 20, 8, p), 0.0);
  EXPECT_GT(reduce_scatter_seconds(1 << 20, 8, p), 0.0);
}

struct DistEquivalence : ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DistEquivalence, MatchesSequentialResult) {
  const auto [kernel_idx, ranks] = GetParam();
  const auto inst = testing::make_instance(
      paper_kernels()[static_cast<std::size_t>(kernel_idx)],
      2222 + kernel_idx);
  const Kernel& k = inst->bound.kernel;
  DistSpttn dist(inst->bound, ranks);
  const PlannerOptions opts;
  if (k.output_is_sparse()) {
    std::vector<double> got(static_cast<std::size_t>(inst->sparse.nnz()));
    std::vector<double> want(got.size());
    const DistResult r = dist.run(opts, nullptr, got);
    reference_execute(k, inst->sparse, inst->dense_slots(), nullptr, want);
    for (std::size_t e = 0; e < got.size(); ++e) {
      ASSERT_NEAR(got[e], want[e], 1e-9);
    }
    EXPECT_EQ(r.ranks, ranks);
  } else {
    DenseTensor got = make_output(inst->bound);
    DenseTensor want = make_output(inst->bound);
    const DistResult r = dist.run(opts, &got, {});
    reference_execute(k, inst->sparse, inst->dense_slots(), &want, {});
    ASSERT_LT(want.max_abs_diff(got), 1e-9);
    EXPECT_EQ(r.ranks, ranks);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KernelsByRanks, DistEquivalence,
    ::testing::Combine(::testing::Values(0, 2, 4, 5), ::testing::Values(1, 2,
                                                                        4, 7)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return paper_kernels()[static_cast<std::size_t>(
                                 std::get<0>(info.param))]
                 .name +
             "_p" + std::to_string(std::get<1>(info.param));
    });

// Hybrid rank x thread execution: each simulated rank's local nest runs on
// the shared-memory pool; results must match the pure-rank run for both
// output kinds (dense goes through per-rank accumulate, sparse through the
// owner-local value merge).
TEST(DistSpttn, HybridLocalThreadsMatchesSingleThreaded) {
  for (int kernel_idx : {0, 4}) {  // mttkrp3 (dense out), tttp3 (sparse out)
    const auto inst = testing::make_instance(
        paper_kernels()[static_cast<std::size_t>(kernel_idx)],
        3333 + kernel_idx);
    const Kernel& k = inst->bound.kernel;
    DistSpttn dist(inst->bound, 3);
    const PlannerOptions opts;
    if (k.output_is_sparse()) {
      std::vector<double> got(static_cast<std::size_t>(inst->sparse.nnz()));
      std::vector<double> want(got.size());
      dist.run(opts, nullptr, want, /*local_threads=*/1);
      dist.run(opts, nullptr, got, /*local_threads=*/4);
      for (std::size_t e = 0; e < got.size(); ++e) {
        ASSERT_NEAR(got[e], want[e], 1e-12);
      }
    } else {
      DenseTensor got = make_output(inst->bound);
      DenseTensor want = make_output(inst->bound);
      dist.run(opts, &want, {}, /*local_threads=*/1);
      dist.run(opts, &got, {}, /*local_threads=*/4);
      ASSERT_LT(want.max_abs_diff(got), 1e-12);
    }
  }
}

// Concurrent simulated ranks must be bit-identical to the sequential rank
// loop for the Figure 8 kernel families: every rank computes into a
// private partial either way and the closing reduction folds partials in
// ascending rank order, so scheduling cannot change a single bit.
TEST(DistSpttn, ConcurrentRanksBitIdenticalToSequential) {
  testing::ScopedLanes lanes(4);  // real lanes even on 1-core CI boxes
  for (int kernel_idx : {0, 2, 4}) {  // mttkrp3, ttmc3, tttp3 (Fig. 8)
    SCOPED_TRACE(paper_kernels()[static_cast<std::size_t>(kernel_idx)].name);
    const auto inst = testing::make_instance(
        paper_kernels()[static_cast<std::size_t>(kernel_idx)],
        4444 + kernel_idx);
    const Kernel& k = inst->bound.kernel;
    for (int ranks : {2, 5}) {
      SCOPED_TRACE("ranks=" + std::to_string(ranks));
      DistSpttn dist(inst->bound, ranks);
      const PlannerOptions opts;
      if (k.output_is_sparse()) {
        std::vector<double> want(static_cast<std::size_t>(inst->sparse.nnz()));
        std::vector<double> got(want.size());
        dist.run(opts, nullptr, want, /*local_threads=*/1,
                 /*concurrent_ranks=*/false);
        dist.run(opts, nullptr, got, /*local_threads=*/1,
                 /*concurrent_ranks=*/true);
        for (std::size_t e = 0; e < want.size(); ++e) {
          ASSERT_EQ(want[e], got[e]);
        }
      } else {
        DenseTensor want = make_output(inst->bound);
        DenseTensor got = make_output(inst->bound);
        dist.run(opts, &want, {}, /*local_threads=*/1,
                 /*concurrent_ranks=*/false);
        dist.run(opts, &got, {}, /*local_threads=*/1,
                 /*concurrent_ranks=*/true);
        ASSERT_EQ(want.max_abs_diff(got), 0.0);
      }
    }
  }
}

// Hybrid: concurrent ranks whose local nests themselves request pool lanes
// (the inner parallel_apply runs inline inside a rank task) must still be
// bit-identical to the sequential hybrid run.
TEST(DistSpttn, ConcurrentRanksWithLocalThreadsMatch) {
  testing::ScopedLanes lanes(4);
  const auto inst = testing::make_instance(paper_kernels()[0], 4545);
  DistSpttn dist(inst->bound, 3);
  const PlannerOptions opts;
  DenseTensor want = make_output(inst->bound);
  DenseTensor got = make_output(inst->bound);
  dist.run(opts, &want, {}, /*local_threads=*/4, /*concurrent_ranks=*/false);
  dist.run(opts, &got, {}, /*local_threads=*/4, /*concurrent_ranks=*/true);
  EXPECT_EQ(want.max_abs_diff(got), 0.0);
}

TEST(DistSpttn, PartitionCoversAllNonzeros) {
  const auto inst = testing::make_instance(paper_kernels()[0], 909);
  DistSpttn dist(inst->bound, 5);
  std::int64_t total = 0;
  for (auto n : dist.local_nnz()) total += n;
  EXPECT_EQ(total, inst->sparse.nnz());
}

TEST(DistSpttn, CommChargedForFactorsAndOutput) {
  const auto inst = testing::make_instance(paper_kernels()[0], 910);
  DistSpttn dist(inst->bound, 4);
  DenseTensor out = make_output(inst->bound);
  const DistResult r = dist.run({}, &out, {});
  EXPECT_GT(r.comm_seconds, 0.0);
  EXPECT_GT(r.comm_bytes, 0);
  EXPECT_GE(r.imbalance, 1.0);
}

TEST(DistSpttn, SparseOutputNeedsNoReduction) {
  const auto inst = testing::make_instance(paper_kernels()[4], 911);  // tttp
  DistSpttn dist4(inst->bound, 4);
  std::vector<double> out(static_cast<std::size_t>(inst->sparse.nnz()));
  const DistResult r = dist4.run({}, nullptr, out);
  // Factors still move, but no output all-reduce: comm volume is below an
  // equivalent dense-output kernel's.
  const auto inst2 = testing::make_instance(paper_kernels()[0], 911);
  DistSpttn distm(inst2->bound, 4);
  DenseTensor dense_out = make_output(inst2->bound);
  const DistResult rm = distm.run({}, &dense_out, {});
  EXPECT_GT(rm.comm_bytes, 0);
  EXPECT_GE(rm.comm_seconds, 0.0);
  EXPECT_GT(r.comm_bytes, 0);
}

TEST(DistSpttn, SingleRankHasNoComm) {
  const auto inst = testing::make_instance(paper_kernels()[0], 912);
  DistSpttn dist(inst->bound, 1);
  DenseTensor out = make_output(inst->bound);
  const DistResult r = dist.run({}, &out, {});
  EXPECT_DOUBLE_EQ(r.comm_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.imbalance, 1.0);
}

}  // namespace
}  // namespace spttn
