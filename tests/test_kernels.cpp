#include <gtest/gtest.h>

#include <vector>

#include "exec/kernels.hpp"
#include "util/rng.hpp"

namespace spttn {
namespace {

std::vector<double> rand_vec(std::size_t n, Rng& rng) {
  std::vector<double> v(n);
  for (double& x : v) x = 2 * rng.next_double() - 1;
  return v;
}

TEST(Kernels, AxpyUnitStride) {
  Rng rng(1);
  auto x = rand_vec(37, rng);
  auto y = rand_vec(37, rng);
  auto want = y;
  for (std::size_t i = 0; i < x.size(); ++i) want[i] += 0.5 * x[i];
  xaxpy(37, 0.5, x.data(), 1, y.data(), 1);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(y[i], want[i]);
  }
}

TEST(Kernels, AxpyStrided) {
  Rng rng(2);
  auto x = rand_vec(40, rng);
  auto y = rand_vec(60, rng);
  auto want = y;
  for (int i = 0; i < 10; ++i) want[static_cast<std::size_t>(i * 6)] +=
      2.0 * x[static_cast<std::size_t>(i * 4)];
  xaxpy(10, 2.0, x.data(), 4, y.data(), 6);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_DOUBLE_EQ(y[i], want[i]);
  }
}

TEST(Kernels, DotUnitAndStrided) {
  Rng rng(3);
  auto x = rand_vec(50, rng);
  auto y = rand_vec(50, rng);
  double want = 0;
  for (std::size_t i = 0; i < 50; ++i) want += x[i] * y[i];
  EXPECT_NEAR(xdot(50, x.data(), 1, y.data(), 1), want, 1e-12);
  want = 0;
  for (int i = 0; i < 25; ++i) {
    want += x[static_cast<std::size_t>(2 * i)] *
            y[static_cast<std::size_t>(2 * i)];
  }
  EXPECT_NEAR(xdot(25, x.data(), 2, y.data(), 2), want, 1e-12);
}

TEST(Kernels, HadamardAccumulate) {
  Rng rng(4);
  auto x = rand_vec(20, rng);
  auto y = rand_vec(20, rng);
  auto z = rand_vec(20, rng);
  auto want = z;
  for (std::size_t i = 0; i < 20; ++i) want[i] += 3.0 * x[i] * y[i];
  xhad(20, 3.0, x.data(), 1, y.data(), 1, z.data(), 1);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(z[i], want[i]);
}

TEST(Kernels, GerMatchesNaive) {
  Rng rng(5);
  const int m = 7, n = 9;
  auto x = rand_vec(m, rng);
  auto y = rand_vec(n, rng);
  auto a = rand_vec(static_cast<std::size_t>(m * n), rng);
  auto want = a;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      want[static_cast<std::size_t>(i * n + j)] +=
          1.5 * x[static_cast<std::size_t>(i)] *
          y[static_cast<std::size_t>(j)];
    }
  }
  xger(m, n, 1.5, x.data(), 1, y.data(), 1, a.data(), n, 1);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], want[i]);
}

TEST(Kernels, GemvMatchesNaive) {
  Rng rng(6);
  const int m = 6, n = 8;
  auto a = rand_vec(static_cast<std::size_t>(m * n), rng);
  auto x = rand_vec(n, rng);
  auto y = rand_vec(m, rng);
  auto want = y;
  for (int i = 0; i < m; ++i) {
    double acc = 0;
    for (int j = 0; j < n; ++j) {
      acc += a[static_cast<std::size_t>(i * n + j)] *
             x[static_cast<std::size_t>(j)];
    }
    want[static_cast<std::size_t>(i)] += 2.0 * acc;
  }
  xgemv(m, n, 2.0, a.data(), n, 1, x.data(), 1, y.data(), 1);
  for (int i = 0; i < m; ++i) {
    EXPECT_NEAR(y[static_cast<std::size_t>(i)],
                want[static_cast<std::size_t>(i)], 1e-12);
  }
}

TEST(Kernels, GemmMatchesNaive) {
  Rng rng(7);
  const int m = 5, n = 6, k = 7;
  auto a = rand_vec(static_cast<std::size_t>(m * k), rng);
  auto b = rand_vec(static_cast<std::size_t>(k * n), rng);
  auto c = rand_vec(static_cast<std::size_t>(m * n), rng);
  auto want = c;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0;
      for (int kk = 0; kk < k; ++kk) {
        acc += a[static_cast<std::size_t>(i * k + kk)] *
               b[static_cast<std::size_t>(kk * n + j)];
      }
      want[static_cast<std::size_t>(i * n + j)] += acc;
    }
  }
  xgemm(m, n, k, 1.0, a.data(), k, 1, b.data(), n, 1, c.data(), n, 1);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], want[i], 1e-12);
  }
}

TEST(Kernels, GemmTransposedViaStrides) {
  // C += A^T * B expressed purely with strides.
  Rng rng(8);
  const int m = 4, n = 3, k = 5;
  auto a = rand_vec(static_cast<std::size_t>(k * m), rng);  // stored k x m
  auto b = rand_vec(static_cast<std::size_t>(k * n), rng);
  std::vector<double> c(static_cast<std::size_t>(m * n), 0.0);
  xgemm(m, n, k, 1.0, a.data(), /*sam=*/1, /*sak=*/m, b.data(), n, 1,
        c.data(), n, 1);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double want = 0;
      for (int kk = 0; kk < k; ++kk) {
        want += a[static_cast<std::size_t>(kk * m + i)] *
                b[static_cast<std::size_t>(kk * n + j)];
      }
      EXPECT_NEAR(c[static_cast<std::size_t>(i * n + j)], want, 1e-12);
    }
  }
}

TEST(Kernels, ZeroStridedAndUnit) {
  std::vector<double> v(12, 5.0);
  xzero(6, v.data(), 2);
  for (int i = 0; i < 12; ++i) {
    EXPECT_DOUBLE_EQ(v[static_cast<std::size_t>(i)], i % 2 == 0 ? 0.0 : 5.0);
  }
  xzero(12, v.data(), 1);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(Kernels, EmptyLengthsAreNoops) {
  double x = 1, y = 2;
  xaxpy(0, 3.0, &x, 1, &y, 1);
  EXPECT_DOUBLE_EQ(y, 2);
  EXPECT_DOUBLE_EQ(xdot(0, &x, 1, &y, 1), 0.0);
}

}  // namespace
}  // namespace spttn
