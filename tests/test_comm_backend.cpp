// Communication-backend suite: the transport seam of the distributed
// runtime. ModeledComm must reproduce the historical inline alpha-beta
// charging bit-for-bit; ShmemComm must produce bit-identical kernel
// outputs with measured (not charged) collective seconds; both must agree
// under sequential and concurrent rank scheduling, including empty-rank
// and ranks-greater-than-nnz partitions. Runs in the TSan CI job (the
// shmem transport moves real bytes on the process-wide pool).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "dist/comm_backend.hpp"
#include "dist/comm_model.hpp"
#include "dist/dist_spttn.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace spttn {
namespace {

using testing::paper_kernels;

/// Run `dist` over a fresh backend and return the outputs (exactly one of
/// dense/sparse is populated, matching the kernel's output kind).
struct RunOut {
  DistResult res;
  DenseTensor dense;
  std::vector<double> sparse;
};

RunOut run_with(const DistSpttn& dist, const BoundKernel& bound,
                const std::string& backend, int ranks, std::int64_t nnz,
                bool concurrent, int local_threads = 1) {
  RunOut out;
  const auto comm = make_comm_backend(backend, ranks);
  if (bound.kernel.output_is_sparse()) {
    out.sparse.assign(static_cast<std::size_t>(nnz), 0.0);
    out.res = dist.run(*comm, {}, nullptr, out.sparse, local_threads,
                       concurrent);
  } else {
    out.dense = make_output(bound);
    out.res = dist.run(*comm, {}, &out.dense, {}, local_threads, concurrent);
  }
  return out;
}

void expect_bit_identical(const RunOut& want, const RunOut& got) {
  if (want.sparse.empty()) {
    ASSERT_EQ(want.dense.max_abs_diff(got.dense), 0.0);
  } else {
    ASSERT_EQ(want.sparse.size(), got.sparse.size());
    for (std::size_t e = 0; e < want.sparse.size(); ++e) {
      ASSERT_EQ(want.sparse[e], got.sparse[e]) << "entry " << e;
    }
  }
}

// Every paper kernel (dense and sparse outputs), both shipped backends,
// sequential and concurrent rank scheduling: outputs must be bit-identical
// across all four combinations (the backend contract folds partials in
// ascending rank order, so neither transport nor schedule may change a
// bit).
TEST(CommBackendEquivalence, WholeSuiteBitIdenticalAcrossBackends) {
  testing::ScopedLanes lanes(4);
  const auto kernels = paper_kernels();
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    SCOPED_TRACE(kernels[i].name);
    const auto inst =
        testing::make_instance(kernels[i], 7100 + static_cast<int>(i));
    const int ranks = 3;  // uneven cyclic partitions
    DistSpttn dist(inst->bound, ranks);
    const std::int64_t nnz = inst->sparse.nnz();
    const RunOut want =
        run_with(dist, inst->bound, "modeled", ranks, nnz, false);
    for (const bool concurrent : {false, true}) {
      SCOPED_TRACE(concurrent ? "concurrent" : "sequential");
      const RunOut modeled =
          run_with(dist, inst->bound, "modeled", ranks, nnz, concurrent);
      const RunOut shmem =
          run_with(dist, inst->bound, "shmem", ranks, nnz, concurrent);
      expect_bit_identical(want, modeled);
      expect_bit_identical(want, shmem);
      EXPECT_TRUE(modeled.res.modeled);
      EXPECT_FALSE(shmem.res.modeled);
      EXPECT_EQ(modeled.res.backend, "modeled");
      EXPECT_EQ(shmem.res.backend, "shmem");
    }
  }
}

// Hybrid rank x thread execution stays bit-identical across transports
// (each rank's local nest partitions the same way regardless of where its
// factor views live).
TEST(CommBackendEquivalence, HybridLocalThreadsMatchAcrossBackends) {
  testing::ScopedLanes lanes(4);
  for (int kernel_idx : {0, 4}) {  // mttkrp3 (dense out), tttp3 (sparse out)
    SCOPED_TRACE(paper_kernels()[static_cast<std::size_t>(kernel_idx)].name);
    const auto inst = testing::make_instance(
        paper_kernels()[static_cast<std::size_t>(kernel_idx)],
        7200 + kernel_idx);
    const int ranks = 3;
    DistSpttn dist(inst->bound, ranks);
    const std::int64_t nnz = inst->sparse.nnz();
    const RunOut want = run_with(dist, inst->bound, "modeled", ranks, nnz,
                                 false, /*local_threads=*/2);
    const RunOut got = run_with(dist, inst->bound, "shmem", ranks, nnz,
                                false, /*local_threads=*/2);
    expect_bit_identical(want, got);
  }
}

// More ranks than nonzeros: most ranks own nothing. Both backends must
// skip idle ranks (no partials, no gathered reads that matter) and still
// merge the few live partials correctly, sequentially and concurrently.
TEST(CommBackendEquivalence, RanksGreaterThanNnzEdgeCase) {
  testing::ScopedLanes lanes(4);
  Rng rng(99);
  CooTensor t({6, 5, 4});
  t.push_back({0, 1, 2}, 1.5);
  t.push_back({3, 2, 1}, -2.0);
  t.push_back({5, 4, 3}, 0.75);
  t.sort_dedup();
  const DenseTensor b = random_dense({5, 3}, rng);
  const DenseTensor c = random_dense({4, 3}, rng);
  const BoundKernel dense_bound =
      bind("A(i,r) = T(i,j,k)*B(j,r)*C(k,r)", t, {&b, &c});
  const DenseTensor u = random_dense({6, 3}, rng);
  const BoundKernel sparse_bound =
      bind("Y(i,j,k) = T(i,j,k)*U(i,r)*B(j,r)*C(k,r)", t, {&u, &b, &c});
  for (const BoundKernel* bound : {&dense_bound, &sparse_bound}) {
    SCOPED_TRACE(bound->kernel.output_is_sparse() ? "sparse-out"
                                                  : "dense-out");
    const int ranks = 7;  // > nnz == 3, so at least four ranks are empty
    DistSpttn dist(*bound, ranks);
    std::int64_t live = 0;
    for (const std::int64_t n : dist.local_nnz()) live += n > 0 ? 1 : 0;
    ASSERT_LT(live, ranks);
    const RunOut want = run_with(dist, *bound, "modeled", ranks, 3, false);
    for (const std::string backend : {"modeled", "shmem"}) {
      for (const bool concurrent : {false, true}) {
        SCOPED_TRACE(backend + (concurrent ? "/concurrent" : "/sequential"));
        const RunOut got =
            run_with(dist, *bound, backend, ranks, 3, concurrent);
        expect_bit_identical(want, got);
      }
    }
  }
}

// The refactor is behavior-preserving: ModeledComm's comm charge must
// equal the historical inline charging — one allgather per dense factor
// plus one all-reduce of the dense output, priced by dist/comm_model.hpp —
// exactly (same doubles, same sum).
TEST(ModeledComm, ReproducesInlineAlphaBetaCharging) {
  const CommParams params;
  for (std::size_t i = 0; i < paper_kernels().size(); ++i) {
    SCOPED_TRACE(paper_kernels()[i].name);
    const auto inst =
        testing::make_instance(paper_kernels()[i], 7300 + static_cast<int>(i));
    const int ranks = 4;
    DistSpttn dist(inst->bound, ranks);
    const RunOut got = run_with(dist, inst->bound, "modeled", ranks,
                                inst->sparse.nnz(), false);
    double want_seconds = 0;
    std::int64_t want_bytes = 0;
    for (const DenseTensor* d : inst->bound.dense) {
      if (d == nullptr) continue;
      const std::int64_t bytes =
          d->size() * static_cast<std::int64_t>(sizeof(double));
      want_bytes += bytes;
      want_seconds += allgather_seconds(bytes, ranks, params);
    }
    if (!inst->bound.kernel.output_is_sparse()) {
      const std::int64_t bytes =
          make_output(inst->bound).size() *
          static_cast<std::int64_t>(sizeof(double));
      want_bytes += bytes;
      want_seconds += allreduce_seconds(bytes, ranks, params);
    }
    EXPECT_EQ(got.res.comm_seconds, want_seconds);
    EXPECT_EQ(got.res.comm_bytes, want_bytes);
    EXPECT_EQ(got.res.time(), got.res.max_local_seconds + want_seconds);
  }
}

// The event log carries the per-collective breakdown: one allgather per
// dense factor, one all-reduce for dense outputs (none for sparse), and
// the kind-wise totals partition the summed fields exactly.
TEST(CommBackendEvents, BreakdownPartitionsTotals) {
  for (const std::string backend : {"modeled", "shmem"}) {
    SCOPED_TRACE(backend);
    for (int kernel_idx : {0, 4}) {  // dense out, sparse out
      const auto inst = testing::make_instance(
          paper_kernels()[static_cast<std::size_t>(kernel_idx)],
          7400 + kernel_idx);
      const int ranks = 4;
      DistSpttn dist(inst->bound, ranks);
      const RunOut got = run_with(dist, inst->bound, backend, ranks,
                                  inst->sparse.nnz(), false);
      int factors = 0;
      for (const DenseTensor* d : inst->bound.dense) factors += d != nullptr;
      const bool sparse_out = inst->bound.kernel.output_is_sparse();
      const CommBreakdown ag =
          got.res.breakdown(CollectiveKind::kAllgather);
      const CommBreakdown ar =
          got.res.breakdown(CollectiveKind::kAllreduce);
      EXPECT_EQ(ag.count, factors);
      EXPECT_EQ(ar.count, sparse_out ? 0 : 1);
      EXPECT_EQ(static_cast<int>(got.res.events.size()),
                ag.count + ar.count);
      EXPECT_EQ(ag.bytes + ar.bytes, got.res.comm_bytes);
      EXPECT_DOUBLE_EQ(ag.seconds + ar.seconds, got.res.comm_seconds);
      EXPECT_GT(ag.bytes, 0);
      for (const CommEvent& ev : got.res.events) {
        EXPECT_EQ(ev.modeled, backend == "modeled");
        EXPECT_GE(ev.seconds, 0.0);
      }
    }
  }
}

TEST(CommBackendEvents, SingleRankIssuesNoCollectives) {
  for (const std::string backend : {"modeled", "shmem"}) {
    SCOPED_TRACE(backend);
    const auto inst = testing::make_instance(paper_kernels()[0], 7500);
    DistSpttn dist(inst->bound, 1);
    const RunOut got =
        run_with(dist, inst->bound, backend, 1, inst->sparse.nnz(), false);
    EXPECT_TRUE(got.res.events.empty());
    EXPECT_EQ(got.res.comm_seconds, 0.0);
    EXPECT_EQ(got.res.comm_bytes, 0);
  }
}

// Backend instances are reusable across runs: begin_run resets the event
// log and gathered replicas, so a rank-count-matched backend can serve an
// iterative driver without accumulating stale events.
TEST(CommBackendEvents, BackendReuseResetsEventLog) {
  const auto inst = testing::make_instance(paper_kernels()[0], 7600);
  const int ranks = 4;
  DistSpttn dist(inst->bound, ranks);
  ShmemComm comm(ranks);
  DenseTensor out1 = make_output(inst->bound);
  DenseTensor out2 = make_output(inst->bound);
  const DistResult r1 = dist.run(comm, {}, &out1, {});
  const DistResult r2 = dist.run(comm, {}, &out2, {});
  EXPECT_EQ(r1.events.size(), r2.events.size());
  EXPECT_EQ(out1.max_abs_diff(out2), 0.0);
}

TEST(CommBackend, RejectsRankMismatchAndUnknownNames) {
  const auto inst = testing::make_instance(paper_kernels()[0], 7700);
  DistSpttn dist(inst->bound, 3);
  ModeledComm comm(4);
  DenseTensor out = make_output(inst->bound);
  EXPECT_THROW(dist.run(comm, {}, &out, {}), Error);
  EXPECT_THROW(make_comm_backend("infiniband", 2), Error);
#ifndef SPTTN_WITH_MPI
  EXPECT_THROW(make_comm_backend("mpi", 2), Error);
#endif
  const auto names = comm_backend_names();
  ASSERT_GE(names.size(), 2u);
  for (const std::string& n : names) {
    EXPECT_EQ(make_comm_backend(n, 2)->name(), n);
  }
}

TEST(CommParamsValidation, RejectsNegativeAndNaNConstants) {
  const auto inst = testing::make_instance(paper_kernels()[0], 7800);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const auto reject = [&](double alpha, double beta) {
    CommParams p;
    p.alpha_seconds = alpha;
    p.beta_seconds_per_byte = beta;
    EXPECT_THROW(DistSpttn(inst->bound, 2, p), Error);
  };
  reject(-1e-6, 1e-10);
  reject(1e-6, -1e-10);
  reject(nan, 1e-10);
  reject(1e-6, nan);
  reject(inf, 1e-10);
  // Backends validate too (they can be built without a DistSpttn).
  CommParams bad;
  bad.alpha_seconds = nan;
  EXPECT_THROW(ModeledComm(2, bad), Error);
  bad = {};
  bad.beta_seconds_per_byte = -1.0;
  EXPECT_THROW(ShmemComm(2, bad), Error);
  // Zero is a legitimate constant (pure-bandwidth or pure-latency models).
  CommParams zero;
  zero.alpha_seconds = 0.0;
  zero.beta_seconds_per_byte = 0.0;
  EXPECT_NO_THROW(DistSpttn(inst->bound, 2, zero));
}

// ShmemComm's clock is real: on payloads this size the measured seconds
// are positive (steady_clock resolution is well below a multi-megabyte
// copy), and the factor replicas each rank reads are value-identical to
// the source.
TEST(ShmemComm, MeasuresRealMovement) {
  Rng rng(3);
  const int ranks = 4;
  ShmemComm comm(ranks);
  comm.begin_run();
  const DenseTensor factor = random_dense({512, 256}, rng);  // 1 MiB
  const int slot = comm.allgather(factor);
  ASSERT_EQ(comm.events().size(), 1u);
  const CommEvent ev = comm.events()[0];
  EXPECT_EQ(ev.kind, CollectiveKind::kAllgather);
  EXPECT_EQ(ev.bytes,
            factor.size() * static_cast<std::int64_t>(sizeof(double)));
  EXPECT_FALSE(ev.modeled);
  EXPECT_GT(ev.seconds, 0.0);
  for (int r = 0; r < ranks; ++r) {
    const DenseTensor& rep = comm.gathered(r, slot);
    ASSERT_NE(&rep, &factor);  // a real replica, not the source
    EXPECT_EQ(rep.max_abs_diff(factor), 0.0);
  }
}

}  // namespace
}  // namespace spttn
