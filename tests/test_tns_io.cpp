#include <gtest/gtest.h>

#include <sstream>

#include "tensor/generate.hpp"
#include "tensor/tns_io.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace spttn {
namespace {

TEST(TnsIo, ParsesBasicFile) {
  std::istringstream in(
      "# a comment\n"
      "1 2 3 1.5\n"
      "\n"
      "4 1 2 -2.25\n");
  const CooTensor t = read_tns(in);
  EXPECT_EQ(t.order(), 3);
  EXPECT_EQ(t.dims(), (std::vector<std::int64_t>{4, 2, 3}));
  ASSERT_EQ(t.nnz(), 2);
  // 0-based, sorted: (0,1,2)=1.5 then (3,0,1)=-2.25.
  EXPECT_EQ(t.coord(0)[0], 0);
  EXPECT_EQ(t.coord(0)[2], 2);
  EXPECT_DOUBLE_EQ(t.value(0), 1.5);
  EXPECT_DOUBLE_EQ(t.value(1), -2.25);
}

TEST(TnsIo, ExplicitDimsValidate) {
  std::istringstream ok("1 1 2.0\n");
  const CooTensor t = read_tns(ok, {5, 6});
  EXPECT_EQ(t.dims(), (std::vector<std::int64_t>{5, 6}));
  std::istringstream bad("7 1 2.0\n");
  EXPECT_THROW(read_tns(bad, {5, 6}), Error);
}

TEST(TnsIo, OutOfDimsReportsLineAndMode) {
  // The offending line number and mode must be in the message — failing
  // deep inside CooTensor::push_back after parsing lost that context.
  std::istringstream in(
      "# header\n"
      "1 1 2.0\n"
      "2 9 3.0\n");
  try {
    read_tns(in, {5, 6});
    FAIL() << "expected out-of-dims error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("mode 1"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("exceeds dim 6"), std::string::npos)
        << e.what();
  }
}

TEST(TnsIo, NonIntegerIndexReportsLine) {
  for (const char* field : {"1.5", "2e3", "7x", "nan"}) {
    std::istringstream in(std::string("1 1 1.0\n") + field + " 1 1.0\n");
    try {
      read_tns(in);
      FAIL() << "expected non-integer index error for '" << field << "'";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("not an integer"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(TnsIo, EmptyStreamWithDimsYieldsEmptyTensor) {
  std::istringstream in("# a filtered partition may hold no local entries\n");
  const CooTensor t = read_tns(in, {4, 5, 6});
  EXPECT_EQ(t.dims(), (std::vector<std::int64_t>{4, 5, 6}));
  EXPECT_EQ(t.nnz(), 0);
  EXPECT_TRUE(t.is_sorted());
  // Without dims there is nothing to size the tensor by: still an error.
  std::istringstream bare("# only comments\n");
  EXPECT_THROW(read_tns(bare), Error);
}

TEST(TnsIo, HugeIndicesRoundTripExactly) {
  // Indices above 2^53 corrupt silently when routed through double; the
  // integer parse must keep them exact.
  const std::int64_t big = (std::int64_t{1} << 62) + 12345;
  CooTensor t({big + 1, 3});
  t.push_back({big, 2}, 1.25);
  t.push_back({big - 1, 0}, -2.5);
  t.sort_dedup();
  std::stringstream buf;
  write_tns(buf, t);
  const CooTensor back = read_tns(buf, t.dims());
  ASSERT_EQ(back.nnz(), 2);
  EXPECT_EQ(back.coord(1)[0], big);
  EXPECT_EQ(back.coord(0)[0], big - 1);
  EXPECT_DOUBLE_EQ(back.value(1), 1.25);
}

TEST(TnsIo, BadValueFieldReportsLine) {
  std::istringstream in("1 1 1.0\n1 2 abc\n");
  try {
    read_tns(in);
    FAIL() << "expected bad-value error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("not a number"), std::string::npos)
        << e.what();
  }
}

TEST(TnsIo, DuplicatesAreSummed) {
  std::istringstream in("1 1 2.0\n1 1 3.0\n");
  const CooTensor t = read_tns(in);
  ASSERT_EQ(t.nnz(), 1);
  EXPECT_DOUBLE_EQ(t.value(0), 5.0);
}

TEST(TnsIo, RejectsMalformedInput) {
  std::istringstream empty("# only comments\n");
  EXPECT_THROW(read_tns(empty), Error);
  std::istringstream arity("1 2 3 1.0\n1 2 1.0\n");
  EXPECT_THROW(read_tns(arity), Error);
  std::istringstream zero_index("0 1 1.0\n");
  EXPECT_THROW(read_tns(zero_index), Error);
  std::istringstream fractional("1.5 1 1.0\n");
  EXPECT_THROW(read_tns(fractional), Error);
  std::istringstream value_only("3.0\n");
  EXPECT_THROW(read_tns(value_only), Error);
}

TEST(TnsIo, RoundTripsRandomTensor) {
  Rng rng(99);
  const CooTensor t = random_coo({9, 8, 7}, 60, rng);
  std::stringstream buf;
  write_tns(buf, t);
  const CooTensor back = read_tns(buf, t.dims());
  ASSERT_EQ(back.nnz(), t.nnz());
  for (std::int64_t e = 0; e < t.nnz(); ++e) {
    EXPECT_EQ(std::vector<std::int64_t>(back.coord(e).begin(),
                                        back.coord(e).end()),
              std::vector<std::int64_t>(t.coord(e).begin(),
                                        t.coord(e).end()));
    EXPECT_DOUBLE_EQ(back.value(e), t.value(e));
  }
}

TEST(TnsIo, MissingFileThrows) {
  EXPECT_THROW(read_tns_file("/nonexistent/path.tns"), Error);
}

}  // namespace
}  // namespace spttn
