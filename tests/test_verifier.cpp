// PlanVerifier: every paper-kernel plan verifies clean, and each injected
// defect class trips exactly the diagnostic rule built for it. Mutations go
// through LoopTree::assemble — the same raw-parts path a future plan
// deserializer would use — so these tests double as the admission-gate spec
// for externally produced plans.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "analysis/plan_verifier.hpp"
#include "exec/executor.hpp"
#include "serve/kernel_cache.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace spttn {
namespace {

using testing::make_instance;
using testing::paper_kernels;
using Action = LoopTree::Action;
using Node = LoopTree::Node;

struct Planned {
  std::unique_ptr<testing::Instance> inst;
  PlannerOptions options;
  Plan plan;

  const Kernel& kernel() const { return inst->bound.kernel; }
  const SparsityStats& stats() const { return inst->bound.stats; }

  VerifyReport verify() const {
    return PlanVerifier(kernel(), options, &stats()).verify(plan);
  }
};

Planned plan_case(const std::string& name, PlannerOptions options = {}) {
  for (const auto& kc : paper_kernels()) {
    if (kc.name != name) continue;
    Planned p;
    p.inst = make_instance(kc, 42);
    p.options = options;
    p.plan = make_plan(p.inst->bound.kernel, p.inst->bound.stats, options);
    return p;
  }
  ADD_FAILURE() << "unknown suite kernel " << name;
  return {};
}

/// Rebuild the plan's tree from mutated raw parts.
template <typename Fn>
void mutate_tree(Plan* plan, Fn&& fn) {
  std::vector<Node> nodes = plan->tree.nodes();
  std::vector<Action> top = plan->tree.top();
  std::vector<BufferSpec> buffers = plan->tree.buffers();
  fn(nodes, top, buffers);
  plan->tree =
      LoopTree::assemble(std::move(nodes), std::move(top), std::move(buffers));
}

/// Position of the node holding term `t` directly in its body, or -1.
int node_holding_term(const std::vector<Node>& nodes, int t) {
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    for (const Action& a : nodes[n].body) {
      if (a.kind == Action::Kind::kTerm && a.id == t) {
        return static_cast<int>(n);
      }
    }
  }
  return -1;
}

/// Position of the node holding reset `t` directly in its body, or -1.
int node_holding_reset(const std::vector<Node>& nodes, int t) {
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    for (const Action& a : nodes[n].body) {
      if (a.kind == Action::Kind::kReset && a.id == t) {
        return static_cast<int>(n);
      }
    }
  }
  return -1;
}

TEST(PlanVerifier, AllPaperKernelPlansVerifyClean) {
  for (const auto& kc : paper_kernels()) {
    const auto inst = make_instance(kc, 42);
    const PlannerOptions options;
    const Plan plan =
        make_plan(inst->bound.kernel, inst->bound.stats, options);
    const FusedExecutor exec(inst->bound.kernel, plan);
    const VerifyReport report =
        PlanVerifier(inst->bound.kernel, options, &inst->bound.stats)
            .verify(plan, exec);
    EXPECT_TRUE(report.ok()) << kc.name << ":\n" << report.to_string();
    EXPECT_EQ(report.warnings(), 0) << kc.name << ":\n" << report.to_string();
  }
}

TEST(PlanVerifier, RelaxedBoundPlansVerifyClean) {
  PlannerOptions options;
  options.buffer_dim_bound = 1;  // most kernels must relax upward
  for (const auto& kc : paper_kernels()) {
    const auto inst = make_instance(kc, 42);
    const Plan plan =
        make_plan(inst->bound.kernel, inst->bound.stats, options);
    const VerifyReport report =
        PlanVerifier(inst->bound.kernel, options, &inst->bound.stats)
            .verify(plan);
    EXPECT_TRUE(report.ok()) << kc.name << ":\n" << report.to_string();
  }
}

TEST(PlanVerifier, ReleaseOptInFlagVerifies) {
  PlannerOptions options;
  options.verify = true;  // no-op in Debug (always verifies), opt-in else
  const Planned p = plan_case("mttkrp3", options);
  EXPECT_TRUE(p.verify().ok());
}

// --- defect class: unbound index ---------------------------------------

TEST(PlanVerifier, HoistedTermTripsIndexUnbound) {
  Planned p = plan_case("mttkrp3");
  mutate_tree(&p.plan, [](std::vector<Node>& nodes, std::vector<Action>& top,
                          std::vector<BufferSpec>&) {
    const int n = node_holding_term(nodes, 0);
    ASSERT_GE(n, 0);
    auto& body = nodes[static_cast<std::size_t>(n)].body;
    body.erase(std::find_if(body.begin(), body.end(), [](const Action& a) {
      return a.kind == Action::Kind::kTerm && a.id == 0;
    }));
    // The term now executes with no enclosing loops at all.
    top.push_back({Action::Kind::kTerm, 0});
  });
  const VerifyReport report = p.verify();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("index-unbound")) << report.to_string();
  EXPECT_TRUE(report.has("loop-order-mismatch")) << report.to_string();
}

TEST(PlanVerifier, RemovedTermTripsTermMissing) {
  Planned p = plan_case("mttkrp3");
  mutate_tree(&p.plan, [](std::vector<Node>& nodes, std::vector<Action>&,
                          std::vector<BufferSpec>&) {
    const int n = node_holding_term(nodes, 0);
    ASSERT_GE(n, 0);
    auto& body = nodes[static_cast<std::size_t>(n)].body;
    body.erase(std::find_if(body.begin(), body.end(), [](const Action& a) {
      return a.kind == Action::Kind::kTerm && a.id == 0;
    }));
  });
  const VerifyReport report = p.verify();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("term-missing")) << report.to_string();
}

TEST(PlanVerifier, RepeatedLoopIndexTripsIndexRebound) {
  Planned p = plan_case("mttkrp3");
  mutate_tree(&p.plan, [](std::vector<Node>& nodes, std::vector<Action>& top,
                          std::vector<BufferSpec>&) {
    // Find a root loop with a child loop and make the child iterate the
    // root's index again.
    for (const Action& a : top) {
      if (a.kind != Action::Kind::kLoop) continue;
      Node& root = nodes[static_cast<std::size_t>(a.id)];
      for (Action& c : root.body) {
        if (c.kind != Action::Kind::kLoop) continue;
        Node& child = nodes[static_cast<std::size_t>(c.id)];
        child.index = root.index;
        child.sparse = root.sparse;
        child.csf_level = root.csf_level;
        return;
      }
    }
    FAIL() << "no nested loop pair found";
  });
  const VerifyReport report = p.verify();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("index-rebound")) << report.to_string();
}

TEST(PlanVerifier, FlippedSparseFlagTripsCsfIterationDrift) {
  Planned p = plan_case("mttkrp3");
  mutate_tree(&p.plan, [](std::vector<Node>& nodes, std::vector<Action>&,
                          std::vector<BufferSpec>&) {
    const auto it = std::find_if(nodes.begin(), nodes.end(),
                                 [](const Node& n) { return n.sparse; });
    ASSERT_NE(it, nodes.end());
    it->sparse = false;  // executor would iterate a dense range here
  });
  const VerifyReport report = p.verify();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("csf-iteration-drift")) << report.to_string();
}

// --- defect class: wrong buffer scope ----------------------------------

TEST(PlanVerifier, DroppedBufferIndexTripsBufferScope) {
  Planned p = plan_case("ttmc3");
  bool mutated = false;
  mutate_tree(&p.plan, [&](std::vector<Node>&, std::vector<Action>&,
                           std::vector<BufferSpec>& buffers) {
    for (BufferSpec& spec : buffers) {
      if (spec.producer < 0 || spec.indices.empty()) continue;
      // Shrink the buffer below the scope Eq. 5 assigned it, keeping
      // dims/size internally consistent so only the scope rule fires.
      spec.size /= spec.dims.back();
      spec.indices.pop_back();
      spec.dims.pop_back();
      mutated = true;
      return;
    }
  });
  ASSERT_TRUE(mutated) << "ttmc3 plan has no non-scalar buffer";
  const VerifyReport report = p.verify();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("buffer-scope")) << report.to_string();
}

TEST(PlanVerifier, CorruptBufferDimsTripExtentMismatch) {
  Planned p = plan_case("ttmc3");
  bool mutated = false;
  mutate_tree(&p.plan, [&](std::vector<Node>&, std::vector<Action>&,
                           std::vector<BufferSpec>& buffers) {
    for (BufferSpec& spec : buffers) {
      if (spec.producer < 0 || spec.dims.empty()) continue;
      spec.dims.front() += 1;  // no longer the kernel's declared extent
      mutated = true;
      return;
    }
  });
  ASSERT_TRUE(mutated);
  const VerifyReport report = p.verify();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("buffer-extent-mismatch")) << report.to_string();
}

TEST(PlanVerifier, RemovedResetTripsResetMissing) {
  Planned p = plan_case("mttkrp3");
  bool mutated = false;
  mutate_tree(&p.plan, [&](std::vector<Node>& nodes, std::vector<Action>& top,
                           std::vector<BufferSpec>&) {
    const auto drop = [](std::vector<Action>& body) {
      const auto it =
          std::find_if(body.begin(), body.end(), [](const Action& a) {
            return a.kind == Action::Kind::kReset;
          });
      if (it == body.end()) return false;
      body.erase(it);
      return true;
    };
    for (Node& n : nodes) {
      if (drop(n.body)) {
        mutated = true;
        return;
      }
    }
    mutated = drop(top);
  });
  ASSERT_TRUE(mutated) << "mttkrp3 plan has no reset action";
  const VerifyReport report = p.verify();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("buffer-reset-missing")) << report.to_string();
}

TEST(PlanVerifier, HoistedResetTripsResetScope) {
  // Find a suite plan whose reset sits inside a loop body, then hoist it to
  // the top level: values would leak across iterations of the scope the
  // cost model charged the buffer to.
  for (const auto& kc : paper_kernels()) {
    Planned p;
    p.inst = make_instance(kc, 42);
    p.plan = make_plan(p.inst->bound.kernel, p.inst->bound.stats, p.options);
    int reset_term = -1;
    for (int t = 0; t < p.plan.path.num_terms(); ++t) {
      if (node_holding_reset(p.plan.tree.nodes(), t) >= 0) {
        reset_term = t;
        break;
      }
    }
    if (reset_term < 0) continue;
    mutate_tree(&p.plan, [&](std::vector<Node>& nodes, std::vector<Action>& top,
                             std::vector<BufferSpec>&) {
      const int n = node_holding_reset(nodes, reset_term);
      auto& body = nodes[static_cast<std::size_t>(n)].body;
      body.erase(std::find_if(body.begin(), body.end(), [&](const Action& a) {
        return a.kind == Action::Kind::kReset && a.id == reset_term;
      }));
      top.insert(top.begin(), {Action::Kind::kReset, reset_term});
    });
    const VerifyReport report = p.verify();
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has("buffer-reset-scope"))
        << kc.name << ":\n" << report.to_string();
    return;
  }
  FAIL() << "no suite plan keeps a reset inside a loop body";
}

// --- defect class: overlapping task writes ------------------------------

TEST(PlanVerifier, ClaimedRootStrideTripsParWriteOverlap) {
  // Make a buffer look root-strided (partition-safe) while the recomputed
  // Eq. 5 index set proves distinct tasks would write the same region: the
  // reset is hoisted above the root (so the buffer is genuinely shared)
  // and the root index is forged into the buffer spec (so the executor's
  // classification, which trusts specs, would happily partition).
  for (const auto& kc : paper_kernels()) {
    Planned p;
    p.inst = make_instance(kc, 42);
    p.plan = make_plan(p.inst->bound.kernel, p.inst->bound.stats, p.options);
    int reset_term = -1;
    int root_node = -1;
    for (const Action& a : p.plan.tree.top()) {
      if (a.kind != Action::Kind::kLoop) continue;
      for (int t = 0; t < p.plan.path.num_terms(); ++t) {
        if (node_holding_reset(p.plan.tree.nodes(), t) == a.id) {
          reset_term = t;
          root_node = a.id;
          break;
        }
      }
      if (reset_term >= 0) break;
    }
    if (reset_term < 0) continue;  // needs a reset directly in a root body
    const Kernel& kernel = p.kernel();
    mutate_tree(&p.plan, [&](std::vector<Node>& nodes, std::vector<Action>& top,
                             std::vector<BufferSpec>& buffers) {
      auto& body = nodes[static_cast<std::size_t>(root_node)].body;
      body.erase(std::find_if(body.begin(), body.end(), [&](const Action& a) {
        return a.kind == Action::Kind::kReset && a.id == reset_term;
      }));
      top.insert(top.begin(), {Action::Kind::kReset, reset_term});
      const int root_index = nodes[static_cast<std::size_t>(root_node)].index;
      BufferSpec& spec = buffers[static_cast<std::size_t>(reset_term)];
      spec.indices.insert(spec.indices.begin(), root_index);
      spec.dims.insert(spec.dims.begin(), kernel.index_dim(root_index));
      spec.size *= kernel.index_dim(root_index);
    });
    const VerifyReport report = p.verify();
    EXPECT_FALSE(report.ok());
    EXPECT_TRUE(report.has("par-write-overlap"))
        << kc.name << ":\n" << report.to_string();
    return;
  }
  FAIL() << "no suite plan keeps a reset directly in a root-loop body";
}

// --- defect class: stale cost -------------------------------------------

TEST(PlanVerifier, CorruptCostTripsCostDrift) {
  Planned p = plan_case("mttkrp3");
  p.plan.cost.primary = p.plan.cost.primary * 2 + 17;
  const VerifyReport report = p.verify();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("cost-drift")) << report.to_string();
}

TEST(PlanVerifier, CorruptFlopsTripsFlopsDrift) {
  Planned p = plan_case("mttkrp3");
  p.plan.flops = p.plan.flops * 3 + 1;
  const VerifyReport report = p.verify();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("flops-drift")) << report.to_string();
}

TEST(PlanVerifier, StaleFingerprintTripsFingerprintMismatch) {
  Planned p = plan_case("mttkrp3");
  p.plan.sparsity_fingerprint ^= 0xdeadbeefULL;
  const VerifyReport report = p.verify();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("fingerprint-mismatch")) << report.to_string();
}

TEST(PlanVerifier, TruncatedOrderTripsOrderInvalid) {
  Planned p = plan_case("mttkrp3");
  p.plan.order.pop_back();
  const VerifyReport report = p.verify();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has("order-invalid")) << report.to_string();
}

// --- admission gates -----------------------------------------------------

TEST(KernelCacheVerify, RefusesHandCorruptedPlan) {
  Planned p = plan_case("mttkrp3");
  const KernelSignature sig =
      make_signature(p.kernel(), p.stats(), p.options);
  KernelCache cache(4);
  // The pristine plan is accepted...
  EXPECT_NO_THROW(cache.put(sig, p.kernel(), p.plan));
  // ...the same plan with a hoisted term is refused.
  mutate_tree(&p.plan, [](std::vector<Node>& nodes, std::vector<Action>& top,
                          std::vector<BufferSpec>&) {
    const int n = node_holding_term(nodes, 0);
    ASSERT_GE(n, 0);
    auto& body = nodes[static_cast<std::size_t>(n)].body;
    body.erase(std::find_if(body.begin(), body.end(), [](const Action& a) {
      return a.kind == Action::Kind::kTerm && a.id == 0;
    }));
    top.push_back({Action::Kind::kTerm, 0});
  });
  EXPECT_THROW(cache.put(sig, p.kernel(), p.plan), Error);
}

TEST(KernelCacheVerify, GetOrPlanPublishesVerifiedEntries) {
  const auto inst = make_instance(paper_kernels().front(), 42);
  KernelCache cache(4);
  bool was_cached = true;
  const auto entry = cache.get_or_plan(inst->bound, {}, &was_cached);
  ASSERT_NE(entry, nullptr);
  EXPECT_FALSE(was_cached);
  // The published entry's plan still verifies against its own executor.
  const VerifyReport report =
      PlanVerifier(inst->bound.kernel, {}, &inst->bound.stats)
          .verify(entry->plan, *entry->exec);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(PlanVerifier, VerifyOrThrowCarriesRuleNames) {
  Planned p = plan_case("mttkrp3");
  p.plan.cost.primary += 1e6;
  try {
    verify_plan_or_throw(p.kernel(), p.plan, p.options, &p.stats());
    FAIL() << "expected verify_plan_or_throw to throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("cost-drift"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace spttn
