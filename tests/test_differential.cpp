// Randomized differential harness: the fused executor (sequential and
// work-partitioned parallel) must agree with the exact COO reference and
// the TACO-style unfactorized executor on randomly generated einsum
// kernels. Kernels vary sparse order, dense factor count/shape, output
// kind (dense or pattern-aligned sparse) and sparsity; generation is
// seeded, so failures reproduce bit-for-bit from the attempt number.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "exec/executor.hpp"
#include "exec/reference.hpp"
#include "exec/spttn.hpp"
#include "exec/unfactorized.hpp"
#include "tensor/generate.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace spttn {
namespace {

constexpr int kKernelsRequired = 50;
constexpr int kMaxAttempts = 400;
constexpr double kTol = 1e-10;

struct RandomProblem {
  std::string expr;
  CooTensor sparse;
  std::vector<DenseTensor> factors;
};

/// Draw a random kernel expression plus matching tensors. The sparse
/// operand T comes first; dense factors pick distinct indices from the
/// sparse modes plus a few dense-only indices; the output uses only
/// indices some input binds (a parse requirement).
RandomProblem make_random_problem(std::uint64_t seed) {
  Rng rng(seed);
  RandomProblem p;

  const std::string sparse_names = "ijkl";
  const std::string extra_names = "rstu";
  const int sparse_order = static_cast<int>(rng.next_in(2, 4));
  std::vector<std::int64_t> sdims;
  for (int m = 0; m < sparse_order; ++m) sdims.push_back(rng.next_in(3, 9));

  const int n_extra = static_cast<int>(rng.next_in(0, 3));
  std::vector<std::string> pool;
  std::vector<std::int64_t> pool_dims;
  for (int m = 0; m < sparse_order; ++m) {
    pool.emplace_back(1, sparse_names[static_cast<std::size_t>(m)]);
    pool_dims.push_back(sdims[static_cast<std::size_t>(m)]);
  }
  for (int e = 0; e < n_extra; ++e) {
    pool.emplace_back(1, extra_names[static_cast<std::size_t>(e)]);
    pool_dims.push_back(rng.next_in(2, 6));
  }

  const int n_dense = static_cast<int>(rng.next_in(1, 3));
  std::vector<std::vector<int>> factor_idx(
      static_cast<std::size_t>(n_dense));
  std::vector<bool> used(pool.size(), false);
  for (int m = 0; m < sparse_order; ++m) used[static_cast<std::size_t>(m)] =
      true;
  for (auto& idx : factor_idx) {
    const int order = static_cast<int>(
        rng.next_in(1, std::min<std::int64_t>(3,
                        static_cast<std::int64_t>(pool.size()))));
    std::vector<int> all(pool.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
    rng.shuffle(all);
    idx.assign(all.begin(), all.begin() + order);
    for (int id : idx) used[static_cast<std::size_t>(id)] = true;
  }

  std::vector<int> usable;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (used[i]) usable.push_back(static_cast<int>(i));
  }

  const auto render = [&](const std::string& name,
                          const std::vector<int>& idx) {
    std::string s = name + "(";
    for (std::size_t i = 0; i < idx.size(); ++i) {
      if (i) s += ",";
      s += pool[static_cast<std::size_t>(idx[i])];
    }
    return s + ")";
  };

  std::string out;
  if (rng.next_double() < 0.25) {
    // Pattern-aligned sparse output (TTTP-style): exactly T's indices.
    std::vector<int> sidx;
    for (int m = 0; m < sparse_order; ++m) sidx.push_back(m);
    out = render("S", sidx);
  } else {
    std::vector<int> choice = usable;
    rng.shuffle(choice);
    const int order = static_cast<int>(
        rng.next_in(1, std::min<std::int64_t>(
                           3, static_cast<std::int64_t>(choice.size()))));
    choice.resize(static_cast<std::size_t>(order));
    out = render("O", choice);
  }

  std::vector<int> sparse_idx;
  for (int m = 0; m < sparse_order; ++m) sparse_idx.push_back(m);
  p.expr = out + " = " + render("T", sparse_idx);
  const std::string dense_names = "ABC";
  for (int f = 0; f < n_dense; ++f) {
    p.expr += " * " + render(std::string(1, dense_names[
                                 static_cast<std::size_t>(f)]),
                             factor_idx[static_cast<std::size_t>(f)]);
  }

  double space = 1;
  for (auto d : sdims) space *= static_cast<double>(d);
  const double frac = 0.01 + 0.3 * rng.next_double();
  std::int64_t nnz_target =
      1 + static_cast<std::int64_t>(space * frac);
  if (rng.next_double() < 0.1) nnz_target = rng.next_in(1, 3);  // tiny
  p.sparse = random_coo(sdims, nnz_target, rng);

  for (const auto& idx : factor_idx) {
    std::vector<std::int64_t> dims;
    for (int id : idx) dims.push_back(pool_dims[static_cast<std::size_t>(id)]);
    p.factors.push_back(random_dense(dims, rng));
  }
  return p;
}

TEST(Differential, FusedMatchesReferenceAndUnfactorized) {
  int checked = 0;
  int skipped = 0;
  for (int attempt = 0; attempt < kMaxAttempts && checked < kKernelsRequired;
       ++attempt) {
    const RandomProblem p =
        make_random_problem(0xD1FFE000ull + static_cast<std::uint64_t>(
                                                attempt));
    std::vector<const DenseTensor*> ptrs;
    for (const auto& f : p.factors) ptrs.push_back(&f);

    BoundKernel bound;
    Plan plan;
    try {
      bound = bind(p.expr, p.sparse, ptrs);
      plan = plan_kernel(bound);
    } catch (const Error&) {
      ++skipped;  // kernel admits no single-CSF executable path
      continue;
    }
    SCOPED_TRACE("attempt " + std::to_string(attempt) + ": " + p.expr);
    const Kernel& kernel = bound.kernel;
    FusedExecutor exec(kernel, plan);
    ExecArgs args;
    args.sparse = &bound.csf;
    args.dense = bound.dense;

    if (kernel.output_is_sparse()) {
      const auto nnz = static_cast<std::size_t>(bound.csf.nnz());
      std::vector<double> ref(nnz, 0.0);
      std::vector<double> unf(nnz, 0.0);
      std::vector<double> fused(nnz, 0.0);
      std::vector<double> fused_par(nnz, 0.0);
      reference_execute(kernel, p.sparse, bound.dense, nullptr, ref);
      UnfactorizedExecutor taco(kernel);
      taco.execute(bound.csf, bound.dense, nullptr, unf);
      args.out_sparse = fused;
      exec.execute(args);
      args.out_sparse = fused_par;
      args.num_threads = 3;
      exec.execute(args);
      for (std::size_t e = 0; e < nnz; ++e) {
        ASSERT_NEAR(fused[e], ref[e], kTol);
        ASSERT_NEAR(unf[e], ref[e], kTol);
        ASSERT_NEAR(fused_par[e], ref[e], kTol);
      }
    } else {
      DenseTensor ref = make_output(bound);
      DenseTensor unf = make_output(bound);
      DenseTensor fused = make_output(bound);
      DenseTensor fused_par = make_output(bound);
      reference_execute(kernel, p.sparse, bound.dense, &ref, {});
      UnfactorizedExecutor taco(kernel);
      taco.execute(bound.csf, bound.dense, &unf, {});
      args.out_dense = &fused;
      exec.execute(args);
      args.out_dense = &fused_par;
      args.num_threads = 3;
      exec.execute(args);
      ASSERT_LT(fused.max_abs_diff(ref), kTol);
      ASSERT_LT(unf.max_abs_diff(ref), kTol);
      ASSERT_LT(fused_par.max_abs_diff(ref), kTol);
    }
    ++checked;
  }
  // The generator must actually produce enough executable kernels; if this
  // trips, loosen the generator instead of lowering the bar.
  EXPECT_EQ(checked, kKernelsRequired)
      << "only " << checked << " executable kernels in " << kMaxAttempts
      << " attempts (" << skipped << " skipped)";
}

}  // namespace
}  // namespace spttn
