#include <gtest/gtest.h>

#include "core/planner.hpp"
#include "exec/reference.hpp"
#include "test_helpers.hpp"

namespace spttn {
namespace {

using testing::paper_kernels;

TEST(Planner, Ttmc3PicksFactorizedFusedNest) {
  // Paper Section 7 (TTMc): SpTTN-Cyclops contracts T with V, then U,
  // fusing i and j with an intermediate of dimension S.
  const auto inst = testing::make_instance(paper_kernels()[2], 1);
  PlannerOptions opts;
  opts.buffer_dim_bound = 1;
  const Plan plan = plan_kernel(inst->bound, opts);
  EXPECT_EQ(plan.path.num_terms(), 2);
  EXPECT_LE(plan.tree.max_buffer_dim(), 1);
  // The intermediate spans exactly one dense index.
  const Kernel& k = inst->bound.kernel;
  EXPECT_EQ(plan.tree.buffers()[0].indices.size(), 1u);
  const int buf_id = plan.tree.buffers()[0].indices[0];
  EXPECT_LT(k.csf_level(buf_id), 0);  // a dense index
  // Loop depth 4 (Figure 1b/1c), not 5 (Figure 1d).
  EXPECT_EQ(plan.tree.max_depth(), 4);
}

TEST(Planner, AllModeTtmcBoundControlsNestShape) {
  // Paper Section 7 "Impact of intermediate tensor dimension": with bound 2
  // the chosen nest has buffers of sizes U and S x U-like (dims 1 and 2);
  // with bound 1 the buffers become scalar and 1-dimensional and the dense
  // index joins the sparse prefix.
  const auto inst = testing::make_instance(paper_kernels()[5], 2);
  PlannerOptions bound2;
  bound2.buffer_dim_bound = 2;
  bound2.allow_bound_relaxation = false;
  const Plan p2 = plan_kernel(inst->bound, bound2);
  EXPECT_EQ(p2.tree.max_buffer_dim(), 2);

  PlannerOptions bound1;
  bound1.buffer_dim_bound = 1;
  bound1.allow_bound_relaxation = false;
  const Plan p1 = plan_kernel(inst->bound, bound1);
  EXPECT_LE(p1.tree.max_buffer_dim(), 1);
  // Bound-2 nest offloads more independent dense loops.
  EXPECT_LT(p2.cost.secondary, p1.cost.secondary);
}

TEST(Planner, PlansExecuteCorrectlyForAllKernels) {
  for (std::size_t i = 0; i < paper_kernels().size(); ++i) {
    const auto inst = testing::make_instance(paper_kernels()[i], 100 + i);
    const Kernel& k = inst->bound.kernel;
    const Plan plan = plan_kernel(inst->bound);
    if (k.output_is_sparse()) {
      std::vector<double> got(static_cast<std::size_t>(inst->sparse.nnz()));
      std::vector<double> want(got.size());
      run_plan(inst->bound, plan, nullptr, got);
      reference_execute(k, inst->sparse, inst->dense_slots(), nullptr, want);
      for (std::size_t e = 0; e < got.size(); ++e) {
        ASSERT_NEAR(got[e], want[e], 1e-9) << paper_kernels()[i].name;
      }
    } else {
      DenseTensor got = make_output(inst->bound);
      DenseTensor want = make_output(inst->bound);
      run_plan(inst->bound, plan, &got, {});
      reference_execute(k, inst->sparse, inst->dense_slots(), &want, {});
      ASSERT_LT(want.max_abs_diff(got), 1e-9) << paper_kernels()[i].name;
    }
  }
}

TEST(Planner, ChoosesAsymptoticallyOptimalPathGroup) {
  // The chosen path's FLOPs must equal the minimum over executable paths.
  const auto inst = testing::make_instance(paper_kernels()[2], 3);
  const Kernel& k = inst->bound.kernel;
  const Plan plan = plan_kernel(inst->bound);
  const auto paths = executable_paths(k, inst->bound.stats);
  double best = -1;
  for (const auto& p : paths) {
    const double f = path_flops(k, p, inst->bound.stats);
    if (best < 0 || f < best) best = f;
  }
  EXPECT_NEAR(plan.flops, best, best * 0.3);
}

TEST(Planner, BoundZeroRelaxesWhenAllowed) {
  const auto inst = testing::make_instance(paper_kernels()[2], 4);
  PlannerOptions opts;
  opts.buffer_dim_bound = 0;
  opts.allow_bound_relaxation = true;
  const Plan plan = plan_kernel(inst->bound, opts);
  // TTMc admits a scalar-buffer nest (Listing 4), so bound 0 is feasible
  // without relaxation.
  EXPECT_EQ(plan.buffer_dim_bound, 0);
  EXPECT_EQ(plan.tree.max_buffer_dim(), 0);
}

TEST(Planner, MttkrpNeedsBoundOne) {
  // MTTKRP's factorized nest needs a rank-length accumulator: with bound 0
  // and no relaxation only the (B*C)*T path with scalar buffers could
  // qualify — verify relaxation reports the bound actually used.
  const auto inst = testing::make_instance(paper_kernels()[0], 5);
  PlannerOptions opts;
  opts.buffer_dim_bound = 0;
  opts.allow_bound_relaxation = true;
  const Plan plan = plan_kernel(inst->bound, opts);
  EXPECT_LE(plan.tree.max_buffer_dim(), plan.buffer_dim_bound);
}

TEST(Planner, DiagnosticsPopulated) {
  const auto inst = testing::make_instance(paper_kernels()[0], 6);
  const Plan plan = plan_kernel(inst->bound);
  EXPECT_EQ(plan.paths_total, 3);       // count_paths(3)
  EXPECT_EQ(plan.paths_executable, 2);  // (T*C)*B and (B*C)*T
  EXPECT_GE(plan.paths_searched, 1);
  // The group search must report how many searched paths were feasible —
  // the chosen plan implies at least one — and its DP effort.
  EXPECT_GE(plan.paths_feasible, 1);
  EXPECT_LE(plan.paths_feasible, plan.paths_searched);
  EXPECT_GT(plan.dp_subproblems, 0);
  EXPECT_GT(plan.dp_evaluations, 0);
  const std::string desc = plan.describe(inst->bound.kernel);
  EXPECT_NE(desc.find("kernel:"), std::string::npos);
  EXPECT_NE(desc.find("for"), std::string::npos);
}

TEST(Planner, UnplannableKernelThrows) {
  // A kernel whose only input is sparse has no contraction path.
  CooTensor t({4, 4});
  t.push_back({1, 2}, 1.0);
  t.sort_dedup();
  const BoundKernel bound = bind("S(i,j) = T(i,j)", t, {});
  EXPECT_THROW(plan_kernel(bound), Error);
}

TEST(Planner, CostModelFactoryCoversAllKinds) {
  PlannerOptions opts;
  for (CostKind kind :
       {CostKind::kMaxBufferDim, CostKind::kMaxBufferSize,
        CostKind::kCacheMiss, CostKind::kBoundedBufferBlas}) {
    opts.cost = kind;
    const auto model = make_cost_model(opts, nullptr);
    ASSERT_NE(model, nullptr);
    EXPECT_FALSE(model->name().empty());
  }
}

// The parallel group search must be a pure speedup: same chosen plan (path,
// order, cost) and identical search statistics as the sequential search,
// for every kernel family. DP results merge in path order, so this holds
// by construction — the test pins the contract.
struct PlannerSearchConcurrency : ::testing::TestWithParam<int> {};

TEST_P(PlannerSearchConcurrency, ParallelSearchMatchesSequential) {
  const int kernel_idx = GetParam();
  const auto inst = testing::make_instance(
      paper_kernels()[static_cast<std::size_t>(kernel_idx)],
      7000 + kernel_idx);
  PlannerOptions seq_opts;
  seq_opts.search_threads = 1;
  const Plan seq = plan_kernel(inst->bound, seq_opts);
  for (int threads : {0, 4, 16}) {  // 0 = every pool lane
    SCOPED_TRACE("search_threads=" + std::to_string(threads));
    PlannerOptions par_opts;
    par_opts.search_threads = threads;
    const Plan par = plan_kernel(inst->bound, par_opts);
    const Kernel& k = inst->bound.kernel;
    EXPECT_EQ(par.path.to_string(k), seq.path.to_string(k));
    EXPECT_EQ(order_to_string(k, par.order), order_to_string(k, seq.order));
    EXPECT_TRUE(par.cost == seq.cost)
        << par.cost.to_string() << " vs " << seq.cost.to_string();
    EXPECT_EQ(par.flops, seq.flops);
    EXPECT_EQ(par.buffer_dim_bound, seq.buffer_dim_bound);
    EXPECT_EQ(par.paths_total, seq.paths_total);
    EXPECT_EQ(par.paths_executable, seq.paths_executable);
    EXPECT_EQ(par.paths_searched, seq.paths_searched);
    EXPECT_EQ(par.paths_feasible, seq.paths_feasible);
    EXPECT_EQ(par.dp_subproblems, seq.dp_subproblems);
    EXPECT_EQ(par.dp_evaluations, seq.dp_evaluations);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, PlannerSearchConcurrency, ::testing::Range(0, 10),
    [](const ::testing::TestParamInfo<int>& info) {
      return paper_kernels()[static_cast<std::size_t>(info.param)].name;
    });

// The parallel executable-path filter (and its precomputed FLOP sort keys)
// must reproduce the sequential enumeration order exactly. The parallel
// call runs on a *fresh* SparsityStats so its lazy projection cache starts
// cold — concurrent path_flops calls then race to fill it, which is
// exactly the access pattern the cache's internal lock must serialize
// (under TSan this is the regression test for that lock).
TEST(Planner, ParallelExecutablePathsMatchSequential) {
  testing::ScopedLanes lanes(4);  // real lanes even on 1-core CI boxes
  for (int kernel_idx : {0, 2, 4, 6}) {
    const auto inst = testing::make_instance(
        paper_kernels()[static_cast<std::size_t>(kernel_idx)],
        7700 + kernel_idx);
    const Kernel& k = inst->bound.kernel;
    int total_seq = 0;
    int total_par = 0;
    const auto seq = executable_paths(k, inst->bound.stats, &total_seq, 1);
    const SparsityStats cold = SparsityStats::from_coo(inst->sparse);
    const auto par = executable_paths(k, cold, &total_par, 0);
    EXPECT_EQ(total_seq, total_par);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
      EXPECT_EQ(seq[i].to_string(k), par[i].to_string(k)) << "path " << i;
    }
  }
}

}  // namespace
}  // namespace spttn
