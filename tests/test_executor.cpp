// Correctness of the fused executor and every baseline, all validated
// against the exact reference executor.
#include <gtest/gtest.h>

#include <memory>

#include "core/enumerate.hpp"
#include "exec/executor.hpp"
#include "exec/pairwise.hpp"
#include "exec/reference.hpp"
#include "exec/schedules.hpp"
#include "exec/specialized.hpp"
#include "exec/unfactorized.hpp"
#include "test_helpers.hpp"

namespace spttn {
namespace {

using testing::Instance;
using testing::KernelCase;
using testing::paper_kernels;

constexpr double kTol = 1e-9;

/// Reference result holder (dense or sparse output).
struct Golden {
  DenseTensor dense;
  std::vector<double> sparse_vals;
  bool is_sparse = false;
};

Golden golden(const Instance& inst) {
  Golden g;
  const Kernel& k = inst.bound.kernel;
  g.is_sparse = k.output_is_sparse();
  if (g.is_sparse) {
    g.sparse_vals.assign(static_cast<std::size_t>(inst.sparse.nnz()), 0.0);
    reference_execute(k, inst.sparse, inst.dense_slots(), nullptr,
                      g.sparse_vals);
  } else {
    g.dense = make_output(inst.bound);
    reference_execute(k, inst.sparse, inst.dense_slots(), &g.dense, {});
  }
  return g;
}

double diff_against(const Golden& g, const DenseTensor& dense,
                    std::span<const double> sparse_vals) {
  if (g.is_sparse) {
    double m = 0;
    for (std::size_t e = 0; e < g.sparse_vals.size(); ++e) {
      m = std::max(m, std::abs(g.sparse_vals[e] - sparse_vals[e]));
    }
    return m;
  }
  return g.dense.max_abs_diff(dense);
}

struct FusedVsReference : ::testing::TestWithParam<int> {};

TEST_P(FusedVsReference, EveryOrderOfEveryExecutablePathMatches) {
  const KernelCase kc = paper_kernels()[static_cast<std::size_t>(GetParam())];
  const auto inst = testing::make_instance(kc, 555 + GetParam());
  const Kernel& kernel = inst->bound.kernel;
  const Golden g = golden(*inst);

  const auto paths = executable_paths(kernel, inst->bound.stats);
  ASSERT_FALSE(paths.empty());
  int paths_tested = 0;
  std::uint64_t orders_tested = 0;
  for (const auto& path : paths) {
    if (++paths_tested > 3) break;
    EnumerateOptions eopts;
    eopts.limit = 48;  // cap per path; orders differ structurally early
    enumerate_orders(kernel, path, eopts, [&](const LoopOrder& order) {
      FusedExecutor exec(kernel, path, order);
      ExecArgs args;
      args.sparse = &inst->bound.csf;
      args.dense = inst->bound.dense;
      DenseTensor out;
      std::vector<double> out_vals;
      if (g.is_sparse) {
        out_vals.assign(static_cast<std::size_t>(inst->sparse.nnz()), 0.0);
        args.out_sparse = out_vals;
      } else {
        out = make_output(inst->bound);
        args.out_dense = &out;
      }
      exec.execute(args);
      ++orders_tested;
      ASSERT_LT(diff_against(g, out, out_vals), kTol)
          << kc.name << "\npath: " << path.to_string(kernel)
          << "\norder: " << order_to_string(kernel, order);
    });
  }
  ASSERT_GT(orders_tested, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, FusedVsReference, ::testing::Range(0, 10),
    [](const ::testing::TestParamInfo<int>& info) {
      return paper_kernels()[static_cast<std::size_t>(info.param)].name;
    });

struct BaselinesVsReference : ::testing::TestWithParam<int> {};

TEST_P(BaselinesVsReference, UnfactorizedMatches) {
  const KernelCase kc = paper_kernels()[static_cast<std::size_t>(GetParam())];
  const auto inst = testing::make_instance(kc, 777 + GetParam());
  const Golden g = golden(*inst);
  UnfactorizedExecutor exec(inst->bound.kernel);
  DenseTensor out;
  std::vector<double> out_vals;
  if (g.is_sparse) {
    out_vals.assign(static_cast<std::size_t>(inst->sparse.nnz()), 0.0);
    exec.execute(inst->bound.csf, inst->dense_slots(), nullptr, out_vals);
  } else {
    out = make_output(inst->bound);
    exec.execute(inst->bound.csf, inst->dense_slots(), &out, {});
  }
  EXPECT_LT(diff_against(g, out, out_vals), kTol) << kc.name;
}

TEST_P(BaselinesVsReference, PairwiseMatchesOnBestAndWorstPaths) {
  const KernelCase kc = paper_kernels()[static_cast<std::size_t>(GetParam())];
  const auto inst = testing::make_instance(kc, 999 + GetParam());
  const Golden g = golden(*inst);
  const Kernel& kernel = inst->bound.kernel;
  const auto all = enumerate_paths(kernel);
  // Check the framework-chosen path plus a couple of arbitrary ones
  // (pairwise must be correct on any path, executable or not).
  std::vector<ContractionPath> to_test{
      pairwise_best_path(kernel, inst->bound.stats)};
  to_test.push_back(all.front());
  to_test.push_back(all.back());
  for (const auto& path : to_test) {
    DenseTensor out;
    std::vector<double> out_vals;
    PairwiseStats st;
    if (g.is_sparse) {
      out_vals.assign(static_cast<std::size_t>(inst->sparse.nnz()), 0.0);
      st = pairwise_execute(kernel, path, inst->sparse, inst->dense_slots(),
                            nullptr, out_vals);
    } else {
      out = make_output(inst->bound);
      st = pairwise_execute(kernel, path, inst->sparse, inst->dense_slots(),
                            &out, {});
    }
    EXPECT_LT(diff_against(g, out, out_vals), kTol)
        << kc.name << " path " << path.to_string(kernel);
    EXPECT_GT(st.total_scalar_ops, 0);
  }
}

TEST_P(BaselinesVsReference, SparseLnrScheduleMatches) {
  const KernelCase kc = paper_kernels()[static_cast<std::size_t>(GetParam())];
  const auto inst = testing::make_instance(kc, 1313 + GetParam());
  const Golden g = golden(*inst);
  const Kernel& kernel = inst->bound.kernel;
  const auto [path, order] = sparselnr_schedule(kernel);
  FusedExecutor exec(kernel, path, order);
  ExecArgs args;
  args.sparse = &inst->bound.csf;
  args.dense = inst->bound.dense;
  DenseTensor out;
  std::vector<double> out_vals;
  if (g.is_sparse) {
    out_vals.assign(static_cast<std::size_t>(inst->sparse.nnz()), 0.0);
    args.out_sparse = out_vals;
  } else {
    out = make_output(inst->bound);
    args.out_dense = &out;
  }
  exec.execute(args);
  EXPECT_LT(diff_against(g, out, out_vals), kTol) << kc.name;
}

TEST_P(BaselinesVsReference, UnfusedPairwiseScheduleMatches) {
  const KernelCase kc = paper_kernels()[static_cast<std::size_t>(GetParam())];
  const auto inst = testing::make_instance(kc, 1717 + GetParam());
  const Golden g = golden(*inst);
  const Kernel& kernel = inst->bound.kernel;
  const auto [path, order] = unfused_pairwise_schedule(kernel);
  FusedExecutor exec(kernel, path, order);
  ExecArgs args;
  args.sparse = &inst->bound.csf;
  args.dense = inst->bound.dense;
  DenseTensor out;
  std::vector<double> out_vals;
  if (g.is_sparse) {
    out_vals.assign(static_cast<std::size_t>(inst->sparse.nnz()), 0.0);
    args.out_sparse = out_vals;
  } else {
    out = make_output(inst->bound);
    args.out_dense = &out;
  }
  exec.execute(args);
  EXPECT_LT(diff_against(g, out, out_vals), kTol) << kc.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, BaselinesVsReference, ::testing::Range(0, 10),
    [](const ::testing::TestParamInfo<int>& info) {
      return paper_kernels()[static_cast<std::size_t>(info.param)].name;
    });

TEST(Specialized, Mttkrp3MatchesReference) {
  const auto inst = testing::make_instance(paper_kernels()[0], 4242);
  const Golden g = golden(*inst);
  DenseTensor out = make_output(inst->bound);
  splatt_mttkrp3(inst->bound.csf, inst->factors[0], inst->factors[1], &out);
  EXPECT_LT(g.dense.max_abs_diff(out), kTol);
}

TEST(Specialized, Mttkrp4MatchesReference) {
  const auto inst = testing::make_instance(paper_kernels()[1], 4243);
  const Golden g = golden(*inst);
  DenseTensor out = make_output(inst->bound);
  splatt_mttkrp4(inst->bound.csf, inst->factors[0], inst->factors[1],
                 inst->factors[2], &out);
  EXPECT_LT(g.dense.max_abs_diff(out), kTol);
}

TEST(Specialized, Ttmc3MatchesReference) {
  const auto inst = testing::make_instance(paper_kernels()[2], 4244);
  const Golden g = golden(*inst);
  DenseTensor out = make_output(inst->bound);
  ttmc3_specialized(inst->bound.csf, inst->factors[0], inst->factors[1],
                    &out);
  EXPECT_LT(g.dense.max_abs_diff(out), kTol);
}

TEST(Specialized, Tttp3MatchesReference) {
  const auto inst = testing::make_instance(paper_kernels()[4], 4245);
  const Golden g = golden(*inst);
  std::vector<double> out(static_cast<std::size_t>(inst->sparse.nnz()), 0.0);
  tttp3_specialized(inst->bound.csf, inst->factors[0], inst->factors[1],
                    inst->factors[2], out);
  double m = 0;
  for (std::size_t e = 0; e < out.size(); ++e) {
    m = std::max(m, std::abs(out[e] - g.sparse_vals[e]));
  }
  EXPECT_LT(m, kTol);
}

TEST(FusedExecutor, ReusableAcrossExecutions) {
  // Buffers must be reset correctly so a second run gives the same result.
  const auto inst = testing::make_instance(paper_kernels()[2], 31337);
  const Kernel& kernel = inst->bound.kernel;
  const auto paths = executable_paths(kernel, inst->bound.stats);
  const auto [path, order] = sparselnr_schedule(kernel);
  FusedExecutor exec(kernel, path, order);
  DenseTensor out1 = make_output(inst->bound);
  DenseTensor out2 = make_output(inst->bound);
  ExecArgs args;
  args.sparse = &inst->bound.csf;
  args.dense = inst->bound.dense;
  args.out_dense = &out1;
  exec.execute(args);
  args.out_dense = &out2;
  exec.execute(args);
  EXPECT_LT(out1.max_abs_diff(out2), kTol);
}

TEST(FusedExecutor, AccumulateMode) {
  const auto inst = testing::make_instance(paper_kernels()[0], 2024);
  const Kernel& kernel = inst->bound.kernel;
  const auto paths = executable_paths(kernel, inst->bound.stats);
  ASSERT_FALSE(paths.empty());
  EnumerateOptions eopts;
  eopts.limit = 1;
  LoopOrder order;
  enumerate_orders(kernel, paths[0], eopts,
                   [&](const LoopOrder& o) { order = o; });
  FusedExecutor exec(kernel, paths[0], order);
  DenseTensor out = make_output(inst->bound);
  ExecArgs args;
  args.sparse = &inst->bound.csf;
  args.dense = inst->bound.dense;
  args.out_dense = &out;
  exec.execute(args);
  const double norm1 = out.norm();
  args.accumulate = true;
  exec.execute(args);  // doubles the result
  EXPECT_NEAR(out.norm(), 2 * norm1, 1e-6 * norm1);
}

TEST(FusedExecutor, EmptySparseTensorGivesZero) {
  CooTensor empty({5, 4, 3});
  empty.sort_dedup();
  Rng rng(3);
  const DenseTensor b = random_dense({4, 2}, rng);
  const DenseTensor c = random_dense({3, 2}, rng);
  const BoundKernel bound =
      bind("A(i,r) = T(i,j,k)*B(j,r)*C(k,r)", empty, {&b, &c});
  const Plan plan = plan_kernel(bound);
  DenseTensor out = make_output(bound);
  out.fill(7.0);
  run_plan(bound, plan, &out, {});
  EXPECT_DOUBLE_EQ(out.norm(), 0.0);
}

TEST(FusedExecutor, ValidatesBindings) {
  const auto inst = testing::make_instance(paper_kernels()[0], 11);
  const Kernel& kernel = inst->bound.kernel;
  const auto paths = executable_paths(kernel, inst->bound.stats);
  EnumerateOptions eopts;
  eopts.limit = 1;
  LoopOrder order;
  enumerate_orders(kernel, paths[0], eopts,
                   [&](const LoopOrder& o) { order = o; });
  FusedExecutor exec(kernel, paths[0], order);
  ExecArgs args;  // nothing bound
  EXPECT_THROW(exec.execute(args), Error);
  args.sparse = &inst->bound.csf;
  args.dense = inst->bound.dense;
  EXPECT_THROW(exec.execute(args), Error);  // missing output
  DenseTensor wrong({3, 3});
  args.out_dense = &wrong;
  EXPECT_THROW(exec.execute(args), Error);  // wrong output shape
}

TEST(FusedExecutor, OffloadsTrailingDenseLoops) {
  // The Listing 3 TTMc nest offloads both terms' trailing dense loops.
  Kernel k = Kernel::parse("S(i,r,s) = T(i,j,k)*V(k,s)*U(j,r)");
  for (const auto& [n, d] : std::vector<std::pair<std::string, std::int64_t>>{
           {"i", 10}, {"j", 9}, {"k", 8}, {"s", 5}, {"r", 4}}) {
    k.set_index_dim(k.index_id(n), d);
  }
  const ContractionPath path = chain_path(k);
  const int i = k.index_id("i"), j = k.index_id("j"), kk = k.index_id("k"),
            r = k.index_id("r"), s = k.index_id("s");
  const FusedExecutor exec(k, path, {{i, j, kk, s}, {i, j, s, r}});
  EXPECT_EQ(exec.offloaded_terms(), 2);
  EXPECT_EQ(exec.collapsed_loops(), 3);  // s | s,r
}

}  // namespace
}  // namespace spttn
