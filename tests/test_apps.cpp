// Integration tests: the decomposition/completion drivers exercise the
// full stack (parser -> planner -> DP -> executor) on realistic workloads
// and must make optimization progress.
#include <gtest/gtest.h>

#include "apps/decompose.hpp"
#include "apps/linalg.hpp"
#include "tensor/generate.hpp"
#include "util/rng.hpp"

namespace spttn {
namespace {

TEST(Linalg, GramMatchesNaive) {
  Rng rng(1);
  const DenseTensor a = random_dense({7, 3}, rng);
  const DenseTensor g = gram(a);
  for (std::int64_t p = 0; p < 3; ++p) {
    for (std::int64_t q = 0; q < 3; ++q) {
      double want = 0;
      for (std::int64_t i = 0; i < 7; ++i) {
        want += a.at({i, p}) * a.at({i, q});
      }
      EXPECT_NEAR(g.at({p, q}), want, 1e-12);
    }
  }
}

TEST(Linalg, SolveNormalEquationsRecoversKnownSolution) {
  Rng rng(2);
  // Build SPD a = m^T m + I, pick x, compute b = x a, then solve.
  DenseTensor m = random_dense({6, 4}, rng);
  DenseTensor a = gram(m);
  for (std::int64_t i = 0; i < 4; ++i) a.at({i, i}) += 1.0;
  const DenseTensor x = random_dense({3, 4}, rng);
  DenseTensor b = matmul(x, a);
  solve_normal_equations(a, &b, 0.0);
  EXPECT_LT(x.max_abs_diff(b), 1e-8);
}

TEST(Linalg, SolveHandlesSingularWithRidge) {
  DenseTensor a({2, 2});  // all zeros: singular
  DenseTensor b({1, 2});
  b.at({0, 0}) = 1.0;
  EXPECT_NO_THROW(solve_normal_equations(a, &b));
}

TEST(Linalg, OrthonormalizeProducesOrthonormalColumns) {
  Rng rng(3);
  DenseTensor a = random_dense({10, 4}, rng);
  orthonormalize_columns(&a);
  const DenseTensor g = gram(a);
  for (std::int64_t p = 0; p < 4; ++p) {
    for (std::int64_t q = 0; q < 4; ++q) {
      EXPECT_NEAR(g.at({p, q}), p == q ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(Linalg, OrthonormalizeHandlesRankDeficiency) {
  DenseTensor a({5, 3});  // zero matrix
  orthonormalize_columns(&a);
  const DenseTensor g = gram(a);
  for (std::int64_t p = 0; p < 3; ++p) EXPECT_NEAR(g.at({p, p}), 1.0, 1e-12);
}

TEST(Linalg, MatmulMatchesNaive) {
  Rng rng(4);
  const DenseTensor a = random_dense({3, 5}, rng);
  const DenseTensor b = random_dense({5, 2}, rng);
  const DenseTensor c = matmul(a, b);
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < 2; ++j) {
      double want = 0;
      for (std::int64_t k = 0; k < 5; ++k) want += a.at({i, k}) * b.at({k, j});
      EXPECT_NEAR(c.at({i, j}), want, 1e-12);
    }
  }
}

TEST(CpAls, RecoversDenselySampledLowRankTensor) {
  // A fully observed rank-4 tensor (stored sparsely) is exactly rank 4, so
  // ALS must drive the fit toward 1.
  Rng rng(42);
  const CooTensor t = lowrank_coo({15, 12, 10}, 4, 15 * 12 * 10, 0.0, rng);
  ASSERT_EQ(t.nnz(), 15 * 12 * 10);
  CpModel model = make_cp_model(t, 4, rng);
  const double fit0 = cp_fit(t, model);
  const AlsReport report = cp_als(t, &model, 10);
  ASSERT_EQ(report.sweeps, 10);
  EXPECT_GT(report.fits.back(), fit0);
  EXPECT_GT(report.fits.back(), 0.95);
  EXPECT_GE(report.fits.back(), report.fits.front() - 1e-9);
  EXPECT_GT(report.seconds_in_kernels, 0.0);
}

TEST(CpAls, ImprovesFitOnSparseTensor) {
  // On a genuinely sparse tensor ALS cannot reach fit 1, but every sweep
  // must still improve the objective.
  Rng rng(43);
  const CooTensor t = lowrank_coo({30, 25, 20}, 4, 3000, 0.01, rng);
  CpModel model = make_cp_model(t, 4, rng);
  const double fit0 = cp_fit(t, model);
  const AlsReport report = cp_als(t, &model, 6);
  EXPECT_GT(report.fits.back(), fit0);
  for (std::size_t s = 1; s < report.fits.size(); ++s) {
    EXPECT_GE(report.fits[s], report.fits[s - 1] - 1e-7);
  }
}

TEST(CpAls, WorksOnOrder4) {
  Rng rng(44);
  const CooTensor t = lowrank_coo({8, 7, 6, 5}, 3, 8 * 7 * 6 * 5, 0.0, rng);
  CpModel model = make_cp_model(t, 3, rng);
  const AlsReport report = cp_als(t, &model, 12);
  EXPECT_GT(report.fits.back(), 0.9);
}

TEST(TuckerHooi, CoreNormGrows) {
  Rng rng(44);
  const CooTensor t = lowrank_coo({24, 20, 16}, 3, 2500, 0.02, rng);
  TuckerModel model = make_tucker_model(t, {3, 3, 3}, rng);
  const HooiReport report = tucker_hooi(t, &model, 5);
  ASSERT_EQ(report.sweeps, 5);
  // |G| increases monotonically toward |T| as the subspaces improve.
  for (std::size_t s = 1; s < report.core_norms.size(); ++s) {
    EXPECT_GE(report.core_norms[s], report.core_norms[s - 1] - 1e-9);
  }
  double tnorm = 0;
  for (double v : t.values()) tnorm += v * v;
  EXPECT_LE(report.core_norms.back(), std::sqrt(tnorm) + 1e-6);
  EXPECT_GT(report.core_norms.back(), 0.5 * std::sqrt(tnorm));
}

TEST(TuckerHooi, FactorsStayOrthonormal) {
  Rng rng(45);
  const CooTensor t = lowrank_coo({15, 14, 13}, 2, 1200, 0.05, rng);
  TuckerModel model = make_tucker_model(t, {2, 2, 2}, rng);
  tucker_hooi(t, &model, 3);
  for (const auto& u : model.factors) {
    const DenseTensor g = gram(u);
    for (std::int64_t p = 0; p < g.dim(0); ++p) {
      for (std::int64_t q = 0; q < g.dim(1); ++q) {
        EXPECT_NEAR(g.at({p, q}), p == q ? 1.0 : 0.0, 1e-8);
      }
    }
  }
}

TEST(CpCompletion, RmseDecreases) {
  Rng rng(46);
  const CooTensor observed = lowrank_coo({25, 22, 18}, 3, 2500, 0.005, rng);
  CpModel model = make_cp_model(observed, 3, rng);
  const CompletionReport report = cp_complete(observed, &model, 60, 0.03);
  ASSERT_EQ(report.epochs, 60);
  EXPECT_LT(report.rmse.back(), report.rmse.front() * 0.9)
      << "gradient completion should reduce observed RMSE";
  // No epoch may blow up.
  for (double r : report.rmse) EXPECT_LT(r, report.rmse.front() * 4);
}

TEST(CpCompletion, PredictsHeldOutEntries) {
  Rng rng(47);
  // Noise-free rank-2 ground truth; train on one sample of positions and
  // evaluate on another.
  const CooTensor train = lowrank_coo({20, 20, 20}, 2, 2400, 0.0, rng);
  CpModel model = make_cp_model(train, 2, rng);
  cp_complete(train, &model, 120, 0.03);
  // In-sample reconstruction should be decent.
  double se = 0;
  double norm = 0;
  for (std::int64_t e = 0; e < train.nnz(); ++e) {
    const double err = train.value(e) - model.value_at(train.coord(e));
    se += err * err;
    norm += train.value(e) * train.value(e);
  }
  EXPECT_LT(se, 0.35 * norm);
}

}  // namespace
}  // namespace spttn
