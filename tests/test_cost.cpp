#include <gtest/gtest.h>

#include <set>

#include "core/cost.hpp"
#include "core/loop_tree.hpp"
#include "tensor/generate.hpp"
#include "util/rng.hpp"

namespace spttn {
namespace {

struct Ttmc3Cost : ::testing::Test {
  Kernel kernel = Kernel::parse("S(i,r,s) = T(i,j,k)*V(k,s)*U(j,r)");
  ContractionPath path;
  int i, j, k, r, s;

  void SetUp() override {
    for (const auto& [n, d] :
         std::vector<std::pair<std::string, std::int64_t>>{
             {"i", 10}, {"j", 9}, {"k", 8}, {"s", 5}, {"r", 4}}) {
      kernel.set_index_dim(kernel.index_id(n), d);
    }
    path = chain_path(kernel);
    i = kernel.index_id("i");
    j = kernel.index_id("j");
    k = kernel.index_id("k");
    r = kernel.index_id("r");
    s = kernel.index_id("s");
  }
};

TEST_F(Ttmc3Cost, BufferDimMatchesListings) {
  const MaxBufferDimCost cost;
  // Listing 3: buffer X(s) — dimension 1.
  EXPECT_DOUBLE_EQ(
      evaluate_cost(kernel, path, {{i, j, k, s}, {i, j, s, r}}, cost).primary,
      1.0);
  // Listing 4: scalar buffer — dimension 0.
  EXPECT_DOUBLE_EQ(
      evaluate_cost(kernel, path, {{i, j, s, k}, {i, j, s, r}}, cost).primary,
      0.0);
  // Listing 2 (unfused): buffer X(i,j,s) — dimension 3.
  EXPECT_DOUBLE_EQ(
      evaluate_cost(kernel, path, {{i, j, k, s}, {s, i, j, r}}, cost).primary,
      3.0);
}

TEST_F(Ttmc3Cost, BufferSizeMatchesListings) {
  const MaxBufferSizeCost cost;
  EXPECT_DOUBLE_EQ(
      evaluate_cost(kernel, path, {{i, j, k, s}, {i, j, s, r}}, cost).primary,
      5.0);  // S
  EXPECT_DOUBLE_EQ(
      evaluate_cost(kernel, path, {{i, j, s, k}, {i, j, s, r}}, cost).primary,
      1.0);  // scalar
  EXPECT_DOUBLE_EQ(
      evaluate_cost(kernel, path, {{i, j, k, s}, {s, i, j, r}}, cost).primary,
      10.0 * 9 * 5);
}

TEST_F(Ttmc3Cost, CostAgreesWithBuiltTree) {
  // evaluate_cost and LoopTree::build compute buffers independently; they
  // must agree on every order we throw at them.
  const MaxBufferDimCost dim_cost;
  const MaxBufferSizeCost size_cost;
  const std::vector<LoopOrder> orders = {
      {{i, j, k, s}, {i, j, s, r}},  {{i, j, s, k}, {i, j, s, r}},
      {{i, j, k, s}, {s, i, j, r}},  {{i, s, j, k}, {i, s, j, r}},
      {{i, j, k, s}, {i, s, j, r}},  {{s, i, j, k}, {s, i, j, r}},
  };
  for (const auto& order : orders) {
    const LoopTree tree = LoopTree::build(kernel, path, order);
    EXPECT_DOUBLE_EQ(evaluate_cost(kernel, path, order, dim_cost).primary,
                     static_cast<double>(tree.max_buffer_dim()))
        << order_to_string(kernel, order);
    EXPECT_DOUBLE_EQ(evaluate_cost(kernel, path, order, size_cost).primary,
                     static_cast<double>(tree.max_buffer_size()))
        << order_to_string(kernel, order);
  }
}

TEST_F(Ttmc3Cost, CacheMissIsOrderSensitiveAndPositive) {
  const CacheMissCost cost(1);
  const std::vector<LoopOrder> orders = {
      {{i, j, k, s}, {i, j, s, r}}, {{i, j, s, k}, {i, j, s, r}},
      {{s, i, j, k}, {s, i, j, r}}, {{i, s, j, k}, {i, s, j, r}},
  };
  std::set<double> distinct;
  for (const auto& order : orders) {
    const Cost c = evaluate_cost(kernel, path, order, cost);
    EXPECT_GT(c.primary, 0.0);
    distinct.insert(c.primary);
  }
  // The model discriminates between loop orders.
  EXPECT_GT(distinct.size(), 1u);
}

TEST_F(Ttmc3Cost, CacheMissModelScalesWithLoopExtent) {
  // phi = I(r)(tau + x): doubling a dense dimension should increase cost.
  Kernel big = Kernel::parse("S(i,r,s) = T(i,j,k)*V(k,s)*U(j,r)");
  for (const auto& [n, d] : std::vector<std::pair<std::string, std::int64_t>>{
           {"i", 10}, {"j", 9}, {"k", 8}, {"s", 10}, {"r", 4}}) {
    big.set_index_dim(big.index_id(n), d);
  }
  const ContractionPath big_path = chain_path(big);
  const CacheMissCost cost(1);
  const LoopOrder order{{i, j, k, s}, {i, j, s, r}};
  EXPECT_GT(evaluate_cost(big, big_path, order, cost).primary,
            evaluate_cost(kernel, path, order, cost).primary);
}

TEST_F(Ttmc3Cost, SparseAwareCacheUsesFanouts) {
  Rng rng(3);
  const CooTensor t = hierarchical_coo({10, 9, 8}, 8, {4.0, 3.0}, rng);
  const SparsityStats stats = SparsityStats::from_coo(t);
  const CacheMissCost dense_model(1, nullptr, false);
  const CacheMissCost sparse_model(1, &stats, true);
  const LoopOrder order{{i, j, k, s}, {i, j, s, r}};
  // Sparse-aware trip counts (fan-outs ~4, ~3) are far below the dense dims
  // (9, 8), so modeled misses shrink.
  EXPECT_LT(evaluate_cost(kernel, path, order, sparse_model).primary,
            evaluate_cost(kernel, path, order, dense_model).primary);
}

TEST_F(Ttmc3Cost, BoundedBlasFeasibility) {
  const BoundedBufferBlasCost bound1(1);
  const BoundedBufferBlasCost bound0(0);
  const LoopOrder listing3{{i, j, k, s}, {i, j, s, r}};
  const LoopOrder listing4{{i, j, s, k}, {i, j, s, r}};
  EXPECT_FALSE(evaluate_cost(kernel, path, listing3, bound1).is_inf());
  EXPECT_TRUE(evaluate_cost(kernel, path, listing3, bound0).is_inf());
  EXPECT_FALSE(evaluate_cost(kernel, path, listing4, bound0).is_inf());
}

TEST_F(Ttmc3Cost, BoundedBlasCountsIndependentDenseLoops) {
  const BoundedBufferBlasCost cost(2);
  // Listing 3 nest has 3 exclusive dense loops (s | s, r);
  // Listing 4 nest has 2 (k is sparse; s shared; trailing k?, r only... the
  // exclusive dense loops are term1's none and term2's r, plus term1's
  // nothing — expect fewer than Listing 3).
  const Cost l3 =
      evaluate_cost(kernel, path, {{i, j, k, s}, {i, j, s, r}}, cost);
  const Cost l4 =
      evaluate_cost(kernel, path, {{i, j, s, k}, {i, j, s, r}}, cost);
  EXPECT_DOUBLE_EQ(l3.secondary, -3.0);
  EXPECT_GT(l4.secondary, l3.secondary);  // fewer independent dense loops
}

TEST(CostValue, LexicographicOrdering) {
  const Cost a{0, -3, 100};
  const Cost b{0, -2, 1};
  const Cost c{1, -9, 0};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a < c);
  EXPECT_TRUE(b < c);
  EXPECT_TRUE(Cost::inf().is_inf());
  EXPECT_FALSE(a.is_inf());
}

}  // namespace
}  // namespace spttn
