// Serving-layer semantics: KernelCache keying (hit after identical bind,
// miss on changed extents / sparsity fingerprint / options), bit-identical
// cached-vs-fresh execution (sequential and threaded), LRU eviction, the
// stale-stats fingerprint guard, Session behavior (prepare memoization,
// value rewrites, sparse outputs), and concurrent submit() — the latter is
// part of the TSan CI job's test list.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "serve/kernel_cache.hpp"
#include "serve/session.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace spttn {
namespace {

using testing::Instance;
using testing::KernelCase;
using testing::ScopedLanes;
using testing::make_instance;
using testing::paper_kernels;

const KernelCase& kernel_case(const std::string& name) {
  static const std::vector<KernelCase> cases = paper_kernels();
  for (const auto& kc : cases) {
    if (kc.name == name) return kc;
  }
  SPTTN_CHECK_MSG(false, "unknown kernel case " << name);
  return cases.front();
}

TEST(KernelSignature, EqualityAndHashTrackInputs) {
  auto inst = make_instance(kernel_case("mttkrp3"), 11);
  const PlannerOptions options;
  const KernelSignature a =
      make_signature(inst->bound.kernel, inst->bound.stats, options);
  const KernelSignature b =
      make_signature(inst->bound.kernel, inst->bound.stats, options);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());

  // Different planner options that change the plan => different signature.
  PlannerOptions other = options;
  other.buffer_dim_bound = 3;
  const KernelSignature c =
      make_signature(inst->bound.kernel, inst->bound.stats, other);
  EXPECT_NE(a, c);

  // search_threads must NOT fragment the cache (plan-identical by spec).
  PlannerOptions threaded = options;
  threaded.search_threads = 4;
  EXPECT_EQ(a, make_signature(inst->bound.kernel, inst->bound.stats,
                              threaded));
}

TEST(KernelCache, HitAfterIdenticalBind) {
  auto inst = make_instance(kernel_case("mttkrp3"), 12);
  KernelCache cache;
  bool was_cached = true;
  const auto first = cache.get_or_plan(inst->bound, {}, &was_cached);
  EXPECT_FALSE(was_cached);

  // Re-bind the same tensors from scratch: same structure, same signature.
  std::vector<const DenseTensor*> ptrs;
  for (const auto& f : inst->factors) ptrs.push_back(&f);
  const BoundKernel rebound =
      spttn::bind(kernel_case("mttkrp3").expr, inst->sparse, ptrs);
  const auto second = cache.get_or_plan(rebound, {}, &was_cached);
  EXPECT_TRUE(was_cached);
  EXPECT_EQ(first.get(), second.get());  // the same resident entry

  const auto c = cache.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.entries, 1u);
}

TEST(KernelCache, MissOnChangedExtents) {
  const KernelCase& kc = kernel_case("mttkrp3");
  auto inst = make_instance(kc, 13);
  KernelCache cache;
  (void)cache.get_or_plan(inst->bound);

  // Same expression and sparse tensor, wider rank r: extents differ.
  Rng rng(99);
  std::vector<DenseTensor> wide;
  Kernel k = Kernel::parse(kc.expr);
  for (int i = 0; i < k.num_inputs(); ++i) {
    if (i == k.sparse_input()) continue;
    std::vector<std::int64_t> dims;
    for (int id : k.input(i).idx) {
      const std::string& n = k.index_name(id);
      dims.push_back(n == "r" ? 7 : kc.dim_of(n));
    }
    wide.push_back(random_dense(dims, rng));
  }
  std::vector<const DenseTensor*> ptrs;
  for (const auto& f : wide) ptrs.push_back(&f);
  const BoundKernel rebound = spttn::bind(kc.expr, inst->sparse, ptrs);
  bool was_cached = true;
  (void)cache.get_or_plan(rebound, {}, &was_cached);
  EXPECT_FALSE(was_cached);
  EXPECT_EQ(cache.counters().entries, 2u);
}

TEST(KernelCache, MissOnChangedSparsityFingerprint) {
  const KernelCase& kc = kernel_case("mttkrp3");
  auto inst = make_instance(kc, 14);
  KernelCache cache;
  (void)cache.get_or_plan(inst->bound);

  // Same dims and nnz, one coordinate moved: structure differs.
  CooTensor moved(inst->sparse.dims());
  for (std::int64_t e = 0; e < inst->sparse.nnz(); ++e) {
    auto c = std::vector<std::int64_t>(inst->sparse.coord(e).begin(),
                                       inst->sparse.coord(e).end());
    if (e == 0) c[0] = (c[0] + 1) % inst->sparse.dim(0);
    moved.push_back(c, inst->sparse.value(e));
  }
  moved.sort_dedup();
  if (moved.nnz() != inst->sparse.nnz()) {
    GTEST_SKIP() << "coordinate move collided; structure not comparable";
  }
  std::vector<const DenseTensor*> ptrs;
  for (const auto& f : inst->factors) ptrs.push_back(&f);
  const BoundKernel rebound = spttn::bind(kc.expr, moved, ptrs);
  bool was_cached = true;
  (void)cache.get_or_plan(rebound, {}, &was_cached);
  EXPECT_FALSE(was_cached);
  EXPECT_EQ(cache.counters().entries, 2u);
}

TEST(KernelCache, CachedExecutionBitIdenticalToFresh) {
  // Sequential and threaded: the cached compiled nest must reproduce a
  // freshly planned execution bit for bit.
  for (const char* name : {"mttkrp3", "ttmc3", "tttp3"}) {
    auto inst = make_instance(kernel_case(name), 15);
    const bool sparse_out = inst->bound.kernel.output_is_sparse();

    DenseTensor fresh_dense, cached_dense, threaded_dense;
    std::vector<double> fresh_sparse, cached_sparse, threaded_sparse;
    if (sparse_out) {
      fresh_sparse.assign(static_cast<std::size_t>(inst->sparse.nnz()), 0.0);
      cached_sparse = threaded_sparse = fresh_sparse;
    } else {
      fresh_dense = make_output(inst->bound);
      cached_dense = make_output(inst->bound);
      threaded_dense = make_output(inst->bound);
    }

    const Plan fresh_plan = plan_kernel(inst->bound);
    run_plan(inst->bound, fresh_plan, sparse_out ? nullptr : &fresh_dense,
             fresh_sparse);

    KernelCache cache;
    run_plan(inst->bound, cache, sparse_out ? nullptr : &cached_dense,
             cached_sparse);
    ASSERT_EQ(cache.counters().misses, 1u);
    {
      ScopedLanes lanes(4);
      run_plan(inst->bound, cache, sparse_out ? nullptr : &threaded_dense,
               threaded_sparse, /*num_threads=*/4);
    }
    EXPECT_GE(cache.counters().hits, 1u) << name;

    if (sparse_out) {
      for (std::size_t e = 0; e < fresh_sparse.size(); ++e) {
        ASSERT_EQ(std::memcmp(&fresh_sparse[e], &cached_sparse[e],
                              sizeof(double)), 0)
            << name << " entry " << e;
        ASSERT_EQ(std::memcmp(&fresh_sparse[e], &threaded_sparse[e],
                              sizeof(double)), 0)
            << name << " entry " << e << " (threaded)";
      }
    } else {
      for (std::int64_t i = 0; i < fresh_dense.size(); ++i) {
        ASSERT_EQ(std::memcmp(&fresh_dense.data()[i],
                              &cached_dense.data()[i], sizeof(double)), 0)
            << name << " elem " << i;
        ASSERT_EQ(std::memcmp(&fresh_dense.data()[i],
                              &threaded_dense.data()[i], sizeof(double)), 0)
            << name << " elem " << i << " (threaded)";
      }
    }
  }
}

TEST(KernelCache, LruEvictionAtCapacity) {
  auto a = make_instance(kernel_case("mttkrp3"), 16);
  auto b = make_instance(kernel_case("ttmc3"), 17);
  auto c = make_instance(kernel_case("tttp3"), 18);
  KernelCache cache(/*capacity=*/2);
  (void)cache.get_or_plan(a->bound);
  (void)cache.get_or_plan(b->bound);
  (void)cache.get_or_plan(a->bound);  // refresh a => b is LRU
  (void)cache.get_or_plan(c->bound);  // evicts b
  const auto counters = cache.counters();
  EXPECT_EQ(counters.evictions, 1u);
  EXPECT_EQ(counters.entries, 2u);
  bool was_cached = false;
  (void)cache.get_or_plan(a->bound, {}, &was_cached);
  EXPECT_TRUE(was_cached);
  (void)cache.get_or_plan(b->bound, {}, &was_cached);
  EXPECT_FALSE(was_cached);  // b was evicted and re-plans
}

TEST(KernelCache, AutotuneRecordsWinner) {
  auto inst = make_instance(kernel_case("mttkrp3"), 19);
  KernelCache cache;
  const AutotuneResult tuned = autotune_kernel(
      inst->bound, {}, /*max_paths=*/2, /*sampled=*/2, /*reps=*/1,
      /*seed=*/5, &cache);
  // The tuned winner is resident: cache-aware planning serves it verbatim.
  bool was_cached = false;
  const auto entry = cache.get_or_plan(inst->bound, {}, &was_cached);
  EXPECT_TRUE(was_cached);
  EXPECT_EQ(entry->plan.path, tuned.best.path);
  EXPECT_EQ(entry->plan.order, tuned.best.order);
}

TEST(FusedExecutor, FingerprintGuardRejectsForeignStructure) {
  const KernelCase& kc = kernel_case("mttkrp3");
  auto inst = make_instance(kc, 20);
  // Structurally different tensor of the same shape.
  auto other = make_instance(kc, 21);
  ASSERT_NE(inst->sparse.structure_hash(), other->sparse.structure_hash());

  const Plan plan = plan_kernel(inst->bound);
  ASSERT_NE(plan.sparsity_fingerprint, 0u);
  // Executing the plan against the tensor it was planned for is fine...
  DenseTensor out = make_output(inst->bound);
  run_plan(inst->bound, plan, &out, {});
  // ...but against a structurally different CSF the guard must fire.
  EXPECT_THROW(run_plan(other->bound, plan, &out, {}), Error);

  // The raw (path, order) constructor opts out (documented escape hatch
  // for SPMD ranks running a global plan on local partitions).
  FusedExecutor raw(inst->bound.kernel, plan.path, plan.order);
  ExecArgs args;
  args.sparse = &other->bound.csf;
  args.dense = other->bound.dense;
  args.out_dense = &out;
  EXPECT_NO_THROW(raw.execute(args));
}

TEST(Session, PrepareMemoizesAndServesFamily) {
  // Order-3 CP-ALS family through one session: three kernels, three
  // misses, then every re-prepare (same or new session) hits.
  Rng rng(31);
  const CooTensor t = random_coo({12, 11, 10}, 80, rng);
  const DenseTensor u0 = random_dense({12, 5}, rng);
  const DenseTensor u1 = random_dense({11, 5}, rng);
  const DenseTensor u2 = random_dense({10, 5}, rng);

  KernelCache cache;
  Session session(t, {}, &cache);
  const int m0 = session.prepare("M0(i,r) = T(i,j,k)*U1(j,r)*U2(k,r)",
                                 {&u1, &u2});
  const int m1 = session.prepare("M1(j,r) = T(i,j,k)*U0(i,r)*U2(k,r)",
                                 {&u0, &u2});
  EXPECT_NE(m0, m1);
  EXPECT_FALSE(session.plan_was_cached(m0));
  // Same expression again: memoized id, no new cache traffic.
  EXPECT_EQ(session.prepare("M0(i,r) = T(i,j,k)*U1(j,r)*U2(k,r)", {&u1, &u2}),
            m0);
  EXPECT_EQ(session.num_kernels(), 2);
  EXPECT_EQ(cache.counters().misses, 2u);

  // A second session over the same tensor: pure hits.
  Session again(t, {}, &cache);
  const int h0 = again.prepare("M0(i,r) = T(i,j,k)*U1(j,r)*U2(k,r)",
                               {&u1, &u2});
  EXPECT_TRUE(again.plan_was_cached(h0));

  // Outputs agree with the one-shot API bit for bit.
  DenseTensor via_session = session.make_output(m0);
  session.run(m0, &via_session);
  const BoundKernel bound =
      spttn::bind("M0(i,r) = T(i,j,k)*U1(j,r)*U2(k,r)", t, {&u1, &u2});
  DenseTensor via_bind = make_output(bound);
  run_plan(bound, plan_kernel(bound), &via_bind, {});
  for (std::int64_t i = 0; i < via_bind.size(); ++i) {
    ASSERT_EQ(std::memcmp(&via_bind.data()[i], &via_session.data()[i],
                          sizeof(double)), 0);
  }
}

TEST(Session, ValueRewritesReusePlans) {
  // TTTP through a session, then rewrite the sparse values in place: the
  // cached plan must keep serving (structure unchanged) and produce the
  // values a fresh bind over the rewritten tensor would.
  Rng rng(33);
  CooTensor t = random_coo({9, 8, 7}, 60, rng);
  const DenseTensor u = random_dense({9, 4}, rng);
  const DenseTensor v = random_dense({8, 4}, rng);
  const DenseTensor w = random_dense({7, 4}, rng);
  const std::string expr = "S(i,j,k) = T(i,j,k)*U(i,r)*V(j,r)*W(k,r)";

  KernelCache cache;
  Session session(t, {}, &cache);
  const int id = session.prepare(expr, {&u, &v, &w});
  std::vector<double> out(static_cast<std::size_t>(t.nnz()), 0.0);
  session.run(id, nullptr, out);

  auto vals = session.values();
  for (auto& x : vals) x *= -2.0;
  std::vector<double> rewritten(static_cast<std::size_t>(t.nnz()), 0.0);
  session.run(id, nullptr, rewritten);
  for (std::size_t e = 0; e < out.size(); ++e) {
    ASSERT_DOUBLE_EQ(rewritten[e], -2.0 * out[e]);
  }
  EXPECT_EQ(cache.counters().misses, 1u);
}

TEST(Session, SubmitReturnsWaitableHandles) {
  ScopedLanes lanes(4);
  Rng rng(35);
  const CooTensor t = random_coo({14, 12, 10}, 120, rng);
  const DenseTensor u0 = random_dense({14, 6}, rng);
  const DenseTensor u1 = random_dense({12, 6}, rng);
  const DenseTensor u2 = random_dense({10, 6}, rng);

  KernelCache cache;
  Session session(t, {}, &cache);
  const std::vector<std::string> exprs = {
      "M0(i,r) = T(i,j,k)*U1(j,r)*U2(k,r)",
      "M1(j,r) = T(i,j,k)*U0(i,r)*U2(k,r)",
      "M2(k,r) = T(i,j,k)*U0(i,r)*U1(j,r)"};
  const std::vector<std::vector<const DenseTensor*>> slots = {
      {&u1, &u2}, {&u0, &u2}, {&u0, &u1}};
  std::vector<int> ids;
  std::vector<DenseTensor> expected, got;
  for (std::size_t m = 0; m < exprs.size(); ++m) {
    ids.push_back(session.prepare(exprs[m], slots[m]));
    expected.push_back(session.make_output(ids.back()));
    session.run(ids.back(), &expected.back());
    got.push_back(session.make_output(ids.back()));
  }

  std::vector<TaskHandle> handles;
  for (std::size_t m = 0; m < exprs.size(); ++m) {
    handles.push_back(session.submit(ids[m], &got[m]));
  }
  for (auto& h : handles) h.wait();
  for (std::size_t m = 0; m < exprs.size(); ++m) {
    for (std::int64_t i = 0; i < expected[m].size(); ++i) {
      ASSERT_EQ(std::memcmp(&expected[m].data()[i], &got[m].data()[i],
                            sizeof(double)), 0)
          << "kernel " << m << " elem " << i;
    }
  }
  EXPECT_THROW(session.submit(99, &got[0]), Error);
}

TEST(Session, SubmittedWorkSurvivesSessionDestruction) {
  // A queued request captures the session's shared bound state, so the
  // Session object may die (and its handle still complete correctly) with
  // submissions in flight.
  ScopedLanes lanes(2);
  Rng rng(36);
  const CooTensor t = random_coo({10, 9, 8}, 70, rng);
  const DenseTensor u1 = random_dense({9, 4}, rng);
  const DenseTensor u2 = random_dense({8, 4}, rng);

  KernelCache cache;
  DenseTensor expected;
  std::vector<DenseTensor> outs;
  std::vector<TaskHandle> handles;
  {
    Session session(t, {}, &cache);
    const int id = session.prepare("M(i,r) = T(i,j,k)*U1(j,r)*U2(k,r)",
                                   {&u1, &u2});
    expected = session.make_output(id);
    session.run(id, &expected);
    for (int q = 0; q < 16; ++q) outs.push_back(session.make_output(id));
    for (int q = 0; q < 16; ++q) {
      handles.push_back(session.submit(id, &outs[static_cast<std::size_t>(q)]));
    }
  }  // session destroyed; queued tasks keep the bound state alive
  for (auto& h : handles) h.wait();
  for (const DenseTensor& got : outs) {
    for (std::int64_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(std::memcmp(&expected.data()[i], &got.data()[i],
                            sizeof(double)), 0);
    }
  }
}

TEST(Session, ConcurrentSubmitFromManyThreads) {
  // The TSan target: several client threads submit against one session
  // (shared cached executor, shared CSF) and verify their private outputs.
  ScopedLanes lanes(4);
  Rng rng(37);
  const CooTensor t = random_coo({16, 14, 12}, 200, rng);
  const DenseTensor u1 = random_dense({14, 5}, rng);
  const DenseTensor u2 = random_dense({12, 5}, rng);

  KernelCache cache;
  Session session(t, {}, &cache);
  const int id = session.prepare("M(i,r) = T(i,j,k)*U1(j,r)*U2(k,r)",
                                 {&u1, &u2});
  DenseTensor expected = session.make_output(id);
  session.run(id, &expected);

  constexpr int kClients = 4;
  constexpr int kRequests = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int q = 0; q < kRequests; ++q) {
        DenseTensor out = session.make_output(id);
        TaskHandle h = session.submit(id, &out);
        h.wait();
        for (std::int64_t i = 0; i < expected.size(); ++i) {
          if (std::memcmp(&expected.data()[i], &out.data()[i],
                          sizeof(double)) != 0) {
            mismatches.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(cache.counters().misses, 1u);
}

TEST(KernelCache, ConcurrentGetOrPlanRaces) {
  // Concurrent misses on the same signature: both racers plan, one entry
  // wins, everyone gets a usable (and identical) plan.
  auto inst = make_instance(kernel_case("ttmc3"), 41);
  KernelCache cache;
  constexpr int kThreads = 4;
  std::vector<std::shared_ptr<const KernelCache::Entry>> entries(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      entries[static_cast<std::size_t>(i)] = cache.get_or_plan(inst->bound);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cache.counters().entries, 1u);
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(entries[0]->plan.path,
              entries[static_cast<std::size_t>(i)]->plan.path);
    EXPECT_EQ(entries[0]->plan.order,
              entries[static_cast<std::size_t>(i)]->plan.order);
  }
}

}  // namespace
}  // namespace spttn
