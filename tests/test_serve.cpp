// Serving-layer semantics: KernelCache keying (hit after identical bind,
// miss on changed extents / sparsity fingerprint / options), bit-identical
// cached-vs-fresh execution (sequential and threaded), LRU eviction, the
// stale-stats fingerprint guard, Session behavior (prepare memoization,
// value rewrites, sparse outputs), and concurrent submit() — the latter is
// part of the TSan CI job's test list.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <latch>
#include <string>
#include <thread>
#include <vector>

#include "core/plan_io.hpp"
#include "serve/kernel_cache.hpp"
#include "serve/session.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace spttn {
namespace {

using testing::Instance;
using testing::KernelCase;
using testing::ScopedLanes;
using testing::make_instance;
using testing::paper_kernels;

const KernelCase& kernel_case(const std::string& name) {
  static const std::vector<KernelCase> cases = paper_kernels();
  for (const auto& kc : cases) {
    if (kc.name == name) return kc;
  }
  SPTTN_CHECK_MSG(false, "unknown kernel case " << name);
  return cases.front();
}

TEST(KernelSignature, EqualityAndHashTrackInputs) {
  auto inst = make_instance(kernel_case("mttkrp3"), 11);
  const PlannerOptions options;
  const KernelSignature a =
      make_signature(inst->bound.kernel, inst->bound.stats, options);
  const KernelSignature b =
      make_signature(inst->bound.kernel, inst->bound.stats, options);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());

  // Different planner options that change the plan => different signature.
  PlannerOptions other = options;
  other.buffer_dim_bound = 3;
  const KernelSignature c =
      make_signature(inst->bound.kernel, inst->bound.stats, other);
  EXPECT_NE(a, c);

  // search_threads must NOT fragment the cache (plan-identical by spec).
  PlannerOptions threaded = options;
  threaded.search_threads = 4;
  EXPECT_EQ(a, make_signature(inst->bound.kernel, inst->bound.stats,
                              threaded));
}

TEST(KernelCache, HitAfterIdenticalBind) {
  auto inst = make_instance(kernel_case("mttkrp3"), 12);
  KernelCache cache;
  bool was_cached = true;
  const auto first = cache.get_or_plan(inst->bound, {}, &was_cached);
  EXPECT_FALSE(was_cached);

  // Re-bind the same tensors from scratch: same structure, same signature.
  std::vector<const DenseTensor*> ptrs;
  for (const auto& f : inst->factors) ptrs.push_back(&f);
  const BoundKernel rebound =
      spttn::bind(kernel_case("mttkrp3").expr, inst->sparse, ptrs);
  const auto second = cache.get_or_plan(rebound, {}, &was_cached);
  EXPECT_TRUE(was_cached);
  EXPECT_EQ(first.get(), second.get());  // the same resident entry

  const auto c = cache.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.entries, 1u);
}

TEST(KernelCache, MissOnChangedExtents) {
  const KernelCase& kc = kernel_case("mttkrp3");
  auto inst = make_instance(kc, 13);
  KernelCache cache;
  (void)cache.get_or_plan(inst->bound);

  // Same expression and sparse tensor, wider rank r: extents differ.
  Rng rng(99);
  std::vector<DenseTensor> wide;
  Kernel k = Kernel::parse(kc.expr);
  for (int i = 0; i < k.num_inputs(); ++i) {
    if (i == k.sparse_input()) continue;
    std::vector<std::int64_t> dims;
    for (int id : k.input(i).idx) {
      const std::string& n = k.index_name(id);
      dims.push_back(n == "r" ? 7 : kc.dim_of(n));
    }
    wide.push_back(random_dense(dims, rng));
  }
  std::vector<const DenseTensor*> ptrs;
  for (const auto& f : wide) ptrs.push_back(&f);
  const BoundKernel rebound = spttn::bind(kc.expr, inst->sparse, ptrs);
  bool was_cached = true;
  (void)cache.get_or_plan(rebound, {}, &was_cached);
  EXPECT_FALSE(was_cached);
  EXPECT_EQ(cache.counters().entries, 2u);
}

TEST(KernelCache, MissOnChangedSparsityFingerprint) {
  const KernelCase& kc = kernel_case("mttkrp3");
  auto inst = make_instance(kc, 14);
  KernelCache cache;
  (void)cache.get_or_plan(inst->bound);

  // Same dims and nnz, one coordinate moved: structure differs.
  CooTensor moved(inst->sparse.dims());
  for (std::int64_t e = 0; e < inst->sparse.nnz(); ++e) {
    auto c = std::vector<std::int64_t>(inst->sparse.coord(e).begin(),
                                       inst->sparse.coord(e).end());
    if (e == 0) c[0] = (c[0] + 1) % inst->sparse.dim(0);
    moved.push_back(c, inst->sparse.value(e));
  }
  moved.sort_dedup();
  if (moved.nnz() != inst->sparse.nnz()) {
    GTEST_SKIP() << "coordinate move collided; structure not comparable";
  }
  std::vector<const DenseTensor*> ptrs;
  for (const auto& f : inst->factors) ptrs.push_back(&f);
  const BoundKernel rebound = spttn::bind(kc.expr, moved, ptrs);
  bool was_cached = true;
  (void)cache.get_or_plan(rebound, {}, &was_cached);
  EXPECT_FALSE(was_cached);
  EXPECT_EQ(cache.counters().entries, 2u);
}

TEST(KernelCache, CachedExecutionBitIdenticalToFresh) {
  // Sequential and threaded: the cached compiled nest must reproduce a
  // freshly planned execution bit for bit.
  for (const char* name : {"mttkrp3", "ttmc3", "tttp3"}) {
    auto inst = make_instance(kernel_case(name), 15);
    const bool sparse_out = inst->bound.kernel.output_is_sparse();

    DenseTensor fresh_dense, cached_dense, threaded_dense;
    std::vector<double> fresh_sparse, cached_sparse, threaded_sparse;
    if (sparse_out) {
      fresh_sparse.assign(static_cast<std::size_t>(inst->sparse.nnz()), 0.0);
      cached_sparse = threaded_sparse = fresh_sparse;
    } else {
      fresh_dense = make_output(inst->bound);
      cached_dense = make_output(inst->bound);
      threaded_dense = make_output(inst->bound);
    }

    const Plan fresh_plan = plan_kernel(inst->bound);
    run_plan(inst->bound, fresh_plan, sparse_out ? nullptr : &fresh_dense,
             fresh_sparse);

    KernelCache cache;
    run_plan(inst->bound, cache, sparse_out ? nullptr : &cached_dense,
             cached_sparse);
    ASSERT_EQ(cache.counters().misses, 1u);
    {
      ScopedLanes lanes(4);
      run_plan(inst->bound, cache, sparse_out ? nullptr : &threaded_dense,
               threaded_sparse, /*num_threads=*/4);
    }
    EXPECT_GE(cache.counters().hits, 1u) << name;

    if (sparse_out) {
      for (std::size_t e = 0; e < fresh_sparse.size(); ++e) {
        ASSERT_EQ(std::memcmp(&fresh_sparse[e], &cached_sparse[e],
                              sizeof(double)), 0)
            << name << " entry " << e;
        ASSERT_EQ(std::memcmp(&fresh_sparse[e], &threaded_sparse[e],
                              sizeof(double)), 0)
            << name << " entry " << e << " (threaded)";
      }
    } else {
      for (std::int64_t i = 0; i < fresh_dense.size(); ++i) {
        ASSERT_EQ(std::memcmp(&fresh_dense.data()[i],
                              &cached_dense.data()[i], sizeof(double)), 0)
            << name << " elem " << i;
        ASSERT_EQ(std::memcmp(&fresh_dense.data()[i],
                              &threaded_dense.data()[i], sizeof(double)), 0)
            << name << " elem " << i << " (threaded)";
      }
    }
  }
}

TEST(KernelCache, LruEvictionAtCapacity) {
  auto a = make_instance(kernel_case("mttkrp3"), 16);
  auto b = make_instance(kernel_case("ttmc3"), 17);
  auto c = make_instance(kernel_case("tttp3"), 18);
  KernelCache cache(/*capacity=*/2);
  (void)cache.get_or_plan(a->bound);
  (void)cache.get_or_plan(b->bound);
  (void)cache.get_or_plan(a->bound);  // refresh a => b is LRU
  (void)cache.get_or_plan(c->bound);  // evicts b
  const auto counters = cache.counters();
  EXPECT_EQ(counters.evictions, 1u);
  EXPECT_EQ(counters.entries, 2u);
  bool was_cached = false;
  (void)cache.get_or_plan(a->bound, {}, &was_cached);
  EXPECT_TRUE(was_cached);
  (void)cache.get_or_plan(b->bound, {}, &was_cached);
  EXPECT_FALSE(was_cached);  // b was evicted and re-plans
}

TEST(KernelCache, AutotuneRecordsWinner) {
  auto inst = make_instance(kernel_case("mttkrp3"), 19);
  KernelCache cache;
  const AutotuneResult tuned = autotune_kernel(
      inst->bound, {}, /*max_paths=*/2, /*sampled=*/2, /*reps=*/1,
      /*seed=*/5, &cache);
  // The tuned winner is resident: cache-aware planning serves it verbatim.
  bool was_cached = false;
  const auto entry = cache.get_or_plan(inst->bound, {}, &was_cached);
  EXPECT_TRUE(was_cached);
  EXPECT_EQ(entry->plan.path, tuned.best.path);
  EXPECT_EQ(entry->plan.order, tuned.best.order);
}

TEST(FusedExecutor, FingerprintGuardRejectsForeignStructure) {
  const KernelCase& kc = kernel_case("mttkrp3");
  auto inst = make_instance(kc, 20);
  // Structurally different tensor of the same shape.
  auto other = make_instance(kc, 21);
  ASSERT_NE(inst->sparse.structure_hash(), other->sparse.structure_hash());

  const Plan plan = plan_kernel(inst->bound);
  ASSERT_NE(plan.sparsity_fingerprint, 0u);
  // Executing the plan against the tensor it was planned for is fine...
  DenseTensor out = make_output(inst->bound);
  run_plan(inst->bound, plan, &out, {});
  // ...but against a structurally different CSF the guard must fire.
  EXPECT_THROW(run_plan(other->bound, plan, &out, {}), Error);

  // The raw (path, order) constructor opts out (documented escape hatch
  // for SPMD ranks running a global plan on local partitions).
  FusedExecutor raw(inst->bound.kernel, plan.path, plan.order);
  ExecArgs args;
  args.sparse = &other->bound.csf;
  args.dense = other->bound.dense;
  args.out_dense = &out;
  EXPECT_NO_THROW(raw.execute(args));
}

TEST(Session, PrepareMemoizesAndServesFamily) {
  // Order-3 CP-ALS family through one session: three kernels, three
  // misses, then every re-prepare (same or new session) hits.
  Rng rng(31);
  const CooTensor t = random_coo({12, 11, 10}, 80, rng);
  const DenseTensor u0 = random_dense({12, 5}, rng);
  const DenseTensor u1 = random_dense({11, 5}, rng);
  const DenseTensor u2 = random_dense({10, 5}, rng);

  KernelCache cache;
  Session session(t, {}, &cache);
  const int m0 = session.prepare("M0(i,r) = T(i,j,k)*U1(j,r)*U2(k,r)",
                                 {&u1, &u2});
  const int m1 = session.prepare("M1(j,r) = T(i,j,k)*U0(i,r)*U2(k,r)",
                                 {&u0, &u2});
  EXPECT_NE(m0, m1);
  EXPECT_FALSE(session.plan_was_cached(m0));
  // Same expression again: memoized id, no new cache traffic.
  EXPECT_EQ(session.prepare("M0(i,r) = T(i,j,k)*U1(j,r)*U2(k,r)", {&u1, &u2}),
            m0);
  EXPECT_EQ(session.num_kernels(), 2);
  EXPECT_EQ(cache.counters().misses, 2u);

  // A second session over the same tensor: pure hits.
  Session again(t, {}, &cache);
  const int h0 = again.prepare("M0(i,r) = T(i,j,k)*U1(j,r)*U2(k,r)",
                               {&u1, &u2});
  EXPECT_TRUE(again.plan_was_cached(h0));

  // Outputs agree with the one-shot API bit for bit.
  DenseTensor via_session = session.make_output(m0);
  session.run(m0, &via_session);
  const BoundKernel bound =
      spttn::bind("M0(i,r) = T(i,j,k)*U1(j,r)*U2(k,r)", t, {&u1, &u2});
  DenseTensor via_bind = make_output(bound);
  run_plan(bound, plan_kernel(bound), &via_bind, {});
  for (std::int64_t i = 0; i < via_bind.size(); ++i) {
    ASSERT_EQ(std::memcmp(&via_bind.data()[i], &via_session.data()[i],
                          sizeof(double)), 0);
  }
}

TEST(Session, ValueRewritesReusePlans) {
  // TTTP through a session, then rewrite the sparse values in place: the
  // cached plan must keep serving (structure unchanged) and produce the
  // values a fresh bind over the rewritten tensor would.
  Rng rng(33);
  CooTensor t = random_coo({9, 8, 7}, 60, rng);
  const DenseTensor u = random_dense({9, 4}, rng);
  const DenseTensor v = random_dense({8, 4}, rng);
  const DenseTensor w = random_dense({7, 4}, rng);
  const std::string expr = "S(i,j,k) = T(i,j,k)*U(i,r)*V(j,r)*W(k,r)";

  KernelCache cache;
  Session session(t, {}, &cache);
  const int id = session.prepare(expr, {&u, &v, &w});
  std::vector<double> out(static_cast<std::size_t>(t.nnz()), 0.0);
  session.run(id, nullptr, out);

  auto vals = session.values();
  for (auto& x : vals) x *= -2.0;
  std::vector<double> rewritten(static_cast<std::size_t>(t.nnz()), 0.0);
  session.run(id, nullptr, rewritten);
  for (std::size_t e = 0; e < out.size(); ++e) {
    ASSERT_DOUBLE_EQ(rewritten[e], -2.0 * out[e]);
  }
  EXPECT_EQ(cache.counters().misses, 1u);
}

TEST(Session, SubmitReturnsWaitableHandles) {
  ScopedLanes lanes(4);
  Rng rng(35);
  const CooTensor t = random_coo({14, 12, 10}, 120, rng);
  const DenseTensor u0 = random_dense({14, 6}, rng);
  const DenseTensor u1 = random_dense({12, 6}, rng);
  const DenseTensor u2 = random_dense({10, 6}, rng);

  KernelCache cache;
  Session session(t, {}, &cache);
  const std::vector<std::string> exprs = {
      "M0(i,r) = T(i,j,k)*U1(j,r)*U2(k,r)",
      "M1(j,r) = T(i,j,k)*U0(i,r)*U2(k,r)",
      "M2(k,r) = T(i,j,k)*U0(i,r)*U1(j,r)"};
  const std::vector<std::vector<const DenseTensor*>> slots = {
      {&u1, &u2}, {&u0, &u2}, {&u0, &u1}};
  std::vector<int> ids;
  std::vector<DenseTensor> expected, got;
  for (std::size_t m = 0; m < exprs.size(); ++m) {
    ids.push_back(session.prepare(exprs[m], slots[m]));
    expected.push_back(session.make_output(ids.back()));
    session.run(ids.back(), &expected.back());
    got.push_back(session.make_output(ids.back()));
  }

  std::vector<TaskHandle> handles;
  for (std::size_t m = 0; m < exprs.size(); ++m) {
    handles.push_back(session.submit(ids[m], &got[m]));
  }
  for (auto& h : handles) h.wait();
  for (std::size_t m = 0; m < exprs.size(); ++m) {
    for (std::int64_t i = 0; i < expected[m].size(); ++i) {
      ASSERT_EQ(std::memcmp(&expected[m].data()[i], &got[m].data()[i],
                            sizeof(double)), 0)
          << "kernel " << m << " elem " << i;
    }
  }
  EXPECT_THROW(session.submit(99, &got[0]), Error);
}

TEST(Session, SubmittedWorkSurvivesSessionDestruction) {
  // A queued request captures the session's shared bound state, so the
  // Session object may die (and its handle still complete correctly) with
  // submissions in flight.
  ScopedLanes lanes(2);
  Rng rng(36);
  const CooTensor t = random_coo({10, 9, 8}, 70, rng);
  const DenseTensor u1 = random_dense({9, 4}, rng);
  const DenseTensor u2 = random_dense({8, 4}, rng);

  KernelCache cache;
  DenseTensor expected;
  std::vector<DenseTensor> outs;
  std::vector<TaskHandle> handles;
  {
    Session session(t, {}, &cache);
    const int id = session.prepare("M(i,r) = T(i,j,k)*U1(j,r)*U2(k,r)",
                                   {&u1, &u2});
    expected = session.make_output(id);
    session.run(id, &expected);
    for (int q = 0; q < 16; ++q) outs.push_back(session.make_output(id));
    for (int q = 0; q < 16; ++q) {
      handles.push_back(session.submit(id, &outs[static_cast<std::size_t>(q)]));
    }
  }  // session destroyed; queued tasks keep the bound state alive
  for (auto& h : handles) h.wait();
  for (const DenseTensor& got : outs) {
    for (std::int64_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(std::memcmp(&expected.data()[i], &got.data()[i],
                            sizeof(double)), 0);
    }
  }
}

TEST(Session, ConcurrentSubmitFromManyThreads) {
  // The TSan target: several client threads submit against one session
  // (shared cached executor, shared CSF) and verify their private outputs.
  ScopedLanes lanes(4);
  Rng rng(37);
  const CooTensor t = random_coo({16, 14, 12}, 200, rng);
  const DenseTensor u1 = random_dense({14, 5}, rng);
  const DenseTensor u2 = random_dense({12, 5}, rng);

  KernelCache cache;
  Session session(t, {}, &cache);
  const int id = session.prepare("M(i,r) = T(i,j,k)*U1(j,r)*U2(k,r)",
                                 {&u1, &u2});
  DenseTensor expected = session.make_output(id);
  session.run(id, &expected);

  constexpr int kClients = 4;
  constexpr int kRequests = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int q = 0; q < kRequests; ++q) {
        DenseTensor out = session.make_output(id);
        TaskHandle h = session.submit(id, &out);
        h.wait();
        for (std::int64_t i = 0; i < expected.size(); ++i) {
          if (std::memcmp(&expected.data()[i], &out.data()[i],
                          sizeof(double)) != 0) {
            mismatches.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(cache.counters().misses, 1u);
}

TEST(KernelCache, ConcurrentGetOrPlanRaces) {
  // Concurrent misses on the same signature: one entry wins, everyone gets
  // a usable (and identical) plan, and single-flight dedup means exactly
  // one planner search ran no matter how the threads interleaved.
  auto inst = make_instance(kernel_case("ttmc3"), 41);
  KernelCache cache;
  constexpr int kThreads = 4;
  std::vector<std::shared_ptr<const KernelCache::Entry>> entries(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      entries[static_cast<std::size_t>(i)] = cache.get_or_plan(inst->bound);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cache.counters().entries, 1u);
  EXPECT_EQ(cache.counters().planned, 1u);
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(entries[0]->plan.path,
              entries[static_cast<std::size_t>(i)]->plan.path);
    EXPECT_EQ(entries[0]->plan.order,
              entries[static_cast<std::size_t>(i)]->plan.order);
  }
}

TEST(Session, ValuesRefusedWhileSubmissionsInFlight) {
  // Mutation hazard: a mutable values() view handed out while a submitted
  // execution is queued or running would race the executor's reads, so the
  // session must fail fast instead. Deterministic setup: block every pool
  // lane with gate tasks so the submitted request cannot start, assert the
  // refusal, then drain and assert values() works again. This test is part
  // of the TSan CI job's list.
  ScopedLanes lanes(2);
  Rng rng(51);
  const CooTensor t = random_coo({10, 9, 8}, 80, rng);
  const DenseTensor u = random_dense({9, 4}, rng);
  const DenseTensor v = random_dense({8, 4}, rng);

  KernelCache cache;
  Session session(t, {}, &cache);
  const int id = session.prepare("M(i,r) = T(i,j,k)*U(j,r)*V(k,r)", {&u, &v});
  DenseTensor out = session.make_output(id);

  // The pool presents `lanes` lanes but the caller counts as one, so a
  // 2-lane pool has exactly one worker — one gate task pins it.
  std::latch entered(1);
  std::latch release(1);
  std::vector<TaskHandle> gates;
  gates.push_back(ThreadPool::global().submit([&] {
    entered.count_down();
    release.wait();
  }));
  entered.wait();  // the only worker is now blocked

  TaskHandle h = session.submit(id, &out);
  EXPECT_EQ(session.in_flight(), 1u);
  EXPECT_THROW((void)session.values(), Error);

  release.count_down();
  h.wait();
  for (auto& g : gates) g.wait();
  EXPECT_EQ(session.in_flight(), 0u);
  EXPECT_EQ(session.values().size(), static_cast<std::size_t>(t.nnz()));
}

// ---------------------------------------------------------------------------
// Persistence: save_dir / load_dir.

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& leaf) {
  const fs::path dir = fs::path(::testing::TempDir()) / leaf;
  fs::remove_all(dir);
  return dir.string();
}

TEST(KernelCachePersist, WarmDirServesEveryPaperKernelWithZeroSearches) {
  // The acceptance criterion: a cold process pointed at a warmed cache dir
  // serves every paper kernel without a single planner search.
  const std::string dir = fresh_dir("spttn_cache_warm");
  const auto suite = paper_kernels();

  KernelCache warm;
  std::vector<std::unique_ptr<Instance>> instances;
  for (const auto& kc : suite) {
    instances.push_back(make_instance(kc, 97));
    (void)warm.get_or_plan(instances.back()->bound);
  }
  const auto saved = warm.save_dir(dir);
  EXPECT_EQ(saved.processed, static_cast<int>(suite.size()));
  EXPECT_EQ(saved.rejected, 0) << saved.to_string();

  // "Cold process": a fresh cache (fresh instances too — the suite's
  // deterministic generators reproduce identical structures, as another
  // process would when binding the same data).
  KernelCache cold;
  const auto loaded = cold.load_dir(dir);
  EXPECT_EQ(loaded.processed, static_cast<int>(suite.size()));
  EXPECT_EQ(loaded.rejected, 0) << loaded.to_string();

  for (std::size_t i = 0; i < suite.size(); ++i) {
    SCOPED_TRACE(suite[i].name);
    auto inst = make_instance(suite[i], 97);
    bool was_cached = false;
    const auto entry = cold.get_or_plan(inst->bound, {}, &was_cached);
    ASSERT_NE(entry, nullptr);
    EXPECT_TRUE(was_cached);

    // Loaded plans execute bit-identically to the freshly planned ones.
    const bool sparse_out = inst->bound.kernel.output_is_sparse();
    ExecArgs args;
    args.sparse = &inst->bound.csf;
    args.dense = inst->bound.dense;
    DenseTensor out_fresh, out_loaded;
    std::vector<double> sp_fresh, sp_loaded;
    if (sparse_out) {
      sp_fresh.assign(static_cast<std::size_t>(inst->sparse.nnz()), 0.0);
      sp_loaded = sp_fresh;
    } else {
      out_fresh = make_output(inst->bound);
      out_loaded = make_output(inst->bound);
    }
    auto run_one = [&](const KernelCache::Entry& e, DenseTensor* od,
                       std::span<double> os) {
      ExecArgs a = args;
      a.out_dense = od;
      a.out_sparse = os;
      e.exec->execute(a);
    };
    run_one(*warm.get_or_plan(instances[i]->bound),
            sparse_out ? nullptr : &out_fresh, sp_fresh);
    run_one(*entry, sparse_out ? nullptr : &out_loaded, sp_loaded);
    if (sparse_out) {
      for (std::size_t e = 0; e < sp_fresh.size(); ++e) {
        ASSERT_EQ(std::memcmp(&sp_fresh[e], &sp_loaded[e], sizeof(double)),
                  0);
      }
    } else {
      for (std::int64_t e = 0; e < out_fresh.size(); ++e) {
        ASSERT_EQ(std::memcmp(&out_fresh.data()[e], &out_loaded.data()[e],
                              sizeof(double)),
                  0);
      }
    }
  }
  const auto c = cold.counters();
  EXPECT_EQ(c.planned, 0u) << "a warmed dir must serve with zero searches";
  EXPECT_EQ(c.misses, 0u);
  EXPECT_EQ(c.hits, static_cast<std::uint64_t>(suite.size()));
}

TEST(KernelCachePersist, LoadRejectsTamperedArtifactsButAdmitsGoodOnes) {
  const std::string dir = fresh_dir("spttn_cache_reject");
  auto inst = make_instance(kernel_case("mttkrp3"), 98);
  KernelCache warm;
  (void)warm.get_or_plan(inst->bound);
  ASSERT_EQ(warm.save_dir(dir).processed, 1);

  // Read the good artifact back to derive the tampered variants.
  std::string good;
  for (const auto& de : fs::directory_iterator(dir)) {
    std::ifstream is(de.path(), std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    good = buf.str();
  }
  ASSERT_FALSE(good.empty());

  auto write = [&](const std::string& name, const std::string& text) {
    std::ofstream os(fs::path(dir) / name, std::ios::binary);
    os << text;
  };
  std::string corrupt = good;
  corrupt[corrupt.size() / 2] ^= 1;
  write("corrupt.plan", corrupt);
  write("truncated.plan", good.substr(0, good.size() / 3));
  std::string v2 = good;
  v2.replace(v2.find("v1"), 2, "v2");
  write("version.plan", v2);
  // Wrong fingerprint: artifact keyed for a different structure than the
  // plan was derived from (a stale artifact).
  write("stale.plan",
        serialize_plan(inst->bound.kernel,
                       warm.get_or_plan(inst->bound)->plan,
                       {{"options_hash", "0"},
                        {"sparsity_fingerprint", "deadbeef"}}));

  KernelCache cold;
  const auto rep = cold.load_dir(dir);
  EXPECT_EQ(rep.processed, 1);  // only the untouched artifact
  EXPECT_EQ(rep.rejected, 4) << rep.to_string();
  EXPECT_EQ(cold.counters().entries, 1u);
  bool saw_fingerprint = false, saw_version = false, saw_checksum = false;
  for (const std::string& e : rep.errors) {
    saw_fingerprint |= e.find("fingerprint mismatch") != std::string::npos;
    saw_version |= e.find("version header") != std::string::npos;
    saw_checksum |= e.find("checksum") != std::string::npos;
  }
  EXPECT_TRUE(saw_fingerprint);
  EXPECT_TRUE(saw_version);
  EXPECT_TRUE(saw_checksum);
}

TEST(KernelCachePersist, LoadDirEdgeCases) {
  // Missing directory: structured error, no throw.
  KernelCache cache;
  const auto missing = cache.load_dir(fresh_dir("spttn_cache_nonexistent"));
  EXPECT_EQ(missing.processed, 0);
  EXPECT_FALSE(missing.errors.empty());

  // Pass-through cache: nothing can become resident; the sweep says so.
  KernelCache pass(0);
  const auto rep = pass.load_dir(fresh_dir("spttn_cache_pass"));
  EXPECT_EQ(rep.processed, 0);
  ASSERT_FALSE(rep.errors.empty());
  EXPECT_NE(rep.errors[0].find("pass-through"), std::string::npos);
}

TEST(KernelCache, SingleFlightCoalescesConcurrentMisses) {
  // Regression for the double-planning bug: N clients racing a cold cache
  // on one signature must cost exactly ONE planner search. Every miss that
  // did not run the search is accounted as coalesced, and all clients end
  // up sharing the one published entry.
  auto inst = make_instance(kernel_case("mttkrp3"), 43);
  KernelCache cache;
  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::vector<std::shared_ptr<const KernelCache::Entry>> entries(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }  // start barrier: maximize miss overlap
      entries[static_cast<std::size_t>(i)] = cache.get_or_plan(inst->bound);
    });
  }
  for (auto& th : threads) th.join();
  const auto c = cache.counters();
  EXPECT_EQ(c.planned, 1u);
  EXPECT_EQ(c.inserts, 1u);
  EXPECT_EQ(c.hits + c.misses, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(c.coalesced, c.misses - 1);
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(entries[0].get(), entries[static_cast<std::size_t>(i)].get());
  }
}

TEST(KernelCache, ZeroCapacityIsPassThrough) {
  // Capacity 0 (and byte budget 0) = pass-through: plan, verify, serve —
  // never insert, never churn.
  auto inst = make_instance(kernel_case("mttkrp3"), 44);
  for (const bool via_bytes : {false, true}) {
    KernelCache::Config cfg;
    if (via_bytes) {
      cfg.max_bytes = 0;
    } else {
      cfg.capacity = 0;
    }
    KernelCache cache(cfg);
    const auto e1 = cache.get_or_plan(inst->bound);
    const auto e2 = cache.get_or_plan(inst->bound);
    ASSERT_NE(e1, nullptr);
    ASSERT_NE(e2, nullptr);
    const auto c = cache.counters();
    EXPECT_EQ(c.entries, 0u);
    EXPECT_EQ(c.inserts, 0u);
    EXPECT_EQ(c.evictions, 0u);
    EXPECT_EQ(c.bytes_resident, 0u);
    EXPECT_EQ(c.misses, 2u);
    EXPECT_EQ(c.planned, 2u);

    // Pass-through entries still execute correctly.
    DenseTensor out = make_output(inst->bound);
    ExecArgs args;
    args.sparse = &inst->bound.csf;
    args.dense = inst->bound.dense;
    args.out_dense = &out;
    e1->exec->execute(args);
  }
}

TEST(KernelCache, CapacityOneKeepsLatest) {
  auto a = make_instance(kernel_case("mttkrp3"), 45);
  auto b = make_instance(kernel_case("ttmc3"), 45);
  KernelCache cache(1);
  (void)cache.get_or_plan(a->bound);
  (void)cache.get_or_plan(b->bound);
  auto c = cache.counters();
  EXPECT_EQ(c.entries, 1u);
  EXPECT_EQ(c.evictions, 1u);
  bool was_cached = false;
  (void)cache.get_or_plan(b->bound, {}, &was_cached);  // resident
  EXPECT_TRUE(was_cached);
  (void)cache.get_or_plan(a->bound, {}, &was_cached);  // evicted earlier
  EXPECT_FALSE(was_cached);
}

TEST(KernelCache, ByteBudgetEvictsLeastRecentlyUsed) {
  auto a = make_instance(kernel_case("mttkrp3"), 46);
  auto b = make_instance(kernel_case("ttmc3"), 46);
  // Learn the two entry sizes from an unbounded cache.
  std::size_t bytes_a = 0, bytes_b = 0;
  {
    KernelCache probe;
    bytes_a = probe.get_or_plan(a->bound)->bytes;
    bytes_b = probe.get_or_plan(b->bound)->bytes;
    EXPECT_EQ(probe.counters().bytes_resident, bytes_a + bytes_b);
  }
  ASSERT_GT(bytes_a, 0u);
  ASSERT_GT(bytes_b, 0u);

  // Budget that admits either alone but not both together: inserting B
  // must evict A (the LRU victim), never hand out a dead entry.
  KernelCache::Config cfg;
  cfg.max_bytes = bytes_a + bytes_b - 1;
  KernelCache cache(cfg);
  const auto ea = cache.get_or_plan(a->bound);
  const auto eb = cache.get_or_plan(b->bound);
  const auto c = cache.counters();
  EXPECT_EQ(c.entries, 1u);
  EXPECT_EQ(c.evictions, 1u);
  EXPECT_EQ(c.bytes_resident, bytes_b);
  EXPECT_LE(c.bytes_resident, cfg.max_bytes);
  // The evicted entry's shared_ptr stays valid for in-flight callers.
  EXPECT_EQ(ea->kernel.to_string(), a->bound.kernel.to_string());
  EXPECT_EQ(eb->kernel.to_string(), b->bound.kernel.to_string());
}

TEST(KernelCache, OversizedEntryServedButNeverAdmitted) {
  // A single entry larger than the whole byte budget is planned, verified
  // and served — but not inserted (no insert-then-evict churn).
  auto inst = make_instance(kernel_case("mttkrp3"), 47);
  KernelCache::Config cfg;
  cfg.max_bytes = 1;  // nonzero: not pass-through, but nothing fits
  KernelCache cache(cfg);
  const auto e = cache.get_or_plan(inst->bound);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(cache.counters().entries, 0u);
  EXPECT_EQ(cache.counters().inserts, 0u);
  EXPECT_EQ(cache.counters().evictions, 0u);
}

TEST(KernelCache, TtlExpiresEntries) {
  auto inst = make_instance(kernel_case("mttkrp3"), 48);
  KernelCache::Config cfg;
  cfg.ttl = std::chrono::milliseconds(1);
  KernelCache cache(cfg);
  (void)cache.get_or_plan(inst->bound);
  EXPECT_EQ(cache.counters().entries, 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  bool was_cached = true;
  (void)cache.get_or_plan(inst->bound, {}, &was_cached);
  EXPECT_FALSE(was_cached);  // expired, replanned
  const auto c = cache.counters();
  EXPECT_GE(c.expired, 1u);
  EXPECT_EQ(c.planned, 2u);
}

}  // namespace
}  // namespace spttn
