// Cross-module consistency properties, swept over every kernel family and
// sampled loop orders: the cost evaluator, the loop-tree builder and the
// executor's compile stage must agree on buffer shapes and offload
// structure for ANY valid order, not just the planner's picks.
#include <gtest/gtest.h>

#include "core/enumerate.hpp"
#include "exec/executor.hpp"
#include "test_helpers.hpp"

namespace spttn {
namespace {

using testing::paper_kernels;

struct ConsistencySweep : ::testing::TestWithParam<int> {};

TEST_P(ConsistencySweep, CostEvaluatorAgreesWithBuiltTree) {
  const auto kc = paper_kernels()[static_cast<std::size_t>(GetParam())];
  const auto inst = testing::make_instance(kc, 9000 + GetParam());
  const Kernel& kernel = inst->bound.kernel;
  const auto paths = executable_paths(kernel, inst->bound.stats);
  ASSERT_FALSE(paths.empty());
  const MaxBufferDimCost dim_cost;
  const MaxBufferSizeCost size_cost;
  Rng rng(4242 + static_cast<std::uint64_t>(GetParam()));
  int paths_checked = 0;
  for (const auto& path : paths) {
    if (++paths_checked > 3) break;
    for (const auto& order : sample_orders(kernel, path, {}, 12, rng)) {
      const LoopTree tree = LoopTree::build(kernel, path, order);
      EXPECT_DOUBLE_EQ(
          evaluate_cost(kernel, path, order, dim_cost).primary,
          static_cast<double>(tree.max_buffer_dim()))
          << kc.name << " " << order_to_string(kernel, order);
      EXPECT_DOUBLE_EQ(
          evaluate_cost(kernel, path, order, size_cost).primary,
          static_cast<double>(tree.max_buffer_size()))
          << kc.name << " " << order_to_string(kernel, order);
    }
  }
}

TEST_P(ConsistencySweep, ExecutorCollapseNeverExceedsTreeOffloadCount) {
  const auto kc = paper_kernels()[static_cast<std::size_t>(GetParam())];
  const auto inst = testing::make_instance(kc, 9100 + GetParam());
  const Kernel& kernel = inst->bound.kernel;
  const auto paths = executable_paths(kernel, inst->bound.stats);
  Rng rng(777 + static_cast<std::uint64_t>(GetParam()));
  for (const auto& order : sample_orders(kernel, paths[0], {}, 8, rng)) {
    const FusedExecutor exec(kernel, paths[0], order);
    const int tree_count = exec.tree().count_offloadable_dense_loops(
        kernel, paths[0], order);
    EXPECT_LE(exec.collapsed_loops(), tree_count)
        << kc.name << " " << order_to_string(kernel, order);
    EXPECT_GE(exec.collapsed_loops(), 0);
  }
}

TEST_P(ConsistencySweep, RenderedNestMentionsEveryLoopIndex) {
  const auto kc = paper_kernels()[static_cast<std::size_t>(GetParam())];
  const auto inst = testing::make_instance(kc, 9200 + GetParam());
  const Kernel& kernel = inst->bound.kernel;
  const Plan plan = plan_kernel(inst->bound);
  const std::string text = plan.tree.render(kernel, plan.path);
  for (int id : kernel.all_indices().elements()) {
    EXPECT_NE(text.find("for " + kernel.index_name(id)), std::string::npos)
        << kc.name << " missing loop for " << kernel.index_name(id) << "\n"
        << text;
  }
}

TEST_P(ConsistencySweep, ParserRoundTripsCanonicalForm) {
  const auto kc = paper_kernels()[static_cast<std::size_t>(GetParam())];
  const Kernel k1 = Kernel::parse(kc.expr);
  const Kernel k2 = Kernel::parse(k1.to_string());
  EXPECT_EQ(k1.to_string(), k2.to_string());
  EXPECT_EQ(k1.num_indices(), k2.num_indices());
  EXPECT_EQ(k1.sparse_input(), k2.sparse_input());
  EXPECT_EQ(k1.output_is_sparse(), k2.output_is_sparse());
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, ConsistencySweep, ::testing::Range(0, 10),
    [](const ::testing::TestParamInfo<int>& info) {
      return paper_kernels()[static_cast<std::size_t>(info.param)].name;
    });

}  // namespace
}  // namespace spttn
