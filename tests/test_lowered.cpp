// Differential suite for the lowered execution tier (exec/lower.hpp): the
// flat pre-resolved programs must agree with the interpreter on every paper
// kernel under every lint planner-option set, sequentially and under the
// work-stealing pool — and not just to tolerance: the lowered kernels
// mirror the interpreter's accumulation order, and partitioning is
// tier-agnostic, so the comparison is for equality, which trivially
// satisfies the 1e-12 acceptance bound. Also covers the forced-fallback
// path (a rejected program still executes correctly through the
// interpreter), ExecStats tier observability, and the serving-layer
// contract that toggling PlannerOptions::lower never fragments the cache.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "analysis/kernel_suite.hpp"
#include "exec/executor.hpp"
#include "exec/lower.hpp"
#include "serve/kernel_cache.hpp"
#include "serve/session.hpp"
#include "test_helpers.hpp"

namespace spttn {
namespace {

using spttn::testing::ScopedLanes;

struct TierRun {
  DenseTensor dense;
  std::vector<double> sparse;
  ExecStats stats;
};

TierRun run_tier(FusedExecutor& exec, const SuiteInstance& inst,
                 ExecTier tier, int threads) {
  TierRun r;
  ExecArgs args;
  args.sparse = &inst.bound.csf;
  args.dense = inst.bound.dense;
  args.num_threads = threads;
  args.tier = tier;
  args.stats = &r.stats;
  if (inst.bound.kernel.output_is_sparse()) {
    r.sparse.assign(static_cast<std::size_t>(inst.bound.csf.nnz()), 0.0);
    args.out_sparse = r.sparse;
  } else {
    r.dense = make_output(inst.bound);
    args.out_dense = &r.dense;
  }
  exec.execute(args);
  return r;
}

void expect_identical(const TierRun& a, const TierRun& b, const char* what) {
  ASSERT_EQ(a.dense.size(), b.dense.size()) << what;
  for (std::int64_t i = 0; i < a.dense.size(); ++i) {
    EXPECT_EQ(a.dense.data()[i], b.dense.data()[i])
        << what << " dense output diverges at " << i;
  }
  ASSERT_EQ(a.sparse.size(), b.sparse.size()) << what;
  for (std::size_t i = 0; i < a.sparse.size(); ++i) {
    EXPECT_EQ(a.sparse[i], b.sparse[i])
        << what << " sparse output diverges at " << i;
  }
}

TEST(LoweredDifferential, SequentialSuiteAcrossAllLintOptionSets) {
  int total_lowered_regions = 0;
  for (const SuiteKernel& sk : paper_kernel_suite()) {
    const auto inst = make_suite_instance(sk, 42);
    for (const LintOptionSet& set : lint_option_sets()) {
      const std::string label = sk.name + " [" + set.name + "]";
      const Plan plan =
          make_plan(inst->bound.kernel, inst->bound.stats, set.options);
      FusedExecutor exec(inst->bound.kernel, plan);
      total_lowered_regions += exec.lowered_regions();
      const TierRun interp =
          run_tier(exec, *inst, ExecTier::kInterpret, /*threads=*/1);
      const TierRun lowered =
          run_tier(exec, *inst, ExecTier::kLowered, /*threads=*/1);
      expect_identical(interp, lowered, label.c_str());
      EXPECT_EQ(interp.stats.tier, ExecTier::kInterpret) << label;
      EXPECT_EQ(interp.stats.lowered_regions, 0) << label;
      EXPECT_EQ(lowered.stats.tier, ExecTier::kLowered) << label;
      EXPECT_EQ(lowered.stats.lowered_regions, exec.lowered_regions())
          << label;
    }
  }
  // The lowerer must actually engage across the sweep, not pass vacuously
  // by rejecting everything.
  EXPECT_GT(total_lowered_regions, 0);
}

TEST(LoweredDifferential, ThreadedSuiteBitIdenticalAcrossTiersAndReruns) {
  ScopedLanes lanes(4);
  for (const SuiteKernel& sk : paper_kernel_suite()) {
    const auto inst = make_suite_instance(sk, 42);
    for (const LintOptionSet& set : lint_option_sets()) {
      const std::string label = sk.name + " [" + set.name + "]";
      const Plan plan =
          make_plan(inst->bound.kernel, inst->bound.stats, set.options);
      FusedExecutor exec(inst->bound.kernel, plan);
      const TierRun interp =
          run_tier(exec, *inst, ExecTier::kInterpret, /*threads=*/4);
      const TierRun lowered =
          run_tier(exec, *inst, ExecTier::kLowered, /*threads=*/4);
      const TierRun rerun =
          run_tier(exec, *inst, ExecTier::kLowered, /*threads=*/4);
      // Same partition shape => bit-identical across tiers and reruns.
      expect_identical(interp, lowered, label.c_str());
      expect_identical(lowered, rerun, label.c_str());
      // Sequential lowered agrees too (the deterministic tiled reduction
      // makes threaded == sequential only when writes are direct, so only
      // compare tiers at matching thread counts here).
      EXPECT_EQ(lowered.stats.tier, ExecTier::kLowered) << label;
    }
  }
}

TEST(LoweredDifferential, ForcedFallbackExecutesThroughInterpreter) {
  const auto& suite = paper_kernel_suite();
  const auto inst = make_suite_instance(suite.front(), 7);  // mttkrp3
  const Plan plan =
      make_plan(inst->bound.kernel, inst->bound.stats, PlannerOptions{});
  FusedExecutor exec(inst->bound.kernel, plan);
  ASSERT_GT(exec.lowered_regions(), 0);
  const TierRun before = run_tier(exec, *inst, ExecTier::kLowered, 1);

  // Reject every operand with an outer index dependency: nothing lowers,
  // and a kLowered execution must fall back to the interpreter wholesale.
  LowerLimits strict;
  strict.max_operand_deps = 0;
  exec.relower(strict);
  EXPECT_EQ(exec.lowered_regions(), 0);
  const TierRun fallback = run_tier(exec, *inst, ExecTier::kLowered, 1);
  EXPECT_EQ(fallback.stats.tier, ExecTier::kLowered);
  EXPECT_EQ(fallback.stats.lowered_regions, 0);
  expect_identical(before, fallback, "forced fallback");

  // Chains disabled still lowers (generic loops only) and still agrees.
  LowerLimits no_chains;
  no_chains.enable_chains = false;
  exec.relower(no_chains);
  const TierRun generic = run_tier(exec, *inst, ExecTier::kLowered, 1);
  expect_identical(before, generic, "chains disabled");

  // Restoring the defaults restores the chain-fused program.
  exec.relower(LowerLimits{});
  EXPECT_GT(exec.lowered_regions(), 0);
}

TEST(LoweredDifferential, LowerKnobDoesNotFragmentCacheOrChangeResults) {
  PlannerOptions on;
  PlannerOptions off;
  off.lower = false;
  EXPECT_EQ(planner_options_hash(on), planner_options_hash(off));

  const auto& suite = paper_kernel_suite();
  const auto inst = make_suite_instance(suite.front(), 11);
  KernelCache cache;
  Session lowered_session(inst->sparse, on, &cache);
  Session interp_session(inst->sparse, off, &cache);
  std::vector<const DenseTensor*> slots;
  for (const DenseTensor* d : inst->dense_slots()) {
    if (d != nullptr) slots.push_back(d);
  }
  const std::string expr = inst->bound.kernel.to_string();
  const int id_on = lowered_session.prepare(expr, slots);
  const int id_off = interp_session.prepare(expr, slots);
  // One planner search: the tier knob is excluded from the signature, so
  // both sessions share a single cache entry (and its executor).
  EXPECT_EQ(cache.counters().planned, 1u);

  DenseTensor out_on = lowered_session.make_output(id_on);
  DenseTensor out_off = interp_session.make_output(id_off);
  lowered_session.run(id_on, &out_on, {});
  interp_session.run(id_off, &out_off, {});
  ASSERT_EQ(out_on.size(), out_off.size());
  for (std::int64_t i = 0; i < out_on.size(); ++i) {
    EXPECT_EQ(out_on.data()[i], out_off.data()[i]);
  }
}

TEST(LoweredDifferential, EntryBytesAccountForTheCompiledPrograms) {
  const auto& suite = paper_kernel_suite();
  const auto inst = make_suite_instance(suite.front(), 13);
  const PlannerOptions options;
  const Plan plan =
      make_plan(inst->bound.kernel, inst->bound.stats, options);
  const FusedExecutor exec(inst->bound.kernel, plan);
  EXPECT_GT(exec.program_bytes(), 0u);

  const KernelSignature sig =
      make_signature(inst->bound.kernel, inst->bound.stats, options);
  const std::size_t with_exec =
      estimate_entry_bytes(sig, inst->bound.kernel, plan, &exec);
  const std::size_t heuristic =
      estimate_entry_bytes(sig, inst->bound.kernel, plan);
  // The exec-aware estimate swaps the per-action heuristic for the real
  // program footprint; both must include it (strictly more than the
  // structure-only parts, i.e. nonzero either way).
  EXPECT_GT(with_exec, exec.program_bytes());
  EXPECT_GT(heuristic, 0u);
}

}  // namespace
}  // namespace spttn
