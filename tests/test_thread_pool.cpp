// The work-stealing thread pool: exact index coverage, reentrancy,
// exception propagation, steal observability under skewed batches, and
// global-pool reconfiguration (SPTTN_THREADS re-read + set_global_threads).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace spttn {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  for (std::int64_t n : {std::int64_t{0}, std::int64_t{1}, std::int64_t{2},
                         std::int64_t{3}, std::int64_t{7}, std::int64_t{64},
                         std::int64_t{1000}}) {
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    pool.parallel_apply(n, [&](std::int64_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(ThreadPool, SingleLanePoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::int64_t sum = 0;
  pool.parallel_apply(100, [&](std::int64_t i) { sum += i; });  // no races
  EXPECT_EQ(sum, 99 * 100 / 2);
}

TEST(ThreadPool, ReentrantApplyRunsInline) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  pool.parallel_apply(8, [&](std::int64_t) {
    // A task submitting to its own pool must not deadlock; the nested
    // batch runs inline in this worker.
    pool.parallel_apply(16, [&](std::int64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPool, FirstExceptionPropagatesAfterDrain) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> ran{0};
  EXPECT_THROW(pool.parallel_apply(64,
                                   [&](std::int64_t i) {
                                     ran.fetch_add(1);
                                     if (i == 13) throw std::runtime_error("boom");
                                   }),
               std::runtime_error);
  // The batch drains fully before rethrowing: every index was claimed.
  EXPECT_EQ(ran.load(), 64);
}

// Steal-heavy stress: many tiny tasks on an oversubscribed pool, with the
// front lanes' slices artificially slowed so idle lanes must steal from
// the back halves. The steal counter is the observability contract.
TEST(ThreadPool, StealsAbsorbSkewedBatches) {
  ThreadPool pool(8);  // oversubscribed on small CI machines on purpose
  std::atomic<std::int64_t> total{0};
  bool stole = false;
  for (int attempt = 0; attempt < 100 && !stole; ++attempt) {
    const std::uint64_t before = pool.steal_count();
    const std::int64_t n = 4000;
    pool.parallel_apply(n, [&](std::int64_t i) {
      if (i < n / 8) {
        // Lane 0's initial slice is slow: everyone else runs dry and must
        // steal to keep the batch moving.
        std::this_thread::sleep_for(std::chrono::microseconds(20));
      }
      total.fetch_add(1);
    });
    stole = pool.steal_count() > before;
  }
  EXPECT_TRUE(stole) << "no steal observed across 100 skewed batches";
  EXPECT_EQ(total.load() % 4000, 0);
}

TEST(ThreadPool, DefaultThreadsReReadsEnvironment) {
  const char* old = std::getenv("SPTTN_THREADS");
  const std::string saved = old != nullptr ? old : "";
  setenv("SPTTN_THREADS", "5", 1);
  EXPECT_EQ(ThreadPool::default_threads(), 5);
  // No function-local latch: a later change must be visible immediately.
  setenv("SPTTN_THREADS", "2", 1);
  EXPECT_EQ(ThreadPool::default_threads(), 2);
  if (old != nullptr) {
    setenv("SPTTN_THREADS", saved.c_str(), 1);
  } else {
    unsetenv("SPTTN_THREADS");
  }
}

TEST(ThreadPool, SetGlobalThreadsRebuildsThePool) {
  const char* old = std::getenv("SPTTN_THREADS");
  const std::string saved = old != nullptr ? old : "";

  ThreadPool::set_global_threads(3);
  EXPECT_EQ(ThreadPool::global().size(), 3);
  std::atomic<std::int64_t> total{0};
  ThreadPool::global().parallel_apply(
      100, [&](std::int64_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 100);

  // Values < 1 mean "re-read the environment": embedders mutating
  // SPTTN_THREADS after first pool use are no longer silently ignored.
  setenv("SPTTN_THREADS", "2", 1);
  ThreadPool::set_global_threads(0);
  EXPECT_EQ(ThreadPool::global().size(), 2);

  if (old != nullptr) {
    setenv("SPTTN_THREADS", saved.c_str(), 1);
  } else {
    unsetenv("SPTTN_THREADS");
  }
  ThreadPool::set_global_threads(0);  // restore the default-sized pool
  EXPECT_EQ(ThreadPool::global().size(), ThreadPool::default_threads());
}

}  // namespace
}  // namespace spttn
