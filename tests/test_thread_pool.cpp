// The work-stealing thread pool: exact index coverage, reentrancy,
// exception propagation, steal observability under skewed batches, and
// global-pool reconfiguration (SPTTN_THREADS re-read + set_global_threads).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace spttn {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  for (std::int64_t n : {std::int64_t{0}, std::int64_t{1}, std::int64_t{2},
                         std::int64_t{3}, std::int64_t{7}, std::int64_t{64},
                         std::int64_t{1000}}) {
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    pool.parallel_apply(n, [&](std::int64_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(ThreadPool, SingleLanePoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::int64_t sum = 0;
  pool.parallel_apply(100, [&](std::int64_t i) { sum += i; });  // no races
  EXPECT_EQ(sum, 99 * 100 / 2);
}

TEST(ThreadPool, ReentrantApplyRunsInline) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  pool.parallel_apply(8, [&](std::int64_t) {
    // A task submitting to its own pool must not deadlock; the nested
    // batch runs inline in this worker.
    pool.parallel_apply(16, [&](std::int64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ThreadPool, FirstExceptionPropagatesAfterDrain) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> ran{0};
  EXPECT_THROW(pool.parallel_apply(64,
                                   [&](std::int64_t i) {
                                     ran.fetch_add(1);
                                     if (i == 13) throw std::runtime_error("boom");
                                   }),
               std::runtime_error);
  // The batch drains fully before rethrowing: every index was claimed.
  EXPECT_EQ(ran.load(), 64);
}

// Steal-heavy stress: many tiny tasks on an oversubscribed pool, with the
// front lanes' slices artificially slowed so idle lanes must steal from
// the back halves. The steal counter is the observability contract.
TEST(ThreadPool, StealsAbsorbSkewedBatches) {
  ThreadPool pool(8);  // oversubscribed on small CI machines on purpose
  std::atomic<std::int64_t> total{0};
  bool stole = false;
  for (int attempt = 0; attempt < 100 && !stole; ++attempt) {
    const std::uint64_t before = pool.steal_count();
    const std::int64_t n = 4000;
    pool.parallel_apply(n, [&](std::int64_t i) {
      if (i < n / 8) {
        // Lane 0's initial slice is slow: everyone else runs dry and must
        // steal to keep the batch moving.
        std::this_thread::sleep_for(std::chrono::microseconds(20));
      }
      total.fetch_add(1);
    });
    stole = pool.steal_count() > before;
  }
  EXPECT_TRUE(stole) << "no steal observed across 100 skewed batches";
  EXPECT_EQ(total.load() % 4000, 0);
}

TEST(ThreadPool, DefaultThreadsReReadsEnvironment) {
  const char* old = std::getenv("SPTTN_THREADS");
  const std::string saved = old != nullptr ? old : "";
  setenv("SPTTN_THREADS", "5", 1);
  EXPECT_EQ(ThreadPool::default_threads(), 5);
  // No function-local latch: a later change must be visible immediately.
  setenv("SPTTN_THREADS", "2", 1);
  EXPECT_EQ(ThreadPool::default_threads(), 2);
  if (old != nullptr) {
    setenv("SPTTN_THREADS", saved.c_str(), 1);
  } else {
    unsetenv("SPTTN_THREADS");
  }
}

TEST(ThreadPool, SetGlobalThreadsRebuildsThePool) {
  const char* old = std::getenv("SPTTN_THREADS");
  const std::string saved = old != nullptr ? old : "";

  ThreadPool::set_global_threads(3);
  EXPECT_EQ(ThreadPool::global().size(), 3);
  std::atomic<std::int64_t> total{0};
  ThreadPool::global().parallel_apply(
      100, [&](std::int64_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 100);

  // Values < 1 mean "re-read the environment": embedders mutating
  // SPTTN_THREADS after first pool use are no longer silently ignored.
  setenv("SPTTN_THREADS", "2", 1);
  ThreadPool::set_global_threads(0);
  EXPECT_EQ(ThreadPool::global().size(), 2);

  if (old != nullptr) {
    setenv("SPTTN_THREADS", saved.c_str(), 1);
  } else {
    unsetenv("SPTTN_THREADS");
  }
  ThreadPool::set_global_threads(0);  // restore the default-sized pool
  EXPECT_EQ(ThreadPool::global().size(), ThreadPool::default_threads());
}

TEST(TaskHandle, SubmitRunsTasksAndWaitBlocks) {
  ThreadPool pool(4);
  constexpr int kTasks = 64;
  std::vector<std::atomic<int>> ran(kTasks);
  std::vector<TaskHandle> handles;
  for (int t = 0; t < kTasks; ++t) {
    handles.push_back(pool.submit([&ran, t] {
      ran[static_cast<std::size_t>(t)].fetch_add(1);
    }));
  }
  for (auto& h : handles) {
    EXPECT_TRUE(h.valid());
    h.wait();
  }
  for (int t = 0; t < kTasks; ++t) {
    EXPECT_EQ(ran[static_cast<std::size_t>(t)].load(), 1) << "task " << t;
  }
}

TEST(TaskHandle, WaitHelpsOnSingleLanePool) {
  // No workers exist: submit must still complete (inline) and wait() must
  // not block forever.
  ThreadPool pool(1);
  bool ran = false;
  TaskHandle h = pool.submit([&] { ran = true; });
  h.wait();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(h.done());
}

TEST(TaskHandle, WaitRethrowsTaskException) {
  ThreadPool pool(2);
  TaskHandle h = pool.submit([] { throw std::runtime_error("task boom"); });
  try {
    h.wait();
    FAIL() << "expected the task's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task boom");
  }
  EXPECT_TRUE(h.done());  // done even though it threw
}

TEST(TaskHandle, DefaultHandleIsInert) {
  TaskHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_FALSE(h.done());
  h.wait();  // no-op, must not crash
}

TEST(TaskHandle, QueuedTasksSurvivePoolDestruction) {
  // Submit more tasks than workers can start and destroy the pool: the
  // destructor drains the queue, so every handle completes.
  std::vector<TaskHandle> handles;
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int t = 0; t < 32; ++t) {
      handles.push_back(pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ran.fetch_add(1);
      }));
    }
  }
  for (auto& h : handles) h.wait();
  EXPECT_EQ(ran.load(), 32);
}

TEST(TaskHandle, SubmittedTaskNestedApplyRunsInline) {
  // A submitted task is the unit of parallelism: parallel_apply from
  // inside it runs inline rather than re-entering the pool.
  ThreadPool pool(4);
  std::atomic<std::int64_t> sum{0};
  TaskHandle h = pool.submit([&] {
    std::int64_t local = 0;
    pool.parallel_apply(100, [&](std::int64_t i) { local += i; });  // inline
    sum.store(local);
  });
  h.wait();
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST(TaskHandle, BatchesAndTasksInterleave) {
  // parallel_apply keeps working while submitted tasks queue and drain.
  ThreadPool pool(4);
  std::atomic<int> task_ran{0};
  std::vector<TaskHandle> handles;
  for (int t = 0; t < 16; ++t) {
    handles.push_back(pool.submit([&] { task_ran.fetch_add(1); }));
  }
  std::vector<std::atomic<int>> hits(256);
  pool.parallel_apply(256, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (auto& h : handles) h.wait();
  EXPECT_EQ(task_ran.load(), 16);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "batch index " << i;
  }
}

}  // namespace
}  // namespace spttn
