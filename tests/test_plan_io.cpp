// Plan persistence: exact round-trips through the versioned artifact
// format for every paper kernel, and structured rejection of corrupted,
// truncated, version-mismatched and tampered artifacts — a bad file must
// yield an spttn::Error, never UB and never a plan that executes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/plan_verifier.hpp"
#include "core/plan_io.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace spttn {
namespace {

using testing::make_instance;
using testing::paper_kernels;

TEST(PlanIo, RoundTripsEveryPaperKernel) {
  for (const auto& kc : paper_kernels()) {
    SCOPED_TRACE(kc.name);
    auto inst = make_instance(kc, 71);
    const Plan plan = make_plan(inst->bound.kernel, inst->bound.stats);

    const std::string text = serialize_plan(inst->bound.kernel, plan);
    const LoadedPlan loaded = deserialize_plan(text);

    // The reconstructed kernel renders identically and re-serializing the
    // loaded artifact is byte-identical — every field (including the hex
    // double bit patterns) survived exactly.
    EXPECT_EQ(loaded.kernel.to_string(), inst->bound.kernel.to_string());
    EXPECT_EQ(serialize_plan(loaded.kernel, loaded.plan), text);

    // Spot-check the semantic fields the cache keys on.
    EXPECT_EQ(loaded.plan.sparsity_fingerprint, plan.sparsity_fingerprint);
    EXPECT_EQ(loaded.plan.flops, plan.flops);
    EXPECT_EQ(loaded.plan.cost.primary, plan.cost.primary);
    EXPECT_EQ(loaded.plan.order, plan.order);
    EXPECT_EQ(loaded.plan.tree.nodes().size(), plan.tree.nodes().size());
    EXPECT_EQ(loaded.plan.tree.total_buffer_size(),
              plan.tree.total_buffer_size());

    // A faithfully loaded plan passes the external-admission verifier.
    EXPECT_TRUE(verify_external_plan(loaded.kernel, loaded.plan).ok())
        << verify_external_plan(loaded.kernel, loaded.plan).to_string();
  }
}

TEST(PlanIo, MetaEntriesRoundTrip) {
  auto inst = make_instance(paper_kernels().front(), 72);
  const Plan plan = make_plan(inst->bound.kernel, inst->bound.stats);
  const std::string text =
      serialize_plan(inst->bound.kernel, plan,
                     {{"options_hash", "00ff"}, {"note", "warm"}});
  const LoadedPlan loaded = deserialize_plan(text);
  EXPECT_EQ(loaded.meta_value("options_hash"), "00ff");
  EXPECT_EQ(loaded.meta_value("note"), "warm");
  EXPECT_EQ(loaded.meta_value("absent"), "");
}

TEST(PlanIo, RejectsWhitespaceInMeta) {
  auto inst = make_instance(paper_kernels().front(), 73);
  const Plan plan = make_plan(inst->bound.kernel, inst->bound.stats);
  EXPECT_THROW(serialize_plan(inst->bound.kernel, plan,
                              {{"key", "two words"}}),
               Error);
}

class PlanIoReject : public ::testing::Test {
 protected:
  void SetUp() override {
    auto inst = make_instance(paper_kernels().front(), 74);
    const Plan plan = make_plan(inst->bound.kernel, inst->bound.stats);
    text_ = serialize_plan(inst->bound.kernel, plan);
  }
  std::string text_;
};

TEST_F(PlanIoReject, VersionMismatch) {
  std::string v2 = text_;
  const auto pos = v2.find("v1");
  ASSERT_NE(pos, std::string::npos);
  v2.replace(pos, 2, "v2");
  try {
    deserialize_plan(v2);
    FAIL() << "v2 header must be rejected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("version header"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(PlanIoReject, SingleCharacterCorruption) {
  // Flip one character in the middle of the payload: the checksum catches
  // it before any field is even parsed.
  std::string bad = text_;
  const std::size_t mid = bad.size() / 2;
  bad[mid] = bad[mid] == '0' ? '1' : '0';
  try {
    deserialize_plan(bad);
    FAIL() << "corrupt payload must be rejected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
}

TEST_F(PlanIoReject, TruncationAtEveryPrefixIsAnErrorNeverUB) {
  // Every proper prefix must throw (missing checksum, truncated field, or
  // checksum mismatch) — never crash, never return a plan. Step a few
  // bytes at a time to keep the sweep fast but cover all regions.
  for (std::size_t len = 0; len < text_.size(); len += 7) {
    SCOPED_TRACE(len);
    EXPECT_THROW(deserialize_plan(text_.substr(0, len)), Error);
  }
}

TEST_F(PlanIoReject, OversizedCountIsBoundedNotAllocated) {
  // Tamper a count field to a huge value and fix nothing else: either the
  // checksum rejects it, and even with a recomputed checksum the bounds
  // check refuses before allocating. Simulate the latter by rebuilding the
  // artifact text around the bad count and recomputing no checksum —
  // checksum mismatch is the expected structured error.
  std::string bad = text_;
  const auto pos = bad.find("\nterms ");
  ASSERT_NE(pos, std::string::npos);
  const auto eol = bad.find('\n', pos + 1);
  bad.replace(pos, eol - pos, "\nterms 99999999999");
  EXPECT_THROW(deserialize_plan(bad), Error);
}

TEST_F(PlanIoReject, GarbageAndEmptyInputs) {
  EXPECT_THROW(deserialize_plan(""), Error);
  EXPECT_THROW(deserialize_plan("not a plan at all\n"), Error);
  EXPECT_THROW(deserialize_plan("spttn-plan v1\n"), Error);
}

}  // namespace
}  // namespace spttn
