// Property tests for Algorithm 1: the DP must agree with brute-force
// enumeration for every tree-separable cost model, on every kernel family
// and contraction path.
#include <gtest/gtest.h>

#include <memory>

#include "core/enumerate.hpp"
#include "core/order_dp.hpp"
#include "core/planner.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace spttn {
namespace {

using testing::KernelCase;
using testing::paper_kernels;

struct DpVsEnum : ::testing::TestWithParam<std::tuple<int, int>> {};

std::vector<std::unique_ptr<TreeCost>> all_cost_models(
    const SparsityStats* stats) {
  std::vector<std::unique_ptr<TreeCost>> models;
  models.push_back(std::make_unique<MaxBufferDimCost>());
  models.push_back(std::make_unique<MaxBufferSizeCost>());
  models.push_back(std::make_unique<CacheMissCost>(1));
  models.push_back(std::make_unique<CacheMissCost>(2));
  models.push_back(std::make_unique<CacheMissCost>(1, stats, true));
  models.push_back(std::make_unique<BoundedBufferBlasCost>(2, 1, stats, true));
  models.push_back(std::make_unique<BoundedBufferBlasCost>(1));
  models.push_back(std::make_unique<BoundedBufferBlasCost>(0));
  return models;
}

TEST_P(DpVsEnum, OptimumMatchesExhaustiveSearch) {
  const auto [kernel_idx, csf_restrict] = GetParam();
  const KernelCase kc = paper_kernels()[static_cast<std::size_t>(kernel_idx)];
  const auto inst = testing::make_instance(kc, 1234 + kernel_idx);
  const Kernel& kernel = inst->bound.kernel;
  const SparsityStats& stats = inst->bound.stats;

  int total = 0;
  const auto paths = executable_paths(kernel, stats, &total);
  ASSERT_FALSE(paths.empty()) << kc.name;

  EnumerateOptions eopts;
  eopts.restrict_csf_order = (csf_restrict != 0);
  // Exhaustive comparison only where the order space is small enough to
  // enumerate quickly; larger kernels fall back to the sampled dominance
  // check below.
  constexpr double kBruteForceCap = 50000;
  DpOptions dopts;
  dopts.restrict_csf_order = (csf_restrict != 0);

  int paths_checked = 0;
  const ContractionPath* oversized = nullptr;
  for (const auto& path : paths) {
    if (count_orders(kernel, path, eopts.restrict_csf_order) >
        kBruteForceCap) {
      if (oversized == nullptr) oversized = &path;
      continue;
    }
    if (++paths_checked > 4) break;
    // (the loop body below runs only for tractable paths)
    const auto models = all_cost_models(&stats);
    for (const auto& model : models) {
      const DpResult dp = optimal_order(kernel, path, *model, dopts);
      const EnumerationSearchResult brute =
          search_orders(kernel, path, *model, eopts);
      ASSERT_EQ(dp.feasible, brute.feasible)
          << kc.name << " model=" << model->name()
          << " path=" << path.to_string(kernel);
      if (!dp.feasible) continue;
      EXPECT_EQ(dp.best_cost, brute.best_cost)
          << kc.name << " model=" << model->name()
          << " path=" << path.to_string(kernel)
          << "\n dp order:    " << order_to_string(kernel, dp.best)
          << "\n brute order: " << order_to_string(kernel, brute.best);
      // The DP's reported cost must be reproducible by the evaluator.
      EXPECT_EQ(evaluate_cost(kernel, path, dp.best, *model), dp.best_cost);
      // And the returned order must be valid (and CSF-ordered when asked).
      EXPECT_TRUE(is_valid_order(path, dp.best));
      if (eopts.restrict_csf_order) {
        EXPECT_TRUE(respects_csf_order(kernel, path, dp.best));
      }
    }
  }
  EXPECT_TRUE(paths_checked > 0 || oversized != nullptr);
  if (oversized != nullptr) {
    // Paths too large to enumerate (all of them for ttmc4_free and
    // tttc4_free) still get coverage: the DP optimum must dominate a
    // randomized sample of the order space — no sampled order may cost
    // less.
    const ContractionPath& path = *oversized;
    Rng rng(777 + static_cast<std::uint64_t>(kernel_idx));
    const auto samples = sample_orders(kernel, path, eopts, 200, rng);
    ASSERT_FALSE(samples.empty());
    const auto models = all_cost_models(&stats);
    for (const auto& model : models) {
      const DpResult dp = optimal_order(kernel, path, *model, dopts);
      if (dp.feasible) {
        EXPECT_EQ(evaluate_cost(kernel, path, dp.best, *model), dp.best_cost);
        EXPECT_TRUE(is_valid_order(path, dp.best));
        if (eopts.restrict_csf_order) {
          EXPECT_TRUE(respects_csf_order(kernel, path, dp.best));
        }
      }
      for (const auto& order : samples) {
        // Infeasible samples (inf primary, arbitrary lexicographic tail)
        // prove nothing — search_orders skips them too. A feasible sample
        // must never beat the DP; when the DP reports infeasible (inf),
        // any feasible sample exposes it.
        const Cost c = evaluate_cost(kernel, path, order, *model);
        if (c.is_inf()) continue;
        EXPECT_FALSE(c < dp.best_cost)
            << kc.name << " model=" << model->name()
            << " sampled order beats DP: "
            << order_to_string(kernel, order);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, DpVsEnum,
    ::testing::Combine(::testing::Range(0, 10), ::testing::Values(0, 1)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return paper_kernels()[static_cast<std::size_t>(
                                 std::get<0>(info.param))]
                 .name +
             (std::get<1>(info.param) ? "_csf" : "_free");
    });

TEST(DpSecondBest, HasDifferentRootAndMinimalCost) {
  const KernelCase kc = paper_kernels()[2];  // ttmc3
  const auto inst = testing::make_instance(kc, 99);
  const Kernel& kernel = inst->bound.kernel;
  const auto paths = executable_paths(kernel, inst->bound.stats);
  const MaxBufferSizeCost model;
  for (const auto& path : paths) {
    const DpResult dp = optimal_order(kernel, path, model);
    ASSERT_TRUE(dp.feasible);
    if (!dp.has_second) continue;
    const auto root_of = [](const LoopOrder& o) {
      for (const auto& a : o) {
        if (!a.empty()) return a.front();
      }
      return -1;
    };
    EXPECT_NE(root_of(dp.best), root_of(dp.second));
    EXPECT_FALSE(dp.second_cost < dp.best_cost);
    // Second-best equals the enumeration minimum over differently-rooted
    // orders.
    Cost best_other = Cost::inf();
    bool found = false;
    enumerate_orders(kernel, path, {}, [&](const LoopOrder& order) {
      if (order.front().front() == root_of(dp.best)) return;
      const Cost c = evaluate_cost(kernel, path, order, model);
      if (!found || c < best_other) {
        best_other = c;
        found = true;
      }
    });
    ASSERT_TRUE(found);
    EXPECT_EQ(dp.second_cost, best_other) << path.to_string(kernel);
  }
}

TEST(DpComplexity, SubproblemCountWithinBound) {
  // O(N^2 2^m) subproblems (Section 4.2).
  const KernelCase kc = paper_kernels()[3];  // ttmc4: N=3 terms, m=7 indices
  const auto inst = testing::make_instance(kc, 7);
  const Kernel& kernel = inst->bound.kernel;
  const auto paths = executable_paths(kernel, inst->bound.stats);
  ASSERT_FALSE(paths.empty());
  const MaxBufferSizeCost model;
  const DpResult dp = optimal_order(kernel, paths[0], model);
  const double n = paths[0].num_terms();
  const double m = kernel.num_indices();
  EXPECT_LE(static_cast<double>(dp.subproblems),
            (n + 1) * (n + 1) * std::pow(2.0, m));
  EXPECT_GT(dp.subproblems, 0);
}

TEST(DpCsfRestriction, RestrictedSearchNeverBeatsFree) {
  const KernelCase kc = paper_kernels()[0];  // mttkrp3
  const auto inst = testing::make_instance(kc, 21);
  const Kernel& kernel = inst->bound.kernel;
  const auto paths = executable_paths(kernel, inst->bound.stats);
  const CacheMissCost model(1);
  for (const auto& path : paths) {
    DpOptions restricted;
    restricted.restrict_csf_order = true;
    DpOptions free;
    free.restrict_csf_order = false;
    const DpResult r = optimal_order(kernel, path, model, restricted);
    const DpResult f = optimal_order(kernel, path, model, free);
    ASSERT_TRUE(r.feasible && f.feasible);
    EXPECT_FALSE(r.best_cost < f.best_cost);
  }
}

TEST(EnumerationCount, MatchesFactorialFormula) {
  // Section 4.1.2: per term |I_i|! orders, |I_i|!/k! under the CSF
  // restriction.
  const KernelCase kc = paper_kernels()[2];  // ttmc3
  const auto inst = testing::make_instance(kc, 5);
  const Kernel& kernel = inst->bound.kernel;
  const ContractionPath path = chain_path(kernel, {1, 2});
  // Terms: (T*U): 5 indices incl. 3 sparse; (X*V): 5 indices... compute via
  // the helper and check against a direct visit count.
  const double expected_free = count_orders(kernel, path, false);
  const double expected_csf = count_orders(kernel, path, true);
  std::uint64_t seen_free = 0;
  enumerate_orders(kernel, path, {.restrict_csf_order = false, .limit = 0},
                   [&](const LoopOrder&) { ++seen_free; });
  std::uint64_t seen_csf = 0;
  enumerate_orders(kernel, path, {.restrict_csf_order = true, .limit = 0},
                   [&](const LoopOrder&) { ++seen_csf; });
  EXPECT_DOUBLE_EQ(static_cast<double>(seen_free), expected_free);
  EXPECT_DOUBLE_EQ(static_cast<double>(seen_csf), expected_csf);
  EXPECT_LT(seen_csf, seen_free);
}

TEST(EnumerationSampling, SampledOrdersAreValid) {
  const KernelCase kc = paper_kernels()[5];  // all-mode ttmc3
  const auto inst = testing::make_instance(kc, 31);
  const Kernel& kernel = inst->bound.kernel;
  const auto paths = executable_paths(kernel, inst->bound.stats);
  ASSERT_FALSE(paths.empty());
  Rng rng(17);
  const auto samples = sample_orders(kernel, paths[0], {}, 50, rng);
  EXPECT_EQ(samples.size(), 50u);
  for (const auto& order : samples) {
    EXPECT_TRUE(is_valid_order(paths[0], order));
    EXPECT_TRUE(respects_csf_order(kernel, paths[0], order));
  }
}

}  // namespace
}  // namespace spttn
