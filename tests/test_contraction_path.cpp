#include <gtest/gtest.h>

#include <algorithm>

#include "core/contraction_path.hpp"
#include "tensor/generate.hpp"
#include "util/rng.hpp"

namespace spttn {
namespace {

Kernel ttmc3() {
  Kernel k = Kernel::parse("S(i,r,s) = T(i,j,k)*U(j,r)*V(k,s)");
  for (const auto& [n, d] : std::vector<std::pair<std::string, std::int64_t>>{
           {"i", 30}, {"j", 20}, {"k", 25}, {"r", 8}, {"s", 9}}) {
    k.set_index_dim(k.index_id(n), d);
  }
  return k;
}

Kernel mttkrp3() {
  Kernel k = Kernel::parse("A(i,a) = T(i,j,k)*B(j,a)*C(k,a)");
  for (const auto& [n, d] : std::vector<std::pair<std::string, std::int64_t>>{
           {"i", 30}, {"j", 20}, {"k", 25}, {"a", 8}}) {
    k.set_index_dim(k.index_id(n), d);
  }
  return k;
}

TEST(PathCount, MatchesRecurrence) {
  // T(n) = C(n,2) T(n-1): 1, 3, 18, 180, 2700 for n = 2..6.
  EXPECT_EQ(count_paths(2), 1u);
  EXPECT_EQ(count_paths(3), 3u);
  EXPECT_EQ(count_paths(4), 18u);
  EXPECT_EQ(count_paths(5), 180u);
  EXPECT_EQ(count_paths(6), 2700u);
}

TEST(PathEnumeration, CountMatchesClosedForm) {
  for (const char* expr :
       {"A(i,a) = T(i,j,k)*B(j,a)*C(k,a)",
        "S(i,r,s,t) = T(i,j,k,l)*U(j,r)*V(k,s)*W(l,t)",
        "S(i,j,k) = T(i,j,k)*U(i,r)*V(j,r)*W(k,r)"}) {
    const Kernel k = Kernel::parse(expr);
    const auto paths = enumerate_paths(k);
    EXPECT_EQ(paths.size(), count_paths(k.num_inputs())) << expr;
    // Paths must be pairwise distinct.
    for (std::size_t a = 0; a < paths.size(); ++a) {
      for (std::size_t b = a + 1; b < paths.size(); ++b) {
        EXPECT_FALSE(paths[a] == paths[b]);
      }
    }
  }
}

TEST(PathEnumeration, TermSemantics) {
  const Kernel k = ttmc3();
  for (const auto& p : enumerate_paths(k)) {
    ASSERT_EQ(p.num_terms(), 2);
    // Every term's output indices are contained in its refs.
    for (const auto& t : p.terms) {
      EXPECT_TRUE(t.out.subset_of(t.refs));
    }
    // The final term produces exactly the kernel output indices.
    EXPECT_EQ(p.terms.back().out, k.output_indices());
    // Each intermediate is consumed exactly once, after production.
    for (int i = 0; i + 1 < p.num_terms(); ++i) {
      const int c = p.consumer_of(i);
      EXPECT_GT(c, i);
    }
    EXPECT_EQ(p.consumer_of(p.num_terms() - 1), -1);
  }
}

TEST(PathExecutability, Ttmc3MatchesFigure1) {
  // Figure 1: contracting T with V first (then U) is executable with a
  // single CSF; contracting U with V first (Fig 1d) is also executable
  // (its only sparse-carrying term references the full prefix); but the
  // path contracting T with U first sums j out of CSF suffix order, making
  // its second term's sparse refs {i,k} — not a prefix.
  const Kernel k = ttmc3();
  const auto paths = enumerate_paths(k);
  int executable = 0;
  bool found_tu_first = false;
  for (const auto& p : paths) {
    const bool ok = p.csf_prefix_executable(k);
    if (ok) ++executable;
    const auto& t0 = p.terms[0];
    const bool tu_first = t0.lhs.kind == PathOperand::Kind::kInput &&
                          t0.rhs.kind == PathOperand::Kind::kInput &&
                          ((t0.lhs.id == 0 && t0.rhs.id == 1) ||
                           (t0.lhs.id == 1 && t0.rhs.id == 0));
    if (tu_first) {
      found_tu_first = true;
      EXPECT_FALSE(ok) << p.to_string(k);
    }
  }
  EXPECT_TRUE(found_tu_first);
  EXPECT_EQ(executable, 2);  // (T*V)*U and (U*V)*T
}

TEST(PathExecutability, MttkrpOnlyLastModeFirst) {
  // For MTTKRP, contracting T with C (the k-sharing factor) first is the
  // only prefix-executable two-step chain; T*B first leaves sparse refs
  // {i,k} in the second term.
  const Kernel k = mttkrp3();
  int executable = 0;
  for (const auto& p : enumerate_paths(k)) {
    if (p.csf_prefix_executable(k)) ++executable;
  }
  EXPECT_EQ(executable, 2);  // (T*C)*B and (B*C)*T
}

TEST(PathFlops, FactorizedTtmcCheaperThanDenseFirst) {
  const Kernel k = ttmc3();
  Rng rng(3);
  const CooTensor t = hierarchical_coo({30, 20, 25}, 25, {8.0, 5.0}, rng);
  const SparsityStats stats = SparsityStats::from_coo(t);
  const auto paths = enumerate_paths(k);
  double tv_first = 0;
  double uv_first = 0;
  for (const auto& p : paths) {
    if (!p.csf_prefix_executable(k)) continue;
    const auto& t0 = p.terms[0];
    const bool uv = t0.lhs.kind == PathOperand::Kind::kInput &&
                    t0.rhs.kind == PathOperand::Kind::kInput &&
                    t0.lhs.id != 0 && t0.rhs.id != 0;
    if (uv) {
      uv_first = path_flops(k, p, stats);
    } else {
      tv_first = path_flops(k, p, stats);
    }
  }
  ASSERT_GT(tv_first, 0);
  ASSERT_GT(uv_first, 0);
  // Contracting the two dense factors first yields a deeper loop nest
  // (Figure 1d) and more work.
  EXPECT_LT(tv_first, uv_first);
}

TEST(PathFlops, MttkrpFactorizedBeatsUnfactorizedOpCount) {
  // Paper Section 2.4.2: pairwise MTTKRP takes
  // 2 nnz(IJK) A + 2 nnz(IJ) A ops vs 3 nnz A unfactorized.
  const Kernel k = mttkrp3();
  Rng rng(4);
  const CooTensor t = hierarchical_coo({30, 20, 25}, 20, {6.0, 8.0}, rng);
  const SparsityStats stats = SparsityStats::from_coo(t);
  ContractionPath best;
  double best_flops = 0;
  for (const auto& p : enumerate_paths(k)) {
    if (!p.csf_prefix_executable(k)) continue;
    if (p.terms[0].lhs.kind == PathOperand::Kind::kInput &&
        (p.terms[0].lhs.id == 0 || p.terms[0].rhs.id == 0)) {
      best = p;
      best_flops = path_flops(k, p, stats);
    }
  }
  const double a = 8;
  const double expected =
      2.0 * static_cast<double>(t.nnz()) * a +
      2.0 * static_cast<double>(t.nnz_prefix(2)) * a;
  EXPECT_NEAR(best_flops, expected, expected * 1e-9);
}

TEST(SparsityStats, UniformModelIsMonotone) {
  const auto s = SparsityStats::uniform({100, 100, 100}, 5000);
  EXPECT_EQ(s.prefix_nnz(0), 1);
  EXPECT_LE(s.prefix_nnz(1), s.prefix_nnz(2));
  EXPECT_LE(s.prefix_nnz(2), s.prefix_nnz(3));
  EXPECT_EQ(s.prefix_nnz(3), 5000);
  // First mode nearly saturates at 100 roots.
  EXPECT_GT(s.prefix_nnz(1), 90);
  EXPECT_LE(s.prefix_nnz(1), 100);
}

TEST(SparsityStats, ProjectionUsesExactCountsFromCoo) {
  Rng rng(12);
  const CooTensor t = random_coo({9, 8, 7}, 60, rng);
  const SparsityStats s = SparsityStats::from_coo(t);
  const std::vector<int> modes{0, 2};
  EXPECT_EQ(s.projection_nnz(0b101), t.nnz_projection(modes));
  EXPECT_EQ(s.projection_nnz(0b011), t.nnz_prefix(2));  // prefix fast path
  // Cached second query returns the same value.
  EXPECT_EQ(s.projection_nnz(0b101), t.nnz_projection(modes));
}

TEST(ChainPath, ExpressionOrderChain) {
  const Kernel k = ttmc3();
  const ContractionPath p = chain_path(k);
  ASSERT_EQ(p.num_terms(), 2);
  EXPECT_EQ(p.terms[0].lhs.id, 0);  // T
  EXPECT_EQ(p.terms[0].rhs.id, 1);  // U
  EXPECT_EQ(p.terms[1].rhs.id, 2);  // V
  EXPECT_TRUE(p.terms[0].carries_sparse);
  // T*U sums j away: out = {i,k,r}.
  EXPECT_EQ(p.terms[0].out.size(), 3);
  EXPECT_FALSE(p.terms[0].out.contains(k.index_id("j")));
  EXPECT_EQ(p.terms[1].out, k.output_indices());
}

TEST(ChainPath, CustomOrderMatchesEnumeratedPath) {
  const Kernel k = ttmc3();
  const ContractionPath chain = chain_path(k, {2, 1});  // T*V then *U
  const auto all = enumerate_paths(k);
  EXPECT_NE(std::find(all.begin(), all.end(), chain), all.end());
  EXPECT_TRUE(chain.csf_prefix_executable(k));
}

}  // namespace
}  // namespace spttn
