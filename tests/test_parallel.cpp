// Shared-memory parallel execution: threaded runs must reproduce the
// sequential result exactly for every kernel family (dense and sparse
// outputs, sparse and dense root loops).
#include <gtest/gtest.h>

#include "exec/executor.hpp"
#include "exec/schedules.hpp"
#include "test_helpers.hpp"
#include "util/thread_pool.hpp"

namespace spttn {
namespace {

using testing::paper_kernels;

using testing::ScopedLanes;

/// A third-order tensor whose root slice i=0 owns ~94% of the nonzeros
/// (dims 40x60x30); the remaining slices carry one nonzero each.
CooTensor single_heavy_slice_tensor(std::int64_t heavy_rows) {
  CooTensor t({40, 60, 30});
  Rng rng(11);
  for (std::int64_t j = 0; j < 60; ++j) {
    for (std::int64_t k = 0; k < 30; ++k) {
      if ((j * 31 + k) % 2 == 0) {
        t.push_back({0, j, k}, rng.next_double() + 0.5);
      }
    }
  }
  for (std::int64_t i = 1; i < heavy_rows; ++i) {
    t.push_back({i, i % 60, i % 30}, 1.0 + static_cast<double>(i));
  }
  t.sort_dedup();
  return t;
}

struct ParallelVsSequential
    : ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ParallelVsSequential, SameResult) {
  const auto [kernel_idx, threads] = GetParam();
  const auto inst = testing::make_instance(
      paper_kernels()[static_cast<std::size_t>(kernel_idx)],
      6000 + kernel_idx);
  const Kernel& kernel = inst->bound.kernel;
  const Plan plan = plan_kernel(inst->bound);
  FusedExecutor exec(kernel, plan);

  ExecArgs args;
  args.sparse = &inst->bound.csf;
  args.dense = inst->bound.dense;

  DenseTensor seq_out;
  DenseTensor par_out;
  std::vector<double> seq_vals;
  std::vector<double> par_vals;
  if (kernel.output_is_sparse()) {
    seq_vals.assign(static_cast<std::size_t>(inst->sparse.nnz()), 0.0);
    par_vals = seq_vals;
    args.out_sparse = seq_vals;
    exec.execute(args);
    args.out_sparse = par_vals;
    args.num_threads = threads;
    exec.execute(args);
    for (std::size_t e = 0; e < seq_vals.size(); ++e) {
      ASSERT_NEAR(seq_vals[e], par_vals[e], 1e-12);
    }
  } else {
    seq_out = make_output(inst->bound);
    par_out = make_output(inst->bound);
    args.out_dense = &seq_out;
    exec.execute(args);
    args.out_dense = &par_out;
    args.num_threads = threads;
    exec.execute(args);
    ASSERT_LT(seq_out.max_abs_diff(par_out), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KernelsByThreads, ParallelVsSequential,
    ::testing::Combine(::testing::Range(0, 10), ::testing::Values(2, 3, 8)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return paper_kernels()[static_cast<std::size_t>(
                                 std::get<0>(info.param))]
                 .name +
             "_t" + std::to_string(std::get<1>(info.param));
    });

TEST(Parallel, MoreThreadsThanRootsIsSafe) {
  CooTensor t({3, 4, 4});
  t.push_back({0, 1, 2}, 1.0);
  t.push_back({2, 0, 1}, 2.0);
  t.sort_dedup();
  Rng rng(1);
  const DenseTensor b = random_dense({4, 2}, rng);
  const DenseTensor c = random_dense({4, 2}, rng);
  const BoundKernel bound =
      bind("A(i,r) = T(i,j,k)*B(j,r)*C(k,r)", t, {&b, &c});
  const Plan plan = plan_kernel(bound);
  FusedExecutor exec(bound.kernel, plan);
  DenseTensor out = make_output(bound);
  ExecArgs args;
  args.sparse = &bound.csf;
  args.dense = bound.dense;
  args.out_dense = &out;
  args.num_threads = 16;  // only 2 root nodes exist
  ExecStats stats;
  args.stats = &stats;
  exec.execute(args);
  EXPECT_GT(out.norm(), 0.0);
  EXPECT_LE(stats.threads_used, 2);  // cannot split below root subtrees
  EXPECT_EQ(stats.fallback_regions, 0);
}

// Oversubscription sweep: thread counts far beyond the root extent (and
// beyond the machine) must stay correct for every kernel family.
TEST(Parallel, OversubscriptionSweep) {
  for (int kernel_idx : {0, 2, 4}) {  // mttkrp3, ttmc3, tttp3
    const auto inst = testing::make_instance(
        paper_kernels()[static_cast<std::size_t>(kernel_idx)],
        6200 + kernel_idx);
    const Kernel& kernel = inst->bound.kernel;
    const Plan plan = plan_kernel(inst->bound);
    FusedExecutor exec(kernel, plan);
    ExecArgs args;
    args.sparse = &inst->bound.csf;
    args.dense = inst->bound.dense;

    std::vector<double> seq_vals;
    DenseTensor seq_out;
    if (kernel.output_is_sparse()) {
      seq_vals.assign(static_cast<std::size_t>(inst->sparse.nnz()), 0.0);
      args.out_sparse = seq_vals;
    } else {
      seq_out = make_output(inst->bound);
      args.out_dense = &seq_out;
    }
    exec.execute(args);

    for (int threads : {7, 64, 1000}) {
      SCOPED_TRACE(paper_kernels()[static_cast<std::size_t>(kernel_idx)]
                       .name +
                   " threads=" + std::to_string(threads));
      args.num_threads = threads;
      ExecStats stats;
      args.stats = &stats;
      if (kernel.output_is_sparse()) {
        std::vector<double> par_vals(seq_vals.size(), 0.0);
        args.out_sparse = par_vals;
        exec.execute(args);
        for (std::size_t e = 0; e < seq_vals.size(); ++e) {
          ASSERT_NEAR(seq_vals[e], par_vals[e], 1e-12);
        }
        args.out_sparse = seq_vals;
      } else {
        DenseTensor par_out = make_output(inst->bound);
        args.out_dense = &par_out;
        exec.execute(args);
        ASSERT_LT(seq_out.max_abs_diff(par_out), 1e-12);
        args.out_dense = &seq_out;
      }
      EXPECT_GE(stats.parallel_regions, 1);
      EXPECT_LE(stats.threads_used, threads);
    }
  }
}

// nnz = 0 and nnz = 1: partitioning degenerates gracefully (no chunks /
// one chunk) at any thread count.
TEST(Parallel, TinyAndEmptyTensors) {
  for (std::int64_t nnz : {std::int64_t{0}, std::int64_t{1}}) {
    CooTensor t({5, 4, 3});
    if (nnz == 1) t.push_back({2, 1, 0}, 1.5);
    t.sort_dedup();
    Rng rng(2);
    const DenseTensor b = random_dense({4, 3}, rng);
    const DenseTensor c = random_dense({3, 3}, rng);
    const BoundKernel bound =
        bind("A(i,r) = T(i,j,k)*B(j,r)*C(k,r)", t, {&b, &c});
    const Plan plan = plan_kernel(bound);
    FusedExecutor exec(bound.kernel, plan);
    DenseTensor seq = make_output(bound);
    ExecArgs args;
    args.sparse = &bound.csf;
    args.dense = bound.dense;
    args.out_dense = &seq;
    exec.execute(args);
    for (int threads : {2, 8, 32}) {
      SCOPED_TRACE("nnz=" + std::to_string(nnz) +
                   " threads=" + std::to_string(threads));
      DenseTensor par = make_output(bound);
      args.out_dense = &par;
      args.num_threads = threads;
      ExecStats stats;
      args.stats = &stats;
      exec.execute(args);
      EXPECT_LT(seq.max_abs_diff(par), 1e-15);
      EXPECT_EQ(stats.fallback_regions, 0);
      EXPECT_LE(stats.threads_used, 1);  // nothing to split
    }
    args.out_dense = &seq;
    args.num_threads = 1;
    args.stats = nullptr;
  }
}

// accumulate = true across thread counts: out += result must land on the
// sequential accumulation to 1e-12, and repeating the same thread count
// must be bit-identical (deterministic partitioning and tree reduction).
TEST(Parallel, AccumulateAcrossThreadCounts) {
  const auto inst = testing::make_instance(paper_kernels()[0], 6300);
  const Kernel& kernel = inst->bound.kernel;
  const Plan plan = plan_kernel(inst->bound);
  FusedExecutor exec(kernel, plan);
  ExecArgs args;
  args.sparse = &inst->bound.csf;
  args.dense = inst->bound.dense;
  args.accumulate = true;

  const auto run_accumulating = [&](int threads) {
    DenseTensor out = make_output(inst->bound);
    out.zero();
    args.out_dense = &out;
    args.num_threads = threads;
    exec.execute(args);
    exec.execute(args);  // accumulate twice: out = 2 * kernel(T, ...)
    return out;
  };

  const DenseTensor seq = run_accumulating(1);
  for (int threads : {2, 3, 8, 19}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const DenseTensor par = run_accumulating(threads);
    EXPECT_LT(seq.max_abs_diff(par), 1e-12);
    const DenseTensor again = run_accumulating(threads);
    EXPECT_EQ(par.max_abs_diff(again), 0.0);  // bit-identical rerun
  }
}

// The unfused pairwise schedule compiles to a multi-root loop forest. The
// runtime must either partition those roots or say so in ExecStats — no
// silent sequential fallback — and the result must match 1-thread output.
TEST(Parallel, MultiRootForestParallelizesOrReports) {
  const auto inst = testing::make_instance(paper_kernels()[2], 6100);
  const Kernel& kernel = inst->bound.kernel;
  const auto [path, order] = unfused_pairwise_schedule(kernel);
  FusedExecutor exec(kernel, path, order);
  DenseTensor a = make_output(inst->bound);
  DenseTensor b = make_output(inst->bound);
  ExecArgs args;
  args.sparse = &inst->bound.csf;
  args.dense = inst->bound.dense;
  args.out_dense = &a;
  exec.execute(args);
  args.out_dense = &b;
  args.num_threads = 4;
  ExecStats stats;
  args.stats = &stats;
  exec.execute(args);
  EXPECT_LT(a.max_abs_diff(b), 1e-12);
  EXPECT_EQ(stats.threads_requested, 4);
  // Observability contract: every root either parallelized or recorded.
  EXPECT_GT(stats.parallel_regions + stats.fallback_regions, 0);
  if (stats.fallback_regions == 0) {
    EXPECT_GT(stats.threads_used, 1) << "forest claims parallel but used "
                                        "one partition everywhere";
  }
}

// Acceptance scenario for the nested runtime: one root slice holding >=90%
// of the nonzeros must not serialize. The nested second-level split has to
// engage (threads_used > 1), the imbalance of the executed partition must
// be reported, results must match sequential to 1e-12, and reruns at the
// same thread count must be bit-identical (deterministic partition shape
// plus deterministic tiled reduction).
TEST(Parallel, SkewedRootSplitsAcrossSecondLevel) {
  ScopedLanes lanes(4);
  const CooTensor t = single_heavy_slice_tensor(40);
  Rng rng(21);
  const DenseTensor b = random_dense({60, 8}, rng);
  const DenseTensor c = random_dense({30, 8}, rng);
  const BoundKernel bound =
      bind("A(i,r) = T(i,j,k)*B(j,r)*C(k,r)", t, {&b, &c});
  const Plan plan = plan_kernel(bound);
  FusedExecutor exec(bound.kernel, plan);
  ExecArgs args;
  args.sparse = &bound.csf;
  args.dense = bound.dense;

  DenseTensor seq = make_output(bound);
  args.out_dense = &seq;
  exec.execute(args);

  DenseTensor par = make_output(bound);
  args.out_dense = &par;
  args.num_threads = 8;
  ExecStats stats;
  args.stats = &stats;
  exec.execute(args);

  EXPECT_TRUE(stats.populated);
  EXPECT_GT(stats.threads_used, 1) << "skewed root serialized";
  EXPECT_GE(stats.nested_regions, 1) << "nested split did not engage";
  EXPECT_EQ(stats.fallback_regions, 0);
  EXPECT_GE(stats.partition_imbalance, 1.0);
  EXPECT_LT(seq.max_abs_diff(par), 1e-12);

  DenseTensor again = make_output(bound);
  args.out_dense = &again;
  exec.execute(args);
  EXPECT_EQ(par.max_abs_diff(again), 0.0) << "rerun not bit-identical";
}

// Regression for the mega-chunk bug: when ALL nonzeros live under a single
// root node the old partitioner returned one chunk, reported imbalance 1.0
// and silently serialized. Now the nested split carries the region, and
// when it cannot, the true imbalance of the attempted partition must be
// visible. Here the root has exactly one occupied node.
TEST(Parallel, SingleHeavySliceDoesNotHideSerialization) {
  ScopedLanes lanes(4);
  const CooTensor t = single_heavy_slice_tensor(1);  // only the i=0 slice
  Rng rng(22);
  const DenseTensor b = random_dense({60, 6}, rng);
  const DenseTensor c = random_dense({30, 6}, rng);
  const BoundKernel bound =
      bind("A(i,r) = T(i,j,k)*B(j,r)*C(k,r)", t, {&b, &c});
  const Plan plan = plan_kernel(bound);
  FusedExecutor exec(bound.kernel, plan);
  ExecArgs args;
  args.sparse = &bound.csf;
  args.dense = bound.dense;

  DenseTensor seq = make_output(bound);
  args.out_dense = &seq;
  exec.execute(args);

  DenseTensor par = make_output(bound);
  args.out_dense = &par;
  args.num_threads = 8;
  ExecStats stats;
  args.stats = &stats;
  exec.execute(args);

  EXPECT_LT(seq.max_abs_diff(par), 1e-12);
  // Either the nested split engaged (threads_used > 1) or the serialized
  // region reported its skew; with a single-loop body kernel the former
  // must hold.
  EXPECT_GT(stats.threads_used, 1)
      << "single-node root serialized despite nested split, imbalance="
      << stats.partition_imbalance;
  EXPECT_GE(stats.nested_regions, 1);
}

// Regression for the adoption-by-count bug: a root slice owning ~50% of
// the nonzeros makes the flat direct-write chunking (4x-lane budget)
// produce MORE tasks than the partials-capped nested rebuild, so the old
// `nested_tasks.size() >= tasks.size()` test discarded the balanced
// partition and kept the serialized mega-chunk. The rebuild must be
// adopted on worst-task weight instead.
TEST(Parallel, ModerateSkewAdoptsSmallerBalancedRebuild) {
  ScopedLanes lanes(4);
  CooTensor t({64, 48, 24});
  Rng rng(31);
  // Slice i=0 carries ~50% of the nonzeros; the rest spread evenly.
  for (std::int64_t j = 0; j < 48; ++j) {
    for (std::int64_t k = 0; k < 24; ++k) {
      if ((j * 7 + k) % 3 == 0) t.push_back({0, j, k}, rng.next_double());
    }
  }
  for (std::int64_t i = 1; i < 64; ++i) {
    for (std::int64_t e = 0; e < 6; ++e) {
      t.push_back({i, (i * 5 + e * 11) % 48, (i * 3 + e) % 24},
                  rng.next_double());
    }
  }
  t.sort_dedup();
  const DenseTensor b = random_dense({48, 8}, rng);
  const DenseTensor c = random_dense({24, 8}, rng);
  const BoundKernel bound =
      bind("A(i,r) = T(i,j,k)*B(j,r)*C(k,r)", t, {&b, &c});
  const Plan plan = plan_kernel(bound);
  FusedExecutor exec(bound.kernel, plan);
  ExecArgs args;
  args.sparse = &bound.csf;
  args.dense = bound.dense;

  DenseTensor seq = make_output(bound);
  args.out_dense = &seq;
  exec.execute(args);

  DenseTensor par = make_output(bound);
  args.out_dense = &par;
  args.num_threads = 16;
  ExecStats stats;
  args.stats = &stats;
  exec.execute(args);

  EXPECT_GE(stats.nested_regions, 1)
      << "balanced rebuild rejected, imbalance=" << stats.partition_imbalance;
  EXPECT_GT(stats.threads_used, 1);
  // The executed partition must not retain the ~50% mega-chunk (which
  // would read as imbalance ~= tasks/2).
  EXPECT_LT(stats.partition_imbalance, 2.0);
  EXPECT_LT(seq.max_abs_diff(par), 1e-12);
}

// Regression for the degenerate-rebuild gap: a root slice owning ~22% of
// the nonzeros is heavy enough to trip the skew threshold (imbalance
// ~3.5 under the 4x-lane flat budget) yet LIGHTER than the partials-capped
// rebuild target (total/4), so the from-scratch nested rebuild splits
// nothing and used to give up — keeping the skewed flat partition and
// serializing behind the mega-chunk. The heavy-chunk re-split fallback
// must now carve that chunk against the flat partition's own per-task
// target: nested split engages, the executed imbalance drops well below
// the unfixed ~2.6, and results still land on sequential bit-for-bit at
// a fixed thread count.
TEST(Parallel, ModerateSkewResplitsHeavyChunkWhenRebuildDegenerates) {
  ScopedLanes lanes(4);
  CooTensor t({65, 48, 24});
  Rng rng(41);
  // Slice i=0: 288 nonzeros (~22% of 1312 total) — below total/4, above
  // total/16. Slices 1..64: 16 nonzeros each.
  for (std::int64_t j = 0; j < 48; ++j) {
    for (std::int64_t k = 0; k < 24; ++k) {
      if ((j * 24 + k) % 4 == 0) t.push_back({0, j, k}, rng.next_double());
    }
  }
  for (std::int64_t i = 1; i < 65; ++i) {
    for (std::int64_t e = 0; e < 16; ++e) {
      t.push_back({i, (i * 5 + e * 7) % 48, (i + e * 5) % 24},
                  rng.next_double() - 0.5);
    }
  }
  t.sort_dedup();
  const DenseTensor b = random_dense({48, 8}, rng);
  const DenseTensor c = random_dense({24, 8}, rng);
  const BoundKernel bound =
      bind("A(i,r) = T(i,j,k)*B(j,r)*C(k,r)", t, {&b, &c});
  const Plan plan = plan_kernel(bound);
  FusedExecutor exec(bound.kernel, plan);
  ExecArgs args;
  args.sparse = &bound.csf;
  args.dense = bound.dense;

  DenseTensor seq = make_output(bound);
  args.out_dense = &seq;
  exec.execute(args);

  DenseTensor par = make_output(bound);
  args.out_dense = &par;
  args.num_threads = 16;
  ExecStats stats;
  args.stats = &stats;
  exec.execute(args);

  EXPECT_GE(stats.nested_regions, 1)
      << "heavy-chunk re-split did not engage, imbalance="
      << stats.partition_imbalance;
  EXPECT_GT(stats.threads_used, 1);
  EXPECT_EQ(stats.fallback_regions, 0);
  // Unfixed, the flat partition rides the ~22% mega-chunk: imbalance
  // max_w * tasks / total ~= 2.6. The re-split caps tasks near the flat
  // per-task target.
  EXPECT_LT(stats.partition_imbalance, 2.0);
  EXPECT_LT(seq.max_abs_diff(par), 1e-12);

  DenseTensor again = make_output(bound);
  args.out_dense = &again;
  exec.execute(args);
  EXPECT_EQ(par.max_abs_diff(again), 0.0) << "rerun not bit-identical";
}

// Nested determinism across output families on tiny-extent roots (three
// root slices, hundreds of nonzeros each, lane budget above the extent):
// threaded results land on sequential at 1e-12 and reruns are
// bit-identical. TTTP (sparse output over sparse root + sparse inner)
// keeps direct leaf-range writes even when nested, so it must match the
// sequential values exactly.
TEST(Parallel, NestedPartitionDeterminismOnSmallRoots) {
  ScopedLanes lanes(4);
  CooTensor t({3, 40, 25});
  Rng rng(23);
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < 40; ++j) {
      for (std::int64_t k = 0; k < 25; ++k) {
        if ((i * 7 + j * 3 + k) % 4 == 0) {
          t.push_back({i, j, k}, rng.next_double() - 0.5);
        }
      }
    }
  }
  t.sort_dedup();
  const DenseTensor u = random_dense({40, 5}, rng);
  const DenseTensor v = random_dense({25, 5}, rng);
  const DenseTensor w3 = random_dense({3, 5}, rng);

  struct Case {
    std::string expr;
    std::vector<const DenseTensor*> dense;
    bool sparse_out;
  };
  const std::vector<Case> cases = {
      {"A(i,r) = T(i,j,k)*B(j,r)*C(k,r)", {&u, &v}, false},
      {"S(i,r,s) = T(i,j,k)*U(j,r)*V(k,s)", {&u, &v}, false},
      {"S(i,j,k) = T(i,j,k)*U(i,r)*V(j,r)*W(k,r)", {&w3, &u, &v}, true},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.expr);
    const BoundKernel bound = spttn::bind(c.expr, t, c.dense);
    const Plan plan = plan_kernel(bound);
    FusedExecutor exec(bound.kernel, plan);
    ExecArgs args;
    args.sparse = &bound.csf;
    args.dense = bound.dense;
    if (c.sparse_out) {
      std::vector<double> seq(static_cast<std::size_t>(t.nnz()), 0.0);
      std::vector<double> par = seq;
      std::vector<double> again = seq;
      args.out_sparse = seq;
      exec.execute(args);
      args.num_threads = 16;
      ExecStats stats;
      args.stats = &stats;
      args.out_sparse = par;
      exec.execute(args);
      args.out_sparse = again;
      exec.execute(args);
      EXPECT_GT(stats.threads_used, 1);
      // Direct leaf-range writes: nested tasks compute each pattern value
      // whole, so the parallel result is the sequential one bit for bit
      // (and reruns trivially so).
      for (std::size_t e = 0; e < seq.size(); ++e) {
        ASSERT_EQ(par[e], again[e]);  // bit-identical rerun
        ASSERT_EQ(seq[e], par[e]);
      }
    } else {
      DenseTensor seq = make_output(bound);
      args.out_dense = &seq;
      exec.execute(args);
      args.num_threads = 16;
      ExecStats stats;
      args.stats = &stats;
      DenseTensor par = make_output(bound);
      args.out_dense = &par;
      exec.execute(args);
      DenseTensor again = make_output(bound);
      args.out_dense = &again;
      exec.execute(args);
      EXPECT_GT(stats.threads_used, 1);
      EXPECT_LT(seq.max_abs_diff(par), 1e-12);
      EXPECT_EQ(par.max_abs_diff(again), 0.0);
    }
    args.num_threads = 1;
    args.stats = nullptr;
  }
}

// Sequential runs must report stats too (threads_used == 1).
TEST(Parallel, SequentialStatsAreObservable) {
  const auto inst = testing::make_instance(paper_kernels()[0], 6400);
  const Plan plan = plan_kernel(inst->bound);
  FusedExecutor exec(inst->bound.kernel, plan);
  DenseTensor out = make_output(inst->bound);
  ExecArgs args;
  args.sparse = &inst->bound.csf;
  args.dense = inst->bound.dense;
  args.out_dense = &out;
  ExecStats stats;
  stats.threads_used = 99;  // must be overwritten
  args.stats = &stats;
  exec.execute(args);
  EXPECT_EQ(stats.threads_used, 1);
  EXPECT_EQ(stats.threads_requested, 1);
  EXPECT_EQ(stats.parallel_regions, 0);
  // The sequential path fills the struct for real instead of resetting it
  // to defaults: "ran sequentially" is distinguishable from "never ran".
  EXPECT_TRUE(stats.populated);
  EXPECT_GE(stats.total_regions, 1);
  EXPECT_FALSE(ExecStats{}.populated);
}

}  // namespace
}  // namespace spttn
