// Shared-memory parallel execution: threaded runs must reproduce the
// sequential result exactly for every kernel family (dense and sparse
// outputs, sparse and dense root loops).
#include <gtest/gtest.h>

#include "exec/executor.hpp"
#include "exec/schedules.hpp"
#include "test_helpers.hpp"

namespace spttn {
namespace {

using testing::paper_kernels;

struct ParallelVsSequential
    : ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ParallelVsSequential, SameResult) {
  const auto [kernel_idx, threads] = GetParam();
  const auto inst = testing::make_instance(
      paper_kernels()[static_cast<std::size_t>(kernel_idx)],
      6000 + kernel_idx);
  const Kernel& kernel = inst->bound.kernel;
  const Plan plan = plan_kernel(inst->bound);
  FusedExecutor exec(kernel, plan);

  ExecArgs args;
  args.sparse = &inst->bound.csf;
  args.dense = inst->bound.dense;

  DenseTensor seq_out;
  DenseTensor par_out;
  std::vector<double> seq_vals;
  std::vector<double> par_vals;
  if (kernel.output_is_sparse()) {
    seq_vals.assign(static_cast<std::size_t>(inst->sparse.nnz()), 0.0);
    par_vals = seq_vals;
    args.out_sparse = seq_vals;
    exec.execute(args);
    args.out_sparse = par_vals;
    args.num_threads = threads;
    exec.execute(args);
    for (std::size_t e = 0; e < seq_vals.size(); ++e) {
      ASSERT_NEAR(seq_vals[e], par_vals[e], 1e-12);
    }
  } else {
    seq_out = make_output(inst->bound);
    par_out = make_output(inst->bound);
    args.out_dense = &seq_out;
    exec.execute(args);
    args.out_dense = &par_out;
    args.num_threads = threads;
    exec.execute(args);
    ASSERT_LT(seq_out.max_abs_diff(par_out), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KernelsByThreads, ParallelVsSequential,
    ::testing::Combine(::testing::Range(0, 10), ::testing::Values(2, 3, 8)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return paper_kernels()[static_cast<std::size_t>(
                                 std::get<0>(info.param))]
                 .name +
             "_t" + std::to_string(std::get<1>(info.param));
    });

TEST(Parallel, MoreThreadsThanRootsIsSafe) {
  CooTensor t({3, 4, 4});
  t.push_back({0, 1, 2}, 1.0);
  t.push_back({2, 0, 1}, 2.0);
  t.sort_dedup();
  Rng rng(1);
  const DenseTensor b = random_dense({4, 2}, rng);
  const DenseTensor c = random_dense({4, 2}, rng);
  const BoundKernel bound =
      bind("A(i,r) = T(i,j,k)*B(j,r)*C(k,r)", t, {&b, &c});
  const Plan plan = plan_kernel(bound);
  FusedExecutor exec(bound.kernel, plan);
  DenseTensor out = make_output(bound);
  ExecArgs args;
  args.sparse = &bound.csf;
  args.dense = bound.dense;
  args.out_dense = &out;
  args.num_threads = 16;  // only 2 root nodes exist
  exec.execute(args);
  EXPECT_GT(out.norm(), 0.0);
}

TEST(Parallel, MultiRootForestFallsBackToSequential) {
  // The unfused schedule has several root trees; threaded execution must
  // still be correct (it silently runs sequentially).
  const auto inst = testing::make_instance(paper_kernels()[2], 6100);
  const Kernel& kernel = inst->bound.kernel;
  const auto [path, order] = unfused_pairwise_schedule(kernel);
  FusedExecutor exec(kernel, path, order);
  DenseTensor a = make_output(inst->bound);
  DenseTensor b = make_output(inst->bound);
  ExecArgs args;
  args.sparse = &inst->bound.csf;
  args.dense = inst->bound.dense;
  args.out_dense = &a;
  exec.execute(args);
  args.out_dense = &b;
  args.num_threads = 4;
  exec.execute(args);
  EXPECT_LT(a.max_abs_diff(b), 1e-9);
}

}  // namespace
}  // namespace spttn
