// Shared-memory parallel execution: threaded runs must reproduce the
// sequential result exactly for every kernel family (dense and sparse
// outputs, sparse and dense root loops).
#include <gtest/gtest.h>

#include "exec/executor.hpp"
#include "exec/schedules.hpp"
#include "test_helpers.hpp"

namespace spttn {
namespace {

using testing::paper_kernels;

struct ParallelVsSequential
    : ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ParallelVsSequential, SameResult) {
  const auto [kernel_idx, threads] = GetParam();
  const auto inst = testing::make_instance(
      paper_kernels()[static_cast<std::size_t>(kernel_idx)],
      6000 + kernel_idx);
  const Kernel& kernel = inst->bound.kernel;
  const Plan plan = plan_kernel(inst->bound);
  FusedExecutor exec(kernel, plan);

  ExecArgs args;
  args.sparse = &inst->bound.csf;
  args.dense = inst->bound.dense;

  DenseTensor seq_out;
  DenseTensor par_out;
  std::vector<double> seq_vals;
  std::vector<double> par_vals;
  if (kernel.output_is_sparse()) {
    seq_vals.assign(static_cast<std::size_t>(inst->sparse.nnz()), 0.0);
    par_vals = seq_vals;
    args.out_sparse = seq_vals;
    exec.execute(args);
    args.out_sparse = par_vals;
    args.num_threads = threads;
    exec.execute(args);
    for (std::size_t e = 0; e < seq_vals.size(); ++e) {
      ASSERT_NEAR(seq_vals[e], par_vals[e], 1e-12);
    }
  } else {
    seq_out = make_output(inst->bound);
    par_out = make_output(inst->bound);
    args.out_dense = &seq_out;
    exec.execute(args);
    args.out_dense = &par_out;
    args.num_threads = threads;
    exec.execute(args);
    ASSERT_LT(seq_out.max_abs_diff(par_out), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KernelsByThreads, ParallelVsSequential,
    ::testing::Combine(::testing::Range(0, 10), ::testing::Values(2, 3, 8)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return paper_kernels()[static_cast<std::size_t>(
                                 std::get<0>(info.param))]
                 .name +
             "_t" + std::to_string(std::get<1>(info.param));
    });

TEST(Parallel, MoreThreadsThanRootsIsSafe) {
  CooTensor t({3, 4, 4});
  t.push_back({0, 1, 2}, 1.0);
  t.push_back({2, 0, 1}, 2.0);
  t.sort_dedup();
  Rng rng(1);
  const DenseTensor b = random_dense({4, 2}, rng);
  const DenseTensor c = random_dense({4, 2}, rng);
  const BoundKernel bound =
      bind("A(i,r) = T(i,j,k)*B(j,r)*C(k,r)", t, {&b, &c});
  const Plan plan = plan_kernel(bound);
  FusedExecutor exec(bound.kernel, plan);
  DenseTensor out = make_output(bound);
  ExecArgs args;
  args.sparse = &bound.csf;
  args.dense = bound.dense;
  args.out_dense = &out;
  args.num_threads = 16;  // only 2 root nodes exist
  ExecStats stats;
  args.stats = &stats;
  exec.execute(args);
  EXPECT_GT(out.norm(), 0.0);
  EXPECT_LE(stats.threads_used, 2);  // cannot split below root subtrees
  EXPECT_EQ(stats.fallback_regions, 0);
}

// Oversubscription sweep: thread counts far beyond the root extent (and
// beyond the machine) must stay correct for every kernel family.
TEST(Parallel, OversubscriptionSweep) {
  for (int kernel_idx : {0, 2, 4}) {  // mttkrp3, ttmc3, tttp3
    const auto inst = testing::make_instance(
        paper_kernels()[static_cast<std::size_t>(kernel_idx)],
        6200 + kernel_idx);
    const Kernel& kernel = inst->bound.kernel;
    const Plan plan = plan_kernel(inst->bound);
    FusedExecutor exec(kernel, plan);
    ExecArgs args;
    args.sparse = &inst->bound.csf;
    args.dense = inst->bound.dense;

    std::vector<double> seq_vals;
    DenseTensor seq_out;
    if (kernel.output_is_sparse()) {
      seq_vals.assign(static_cast<std::size_t>(inst->sparse.nnz()), 0.0);
      args.out_sparse = seq_vals;
    } else {
      seq_out = make_output(inst->bound);
      args.out_dense = &seq_out;
    }
    exec.execute(args);

    for (int threads : {7, 64, 1000}) {
      SCOPED_TRACE(paper_kernels()[static_cast<std::size_t>(kernel_idx)]
                       .name +
                   " threads=" + std::to_string(threads));
      args.num_threads = threads;
      ExecStats stats;
      args.stats = &stats;
      if (kernel.output_is_sparse()) {
        std::vector<double> par_vals(seq_vals.size(), 0.0);
        args.out_sparse = par_vals;
        exec.execute(args);
        for (std::size_t e = 0; e < seq_vals.size(); ++e) {
          ASSERT_NEAR(seq_vals[e], par_vals[e], 1e-12);
        }
        args.out_sparse = seq_vals;
      } else {
        DenseTensor par_out = make_output(inst->bound);
        args.out_dense = &par_out;
        exec.execute(args);
        ASSERT_LT(seq_out.max_abs_diff(par_out), 1e-12);
        args.out_dense = &seq_out;
      }
      EXPECT_GE(stats.parallel_regions, 1);
      EXPECT_LE(stats.threads_used, threads);
    }
  }
}

// nnz = 0 and nnz = 1: partitioning degenerates gracefully (no chunks /
// one chunk) at any thread count.
TEST(Parallel, TinyAndEmptyTensors) {
  for (std::int64_t nnz : {std::int64_t{0}, std::int64_t{1}}) {
    CooTensor t({5, 4, 3});
    if (nnz == 1) t.push_back({2, 1, 0}, 1.5);
    t.sort_dedup();
    Rng rng(2);
    const DenseTensor b = random_dense({4, 3}, rng);
    const DenseTensor c = random_dense({3, 3}, rng);
    const BoundKernel bound =
        bind("A(i,r) = T(i,j,k)*B(j,r)*C(k,r)", t, {&b, &c});
    const Plan plan = plan_kernel(bound);
    FusedExecutor exec(bound.kernel, plan);
    DenseTensor seq = make_output(bound);
    ExecArgs args;
    args.sparse = &bound.csf;
    args.dense = bound.dense;
    args.out_dense = &seq;
    exec.execute(args);
    for (int threads : {2, 8, 32}) {
      SCOPED_TRACE("nnz=" + std::to_string(nnz) +
                   " threads=" + std::to_string(threads));
      DenseTensor par = make_output(bound);
      args.out_dense = &par;
      args.num_threads = threads;
      ExecStats stats;
      args.stats = &stats;
      exec.execute(args);
      EXPECT_LT(seq.max_abs_diff(par), 1e-15);
      EXPECT_EQ(stats.fallback_regions, 0);
      EXPECT_LE(stats.threads_used, 1);  // nothing to split
    }
    args.out_dense = &seq;
    args.num_threads = 1;
    args.stats = nullptr;
  }
}

// accumulate = true across thread counts: out += result must land on the
// sequential accumulation to 1e-12, and repeating the same thread count
// must be bit-identical (deterministic partitioning and tree reduction).
TEST(Parallel, AccumulateAcrossThreadCounts) {
  const auto inst = testing::make_instance(paper_kernels()[0], 6300);
  const Kernel& kernel = inst->bound.kernel;
  const Plan plan = plan_kernel(inst->bound);
  FusedExecutor exec(kernel, plan);
  ExecArgs args;
  args.sparse = &inst->bound.csf;
  args.dense = inst->bound.dense;
  args.accumulate = true;

  const auto run_accumulating = [&](int threads) {
    DenseTensor out = make_output(inst->bound);
    out.zero();
    args.out_dense = &out;
    args.num_threads = threads;
    exec.execute(args);
    exec.execute(args);  // accumulate twice: out = 2 * kernel(T, ...)
    return out;
  };

  const DenseTensor seq = run_accumulating(1);
  for (int threads : {2, 3, 8, 19}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const DenseTensor par = run_accumulating(threads);
    EXPECT_LT(seq.max_abs_diff(par), 1e-12);
    const DenseTensor again = run_accumulating(threads);
    EXPECT_EQ(par.max_abs_diff(again), 0.0);  // bit-identical rerun
  }
}

// The unfused pairwise schedule compiles to a multi-root loop forest. The
// runtime must either partition those roots or say so in ExecStats — no
// silent sequential fallback — and the result must match 1-thread output.
TEST(Parallel, MultiRootForestParallelizesOrReports) {
  const auto inst = testing::make_instance(paper_kernels()[2], 6100);
  const Kernel& kernel = inst->bound.kernel;
  const auto [path, order] = unfused_pairwise_schedule(kernel);
  FusedExecutor exec(kernel, path, order);
  DenseTensor a = make_output(inst->bound);
  DenseTensor b = make_output(inst->bound);
  ExecArgs args;
  args.sparse = &inst->bound.csf;
  args.dense = inst->bound.dense;
  args.out_dense = &a;
  exec.execute(args);
  args.out_dense = &b;
  args.num_threads = 4;
  ExecStats stats;
  args.stats = &stats;
  exec.execute(args);
  EXPECT_LT(a.max_abs_diff(b), 1e-12);
  EXPECT_EQ(stats.threads_requested, 4);
  // Observability contract: every root either parallelized or recorded.
  EXPECT_GT(stats.parallel_regions + stats.fallback_regions, 0);
  if (stats.fallback_regions == 0) {
    EXPECT_GT(stats.threads_used, 1) << "forest claims parallel but used "
                                        "one partition everywhere";
  }
}

// Sequential runs must report stats too (threads_used == 1).
TEST(Parallel, SequentialStatsAreObservable) {
  const auto inst = testing::make_instance(paper_kernels()[0], 6400);
  const Plan plan = plan_kernel(inst->bound);
  FusedExecutor exec(inst->bound.kernel, plan);
  DenseTensor out = make_output(inst->bound);
  ExecArgs args;
  args.sparse = &inst->bound.csf;
  args.dense = inst->bound.dense;
  args.out_dense = &out;
  ExecStats stats;
  stats.threads_used = 99;  // must be overwritten
  args.stats = &stats;
  exec.execute(args);
  EXPECT_EQ(stats.threads_used, 1);
  EXPECT_EQ(stats.threads_requested, 1);
  EXPECT_EQ(stats.parallel_regions, 0);
}

}  // namespace
}  // namespace spttn
