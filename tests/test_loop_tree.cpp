#include <gtest/gtest.h>

#include "core/loop_order.hpp"
#include "core/loop_tree.hpp"
#include "util/error.hpp"

namespace spttn {
namespace {

/// Order-3 TTMc with the paper's contraction path (T*V first, then *U).
struct Ttmc3 {
  Kernel kernel = Kernel::parse("S(i,r,s) = T(i,j,k)*V(k,s)*U(j,r)");
  ContractionPath path;
  int i, j, k, r, s;

  Ttmc3() {
    for (const auto& [n, d] :
         std::vector<std::pair<std::string, std::int64_t>>{
             {"i", 10}, {"j", 9}, {"k", 8}, {"s", 5}, {"r", 4}}) {
      kernel.set_index_dim(kernel.index_id(n), d);
    }
    path = chain_path(kernel);  // (T*V) -> X(i,j,s); (X*U) -> S
    i = kernel.index_id("i");
    j = kernel.index_id("j");
    k = kernel.index_id("k");
    r = kernel.index_id("r");
    s = kernel.index_id("s");
  }
};

TEST(Peel, SplitsSharedLeadingIndex) {
  // Listing 3 orders: ((i,j,k,s),(i,j,s,r)) — peeling removes i from both.
  const LoopOrder order{{0, 1, 2, 3}, {0, 1, 3, 4}};
  const PeelResult p = peel(order);
  EXPECT_EQ(p.root, 0);
  EXPECT_EQ(p.covered, 2);
  EXPECT_EQ(p.under_root[0], (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(p.under_root[1], (std::vector<int>{1, 3, 4}));
  EXPECT_TRUE(p.remainder.empty());
}

TEST(Peel, StopsAtDifferentRoot) {
  const LoopOrder order{{0, 1}, {2, 0}};
  const PeelResult p = peel(order);
  EXPECT_EQ(p.covered, 1);
  ASSERT_EQ(p.remainder.size(), 1u);
  EXPECT_EQ(p.remainder[0], (std::vector<int>{2, 0}));
}

TEST(LoopOrderValidity, ChecksPermutations) {
  const Ttmc3 f;
  // Valid: each A_i permutes the term's refs.
  EXPECT_TRUE(is_valid_order(
      f.path, {{f.i, f.j, f.k, f.s}, {f.i, f.j, f.s, f.r}}));
  // Wrong index set.
  EXPECT_FALSE(is_valid_order(
      f.path, {{f.i, f.j, f.k, f.r}, {f.i, f.j, f.s, f.r}}));
  // Repeated index.
  EXPECT_FALSE(is_valid_order(
      f.path, {{f.i, f.j, f.j, f.s}, {f.i, f.j, f.s, f.r}}));
  // Wrong term count.
  EXPECT_FALSE(is_valid_order(f.path, {{f.i, f.j, f.k, f.s}}));
}

TEST(LoopOrderValidity, CsfOrderRestriction) {
  const Ttmc3 f;
  EXPECT_TRUE(respects_csf_order(
      f.kernel, f.path, {{f.i, f.j, f.k, f.s}, {f.i, f.j, f.s, f.r}}));
  // k before j in the sparse-carrying first term violates CSF order.
  EXPECT_FALSE(respects_csf_order(
      f.kernel, f.path, {{f.i, f.k, f.j, f.s}, {f.i, f.j, f.s, f.r}}));
  // Dense indices may interleave freely.
  EXPECT_TRUE(respects_csf_order(
      f.kernel, f.path, {{f.i, f.s, f.j, f.k}, {f.s, f.i, f.j, f.r}}));
}

TEST(LoopTree, Listing3ShapeAndBuffer) {
  // Listing 3: orders ((i,j,k,s),(i,j,s,r)) fuse i,j; buffer X(s) of size S.
  const Ttmc3 f;
  const LoopOrder order{{f.i, f.j, f.k, f.s}, {f.i, f.j, f.s, f.r}};
  const LoopTree tree = LoopTree::build(f.kernel, f.path, order);

  ASSERT_EQ(tree.top().size(), 1u);  // single root (i)
  const auto& root = tree.nodes()[static_cast<std::size_t>(tree.top()[0].id)];
  EXPECT_EQ(root.index, f.i);
  EXPECT_TRUE(root.sparse);
  EXPECT_EQ(root.csf_level, 0);

  EXPECT_EQ(tree.max_buffer_dim(), 1);
  EXPECT_EQ(tree.max_buffer_size(), 5);  // S = 5
  const BufferSpec& buf = tree.buffers()[0];
  EXPECT_EQ(buf.producer, 0);
  EXPECT_EQ(buf.consumer, 1);
  EXPECT_EQ(buf.indices, (std::vector<int>{f.s}));
}

TEST(LoopTree, Listing4FusesSAndBufferIsScalar) {
  // Listing 4: orders ((i,j,s,k),(i,j,s,r)) fuse i,j,s; buffer is scalar.
  const Ttmc3 f;
  const LoopOrder order{{f.i, f.j, f.s, f.k}, {f.i, f.j, f.s, f.r}};
  const LoopTree tree = LoopTree::build(f.kernel, f.path, order);
  EXPECT_EQ(tree.max_buffer_dim(), 0);
  EXPECT_EQ(tree.max_buffer_size(), 1);
}

TEST(LoopTree, Listing2UnfusedBufferIsFull) {
  // Listing 2 (pairwise, no fusion): independent loop nests; the
  // intermediate materializes at I x J x S.
  const Ttmc3 f;
  const LoopOrder order{{f.i, f.j, f.k, f.s}, {f.s, f.i, f.j, f.r}};
  const LoopTree tree = LoopTree::build(f.kernel, f.path, order);
  EXPECT_EQ(tree.top().size(), 3u);  // reset + two roots
  EXPECT_EQ(tree.max_buffer_dim(), 3);
  EXPECT_EQ(tree.max_buffer_size(), 10 * 9 * 5);
}

TEST(LoopTree, BufferIndexLoopsIterateSparselyAtMatchingDepth) {
  const Ttmc3 f;
  // Second term re-iterates j (a buffer index) under a dense s loop; j sits
  // at sparse depth 1 (only i above is sparse) and is CSF level 1, so the
  // runtime iterates it sparsely — reading exactly the pattern positions
  // the producer wrote.
  const LoopOrder order{{f.i, f.j, f.k, f.s}, {f.i, f.s, f.j, f.r}};
  const LoopTree tree = LoopTree::build(f.kernel, f.path, order);
  int sparse_loops = 0;
  for (const auto& n : tree.nodes()) {
    if (n.sparse) ++sparse_loops;
  }
  // Sparse: i (shared), j and k in term 1, j again in term 2.
  EXPECT_EQ(sparse_loops, 4);
}

TEST(LoopTree, SparseModeOutOfDepthIteratesDensely) {
  // SparseLNR-style schedule for TTMc written T*U*V: path (T*U) -> X(i,k,r)
  // then (X*V). In the second term k appears at sparse depth 1 but is CSF
  // level 2, so it must iterate densely over the K-wide workspace — the
  // behaviour the paper describes for SparseLNR (intermediate K x R).
  Kernel k2 = Kernel::parse("S(i,r,s) = T(i,j,k)*U(j,r)*V(k,s)");
  for (const auto& [n, d] : std::vector<std::pair<std::string, std::int64_t>>{
           {"i", 10}, {"j", 9}, {"k", 8}, {"r", 4}, {"s", 5}}) {
    k2.set_index_dim(k2.index_id(n), d);
  }
  const ContractionPath path = chain_path(k2);
  const int i = k2.index_id("i"), j = k2.index_id("j"), kk = k2.index_id("k"),
            r = k2.index_id("r"), s = k2.index_id("s");
  const LoopOrder order{{i, j, kk, r}, {i, kk, s, r}};
  const LoopTree tree = LoopTree::build(k2, path, order);
  // Buffer X spans {k, r}: the K x R workspace.
  EXPECT_EQ(tree.buffers()[0].indices, (std::vector<int>{kk, r}));
  EXPECT_EQ(tree.buffers()[0].size, 8 * 4);
  // The second term's k loop is dense.
  int dense_k = 0;
  int sparse_k = 0;
  for (const auto& n : tree.nodes()) {
    if (n.index != kk) continue;
    if (n.sparse) {
      ++sparse_k;
    } else {
      ++dense_k;
    }
  }
  EXPECT_EQ(sparse_k, 1);  // term 1's k, under (i, j)
  EXPECT_EQ(dense_k, 1);   // term 2's k, under (i)
}

TEST(LoopTree, RejectsSparseTermViolatingCsfOrder) {
  const Ttmc3 f;
  // First term (touches T) iterates k before j — invalid.
  const LoopOrder order{{f.i, f.k, f.j, f.s}, {f.i, f.j, f.s, f.r}};
  EXPECT_THROW(LoopTree::build(f.kernel, f.path, order), Error);
}

TEST(LoopTree, ResetPlacedAtDeepestCommonAncestor) {
  const Ttmc3 f;
  const LoopOrder order{{f.i, f.j, f.k, f.s}, {f.i, f.j, f.s, f.r}};
  const LoopTree tree = LoopTree::build(f.kernel, f.path, order);
  // Find the j node: its body must be [reset(X1), loop(k), loop(s)].
  const LoopTree::Node* jn = nullptr;
  for (const auto& n : tree.nodes()) {
    if (n.index == f.j) jn = &n;
  }
  ASSERT_NE(jn, nullptr);
  ASSERT_GE(jn->body.size(), 3u);
  EXPECT_EQ(jn->body[0].kind, LoopTree::Action::Kind::kReset);
  EXPECT_EQ(jn->body[0].id, 0);
  EXPECT_EQ(jn->body[1].kind, LoopTree::Action::Kind::kLoop);
}

TEST(LoopTree, MaxDepthMatchesListing) {
  const Ttmc3 f;
  const LoopOrder fused{{f.i, f.j, f.k, f.s}, {f.i, f.j, f.s, f.r}};
  EXPECT_EQ(LoopTree::build(f.kernel, f.path, fused).max_depth(), 4);
}

TEST(LoopTree, RenderShowsSparseAndDenseLoops) {
  const Ttmc3 f;
  const LoopOrder order{{f.i, f.j, f.k, f.s}, {f.i, f.j, f.s, f.r}};
  const LoopTree tree = LoopTree::build(f.kernel, f.path, order);
  const std::string text = tree.render(f.kernel, f.path);
  EXPECT_NE(text.find("for i in T.csf_level(0)"), std::string::npos);
  EXPECT_NE(text.find("for s in range(s)"), std::string::npos);
  EXPECT_NE(text.find("X1 = 0"), std::string::npos);
  EXPECT_NE(text.find("S += X1 * U"), std::string::npos);
}

TEST(LoopTree, Order4TtmcMatchesFigure6) {
  // Figure 6: S(i,r,s,t) = T(i,j,k,l) U(j,r) V(k,s) W(l,t) with path
  // ((T*W), (*V), (*U)) and orders ((i,j,k,l,t),(i,j,k,s,t),(i,j,r,s,t)).
  Kernel k = Kernel::parse("S(i,r,s,t) = T(i,j,k,l)*W(l,t)*V(k,s)*U(j,r)");
  for (const auto& [n, d] : std::vector<std::pair<std::string, std::int64_t>>{
           {"i", 8}, {"j", 7}, {"k", 6}, {"l", 5},
           {"r", 3}, {"s", 4}, {"t", 2}}) {
    k.set_index_dim(k.index_id(n), d);
  }
  const ContractionPath path = chain_path(k);
  const int i = k.index_id("i"), j = k.index_id("j"), kk = k.index_id("k"),
            l = k.index_id("l"), r = k.index_id("r"), s = k.index_id("s"),
            t = k.index_id("t");
  const LoopOrder order{{i, j, kk, l, t}, {i, j, kk, s, t}, {i, j, r, s, t}};
  const LoopTree tree = LoopTree::build(k, path, order);
  // Buffers: X(t) of size T=2 and Y(s,t) of size S*T=8 (paper Fig. 6).
  EXPECT_EQ(tree.buffers()[0].indices, (std::vector<int>{t}));
  EXPECT_EQ(tree.buffers()[0].size, 2);
  EXPECT_EQ(tree.buffers()[1].indices, (std::vector<int>{s, t}));
  EXPECT_EQ(tree.buffers()[1].size, 8);
  EXPECT_EQ(tree.max_buffer_dim(), 2);
  EXPECT_EQ(tree.max_depth(), 5);  // paper: maximum loop depth of five
}

TEST(LoopTree, OffloadableDenseLoopCount) {
  const Ttmc3 f;
  // Listing 3 nest: term1 trailing s (exclusive) and term2 trailing (s,r).
  const LoopOrder order{{f.i, f.j, f.k, f.s}, {f.i, f.j, f.s, f.r}};
  const LoopTree tree = LoopTree::build(f.kernel, f.path, order);
  EXPECT_EQ(tree.count_offloadable_dense_loops(f.kernel, f.path, order), 3);
}

}  // namespace
}  // namespace spttn
