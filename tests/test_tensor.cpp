#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "tensor/coo_tensor.hpp"
#include "tensor/csf_tensor.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/generate.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace spttn {
namespace {

TEST(DenseTensor, StridesRowMajor) {
  DenseTensor t({2, 3, 4});
  EXPECT_EQ(t.size(), 24);
  EXPECT_EQ(t.strides(), (std::vector<std::int64_t>{12, 4, 1}));
  EXPECT_EQ(t.offset(std::vector<std::int64_t>{1, 2, 3}), 23);
}

TEST(DenseTensor, AtReadsAndWrites) {
  DenseTensor t({3, 3});
  t.at({1, 2}) = 7.5;
  EXPECT_DOUBLE_EQ(t.at({1, 2}), 7.5);
  EXPECT_DOUBLE_EQ(t.data()[1 * 3 + 2], 7.5);
}

TEST(DenseTensor, BoundsChecked) {
  DenseTensor t({2, 2});
  EXPECT_THROW(t.at({2, 0}), Error);
  EXPECT_THROW(t.at({0, -1}), Error);
  EXPECT_THROW(t.at({0}), Error);
}

TEST(DenseTensor, FillAndNorm) {
  DenseTensor t({4});
  t.fill(2.0);
  EXPECT_DOUBLE_EQ(t.norm(), 4.0);
  t.zero();
  EXPECT_DOUBLE_EQ(t.norm(), 0.0);
}

TEST(DenseTensor, MaxAbsDiff) {
  DenseTensor a({3});
  DenseTensor b({3});
  a.at({1}) = 2;
  b.at({1}) = -1;
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 3.0);
}

TEST(DenseTensor, ZeroDimRejected) {
  EXPECT_THROW(DenseTensor({3, 0}), Error);
}

TEST(CooTensor, SortDedupSumsDuplicates) {
  CooTensor t({4, 4});
  t.push_back({2, 1}, 1.0);
  t.push_back({0, 3}, 2.0);
  t.push_back({2, 1}, 0.5);
  t.sort_dedup();
  EXPECT_EQ(t.nnz(), 2);
  EXPECT_EQ(t.coord(0)[0], 0);
  EXPECT_DOUBLE_EQ(t.value(1), 1.5);
}

TEST(CooTensor, PrefixCountsMatchDefinition) {
  // nnz(I1..Ik) equals the nonzero count of the tensor reduced over the
  // remaining modes (paper Section 2.2).
  Rng rng(5);
  const CooTensor t = random_coo({6, 5, 4}, 40, rng);
  std::set<std::int64_t> p1;
  std::set<std::pair<std::int64_t, std::int64_t>> p2;
  for (std::int64_t e = 0; e < t.nnz(); ++e) {
    p1.insert(t.coord(e)[0]);
    p2.insert({t.coord(e)[0], t.coord(e)[1]});
  }
  EXPECT_EQ(t.nnz_prefix(0), 1);
  EXPECT_EQ(t.nnz_prefix(1), static_cast<std::int64_t>(p1.size()));
  EXPECT_EQ(t.nnz_prefix(2), static_cast<std::int64_t>(p2.size()));
  EXPECT_EQ(t.nnz_prefix(3), t.nnz());
}

TEST(CooTensor, ProjectionCounts) {
  Rng rng(6);
  const CooTensor t = random_coo({5, 6, 7}, 60, rng);
  std::set<std::pair<std::int64_t, std::int64_t>> p02;
  for (std::int64_t e = 0; e < t.nnz(); ++e) {
    p02.insert({t.coord(e)[0], t.coord(e)[2]});
  }
  const std::vector<int> modes{0, 2};
  EXPECT_EQ(t.nnz_projection(modes), static_cast<std::int64_t>(p02.size()));
  EXPECT_EQ(t.nnz_projection(std::vector<int>{}), 1);
}

// Regression for the hash-only distinct-count bug: nnz_projection used to
// store 64-bit *hashes* of the projected coordinates, so collisions could
// silently undercount projections and skew every cost-model decision.
// Exact counting must survive adversarial coordinates: huge extents that
// overflow the packed-key fast path, values differing only in high bits,
// and bit patterns that weak mixers fold together.
TEST(CooTensor, ProjectionCountExactOnCollisionProneInput) {
  const std::int64_t big = std::int64_t{1} << 40;
  CooTensor t({big, big, big});  // 3*40 bits > 64: exercises the fallback
  // Coordinates differing only in high bits / by 2^32 multiples; several
  // entries share projections onto subsets of modes.
  const std::vector<std::vector<std::int64_t>> coords = {
      {0, 0, 0},
      {std::int64_t{1} << 32, 0, 0},
      {std::int64_t{1} << 33, 0, 0},
      {0, std::int64_t{1} << 32, 0},
      {0, 0, std::int64_t{1} << 32},
      {(std::int64_t{1} << 32) + 1, 1, 1},
      {(std::int64_t{1} << 32) + 1, 1, 2},
      {1, (std::int64_t{1} << 32) + 1, 1},
      {big - 1, big - 1, big - 1},
      {big - 1, big - 1, big - 2},
  };
  for (std::size_t e = 0; e < coords.size(); ++e) {
    t.push_back(coords[e], static_cast<double>(e) + 1.0);
  }
  // Brute-force cross-check on every non-empty mode subset.
  for (int mask = 1; mask < 8; ++mask) {
    std::vector<int> modes;
    for (int m = 0; m < 3; ++m) {
      if ((mask >> m) & 1) modes.push_back(m);
    }
    std::set<std::vector<std::int64_t>> brute;
    for (const auto& c : coords) {
      std::vector<std::int64_t> p;
      for (int m : modes) p.push_back(c[static_cast<std::size_t>(m)]);
      brute.insert(std::move(p));
    }
    EXPECT_EQ(t.nnz_projection(modes),
              static_cast<std::int64_t>(brute.size()))
        << "mode mask " << mask;
  }
}

TEST(CooTensor, ProjectionCountExactRandomizedVsBruteForce) {
  Rng rng(17);
  // Small extents take the packed fast path; the wide tensor below forces
  // the tuple fallback. Both must agree with a std::set of tuples.
  for (const std::vector<std::int64_t>& dims :
       {std::vector<std::int64_t>{9, 8, 7, 6},
        std::vector<std::int64_t>{std::int64_t{1} << 40,
                                  std::int64_t{1} << 40,
                                  std::int64_t{1} << 40, 6}}) {
    CooTensor t(dims);
    for (int e = 0; e < 200; ++e) {
      std::vector<std::int64_t> c;
      for (std::int64_t d : dims) {
        // Cluster values so projections genuinely collide across entries.
        c.push_back(rng.next_in(0, std::min<std::int64_t>(d - 1, 3)) *
                    std::max<std::int64_t>(1, d / 5));
      }
      t.push_back(c, 1.0);
    }
    for (const std::vector<int>& modes :
         {std::vector<int>{0}, std::vector<int>{1, 3}, std::vector<int>{0, 2},
          std::vector<int>{0, 1, 2, 3}}) {
      std::set<std::vector<std::int64_t>> brute;
      for (std::int64_t e = 0; e < t.nnz(); ++e) {
        std::vector<std::int64_t> p;
        for (int m : modes) p.push_back(t.coord(e)[static_cast<std::size_t>(m)]);
        brute.insert(std::move(p));
      }
      EXPECT_EQ(t.nnz_projection(modes),
                static_cast<std::int64_t>(brute.size()));
    }
  }
}

TEST(CooTensor, StructureHashIgnoresValuesTracksStructure) {
  Rng rng(23);
  CooTensor a = random_coo({6, 7, 8}, 50, rng);
  CooTensor b = a;
  for (double& v : b.values()) v *= 3.5;  // same structure, new values
  EXPECT_EQ(a.structure_hash(), b.structure_hash());
  EXPECT_NE(a.structure_hash(), 0u);

  // Any structural difference — one coordinate, dims, or nnz — changes it.
  CooTensor c({6, 7, 8});
  for (std::int64_t e = 0; e < a.nnz(); ++e) c.push_back(a.coord(e), 1.0);
  c.sort_dedup();
  EXPECT_EQ(a.structure_hash(), c.structure_hash());
  CooTensor d({6, 7, 9});
  for (std::int64_t e = 0; e < a.nnz(); ++e) d.push_back(a.coord(e), 1.0);
  d.sort_dedup();
  EXPECT_NE(a.structure_hash(), d.structure_hash());
}

TEST(CsfTensor, StructureFingerprintMatchesSourceCoo) {
  Rng rng(29);
  const CooTensor t = random_coo({9, 9, 9}, 70, rng);
  const CsfTensor csf(t);
  EXPECT_EQ(csf.structure_fingerprint(), t.structure_hash());
  // A permuted CSF is a different tree: different fingerprint.
  const CsfTensor permuted(t, {2, 0, 1});
  EXPECT_NE(permuted.structure_fingerprint(), t.structure_hash());
  EXPECT_EQ(CsfTensor().structure_fingerprint(), 0u);
}

TEST(CooTensor, PrefixRequiresSorted) {
  CooTensor t({3, 3});
  t.push_back({0, 0}, 1.0);
  EXPECT_THROW(t.nnz_prefix(1), Error);
}

TEST(CooTensor, CoordOutOfRangeRejected) {
  CooTensor t({3, 3});
  EXPECT_THROW(t.push_back({3, 0}, 1.0), Error);
  EXPECT_THROW(t.push_back({0, -1}, 1.0), Error);
}

TEST(CsfTensor, StructureMatchesManualExample) {
  CooTensor t({3, 3, 3});
  t.push_back({0, 1, 2}, 1.0);
  t.push_back({0, 1, 0}, 2.0);
  t.push_back({0, 2, 1}, 3.0);
  t.push_back({2, 0, 0}, 4.0);
  t.sort_dedup();
  const CsfTensor csf(t);
  EXPECT_EQ(csf.num_nodes(0), 2);  // i in {0, 2}
  EXPECT_EQ(csf.num_nodes(1), 3);  // (0,1),(0,2),(2,0)
  EXPECT_EQ(csf.num_nodes(2), 4);
  EXPECT_EQ(csf.level_idx(0)[0], 0);
  EXPECT_EQ(csf.level_idx(0)[1], 2);
  // Children of i=0 are the first two j-nodes.
  EXPECT_EQ(csf.level_ptr(0)[0], 0);
  EXPECT_EQ(csf.level_ptr(0)[1], 2);
  EXPECT_EQ(csf.level_ptr(0)[2], 3);
  // Values in sorted leaf order: (0,1,0)=2, (0,1,2)=1, (0,2,1)=3, (2,0,0)=4.
  EXPECT_DOUBLE_EQ(csf.vals()[0], 2.0);
  EXPECT_DOUBLE_EQ(csf.vals()[3], 4.0);
}

TEST(CsfTensor, LevelNodeCountsEqualPrefixCounts) {
  Rng rng(8);
  const CooTensor t = random_coo({7, 6, 5, 4}, 120, rng);
  const CsfTensor csf(t);
  for (int k = 1; k <= 4; ++k) {
    EXPECT_EQ(csf.num_nodes(k - 1), t.nnz_prefix(k)) << "level " << k;
  }
}

TEST(CsfTensor, RoundTripsThroughCoo) {
  Rng rng(9);
  const CooTensor t = random_coo({5, 7, 6}, 70, rng);
  const CsfTensor csf(t);
  const CooTensor back = csf.to_coo();
  ASSERT_EQ(back.nnz(), t.nnz());
  for (std::int64_t e = 0; e < t.nnz(); ++e) {
    EXPECT_EQ(std::vector<std::int64_t>(back.coord(e).begin(),
                                        back.coord(e).end()),
              std::vector<std::int64_t>(t.coord(e).begin(),
                                        t.coord(e).end()));
    EXPECT_DOUBLE_EQ(back.value(e), t.value(e));
  }
}

TEST(CsfTensor, ModePermutationRoundTrips) {
  Rng rng(10);
  const CooTensor t = random_coo({4, 6, 5}, 50, rng);
  const CsfTensor csf(t, {2, 0, 1});
  EXPECT_EQ(csf.level_dims(),
            (std::vector<std::int64_t>{5, 4, 6}));
  const CooTensor back = csf.to_coo();
  ASSERT_EQ(back.nnz(), t.nnz());
  for (std::int64_t e = 0; e < t.nnz(); ++e) {
    EXPECT_DOUBLE_EQ(back.value(e), t.value(e));
  }
}

TEST(CsfTensor, EmptyTensorYieldsEmptyLevels) {
  CooTensor t({3, 3});
  t.sort_dedup();
  const CsfTensor csf(t);
  EXPECT_EQ(csf.nnz(), 0);
  EXPECT_EQ(csf.num_nodes(0), 0);
}

TEST(CsfTensor, RejectsUnsortedInput) {
  CooTensor t({3, 3});
  t.push_back({1, 1}, 1.0);
  EXPECT_THROW(CsfTensor{t}, Error);
}

TEST(CsfTensor, RejectsBadPermutation) {
  CooTensor t({3, 3});
  t.push_back({1, 1}, 1.0);
  t.sort_dedup();
  EXPECT_THROW(CsfTensor(t, {0, 0}), Error);
}

TEST(Generate, RandomCooHitsTargetAndIsDeduped) {
  Rng rng(11);
  const CooTensor t = random_coo({20, 20, 20}, 300, rng);
  EXPECT_EQ(t.nnz(), 300);
  EXPECT_TRUE(t.is_sorted());
}

TEST(Generate, RandomCooSaturatesSmallSpace) {
  Rng rng(12);
  const CooTensor t = random_coo({2, 2}, 100, rng);
  EXPECT_LE(t.nnz(), 4);
  EXPECT_GE(t.nnz(), 3);  // should nearly fill the space
}

TEST(Generate, HierarchicalMatchesFanoutStatistics) {
  Rng rng(13);
  const CooTensor t = hierarchical_coo({500, 400, 300}, 200, {6.0, 4.0}, rng);
  // Roots: exactly 200 distinct i values.
  EXPECT_EQ(t.nnz_prefix(1), 200);
  // Mean fan-outs should be near the configured values.
  const double f1 = static_cast<double>(t.nnz_prefix(2)) /
                    static_cast<double>(t.nnz_prefix(1));
  const double f2 = static_cast<double>(t.nnz()) /
                    static_cast<double>(t.nnz_prefix(2));
  EXPECT_NEAR(f1, 6.0, 1.5);
  EXPECT_NEAR(f2, 4.0, 1.0);
}

TEST(Generate, DeterministicAcrossRuns) {
  Rng a(77);
  Rng b(77);
  const CooTensor ta = random_coo({30, 30}, 50, a);
  const CooTensor tb = random_coo({30, 30}, 50, b);
  ASSERT_EQ(ta.nnz(), tb.nnz());
  for (std::int64_t e = 0; e < ta.nnz(); ++e) {
    EXPECT_DOUBLE_EQ(ta.value(e), tb.value(e));
  }
}

TEST(Generate, PresetsInstantiateScaled) {
  Rng rng(14);
  const CooTensor t = make_preset_tensor("nell-2", 0.002, rng);
  EXPECT_EQ(t.order(), 3);
  // nnz ~ published * scale (within the stochastic fan-out slack).
  EXPECT_GT(t.nnz(), 76879419 * 0.002 * 0.4);
  EXPECT_LT(t.nnz(), 76879419 * 0.002 * 2.5);
  // Dims scale by sqrt(scale).
  EXPECT_NEAR(static_cast<double>(t.dim(0)), 12092 * std::sqrt(0.002),
              12092 * std::sqrt(0.002) * 0.1);
}

TEST(Generate, UnknownPresetThrows) {
  Rng rng(1);
  EXPECT_THROW(make_preset_tensor("no-such-tensor", 0.1, rng), Error);
}

TEST(Generate, LowRankValuesAreStructured) {
  Rng rng(15);
  // Noise-free rank-1 tensor has values equal to products of factor rows —
  // verify nonzero structure and determinism only (exact CP recovery is
  // covered by the ALS example/integration test).
  const CooTensor t = lowrank_coo({10, 10, 10}, 2, 100, 0.0, rng);
  EXPECT_GT(t.nnz(), 50);
  double mag = 0;
  for (std::int64_t e = 0; e < t.nnz(); ++e) mag += std::abs(t.value(e));
  EXPECT_GT(mag, 0.0);
}

TEST(Generate, CatalogCoversPaperTensors) {
  const auto& presets = tensor_presets();
  std::set<std::string> names;
  for (const auto& p : presets) names.insert(p.name);
  for (const char* want :
       {"nell-2", "nips", "enron", "vast-3d", "darpa", "synth3", "synth4"}) {
    EXPECT_TRUE(names.count(want)) << want;
  }
}

}  // namespace
}  // namespace spttn
