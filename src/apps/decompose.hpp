// Tensor decomposition and completion drivers (paper Section 2.3) built
// entirely on SpTTN kernels: MTTKRP for CP-ALS, TTMc for Tucker-HOOI, and
// TTTP + MTTKRP-on-residual for CP completion. Every kernel invocation goes
// through the planner/executor stack, so these drivers double as
// integration tests of the whole library.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "tensor/coo_tensor.hpp"
#include "tensor/dense_tensor.hpp"

namespace spttn {

class Rng;

/// Rank-r CP model: one (I_m x r) factor per mode.
struct CpModel {
  std::vector<DenseTensor> factors;
  int rank = 0;

  /// Model value at one coordinate: sum_r prod_m U_m(c_m, r).
  double value_at(std::span<const std::int64_t> coord) const;
};

struct AlsReport {
  std::vector<double> fits;        ///< per-sweep fit = 1 - |T - model|/|T|
  double seconds_in_kernels = 0;   ///< time spent in SpTTN executions
  int sweeps = 0;
};

/// CP-ALS: alternating least squares with per-mode MTTKRP kernels planned
/// and executed by the SpTTN stack.
AlsReport cp_als(const CooTensor& tensor, CpModel* model, int sweeps,
                 const PlannerOptions& options = {});

/// Initialize a CP model with random factors.
CpModel make_cp_model(const CooTensor& tensor, int rank, Rng& rng);

/// Tucker model: core (r x r x ... ) plus orthonormal factors.
struct TuckerModel {
  std::vector<DenseTensor> factors;  ///< (I_m x r_m)
  DenseTensor core;
  std::vector<std::int64_t> ranks;
};

struct HooiReport {
  std::vector<double> core_norms;  ///< grows as the fit improves
  double seconds_in_kernels = 0;
  int sweeps = 0;
};

/// Tucker-HOOI for order-3 tensors: per-mode TTMc (the Section 2.3 kernel),
/// followed by orthonormalization of the matricized result.
HooiReport tucker_hooi(const CooTensor& tensor, TuckerModel* model,
                       int sweeps, const PlannerOptions& options = {});

TuckerModel make_tucker_model(const CooTensor& tensor,
                              std::vector<std::int64_t> ranks, Rng& rng);

struct CompletionReport {
  std::vector<double> rmse;  ///< observed-entry RMSE per epoch
  double seconds_in_kernels = 0;
  int epochs = 0;
};

/// CP completion on the observed entries of `observed`: gradient descent
/// where the residual is a TTTP kernel and each factor gradient is an
/// MTTKRP with the residual values on the sparse pattern.
CompletionReport cp_complete(const CooTensor& observed, CpModel* model,
                             int epochs, double step,
                             const PlannerOptions& options = {});

/// Fit 1 - |T - model| / |T| evaluated sparsely (exact for CP models whose
/// support matches T; standard CP fit formula otherwise).
double cp_fit(const CooTensor& tensor, const CpModel& model);

}  // namespace spttn
