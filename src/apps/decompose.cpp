#include "apps/decompose.hpp"

#include <cmath>
#include <optional>

#include "apps/linalg.hpp"
#include "exec/executor.hpp"
#include "exec/kernels.hpp"
#include "tensor/csf_tensor.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace spttn {

namespace {

/// One planned, reusable SpTTN kernel execution.
struct KernelRunner {
  Kernel kernel;
  Plan plan;
  std::optional<FusedExecutor> exec;

  KernelRunner(const std::string& expr, const CooTensor& coo,
               const std::vector<const DenseTensor*>& dense_by_input,
               const SparsityStats& stats, const PlannerOptions& options) {
    kernel = Kernel::parse(expr);
    for (int l = 0; l < coo.order(); ++l) {
      kernel.set_index_dim(kernel.sparse_ref().idx[static_cast<std::size_t>(l)],
                           coo.dim(l));
    }
    for (int i = 0; i < kernel.num_inputs(); ++i) {
      if (i == kernel.sparse_input()) continue;
      const DenseTensor* d = dense_by_input[static_cast<std::size_t>(i)];
      const TensorRef& ref = kernel.input(i);
      for (int m = 0; m < ref.order(); ++m) {
        kernel.set_index_dim(ref.idx[static_cast<std::size_t>(m)], d->dim(m));
      }
    }
    plan = make_plan(kernel, stats, options);
    exec.emplace(kernel, plan);
  }

  double run(const CsfTensor& csf,
             const std::vector<const DenseTensor*>& dense_by_input,
             DenseTensor* out_dense, std::span<double> out_sparse) {
    ExecArgs args;
    args.sparse = &csf;
    args.dense = dense_by_input;
    args.out_dense = out_dense;
    args.out_sparse = out_sparse;
    Timer t;
    exec->execute(args);
    return t.seconds();
  }
};

/// Index names i0..i{d-1} for the sparse modes.
std::string mode_index(int m) { return "i" + std::to_string(m); }

/// "T(i0,i1,...,i{d-1})"
std::string sparse_ref_expr(int d) {
  std::string s = "T(";
  for (int m = 0; m < d; ++m) {
    if (m) s += ",";
    s += mode_index(m);
  }
  return s + ")";
}

/// MTTKRP expression for output mode m:
/// "M(i{m},r) = T(...) * U0(i0,r) * ... (skipping mode m)".
std::string mttkrp_expr(int d, int mode) {
  std::string s = "M(" + mode_index(mode) + ",r) = " + sparse_ref_expr(d);
  for (int m = 0; m < d; ++m) {
    if (m == mode) continue;
    s += strfmt(" * U%d(%s,r)", m, mode_index(m).c_str());
  }
  return s;
}

/// TTTP expression: "S(i0,..) = T(i0,..) * U0(i0,r) * U1(i1,r) * ...".
std::string tttp_expr(int d) {
  std::string s = "S(";
  for (int m = 0; m < d; ++m) {
    if (m) s += ",";
    s += mode_index(m);
  }
  s += ") = " + sparse_ref_expr(d);
  for (int m = 0; m < d; ++m) {
    s += strfmt(" * U%d(%s,r)", m, mode_index(m).c_str());
  }
  return s;
}

double tensor_norm(const CooTensor& t) {
  double s = 0;
  for (double v : t.values()) s += v * v;
  return std::sqrt(s);
}

/// Random (n x r) factor with small entries (keeps ALS starts stable).
DenseTensor random_factor(std::int64_t n, std::int64_t r, Rng& rng) {
  DenseTensor f({n, r});
  for (std::int64_t i = 0; i < f.size(); ++i) {
    f.data()[i] = 0.5 * (2.0 * rng.next_double() - 1.0);
  }
  return f;
}

}  // namespace

double CpModel::value_at(std::span<const std::int64_t> coord) const {
  double out = 0;
  for (int r = 0; r < rank; ++r) {
    double p = 1;
    for (std::size_t m = 0; m < factors.size(); ++m) {
      p *= factors[m].at({coord[m], r});
    }
    out += p;
  }
  return out;
}

CpModel make_cp_model(const CooTensor& tensor, int rank, Rng& rng) {
  CpModel model;
  model.rank = rank;
  for (int m = 0; m < tensor.order(); ++m) {
    model.factors.push_back(random_factor(tensor.dim(m), rank, rng));
  }
  return model;
}

double cp_fit(const CooTensor& tensor, const CpModel& model) {
  // |T - M|^2 = |T|^2 - 2<T,M> + |M|^2.
  const double tnorm2 = tensor_norm(tensor) * tensor_norm(tensor);
  double inner = 0;
  for (std::int64_t e = 0; e < tensor.nnz(); ++e) {
    inner += tensor.value(e) * model.value_at(tensor.coord(e));
  }
  DenseTensor gprod;
  for (std::size_t m = 0; m < model.factors.size(); ++m) {
    const DenseTensor g = gram(model.factors[m]);
    gprod = (m == 0) ? g : hadamard(gprod, g);
  }
  const double mnorm2 = element_sum(gprod);
  const double resid2 = std::max(0.0, tnorm2 - 2 * inner + mnorm2);
  return 1.0 - std::sqrt(resid2) / std::sqrt(tnorm2);
}

AlsReport cp_als(const CooTensor& tensor, CpModel* model, int sweeps,
                 const PlannerOptions& options) {
  SPTTN_CHECK(tensor.is_sorted());
  const int d = tensor.order();
  SPTTN_CHECK(static_cast<int>(model->factors.size()) == d);
  AlsReport report;
  const CsfTensor csf(tensor);
  const SparsityStats stats = SparsityStats::from_coo(tensor);

  // Plan one MTTKRP per output mode, reused across sweeps.
  std::vector<KernelRunner> runners;
  std::vector<std::vector<const DenseTensor*>> slots(
      static_cast<std::size_t>(d));
  for (int mode = 0; mode < d; ++mode) {
    auto& s = slots[static_cast<std::size_t>(mode)];
    s.push_back(nullptr);  // sparse slot
    for (int m = 0; m < d; ++m) {
      if (m != mode) s.push_back(&model->factors[static_cast<std::size_t>(m)]);
    }
    runners.emplace_back(mttkrp_expr(d, mode), tensor,
                         slots[static_cast<std::size_t>(mode)], stats,
                         options);
  }

  for (int sweep = 0; sweep < sweeps; ++sweep) {
    for (int mode = 0; mode < d; ++mode) {
      DenseTensor m_out({tensor.dim(mode), model->rank});
      report.seconds_in_kernels +=
          runners[static_cast<std::size_t>(mode)].run(
              csf, slots[static_cast<std::size_t>(mode)], &m_out, {});
      // Normal equations: Hadamard of the other factors' Grams.
      DenseTensor v;
      bool first = true;
      for (int m = 0; m < d; ++m) {
        if (m == mode) continue;
        const DenseTensor g = gram(model->factors[static_cast<std::size_t>(m)]);
        v = first ? g : hadamard(v, g);
        first = false;
      }
      solve_normal_equations(v, &m_out);
      model->factors[static_cast<std::size_t>(mode)] = std::move(m_out);
    }
    report.fits.push_back(cp_fit(tensor, *model));
    ++report.sweeps;
  }
  return report;
}

TuckerModel make_tucker_model(const CooTensor& tensor,
                              std::vector<std::int64_t> ranks, Rng& rng) {
  SPTTN_CHECK(static_cast<int>(ranks.size()) == tensor.order());
  TuckerModel model;
  model.ranks = ranks;
  for (int m = 0; m < tensor.order(); ++m) {
    DenseTensor f = random_factor(tensor.dim(m),
                                  ranks[static_cast<std::size_t>(m)], rng);
    orthonormalize_columns(&f);
    model.factors.push_back(std::move(f));
  }
  model.core = DenseTensor(ranks);
  return model;
}

HooiReport tucker_hooi(const CooTensor& tensor, TuckerModel* model,
                       int sweeps, const PlannerOptions& options) {
  SPTTN_CHECK_MSG(tensor.order() == 3, "tucker_hooi supports order 3");
  HooiReport report;
  const CsfTensor csf(tensor);
  const SparsityStats stats = SparsityStats::from_coo(tensor);
  const auto& r = model->ranks;

  // Per-mode TTMc kernels: Y = T x_{m'} U_{m'} for m' != m.
  const std::vector<std::string> exprs = {
      "Y(i0,a,b) = T(i0,i1,i2) * U1(i1,a) * U2(i2,b)",
      "Y(i1,a,b) = T(i0,i1,i2) * U0(i0,a) * U2(i2,b)",
      "Y(i2,a,b) = T(i0,i1,i2) * U0(i0,a) * U1(i1,b)",
  };
  std::vector<std::vector<const DenseTensor*>> slots = {
      {nullptr, &model->factors[1], &model->factors[2]},
      {nullptr, &model->factors[0], &model->factors[2]},
      {nullptr, &model->factors[0], &model->factors[1]},
  };
  std::vector<KernelRunner> runners;
  for (int mode = 0; mode < 3; ++mode) {
    runners.emplace_back(exprs[static_cast<std::size_t>(mode)], tensor,
                         slots[static_cast<std::size_t>(mode)], stats,
                         options);
  }
  // All-mode TTMc for the core.
  KernelRunner core_runner(
      "G(a,b,c) = T(i0,i1,i2) * U0(i0,a) * U1(i1,b) * U2(i2,c)", tensor,
      {nullptr, &model->factors[0], &model->factors[1], &model->factors[2]},
      stats, options);

  for (int sweep = 0; sweep < sweeps; ++sweep) {
    for (int mode = 0; mode < 3; ++mode) {
      // Y has dims (I_mode, r_a, r_b) with (a, b) the other two ranks in
      // ascending mode order.
      const int ma = mode == 0 ? 1 : 0;
      const int mb = mode == 2 ? 1 : 2;
      DenseTensor y({tensor.dim(mode), r[static_cast<std::size_t>(ma)],
                     r[static_cast<std::size_t>(mb)]});
      report.seconds_in_kernels +=
          runners[static_cast<std::size_t>(mode)].run(
              csf, slots[static_cast<std::size_t>(mode)], &y, {});
      // Matricized Y is (I x ra*rb) row-major. One orthogonal-iteration
      // step toward the leading left subspace (stand-in for the SVD).
      const std::int64_t cols =
          r[static_cast<std::size_t>(ma)] * r[static_cast<std::size_t>(mb)];
      DenseTensor ymat({tensor.dim(mode), cols});
      for (std::int64_t i = 0; i < ymat.size(); ++i) {
        ymat.data()[i] = y.data()[i];
      }
      DenseTensor& u = model->factors[static_cast<std::size_t>(mode)];
      // z = Y^T u ; u_new = orth(Y z)
      DenseTensor z({cols, r[static_cast<std::size_t>(mode)]});
      xgemm(cols, r[static_cast<std::size_t>(mode)], tensor.dim(mode), 1.0,
            ymat.data(), 1, cols, u.data(), r[static_cast<std::size_t>(mode)],
            1, z.data(), r[static_cast<std::size_t>(mode)], 1);
      DenseTensor u_new = matmul(ymat, z);
      orthonormalize_columns(&u_new);
      u = std::move(u_new);
    }
    report.seconds_in_kernels += core_runner.run(
        csf,
        {nullptr, &model->factors[0], &model->factors[1], &model->factors[2]},
        &model->core, {});
    report.core_norms.push_back(model->core.norm());
    ++report.sweeps;
  }
  return report;
}

CompletionReport cp_complete(const CooTensor& observed, CpModel* model,
                             int epochs, double step,
                             const PlannerOptions& options) {
  SPTTN_CHECK(observed.is_sorted());
  const int d = observed.order();
  CompletionReport report;
  const SparsityStats stats = SparsityStats::from_coo(observed);

  // Pattern CSF with unit values (for model evaluation via TTTP) and a
  // residual CSF sharing the structure.
  CooTensor ones = observed;
  for (double& v : ones.values()) v = 1.0;
  const CsfTensor csf_ones(ones);
  CsfTensor csf_resid(ones);

  std::vector<const DenseTensor*> tttp_slots{nullptr};
  for (int m = 0; m < d; ++m) {
    tttp_slots.push_back(&model->factors[static_cast<std::size_t>(m)]);
  }
  KernelRunner tttp(tttp_expr(d), observed, tttp_slots, stats, options);

  std::vector<KernelRunner> grad;
  std::vector<std::vector<const DenseTensor*>> grad_slots(
      static_cast<std::size_t>(d));
  for (int mode = 0; mode < d; ++mode) {
    auto& s = grad_slots[static_cast<std::size_t>(mode)];
    s.push_back(nullptr);
    for (int m = 0; m < d; ++m) {
      if (m != mode) s.push_back(&model->factors[static_cast<std::size_t>(m)]);
    }
    grad.emplace_back(mttkrp_expr(d, mode), observed,
                      grad_slots[static_cast<std::size_t>(mode)], stats,
                      options);
  }

  std::vector<double> model_vals(static_cast<std::size_t>(observed.nnz()));
  for (int epoch = 0; epoch < epochs; ++epoch) {
    // Model values on the pattern (TTTP with unit sparse values).
    report.seconds_in_kernels +=
        tttp.run(csf_ones, tttp_slots, nullptr, model_vals);
    double se = 0;
    auto resid_vals = csf_resid.vals();
    for (std::int64_t e = 0; e < observed.nnz(); ++e) {
      const double resid =
          observed.value(e) - model_vals[static_cast<std::size_t>(e)];
      resid_vals[static_cast<std::size_t>(e)] = resid;
      se += resid * resid;
    }
    report.rmse.push_back(
        std::sqrt(se / static_cast<double>(observed.nnz())));
    // Gradient step per factor: MTTKRP of the residual tensor.
    for (int mode = 0; mode < d; ++mode) {
      DenseTensor g({observed.dim(mode), model->rank});
      report.seconds_in_kernels += grad[static_cast<std::size_t>(mode)].run(
          csf_resid, grad_slots[static_cast<std::size_t>(mode)], &g, {});
      DenseTensor& u = model->factors[static_cast<std::size_t>(mode)];
      for (std::int64_t i = 0; i < u.size(); ++i) {
        u.data()[i] += step * g.data()[i];
      }
    }
    ++report.epochs;
  }
  return report;
}

}  // namespace spttn
