#include "apps/decompose.hpp"

#include <cmath>

#include "apps/linalg.hpp"
#include "exec/kernels.hpp"
#include "serve/session.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace spttn {

namespace {

/// Execute a prepared session kernel with the given per-call factor slots,
/// returning the wall-clock of the execution (the drivers report time
/// spent inside SpTTN kernels separately from the dense linear algebra).
double timed_run(Session& session, int kernel_id,
                 const std::vector<const DenseTensor*>& slots,
                 DenseTensor* out_dense, std::span<double> out_sparse = {}) {
  Timer t;
  session.run_with(kernel_id, slots, out_dense, out_sparse);
  return t.seconds();
}

/// Index names i0..i{d-1} for the sparse modes.
std::string mode_index(int m) { return "i" + std::to_string(m); }

/// "T(i0,i1,...,i{d-1})"
std::string sparse_ref_expr(int d) {
  std::string s = "T(";
  for (int m = 0; m < d; ++m) {
    if (m) s += ",";
    s += mode_index(m);
  }
  return s + ")";
}

/// MTTKRP expression for output mode m:
/// "M(i{m},r) = T(...) * U0(i0,r) * ... (skipping mode m)".
std::string mttkrp_expr(int d, int mode) {
  std::string s = "M(" + mode_index(mode) + ",r) = " + sparse_ref_expr(d);
  for (int m = 0; m < d; ++m) {
    if (m == mode) continue;
    s += strfmt(" * U%d(%s,r)", m, mode_index(m).c_str());
  }
  return s;
}

/// TTTP expression: "S(i0,..) = T(i0,..) * U0(i0,r) * U1(i1,r) * ...".
std::string tttp_expr(int d) {
  std::string s = "S(";
  for (int m = 0; m < d; ++m) {
    if (m) s += ",";
    s += mode_index(m);
  }
  s += ") = " + sparse_ref_expr(d);
  for (int m = 0; m < d; ++m) {
    s += strfmt(" * U%d(%s,r)", m, mode_index(m).c_str());
  }
  return s;
}

double tensor_norm(const CooTensor& t) {
  double s = 0;
  for (double v : t.values()) s += v * v;
  return std::sqrt(s);
}

/// Random (n x r) factor with small entries (keeps ALS starts stable).
DenseTensor random_factor(std::int64_t n, std::int64_t r, Rng& rng) {
  DenseTensor f({n, r});
  for (std::int64_t i = 0; i < f.size(); ++i) {
    f.data()[i] = 0.5 * (2.0 * rng.next_double() - 1.0);
  }
  return f;
}

}  // namespace

double CpModel::value_at(std::span<const std::int64_t> coord) const {
  double out = 0;
  for (int r = 0; r < rank; ++r) {
    double p = 1;
    for (std::size_t m = 0; m < factors.size(); ++m) {
      p *= factors[m].at({coord[m], r});
    }
    out += p;
  }
  return out;
}

CpModel make_cp_model(const CooTensor& tensor, int rank, Rng& rng) {
  CpModel model;
  model.rank = rank;
  for (int m = 0; m < tensor.order(); ++m) {
    model.factors.push_back(random_factor(tensor.dim(m), rank, rng));
  }
  return model;
}

double cp_fit(const CooTensor& tensor, const CpModel& model) {
  // |T - M|^2 = |T|^2 - 2<T,M> + |M|^2.
  const double tnorm2 = tensor_norm(tensor) * tensor_norm(tensor);
  double inner = 0;
  for (std::int64_t e = 0; e < tensor.nnz(); ++e) {
    inner += tensor.value(e) * model.value_at(tensor.coord(e));
  }
  DenseTensor gprod;
  for (std::size_t m = 0; m < model.factors.size(); ++m) {
    const DenseTensor g = gram(model.factors[m]);
    gprod = (m == 0) ? g : hadamard(gprod, g);
  }
  const double mnorm2 = element_sum(gprod);
  const double resid2 = std::max(0.0, tnorm2 - 2 * inner + mnorm2);
  return 1.0 - std::sqrt(resid2) / std::sqrt(tnorm2);
}

AlsReport cp_als(const CooTensor& tensor, CpModel* model, int sweeps,
                 const PlannerOptions& options) {
  SPTTN_CHECK(tensor.is_sorted());
  const int d = tensor.order();
  SPTTN_CHECK(static_cast<int>(model->factors.size()) == d);
  AlsReport report;

  // One session binds the tensor (CSF + stats) once; the per-mode MTTKRP
  // family resolves through the kernel cache, so repeated cp_als calls on
  // the same structure skip the planner search entirely.
  Session session(tensor, options);
  std::vector<int> kernel_ids;
  std::vector<std::vector<const DenseTensor*>> slots(
      static_cast<std::size_t>(d));
  for (int mode = 0; mode < d; ++mode) {
    auto& s = slots[static_cast<std::size_t>(mode)];
    s.push_back(nullptr);  // sparse slot
    for (int m = 0; m < d; ++m) {
      if (m != mode) s.push_back(&model->factors[static_cast<std::size_t>(m)]);
    }
    kernel_ids.push_back(session.prepare(
        mttkrp_expr(d, mode),
        {s.begin() + 1, s.end()}));  // factors in order of appearance
  }

  for (int sweep = 0; sweep < sweeps; ++sweep) {
    for (int mode = 0; mode < d; ++mode) {
      DenseTensor m_out({tensor.dim(mode), model->rank});
      report.seconds_in_kernels +=
          timed_run(session, kernel_ids[static_cast<std::size_t>(mode)],
                    slots[static_cast<std::size_t>(mode)], &m_out);
      // Normal equations: Hadamard of the other factors' Grams.
      DenseTensor v;
      bool first = true;
      for (int m = 0; m < d; ++m) {
        if (m == mode) continue;
        const DenseTensor g = gram(model->factors[static_cast<std::size_t>(m)]);
        v = first ? g : hadamard(v, g);
        first = false;
      }
      solve_normal_equations(v, &m_out);
      model->factors[static_cast<std::size_t>(mode)] = std::move(m_out);
    }
    report.fits.push_back(cp_fit(tensor, *model));
    ++report.sweeps;
  }
  return report;
}

TuckerModel make_tucker_model(const CooTensor& tensor,
                              std::vector<std::int64_t> ranks, Rng& rng) {
  SPTTN_CHECK(static_cast<int>(ranks.size()) == tensor.order());
  TuckerModel model;
  model.ranks = ranks;
  for (int m = 0; m < tensor.order(); ++m) {
    DenseTensor f = random_factor(tensor.dim(m),
                                  ranks[static_cast<std::size_t>(m)], rng);
    orthonormalize_columns(&f);
    model.factors.push_back(std::move(f));
  }
  model.core = DenseTensor(ranks);
  return model;
}

HooiReport tucker_hooi(const CooTensor& tensor, TuckerModel* model,
                       int sweeps, const PlannerOptions& options) {
  SPTTN_CHECK_MSG(tensor.order() == 3, "tucker_hooi supports order 3");
  HooiReport report;
  const auto& r = model->ranks;

  // One session serves the whole TTMc kernel family (three per-mode
  // kernels plus the all-mode core update) against one CSF build.
  Session session(tensor, options);

  // Per-mode TTMc kernels: Y = T x_{m'} U_{m'} for m' != m.
  const std::vector<std::string> exprs = {
      "Y(i0,a,b) = T(i0,i1,i2) * U1(i1,a) * U2(i2,b)",
      "Y(i1,a,b) = T(i0,i1,i2) * U0(i0,a) * U2(i2,b)",
      "Y(i2,a,b) = T(i0,i1,i2) * U0(i0,a) * U1(i1,b)",
  };
  std::vector<std::vector<const DenseTensor*>> slots = {
      {nullptr, &model->factors[1], &model->factors[2]},
      {nullptr, &model->factors[0], &model->factors[2]},
      {nullptr, &model->factors[0], &model->factors[1]},
  };
  std::vector<int> kernel_ids;
  for (int mode = 0; mode < 3; ++mode) {
    const auto& s = slots[static_cast<std::size_t>(mode)];
    kernel_ids.push_back(session.prepare(
        exprs[static_cast<std::size_t>(mode)], {s.begin() + 1, s.end()}));
  }
  // All-mode TTMc for the core.
  const int core_id = session.prepare(
      "G(a,b,c) = T(i0,i1,i2) * U0(i0,a) * U1(i1,b) * U2(i2,c)",
      {&model->factors[0], &model->factors[1], &model->factors[2]});

  for (int sweep = 0; sweep < sweeps; ++sweep) {
    for (int mode = 0; mode < 3; ++mode) {
      // Y has dims (I_mode, r_a, r_b) with (a, b) the other two ranks in
      // ascending mode order.
      const int ma = mode == 0 ? 1 : 0;
      const int mb = mode == 2 ? 1 : 2;
      DenseTensor y({tensor.dim(mode), r[static_cast<std::size_t>(ma)],
                     r[static_cast<std::size_t>(mb)]});
      report.seconds_in_kernels +=
          timed_run(session, kernel_ids[static_cast<std::size_t>(mode)],
                    slots[static_cast<std::size_t>(mode)], &y);
      // Matricized Y is (I x ra*rb) row-major. One orthogonal-iteration
      // step toward the leading left subspace (stand-in for the SVD).
      const std::int64_t cols =
          r[static_cast<std::size_t>(ma)] * r[static_cast<std::size_t>(mb)];
      DenseTensor ymat({tensor.dim(mode), cols});
      for (std::int64_t i = 0; i < ymat.size(); ++i) {
        ymat.data()[i] = y.data()[i];
      }
      DenseTensor& u = model->factors[static_cast<std::size_t>(mode)];
      // z = Y^T u ; u_new = orth(Y z)
      DenseTensor z({cols, r[static_cast<std::size_t>(mode)]});
      xgemm(cols, r[static_cast<std::size_t>(mode)], tensor.dim(mode), 1.0,
            ymat.data(), 1, cols, u.data(), r[static_cast<std::size_t>(mode)],
            1, z.data(), r[static_cast<std::size_t>(mode)], 1);
      DenseTensor u_new = matmul(ymat, z);
      orthonormalize_columns(&u_new);
      u = std::move(u_new);
    }
    report.seconds_in_kernels += timed_run(
        session, core_id,
        {nullptr, &model->factors[0], &model->factors[1], &model->factors[2]},
        &model->core);
    report.core_norms.push_back(model->core.norm());
    ++report.sweeps;
  }
  return report;
}

CompletionReport cp_complete(const CooTensor& observed, CpModel* model,
                             int epochs, double step,
                             const PlannerOptions& options) {
  SPTTN_CHECK(observed.is_sorted());
  const int d = observed.order();
  CompletionReport report;

  // Two sessions over the observation pattern: one with unit values (model
  // evaluation via TTTP) and one whose values are rewritten to the
  // residual each epoch (gradient MTTKRPs). They share every cached plan —
  // plans depend only on structure, and both bind the same structure.
  CooTensor ones = observed;
  for (double& v : ones.values()) v = 1.0;
  Session eval_session(ones, options);
  Session grad_session(ones, options);

  std::vector<const DenseTensor*> tttp_slots{nullptr};
  for (int m = 0; m < d; ++m) {
    tttp_slots.push_back(&model->factors[static_cast<std::size_t>(m)]);
  }
  const int tttp_id = eval_session.prepare(
      tttp_expr(d), {tttp_slots.begin() + 1, tttp_slots.end()});

  std::vector<int> grad_ids;
  std::vector<std::vector<const DenseTensor*>> grad_slots(
      static_cast<std::size_t>(d));
  for (int mode = 0; mode < d; ++mode) {
    auto& s = grad_slots[static_cast<std::size_t>(mode)];
    s.push_back(nullptr);
    for (int m = 0; m < d; ++m) {
      if (m != mode) s.push_back(&model->factors[static_cast<std::size_t>(m)]);
    }
    grad_ids.push_back(
        grad_session.prepare(mttkrp_expr(d, mode), {s.begin() + 1, s.end()}));
  }

  std::vector<double> model_vals(static_cast<std::size_t>(observed.nnz()));
  for (int epoch = 0; epoch < epochs; ++epoch) {
    // Model values on the pattern (TTTP with unit sparse values).
    report.seconds_in_kernels +=
        timed_run(eval_session, tttp_id, tttp_slots, nullptr, model_vals);
    double se = 0;
    auto resid_vals = grad_session.values();
    for (std::int64_t e = 0; e < observed.nnz(); ++e) {
      const double resid =
          observed.value(e) - model_vals[static_cast<std::size_t>(e)];
      resid_vals[static_cast<std::size_t>(e)] = resid;
      se += resid * resid;
    }
    report.rmse.push_back(
        std::sqrt(se / static_cast<double>(observed.nnz())));
    // Gradient step per factor: MTTKRP of the residual values in place on
    // the session's CSF (structure unchanged, so every cached plan holds).
    for (int mode = 0; mode < d; ++mode) {
      DenseTensor g({observed.dim(mode), model->rank});
      report.seconds_in_kernels +=
          timed_run(grad_session, grad_ids[static_cast<std::size_t>(mode)],
                    grad_slots[static_cast<std::size_t>(mode)], &g);
      DenseTensor& u = model->factors[static_cast<std::size_t>(mode)];
      for (std::int64_t i = 0; i < u.size(); ++i) {
        u.data()[i] += step * g.data()[i];
      }
    }
    ++report.epochs;
  }
  return report;
}

}  // namespace spttn
