// Small dense linear algebra needed by the decomposition drivers:
// Gram matrices, Cholesky solves, and modified Gram-Schmidt QR.
// Everything operates on DenseTensor matrices (row-major).
#pragma once

#include "tensor/dense_tensor.hpp"

namespace spttn {

/// g = a^T a for a (n x r): g is (r x r).
DenseTensor gram(const DenseTensor& a);

/// Elementwise (Hadamard) product of two equal-shape matrices.
DenseTensor hadamard(const DenseTensor& a, const DenseTensor& b);

/// Sum of all elements.
double element_sum(const DenseTensor& a);

/// Solve x * a = b for x, where a is (r x r) SPD-ish and b is (n x r); the
/// result overwrites b. A small ridge is added for stability (the standard
/// CP-ALS normal-equations solve).
void solve_normal_equations(const DenseTensor& a, DenseTensor* b,
                            double ridge = 1e-12);

/// Orthonormalize the columns of a (n x r) in place via modified
/// Gram-Schmidt; degenerate columns are replaced with unit vectors.
void orthonormalize_columns(DenseTensor* a);

/// c = a * b for a (m x k), b (k x n).
DenseTensor matmul(const DenseTensor& a, const DenseTensor& b);

}  // namespace spttn
