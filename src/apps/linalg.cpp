#include "apps/linalg.hpp"

#include <cmath>
#include <vector>

#include "exec/kernels.hpp"
#include "util/error.hpp"

namespace spttn {

DenseTensor gram(const DenseTensor& a) {
  SPTTN_CHECK(a.order() == 2);
  const std::int64_t n = a.dim(0);
  const std::int64_t r = a.dim(1);
  DenseTensor g({r, r});
  xgemm(r, r, n, 1.0, a.data(), /*sam=*/1, /*sak=*/r, a.data(), r, 1,
        g.data(), r, 1);
  return g;
}

DenseTensor hadamard(const DenseTensor& a, const DenseTensor& b) {
  SPTTN_CHECK(a.dims() == b.dims());
  DenseTensor c(a.dims());
  for (std::int64_t i = 0; i < a.size(); ++i) {
    c.data()[i] = a.data()[i] * b.data()[i];
  }
  return c;
}

double element_sum(const DenseTensor& a) {
  double s = 0;
  for (std::int64_t i = 0; i < a.size(); ++i) s += a.data()[i];
  return s;
}

namespace {

/// In-place Cholesky a = L L^T for row-major (r x r). Returns false if the
/// matrix is not positive definite.
bool cholesky(std::vector<double>& a, std::int64_t r) {
  for (std::int64_t j = 0; j < r; ++j) {
    double d = a[static_cast<std::size_t>(j * r + j)];
    for (std::int64_t k = 0; k < j; ++k) {
      const double l = a[static_cast<std::size_t>(j * r + k)];
      d -= l * l;
    }
    if (d <= 0) return false;
    const double ljj = std::sqrt(d);
    a[static_cast<std::size_t>(j * r + j)] = ljj;
    for (std::int64_t i = j + 1; i < r; ++i) {
      double v = a[static_cast<std::size_t>(i * r + j)];
      for (std::int64_t k = 0; k < j; ++k) {
        v -= a[static_cast<std::size_t>(i * r + k)] *
             a[static_cast<std::size_t>(j * r + k)];
      }
      a[static_cast<std::size_t>(i * r + j)] = v / ljj;
    }
  }
  return true;
}

}  // namespace

void solve_normal_equations(const DenseTensor& a, DenseTensor* b,
                            double ridge) {
  SPTTN_CHECK(a.order() == 2 && a.dim(0) == a.dim(1));
  const std::int64_t r = a.dim(0);
  SPTTN_CHECK(b->order() == 2 && b->dim(1) == r);
  const std::int64_t n = b->dim(0);

  // Copy with growing ridge until Cholesky succeeds.
  std::vector<double> l(static_cast<std::size_t>(r * r));
  double eps = ridge;
  for (int attempt = 0; attempt < 60; ++attempt, eps *= 10) {
    for (std::int64_t i = 0; i < r * r; ++i) {
      l[static_cast<std::size_t>(i)] = a.data()[i];
    }
    for (std::int64_t i = 0; i < r; ++i) {
      l[static_cast<std::size_t>(i * r + i)] += eps;
    }
    if (cholesky(l, r)) break;
    SPTTN_CHECK_MSG(attempt + 1 < 60, "normal equations not solvable");
  }
  // Solve row-wise: x L L^T = b  =>  forward/back substitution on b rows.
  for (std::int64_t row = 0; row < n; ++row) {
    double* x = b->data() + row * r;
    // y L^T = b  (forward in j)
    for (std::int64_t j = 0; j < r; ++j) {
      double v = x[j];
      for (std::int64_t k = 0; k < j; ++k) {
        v -= x[k] * l[static_cast<std::size_t>(j * r + k)];
      }
      x[j] = v / l[static_cast<std::size_t>(j * r + j)];
    }
    // x L = y  (backward)
    for (std::int64_t j = r; j-- > 0;) {
      double v = x[j];
      for (std::int64_t k = j + 1; k < r; ++k) {
        v -= x[k] * l[static_cast<std::size_t>(k * r + j)];
      }
      x[j] = v / l[static_cast<std::size_t>(j * r + j)];
    }
  }
}

void orthonormalize_columns(DenseTensor* a) {
  SPTTN_CHECK(a->order() == 2);
  const std::int64_t n = a->dim(0);
  const std::int64_t r = a->dim(1);
  for (std::int64_t c = 0; c < r; ++c) {
    for (std::int64_t p = 0; p < c; ++p) {
      const double dot = xdot(n, a->data() + c, r, a->data() + p, r);
      xaxpy(n, -dot, a->data() + p, r, a->data() + c, r);
    }
    const double nrm =
        std::sqrt(xdot(n, a->data() + c, r, a->data() + c, r));
    if (nrm > 1e-12) {
      for (std::int64_t i = 0; i < n; ++i) a->data()[i * r + c] /= nrm;
    } else {
      // Degenerate column: substitute a canonical unit vector.
      for (std::int64_t i = 0; i < n; ++i) a->data()[i * r + c] = 0;
      a->data()[(c % n) * r + c] = 1.0;
    }
  }
}

DenseTensor matmul(const DenseTensor& a, const DenseTensor& b) {
  SPTTN_CHECK(a.order() == 2 && b.order() == 2 && a.dim(1) == b.dim(0));
  DenseTensor c({a.dim(0), b.dim(1)});
  xgemm(a.dim(0), b.dim(1), a.dim(1), 1.0, a.data(), a.dim(1), 1, b.data(),
        b.dim(1), 1, c.data(), b.dim(1), 1);
  return c;
}

}  // namespace spttn
