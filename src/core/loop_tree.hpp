// Fully-fused loop nest forest (paper Definition 4.2) plus the intermediate
// tensor (buffer) analysis of Equation 5 and reset placement (Algorithm 2).
//
// The tree is the planner's output contract with the executor: every loop
// becomes either a CSF traversal or a dense counting loop, every kTerm
// action a multiply-accumulate, every kReset a buffer zeroing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/contraction_path.hpp"
#include "core/loop_order.hpp"
#include "tensor/einsum.hpp"

namespace spttn {

/// Intermediate tensor between a producer term and its consumer (Eq. 5).
struct BufferSpec {
  int producer = -1;  ///< term id that accumulates into the buffer
  int consumer = -1;  ///< term id that reads it
  /// Buffer index ids, outermost first (ordered by the producer's loop
  /// order, so producer writes are contiguous).
  std::vector<int> indices;
  /// Per-index dimensions aligned with `indices`.
  std::vector<std::int64_t> dims;
  /// Total element count.
  std::int64_t size = 1;
};

/// Fully-fused loop nest forest.
class LoopTree {
 public:
  struct Action {
    enum class Kind {
      kLoop,   ///< descend into nodes()[id]
      kTerm,   ///< execute contraction term id (all its indices are bound)
      kReset,  ///< zero buffers()[id] before its producer subtree runs
    };
    Kind kind;
    int id;
  };

  struct Node {
    int index = -1;              ///< kernel index id iterated by this loop
    bool sparse = false;         ///< iterate the CSF tree (vs dense range)
    int csf_level = -1;          ///< CSF level when sparse
    std::vector<Action> body;    ///< ordered children
    int depth = 0;               ///< root depth 0
  };

  /// Build the forest for (path, order) per Definition 4.2, infer buffers
  /// (Eq. 5) and insert reset actions. `order` must be valid for `path`.
  static LoopTree build(const Kernel& kernel, const ContractionPath& path,
                        const LoopOrder& order);

  /// Assemble a tree from raw parts without any inference or validation.
  /// Callers own the invariants; PlanVerifier is the checker for them.
  /// Used by plan deserialization and by the verifier's mutation tests to
  /// construct deliberately broken trees.
  static LoopTree assemble(std::vector<Node> nodes, std::vector<Action> top,
                           std::vector<BufferSpec> buffers);

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Action>& top() const { return top_; }
  /// buffers()[i] describes term i's output buffer; the final term has no
  /// buffer entry (it writes the kernel output) — its slot has producer -1.
  const std::vector<BufferSpec>& buffers() const { return buffers_; }

  /// Maximum buffer order (paper's "intermediate tensor dimension").
  int max_buffer_dim() const;
  /// Maximum buffer element count.
  std::int64_t max_buffer_size() const;
  /// Total elements across all buffers.
  std::int64_t total_buffer_size() const;
  /// Maximum loop depth of any term (number of loops surrounding it).
  int max_depth() const;

  /// Number of trailing dense-only loops over each term that are exclusive
  /// to that term (candidates for BLAS-style kernel offload); summed over
  /// terms. Reported in the planner and used as a tie-breaker.
  int count_offloadable_dense_loops(const Kernel& kernel,
                                    const ContractionPath& path,
                                    const LoopOrder& order) const;

  /// Pretty-print pseudocode in the style of the paper's listings.
  std::string render(const Kernel& kernel, const ContractionPath& path) const;

 private:
  std::vector<Node> nodes_;
  std::vector<Action> top_;
  std::vector<BufferSpec> buffers_;
};

}  // namespace spttn
