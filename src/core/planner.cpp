#include "core/planner.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/plan_verifier.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace spttn {

std::string Plan::describe(const Kernel& kernel) const {
  std::ostringstream os;
  os << "kernel: " << kernel.to_string() << "\n";
  os << "path:   " << path.to_string(kernel) << "\n";
  os << "order:  " << order_to_string(kernel, order) << "\n";
  os << "cost:   " << cost.to_string() << "  flops~" << flops << "\n";
  os << "bufdim: " << tree.max_buffer_dim()
     << "  bufsize: " << tree.max_buffer_size()
     << "  depth: " << tree.max_depth() << "\n";
  os << "nest:\n" << tree.render(kernel, path);
  return os.str();
}

std::unique_ptr<TreeCost> make_cost_model(const PlannerOptions& options,
                                          const SparsityStats* stats) {
  switch (options.cost) {
    case CostKind::kMaxBufferDim:
      return std::make_unique<MaxBufferDimCost>();
    case CostKind::kMaxBufferSize:
      return std::make_unique<MaxBufferSizeCost>();
    case CostKind::kCacheMiss:
      return std::make_unique<CacheMissCost>(options.cache_d, stats,
                                             options.sparse_aware_cache);
    case CostKind::kBoundedBufferBlas:
      return std::make_unique<BoundedBufferBlasCost>(
          options.buffer_dim_bound, options.cache_d, stats,
          options.sparse_aware_cache);
  }
  SPTTN_CHECK(false);
  return nullptr;
}

std::vector<ContractionPath> executable_paths(const Kernel& kernel,
                                              const SparsityStats& stats,
                                              int* total_paths, int threads,
                                              std::vector<double>* flops_out) {
  std::vector<ContractionPath> all = enumerate_paths(kernel);
  if (total_paths != nullptr) *total_paths = static_cast<int>(all.size());
  // Executability and FLOP estimation are independent per path, so they
  // fan out over the process pool; the gather below walks paths in
  // enumeration order and the sort uses the precomputed keys, making the
  // result identical to the sequential filter regardless of lane count.
  std::vector<char> keep(all.size(), 0);
  std::vector<double> flops(all.size(), 0.0);
  const auto eval_one = [&](std::int64_t i) {
    const auto u = static_cast<std::size_t>(i);
    keep[u] = all[u].csf_prefix_executable(kernel) ? 1 : 0;
    if (keep[u]) flops[u] = path_flops(kernel, all[u], stats);
  };
  if (threads == 1 || all.size() < 2) {
    for (std::size_t i = 0; i < all.size(); ++i) {
      eval_one(static_cast<std::int64_t>(i));
    }
  } else {
    ThreadPool::global().parallel_apply(
        static_cast<std::int64_t>(all.size()), eval_one);
  }
  std::vector<std::size_t> order;
  order.reserve(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (keep[i]) order.push_back(i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return flops[a] < flops[b];
                   });
  std::vector<ContractionPath> exec;
  exec.reserve(order.size());
  if (flops_out != nullptr) {
    flops_out->clear();
    flops_out->reserve(order.size());
  }
  for (std::size_t i : order) {
    exec.push_back(std::move(all[i]));
    if (flops_out != nullptr) flops_out->push_back(flops[i]);
  }
  return exec;
}

namespace {

/// Run the order DP for every path of groups [g_begin, g_end) — one wave.
/// (group, path) pairs are independent subproblems, so the whole wave
/// flattens into a single fan-out over the process-wide pool; results land
/// indexed by (group - g_begin, path), ready for the order-preserving
/// merge.
void run_wave(const Kernel& kernel,
              const std::vector<std::vector<const ContractionPath*>>& groups,
              std::size_t g_begin, std::size_t g_end,
              const TreeCost& cost, const PlannerOptions& options,
              std::vector<std::vector<DpResult>>* results) {
  DpOptions dp_options;
  dp_options.restrict_csf_order = options.restrict_csf_order;
  results->assign(g_end - g_begin, {});
  std::vector<std::pair<std::size_t, std::size_t>> flat;
  for (std::size_t g = g_begin; g < g_end; ++g) {
    (*results)[g - g_begin].resize(groups[g].size());
    for (std::size_t i = 0; i < groups[g].size(); ++i) {
      flat.emplace_back(g, i);
    }
  }
  const auto run_one = [&](std::int64_t f) {
    const auto [g, i] = flat[static_cast<std::size_t>(f)];
    (*results)[g - g_begin][i] =
        optimal_order(kernel, *groups[g][i], cost, dp_options);
  };
  if (options.search_threads == 1 || flat.size() < 2) {
    for (std::size_t f = 0; f < flat.size(); ++f) {
      run_one(static_cast<std::int64_t>(f));
    }
  } else {
    // The persistent process pool serves every wave; spawning a pool per
    // wave (make_plan runs one wave per relaxation pass at minimum) would
    // cost more than the small DPs themselves.
    ThreadPool::global().parallel_apply(
        static_cast<std::int64_t>(flat.size()), run_one);
  }
}

/// Merge one group's DP results in path order; fills `plan` when a
/// feasible nest with the best group cost is found and accumulates the
/// group's search statistics. Identical to a sequential scan of the group.
bool merge_group(const std::vector<const ContractionPath*>& group,
                 const std::vector<DpResult>& results, SearchStats* stats,
                 Plan* plan) {
  bool found = false;
  for (std::size_t i = 0; i < group.size(); ++i) {
    const DpResult& r = results[i];
    stats->paths_searched += 1;
    stats->dp_subproblems += r.subproblems;
    stats->dp_evaluations += r.evaluations;
    if (!r.feasible) continue;
    stats->paths_feasible += 1;
    if (!found || r.best_cost < plan->cost) {
      plan->path = *group[i];
      plan->order = r.best;
      plan->cost = r.best_cost;
      found = true;
    }
  }
  return found;
}

}  // namespace

Plan make_plan(const Kernel& kernel, const SparsityStats& stats,
               const PlannerOptions& options) {
  SPTTN_CHECK_MSG(kernel.dims_bound(),
                  "bind index dimensions before planning");
  Plan plan;
  int total = 0;
  std::vector<double> flops;  // per exec path, filled by executable_paths
  const std::vector<ContractionPath> exec = executable_paths(
      kernel, stats, &total, options.search_threads, &flops);
  plan.paths_total = total;
  plan.paths_executable = static_cast<int>(exec.size());
  SPTTN_CHECK_MSG(!exec.empty(),
                  "no single-CSF executable contraction path for kernel "
                      << kernel.to_string());

  // Group by FLOP estimate (paths within tolerance share a group).
  std::vector<std::vector<const ContractionPath*>> groups;
  std::vector<double> group_flops;
  for (std::size_t i = 0; i < exec.size(); ++i) {
    if (groups.empty() ||
        flops[i] > group_flops.back() * options.flop_group_tolerance) {
      groups.emplace_back();
      group_flops.push_back(flops[i]);
    }
    groups.back().push_back(&exec[i]);
    if (options.max_paths_searched > 0 &&
        static_cast<int>(i) + 1 >= options.max_paths_searched) {
      break;
    }
  }

  // Paper Section 5: optimal-complexity group first, then fall back; when
  // even that fails and relaxation is allowed, loosen the buffer bound.
  // Each relaxation pass scans groups in waves of geometrically growing
  // size: a wave's DPs fan out over the pool together, then merge in
  // group/path order, stopping at the first feasible group. Wave 1 holds
  // only the optimal-complexity group, so the common case does exactly the
  // sequential search's work; failure cases buy parallelism with bounded
  // speculation (at most the winning wave's trailing groups, which the
  // merge discards from the stats — plan and SearchStats stay identical to
  // the sequential scan).
  PlannerOptions effective = options;
  const int max_bound = std::max(options.buffer_dim_bound,
                                 kernel.num_indices());
  SearchStats search;
  for (int bound = options.buffer_dim_bound; bound <= max_bound; ++bound) {
    effective.buffer_dim_bound = bound;
    const std::unique_ptr<TreeCost> cost = make_cost_model(effective, &stats);
    std::size_t g = 0;
    std::size_t wave = 1;
    while (g < groups.size()) {
      const std::size_t wave_end = std::min(groups.size(), g + wave);
      std::vector<std::vector<DpResult>> results;
      run_wave(kernel, groups, g, wave_end, *cost, effective, &results);
      for (std::size_t gg = g; gg < wave_end; ++gg) {
        if (merge_group(groups[gg], results[gg - g], &search, &plan)) {
          plan.paths_searched = search.paths_searched;
          plan.paths_feasible = search.paths_feasible;
          plan.dp_subproblems = search.dp_subproblems;
          plan.dp_evaluations = search.dp_evaluations;
          plan.flops = path_flops(kernel, plan.path, stats);
          plan.buffer_dim_bound = bound;
          plan.sparsity_fingerprint = stats.fingerprint();
          plan.tree = LoopTree::build(kernel, plan.path, plan.order);
#ifndef NDEBUG
          verify_plan_or_throw(kernel, plan, options, &stats);
#else
          if (options.verify) {
            verify_plan_or_throw(kernel, plan, options, &stats);
          }
#endif
          return plan;
        }
      }
      g = wave_end;
      // Speculative growth only pays when lanes exist to run the extra
      // groups concurrently; a one-lane pool would run the speculation
      // inline and can double the sequential search's DP work for nothing.
      if (options.search_threads != 1 && ThreadPool::global().size() > 1) {
        wave *= 2;
      }
    }
    if (!options.allow_bound_relaxation ||
        options.cost != CostKind::kBoundedBufferBlas) {
      break;
    }
  }
  SPTTN_CHECK_MSG(false, "no feasible loop nest found for kernel "
                             << kernel.to_string());
  return plan;
}

}  // namespace spttn
