#include "core/planner.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace spttn {

std::string Plan::describe(const Kernel& kernel) const {
  std::ostringstream os;
  os << "kernel: " << kernel.to_string() << "\n";
  os << "path:   " << path.to_string(kernel) << "\n";
  os << "order:  " << order_to_string(kernel, order) << "\n";
  os << "cost:   " << cost.to_string() << "  flops~" << flops << "\n";
  os << "bufdim: " << tree.max_buffer_dim()
     << "  bufsize: " << tree.max_buffer_size()
     << "  depth: " << tree.max_depth() << "\n";
  os << "nest:\n" << tree.render(kernel, path);
  return os.str();
}

std::unique_ptr<TreeCost> make_cost_model(const PlannerOptions& options,
                                          const SparsityStats* stats) {
  switch (options.cost) {
    case CostKind::kMaxBufferDim:
      return std::make_unique<MaxBufferDimCost>();
    case CostKind::kMaxBufferSize:
      return std::make_unique<MaxBufferSizeCost>();
    case CostKind::kCacheMiss:
      return std::make_unique<CacheMissCost>(options.cache_d, stats,
                                             options.sparse_aware_cache);
    case CostKind::kBoundedBufferBlas:
      return std::make_unique<BoundedBufferBlasCost>(
          options.buffer_dim_bound, options.cache_d, stats,
          options.sparse_aware_cache);
  }
  SPTTN_CHECK(false);
  return nullptr;
}

std::vector<ContractionPath> executable_paths(const Kernel& kernel,
                                              const SparsityStats& stats,
                                              int* total_paths) {
  std::vector<ContractionPath> all = enumerate_paths(kernel);
  if (total_paths != nullptr) *total_paths = static_cast<int>(all.size());
  std::vector<ContractionPath> exec;
  for (auto& p : all) {
    if (p.csf_prefix_executable(kernel)) exec.push_back(std::move(p));
  }
  std::stable_sort(exec.begin(), exec.end(),
                   [&](const ContractionPath& a, const ContractionPath& b) {
                     return path_flops(kernel, a, stats) <
                            path_flops(kernel, b, stats);
                   });
  return exec;
}

namespace {

/// Run the DP across one FLOP group; fills `plan` when a feasible nest with
/// the best group cost is found. `stats` receives the group's search
/// statistics (the caller accumulates them into the Plan diagnostics).
///
/// Paths are independent subproblems, so the DP invocations fan out over
/// the process-wide thread pool; the merge below walks results in path
/// order, making the chosen plan and the accumulated statistics identical
/// to a sequential search regardless of lane count.
bool search_group(const Kernel& kernel,
                  const std::vector<const ContractionPath*>& group,
                  const TreeCost& cost, const PlannerOptions& options,
                  SearchStats* stats, Plan* plan) {
  DpOptions dp_options;
  dp_options.restrict_csf_order = options.restrict_csf_order;

  std::vector<DpResult> results(group.size());
  const auto run_one = [&](std::int64_t i) {
    results[static_cast<std::size_t>(i)] = optimal_order(
        kernel, *group[static_cast<std::size_t>(i)], cost, dp_options);
  };
  if (options.search_threads == 1 || group.size() < 2) {
    for (std::size_t i = 0; i < group.size(); ++i) {
      run_one(static_cast<std::int64_t>(i));
    }
  } else {
    // The persistent process pool serves every group; spawning a pool per
    // group (make_plan calls search_group once per group per relaxation
    // pass) would cost more than small DPs themselves.
    ThreadPool::global().parallel_apply(
        static_cast<std::int64_t>(group.size()), run_one);
  }

  bool found = false;
  for (std::size_t i = 0; i < group.size(); ++i) {
    const DpResult& r = results[i];
    stats->paths_searched += 1;
    stats->dp_subproblems += r.subproblems;
    stats->dp_evaluations += r.evaluations;
    if (!r.feasible) continue;
    stats->paths_feasible += 1;
    if (!found || r.best_cost < plan->cost) {
      plan->path = *group[i];
      plan->order = r.best;
      plan->cost = r.best_cost;
      found = true;
    }
  }
  return found;
}

}  // namespace

Plan make_plan(const Kernel& kernel, const SparsityStats& stats,
               const PlannerOptions& options) {
  SPTTN_CHECK_MSG(kernel.dims_bound(),
                  "bind index dimensions before planning");
  Plan plan;
  int total = 0;
  const std::vector<ContractionPath> exec =
      executable_paths(kernel, stats, &total);
  plan.paths_total = total;
  plan.paths_executable = static_cast<int>(exec.size());
  SPTTN_CHECK_MSG(!exec.empty(),
                  "no single-CSF executable contraction path for kernel "
                      << kernel.to_string());

  // Group by FLOP estimate (paths within tolerance share a group).
  std::vector<double> flops(exec.size());
  for (std::size_t i = 0; i < exec.size(); ++i) {
    flops[i] = path_flops(kernel, exec[i], stats);
  }
  std::vector<std::vector<const ContractionPath*>> groups;
  std::vector<double> group_flops;
  for (std::size_t i = 0; i < exec.size(); ++i) {
    if (groups.empty() ||
        flops[i] > group_flops.back() * options.flop_group_tolerance) {
      groups.emplace_back();
      group_flops.push_back(flops[i]);
    }
    groups.back().push_back(&exec[i]);
    if (options.max_paths_searched > 0 &&
        static_cast<int>(i) + 1 >= options.max_paths_searched) {
      break;
    }
  }

  // Paper Section 5: optimal-complexity group first, then fall back; when
  // even that fails and relaxation is allowed, loosen the buffer bound.
  PlannerOptions effective = options;
  const int max_bound = std::max(options.buffer_dim_bound,
                                 kernel.num_indices());
  SearchStats search;
  for (int bound = options.buffer_dim_bound; bound <= max_bound; ++bound) {
    effective.buffer_dim_bound = bound;
    const std::unique_ptr<TreeCost> cost = make_cost_model(effective, &stats);
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (search_group(kernel, groups[g], *cost, effective, &search, &plan)) {
        plan.paths_searched = search.paths_searched;
        plan.paths_feasible = search.paths_feasible;
        plan.dp_subproblems = search.dp_subproblems;
        plan.dp_evaluations = search.dp_evaluations;
        plan.flops = path_flops(kernel, plan.path, stats);
        plan.buffer_dim_bound = bound;
        plan.tree = LoopTree::build(kernel, plan.path, plan.order);
        return plan;
      }
    }
    if (!options.allow_bound_relaxation ||
        options.cost != CostKind::kBoundedBufferBlas) {
      break;
    }
  }
  SPTTN_CHECK_MSG(false, "no feasible loop nest found for kernel "
                             << kernel.to_string());
  return plan;
}

}  // namespace spttn
