#include "core/planner.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/plan_verifier.hpp"
#include "core/planner_strategy.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace spttn {

std::string Plan::describe(const Kernel& kernel) const {
  std::ostringstream os;
  os << "kernel: " << kernel.to_string() << "\n";
  os << "path:   " << path.to_string(kernel) << "\n";
  os << "order:  " << order_to_string(kernel, order) << "\n";
  os << "cost:   " << cost.to_string() << "  flops~" << flops << "\n";
  os << "bufdim: " << tree.max_buffer_dim()
     << "  bufsize: " << tree.max_buffer_size()
     << "  depth: " << tree.max_depth() << "\n";
  if (strategy == StrategyKind::kAnytime) {
    os << "anytime: nodes " << nodes_expanded << "  restarts " << restarts
       << "  gap " << optimality_gap
       << (budget_exhausted ? "  (budget exhausted)" : "") << "\n";
  }
  os << "nest:\n" << tree.render(kernel, path);
  return os.str();
}

std::unique_ptr<TreeCost> make_cost_model(const PlannerOptions& options,
                                          const SparsityStats* stats) {
  switch (options.cost) {
    case CostKind::kMaxBufferDim:
      return std::make_unique<MaxBufferDimCost>();
    case CostKind::kMaxBufferSize:
      return std::make_unique<MaxBufferSizeCost>();
    case CostKind::kCacheMiss:
      return std::make_unique<CacheMissCost>(options.cache_d, stats,
                                             options.sparse_aware_cache);
    case CostKind::kBoundedBufferBlas:
      return std::make_unique<BoundedBufferBlasCost>(
          options.buffer_dim_bound, options.cache_d, stats,
          options.sparse_aware_cache);
  }
  SPTTN_CHECK(false);
  return nullptr;
}

std::vector<ContractionPath> executable_paths(const Kernel& kernel,
                                              const SparsityStats& stats,
                                              int* total_paths, int threads,
                                              std::vector<double>* flops_out) {
  std::vector<ContractionPath> all = enumerate_paths(kernel);
  if (total_paths != nullptr) *total_paths = static_cast<int>(all.size());
  // Executability and FLOP estimation are independent per path, so they
  // fan out over the process pool; the gather below walks paths in
  // enumeration order and the sort uses the precomputed keys, making the
  // result identical to the sequential filter regardless of lane count.
  std::vector<char> keep(all.size(), 0);
  std::vector<double> flops(all.size(), 0.0);
  const auto eval_one = [&](std::int64_t i) {
    const auto u = static_cast<std::size_t>(i);
    keep[u] = all[u].csf_prefix_executable(kernel) ? 1 : 0;
    if (keep[u]) flops[u] = path_flops(kernel, all[u], stats);
  };
  if (threads == 1 || all.size() < 2) {
    for (std::size_t i = 0; i < all.size(); ++i) {
      eval_one(static_cast<std::int64_t>(i));
    }
  } else {
    ThreadPool::global().parallel_apply(
        static_cast<std::int64_t>(all.size()), eval_one);
  }
  std::vector<std::size_t> order;
  order.reserve(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (keep[i]) order.push_back(i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return flops[a] < flops[b];
                   });
  std::vector<ContractionPath> exec;
  exec.reserve(order.size());
  if (flops_out != nullptr) {
    flops_out->clear();
    flops_out->reserve(order.size());
  }
  for (std::size_t i : order) {
    exec.push_back(std::move(all[i]));
    if (flops_out != nullptr) flops_out->push_back(flops[i]);
  }
  return exec;
}

const PlannerStrategy& strategy_for(const PlannerOptions& options) {
  static const ExactStrategy exact;
  static const AnytimeStrategy anytime;
  switch (options.strategy) {
    case StrategyKind::kExact:
      return exact;
    case StrategyKind::kAnytime:
      return anytime;
  }
  SPTTN_CHECK(false);
  return exact;
}

Plan make_plan(const Kernel& kernel, const SparsityStats& stats,
               const PlannerOptions& options) {
  SPTTN_CHECK_MSG(kernel.dims_bound(),
                  "bind index dimensions before planning");
  Plan plan = strategy_for(options).plan(kernel, stats, options);
  // One verification gate for every strategy: always in Debug, opt-in via
  // options.verify in Release, and unconditionally for anytime plans — the
  // static verifier is what makes a non-exhaustive search safe to serve.
#ifndef NDEBUG
  verify_plan_or_throw(kernel, plan, options, &stats);
#else
  if (options.verify || options.strategy == StrategyKind::kAnytime) {
    verify_plan_or_throw(kernel, plan, options, &stats);
  }
#endif
  return plan;
}

}  // namespace spttn
