#include "core/plan_io.hpp"

#include <bit>
#include <charconv>
#include <cstdint>
#include <limits>
#include <sstream>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace spttn {

namespace {

constexpr const char* kHeader = "spttn-plan v1";
/// Upper bound on any serialized count (terms, nodes, actions, buffers,
/// meta entries). Real plans are tiny (tens of nodes); the cap exists so a
/// corrupt count cannot drive a multi-gigabyte allocation before the
/// checksum or a later parse error is reached.
constexpr std::int64_t kMaxCount = 1 << 20;

std::string hex64(std::uint64_t v) {
  char buf[17];
  for (int i = 15; i >= 0; --i) {
    buf[15 - i] = "0123456789abcdef"[(v >> (4 * i)) & 0xf];
  }
  buf[16] = '\0';
  return std::string(buf);
}

std::string hex_double(double d) { return hex64(std::bit_cast<std::uint64_t>(d)); }

std::uint64_t payload_checksum(const std::string& payload) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (char c : payload) {
    h = hash_mix(h ^ static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  return h;
}

/// Line/token cursor over the serialized text with located errors.
class Reader {
 public:
  explicit Reader(const std::string& text) : in_(text) {}

  [[noreturn]] void fail(const std::string& msg) const {
    throw Error("plan deserialize: line " + std::to_string(line_no_) + ": " +
                msg);
  }

  /// Advance to the next line; false at end of input.
  bool next_line() {
    if (!std::getline(in_, line_)) return false;
    ++line_no_;
    tokens_.clear();
    tok_ = 0;
    std::istringstream ls(line_);
    std::string t;
    while (ls >> t) tokens_.push_back(std::move(t));
    return true;
  }

  /// Advance and require the line's first token to be `key`.
  void expect_line(const std::string& key) {
    if (!next_line()) fail("unexpected end of input, expected '" + key + "'");
    if (tokens_.empty() || tokens_[0] != key) {
      fail("expected '" + key + "' line, got '" + line_ + "'");
    }
    tok_ = 1;  // consume the keyword
  }

  const std::string& token() {
    if (tok_ >= tokens_.size()) fail("missing field");
    return tokens_[tok_++];
  }

  bool tokens_left() const { return tok_ < tokens_.size(); }

  std::int64_t read_int(std::int64_t lo, std::int64_t hi) {
    const std::string& t = token();
    std::int64_t v = 0;
    const auto [p, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
    if (ec != std::errc() || p != t.data() + t.size()) {
      fail("malformed integer '" + t + "'");
    }
    if (v < lo || v > hi) {
      fail("integer " + t + " out of range [" + std::to_string(lo) + ", " +
           std::to_string(hi) + "]");
    }
    return v;
  }

  std::uint64_t read_hex() {
    const std::string& t = token();
    std::uint64_t v = 0;
    const auto [p, ec] =
        std::from_chars(t.data(), t.data() + t.size(), v, 16);
    if (ec != std::errc() || p != t.data() + t.size()) {
      fail("malformed hex field '" + t + "'");
    }
    return v;
  }

  double read_double_bits() { return std::bit_cast<double>(read_hex()); }

  /// Rest of the current line (for free-form fields like the expression).
  std::string rest_of_line() {
    std::string rest;
    while (tok_ < tokens_.size()) {
      if (!rest.empty()) rest += ' ';
      rest += tokens_[tok_++];
    }
    return rest;
  }

  const std::string& current_line() const { return line_; }

 private:
  std::istringstream in_;
  std::string line_;
  std::vector<std::string> tokens_;
  std::size_t tok_ = 0;
  int line_no_ = 0;
};

void write_operand(std::ostringstream& os, const PathOperand& op) {
  os << ' ' << (op.kind == PathOperand::Kind::kIntermediate ? 1 : 0) << ' '
     << op.id << ' ' << hex64(op.iset.bits());
}

PathOperand read_operand(Reader& r) {
  PathOperand op;
  op.kind = r.read_int(0, 1) == 1 ? PathOperand::Kind::kIntermediate
                                  : PathOperand::Kind::kInput;
  op.id = static_cast<int>(r.read_int(0, kMaxCount));
  op.iset = IndexSet(r.read_hex());
  return op;
}

}  // namespace

std::string LoadedPlan::meta_value(const std::string& key) const {
  for (const auto& [k, v] : meta) {
    if (k == key) return v;
  }
  return {};
}

std::string serialize_plan(
    const Kernel& kernel, const Plan& plan,
    const std::vector<std::pair<std::string, std::string>>& meta) {
  SPTTN_CHECK_MSG(kernel.dims_bound(),
                  "plan serialization needs bound index dimensions");
  std::ostringstream os;
  os << kHeader << '\n';
  os << "expr " << kernel.to_string() << '\n';
  os << "sparse " << kernel.sparse_ref().name << '\n';
  os << "indices " << kernel.num_indices() << '\n';
  for (int id = 0; id < kernel.num_indices(); ++id) {
    os << "index " << kernel.index_name(id) << ' ' << kernel.index_dim(id)
       << '\n';
  }

  os << "terms " << plan.path.num_terms() << '\n';
  for (const PathTerm& t : plan.path.terms) {
    os << "term";
    write_operand(os, t.lhs);
    write_operand(os, t.rhs);
    os << ' ' << hex64(t.refs.bits()) << ' ' << hex64(t.out.bits()) << ' '
       << (t.carries_sparse ? 1 : 0) << ' ' << hex64(t.sparse_refs.bits())
       << '\n';
  }

  os << "order " << plan.order.size() << '\n';
  for (const std::vector<int>& term_order : plan.order) {
    os << "oterm " << term_order.size();
    for (int id : term_order) os << ' ' << id;
    os << '\n';
  }

  os << "nodes " << plan.tree.nodes().size() << '\n';
  for (const LoopTree::Node& n : plan.tree.nodes()) {
    os << "node " << n.index << ' ' << (n.sparse ? 1 : 0) << ' '
       << n.csf_level << ' ' << n.depth << ' ' << n.body.size();
    for (const LoopTree::Action& a : n.body) {
      os << ' ' << static_cast<int>(a.kind) << ' ' << a.id;
    }
    os << '\n';
  }
  os << "top " << plan.tree.top().size();
  for (const LoopTree::Action& a : plan.tree.top()) {
    os << ' ' << static_cast<int>(a.kind) << ' ' << a.id;
  }
  os << '\n';
  os << "buffers " << plan.tree.buffers().size() << '\n';
  for (const BufferSpec& b : plan.tree.buffers()) {
    os << "buffer " << b.producer << ' ' << b.consumer << ' '
       << b.indices.size();
    for (int id : b.indices) os << ' ' << id;
    for (std::int64_t d : b.dims) os << ' ' << d;
    os << ' ' << b.size << '\n';
  }

  os << "cost " << hex_double(plan.cost.primary) << ' '
     << hex_double(plan.cost.secondary) << ' '
     << hex_double(plan.cost.tertiary) << '\n';
  os << "flops " << hex_double(plan.flops) << '\n';
  os << "bound " << plan.buffer_dim_bound << '\n';
  os << "fingerprint " << hex64(plan.sparsity_fingerprint) << '\n';
  os << "search " << plan.paths_total << ' ' << plan.paths_executable << ' '
     << plan.paths_searched << ' ' << plan.paths_feasible << ' '
     << plan.dp_subproblems << ' ' << plan.dp_evaluations << '\n';
  // Anytime diagnostics ride in an optional record so exact plans remain
  // byte-identical to the pre-strategy format (tests/golden/ pins those
  // bytes, and persisted exact artifacts must stay loadable unchanged).
  if (plan.strategy != StrategyKind::kExact) {
    os << "anytime " << plan.nodes_expanded << ' ' << plan.restarts << ' '
       << hex_double(plan.flops_lower_bound) << ' '
       << hex_double(plan.optimality_gap) << ' '
       << (plan.budget_exhausted ? 1 : 0) << '\n';
  }
  for (const auto& [k, v] : meta) {
    SPTTN_CHECK_MSG(!k.empty() && k.find_first_of(" \t\n") == std::string::npos &&
                        v.find_first_of(" \t\n") == std::string::npos,
                    "plan meta keys/values must be whitespace-free tokens");
    os << "meta " << k << ' ' << v << '\n';
  }
  os << "end\n";

  std::string payload = os.str();
  payload += "checksum " + hex64(payload_checksum(payload)) + '\n';
  return payload;
}

LoadedPlan deserialize_plan(const std::string& text) {
  // Version header before anything else: a future format may checksum
  // differently, so an artifact from another version must be reported as a
  // version mismatch, not as corruption.
  const std::string header_line = std::string(kHeader) + "\n";
  if (text.compare(0, header_line.size(), header_line) != 0) {
    throw Error(
        "plan deserialize: missing or unsupported version header "
        "(expected '" +
        std::string(kHeader) + "')");
  }
  // Checksum next: split the trailing checksum line off and compare
  // against a recomputation over everything before it, so any bit flip in
  // the payload is caught before field-level parsing begins.
  const std::size_t marker = text.rfind("\nchecksum ");
  if (marker == std::string::npos) {
    throw Error("plan deserialize: missing checksum line");
  }
  const std::string payload = text.substr(0, marker + 1);
  {
    Reader tail(text.substr(marker + 1));
    tail.expect_line("checksum");
    const std::uint64_t stored = tail.read_hex();
    const std::uint64_t computed = payload_checksum(payload);
    if (stored != computed) {
      throw Error("plan deserialize: checksum mismatch (file corrupt): "
                  "stored " + hex64(stored) + ", computed " + hex64(computed));
    }
  }

  Reader r(payload);
  if (!r.next_line() || r.current_line() != kHeader) {
    throw Error("plan deserialize: missing or unsupported version header "
                "(expected '" + std::string(kHeader) + "', got '" +
                r.current_line() + "')");
  }

  LoadedPlan out;
  r.expect_line("expr");
  const std::string expr = r.rest_of_line();
  if (expr.empty()) r.fail("empty kernel expression");
  r.expect_line("sparse");
  const std::string sparse_name = r.token();
  out.kernel = Kernel::parse(expr, sparse_name);

  r.expect_line("indices");
  const auto n_indices = r.read_int(0, IndexSet::kMaxIndex);
  if (n_indices != out.kernel.num_indices()) {
    r.fail("index count " + std::to_string(n_indices) +
           " does not match the parsed kernel's " +
           std::to_string(out.kernel.num_indices()));
  }
  for (int id = 0; id < n_indices; ++id) {
    r.expect_line("index");
    const std::string name = r.token();
    // Ids are assigned by order of appearance in the expression, so a
    // faithful file lists names in exactly the parsed order; drift means
    // the ids inside the path/tree would silently re-bind.
    if (name != out.kernel.index_name(id)) {
      r.fail("index order drift: position " + std::to_string(id) + " is '" +
             name + "' in the file but '" + out.kernel.index_name(id) +
             "' in the parsed kernel");
    }
    out.kernel.set_index_dim(id, r.read_int(1, kMaxCount * kMaxCount));
  }

  Plan& plan = out.plan;
  r.expect_line("terms");
  const auto n_terms = r.read_int(0, kMaxCount);
  plan.path.terms.resize(static_cast<std::size_t>(n_terms));
  for (PathTerm& t : plan.path.terms) {
    r.expect_line("term");
    t.lhs = read_operand(r);
    t.rhs = read_operand(r);
    t.refs = IndexSet(r.read_hex());
    t.out = IndexSet(r.read_hex());
    t.carries_sparse = r.read_int(0, 1) == 1;
    t.sparse_refs = IndexSet(r.read_hex());
  }

  r.expect_line("order");
  const auto n_order = r.read_int(0, kMaxCount);
  plan.order.resize(static_cast<std::size_t>(n_order));
  for (std::vector<int>& term_order : plan.order) {
    r.expect_line("oterm");
    const auto k = r.read_int(0, IndexSet::kMaxIndex);
    term_order.resize(static_cast<std::size_t>(k));
    for (int& id : term_order) {
      id = static_cast<int>(r.read_int(0, IndexSet::kMaxIndex - 1));
    }
  }

  const auto read_action = [&r] {
    LoopTree::Action a;
    a.kind = static_cast<LoopTree::Action::Kind>(r.read_int(0, 2));
    a.id = static_cast<int>(r.read_int(0, kMaxCount));
    return a;
  };
  r.expect_line("nodes");
  const auto n_nodes = r.read_int(0, kMaxCount);
  std::vector<LoopTree::Node> nodes(static_cast<std::size_t>(n_nodes));
  for (LoopTree::Node& n : nodes) {
    r.expect_line("node");
    n.index = static_cast<int>(r.read_int(-1, IndexSet::kMaxIndex - 1));
    n.sparse = r.read_int(0, 1) == 1;
    n.csf_level = static_cast<int>(r.read_int(-1, IndexSet::kMaxIndex - 1));
    n.depth = static_cast<int>(r.read_int(0, kMaxCount));
    const auto n_body = r.read_int(0, kMaxCount);
    n.body.reserve(static_cast<std::size_t>(n_body));
    for (std::int64_t i = 0; i < n_body; ++i) n.body.push_back(read_action());
  }
  r.expect_line("top");
  const auto n_top = r.read_int(0, kMaxCount);
  std::vector<LoopTree::Action> top;
  top.reserve(static_cast<std::size_t>(n_top));
  for (std::int64_t i = 0; i < n_top; ++i) top.push_back(read_action());
  r.expect_line("buffers");
  const auto n_buffers = r.read_int(0, kMaxCount);
  std::vector<BufferSpec> buffers(static_cast<std::size_t>(n_buffers));
  for (BufferSpec& b : buffers) {
    r.expect_line("buffer");
    b.producer = static_cast<int>(r.read_int(-1, kMaxCount));
    b.consumer = static_cast<int>(r.read_int(-1, kMaxCount));
    const auto k = r.read_int(0, IndexSet::kMaxIndex);
    b.indices.resize(static_cast<std::size_t>(k));
    for (int& id : b.indices) {
      id = static_cast<int>(r.read_int(0, IndexSet::kMaxIndex - 1));
    }
    b.dims.resize(static_cast<std::size_t>(k));
    for (std::int64_t& d : b.dims) d = r.read_int(0, kMaxCount * kMaxCount);
    b.size = r.read_int(0, std::numeric_limits<std::int64_t>::max());
  }
  plan.tree =
      LoopTree::assemble(std::move(nodes), std::move(top), std::move(buffers));

  r.expect_line("cost");
  plan.cost.primary = r.read_double_bits();
  plan.cost.secondary = r.read_double_bits();
  plan.cost.tertiary = r.read_double_bits();
  r.expect_line("flops");
  plan.flops = r.read_double_bits();
  r.expect_line("bound");
  plan.buffer_dim_bound = static_cast<int>(r.read_int(0, IndexSet::kMaxIndex));
  r.expect_line("fingerprint");
  plan.sparsity_fingerprint = r.read_hex();
  r.expect_line("search");
  plan.paths_total = static_cast<int>(r.read_int(0, kMaxCount));
  plan.paths_executable = static_cast<int>(r.read_int(0, kMaxCount));
  plan.paths_searched = static_cast<int>(r.read_int(0, kMaxCount));
  plan.paths_feasible = static_cast<int>(r.read_int(0, kMaxCount));
  plan.dp_subproblems =
      r.read_int(0, std::numeric_limits<std::int64_t>::max());
  plan.dp_evaluations =
      r.read_int(0, std::numeric_limits<std::int64_t>::max());

  // Optional anytime record, then meta entries until the end marker.
  while (true) {
    if (!r.next_line()) r.fail("unexpected end of input, expected 'end'");
    if (r.current_line() == "end") break;
    const std::string& key = r.token();
    if (key == "anytime") {
      plan.strategy = StrategyKind::kAnytime;
      plan.nodes_expanded =
          r.read_int(0, std::numeric_limits<std::int64_t>::max());
      plan.restarts = static_cast<int>(r.read_int(0, kMaxCount));
      plan.flops_lower_bound = r.read_double_bits();
      plan.optimality_gap = r.read_double_bits();
      plan.budget_exhausted = r.read_int(0, 1) == 1;
      continue;
    }
    if (key != "meta") {
      r.fail("expected 'anytime', 'meta' or 'end', got '" + r.current_line() +
             "'");
    }
    if (static_cast<std::int64_t>(out.meta.size()) >= kMaxCount) {
      r.fail("too many meta entries");
    }
    const std::string meta_key = r.token();
    const std::string value = r.tokens_left() ? r.token() : std::string();
    out.meta.emplace_back(meta_key, value);
  }
  return out;
}

}  // namespace spttn
