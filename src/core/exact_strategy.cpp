// The exhaustive planner search, moved verbatim from the pre-strategy
// make_plan. Bit-identity matters here: the chosen Plan and SearchStats are
// pinned by tests/golden/ across the whole kernel suite, so any edit that
// changes the search order, the grouping, or the merge must regenerate the
// goldens deliberately.
#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "core/planner_strategy.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace spttn {

namespace {

/// Run the order DP for every path of groups [g_begin, g_end) — one wave.
/// (group, path) pairs are independent subproblems, so the whole wave
/// flattens into a single fan-out over the process-wide pool; results land
/// indexed by (group - g_begin, path), ready for the order-preserving
/// merge.
void run_wave(const Kernel& kernel,
              const std::vector<std::vector<const ContractionPath*>>& groups,
              std::size_t g_begin, std::size_t g_end,
              const TreeCost& cost, const PlannerOptions& options,
              std::vector<std::vector<DpResult>>* results) {
  DpOptions dp_options;
  dp_options.restrict_csf_order = options.restrict_csf_order;
  results->assign(g_end - g_begin, {});
  std::vector<std::pair<std::size_t, std::size_t>> flat;
  for (std::size_t g = g_begin; g < g_end; ++g) {
    (*results)[g - g_begin].resize(groups[g].size());
    for (std::size_t i = 0; i < groups[g].size(); ++i) {
      flat.emplace_back(g, i);
    }
  }
  const auto run_one = [&](std::int64_t f) {
    const auto [g, i] = flat[static_cast<std::size_t>(f)];
    (*results)[g - g_begin][i] =
        optimal_order(kernel, *groups[g][i], cost, dp_options);
  };
  if (options.search_threads == 1 || flat.size() < 2) {
    for (std::size_t f = 0; f < flat.size(); ++f) {
      run_one(static_cast<std::int64_t>(f));
    }
  } else {
    // The persistent process pool serves every wave; spawning a pool per
    // wave (make_plan runs one wave per relaxation pass at minimum) would
    // cost more than the small DPs themselves.
    ThreadPool::global().parallel_apply(
        static_cast<std::int64_t>(flat.size()), run_one);
  }
}

/// Merge one group's DP results in path order; fills `plan` when a
/// feasible nest with the best group cost is found and accumulates the
/// group's search statistics. Identical to a sequential scan of the group.
bool merge_group(const std::vector<const ContractionPath*>& group,
                 const std::vector<DpResult>& results, SearchStats* stats,
                 Plan* plan) {
  bool found = false;
  for (std::size_t i = 0; i < group.size(); ++i) {
    const DpResult& r = results[i];
    stats->paths_searched += 1;
    stats->dp_subproblems += r.subproblems;
    stats->dp_evaluations += r.evaluations;
    if (!r.feasible) continue;
    stats->paths_feasible += 1;
    if (!found || r.best_cost < plan->cost) {
      plan->path = *group[i];
      plan->order = r.best;
      plan->cost = r.best_cost;
      found = true;
    }
  }
  return found;
}

}  // namespace

Plan ExactStrategy::plan(const Kernel& kernel, const SparsityStats& stats,
                         const PlannerOptions& options) const {
  Plan plan;
  int total = 0;
  std::vector<double> flops;  // per exec path, filled by executable_paths
  const std::vector<ContractionPath> exec = executable_paths(
      kernel, stats, &total, options.search_threads, &flops);
  plan.paths_total = total;
  plan.paths_executable = static_cast<int>(exec.size());
  SPTTN_CHECK_MSG(!exec.empty(),
                  "no single-CSF executable contraction path for kernel "
                      << kernel.to_string());

  // Group by FLOP estimate (paths within tolerance share a group).
  std::vector<std::vector<const ContractionPath*>> groups;
  std::vector<double> group_flops;
  for (std::size_t i = 0; i < exec.size(); ++i) {
    if (groups.empty() ||
        flops[i] > group_flops.back() * options.flop_group_tolerance) {
      groups.emplace_back();
      group_flops.push_back(flops[i]);
    }
    groups.back().push_back(&exec[i]);
    if (options.max_paths_searched > 0 &&
        static_cast<int>(i) + 1 >= options.max_paths_searched) {
      break;
    }
  }

  // Paper Section 5: optimal-complexity group first, then fall back; when
  // even that fails and relaxation is allowed, loosen the buffer bound.
  // Each relaxation pass scans groups in waves of geometrically growing
  // size: a wave's DPs fan out over the pool together, then merge in
  // group/path order, stopping at the first feasible group. Wave 1 holds
  // only the optimal-complexity group, so the common case does exactly the
  // sequential search's work; failure cases buy parallelism with bounded
  // speculation (at most the winning wave's trailing groups, which the
  // merge discards from the stats — plan and SearchStats stay identical to
  // the sequential scan).
  PlannerOptions effective = options;
  const int max_bound = std::max(options.buffer_dim_bound,
                                 kernel.num_indices());
  SearchStats search;
  for (int bound = options.buffer_dim_bound; bound <= max_bound; ++bound) {
    effective.buffer_dim_bound = bound;
    const std::unique_ptr<TreeCost> cost = make_cost_model(effective, &stats);
    std::size_t g = 0;
    std::size_t wave = 1;
    while (g < groups.size()) {
      const std::size_t wave_end = std::min(groups.size(), g + wave);
      std::vector<std::vector<DpResult>> results;
      run_wave(kernel, groups, g, wave_end, *cost, effective, &results);
      for (std::size_t gg = g; gg < wave_end; ++gg) {
        if (merge_group(groups[gg], results[gg - g], &search, &plan)) {
          plan.paths_searched = search.paths_searched;
          plan.paths_feasible = search.paths_feasible;
          plan.dp_subproblems = search.dp_subproblems;
          plan.dp_evaluations = search.dp_evaluations;
          plan.flops = path_flops(kernel, plan.path, stats);
          plan.buffer_dim_bound = bound;
          plan.sparsity_fingerprint = stats.fingerprint();
          plan.tree = LoopTree::build(kernel, plan.path, plan.order);
          return plan;
        }
      }
      g = wave_end;
      // Speculative growth only pays when lanes exist to run the extra
      // groups concurrently; a one-lane pool would run the speculation
      // inline and can double the sequential search's DP work for nothing.
      if (options.search_threads != 1 && ThreadPool::global().size() > 1) {
        wave *= 2;
      }
    }
    if (!options.allow_bound_relaxation ||
        options.cost != CostKind::kBoundedBufferBlas) {
      break;
    }
  }
  SPTTN_CHECK_MSG(false, "no feasible loop nest found for kernel "
                             << kernel.to_string());
  return plan;
}

}  // namespace spttn
