#include "core/loop_tree.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace spttn {

namespace {

/// Working item during recursive construction.
struct Piece {
  int term;
  std::vector<int> suffix;  // remaining loop order for the term
};

}  // namespace

LoopTree LoopTree::assemble(std::vector<Node> nodes, std::vector<Action> top,
                            std::vector<BufferSpec> buffers) {
  LoopTree t;
  t.nodes_ = std::move(nodes);
  t.top_ = std::move(top);
  t.buffers_ = std::move(buffers);
  return t;
}

LoopTree LoopTree::build(const Kernel& kernel, const ContractionPath& path,
                         const LoopOrder& order) {
  SPTTN_CHECK_MSG(is_valid_order(path, order),
                  "loop order is not valid for the contraction path");
  LoopTree t;
  const int n_terms = path.num_terms();

  // term_ancestors[t] = node-id path from the forest root to term t's leaf.
  std::vector<std::vector<int>> term_ancestors(
      static_cast<std::size_t>(n_terms));

  // Terms that reference the sparse input directly (and thus need the CSF
  // cursor positioned at their leaves).
  const auto touches_sparse_input = [&](int term_id) {
    const PathTerm& term = path.term(term_id);
    const auto direct = [&](const PathOperand& op) {
      return op.kind == PathOperand::Kind::kInput &&
             op.id == kernel.sparse_input();
    };
    return direct(term.lhs) || direct(term.rhs);
  };

  // Recursive grouping by shared leading index (peeling, Def 4.2).
  //
  // sparse_depth counts enclosing CSF-iterated loops. A vertex iterates the
  // CSF tree exactly when its index is the sparse mode at that level
  // (lvl == sparse_depth); all other loops — including sparse-mode indices
  // encountered out of CSF order, as in the SparseLNR-style dense workspace
  // iteration — are dense counting loops.
  //
  // Soundness of the depth-only rule for SpTTN kernels: positions skipped
  // by a CSF loop fall into two cases. (1) The covered term consumes data
  // derived from the sparse tensor; skipped positions are then truly zero
  // (every product there carries a zero of T), so buffers remain pointwise
  // correct everywhere. (2) The covered term is part of the dense
  // sub-network (no T data yet); its skipped buffer positions may differ
  // from the true dense value, but downstream terms only ever read such
  // buffers at projections of T's nonzero pattern — no sparse mode can be
  // summed before T is absorbed, so coordinates are preserved until a
  // pattern-restricted read. Hence values at pattern projections are
  // correct end-to-end, which is all the kernel output depends on.
  const auto build_level = [&](auto&& self, std::vector<Piece> pieces,
                               std::vector<int>& ancestors, int depth,
                               int sparse_depth) -> std::vector<Action> {
    std::vector<Action> actions;
    std::size_t i = 0;
    while (i < pieces.size()) {
      if (pieces[i].suffix.empty()) {
        term_ancestors[static_cast<std::size_t>(pieces[i].term)] = ancestors;
        actions.push_back({Action::Kind::kTerm, pieces[i].term});
        ++i;
        continue;
      }
      const int q = pieces[i].suffix.front();
      std::vector<Piece> group;
      bool group_touches_sparse = false;
      while (i < pieces.size() && !pieces[i].suffix.empty() &&
             pieces[i].suffix.front() == q) {
        Piece p;
        p.term = pieces[i].term;
        p.suffix.assign(pieces[i].suffix.begin() + 1, pieces[i].suffix.end());
        group_touches_sparse =
            group_touches_sparse || touches_sparse_input(p.term);
        group.push_back(std::move(p));
        ++i;
      }
      const int node_id = static_cast<int>(t.nodes_.size());
      t.nodes_.emplace_back();
      t.nodes_.back().index = q;
      t.nodes_.back().depth = depth;
      const int lvl = kernel.csf_level(q);
      const bool is_sparse_loop = lvl >= 0 && lvl == sparse_depth;
      if (group_touches_sparse && lvl >= 0) {
        // The term reading T itself needs the CSF cursor at every level, so
        // its sparse modes must appear in storage order.
        SPTTN_CHECK_MSG(
            is_sparse_loop,
            "loop order iterates sparse mode '"
                << kernel.index_name(q) << "' (CSF level " << lvl
                << ") at sparse depth " << sparse_depth
                << "; the sparse tensor's term must follow CSF order");
      }
      t.nodes_.back().sparse = is_sparse_loop;
      t.nodes_.back().csf_level = is_sparse_loop ? lvl : -1;
      actions.push_back({Action::Kind::kLoop, node_id});

      ancestors.push_back(node_id);
      auto body = self(self, std::move(group), ancestors, depth + 1,
                       sparse_depth + (is_sparse_loop ? 1 : 0));
      ancestors.pop_back();
      // Nodes may have been appended during recursion; index by id.
      t.nodes_[static_cast<std::size_t>(node_id)].body = std::move(body);
    }
    return actions;
  };

  std::vector<Piece> pieces;
  pieces.reserve(static_cast<std::size_t>(n_terms));
  for (int i = 0; i < n_terms; ++i) {
    pieces.push_back({i, order[static_cast<std::size_t>(i)]});
  }
  std::vector<int> ancestors;
  t.top_ = build_level(build_level, std::move(pieces), ancestors, 0, 0);

  // --- Buffer inference (Eq. 5) ---
  t.buffers_.resize(static_cast<std::size_t>(n_terms));
  for (int x = 0; x < n_terms; ++x) {
    const int y = path.consumer_of(x);
    if (y < 0) continue;  // final term: writes the kernel output
    const auto& ax = term_ancestors[static_cast<std::size_t>(x)];
    const auto& ay = term_ancestors[static_cast<std::size_t>(y)];
    std::size_t common = 0;
    while (common < ax.size() && common < ay.size() &&
           ax[common] == ay[common]) {
      ++common;
    }
    IndexSet removed;
    for (std::size_t a = 0; a < common; ++a) {
      removed.insert(t.nodes_[static_cast<std::size_t>(ax[a])].index);
    }
    BufferSpec spec;
    spec.producer = x;
    spec.consumer = y;
    const IndexSet binds = path.term(x).out - removed;
    // Order buffer indices by their position in the producer's loop order so
    // the producer's innermost loop writes with stride 1.
    for (int id : order[static_cast<std::size_t>(x)]) {
      if (binds.contains(id)) {
        spec.indices.push_back(id);
        spec.dims.push_back(kernel.index_dim(id));
        spec.size *= spec.dims.back();
      }
    }
    SPTTN_CHECK(static_cast<int>(spec.indices.size()) == binds.size());
    t.buffers_[static_cast<std::size_t>(x)] = std::move(spec);

    // --- Reset placement: zero the buffer once per iteration of the deepest
    // common ancestor, immediately before the action leading to the
    // producer. ---
    std::vector<Action>* body = &t.top_;
    if (common > 0) {
      body = &t.nodes_[static_cast<std::size_t>(ax[common - 1])].body;
    }
    // The action to precede: the loop child on the producer's path (or the
    // producer term itself if it executes directly at this level).
    int target_id;
    Action::Kind target_kind;
    if (common < ax.size()) {
      target_kind = Action::Kind::kLoop;
      target_id = ax[common];
    } else {
      target_kind = Action::Kind::kTerm;
      target_id = x;
    }
    auto it = std::find_if(body->begin(), body->end(), [&](const Action& a) {
      return a.kind == target_kind && a.id == target_id;
    });
    SPTTN_CHECK(it != body->end());
    body->insert(it, Action{Action::Kind::kReset, x});
  }
  return t;
}

int LoopTree::max_buffer_dim() const {
  int m = 0;
  for (const auto& b : buffers_) {
    if (b.producer >= 0) m = std::max(m, static_cast<int>(b.indices.size()));
  }
  return m;
}

std::int64_t LoopTree::max_buffer_size() const {
  std::int64_t m = 0;
  for (const auto& b : buffers_) {
    if (b.producer >= 0) m = std::max(m, b.size);
  }
  return m;
}

std::int64_t LoopTree::total_buffer_size() const {
  std::int64_t s = 0;
  for (const auto& b : buffers_) {
    if (b.producer >= 0) s += b.size;
  }
  return s;
}

int LoopTree::max_depth() const {
  int m = 0;
  for (const auto& n : nodes_) m = std::max(m, n.depth + 1);
  return m;
}

int LoopTree::count_offloadable_dense_loops(const Kernel& kernel,
                                            const ContractionPath& path,
                                            const LoopOrder& order) const {
  (void)path;
  // For each term, count the trailing run of dense indices in its loop
  // order that no other term shares at the same tree position. A shared
  // vertex is one that covers >= 2 terms; we approximate exclusivity by
  // checking whether the trailing index appears in another term's order at
  // any fused position — the tree gives the exact answer, so walk it.
  // A node is exclusive to a term when its subtree contains exactly one
  // kTerm action.
  std::vector<int> term_count(nodes_.size(), 0);
  const auto count_terms = [&](auto&& self, const std::vector<Action>& body)
      -> int {
    int c = 0;
    for (const auto& a : body) {
      if (a.kind == Action::Kind::kTerm) ++c;
      if (a.kind == Action::Kind::kLoop) {
        const int sub =
            self(self, nodes_[static_cast<std::size_t>(a.id)].body);
        term_count[static_cast<std::size_t>(a.id)] = sub;
        c += sub;
      }
    }
    return c;
  };
  count_terms(count_terms, top_);

  // Trailing dense, exclusive loops per term: walk each term's ancestor
  // chain from the leaf upward.
  int total = 0;
  // Recompute ancestors.
  std::vector<std::vector<int>> anc(order.size());
  const auto walk = [&](auto&& self, const std::vector<Action>& body,
                        std::vector<int>& chain) -> void {
    for (const auto& a : body) {
      if (a.kind == Action::Kind::kTerm) {
        anc[static_cast<std::size_t>(a.id)] = chain;
      } else if (a.kind == Action::Kind::kLoop) {
        chain.push_back(a.id);
        self(self, nodes_[static_cast<std::size_t>(a.id)].body, chain);
        chain.pop_back();
      }
    }
  };
  std::vector<int> chain;
  walk(walk, top_, chain);
  (void)kernel;
  for (const auto& chain_t : anc) {
    for (std::size_t a = chain_t.size(); a-- > 0;) {
      const Node& n = nodes_[static_cast<std::size_t>(chain_t[a])];
      // What matters is the node's iteration kind: dense counting loops are
      // collapsible even when their index is a sparse mode (dense-iterated
      // workspace loops of dense sub-network terms).
      if (!n.sparse && term_count[static_cast<std::size_t>(chain_t[a])] == 1) {
        ++total;
      } else {
        break;
      }
    }
  }
  return total;
}

std::string LoopTree::render(const Kernel& kernel,
                             const ContractionPath& path) const {
  std::ostringstream os;
  const auto operand_str = [&](const PathOperand& op) {
    if (op.kind == PathOperand::Kind::kInput) return kernel.input(op.id).name;
    return "X" + std::to_string(op.id + 1);
  };
  const auto emit = [&](auto&& self, const std::vector<Action>& body,
                        int indent) -> void {
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    for (const auto& a : body) {
      switch (a.kind) {
        case Action::Kind::kLoop: {
          const Node& n = nodes_[static_cast<std::size_t>(a.id)];
          if (n.sparse) {
            os << pad << "for " << kernel.index_name(n.index) << " in "
               << kernel.sparse_ref().name << ".csf_level("
               << n.csf_level << "):\n";
          } else {
            os << pad << "for " << kernel.index_name(n.index)
               << " in range(" << kernel.index_name(n.index) << "):\n";
          }
          self(self, n.body, indent + 1);
          break;
        }
        case Action::Kind::kReset: {
          const auto& buf = buffers_[static_cast<std::size_t>(a.id)];
          os << pad << "X" << (buf.producer + 1) << " = 0  # buffer(";
          for (std::size_t i = 0; i < buf.indices.size(); ++i) {
            if (i) os << ",";
            os << kernel.index_name(buf.indices[i]);
          }
          os << ")\n";
          break;
        }
        case Action::Kind::kTerm: {
          const PathTerm& term = path.term(a.id);
          const bool last = (a.id + 1 == path.num_terms());
          os << pad << (last ? kernel.output().name
                             : "X" + std::to_string(a.id + 1))
             << " += " << operand_str(term.lhs) << " * "
             << operand_str(term.rhs) << "\n";
          break;
        }
      }
    }
  };
  emit(emit, top_, 0);
  return os.str();
}

}  // namespace spttn
