#include "core/cost.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace spttn {

std::string Cost::to_string() const {
  return strfmt("(%.6g, %.6g, %.6g)", primary, secondary, tertiary);
}

int crossing_buffer_dim(const PeelContext& ctx) {
  int dim = 0;
  for (int p = ctx.first; p < ctx.split_end; ++p) {
    const int c = ctx.path->consumer_of(p);
    if (c >= ctx.split_end && c < ctx.last) {
      dim = std::max(dim,
                     (ctx.path->term(p).out - ctx.removed).size());
    }
  }
  return dim;
}

double crossing_buffer_size(const PeelContext& ctx) {
  double size = 0;
  for (int p = ctx.first; p < ctx.split_end; ++p) {
    const int c = ctx.path->consumer_of(p);
    if (c >= ctx.split_end && c < ctx.last) {
      double s = 1;
      for (int id : (ctx.path->term(p).out - ctx.removed).elements()) {
        s *= static_cast<double>(ctx.kernel->index_dim(id));
      }
      size = std::max(size, s);
    }
  }
  return size;
}

// --- MaxBufferDimCost ---

Cost MaxBufferDimCost::phi(const PeelContext& ctx, const Cost& x) const {
  Cost out = x;
  out.primary =
      std::max(out.primary, static_cast<double>(crossing_buffer_dim(ctx)));
  return out;
}

Cost MaxBufferDimCost::combine(const Cost& a, const Cost& b) const {
  return {std::max(a.primary, b.primary), 0, 0};
}

// --- MaxBufferSizeCost ---

Cost MaxBufferSizeCost::phi(const PeelContext& ctx, const Cost& x) const {
  Cost out = x;
  out.primary = std::max(out.primary, crossing_buffer_size(ctx));
  return out;
}

Cost MaxBufferSizeCost::combine(const Cost& a, const Cost& b) const {
  return {std::max(a.primary, b.primary), 0, 0};
}

Cost MaxBufferSizeCost::drop(const DropContext& ctx, const Cost& x) const {
  // A fully-iterated term writes a scalar buffer (one element) unless it is
  // the final term.
  const int c = ctx.path->consumer_of(ctx.term);
  if (c < 0 || c >= ctx.last) return x;
  Cost out = x;
  out.primary = std::max(out.primary, 1.0);
  return out;
}

// --- CacheMissCost ---

/// Model of the runtime's CSF-iteration rule: the root loop iterates the
/// CSF tree when it is a sparse mode and every shallower mode has already
/// been iterated. (The runtime decides by nesting depth; this set-based
/// form is what keeps the cost a function of (path, removed, root) so the
/// DP memoization stays exact.)
bool root_iterates_sparsely(const PeelContext& ctx) {
  const int lvl = ctx.kernel->csf_level(ctx.root);
  if (lvl < 0) return false;
  const auto& csf_order = ctx.kernel->sparse_ref().idx;
  for (int l = 0; l < lvl; ++l) {
    if (!ctx.removed.contains(csf_order[static_cast<std::size_t>(l)])) {
      return false;
    }
  }
  return true;
}

double CacheMissCost::loop_extent(const PeelContext& ctx) const {
  const int lvl = ctx.kernel->csf_level(ctx.root);
  if (sparse_aware_ && stats_ != nullptr && lvl >= 0 &&
      root_iterates_sparsely(ctx)) {
    // Expected trip count of a CSF loop: fan-out at its level, conditioned
    // on the enclosing sparse prefix.
    const double parent = static_cast<double>(stats_->prefix_nnz(lvl));
    const double self = static_cast<double>(stats_->prefix_nnz(lvl + 1));
    return parent > 0 ? self / parent : 1.0;
  }
  return static_cast<double>(ctx.kernel->index_dim(ctx.root));
}

Cost CacheMissCost::phi(const PeelContext& ctx, const Cost& x) const {
  // tau: tensor references (operands and outputs of covered terms) indexed
  // by the root that still have more than D unbound indices.
  int tau = 0;
  const IndexSet gone = ctx.removed | IndexSet{ctx.root};
  for (int t = ctx.first; t < ctx.split_end; ++t) {
    const PathTerm& term = ctx.path->term(t);
    for (const IndexSet& ref :
         {term.lhs.iset, term.rhs.iset, term.out}) {
      if (!ref.contains(ctx.root)) continue;
      if ((ref - gone).size() >= d_) ++tau;
    }
  }
  Cost out = x;
  out.primary = loop_extent(ctx) * (static_cast<double>(tau) + x.primary);
  if (buffer_traffic_) {
    // Intermediates crossing this peel are zeroed and streamed once per
    // iteration of the enclosing scope: charge 2 * elements / 8 misses.
    for (int p = ctx.first; p < ctx.split_end; ++p) {
      const int c = ctx.path->consumer_of(p);
      if (c >= ctx.split_end && c < ctx.last) {
        double size = 1;
        for (int id : (ctx.path->term(p).out - ctx.removed).elements()) {
          size *= static_cast<double>(ctx.kernel->index_dim(id));
        }
        out.primary += 2.0 * size / 8.0;
      }
    }
  }
  return out;
}

Cost CacheMissCost::combine(const Cost& a, const Cost& b) const {
  return {a.primary + b.primary, 0, 0};
}

// --- BoundedBufferBlasCost ---

Cost BoundedBufferBlasCost::phi(const PeelContext& ctx, const Cost& x) const {
  Cost out;
  // Feasibility: every intermediate dimension within the bound.
  const int dim = crossing_buffer_dim(ctx);
  out.primary = x.primary;
  if (dim > bound_) out.primary = std::numeric_limits<double>::infinity();

  // Independent dense loops: the root covers exactly one term, iterates
  // densely, and everything still to iterate for that term is dense too —
  // i.e. the loop belongs to a trailing all-dense chain the executor can
  // collapse into a BLAS-style kernel. Outer dense loops wrapped around
  // sparse traversals do not count (they cannot be offloaded and force
  // repeated CSF walks).
  bool independent_dense = false;
  if ((ctx.split_end - ctx.first) == 1 && !root_iterates_sparsely(ctx)) {
    independent_dense = true;
    const IndexSet rest = ctx.path->term(ctx.first).refs - ctx.removed -
                          IndexSet{ctx.root};
    for (int id : rest.elements()) {
      if (ctx.kernel->csf_level(id) >= 0) {
        independent_dense = false;
        break;
      }
    }
  }
  out.secondary = x.secondary - (independent_dense ? 1.0 : 0.0);

  // Cache misses for tie-breaking.
  Cost cache_in;
  cache_in.primary = x.tertiary;
  out.tertiary = cache_.phi(ctx, cache_in).primary;
  return out;
}

Cost BoundedBufferBlasCost::combine(const Cost& a, const Cost& b) const {
  return {a.primary + b.primary,  // inf propagates; finite parts are 0
          a.secondary + b.secondary, a.tertiary + b.tertiary};
}

// --- evaluate_cost ---

namespace {

struct EvalPiece {
  int term;
  std::vector<int> suffix;
};

Cost eval_rec(const Kernel& kernel, const ContractionPath& path,
              const std::vector<EvalPiece>& pieces, std::size_t begin,
              std::size_t end, IndexSet removed, int last_term,
              const TreeCost& cost) {
  if (begin == end) return cost.zero();
  // Strip removed indices lazily: recompute the live suffix of each piece.
  const auto live_front = [&](const EvalPiece& p) -> int {
    for (int id : p.suffix) {
      if (!removed.contains(id)) return id;
    }
    return -1;
  };
  const EvalPiece& head = pieces[begin];
  const int q = live_front(head);
  if (q < 0) {
    DropContext dctx;
    dctx.kernel = &kernel;
    dctx.path = &path;
    dctx.term = head.term;
    dctx.last = last_term;
    dctx.removed = removed;
    const Cost rest = eval_rec(kernel, path, pieces, begin + 1, end, removed,
                               last_term, cost);
    return cost.drop(dctx, rest);
  }
  // Extend the covered group while the live front matches q.
  std::size_t split = begin;
  while (split < end && live_front(pieces[split]) == q) ++split;

  PeelContext ctx;
  ctx.kernel = &kernel;
  ctx.path = &path;
  ctx.first = pieces[begin].term;
  ctx.split_end = pieces[split - 1].term + 1;
  ctx.last = last_term;
  ctx.removed = removed;
  ctx.root = q;

  IndexSet with_q = removed;
  with_q.insert(q);
  const Cost x = eval_rec(kernel, path, pieces, begin, split, with_q,
                          pieces[split - 1].term + 1, cost);
  const Cost y =
      eval_rec(kernel, path, pieces, split, end, removed, last_term, cost);
  return cost.combine(cost.phi(ctx, x), y);
}

}  // namespace

Cost evaluate_cost(const Kernel& kernel, const ContractionPath& path,
                   const LoopOrder& order, const TreeCost& cost) {
  SPTTN_CHECK(is_valid_order(path, order));
  std::vector<EvalPiece> pieces;
  pieces.reserve(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    pieces.push_back({static_cast<int>(i), order[i]});
  }
  return eval_rec(kernel, path, pieces, 0, pieces.size(), IndexSet{},
                  path.num_terms(), cost);
}

}  // namespace spttn
