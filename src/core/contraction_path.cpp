#include "core/contraction_path.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace spttn {

int ContractionPath::consumer_of(int i) const {
  for (int j = i + 1; j < num_terms(); ++j) {
    const PathTerm& t = term(j);
    const auto uses = [&](const PathOperand& op) {
      return op.kind == PathOperand::Kind::kIntermediate && op.id == i;
    };
    if (uses(t.lhs) || uses(t.rhs)) return j;
  }
  return -1;
}

bool ContractionPath::csf_prefix_executable(const Kernel& kernel) const {
  const auto& csf_order = kernel.sparse_ref().idx;
  for (const PathTerm& t : terms) {
    if (!t.carries_sparse) continue;
    // Sparse refs of a sparse-carrying term must be exactly the first
    // |sparse_refs| CSF modes.
    IndexSet prefix;
    const int k = t.sparse_refs.size();
    for (int l = 0; l < k; ++l) {
      prefix.insert(csf_order[static_cast<std::size_t>(l)]);
    }
    if (!(t.sparse_refs == prefix)) return false;
  }
  return true;
}

std::string ContractionPath::to_string(const Kernel& kernel) const {
  const auto render_operand = [&](const PathOperand& op) {
    std::string name = op.kind == PathOperand::Kind::kInput
                           ? kernel.input(op.id).name
                           : "X" + std::to_string(op.id + 1);
    std::string s = name + "(";
    bool first = true;
    // Render indices in kernel id order for intermediates; original order
    // for inputs.
    if (op.kind == PathOperand::Kind::kInput) {
      for (int id : kernel.input(op.id).idx) {
        if (!first) s += ",";
        s += kernel.index_name(id);
        first = false;
      }
    } else {
      for (int id : op.iset.elements()) {
        if (!first) s += ",";
        s += kernel.index_name(id);
        first = false;
      }
    }
    return s + ")";
  };
  std::string s;
  for (int i = 0; i < num_terms(); ++i) {
    if (i) s += "; ";
    const PathTerm& t = term(i);
    s += render_operand(t.lhs) + "*" + render_operand(t.rhs) + " -> ";
    if (i + 1 == num_terms()) {
      s += kernel.output().name;
    } else {
      s += "X" + std::to_string(i + 1);
    }
    s += "(";
    bool first = true;
    for (int id : t.out.elements()) {
      if (!first) s += ",";
      s += kernel.index_name(id);
      first = false;
    }
    s += ")";
  }
  return s;
}

SparsityStats SparsityStats::from_coo(const CooTensor& coo) {
  SPTTN_CHECK_MSG(coo.is_sorted(), "SparsityStats needs sort_dedup()ed COO");
  SparsityStats s;
  s.coo_ = &coo;
  s.nnz_ = coo.nnz();
  s.fingerprint_ = coo.structure_hash();
  s.dims_ = coo.dims();
  s.prefix_.resize(static_cast<std::size_t>(coo.order()) + 1);
  for (int k = 0; k <= coo.order(); ++k) {
    s.prefix_[static_cast<std::size_t>(k)] = coo.nnz_prefix(k);
  }
  return s;
}

SparsityStats SparsityStats::uniform(const std::vector<std::int64_t>& dims,
                                     std::int64_t nnz) {
  SparsityStats s;
  s.nnz_ = nnz;
  s.dims_ = dims;
  s.prefix_.resize(dims.size() + 1);
  s.prefix_[0] = nnz > 0 ? 1 : 0;
  double space = 1;
  for (std::size_t k = 0; k < dims.size(); ++k) {
    space *= static_cast<double>(dims[k]);
    // Expected distinct prefixes when nnz coordinates are uniform:
    // space * (1 - (1 - 1/space)^nnz) ≈ min(space, nnz) to within a
    // constant; we use the exact expectation for better estimates.
    const double expected =
        space * (1.0 - std::exp(static_cast<double>(nnz) *
                                std::log1p(-1.0 / space)));
    s.prefix_[k + 1] = std::min<std::int64_t>(
        nnz, std::max<std::int64_t>(1, static_cast<std::int64_t>(expected)));
  }
  s.prefix_[dims.size()] = nnz;
  return s;
}

SparsityStats::SparsityStats(const SparsityStats& o)
    : prefix_(o.prefix_),
      dims_(o.dims_),
      nnz_(o.nnz_),
      fingerprint_(o.fingerprint_),
      coo_(o.coo_) {
  std::lock_guard<std::mutex> lk(o.proj_m_);
  proj_cache_ = o.proj_cache_;
}

SparsityStats& SparsityStats::operator=(const SparsityStats& o) {
  if (this == &o) return *this;
  prefix_ = o.prefix_;
  dims_ = o.dims_;
  nnz_ = o.nnz_;
  fingerprint_ = o.fingerprint_;
  coo_ = o.coo_;
  std::scoped_lock lk(proj_m_, o.proj_m_);
  proj_cache_ = o.proj_cache_;
  return *this;
}

SparsityStats::SparsityStats(SparsityStats&& o) noexcept
    : prefix_(std::move(o.prefix_)),
      dims_(std::move(o.dims_)),
      nnz_(o.nnz_),
      fingerprint_(o.fingerprint_),
      coo_(o.coo_),
      proj_cache_(std::move(o.proj_cache_)) {}

SparsityStats& SparsityStats::operator=(SparsityStats&& o) noexcept {
  if (this == &o) return *this;
  prefix_ = std::move(o.prefix_);
  dims_ = std::move(o.dims_);
  nnz_ = o.nnz_;
  fingerprint_ = o.fingerprint_;
  coo_ = o.coo_;
  proj_cache_ = std::move(o.proj_cache_);
  return *this;
}

std::int64_t SparsityStats::projection_nnz(std::uint64_t level_mask) const {
  const int d = order();
  // Prefix masks resolve from the precomputed table.
  int prefix_len = 0;
  while (prefix_len < d && (level_mask >> prefix_len) & 1) ++prefix_len;
  if (level_mask == (std::uint64_t{1} << prefix_len) - 1) {
    return prefix_nnz(prefix_len);
  }
  {
    std::lock_guard<std::mutex> lk(proj_m_);
    for (const auto& [mask, count] : proj_cache_) {
      if (mask == level_mask) return count;
    }
  }
  // Compute outside the lock: the COO projection scan is the expensive
  // part, and two threads racing to compute the same mask produce the
  // same value (the second insert below is dropped).
  std::int64_t count = 0;
  if (coo_ != nullptr) {
    std::vector<int> modes;
    for (int l = 0; l < d; ++l) {
      if ((level_mask >> l) & 1) modes.push_back(l);
    }
    count = coo_->nnz_projection(modes);
  } else {
    double space = 1;
    for (int l = 0; l < d; ++l) {
      if ((level_mask >> l) & 1) {
        space *= static_cast<double>(dims_[static_cast<std::size_t>(l)]);
      }
    }
    count = std::min<std::int64_t>(
        nnz_, std::max<std::int64_t>(1, static_cast<std::int64_t>(space)));
  }
  std::lock_guard<std::mutex> lk(proj_m_);
  for (const auto& [mask, cached] : proj_cache_) {
    if (mask == level_mask) return cached;  // another caller beat us
  }
  proj_cache_.emplace_back(level_mask, count);
  return count;
}

double path_flops(const Kernel& kernel, const ContractionPath& path,
                  const SparsityStats& stats) {
  // Optimistic estimate matching the fused runtime: any term's sparse-mode
  // references can iterate over the sparse pattern's projection (dense
  // sub-network terms are fused under the sparse chain — see the soundness
  // note in loop_tree.cpp); remaining indices iterate densely.
  double total = 0;
  for (const PathTerm& t : path.terms) {
    double iters = 1;
    if (!t.sparse_refs.empty()) {
      std::uint64_t level_mask = 0;
      for (int id : t.sparse_refs.elements()) {
        const int lvl = kernel.csf_level(id);
        SPTTN_CHECK(lvl >= 0);
        level_mask |= (std::uint64_t{1} << lvl);
      }
      iters *= static_cast<double>(stats.projection_nnz(level_mask));
    }
    for (int id : (t.refs - t.sparse_refs).elements()) {
      iters *= static_cast<double>(kernel.index_dim(id));
    }
    total += 2.0 * iters;
  }
  return total;
}

namespace {

/// Item in the enumeration working list.
struct Item {
  PathOperand op;
  bool carries_sparse;
};

void enumerate_rec(const Kernel& kernel, std::vector<Item>& items,
                   ContractionPath& partial,
                   std::vector<ContractionPath>& out) {
  const std::size_t n = items.size();
  if (n == 1) {
    out.push_back(partial);
    return;
  }
  // Indices needed later = union over other items of their indices, plus the
  // kernel output indices.
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      IndexSet needed = kernel.output_indices();
      for (std::size_t c = 0; c < n; ++c) {
        if (c == a || c == b) continue;
        needed |= items[c].op.iset;
      }
      PathTerm term;
      term.lhs = items[a].op;
      term.rhs = items[b].op;
      term.refs = items[a].op.iset | items[b].op.iset;
      term.out = term.refs & needed;
      term.carries_sparse = items[a].carries_sparse || items[b].carries_sparse;
      term.sparse_refs = term.refs & kernel.sparse_modes();

      const int term_id = partial.num_terms();
      partial.terms.push_back(term);

      Item merged;
      merged.op.kind = PathOperand::Kind::kIntermediate;
      merged.op.id = term_id;
      merged.op.iset = term.out;
      merged.carries_sparse = term.carries_sparse;

      // Reduce the list: remove b then replace a (preserves order enough for
      // enumeration completeness; pair choice is order-insensitive).
      std::vector<Item> next;
      next.reserve(n - 1);
      for (std::size_t c = 0; c < n; ++c) {
        if (c == b) continue;
        next.push_back(c == a ? merged : items[c]);
      }
      enumerate_rec(kernel, next, partial, out);
      partial.terms.pop_back();
    }
  }
}

}  // namespace

std::vector<ContractionPath> enumerate_paths(const Kernel& kernel) {
  std::vector<Item> items;
  items.reserve(static_cast<std::size_t>(kernel.num_inputs()));
  for (int i = 0; i < kernel.num_inputs(); ++i) {
    Item it;
    it.op.kind = PathOperand::Kind::kInput;
    it.op.id = i;
    it.op.iset = kernel.input(i).iset;
    it.carries_sparse = (i == kernel.sparse_input());
    items.push_back(it);
  }
  std::vector<ContractionPath> out;
  if (items.size() == 1) {
    // Degenerate single-input kernel (e.g. a plain reduction): one empty
    // path; the executor handles it as a single pass over the input.
    return out;
  }
  ContractionPath partial;
  enumerate_rec(kernel, items, partial, out);
  return out;
}

std::uint64_t count_paths(int n) {
  SPTTN_CHECK(n >= 2);
  // T(n) = C(n,2) * T(n-1), T(2) = 1.
  std::uint64_t t = 1;
  for (int i = 3; i <= n; ++i) {
    t *= static_cast<std::uint64_t>(i) * static_cast<std::uint64_t>(i - 1) / 2;
  }
  return t;
}

ContractionPath chain_path(const Kernel& kernel, std::vector<int> dense_order) {
  if (dense_order.empty()) {
    for (int i = 0; i < kernel.num_inputs(); ++i) {
      if (i != kernel.sparse_input()) dense_order.push_back(i);
    }
  }
  SPTTN_CHECK_MSG(static_cast<int>(dense_order.size()) ==
                      kernel.num_inputs() - 1,
                  "chain_path needs every non-sparse input exactly once");
  ContractionPath path;
  PathOperand running;
  running.kind = PathOperand::Kind::kInput;
  running.id = kernel.sparse_input();
  running.iset = kernel.sparse_ref().iset;
  for (std::size_t step = 0; step < dense_order.size(); ++step) {
    const int input = dense_order[step];
    SPTTN_CHECK(input != kernel.sparse_input());
    PathTerm term;
    term.lhs = running;
    term.rhs.kind = PathOperand::Kind::kInput;
    term.rhs.id = input;
    term.rhs.iset = kernel.input(input).iset;
    term.refs = term.lhs.iset | term.rhs.iset;
    IndexSet needed = kernel.output_indices();
    for (std::size_t later = step + 1; later < dense_order.size(); ++later) {
      needed |= kernel.input(dense_order[later]).iset;
    }
    term.out = term.refs & needed;
    term.carries_sparse = true;  // sparse data flows through every term
    term.sparse_refs = term.refs & kernel.sparse_modes();

    running.kind = PathOperand::Kind::kIntermediate;
    running.id = path.num_terms();
    running.iset = term.out;
    path.terms.push_back(std::move(term));
  }
  return path;
}

}  // namespace spttn
