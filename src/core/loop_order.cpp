#include "core/loop_order.hpp"

#include "util/error.hpp"

namespace spttn {

PeelResult peel(const LoopOrder& order) {
  SPTTN_CHECK(!order.empty());
  SPTTN_CHECK(!order.front().empty());
  PeelResult r;
  r.root = order.front().front();
  std::size_t covered = 0;
  while (covered < order.size() && !order[covered].empty() &&
         order[covered].front() == r.root) {
    ++covered;
  }
  r.covered = static_cast<int>(covered);
  r.under_root.reserve(covered);
  for (std::size_t i = 0; i < covered; ++i) {
    r.under_root.emplace_back(order[i].begin() + 1, order[i].end());
  }
  r.remainder.assign(order.begin() + static_cast<std::ptrdiff_t>(covered),
                     order.end());
  return r;
}

bool is_valid_order(const ContractionPath& path, const LoopOrder& order) {
  if (static_cast<int>(order.size()) != path.num_terms()) return false;
  for (int i = 0; i < path.num_terms(); ++i) {
    const auto& a = order[static_cast<std::size_t>(i)];
    IndexSet seen;
    for (int id : a) {
      if (seen.contains(id)) return false;  // repeated index
      seen.insert(id);
    }
    if (!(seen == path.term(i).refs)) return false;
  }
  return true;
}

bool respects_csf_order(const Kernel& kernel, const ContractionPath& path,
                        const LoopOrder& order) {
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (!path.term(static_cast<int>(i)).carries_sparse) continue;
    int last_level = -1;
    for (int id : order[i]) {
      const int lvl = kernel.csf_level(id);
      if (lvl < 0) continue;  // dense index
      if (lvl < last_level) return false;
      last_level = lvl;
    }
  }
  return true;
}

std::string order_to_string(const Kernel& kernel, const LoopOrder& order) {
  std::string s = "(";
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i) s += ",";
    s += "(";
    for (std::size_t j = 0; j < order[i].size(); ++j) {
      if (j) s += ",";
      s += kernel.index_name(order[i][j]);
    }
    s += ")";
  }
  return s + ")";
}

}  // namespace spttn
