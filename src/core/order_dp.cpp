#include "core/order_dp.hpp"

#include <unordered_map>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace spttn {

namespace {

/// Memoized solution of one subproblem: best loop order plus the best order
/// whose loop-nest forest has a different root index.
struct Entry {
  LoopOrder best;
  Cost best_cost = Cost::inf();
  int best_root = -1;  ///< root index of F(best); -1 when empty/none
  LoopOrder second;
  Cost second_cost = Cost::inf();
  int second_root = -1;
  bool has_best = false;
  bool has_second = false;
};

struct Key {
  int first;
  int last;
  std::uint64_t removed;
  bool operator==(const Key&) const = default;
};

struct KeyHash {
  std::size_t operator()(const Key& k) const {
    std::uint64_t h = k.removed;
    h = hash_mix(h ^ (static_cast<std::uint64_t>(k.first) << 32) ^
                 static_cast<std::uint64_t>(k.last));
    return static_cast<std::size_t>(h);
  }
};

class Solver {
 public:
  Solver(const Kernel& kernel, const ContractionPath& path,
         const TreeCost& cost, const DpOptions& options)
      : kernel_(kernel), path_(path), cost_(cost), options_(options) {}

  const Entry& solve(int first, int last, IndexSet removed) {
    const Key key{first, last, removed.bits()};
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    ++subproblems_;
    Entry entry = compute(first, last, removed);
    return memo_.emplace(key, std::move(entry)).first->second;
  }

  std::int64_t subproblems() const { return subproblems_; }
  std::int64_t evaluations() const { return evaluations_; }

 private:
  /// True when `q` may be the next loop of sparse-carrying term `t`: every
  /// sparse mode at a shallower CSF level must already be iterated.
  bool csf_ok(int t, int q, IndexSet removed) const {
    if (!options_.restrict_csf_order) return true;
    const PathTerm& term = path_.term(t);
    if (!term.carries_sparse) return true;
    const int lvl = kernel_.csf_level(q);
    if (lvl < 0) return true;  // dense index: unrestricted
    for (int id : (term.sparse_refs - removed).elements()) {
      if (kernel_.csf_level(id) < lvl) return false;
    }
    return true;
  }

  Entry compute(int first, int last, IndexSet removed) {
    Entry entry;
    if (first == last) {
      entry.has_best = true;
      entry.best_cost = cost_.zero();
      return entry;
    }
    const PathTerm& head = path_.term(first);
    const IndexSet live = head.refs - removed;

    if (live.empty()) {
      // Algorithm 1 line 5: the first term executes in place.
      const Entry& sub = solve(first + 1, last, removed);
      DropContext dctx;
      dctx.kernel = &kernel_;
      dctx.path = &path_;
      dctx.term = first;
      dctx.last = last;
      dctx.removed = removed;
      // The forest now begins with this term's leaf. A leaf child breaks
      // adjacency between loop vertices, so a preceding loop over any index
      // can never become "two consecutive children with the same index":
      // report root -1 (never conflicts at line 17 of Algorithm 1).
      if (sub.has_best) {
        entry.has_best = true;
        entry.best = sub.best;
        entry.best.insert(entry.best.begin(), std::vector<int>{});
        entry.best_cost = cost_.drop(dctx, sub.best_cost);
        entry.best_root = -1;
      }
      if (sub.has_second) {
        entry.has_second = true;
        entry.second = sub.second;
        entry.second.insert(entry.second.begin(), std::vector<int>{});
        entry.second_cost = cost_.drop(dctx, sub.second_cost);
        entry.second_root = -1;
      }
      return entry;
    }

    // Try every candidate root q and every covered prefix length s
    // (Algorithm 1 lines 8-26).
    for (int q : live.elements()) {
      Cost best_for_q = Cost::inf();
      LoopOrder order_for_q;
      bool has_for_q = false;

      // Maximal run of terms containing q.
      int kmax = first;
      while (kmax < last && path_.term(kmax).refs.contains(q)) ++kmax;

      IndexSet with_q = removed;
      with_q.insert(q);
      bool run_valid = true;
      for (int split = first + 1; split <= kmax; ++split) {
        // CSF-order restriction applies to each newly covered term.
        if (!csf_ok(split - 1, q, removed)) {
          run_valid = false;
        }
        if (!run_valid) break;
        ++evaluations_;

        const Entry& x = solve(first, split, with_q);
        const Entry& y = solve(split, last, removed);
        if (!x.has_best) continue;

        // Line 17: if Y's best tree is rooted at q the combined nest would
        // not be fully fused; use Y's second-best instead.
        const LoopOrder* y_order = nullptr;
        Cost y_cost = cost_.zero();
        if (split < last) {
          if (y.has_best && y.best_root != q) {
            y_order = &y.best;
            y_cost = y.best_cost;
          } else if (y.has_second && y.second_root != q) {
            y_order = &y.second;
            y_cost = y.second_cost;
          } else {
            continue;  // no fully-fused completion for this split
          }
        }

        PeelContext ctx;
        ctx.kernel = &kernel_;
        ctx.path = &path_;
        ctx.first = first;
        ctx.split_end = split;
        ctx.last = last;
        ctx.removed = removed;
        ctx.root = q;
        const Cost total = cost_.combine(cost_.phi(ctx, x.best_cost), y_cost);
        if (total.is_inf()) continue;  // infeasible candidates never win
        if (!has_for_q || total < best_for_q) {
          best_for_q = total;
          order_for_q.clear();
          order_for_q.reserve(
              static_cast<std::size_t>(last - first));
          for (int t = first; t < split; ++t) {
            std::vector<int> a;
            a.reserve(x.best[static_cast<std::size_t>(t - first)].size() + 1);
            a.push_back(q);
            const auto& xa = x.best[static_cast<std::size_t>(t - first)];
            a.insert(a.end(), xa.begin(), xa.end());
            order_for_q.push_back(std::move(a));
          }
          if (y_order != nullptr) {
            order_for_q.insert(order_for_q.end(), y_order->begin(),
                               y_order->end());
          }
          has_for_q = true;
        }
      }

      if (!has_for_q) continue;
      // Merge the per-root winner into (best, second) keeping distinct roots
      // (lines 27-30).
      if (!entry.has_best || best_for_q < entry.best_cost) {
        if (entry.has_best) {
          entry.second = std::move(entry.best);
          entry.second_cost = entry.best_cost;
          entry.second_root = entry.best_root;
          entry.has_second = true;
        }
        entry.best = std::move(order_for_q);
        entry.best_cost = best_for_q;
        entry.best_root = q;
        entry.has_best = true;
      } else if (!entry.has_second || best_for_q < entry.second_cost) {
        entry.second = std::move(order_for_q);
        entry.second_cost = best_for_q;
        entry.second_root = q;
        entry.has_second = true;
      }
    }
    return entry;
  }

  const Kernel& kernel_;
  const ContractionPath& path_;
  const TreeCost& cost_;
  const DpOptions& options_;
  std::unordered_map<Key, Entry, KeyHash> memo_;
  std::int64_t subproblems_ = 0;
  std::int64_t evaluations_ = 0;
};

}  // namespace

DpResult optimal_order(const Kernel& kernel, const ContractionPath& path,
                       const TreeCost& cost, const DpOptions& options) {
  SPTTN_CHECK(path.num_terms() >= 1);
  Solver solver(kernel, path, cost, options);
  const Entry& top = solver.solve(0, path.num_terms(), IndexSet{});
  DpResult result;
  result.subproblems = solver.subproblems();
  result.evaluations = solver.evaluations();
  if (top.has_best && !top.best_cost.is_inf()) {
    result.feasible = true;
    result.best = top.best;
    result.best_cost = top.best_cost;
  }
  if (top.has_second && !top.second_cost.is_inf()) {
    result.has_second = true;
    result.second = top.second;
    result.second_cost = top.second_cost;
  }
  return result;
}

}  // namespace spttn
