#include "core/enumerate.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace spttn {

namespace {

/// All admissible orderings of one term's indices.
std::vector<std::vector<int>> term_permutations(const Kernel& kernel,
                                                const PathTerm& term,
                                                bool restrict_csf) {
  std::vector<int> ids = term.refs.to_vector();
  std::sort(ids.begin(), ids.end());
  std::vector<std::vector<int>> out;
  do {
    if (restrict_csf && term.carries_sparse) {
      int last_level = -1;
      bool ok = true;
      for (int id : ids) {
        const int lvl = kernel.csf_level(id);
        if (lvl < 0) continue;
        if (lvl < last_level) {
          ok = false;
          break;
        }
        last_level = lvl;
      }
      if (!ok) continue;
    }
    out.push_back(ids);
  } while (std::next_permutation(ids.begin(), ids.end()));
  return out;
}

}  // namespace

std::uint64_t enumerate_orders(
    const Kernel& kernel, const ContractionPath& path,
    const EnumerateOptions& options,
    const std::function<void(const LoopOrder&)>& visit) {
  const int n = path.num_terms();
  std::vector<std::vector<std::vector<int>>> choices;
  choices.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    choices.push_back(
        term_permutations(kernel, path.term(i), options.restrict_csf_order));
  }
  // Odometer over the per-term choice lists.
  std::vector<std::size_t> pos(static_cast<std::size_t>(n), 0);
  LoopOrder order(static_cast<std::size_t>(n));
  std::uint64_t visited = 0;
  while (true) {
    for (int i = 0; i < n; ++i) {
      order[static_cast<std::size_t>(i)] =
          choices[static_cast<std::size_t>(i)][pos[static_cast<std::size_t>(i)]];
    }
    visit(order);
    ++visited;
    if (options.limit > 0 && visited >= options.limit) return visited;
    int i = n - 1;
    while (i >= 0) {
      if (++pos[static_cast<std::size_t>(i)] <
          choices[static_cast<std::size_t>(i)].size()) {
        break;
      }
      pos[static_cast<std::size_t>(i)] = 0;
      --i;
    }
    if (i < 0) return visited;
  }
}

double count_orders(const Kernel& kernel, const ContractionPath& path,
                    bool restrict_csf_order) {
  double total = 1;
  for (int i = 0; i < path.num_terms(); ++i) {
    const PathTerm& term = path.term(i);
    const int m = term.refs.size();
    double perms = 1;
    for (int v = 2; v <= m; ++v) perms *= v;
    if (restrict_csf_order && term.carries_sparse) {
      const int k = term.sparse_refs.size();
      double kfact = 1;
      for (int v = 2; v <= k; ++v) kfact *= v;
      perms /= kfact;
    }
    (void)kernel;
    total *= perms;
  }
  return total;
}

std::vector<LoopOrder> sample_orders(const Kernel& kernel,
                                     const ContractionPath& path,
                                     const EnumerateOptions& options,
                                     std::size_t count, Rng& rng) {
  const int n = path.num_terms();
  std::vector<std::vector<std::vector<int>>> choices;
  choices.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    choices.push_back(
        term_permutations(kernel, path.term(i), options.restrict_csf_order));
  }
  std::vector<LoopOrder> out;
  out.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    LoopOrder order(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const auto& c = choices[static_cast<std::size_t>(i)];
      order[static_cast<std::size_t>(i)] =
          c[static_cast<std::size_t>(rng.next_below(c.size()))];
    }
    out.push_back(std::move(order));
  }
  return out;
}

EnumerationSearchResult search_orders(const Kernel& kernel,
                                      const ContractionPath& path,
                                      const TreeCost& cost,
                                      const EnumerateOptions& options) {
  EnumerationSearchResult result;
  result.visited = enumerate_orders(
      kernel, path, options, [&](const LoopOrder& order) {
        const Cost c = evaluate_cost(kernel, path, order, cost);
        if (c.is_inf()) return;
        if (!result.feasible || c < result.best_cost) {
          result.feasible = true;
          result.best_cost = c;
          result.best = order;
        }
      });
  return result;
}

}  // namespace spttn
