// Algorithm 1: dynamic program finding the cost-optimal loop order for a
// fixed contraction path under a tree-separable cost function.
//
// Subproblems are (term range, set of already-iterated indices); memoization
// brings the search from O((m!)^N) loop orders down to O(N^3 2^m m)
// (paper Section 4.2).
#pragma once

#include <cstdint>

#include "core/cost.hpp"
#include "core/loop_order.hpp"

namespace spttn {

struct DpOptions {
  /// Restrict sparse-carrying terms to iterate sparse modes in CSF storage
  /// order (Section 5). On by default, matching the runtime.
  bool restrict_csf_order = true;
};

struct DpResult {
  bool feasible = false;
  LoopOrder best;
  Cost best_cost = Cost::inf();
  bool has_second = false;
  LoopOrder second;          ///< best order whose loop-nest root differs
  Cost second_cost = Cost::inf();

  // Instrumentation for the complexity experiments.
  std::int64_t subproblems = 0;   ///< distinct memoized subproblems
  std::int64_t evaluations = 0;   ///< (root, split) candidates examined
};

/// Run Algorithm 1. Returns the minimum-cost loop order (and the best
/// differently-rooted alternative) for the given contraction path.
DpResult optimal_order(const Kernel& kernel, const ContractionPath& path,
                       const TreeCost& cost, const DpOptions& options = {});

}  // namespace spttn
