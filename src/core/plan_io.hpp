// Plan persistence — serialize a planned kernel to a versioned, checksummed
// text artifact and reconstruct it in another process.
//
// A Plan is the expensive half of serving: the exhaustive path enumeration
// plus order DP that produced it is NP-hard in general (contraction
// ordering), so a restarted process that can reload winning plans skips the
// search entirely — the CoNST direction of caching generated kernels per
// (expression, format) signature, applied to our plan artifacts.
//
// The format is deliberately hostile to silent corruption:
//   - a version header (`spttn-plan v1`) so future layouts never
//     misparse as the current one,
//   - every count bounds-checked before allocation and every id range
//     checked before use, so a truncated or bit-flipped file yields a
//     structured spttn::Error, never UB,
//   - doubles stored as hex bit patterns (exact round-trip; the verifier's
//     cost-consistency checks see the planner's own values),
//   - a trailing checksum over the payload.
//
// Deserialization performs NO semantic validation beyond memory safety:
// the loop forest is rebuilt through LoopTree::assemble, and the caller
// (KernelCache::load_dir) must re-run PlanVerifier before the plan is
// allowed anywhere near an executor. This file's contract is only "what
// you get back is bit-for-bit what was saved, or an error".
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/planner.hpp"

namespace spttn {

/// Serialize `plan` (with the kernel it was planned for) to the versioned
/// text format. `meta` carries caller key/value pairs (e.g. the kernel
/// cache's planner-options hash) inside the checksummed payload; keys and
/// values must be single whitespace-free tokens.
std::string serialize_plan(
    const Kernel& kernel, const Plan& plan,
    const std::vector<std::pair<std::string, std::string>>& meta = {});

/// A deserialized plan artifact: the rebuilt kernel (dims bound), the plan,
/// and the caller meta entries in file order.
struct LoadedPlan {
  Kernel kernel;
  Plan plan;
  std::vector<std::pair<std::string, std::string>> meta;

  /// Value for `key`, or empty when absent.
  std::string meta_value(const std::string& key) const;
};

/// Parse a serialized plan. Throws spttn::Error with a line-located message
/// on any defect: wrong/missing version header, truncated input, malformed
/// fields, out-of-range ids or counts, or checksum mismatch. The returned
/// plan is structurally unvalidated (see file comment) — run PlanVerifier
/// before executing it.
LoadedPlan deserialize_plan(const std::string& text);

}  // namespace spttn
