// Exhaustive and sampled enumeration of loop orders for a contraction path
// (paper Section 4.1.2/4.1.3).
//
// Enumeration is the autotuning fallback for cost functions that are not
// tree-separable, and the ground-truth oracle against which Algorithm 1 is
// property-tested.
#pragma once

#include <cstdint>
#include <functional>

#include "core/cost.hpp"
#include "core/loop_order.hpp"

namespace spttn {

class Rng;

struct EnumerateOptions {
  /// Only orders where sparse-carrying terms iterate sparse modes in CSF
  /// storage order (Section 5 restriction).
  bool restrict_csf_order = true;
  /// Stop after visiting this many orders (0 = unlimited).
  std::uint64_t limit = 0;
};

/// Visit every loop order of the path (cartesian product of per-term
/// permutations). Returns the number visited.
std::uint64_t enumerate_orders(const Kernel& kernel,
                               const ContractionPath& path,
                               const EnumerateOptions& options,
                               const std::function<void(const LoopOrder&)>& visit);

/// Count without visiting: product over terms of |I_i|! (or |I_i|!/k_i! with
/// the CSF restriction, k_i = number of sparse-carrying sparse refs).
double count_orders(const Kernel& kernel, const ContractionPath& path,
                    bool restrict_csf_order);

/// Uniformly sample `count` loop orders (with replacement over the order
/// space) — used by the Figure-10 experiment.
std::vector<LoopOrder> sample_orders(const Kernel& kernel,
                                     const ContractionPath& path,
                                     const EnumerateOptions& options,
                                     std::size_t count, Rng& rng);

/// Result of brute-force search over all loop orders.
struct EnumerationSearchResult {
  bool feasible = false;
  LoopOrder best;
  Cost best_cost = Cost::inf();
  std::uint64_t visited = 0;
};

/// Minimum-cost order by exhaustive evaluation (the oracle for the DP).
EnumerationSearchResult search_orders(const Kernel& kernel,
                                      const ContractionPath& path,
                                      const TreeCost& cost,
                                      const EnumerateOptions& options);

}  // namespace spttn
