// Tree-separable cost functions over fully-fused loop nests
// (paper Definitions 4.4, 4.5, 4.6 and the Section-5 experiment metric).
//
// A cost model supplies phi (applied when a root loop is peeled) and an
// associative combine for sibling trees. Both must be nondecreasing, which
// is what makes Algorithm 1 exact. Cost values are lexicographic triples so
// feasibility filters, loop-structure rewards and cache models compose.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "core/contraction_path.hpp"
#include "core/loop_order.hpp"
#include "util/index_set.hpp"

namespace spttn {

/// Lexicographically ordered cost value. Models use the fields they need;
/// unused fields stay zero.
struct Cost {
  double primary = 0;
  double secondary = 0;
  double tertiary = 0;

  static Cost inf() {
    return {std::numeric_limits<double>::infinity(), 0, 0};
  }
  bool is_inf() const { return std::isinf(primary); }

  friend bool operator<(const Cost& a, const Cost& b) {
    if (a.primary != b.primary) return a.primary < b.primary;
    if (a.secondary != b.secondary) return a.secondary < b.secondary;
    return a.tertiary < b.tertiary;
  }
  friend bool operator==(const Cost& a, const Cost& b) {
    return a.primary == b.primary && a.secondary == b.secondary &&
           a.tertiary == b.tertiary;
  }
  std::string to_string() const;
};

/// Context for one peeling step. The current subproblem covers terms
/// [first, last) with `removed` already iterated by enclosing loops; the
/// root loop over index `root` covers terms [first, split_end).
struct PeelContext {
  const Kernel* kernel = nullptr;
  const ContractionPath* path = nullptr;
  int first = 0;
  int split_end = 0;
  int last = 0;
  IndexSet removed;
  int root = -1;
};

/// Context when a term whose indices are all removed executes directly at
/// the current position (Algorithm 1 line 5).
struct DropContext {
  const Kernel* kernel = nullptr;
  const ContractionPath* path = nullptr;
  int term = 0;
  int last = 0;
  IndexSet removed;
};

/// Interface of a tree-separable cost function (Definition 4.4).
class TreeCost {
 public:
  virtual ~TreeCost() = default;

  /// phi_{T,L,r}: wrap the combined cost of the subtrees under the peeled
  /// root. Must be nondecreasing in x.
  virtual Cost phi(const PeelContext& ctx, const Cost& x) const = 0;

  /// ⊕: combine sibling trees of a forest. Associative, nondecreasing.
  virtual Cost combine(const Cost& a, const Cost& b) const = 0;

  /// Identity of ⊕ (cost of the empty forest).
  virtual Cost zero() const = 0;

  /// Adjustment when a fully-iterated term executes in place (its output is
  /// a scalar buffer). Default: no contribution.
  virtual Cost drop(const DropContext& ctx, const Cost& x) const {
    (void)ctx;
    return x;
  }

  virtual std::string name() const = 0;
};

/// Buffer dimensions of intermediates crossing the current peel:
/// for producers in [first, split_end) whose consumer lies in
/// [split_end, last), the buffer index count |out(p) \ removed| (Eq. 5).
int crossing_buffer_dim(const PeelContext& ctx);
/// Same, but the element count (product of index dimensions).
double crossing_buffer_size(const PeelContext& ctx);

/// Definition 4.5: maximum intermediate-tensor dimension.
/// phi = max(rho, x), ⊕ = max.
class MaxBufferDimCost final : public TreeCost {
 public:
  Cost phi(const PeelContext& ctx, const Cost& x) const override;
  Cost combine(const Cost& a, const Cost& b) const override;
  Cost zero() const override { return {}; }
  std::string name() const override { return "max-buffer-dim"; }
};

/// Definition 4.5 variant: maximum intermediate-tensor element count.
class MaxBufferSizeCost final : public TreeCost {
 public:
  Cost phi(const PeelContext& ctx, const Cost& x) const override;
  Cost combine(const Cost& a, const Cost& b) const override;
  Cost zero() const override { return {}; }
  Cost drop(const DropContext& ctx, const Cost& x) const override;
  std::string name() const override { return "max-buffer-size"; }
};

/// Definition 4.6: total cache misses under the paper's model — the cache
/// holds subtensors of size I^D; a loop over r incurs one miss per iteration
/// for every tensor indexed by r that still has more than D unbound indices.
/// phi = I(r) * (tau + x), ⊕ = +.
///
/// Extension (the paper notes the model "can be extended"): when
/// buffer_traffic is set, each intermediate crossing a peel also charges
/// its zero + stream traffic (2 * elements / 8 line-sized misses) at its
/// deepest common ancestor, so frequently reset large workspaces are
/// penalized. This remains tree-separable (an additive term of the peel).
class CacheMissCost final : public TreeCost {
 public:
  /// `d` is the model's subtensor order D. When `stats` is provided and
  /// sparse_aware is true, sparse loops use expected CSF fan-out instead of
  /// the dense dimension for I(r).
  explicit CacheMissCost(int d = 1, const SparsityStats* stats = nullptr,
                         bool sparse_aware = false,
                         bool buffer_traffic = true)
      : d_(d),
        stats_(stats),
        sparse_aware_(sparse_aware),
        buffer_traffic_(buffer_traffic) {}

  Cost phi(const PeelContext& ctx, const Cost& x) const override;
  Cost combine(const Cost& a, const Cost& b) const override;
  Cost zero() const override { return {}; }
  std::string name() const override { return "cache-miss"; }

  /// Effective trip count of a loop (dense dim, or CSF fan-out when
  /// sparse-aware). Exposed for tests.
  double loop_extent(const PeelContext& ctx) const;

 private:
  int d_;
  const SparsityStats* stats_;
  bool sparse_aware_;
  bool buffer_traffic_;
};

/// The Section-5 experiment metric: among loop nests whose intermediate
/// dimensions are all <= bound, prefer the maximum number of independent
/// dense loops (loops covering a single term — BLAS offload candidates),
/// then the fewest modeled cache misses.
///   primary   : +inf when any crossing buffer dim exceeds the bound
///   secondary : minus the number of independent dense loops
///   tertiary  : cache misses (Definition 4.6)
class BoundedBufferBlasCost final : public TreeCost {
 public:
  BoundedBufferBlasCost(int buffer_dim_bound, int d = 1,
                        const SparsityStats* stats = nullptr,
                        bool sparse_aware = false)
      : bound_(buffer_dim_bound), cache_(d, stats, sparse_aware) {}

  Cost phi(const PeelContext& ctx, const Cost& x) const override;
  Cost combine(const Cost& a, const Cost& b) const override;
  Cost zero() const override { return {}; }
  std::string name() const override { return "bounded-buffer-blas"; }

  int bound() const { return bound_; }

 private:
  int bound_;
  CacheMissCost cache_;
};

/// Evaluate a complete loop order against a cost model by recursive peeling
/// (Definition 4.4). Independent of the DP — used for enumeration-based
/// search and as the property-test oracle for Algorithm 1.
Cost evaluate_cost(const Kernel& kernel, const ContractionPath& path,
                   const LoopOrder& order, const TreeCost& cost);

}  // namespace spttn
