// Cost-bounded anytime planner search (ROADMAP item 4, in the spirit of
// Pfeifer et al.'s pruned breadth-first search over contraction sequences).
//
// Three phases:
//   1. Greedy restarts: cost-model descent over pair contractions (restart
//      0 pure, later restarts jitter the pair scores with Rng(seed ^ r)),
//      keeping only pair choices whose term stays CSF-prefix executable.
//      Each completed descent is an executable path — a feasible incumbent
//      exists microseconds in, before any breadth-first work.
//   2. Deduplicated BFS over partial contraction sequences. Children are
//      built exactly like enumerate_rec's terms; a child is pruned when its
//      term violates the per-term CSF-prefix rule (no completion of that
//      prefix is executable, so the prune is exact), when its canonical
//      tree signature was already reached (orderings of the same
//      contraction tree have identical flops and executability — one
//      representative suffices), or — only under a budget — when its
//      partial FLOP estimate already exceeds the incumbent's group
//      tolerance or the per-level beam overflows. Partial flops are
//      monotone additive, so every pruned or unexpanded state's flops is an
//      admissible lower bound on its completions; the minimum over dropped
//      states yields the reported optimality gap.
//   3. The exact strategy's group-and-relax order DP over the discovered
//      paths: sort by flops, group by flop_group_tolerance, DP group by
//      group inside the buffer-bound relaxation loop, return the first
//      feasible group's best-cost nest. With an unlimited budget nothing is
//      dropped, the discovered set covers every distinct contraction tree,
//      and the chosen cost matches the exact strategy's.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/planner_strategy.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace spttn {

namespace {

using Clock = std::chrono::steady_clock;

/// One operand in a partial contraction sequence, plus the canonical
/// signature of the contraction subtree that produced it (inputs hash their
/// id; merges hash the unordered child pair and the output index set, so
/// every ordering of the same tree folds to one signature).
struct Operand {
  PathOperand op;
  bool carries_sparse = false;
  std::uint64_t sig = 0;
};

/// A partial contraction sequence: remaining operands, terms so far, and
/// the accumulated FLOP estimate (term-ordered sum, bit-equal to
/// path_flops over the completed path).
struct State {
  std::vector<Operand> items;
  std::vector<PathTerm> terms;
  double flops = 0;
};

/// A discovered complete executable path.
struct Found {
  ContractionPath path;
  double flops = 0;
  std::uint64_t sig = 0;
};

std::uint64_t input_sig(int input_id) {
  return hash_mix(0x5eedfeedULL ^ static_cast<std::uint64_t>(input_id));
}

std::uint64_t merge_sig(std::uint64_t a, std::uint64_t b, IndexSet out) {
  const std::uint64_t lo = std::min(a, b);
  const std::uint64_t hi = std::max(a, b);
  return hash_mix(hash_mix(lo ^ 0xa5a5a5a5a5a5a5a5ULL) ^ hash_mix(hi) ^
                  out.bits());
}

/// Order-insensitive signature of a state's operand multiset. The operand
/// sigs are Merkle over subtree structure, so equal multisets mean equal
/// sets of completions.
std::uint64_t state_sig(const std::vector<Operand>& items) {
  std::uint64_t sum = 0;
  std::uint64_t x = 0;
  for (const Operand& it : items) {
    const std::uint64_t m = hash_mix(it.sig);
    sum += m;
    x ^= hash_mix(m ^ 0x94d049bb133111ebULL);
  }
  return hash_mix(sum) ^ x;
}

/// Build the term contracting items[a] * items[b], exactly as
/// enumerate_rec does. Returns false when the term breaks the per-term
/// CSF-prefix rule — no completion of such a prefix passes
/// csf_prefix_executable, so callers drop the child outright.
bool make_term(const Kernel& kernel, const std::vector<Operand>& items,
               std::size_t a, std::size_t b, PathTerm* term) {
  IndexSet needed = kernel.output_indices();
  for (std::size_t c = 0; c < items.size(); ++c) {
    if (c == a || c == b) continue;
    needed |= items[c].op.iset;
  }
  term->lhs = items[a].op;
  term->rhs = items[b].op;
  term->refs = items[a].op.iset | items[b].op.iset;
  term->out = term->refs & needed;
  term->carries_sparse = items[a].carries_sparse || items[b].carries_sparse;
  term->sparse_refs = term->refs & kernel.sparse_modes();
  if (!term->carries_sparse) return true;
  const auto& csf_order = kernel.sparse_ref().idx;
  IndexSet prefix;
  const int k = term->sparse_refs.size();
  for (int l = 0; l < k; ++l) {
    prefix.insert(csf_order[static_cast<std::size_t>(l)]);
  }
  return term->sparse_refs == prefix;
}

/// FLOP increment of one term; matches path_flops' per-term body so the
/// state's running sum equals path_flops of the completed path.
double term_flops(const Kernel& kernel, const PathTerm& t,
                  const SparsityStats& stats) {
  double iters = 1;
  if (!t.sparse_refs.empty()) {
    std::uint64_t level_mask = 0;
    for (int id : t.sparse_refs.elements()) {
      const int lvl = kernel.csf_level(id);
      SPTTN_CHECK(lvl >= 0);
      level_mask |= (std::uint64_t{1} << lvl);
    }
    iters *= static_cast<double>(stats.projection_nnz(level_mask));
  }
  for (int id : (t.refs - t.sparse_refs).elements()) {
    iters *= static_cast<double>(kernel.index_dim(id));
  }
  return 2.0 * iters;
}

/// Apply `term` to `s` (remove b, replace a with the merged intermediate),
/// mirroring enumerate_rec's list reduction.
State apply_term(const State& s, std::size_t a, std::size_t b,
                 const PathTerm& term, double d_flops) {
  State next;
  next.terms = s.terms;
  next.terms.push_back(term);
  next.flops = s.flops + d_flops;
  Operand merged;
  merged.op.kind = PathOperand::Kind::kIntermediate;
  merged.op.id = static_cast<int>(s.terms.size());
  merged.op.iset = term.out;
  merged.carries_sparse = term.carries_sparse;
  merged.sig = merge_sig(s.items[a].sig, s.items[b].sig, term.out);
  next.items.reserve(s.items.size() - 1);
  for (std::size_t c = 0; c < s.items.size(); ++c) {
    if (c == b) continue;
    next.items.push_back(c == a ? merged : s.items[c]);
  }
  return next;
}

State initial_state(const Kernel& kernel) {
  State s;
  s.items.reserve(static_cast<std::size_t>(kernel.num_inputs()));
  for (int i = 0; i < kernel.num_inputs(); ++i) {
    Operand it;
    it.op.kind = PathOperand::Kind::kInput;
    it.op.id = i;
    it.op.iset = kernel.input(i).iset;
    it.carries_sparse = (i == kernel.sparse_input());
    it.sig = input_sig(i);
    s.items.push_back(it);
  }
  return s;
}

/// Greedy completion of `s`: repeatedly apply the cheapest valid pair
/// (scores jittered multiplicatively when rng != nullptr). Returns true and
/// appends to `out` when a complete path is reached; false on a dead end
/// (no CSF-valid pair at some step).
bool greedy_complete(const Kernel& kernel, const SparsityStats& stats,
                     State s, Rng* rng, std::vector<Found>* out) {
  while (s.items.size() > 1) {
    bool have = false;
    std::size_t best_a = 0;
    std::size_t best_b = 0;
    PathTerm best_term;
    double best_d = 0;
    double best_score = std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < s.items.size(); ++a) {
      for (std::size_t b = a + 1; b < s.items.size(); ++b) {
        PathTerm term;
        if (!make_term(kernel, s.items, a, b, &term)) continue;
        const double d = term_flops(kernel, term, stats);
        const double score =
            rng == nullptr ? d : d * (1.0 + rng->next_double());
        if (!have || score < best_score) {
          have = true;
          best_a = a;
          best_b = b;
          best_term = term;
          best_d = d;
          best_score = score;
        }
      }
    }
    if (!have) return false;
    s = apply_term(s, best_a, best_b, best_term, best_d);
  }
  Found f;
  f.path.terms = std::move(s.terms);
  f.flops = s.flops;
  f.sig = s.items.front().sig;
  out->push_back(std::move(f));
  return true;
}

/// Exhaustive first-success completion with backtracking, in deterministic
/// pair order. The greedy descent can dead-end on every restart (a locally
/// cheap pair may exclude every later CSF-valid pair — tttc4 does this), so
/// the feasibility guarantee needs a completion that backtracks. Returns on
/// the FIRST complete path, so the cost is bounded by the dead-end depth,
/// not the full path space.
bool dfs_complete(const Kernel& kernel, const SparsityStats& stats,
                  const State& s, std::vector<Found>* out) {
  if (s.items.size() == 1) {
    Found f;
    f.path.terms = s.terms;
    f.flops = s.flops;
    f.sig = s.items.front().sig;
    out->push_back(std::move(f));
    return true;
  }
  for (std::size_t a = 0; a < s.items.size(); ++a) {
    for (std::size_t b = a + 1; b < s.items.size(); ++b) {
      PathTerm term;
      if (!make_term(kernel, s.items, a, b, &term)) continue;
      const double d = term_flops(kernel, term, stats);
      if (dfs_complete(kernel, stats, apply_term(s, a, b, term, d), out)) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

Plan AnytimeStrategy::plan(const Kernel& kernel, const SparsityStats& stats,
                           const PlannerOptions& options) const {
  const Clock::time_point start = Clock::now();
  const bool limited = !options.budget.unlimited();
  const bool timed = options.budget.max_millis > 0;
  const Clock::time_point deadline =
      timed ? start + std::chrono::milliseconds(options.budget.max_millis)
            : Clock::time_point::max();

  const State init = initial_state(kernel);
  SPTTN_CHECK_MSG(init.items.size() >= 2,
                  "no single-CSF executable contraction path for kernel "
                      << kernel.to_string());

  // Phase 1: greedy restarts. Dedup against already-found trees so stats
  // count distinct paths.
  std::vector<Found> found;
  std::unordered_set<std::uint64_t> found_sigs;
  const int restarts = std::max(0, options.anytime_restarts);
  for (int r = 0; r < restarts; ++r) {
    std::vector<Found> one;
    Rng rng(options.anytime_seed ^ static_cast<std::uint64_t>(r));
    if (!greedy_complete(kernel, stats, init, r == 0 ? nullptr : &rng, &one)) {
      continue;
    }
    if (found_sigs.insert(one.front().sig).second) {
      found.push_back(std::move(one.front()));
    }
  }
  double incumbent_flops = std::numeric_limits<double>::infinity();
  for (const Found& f : found) incumbent_flops = std::min(incumbent_flops, f.flops);

  // Phase 2: pruned, deduplicated BFS.
  std::int64_t nodes = 0;
  bool budget_exhausted = false;
  bool dropped_any = false;
  double lb_dropped = std::numeric_limits<double>::infinity();
  const auto drop = [&](double partial_flops) {
    dropped_any = true;
    lb_dropped = std::min(lb_dropped, partial_flops);
  };
  const auto over_budget = [&] {
    if (options.budget.max_nodes > 0 && nodes >= options.budget.max_nodes) {
      return true;
    }
    return timed && Clock::now() >= deadline;
  };

  std::unordered_set<std::uint64_t> seen;
  seen.insert(state_sig(init.items));
  std::vector<State> frontier;
  frontier.push_back(init);
  while (!frontier.empty() && !budget_exhausted) {
    std::vector<State> next;
    for (std::size_t si = 0; si < frontier.size(); ++si) {
      // Always expand at least one node so the lower bound rests on real
      // depth-1 states, then honor the budget between expansions.
      if (nodes > 0 && over_budget()) {
        budget_exhausted = true;
        for (std::size_t sj = si; sj < frontier.size(); ++sj) {
          drop(frontier[sj].flops);
        }
        break;
      }
      const State& s = frontier[si];
      ++nodes;
      const double prune_limit =
          limited ? incumbent_flops * options.flop_group_tolerance
                  : std::numeric_limits<double>::infinity();
      for (std::size_t a = 0; a < s.items.size(); ++a) {
        for (std::size_t b = a + 1; b < s.items.size(); ++b) {
          PathTerm term;
          if (!make_term(kernel, s.items, a, b, &term)) continue;
          const double d = term_flops(kernel, term, stats);
          const double child_flops = s.flops + d;
          if (child_flops >= prune_limit) {
            drop(child_flops);
            continue;
          }
          State child = apply_term(s, a, b, term, d);
          if (child.items.size() == 1) {
            const std::uint64_t sig = child.items.front().sig;
            if (!found_sigs.insert(sig).second) continue;
            Found f;
            f.path.terms = std::move(child.terms);
            f.flops = child.flops;
            f.sig = sig;
            incumbent_flops = std::min(incumbent_flops, f.flops);
            found.push_back(std::move(f));
          } else {
            if (!seen.insert(state_sig(child.items)).second) continue;
            next.push_back(std::move(child));
          }
        }
      }
    }
    if (budget_exhausted) {
      for (const State& s : next) drop(s.flops);
      break;
    }
    if (limited && options.anytime_beam > 0 &&
        next.size() > static_cast<std::size_t>(options.anytime_beam)) {
      // Keep the cheapest states; the dropped tail feeds the lower bound.
      // stable_sort keeps insertion order among equal flops, so the beam is
      // deterministic.
      std::stable_sort(next.begin(), next.end(),
                       [](const State& x, const State& y) {
                         return x.flops < y.flops;
                       });
      for (std::size_t i = static_cast<std::size_t>(options.anytime_beam);
           i < next.size(); ++i) {
        drop(next[i].flops);
      }
      next.resize(static_cast<std::size_t>(options.anytime_beam));
    }
    frontier.swap(next);
  }

  // Feasibility guarantee under a budget: if nothing completed yet, finish
  // the cheapest surviving prefix (backtracking first-success descent, far
  // cheaper than another BFS level); if every frontier prefix is dead —
  // possible when beam truncation dropped the only viable ones — restart
  // the descent from the root, which succeeds iff any executable path
  // exists at all.
  if (found.empty() && budget_exhausted) {
    std::stable_sort(frontier.begin(), frontier.end(),
                     [](const State& x, const State& y) {
                       return x.flops < y.flops;
                     });
    for (const State& s : frontier) {
      std::vector<Found> one;
      if (dfs_complete(kernel, stats, s, &one) &&
          found_sigs.insert(one.front().sig).second) {
        found.push_back(std::move(one.front()));
        break;
      }
    }
    if (found.empty()) {
      std::vector<Found> one;
      if (dfs_complete(kernel, stats, init, &one) &&
          found_sigs.insert(one.front().sig).second) {
        found.push_back(std::move(one.front()));
      }
    }
  }
  SPTTN_CHECK_MSG(!found.empty(),
                  "no single-CSF executable contraction path for kernel "
                      << kernel.to_string());

  // Phase 3: the exact strategy's group-and-relax DP over the discovered
  // paths. Stable sort by flops keeps discovery order among ties, so the
  // whole phase is deterministic for a node-budgeted search.
  std::vector<std::size_t> order(found.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) {
                     return found[x].flops < found[y].flops;
                   });
  std::vector<std::vector<const ContractionPath*>> groups;
  std::vector<double> group_flops;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const double f = found[order[i]].flops;
    if (groups.empty() || f > group_flops.back() * options.flop_group_tolerance) {
      groups.emplace_back();
      group_flops.push_back(f);
    }
    groups.back().push_back(&found[order[i]].path);
    if (options.max_paths_searched > 0 &&
        static_cast<int>(i) + 1 >= options.max_paths_searched) {
      break;
    }
  }

  Plan plan;
  plan.strategy = StrategyKind::kAnytime;
  plan.paths_total = static_cast<int>(found.size());
  plan.paths_executable = static_cast<int>(found.size());
  DpOptions dp_options;
  dp_options.restrict_csf_order = options.restrict_csf_order;
  PlannerOptions effective = options;
  const int max_bound =
      std::max(options.buffer_dim_bound, kernel.num_indices());
  SearchStats search;
  bool planned = false;
  for (int bound = options.buffer_dim_bound;
       bound <= max_bound && !planned; ++bound) {
    effective.buffer_dim_bound = bound;
    const std::unique_ptr<TreeCost> cost = make_cost_model(effective, &stats);
    for (const auto& group : groups) {
      bool group_found = false;
      for (const ContractionPath* p : group) {
        const DpResult r = optimal_order(kernel, *p, *cost, dp_options);
        search.paths_searched += 1;
        search.dp_subproblems += r.subproblems;
        search.dp_evaluations += r.evaluations;
        if (!r.feasible) continue;
        search.paths_feasible += 1;
        if (!group_found || r.best_cost < plan.cost) {
          plan.path = *p;
          plan.order = r.best;
          plan.cost = r.best_cost;
          group_found = true;
        }
      }
      if (group_found) {
        plan.buffer_dim_bound = bound;
        planned = true;
        break;
      }
    }
    if (!options.allow_bound_relaxation ||
        options.cost != CostKind::kBoundedBufferBlas) {
      break;
    }
  }
  SPTTN_CHECK_MSG(planned, "no feasible loop nest found for kernel "
                               << kernel.to_string());

  plan.paths_searched = search.paths_searched;
  plan.paths_feasible = search.paths_feasible;
  plan.dp_subproblems = search.dp_subproblems;
  plan.dp_evaluations = search.dp_evaluations;
  plan.flops = path_flops(kernel, plan.path, stats);
  plan.sparsity_fingerprint = stats.fingerprint();
  plan.tree = LoopTree::build(kernel, plan.path, plan.order);

  // Gap: cheapest discovered path vs the admissible bound on anything the
  // search did not look at. A completed search drops nothing, so the bound
  // equals the best and the gap is zero (flop-optimality proven).
  const double best_found = found[order.front()].flops;
  double lb = best_found;
  if (dropped_any) lb = std::min(lb, lb_dropped);
  plan.nodes_expanded = nodes;
  plan.restarts = restarts;
  plan.flops_lower_bound = lb;
  plan.optimality_gap = lb > 0 ? best_found / lb - 1.0 : 0.0;
  plan.budget_exhausted = budget_exhausted;
  return plan;
}

}  // namespace spttn
