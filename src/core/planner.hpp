// The SpTTN planner (paper Section 5): enumerate contraction paths, keep
// the asymptotically cheapest executable ones, and pick the loop nest that
// minimizes the configured tree-separable cost via Algorithm 1, falling back
// to costlier paths (and looser buffer bounds) when constrained.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/contraction_path.hpp"
#include "core/cost.hpp"
#include "core/loop_tree.hpp"
#include "core/order_dp.hpp"

namespace spttn {

enum class CostKind {
  kMaxBufferDim,
  kMaxBufferSize,
  kCacheMiss,
  kBoundedBufferBlas,  ///< the paper's experiment metric (default)
};

/// Which search produces the plan (see core/planner_strategy.hpp).
enum class StrategyKind {
  /// Exhaustive path enumeration + order DP — optimal, but the path count
  /// is n!(n-1)!/2^(n-1) in the input count, so order-8 networks are out
  /// of reach.
  kExact,
  /// Pruned breadth-first search over contraction sequences with
  /// cost-model-seeded randomized restarts, under a PlanningBudget, with a
  /// reported optimality gap (Pfeifer-style; ROADMAP item 4).
  kAnytime,
};

/// Resource limits for the anytime search. Zero means unlimited; with both
/// limits zero the anytime search runs to completion (every distinct
/// contraction tree) and its best cost matches the exact strategy's.
struct PlanningBudget {
  /// Wall-clock deadline for the search in milliseconds. The final
  /// order-DP pass always runs far enough to return at least one feasible
  /// plan, so a slight overrun is possible — the guarantee is "a verified
  /// feasible plan, promptly", never "an exception at the deadline".
  /// Makes the search timing-dependent, hence nondeterministic.
  std::int64_t max_millis = 0;
  /// Deterministic alternative: cap on BFS node expansions. With a fixed
  /// seed the resulting plan is bit-identical across runs.
  std::int64_t max_nodes = 0;

  bool unlimited() const { return max_millis <= 0 && max_nodes <= 0; }
};

struct PlannerOptions {
  CostKind cost = CostKind::kBoundedBufferBlas;
  /// Intermediate-dimension bound for kBoundedBufferBlas (paper uses 2).
  int buffer_dim_bound = 2;
  /// Relax the bound (up to the kernel's index count) when no loop nest
  /// fits; mirrors the runtime's constraint-relaxation loop.
  bool allow_bound_relaxation = true;
  /// Sparse-carrying terms iterate sparse modes in CSF order.
  bool restrict_csf_order = true;
  /// Paths whose FLOP estimate is within this factor of the best are
  /// considered the same asymptotic-cost group and compared by the cost
  /// model (constant-factor flop differences are the cost model's job;
  /// asymptotically worse paths differ by whole index extents and fall
  /// outside the group).
  double flop_group_tolerance = 3.0;
  /// Cache-model subtensor order D (Definition 4.6).
  int cache_d = 1;
  /// Use CSF fan-outs instead of dense dims for sparse loop trip counts.
  bool sparse_aware_cache = true;
  /// Safety cap on DP invocations across path groups (0 = unlimited).
  int max_paths_searched = 256;
  /// Search parallelism: the executable-path filter, the per-path FLOP
  /// estimation, and the order DPs of each relaxation wave run
  /// concurrently on the process-wide ThreadPool (waves of geometrically
  /// growing group count; wave 1 is just the optimal-complexity group).
  /// Results are merged in enumeration/group/path order and speculative
  /// trailing groups are discarded, so the chosen Plan and the SearchStats
  /// are identical to a sequential search regardless of this setting.
  /// 1 = sequential; any other value fans out on the pool (whose lane
  /// count, set by hardware or SPTTN_THREADS, is the concurrency bound).
  int search_threads = 0;
  /// Run the static plan verifier (analysis/plan_verifier.hpp) on the
  /// chosen plan before make_plan returns, throwing spttn::Error on any
  /// error diagnostic. Debug builds always verify; this flag opts Release
  /// builds in (a few hundred microseconds per plan, see BENCH_verify).
  /// Excluded from planner_options_hash: verification never changes the
  /// plan, so it must not fragment the kernel cache.
  bool verify = false;
  /// Execute through the lowered tier (flat pre-resolved programs with
  /// specialized inner kernels, exec/lower.hpp) instead of the interpreter.
  /// Tier selection is per execution (ExecArgs::tier) and results are
  /// bit-identical across tiers, so — like `verify` — this knob is
  /// excluded from planner_options_hash and toggling it never fragments
  /// the kernel cache; both settings share one cached executor.
  bool lower = true;
  /// Search strategy. The anytime fields below only take effect (and only
  /// enter planner_options_hash) when this is kAnytime: under kExact they
  /// are inert, so toggling them must not fragment the kernel cache, while
  /// under kAnytime they change the chosen plan and must key it.
  StrategyKind strategy = StrategyKind::kExact;
  /// Anytime search budget (ignored by kExact).
  PlanningBudget budget;
  /// Seed for the anytime strategy's randomized restarts. With
  /// budget.max_millis == 0 the whole anytime search is deterministic in
  /// this seed (bit-identical plans and stats across runs).
  std::uint64_t anytime_seed = 42;
  /// Greedy restart count for the anytime strategy (restart 0 is pure
  /// cost-model descent; later restarts jitter the pair scores).
  int anytime_restarts = 4;
  /// Frontier cap per BFS level when a budget is set (0 = uncapped).
  /// Truncation keeps the cheapest states and folds the dropped ones into
  /// the reported lower bound, so the gap stays admissible.
  int anytime_beam = 4096;
};

/// Statistics of one DP search over a group of contraction paths.
struct SearchStats {
  int paths_searched = 0;       ///< paths run through the DP
  int paths_feasible = 0;       ///< paths admitting a loop nest under the bound
  std::int64_t dp_subproblems = 0;
  std::int64_t dp_evaluations = 0;

  // Anytime-strategy diagnostics; all zero under the exact strategy.
  std::int64_t nodes_expanded = 0;  ///< BFS states expanded
  int restarts = 0;                 ///< greedy restarts attempted
  /// Admissible lower bound on any executable path's FLOP estimate: partial
  /// path flops are monotone additive, so the cheapest pruned/unexpanded
  /// prefix bounds everything the search did not look at.
  double flops_lower_bound = 0;
  /// best_flops / flops_lower_bound - 1. Zero means the search completed
  /// without dropping states — the flop estimate is proven optimal.
  double optimality_gap = 0;
  bool budget_exhausted = false;    ///< a PlanningBudget limit stopped the BFS
};

/// A fully planned SpTTN execution.
struct Plan {
  ContractionPath path;
  LoopOrder order;
  LoopTree tree;
  Cost cost;
  double flops = 0;            ///< estimated scalar operations
  int buffer_dim_bound = 0;    ///< bound in effect when planned
  /// Structure fingerprint of the sparsity stats the plan was derived from
  /// (SparsityStats::fingerprint()); 0 when planned from modeled stats.
  /// The executor checks it against the CSF it is handed (see
  /// FusedExecutor::execute), so a cached plan cannot silently run against
  /// a structurally different tensor.
  std::uint64_t sparsity_fingerprint = 0;

  // Search diagnostics.
  int paths_total = 0;          ///< enumerated contraction paths
  int paths_executable = 0;     ///< single-CSF executable paths
  int paths_searched = 0;       ///< paths run through the DP
  int paths_feasible = 0;       ///< searched paths with a feasible nest
  std::int64_t dp_subproblems = 0;
  std::int64_t dp_evaluations = 0;

  /// Strategy that produced the plan, plus the anytime diagnostics (zero
  /// under kExact; see SearchStats for semantics). plan_io serializes them
  /// in an optional trailing record only when strategy != kExact, so exact
  /// plan artifacts are byte-identical to the pre-strategy format.
  StrategyKind strategy = StrategyKind::kExact;
  std::int64_t nodes_expanded = 0;
  int restarts = 0;
  double flops_lower_bound = 0;
  double optimality_gap = 0;
  bool budget_exhausted = false;

  /// Render the chosen loop nest with costs, in the style of the listings.
  std::string describe(const Kernel& kernel) const;
};

/// Instantiate the cost model named by options (stats may be null for
/// models that do not need it).
std::unique_ptr<TreeCost> make_cost_model(const PlannerOptions& options,
                                          const SparsityStats* stats);

/// Plan a kernel through the strategy selected by `options.strategy`
/// (core/planner_strategy.hpp). `stats` supplies the sparsity statistics of
/// the sparse operand (exact or modeled). Throws spttn::Error when the
/// kernel admits no executable loop nest. The chosen plan is verified by
/// the static plan verifier in Debug builds, when `options.verify` is set,
/// and always for anytime plans — a non-exhaustive search is only safe to
/// serve behind the full static gate.
Plan make_plan(const Kernel& kernel, const SparsityStats& stats,
               const PlannerOptions& options = {});

/// All single-CSF-executable contraction paths sorted by estimated FLOPs
/// (cheapest first). Exposed for benches and the autotuner. `threads`
/// follows PlannerOptions::search_threads semantics (1 = sequential,
/// anything else fans the per-path filter and FLOP estimates out over the
/// process pool); the returned list is identical either way. `flops_out`,
/// when non-null, receives each returned path's FLOP estimate (same
/// order), saving callers that group by cost a second estimation sweep.
std::vector<ContractionPath> executable_paths(
    const Kernel& kernel, const SparsityStats& stats,
    int* total_paths = nullptr, int threads = 1,
    std::vector<double>* flops_out = nullptr);

}  // namespace spttn
