// Loop orders for a contraction path (paper Definition 3.2) and the peeling
// primitive (Definition 4.1) that decomposes them.
#pragma once

#include <string>
#include <vector>

#include "core/contraction_path.hpp"
#include "tensor/einsum.hpp"

namespace spttn {

/// A loop order A = (A_1, ..., A_N): one ordered index list per path term;
/// A_i must be a permutation of term i's referenced indices.
using LoopOrder = std::vector<std::vector<int>>;

/// Result of one peeling step (Definition 4.1): the terms covered by the
/// shared leading index (with that index stripped) and the remainder.
struct PeelResult {
  int root = -1;          ///< the shared leading index A_1[1]
  int covered = 0;        ///< r: number of terms under the root
  LoopOrder under_root;   ///< A^(1): covered terms, leading index removed
  LoopOrder remainder;    ///< A^(2): terms r+1..N untouched
};

/// Peel the leading loop. Requires a non-empty order whose first term has a
/// non-empty index list.
PeelResult peel(const LoopOrder& order);

/// Validate that `order` is a loop order for `path`: one entry per term,
/// each a permutation of the term's refs.
bool is_valid_order(const ContractionPath& path, const LoopOrder& order);

/// True when within every sparse-carrying term's A_i the kernel's
/// sparse-mode indices appear in CSF storage order (the restriction the
/// runtime imposes, Section 5). Dense-only terms iterate sparse-mode indices
/// as dense ranges, so no restriction applies to them.
bool respects_csf_order(const Kernel& kernel, const ContractionPath& path,
                        const LoopOrder& order);

/// Render "((i,j,k,s),(i,j,s,r))" for logging and tests.
std::string order_to_string(const Kernel& kernel, const LoopOrder& order);

}  // namespace spttn
