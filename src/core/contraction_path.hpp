// Contraction paths for SpTTN kernels (paper Definition 3.1, Section 4.1.1).
//
// A contraction path orders the N pairwise contractions that combine the
// N+1 input tensors. Each term L_i records its two operands, the union of
// referenced indices, and its output index set (indices alive afterwards).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "tensor/coo_tensor.hpp"
#include "tensor/einsum.hpp"
#include "util/index_set.hpp"

namespace spttn {

/// One operand of a path term: either an original kernel input or the
/// intermediate produced by an earlier term.
struct PathOperand {
  enum class Kind { kInput, kIntermediate };
  Kind kind = Kind::kInput;
  int id = 0;  ///< input position, or producing term index
  IndexSet iset;

  bool operator==(const PathOperand&) const = default;
};

/// One contraction term L_i = (u, v, w).
struct PathTerm {
  PathOperand lhs;
  PathOperand rhs;
  IndexSet refs;  ///< u ∪ v: every index looped by this term
  IndexSet out;   ///< w: indices of the produced tensor
  /// True when sparse-tensor data flows through an operand of this term.
  bool carries_sparse = false;
  /// refs ∩ sparse modes, regardless of whether sparse data flows.
  IndexSet sparse_refs;

  bool operator==(const PathTerm&) const = default;
};

/// Ordered contraction path (T, L) of Definition 3.1.
struct ContractionPath {
  std::vector<PathTerm> terms;

  int num_terms() const { return static_cast<int>(terms.size()); }
  const PathTerm& term(int i) const {
    return terms[static_cast<std::size_t>(i)];
  }

  /// Index of the term that consumes term i's output, or -1 for the final
  /// term (whose output is the kernel output).
  int consumer_of(int i) const;

  /// True when every sparse-carrying term's referenced sparse indices form a
  /// prefix of the CSF mode order — the condition for all-at-once execution
  /// with a single CSF tree (paper Section 5).
  bool csf_prefix_executable(const Kernel& kernel) const;

  /// Human-readable rendering, e.g.
  ///   "T(i,j,k)*V(k,s) -> X1(i,j,s); X1(i,j,s)*U(j,r) -> S(i,r,s)".
  std::string to_string(const Kernel& kernel) const;

  bool operator==(const ContractionPath&) const = default;
};

/// Sparsity statistics driving path cost estimates: distinct-prefix counts
/// along the CSF order (paper Section 2.2) plus cached projections onto
/// arbitrary sparse-mode subsets.
class SparsityStats {
 public:
  SparsityStats() = default;
  // The lazy projection cache carries a mutex, so the special members are
  // spelled out (copies share the cached values but get a fresh lock).
  SparsityStats(const SparsityStats& o);
  SparsityStats& operator=(const SparsityStats& o);
  SparsityStats(SparsityStats&& o) noexcept;
  SparsityStats& operator=(SparsityStats&& o) noexcept;

  /// Exact statistics from a tensor (must be sort_dedup()ed).
  static SparsityStats from_coo(const CooTensor& coo);

  /// Model statistics for a uniformly random tensor of the given shape.
  static SparsityStats uniform(const std::vector<std::int64_t>& dims,
                               std::int64_t nnz);

  /// nnz(I1..Ik) for k in [0, order].
  std::int64_t prefix_nnz(int k) const {
    return prefix_[static_cast<std::size_t>(k)];
  }

  /// Distinct-projection count for an arbitrary mode subset (bitmask over
  /// CSF levels). Exact when built from a tensor, modeled otherwise.
  /// Thread-safe: concurrent callers (the planner's parallel path-FLOP
  /// fan-out) share one mutex-guarded lazy cache.
  std::int64_t projection_nnz(std::uint64_t level_mask) const;

  int order() const { return static_cast<int>(prefix_.size()) - 1; }

  /// Structure fingerprint of the tensor these stats were taken from
  /// (CooTensor::structure_hash()); 0 for modeled (uniform) stats. Plans
  /// carry it so the executor can verify a cached plan runs against the
  /// structure it was planned for.
  std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  std::vector<std::int64_t> prefix_;  ///< prefix_[k] = nnz(I1..Ik)
  std::vector<std::int64_t> dims_;
  std::int64_t nnz_ = 0;
  std::uint64_t fingerprint_ = 0;
  const CooTensor* coo_ = nullptr;  ///< non-owning; null for modeled stats
  mutable std::mutex proj_m_;  ///< guards proj_cache_
  mutable std::vector<std::pair<std::uint64_t, std::int64_t>> proj_cache_;
};

/// Leading-order scalar-operation estimate of executing `path` all-at-once
/// (2 FLOPs per iteration point of each term). Iteration points of a
/// sparse-carrying term: nnz over its sparse refs times dense extents.
double path_flops(const Kernel& kernel, const ContractionPath& path,
                  const SparsityStats& stats);

/// Enumerate every ordered contraction path of the kernel
/// (Section 4.1.1 recursion: pick all pairs, recurse on the reduced list).
/// The number of results follows T(n) = C(n,2)·T(n-1).
std::vector<ContractionPath> enumerate_paths(const Kernel& kernel);

/// Closed-form count of ordered contraction paths for n input tensors:
/// n! (n-1)! / 2^(n-1).
std::uint64_t count_paths(int n);

/// Build the left-to-right chain path contracting the sparse input with the
/// remaining inputs in the given order (input positions, excluding the
/// sparse input; empty = expression order). This is the schedule shape used
/// by the SparseLNR-style baseline and by hand-tuned kernels.
ContractionPath chain_path(const Kernel& kernel,
                           std::vector<int> dense_order = {});

}  // namespace spttn
