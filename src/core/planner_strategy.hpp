// Pluggable planner strategies (ROADMAP item 4). make_plan dispatches to a
// PlannerStrategy and then runs the shared verification gate, so every
// search algorithm — exhaustive or budgeted — flows through one pipeline:
//
//   make_plan ─► strategy_for(options).plan(...) ─► verify ─► Plan
//
// ExactStrategy is the pre-refactor planner moved verbatim: its chosen Plan
// and SearchStats are bit-identical to the historical search (sequential
// and search_threads-parallel alike; tests/golden/ pins this). AnytimeStrategy
// is a Pfeifer-style pruned breadth-first search over contraction sequences
// with cost-model-seeded randomized restarts, bounded by
// PlannerOptions::budget and reporting an admissible optimality gap.
#pragma once

#include "core/planner.hpp"

namespace spttn {

class PlannerStrategy {
 public:
  virtual ~PlannerStrategy() = default;

  /// Stable identifier ("exact", "anytime") for logs and benches.
  virtual const char* name() const = 0;

  /// Produce a plan. Implementations fill every Plan field including the
  /// search diagnostics; they do NOT run the plan verifier — make_plan owns
  /// that gate so all strategies are checked identically.
  virtual Plan plan(const Kernel& kernel, const SparsityStats& stats,
                    const PlannerOptions& options) const = 0;
};

/// The historical exhaustive search: enumerate contraction paths, filter to
/// single-CSF-executable ones, group by FLOP estimate, run the order DP per
/// group with buffer-bound relaxation. Optimal under the configured cost
/// model; cost is factorial in the input count.
class ExactStrategy final : public PlannerStrategy {
 public:
  const char* name() const override { return "exact"; }
  Plan plan(const Kernel& kernel, const SparsityStats& stats,
            const PlannerOptions& options) const override;
};

/// Cost-bounded anytime search: greedy seeded restarts establish a feasible
/// incumbent fast, then a deduplicated breadth-first search over partial
/// contraction sequences (pruned per-term on CSF-prefix executability and,
/// under a budget, on the incumbent's FLOP estimate) improves on it until
/// the PlanningBudget runs out. Reports best-vs-lower-bound gap; with an
/// unlimited budget the search completes and the gap is zero.
class AnytimeStrategy final : public PlannerStrategy {
 public:
  const char* name() const override { return "anytime"; }
  Plan plan(const Kernel& kernel, const SparsityStats& stats,
            const PlannerOptions& options) const override;
};

/// The process-wide strategy instance selected by options.strategy.
const PlannerStrategy& strategy_for(const PlannerOptions& options);

}  // namespace spttn
