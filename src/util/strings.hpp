// Small string helpers used by the einsum parser and bench harness.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace spttn {

/// Split s on delimiter; empty pieces are kept.
std::vector<std::string> split(std::string_view s, char delim);

/// Trim ASCII whitespace on both ends.
std::string_view trim(std::string_view s);

/// Remove all ASCII whitespace characters.
std::string strip_whitespace(std::string_view s);

/// printf-style formatting into a std::string.
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Human-readable engineering format: 1234567 -> "1.23M".
std::string human_count(double v);

/// Join items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

}  // namespace spttn
