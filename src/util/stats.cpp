#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace spttn {

Summary summarize(std::vector<double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  const std::size_t n = samples.size();
  s.median = (n % 2 == 1) ? samples[n / 2]
                          : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  double sum = 0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(n);
  double ss = 0;
  for (double v : samples) ss += (v - s.mean) * (v - s.mean);
  s.stddev = (n > 1) ? std::sqrt(ss / static_cast<double>(n - 1)) : 0.0;
  return s;
}

}  // namespace spttn
