// Persistent shared-memory thread pool — the parallel substrate for the
// executor's root-loop partitioning, the planner's group search, and the
// simulated distributed runtime's concurrent ranks.
//
// One pool is created per instance; ThreadPool::global() holds a lazily
// constructed process-wide pool sized to the hardware (rebuildable via
// set_global_threads). Work is submitted as an indexed batch
// (parallel_apply): the calling thread participates, so a pool of size 1
// degenerates to an inline loop with zero synchronization.
//
// Scheduling is work-stealing over index ranges: every lane (each worker
// plus the caller) owns a deque holding a contiguous slice of the batch's
// index space. A lane pops single indices from the front of its own slice;
// when it runs dry it steals the *back half* of the largest slice another
// lane still holds. Static nnz-balanced chunking upstream gives each lane
// roughly even work; stealing absorbs the per-chunk variance (dense-factor
// cache effects, skewed subtrees) that static partitioning cannot see.
//
// Batches from nested or concurrent callers are safe: a worker that calls
// parallel_apply recursively runs its batch inline instead of deadlocking
// on its own pool, and concurrent top-level submitters serialize.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

namespace spttn {

/// Waitable handle for one task submitted with ThreadPool::submit().
///
/// wait() blocks until the task has run and rethrows its exception, if any.
/// A waiter may "help": when the task has not been claimed by a worker yet,
/// wait() claims and runs it inline on the waiting thread, so waiting can
/// never deadlock — not even on a one-lane pool or from inside another pool
/// task. Handles are cheap shared references; copies observe the same task.
class TaskHandle {
 public:
  TaskHandle() = default;

  /// True when bound to a submitted task.
  bool valid() const { return state_ != nullptr; }

  /// Non-blocking: has the task finished (normally or with an exception)?
  bool done() const;

  /// Block until the task has run (claiming it inline when still
  /// unclaimed), then rethrow the task's exception if it threw. Safe to
  /// call multiple times and from multiple threads; each call that observes
  /// a stored exception rethrows it.
  void wait();

 private:
  friend class ThreadPool;
  struct State;
  std::shared_ptr<State> state_;
};

class ThreadPool {
 public:
  /// Create a pool presenting `threads` lanes of parallelism (the calling
  /// thread counts as one lane, so `threads - 1` workers are spawned).
  /// threads < 1 is clamped to 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Lanes of parallelism (worker threads + the caller).
  int size() const;

  /// Run fn(0) ... fn(n-1), distributing indices across the pool's lanes;
  /// the calling thread participates and the call returns only when every
  /// index has finished. [0, n) is split into one contiguous slice per
  /// lane; lanes drain their own slice front-to-back and steal half of a
  /// victim's remaining slice when idle, so uneven tasks load-balance
  /// without a shared counter. The first exception thrown by any task is
  /// rethrown in the caller after the batch drains. Reentrant calls (from
  /// inside a task) run inline in the calling worker.
  void parallel_apply(std::int64_t n,
                      const std::function<void(std::int64_t)>& fn);

  /// Enqueue one task for asynchronous execution on a pool worker and
  /// return a waitable handle — the serving-layer entry point (see
  /// serve/session.hpp): each submitted request is the unit of
  /// parallelism, runs on one lane, and nested parallel_apply calls from
  /// inside it run inline. Tasks start in submission order as workers free
  /// up; parallel_apply batches take priority over queued tasks. On a pool
  /// with no workers (size() == 1) the task runs inline before submit
  /// returns. Tasks still queued when the pool is destroyed are run to
  /// completion on the destroying thread, so handles never dangle.
  TaskHandle submit(std::function<void()> fn);

  /// Successful steals performed by this pool's lanes since construction.
  /// Monotonic; observability hook for the steal-heavy stress tests and
  /// the scaling benches (a zero count on a skewed input means the static
  /// partition was already balanced).
  std::uint64_t steal_count() const;

  /// Process-wide pool, created on first use with default_threads() lanes.
  /// Persistent for the process lifetime: benches and repeated executions
  /// reuse the same workers instead of respawning threads per call.
  static ThreadPool& global();

  /// Replace the process-wide pool with one of `threads` lanes (values < 1
  /// mean "re-read default_threads()", so embedders can apply a changed
  /// SPTTN_THREADS after first use). Must not race with concurrent use of
  /// global() batches — call from a quiescent point (test setup, embedder
  /// init/reconfig).
  static void set_global_threads(int threads);

  /// Hardware concurrency, overridable via the SPTTN_THREADS environment
  /// variable; at least 1. Re-read on every call (no latching), so tests
  /// and embedders may change the environment and rebuild the global pool
  /// with set_global_threads(0).
  static int default_threads();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace spttn
