// Persistent shared-memory thread pool — the parallel substrate for the
// executor's root-loop partitioning, the planner's group search, and the
// simulated distributed runtime's per-rank local runs.
//
// One pool is created per instance; ThreadPool::global() holds a lazily
// constructed process-wide pool sized to the hardware. Work is submitted as
// an indexed batch (parallel_apply): the calling thread participates, so a
// pool of size 1 degenerates to an inline loop with zero synchronization.
// Batches from nested or concurrent callers are safe: a worker that calls
// parallel_apply recursively runs its batch inline instead of deadlocking
// on its own pool.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

namespace spttn {

class ThreadPool {
 public:
  /// Create a pool presenting `threads` lanes of parallelism (the calling
  /// thread counts as one lane, so `threads - 1` workers are spawned).
  /// threads < 1 is clamped to 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Lanes of parallelism (worker threads + the caller).
  int size() const;

  /// Run fn(0) ... fn(n-1), distributing indices across the pool's lanes;
  /// the calling thread participates and the call returns only when every
  /// index has finished. Indices are claimed dynamically (atomic counter),
  /// so uneven tasks load-balance. The first exception thrown by any task
  /// is rethrown in the caller after the batch drains. Reentrant calls
  /// (from inside a task) run inline in the calling worker.
  void parallel_apply(std::int64_t n,
                      const std::function<void(std::int64_t)>& fn);

  /// Process-wide pool, created on first use with default_threads() lanes.
  /// Persistent for the process lifetime: benches and repeated executions
  /// reuse the same workers instead of respawning threads per call.
  static ThreadPool& global();

  /// Hardware concurrency, overridable via the SPTTN_THREADS environment
  /// variable (read once); at least 1.
  static int default_threads();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace spttn
