// ASCII table writer for the benchmark harness.
//
// Every bench binary reproduces a paper table or figure by printing rows in
// this format, so bench_output.txt is directly comparable to the paper.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace spttn {

/// Column-aligned ASCII table with a title and optional footnotes.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Set the header row. Must be called before add_row.
  void set_header(std::vector<std::string> header);

  /// Append a data row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Append a free-form footnote printed under the table.
  void add_note(std::string note);

  /// Render to a stream with box-drawing separators.
  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> notes_;
};

}  // namespace spttn
