#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/error.hpp"

namespace spttn {

Cli::Flag& Cli::add(const std::string& name, Flag flag) {
  SPTTN_CHECK_MSG(!flags_.count(name), "duplicate flag --" << name);
  order_.push_back(name);
  return flags_.emplace(name, std::move(flag)).first->second;
}

const std::int64_t* Cli::add_int(const std::string& name, std::int64_t init,
                                 const std::string& help) {
  Flag f;
  f.kind = Flag::Kind::kInt;
  f.help = help;
  f.i = init;
  return &add(name, std::move(f)).i;
}

const double* Cli::add_double(const std::string& name, double init,
                              const std::string& help) {
  Flag f;
  f.kind = Flag::Kind::kDouble;
  f.help = help;
  f.d = init;
  return &add(name, std::move(f)).d;
}

const bool* Cli::add_bool(const std::string& name, bool init,
                          const std::string& help) {
  Flag f;
  f.kind = Flag::Kind::kBool;
  f.help = help;
  f.b = init;
  return &add(name, std::move(f)).b;
}

const std::string* Cli::add_string(const std::string& name, std::string init,
                                   const std::string& help) {
  Flag f;
  f.kind = Flag::Kind::kString;
  f.help = help;
  f.s = std::move(init);
  return &add(name, std::move(f)).s;
}

void Cli::set_from_string(Flag& f, const std::string& name,
                          const std::string& value) {
  switch (f.kind) {
    case Flag::Kind::kInt:
      f.i = std::strtoll(value.c_str(), nullptr, 10);
      break;
    case Flag::Kind::kDouble:
      f.d = std::strtod(value.c_str(), nullptr);
      break;
    case Flag::Kind::kBool:
      f.b = !(value == "false" || value == "0" || value == "no");
      break;
    case Flag::Kind::kString:
      f.s = value;
      break;
  }
  (void)name;
}

void Cli::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      std::exit(0);
    }
    SPTTN_CHECK_MSG(arg.rfind("--", 0) == 0,
                    "unexpected positional argument '" << arg << "'\n"
                                                       << usage());
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(arg);
    SPTTN_CHECK_MSG(it != flags_.end(),
                    "unknown flag --" << arg << "\n" << usage());
    Flag& f = it->second;
    if (!has_value) {
      if (f.kind == Flag::Kind::kBool) {
        f.b = true;
        continue;
      }
      SPTTN_CHECK_MSG(i + 1 < argc, "flag --" << arg << " requires a value");
      value = argv[++i];
    }
    set_from_string(f, arg, value);
  }
}

std::string Cli::usage() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [flags]\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name;
    switch (f.kind) {
      case Flag::Kind::kInt:
        os << "=<int> (default " << f.i << ")";
        break;
      case Flag::Kind::kDouble:
        os << "=<float> (default " << f.d << ")";
        break;
      case Flag::Kind::kBool:
        os << " (default " << (f.b ? "true" : "false") << ")";
        break;
      case Flag::Kind::kString:
        os << "=<str> (default '" << f.s << "')";
        break;
    }
    os << "  " << f.help << "\n";
  }
  return os.str();
}

}  // namespace spttn
