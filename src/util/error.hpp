// Error handling primitives shared by all spttn libraries.
//
// Invariant violations raise spttn::Error (derived from std::runtime_error)
// so that tests can assert on failure and applications can recover.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace spttn {

/// Exception type thrown for all precondition and invariant violations.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* cond, const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace spttn

/// Precondition check: throws spttn::Error with location info when violated.
#define SPTTN_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond)) ::spttn::detail::fail(#cond, __FILE__, __LINE__, ""); \
  } while (0)

/// Precondition check with a streamed message:
///   SPTTN_CHECK_MSG(i < n, "index " << i << " out of range " << n);
#define SPTTN_CHECK_MSG(cond, msg)                                  \
  do {                                                              \
    if (!(cond)) {                                                  \
      std::ostringstream os_;                                       \
      os_ << msg;                                                   \
      ::spttn::detail::fail(#cond, __FILE__, __LINE__, os_.str());  \
    }                                                               \
  } while (0)
