#include "util/strings.hpp"

#include <cstdarg>
#include <cstdio>

namespace spttn {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::string strip_whitespace(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') out.push_back(c);
  }
  return out;
}

std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

std::string human_count(double v) {
  const char* suffix = "";
  double x = v;
  if (x >= 1e12) {
    x /= 1e12;
    suffix = "T";
  } else if (x >= 1e9) {
    x /= 1e9;
    suffix = "G";
  } else if (x >= 1e6) {
    x /= 1e6;
    suffix = "M";
  } else if (x >= 1e3) {
    x /= 1e3;
    suffix = "K";
  }
  return strfmt("%.3g%s", x, suffix);
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace spttn
