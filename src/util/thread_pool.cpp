#include "util/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace spttn {

namespace {

/// Set while a thread is executing tasks of some batch; reentrant
/// parallel_apply calls detect it and run inline (a worker blocking on its
/// own pool would deadlock).
thread_local bool tl_in_pool_task = false;

}  // namespace

/// Shared state of one submitted task. Claiming is an atomic flag so that
/// exactly one thread — a worker or a helping waiter — runs the body.
struct TaskHandle::State {
  std::function<void()> fn;
  std::atomic<bool> claimed{false};
  std::mutex m;
  std::condition_variable cv;
  bool done = false;               // guarded by m
  std::exception_ptr error;        // guarded by m

  bool try_claim() { return !claimed.exchange(true, std::memory_order_acq_rel); }

  /// Run the body (caller must have claimed), record the outcome, wake
  /// waiters, and release the body (it may own captures worth freeing).
  void run() {
    std::exception_ptr err;
    // Task bodies count as pool work wherever they run (worker or helping
    // waiter): nested parallel_apply calls execute inline, so a submitted
    // request computes the same partition shape on every path — the
    // submitted request, not its inner loops, is the unit of parallelism.
    const bool was_in_pool_task = tl_in_pool_task;
    tl_in_pool_task = true;
    try {
      fn();
    } catch (...) {
      err = std::current_exception();
    }
    tl_in_pool_task = was_in_pool_task;
    {
      std::lock_guard<std::mutex> lk(m);
      done = true;
      error = err;
      fn = nullptr;
    }
    cv.notify_all();
  }
};

bool TaskHandle::done() const {
  if (state_ == nullptr) return false;
  std::lock_guard<std::mutex> lk(state_->m);
  return state_->done;
}

void TaskHandle::wait() {
  if (state_ == nullptr) return;
  // Help-first: an unclaimed task runs inline on the waiting thread, so
  // wait() makes progress even when every worker is busy (or there are
  // none). A worker that already claimed it wins the exchange and we block.
  if (state_->try_claim()) state_->run();
  std::unique_lock<std::mutex> lk(state_->m);
  state_->cv.wait(lk, [&] { return state_->done; });
  if (state_->error) std::rethrow_exception(state_->error);
}

struct ThreadPool::Impl {
  /// One lane's share of a batch: a contiguous, not-yet-claimed index
  /// range. The owner pops from the front; thieves cut the back half.
  /// Mutex-guarded rather than lock-free: claims are O(ns) against task
  /// bodies that traverse CSF subtrees, and the mutex keeps the protocol
  /// obviously race-free under TSan.
  struct alignas(64) Lane {
    std::mutex m;
    std::int64_t begin = 0;
    std::int64_t end = 0;
  };

  /// One submitted batch. Workers operate on a shared_ptr snapshot, so a
  /// worker that wakes late drains its (empty) lanes instead of touching a
  /// newer batch's state.
  struct Batch {
    std::uint64_t generation = 0;
    const std::function<void(std::int64_t)>* fn = nullptr;
    std::int64_t count = 0;
    std::vector<Lane> lanes;  // one per pool lane (caller = lane 0)
    std::atomic<std::int64_t> finished{0};
    std::mutex err_m;
    std::exception_ptr first_error;  // guarded by err_m
  };

  std::mutex m;
  std::condition_variable wake_cv;
  std::condition_variable done_cv;
  std::shared_ptr<Batch> current;  // guarded by m
  std::uint64_t generation = 0;    // guarded by m
  bool stopping = false;           // guarded by m
  /// FIFO of tasks submitted with submit(); guarded by m. Workers drain it
  /// whenever no (new) batch is pending — batches keep priority so
  /// parallel_apply latency is unaffected by queued serving traffic.
  std::deque<std::shared_ptr<TaskHandle::State>> async_q;

  /// Serializes submitters so one batch runs at a time.
  std::mutex submit_m;

  std::atomic<std::uint64_t> steals{0};

  std::vector<std::thread> workers;

  void worker_loop(int lane) {
    std::uint64_t seen = 0;
    while (true) {
      std::shared_ptr<Batch> batch;
      std::shared_ptr<TaskHandle::State> task;
      {
        std::unique_lock<std::mutex> lk(m);
        wake_cv.wait(lk, [&] {
          return stopping ||
                 (current != nullptr && current->generation != seen) ||
                 !async_q.empty();
        });
        if (stopping) return;
        if (current != nullptr && current->generation != seen) {
          batch = current;
          seen = batch->generation;
        } else {
          task = std::move(async_q.front());
          async_q.pop_front();
        }
      }
      if (batch != nullptr) {
        run_tasks(*batch, lane);
      } else if (task->try_claim()) {
        // A helping waiter may have claimed it first; then it is already
        // running (or done) and this pop just drops the queue reference.
        task->run();
      }
    }
  }

  /// Pop an index from the front of the lane's own range; -1 when empty.
  static std::int64_t pop_own(Lane& lane) {
    std::lock_guard<std::mutex> lk(lane.m);
    if (lane.begin >= lane.end) return -1;
    return lane.begin++;
  }

  /// Steal the back half of the fullest other lane into `self`'s lane.
  /// Returns false when every other lane is empty (the batch has no
  /// unclaimed work left — in-flight tasks may still be running).
  bool steal_into(Batch& batch, int self) {
    const int lanes = static_cast<int>(batch.lanes.size());
    while (true) {
      int victim = -1;
      std::int64_t victim_avail = 0;
      for (int k = 1; k < lanes; ++k) {
        const int v = (self + k) % lanes;
        Lane& lane = batch.lanes[static_cast<std::size_t>(v)];
        std::lock_guard<std::mutex> lk(lane.m);
        const std::int64_t avail = lane.end - lane.begin;
        if (avail > victim_avail) {
          victim = v;
          victim_avail = avail;
        }
      }
      if (victim < 0) return false;
      std::int64_t take_b = 0;
      std::int64_t take_e = 0;
      {
        Lane& lane = batch.lanes[static_cast<std::size_t>(victim)];
        std::lock_guard<std::mutex> lk(lane.m);
        const std::int64_t avail = lane.end - lane.begin;
        if (avail <= 0) continue;  // drained since the scan; rescan
        const std::int64_t take = (avail + 1) / 2;
        take_b = lane.end - take;
        take_e = lane.end;
        lane.end = take_b;
      }
      {
        Lane& mine = batch.lanes[static_cast<std::size_t>(self)];
        std::lock_guard<std::mutex> lk(mine.m);
        mine.begin = take_b;
        mine.end = take_e;
      }
      steals.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }

  /// Claim and run indices until neither the own lane nor any victim has
  /// unclaimed work. Every index is claimed exactly once, so `finished`
  /// reaches count only after every task body has returned — which is what
  /// the submitter waits on.
  void run_tasks(Batch& batch, int self) {
    Lane& mine = batch.lanes[static_cast<std::size_t>(self)];
    std::int64_t ran = 0;
    std::exception_ptr err;
    tl_in_pool_task = true;
    while (true) {
      const std::int64_t i = pop_own(mine);
      if (i < 0) {
        if (!steal_into(batch, self)) break;
        continue;
      }
      try {
        (*batch.fn)(i);
      } catch (...) {
        if (!err) err = std::current_exception();
      }
      ++ran;
    }
    tl_in_pool_task = false;
    if (err) {
      std::lock_guard<std::mutex> lk(batch.err_m);
      if (!batch.first_error) batch.first_error = err;
    }
    if (ran == 0) return;
    const std::int64_t prev =
        batch.finished.fetch_add(ran, std::memory_order_acq_rel);
    if (prev + ran == batch.count) {
      std::lock_guard<std::mutex> lk(m);  // pair with the submitter's wait
      done_cv.notify_all();
    }
  }
};

ThreadPool::ThreadPool(int threads) : impl_(std::make_unique<Impl>()) {
  const int lanes = threads < 1 ? 1 : threads;
  impl_->workers.reserve(static_cast<std::size_t>(lanes - 1));
  for (int w = 0; w < lanes - 1; ++w) {
    impl_->workers.emplace_back([this, w] { impl_->worker_loop(w + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(impl_->m);
    impl_->stopping = true;
  }
  impl_->wake_cv.notify_all();
  for (auto& w : impl_->workers) w.join();
  // Run any still-queued submitted tasks to completion so their handles
  // never block forever (workers are gone; nobody else will claim them).
  // Pop-and-run rather than iterate: a drained task body may itself call
  // submit(), which with `stopping` set runs inline, but popping keeps the
  // drain correct even if the queue changes shape under it.
  while (true) {
    std::shared_ptr<TaskHandle::State> task;
    {
      std::lock_guard<std::mutex> lk(impl_->m);
      if (impl_->async_q.empty()) break;
      task = std::move(impl_->async_q.front());
      impl_->async_q.pop_front();
    }
    if (task->try_claim()) task->run();
  }
}

int ThreadPool::size() const {
  return static_cast<int>(impl_->workers.size()) + 1;
}

std::uint64_t ThreadPool::steal_count() const {
  return impl_->steals.load(std::memory_order_relaxed);
}

TaskHandle ThreadPool::submit(std::function<void()> fn) {
  TaskHandle handle;
  handle.state_ = std::make_shared<TaskHandle::State>();
  handle.state_->fn = std::move(fn);
  bool inline_run = impl_->workers.empty();
  if (!inline_run) {
    std::lock_guard<std::mutex> lk(impl_->m);
    if (impl_->stopping) {
      // Shutting down (e.g. a continuation submitted from a task being
      // drained by the destructor): nobody will claim queued work.
      inline_run = true;
    } else {
      impl_->async_q.push_back(handle.state_);
    }
  }
  if (inline_run) {
    // No workers to hand the task to; run it before returning so the
    // handle's contract (wait() returns after the task ran) holds without
    // a queue nobody drains.
    if (handle.state_->try_claim()) handle.state_->run();
    return handle;
  }
  impl_->wake_cv.notify_one();
  return handle;
}

void ThreadPool::parallel_apply(std::int64_t n,
                                const std::function<void(std::int64_t)>& fn) {
  if (n <= 0) return;
  if (n == 1 || impl_->workers.empty() || tl_in_pool_task) {
    // Inline: single task, no workers to share with, or a reentrant call
    // from inside one of this pool's tasks.
    for (std::int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::lock_guard<std::mutex> submit(impl_->submit_m);
  const auto lanes =
      static_cast<std::int64_t>(impl_->workers.size()) + 1;
  auto batch = std::make_shared<Impl::Batch>();
  batch->fn = &fn;
  batch->count = n;
  batch->lanes = std::vector<Impl::Lane>(static_cast<std::size_t>(lanes));
  for (std::int64_t l = 0; l < lanes; ++l) {
    batch->lanes[static_cast<std::size_t>(l)].begin = n * l / lanes;
    batch->lanes[static_cast<std::size_t>(l)].end = n * (l + 1) / lanes;
  }
  {
    std::lock_guard<std::mutex> lk(impl_->m);
    batch->generation = ++impl_->generation;
    impl_->current = batch;
  }
  impl_->wake_cv.notify_all();
  impl_->run_tasks(*batch, 0);
  std::unique_lock<std::mutex> lk(impl_->m);
  impl_->done_cv.wait(lk, [&] {
    return batch->finished.load(std::memory_order_acquire) == n;
  });
  impl_->current = nullptr;
  if (batch->first_error) std::rethrow_exception(batch->first_error);
}

namespace {

std::mutex& global_pool_mutex() {
  static std::mutex m;
  return m;
}

std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lk(global_pool_mutex());
  auto& slot = global_pool_slot();
  if (slot == nullptr) {
    slot = std::make_unique<ThreadPool>(default_threads());
  }
  return *slot;
}

void ThreadPool::set_global_threads(int threads) {
  std::lock_guard<std::mutex> lk(global_pool_mutex());
  global_pool_slot() = std::make_unique<ThreadPool>(
      threads >= 1 ? threads : default_threads());
}

int ThreadPool::default_threads() {
  // Deliberately not latched: SPTTN_THREADS is consulted on every call so
  // set_global_threads(0) after an environment change takes effect.
  if (const char* env = std::getenv("SPTTN_THREADS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace spttn
