#include "util/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace spttn {

namespace {

/// Set while a thread is executing tasks of some batch; reentrant
/// parallel_apply calls detect it and run inline (a worker blocking on its
/// own pool would deadlock).
thread_local bool tl_in_pool_task = false;

}  // namespace

struct ThreadPool::Impl {
  /// One submitted batch. Workers operate on a shared_ptr snapshot, so a
  /// worker that wakes late claims from its (drained) batch instead of
  /// stealing indices from a newer one.
  struct Batch {
    std::uint64_t generation = 0;
    const std::function<void(std::int64_t)>* fn = nullptr;
    std::int64_t count = 0;
    std::atomic<std::int64_t> next{0};
    std::int64_t finished = 0;        // guarded by Impl::m
    std::exception_ptr first_error;   // guarded by Impl::m
  };

  std::mutex m;
  std::condition_variable wake_cv;
  std::condition_variable done_cv;
  std::shared_ptr<Batch> current;  // guarded by m
  std::uint64_t generation = 0;    // guarded by m
  bool stopping = false;           // guarded by m

  /// Serializes submitters so one batch runs at a time.
  std::mutex submit_m;

  std::vector<std::thread> workers;

  void worker_loop() {
    std::uint64_t seen = 0;
    while (true) {
      std::shared_ptr<Batch> batch;
      {
        std::unique_lock<std::mutex> lk(m);
        wake_cv.wait(lk, [&] {
          return stopping || (current != nullptr && current->generation != seen);
        });
        if (stopping) return;
        batch = current;
        seen = batch->generation;
      }
      run_tasks(*batch);
    }
  }

  /// Claim and run indices until the batch drains. The total of successful
  /// claims equals count, so `finished` reaches count only after every task
  /// body has returned — which is what the submitter waits on.
  void run_tasks(Batch& batch) {
    std::int64_t ran = 0;
    std::exception_ptr err;
    tl_in_pool_task = true;
    const std::int64_t n = batch.count;
    for (std::int64_t i = batch.next.fetch_add(1); i < n;
         i = batch.next.fetch_add(1)) {
      try {
        (*batch.fn)(i);
      } catch (...) {
        if (!err) err = std::current_exception();
      }
      ++ran;
    }
    tl_in_pool_task = false;
    if (ran == 0 && !err) return;
    std::lock_guard<std::mutex> lk(m);
    if (err && !batch.first_error) batch.first_error = err;
    batch.finished += ran;
    if (batch.finished == n) done_cv.notify_all();
  }
};

ThreadPool::ThreadPool(int threads) : impl_(std::make_unique<Impl>()) {
  const int lanes = threads < 1 ? 1 : threads;
  impl_->workers.reserve(static_cast<std::size_t>(lanes - 1));
  for (int w = 0; w < lanes - 1; ++w) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(impl_->m);
    impl_->stopping = true;
  }
  impl_->wake_cv.notify_all();
  for (auto& w : impl_->workers) w.join();
}

int ThreadPool::size() const {
  return static_cast<int>(impl_->workers.size()) + 1;
}

void ThreadPool::parallel_apply(std::int64_t n,
                                const std::function<void(std::int64_t)>& fn) {
  if (n <= 0) return;
  if (n == 1 || impl_->workers.empty() || tl_in_pool_task) {
    // Inline: single task, no workers to share with, or a reentrant call
    // from inside one of this pool's tasks.
    for (std::int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::lock_guard<std::mutex> submit(impl_->submit_m);
  auto batch = std::make_shared<Impl::Batch>();
  batch->fn = &fn;
  batch->count = n;
  {
    std::lock_guard<std::mutex> lk(impl_->m);
    batch->generation = ++impl_->generation;
    impl_->current = batch;
  }
  impl_->wake_cv.notify_all();
  impl_->run_tasks(*batch);
  std::unique_lock<std::mutex> lk(impl_->m);
  impl_->done_cv.wait(lk, [&] { return batch->finished == n; });
  impl_->current = nullptr;
  if (batch->first_error) std::rethrow_exception(batch->first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_threads());
  return pool;
}

int ThreadPool::default_threads() {
  static const int n = [] {
    if (const char* env = std::getenv("SPTTN_THREADS")) {
      const int v = std::atoi(env);
      if (v >= 1) return v;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }();
  return n;
}

}  // namespace spttn
