// Deterministic, seedable random number generation.
//
// All random data in the repository (synthetic tensors, sampled loop orders,
// property-test inputs) flows through Rng so experiments are reproducible
// bit-for-bit from a seed.
#pragma once

#include <cstdint>
#include <vector>

namespace spttn {

/// xoshiro256** generator seeded via splitmix64.
///
/// Chosen over std::mt19937_64 for speed and for a stable, documented
/// algorithm (standard library distributions are not portable across
/// implementations).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Standard normal via Box-Muller (no cached spare; deterministic).
  double next_normal();

  /// Fisher-Yates shuffle of v.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Fork a statistically independent child generator (for parallel use).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

/// splitmix64 step; exposed for seeding/hashing uses.
std::uint64_t splitmix64(std::uint64_t& state);

/// Mix a 64-bit value into a well-distributed hash (stateless splitmix64).
std::uint64_t hash_mix(std::uint64_t x);

}  // namespace spttn
