// Small set of loop indices, the workhorse of the loop-nest search.
//
// A kernel has at most 64 distinct indices (letters), identified by small
// integer ids assigned by the einsum parser. IndexSet packs membership into
// one machine word so the DP memoization key (Section 4.2) stays cheap to
// hash and compare.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "util/error.hpp"

namespace spttn {

/// Dense bitset over index ids 0..63 with value semantics.
class IndexSet {
 public:
  constexpr IndexSet() = default;
  constexpr explicit IndexSet(std::uint64_t bits) : bits_(bits) {}
  IndexSet(std::initializer_list<int> ids) {
    for (int id : ids) insert(id);
  }

  static constexpr int kMaxIndex = 64;

  void insert(int id) {
    SPTTN_CHECK(id >= 0 && id < kMaxIndex);
    bits_ |= (std::uint64_t{1} << id);
  }
  void erase(int id) {
    SPTTN_CHECK(id >= 0 && id < kMaxIndex);
    bits_ &= ~(std::uint64_t{1} << id);
  }
  bool contains(int id) const {
    if (id < 0 || id >= kMaxIndex) return false;
    return (bits_ >> id) & 1u;
  }
  bool empty() const { return bits_ == 0; }
  int size() const { return __builtin_popcountll(bits_); }

  IndexSet operator|(IndexSet o) const { return IndexSet(bits_ | o.bits_); }
  IndexSet operator&(IndexSet o) const { return IndexSet(bits_ & o.bits_); }
  IndexSet operator-(IndexSet o) const { return IndexSet(bits_ & ~o.bits_); }
  IndexSet& operator|=(IndexSet o) {
    bits_ |= o.bits_;
    return *this;
  }
  IndexSet& operator&=(IndexSet o) {
    bits_ &= o.bits_;
    return *this;
  }
  IndexSet& operator-=(IndexSet o) {
    bits_ &= ~o.bits_;
    return *this;
  }
  bool operator==(const IndexSet&) const = default;

  /// True when every element of this set is contained in o.
  bool subset_of(IndexSet o) const { return (bits_ & ~o.bits_) == 0; }
  bool intersects(IndexSet o) const { return (bits_ & o.bits_) != 0; }

  std::uint64_t bits() const { return bits_; }

  /// Elements in increasing id order.
  std::vector<int> to_vector() const {
    std::vector<int> out;
    out.reserve(static_cast<std::size_t>(size()));
    std::uint64_t b = bits_;
    while (b) {
      const int id = __builtin_ctzll(b);
      out.push_back(id);
      b &= b - 1;
    }
    return out;
  }

  /// Iterate elements: for (int id : set.elements()) ...
  class Iterator {
   public:
    explicit Iterator(std::uint64_t b) : bits_(b) {}
    int operator*() const { return __builtin_ctzll(bits_); }
    Iterator& operator++() {
      bits_ &= bits_ - 1;
      return *this;
    }
    bool operator!=(const Iterator& o) const { return bits_ != o.bits_; }

   private:
    std::uint64_t bits_;
  };
  struct Range {
    std::uint64_t bits;
    Iterator begin() const { return Iterator(bits); }
    Iterator end() const { return Iterator(0); }
  };
  Range elements() const { return Range{bits_}; }

 private:
  std::uint64_t bits_ = 0;
};

}  // namespace spttn
