#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace spttn {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_mix(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  SPTTN_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = n * ((~std::uint64_t{0}) / n);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  SPTTN_CHECK(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // may wrap to 0 for full range
  if (span == 0) return static_cast<std::int64_t>(next_u64());
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 high bits → uniform in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_normal() {
  // Box-Muller; avoid log(0).
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  const double two_pi = 6.283185307179586476925286766559;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(two_pi * u2);
}

Rng Rng::fork() { return Rng(next_u64() ^ 0xa02bdbf7bb3c0a7ULL); }

}  // namespace spttn
