#include "util/table.hpp"

#include <algorithm>
#include <ostream>

#include "util/error.hpp"

namespace spttn {

void Table::set_header(std::vector<std::string> header) {
  SPTTN_CHECK(rows_.empty());
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  SPTTN_CHECK_MSG(row.size() == header_.size(),
                  "row width " << row.size() << " != header width "
                               << header_.size());
  rows_.push_back(std::move(row));
}

void Table::add_note(std::string note) { notes_.push_back(std::move(note)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  const auto hline = [&] {
    os << '+';
    for (std::size_t w : width) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  const auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      for (std::size_t i = row[c].size(); i < width[c] + 1; ++i) os << ' ';
      os << '|';
    }
    os << '\n';
  };

  os << "== " << title_ << " ==\n";
  hline();
  print_row(header_);
  hline();
  for (const auto& row : rows_) print_row(row);
  hline();
  for (const auto& note : notes_) os << "  note: " << note << '\n';
  os << '\n';
}

}  // namespace spttn
