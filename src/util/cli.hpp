// Minimal command-line flag parsing for bench and example binaries.
//
// Flags are of the form --name=value or --name value; bools accept bare
// --name. Unknown flags raise an error listing known flags.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace spttn {

/// Registry-style flag parser.
///
///   Cli cli("bench_fig7");
///   auto& r = cli.add_int("rank", 64, "factor rank R");
///   cli.parse(argc, argv);
///   use(*r);
class Cli {
 public:
  explicit Cli(std::string program) : program_(std::move(program)) {}

  /// Register an int64 flag; returns a stable pointer to the value.
  const std::int64_t* add_int(const std::string& name, std::int64_t init,
                              const std::string& help);
  /// Register a double flag.
  const double* add_double(const std::string& name, double init,
                           const std::string& help);
  /// Register a bool flag (bare --name sets true).
  const bool* add_bool(const std::string& name, bool init,
                       const std::string& help);
  /// Register a string flag.
  const std::string* add_string(const std::string& name, std::string init,
                                const std::string& help);

  /// Parse argv; exits with usage on --help, throws Error on unknown flags.
  void parse(int argc, char** argv);

  /// Render usage text.
  std::string usage() const;

 private:
  struct Flag {
    enum class Kind { kInt, kDouble, kBool, kString } kind;
    std::string help;
    std::int64_t i = 0;
    double d = 0;
    bool b = false;
    std::string s;
  };
  Flag& add(const std::string& name, Flag flag);
  void set_from_string(Flag& f, const std::string& name,
                       const std::string& value);

  std::string program_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace spttn
