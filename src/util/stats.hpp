// Simple summary statistics for timing samples.
#pragma once

#include <vector>

namespace spttn {

/// Summary of a sample of measurements.
struct Summary {
  double min = 0;
  double max = 0;
  double mean = 0;
  double median = 0;
  double stddev = 0;
  std::size_t count = 0;
};

/// Compute summary statistics; empty input yields all-zero summary.
Summary summarize(std::vector<double> samples);

/// Repeatedly time fn() (seconds per call) until `reps` samples collected,
/// returning the summary. fn is invoked exactly `reps + warmup` times.
template <typename Fn>
Summary time_fn(Fn&& fn, int reps, int warmup = 1) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < warmup; ++i) fn();
  for (int i = 0; i < reps; ++i) samples.push_back(fn());
  return summarize(std::move(samples));
}

}  // namespace spttn
