// Wall-clock timing for benchmarks and the autotuner.
#pragma once

#include <chrono>

namespace spttn {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace spttn
