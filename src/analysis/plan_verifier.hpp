// Static verification of planned loop nests.
//
// A Plan is the planner's contract with the executor: a loop-tree forest,
// its buffer specs, and the recorded cost. The runtime trusts all of it —
// a corrupt tree turns into out-of-bounds strides and racing writes once
// plans are cached, persisted, or (soon) compiled to specialized code.
// PlanVerifier checks the contract without executing anything, in the
// spirit of CoNST's spec-vs-generated-kernel validation and SparseAuto's
// loop-restructuring legality conditions:
//
//   1. Index-binding soundness — every index a term reads or writes is
//      bound by an enclosing loop, each term's root-to-leaf loop chain is
//      exactly its declared loop order, no index is bound twice on a path,
//      and sparse loops appear at their CSF level in storage-prefix order.
//   2. Buffer def-use and scope — every intermediate has exactly one reset,
//      placed in the body of the deepest common ancestor of producer and
//      consumer, before the producer's branch; the producer's branch runs
//      before the consumer's; and the buffer's index set, dims and size
//      equal a recomputation of Eq. 5 at that scope (the scope the cost
//      model charged the buffer to).
//   3. Parallel-write safety — for every root region the executor would
//      partition (classified exactly as FusedExecutor does, from the
//      plan's own metadata), prove from the recomputed root-stride
//      structure that distinct tasks write disjoint regions of shared
//      buffers and outputs; optionally cross-check the verifier's
//      independently derived region facts against a compiled executor's
//      locality analysis.
//   4. Cost-model consistency — the recorded cost equals a recomputation
//      of the tree-separable cost from (path, order), the FLOP estimate
//      matches path_flops, the buffer-dimension bound holds, and the
//      sparsity fingerprint matches the stats in hand.
//
// Diagnostics are structured (rule id, loop-tree path, severity) so the
// mutation tests can assert the exact rule a defect class trips, and the
// lint tool can print actionable reports. The verifier never throws on
// corrupt input — malformed trees yield diagnostics, not crashes.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/planner.hpp"

namespace spttn {

class FusedExecutor;

enum class VerifySeverity { kError, kWarning };

/// One finding. `rule` is a stable kebab-case id (e.g. "index-unbound");
/// `tree_path` locates it as a chain of loop indices from the forest root,
/// e.g. "i > j > X1".
struct VerifyDiagnostic {
  std::string rule;
  VerifySeverity severity = VerifySeverity::kError;
  std::string tree_path;
  std::string message;

  std::string to_string() const;
};

/// Outcome of one verification pass.
struct VerifyReport {
  std::vector<VerifyDiagnostic> diags;

  /// True when no kError diagnostic was emitted (warnings allowed).
  bool ok() const;
  int errors() const;
  int warnings() const;
  /// True when some diagnostic carries `rule`.
  bool has(std::string_view rule) const;
  /// All findings, one per line; "clean" when empty.
  std::string to_string() const;
};

/// Knobs for the expensive/optional passes; the structural rules (1)-(3)
/// always run.
struct VerifyOptions {
  /// Recompute the tree-separable cost via evaluate_cost and compare with
  /// Plan::cost (rule "cost-drift").
  bool check_cost = true;
  /// Recompute the FLOP estimate via path_flops when stats are available
  /// (rule "flops-drift").
  bool check_flops = true;
  /// Relative tolerance for cost/FLOP comparisons (the recomputation uses
  /// the same arithmetic as the planner, so drift beyond rounding noise is
  /// a real inconsistency).
  double rel_tol = 1e-6;
};

/// Static verifier for one kernel. Construction is cheap; verify() may be
/// called for many plans of the same kernel (the lint tool sweeps planner
/// option sets this way).
class PlanVerifier {
 public:
  /// `planner_options` must be the options the plan was produced with
  /// (Plan::buffer_dim_bound overrides the bound, mirroring relaxation).
  /// `stats` enables the FLOP and fingerprint checks; may be null.
  explicit PlanVerifier(const Kernel& kernel,
                        const PlannerOptions& planner_options = {},
                        const SparsityStats* stats = nullptr,
                        const VerifyOptions& options = {});

  /// Run every rule over `plan`.
  VerifyReport verify(const Plan& plan) const;

  /// verify() plus the executor cross-check: the verifier's independently
  /// derived parallel-region facts (computed from the plan's loop tree)
  /// must agree with the compiled executor's locality analysis (rule
  /// "par-analysis-mismatch"). `exec` must be compiled from `plan`.
  VerifyReport verify(const Plan& plan, const FusedExecutor& exec) const;

 private:
  const Kernel* kernel_;
  PlannerOptions planner_options_;
  const SparsityStats* stats_;
  VerifyOptions options_;
};

/// Convenience: one-shot verification.
VerifyReport verify_plan(const Kernel& kernel, const Plan& plan,
                         const PlannerOptions& planner_options = {},
                         const SparsityStats* stats = nullptr);

/// Verify and throw spttn::Error carrying the full report when any error
/// diagnostic fires. The planner (Debug, or PlannerOptions::verify) and the
/// kernel cache admission gate call this.
void verify_plan_or_throw(const Kernel& kernel, const Plan& plan,
                          const PlannerOptions& planner_options = {},
                          const SparsityStats* stats = nullptr);

/// Admission check for externally produced plans — autotuned winners
/// published through KernelCache::put and artifacts deserialized by
/// KernelCache::load_dir. Runs the option-independent structural rules
/// only: the planner options and stats behind a signature hash are not
/// recoverable, so cost/FLOP consistency and the CSF-order restriction
/// stay planning-time checks. When `exec` is non-null it must be compiled
/// from `plan`; the executor locality cross-check then runs as well.
VerifyReport verify_external_plan(const Kernel& kernel, const Plan& plan,
                                  const FusedExecutor* exec = nullptr);

}  // namespace spttn
