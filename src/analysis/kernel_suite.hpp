// The paper's kernel families (Fig. 7 MTTKRP, Fig. 8 scaling, Fig. 10 loop
// orders, plus the TTMc/TTTP/TTTc families and stress shapes) as one shared
// suite, so the lint tool, the verifier bench, and the test fixtures all
// iterate the same kernels instead of each keeping a private copy.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "exec/spttn.hpp"

namespace spttn {

/// One kernel template: expression plus every index extent and the sparse
/// operand's nonzero fraction.
struct SuiteKernel {
  std::string name;
  std::string expr;
  std::vector<std::pair<std::string, std::int64_t>> dims;
  double sparsity = 0.05;

  /// Extent of index `name`, or -1 when the suite entry does not bind it.
  std::int64_t dim_of(const std::string& index_name) const;
  /// Dims of the sparse operand's indices, in CSF (expression) order.
  std::vector<std::int64_t> sparse_dims() const;
};

/// The paper kernels at test-friendly sizes. Order is stable; names are
/// unique (tests and the lint tool key on them).
const std::vector<SuiteKernel>& paper_kernel_suite();

/// A suite kernel instantiated with deterministic random tensors: the
/// sparse operand, the dense factors (order of appearance), and the bound
/// kernel referencing both. Heap-allocated so BoundKernel's internal
/// pointers stay valid across moves.
struct SuiteInstance {
  CooTensor sparse;
  std::vector<DenseTensor> factors;
  BoundKernel bound;

  /// The dense operand slots in kernel-input order, as executors take them.
  std::span<const DenseTensor* const> dense_slots() const {
    return bound.dense;
  }
};

std::unique_ptr<SuiteInstance> make_suite_instance(const SuiteKernel& sk,
                                                   std::uint64_t seed);

/// One named planner-option set of the lint sweep.
struct LintOptionSet {
  std::string name;
  PlannerOptions options;
};

/// The planner option sets spttn_lint sweeps (default, bound1 forcing the
/// relaxation loop, one per alternative cost model, and the anytime
/// strategy uncapped and node-budgeted). Shared with the
/// lowered-vs-interpreted differential tests so "every paper kernel under
/// every lint option set" means the same sweep everywhere.
const std::vector<LintOptionSet>& lint_option_sets();

}  // namespace spttn
