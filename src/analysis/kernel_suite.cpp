#include "analysis/kernel_suite.hpp"

#include "tensor/generate.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace spttn {

std::int64_t SuiteKernel::dim_of(const std::string& index_name) const {
  for (const auto& [n, d] : dims) {
    if (n == index_name) return d;
  }
  return -1;
}

std::vector<std::int64_t> SuiteKernel::sparse_dims() const {
  const Kernel k = Kernel::parse(expr);
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(k.sparse_ref().order()));
  for (int id : k.sparse_ref().idx) {
    const std::int64_t d = dim_of(k.index_name(id));
    SPTTN_CHECK_MSG(d > 0, "suite entry '" << name << "' misses extent for "
                                           << k.index_name(id));
    out.push_back(d);
  }
  return out;
}

const std::vector<SuiteKernel>& paper_kernel_suite() {
  static const std::vector<SuiteKernel> suite = {
      {"mttkrp3", "A(i,r) = T(i,j,k)*B(j,r)*C(k,r)",
       {{"i", 9}, {"j", 7}, {"k", 8}, {"r", 5}}, 0.08},
      {"mttkrp4", "A(i,r) = T(i,j,k,l)*B(j,r)*C(k,r)*D(l,r)",
       {{"i", 6}, {"j", 5}, {"k", 4}, {"l", 5}, {"r", 4}}, 0.04},
      {"ttmc3", "S(i,r,s) = T(i,j,k)*U(j,r)*V(k,s)",
       {{"i", 8}, {"j", 6}, {"k", 7}, {"r", 4}, {"s", 5}}, 0.08},
      {"ttmc4", "S(i,r,s,t) = T(i,j,k,l)*U(j,r)*V(k,s)*W(l,t)",
       {{"i", 5}, {"j", 4}, {"k", 5}, {"l", 4}, {"r", 3}, {"s", 3}, {"t", 3}},
       0.05},
      {"tttp3", "S(i,j,k) = T(i,j,k)*U(i,r)*V(j,r)*W(k,r)",
       {{"i", 8}, {"j", 7}, {"k", 6}, {"r", 5}}, 0.08},
      {"allmode_ttmc3", "S(r,s,u) = T(i,j,k)*U(i,r)*V(j,s)*W(k,u)",
       {{"i", 7}, {"j", 6}, {"k", 5}, {"r", 4}, {"s", 3}, {"u", 4}}, 0.08},
      {"tttc4", "Z(e,n) = T(i,j,k,n)*A(i,a)*B(a,j,b)*C(b,k,e)",
       {{"i", 5}, {"j", 4}, {"k", 4}, {"n", 3}, {"a", 3}, {"b", 3}, {"e", 3}},
       0.06},
      {"spmv_like", "y(i) = T(i,j)*x(j)", {{"i", 16}, {"j", 12}}, 0.2},
      {"sddmm_like", "S(i,j) = T(i,j)*U(i,r)*V(j,r)",
       {{"i", 10}, {"j", 9}, {"r", 6}}, 0.15},
      {"shared_factor", "A(i,r) = T(i,j,k)*B(j,r)*C(j,k,r)",
       {{"i", 6}, {"j", 5}, {"k", 6}, {"r", 4}}, 0.08},
  };
  return suite;
}

std::unique_ptr<SuiteInstance> make_suite_instance(const SuiteKernel& sk,
                                                   std::uint64_t seed) {
  Rng rng(seed);
  auto out = std::make_unique<SuiteInstance>();
  const Kernel k = Kernel::parse(sk.expr);
  const auto sdims = sk.sparse_dims();
  double space = 1;
  for (auto d : sdims) space *= static_cast<double>(d);
  const auto nnz = static_cast<std::int64_t>(space * sk.sparsity) + 1;
  out->sparse = random_coo(sdims, nnz, rng);
  for (int i = 0; i < k.num_inputs(); ++i) {
    if (i == k.sparse_input()) continue;
    std::vector<std::int64_t> fdims;
    for (int id : k.input(i).idx) {
      const std::int64_t d = sk.dim_of(k.index_name(id));
      SPTTN_CHECK_MSG(d > 0, "suite entry '" << sk.name
                                             << "' misses extent for "
                                             << k.index_name(id));
      fdims.push_back(d);
    }
    out->factors.push_back(random_dense(fdims, rng));
  }
  std::vector<const DenseTensor*> ptrs;
  ptrs.reserve(out->factors.size());
  for (const auto& f : out->factors) ptrs.push_back(&f);
  out->bound = spttn::bind(sk.expr, out->sparse, ptrs);
  return out;
}

const std::vector<LintOptionSet>& lint_option_sets() {
  static const std::vector<LintOptionSet> sets = [] {
    std::vector<LintOptionSet> s;
    s.push_back({"default", {}});
    {
      PlannerOptions o;
      o.buffer_dim_bound = 1;  // forces the relaxation loop on most kernels
      s.push_back({"bound1", o});
    }
    {
      PlannerOptions o;
      o.cost = CostKind::kCacheMiss;
      s.push_back({"cache-miss", o});
    }
    {
      PlannerOptions o;
      o.cost = CostKind::kMaxBufferSize;
      s.push_back({"max-buffer-size", o});
    }
    {
      PlannerOptions o;
      o.cost = CostKind::kMaxBufferDim;
      s.push_back({"max-buffer-dim", o});
    }
    {
      // Uncapped anytime search: deterministic, and its chosen cost matches
      // the exact strategy's on every suite kernel.
      PlannerOptions o;
      o.strategy = StrategyKind::kAnytime;
      s.push_back({"anytime", o});
    }
    {
      // Node-budgeted anytime search: exercises the budget-exhausted path
      // (beam truncation, incumbent pruning, gap reporting) while staying
      // deterministic — a wall-clock budget would not be.
      PlannerOptions o;
      o.strategy = StrategyKind::kAnytime;
      o.budget.max_nodes = 64;
      s.push_back({"anytime-budget", o});
    }
    return s;
  }();
  return sets;
}

}  // namespace spttn
