#include "analysis/plan_verifier.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "exec/executor.hpp"
#include "util/error.hpp"

namespace spttn {

std::string VerifyDiagnostic::to_string() const {
  std::ostringstream os;
  os << (severity == VerifySeverity::kError ? "error" : "warning") << " ["
     << rule << "]";
  if (!tree_path.empty()) os << " at " << tree_path;
  os << ": " << message;
  return os.str();
}

bool VerifyReport::ok() const { return errors() == 0; }

int VerifyReport::errors() const {
  int n = 0;
  for (const auto& d : diags) {
    if (d.severity == VerifySeverity::kError) ++n;
  }
  return n;
}

int VerifyReport::warnings() const {
  return static_cast<int>(diags.size()) - errors();
}

bool VerifyReport::has(std::string_view rule) const {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const VerifyDiagnostic& d) { return d.rule == rule; });
}

std::string VerifyReport::to_string() const {
  if (diags.empty()) return "clean";
  std::ostringstream os;
  for (std::size_t i = 0; i < diags.size(); ++i) {
    if (i) os << "\n";
    os << diags[i].to_string();
  }
  return os.str();
}

namespace {

using Action = LoopTree::Action;
using Node = LoopTree::Node;

bool rel_close(double a, double b, double tol) {
  if (a == b) return true;  // covers +-inf pairs and exact zeros
  if (std::isinf(a) || std::isinf(b)) return false;
  const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
  return std::fabs(a - b) <= tol * scale;
}

/// Facts about one top-level root-loop region, derived the way
/// FusedExecutor::analyze_parallel derives them — but from the plan's own
/// loop tree and buffer specs, not from the compiled access strides.
struct RegionFacts {
  int top_position = -1;
  int node_id = -1;
  int root_index = -1;
  bool sparse = false;
  bool par_safe = false;
  bool nest_safe = false;
  bool writes_out_dense = false;
  bool writes_out_sparse = false;
  bool out_dense_rooted = true;
  bool out_dense_inner_rooted = true;
};

/// One verification pass over a plan. Collects diagnostics; never throws on
/// malformed input (every array access is bounds-guarded and a malformed
/// tree short-circuits the structural passes that depend on the walk).
class Checker {
 public:
  Checker(const Kernel& kernel, const Plan& plan,
          const PlannerOptions& planner_options, const SparsityStats* stats,
          const VerifyOptions& options, bool collapse_dense = true)
      : collapse_(collapse_dense),
        k_(kernel),
        plan_(plan),
        popts_(planner_options),
        stats_(stats),
        opts_(options),
        n_terms_(plan.path.num_terms()),
        nodes_(plan.tree.nodes()),
        buffers_(plan.tree.buffers()) {}

  VerifyReport run() {
    if (!check_shapes()) return std::move(report_);
    walk_tree();
    if (!malformed_) {
      check_terms();
      check_buffers();
      analyze_regions();
    }
    check_cost();
    return std::move(report_);
  }

  /// Region facts for the executor cross-check; valid after run() on a
  /// structurally sound plan.
  const std::vector<RegionFacts>& regions() const { return regions_; }
  bool malformed() const { return malformed_; }
  bool buffer_allocated(std::size_t b) const {
    return b < allocated_.size() && allocated_[b] != 0;
  }
  bool buffer_shared(std::size_t b) const {
    return b < shared_.size() && shared_[b] != 0;
  }

 private:
  // --- reporting helpers ---

  void add(std::string rule, VerifySeverity sev, std::string path,
           std::string msg) {
    report_.diags.push_back(
        {std::move(rule), sev, std::move(path), std::move(msg)});
  }
  void error(std::string rule, std::string path, std::string msg) {
    add(std::move(rule), VerifySeverity::kError, std::move(path),
        std::move(msg));
  }
  void warn(std::string rule, std::string path, std::string msg) {
    add(std::move(rule), VerifySeverity::kWarning, std::move(path),
        std::move(msg));
  }

  std::string index_name(int id) const {
    if (id >= 0 && id < k_.num_indices()) return k_.index_name(id);
    return "#" + std::to_string(id);
  }

  std::string term_name(int t) const {
    if (t + 1 == n_terms_) return k_.output().name;
    return "X" + std::to_string(t + 1);
  }

  /// "i > j" path string for a chain of node ids, optionally ending at a
  /// named leaf action.
  std::string path_str(const std::vector<int>& chain,
                       const std::string& leaf = "") const {
    std::ostringstream os;
    for (std::size_t i = 0; i < chain.size(); ++i) {
      if (i) os << " > ";
      const auto n = static_cast<std::size_t>(chain[i]);
      os << (n < nodes_.size() ? index_name(nodes_[n].index) : "?");
    }
    if (!leaf.empty()) {
      if (!chain.empty()) os << " > ";
      os << leaf;
    }
    return os.str();
  }

  // --- passes ---

  bool check_shapes() {
    if (n_terms_ <= 0) {
      error("plan-empty", "", "contraction path has no terms");
      return false;
    }
    if (static_cast<int>(plan_.order.size()) != n_terms_) {
      error("order-invalid", "",
            "loop order has " + std::to_string(plan_.order.size()) +
                " entries for " + std::to_string(n_terms_) + " path terms");
      return false;
    }
    if (!is_valid_order(plan_.path, plan_.order)) {
      error("order-invalid", "",
            "loop order entries are not permutations of their terms' "
            "referenced indices");
      return false;
    }
    if (popts_.restrict_csf_order &&
        !respects_csf_order(k_, plan_.path, plan_.order)) {
      error("csf-order-violation", "",
            "planner options restrict sparse-carrying terms to CSF storage "
            "order, but the loop order violates it");
    }
    return true;
  }

  /// DFS over the forest. Validates ids, binding, CSF levels; records each
  /// term's ancestor chain and top-level position, reset locations, and
  /// every node's occurrence count.
  void walk_tree() {
    term_chain_.assign(static_cast<std::size_t>(n_terms_), {});
    term_top_.assign(static_cast<std::size_t>(n_terms_), -1);
    term_seen_.assign(static_cast<std::size_t>(n_terms_), 0);
    reset_top_.assign(static_cast<std::size_t>(n_terms_), -1);
    reset_body_.assign(static_cast<std::size_t>(n_terms_), kNoReset);
    reset_pos_.assign(static_cast<std::size_t>(n_terms_), -1);
    reset_seen_.assign(static_cast<std::size_t>(n_terms_), 0);
    node_seen_.assign(nodes_.size(), 0);

    std::vector<int> chain;
    IndexSet bound;
    const auto& top = plan_.tree.top();
    for (std::size_t t = 0; t < top.size(); ++t) {
      walk_body(top, static_cast<int>(t), kTopBody, chain, bound,
                /*sparse_depth=*/0, /*only=*/static_cast<int>(t));
    }
    for (int x = 0; x < n_terms_; ++x) {
      const auto u = static_cast<std::size_t>(x);
      if (term_seen_[u] == 0) {
        error("term-missing", "",
              "path term " + term_name(x) + " never executes in the tree");
        malformed_ = true;
      }
    }
  }

  /// Visit the actions of one body. `body_node` is the owning node id (or
  /// kTopBody); `top_pos` the enclosing top-level action position. When
  /// `only` >= 0, visit just that one body position (used for the top
  /// level, where each action is its own region).
  void walk_body(const std::vector<Action>& body, int top_pos, int body_node,
                 std::vector<int>& chain, IndexSet& bound, int sparse_depth,
                 int only = -1) {
    for (std::size_t pos = 0; pos < body.size(); ++pos) {
      if (only >= 0 && static_cast<int>(pos) != only) continue;
      const Action& a = body[pos];
      switch (a.kind) {
        case Action::Kind::kTerm: {
          if (a.id < 0 || a.id >= n_terms_) {
            error("tree-malformed", path_str(chain),
                  "term action id " + std::to_string(a.id) + " out of range");
            malformed_ = true;
            break;
          }
          const auto u = static_cast<std::size_t>(a.id);
          term_seen_[u] += 1;
          if (term_seen_[u] > 1) {
            error("term-duplicated", path_str(chain, term_name(a.id)),
                  "path term executes more than once");
            malformed_ = true;
            break;
          }
          term_chain_[u] = chain;
          term_top_[u] = top_pos;
          const PathTerm& term = plan_.path.term(a.id);
          if (!term.refs.subset_of(bound)) {
            std::ostringstream os;
            os << "term reads/writes unbound ";
            bool first = true;
            for (int id : (term.refs - bound).elements()) {
              os << (first ? "" : ", ") << index_name(id);
              first = false;
            }
            error("index-unbound", path_str(chain, term_name(a.id)),
                  os.str());
          }
          break;
        }
        case Action::Kind::kReset: {
          if (a.id < 0 || a.id >= n_terms_) {
            error("tree-malformed", path_str(chain),
                  "reset action id " + std::to_string(a.id) +
                      " out of range");
            malformed_ = true;
            break;
          }
          const auto u = static_cast<std::size_t>(a.id);
          reset_seen_[u] += 1;
          if (reset_seen_[u] > 1) {
            error("buffer-reset-duplicated",
                  path_str(chain, "reset " + term_name(a.id)),
                  "buffer is reset more than once per plan");
          } else {
            reset_top_[u] = top_pos;
            reset_body_[u] = body_node;
            reset_pos_[u] = static_cast<int>(pos);
          }
          break;
        }
        case Action::Kind::kLoop: {
          if (a.id < 0 || a.id >= static_cast<int>(nodes_.size())) {
            error("tree-malformed", path_str(chain),
                  "loop action node id " + std::to_string(a.id) +
                      " out of range");
            malformed_ = true;
            break;
          }
          const auto u = static_cast<std::size_t>(a.id);
          node_seen_[u] += 1;
          if (node_seen_[u] > 1) {
            error("tree-malformed", path_str(chain),
                  "loop node " + index_name(nodes_[u].index) +
                      " appears in more than one body (cycle or shared "
                      "subtree)");
            malformed_ = true;
            break;
          }
          const Node& n = nodes_[u];
          std::string here = path_str(chain, index_name(n.index));
          if (n.index < 0 || n.index >= k_.num_indices()) {
            error("tree-malformed", std::move(here),
                  "loop iterates index id " + std::to_string(n.index) +
                      ", which the kernel does not define");
            malformed_ = true;
            break;
          }
          const bool was_bound = bound.contains(n.index);
          if (was_bound) {
            error("index-rebound", here,
                  "index " + index_name(n.index) +
                      " is already bound by an enclosing loop");
          }
          const int lvl = k_.csf_level(n.index);
          const bool should_be_sparse = lvl >= 0 && lvl == sparse_depth;
          if (n.sparse != should_be_sparse) {
            error("csf-iteration-drift", here,
                  n.sparse
                      ? "loop is marked CSF-iterated but index " +
                            index_name(n.index) + " is not the sparse mode "
                            "at sparse depth " + std::to_string(sparse_depth)
                      : "loop is marked dense but index " +
                            index_name(n.index) +
                            " is the sparse mode at sparse depth " +
                            std::to_string(sparse_depth) +
                            " (the executor would iterate the CSF here)");
          }
          if (n.sparse && n.csf_level != lvl) {
            error("csf-level-mismatch", here,
                  "loop records CSF level " + std::to_string(n.csf_level) +
                      " but index " + index_name(n.index) + " is stored at "
                      "level " + std::to_string(lvl));
          }
          if (n.depth != static_cast<int>(chain.size())) {
            warn("node-depth-drift", here,
                  "node records depth " + std::to_string(n.depth) +
                      " but sits at depth " + std::to_string(chain.size()));
          }
          chain.push_back(a.id);
          bound.insert(n.index);
          walk_body(n.body, top_pos, a.id, chain, bound, sparse_depth +
                    (n.sparse ? 1 : 0));
          chain.pop_back();
          if (!was_bound) bound.erase(n.index);
          break;
        }
      }
    }
  }

  /// Each term's root-to-leaf loop chain must spell exactly its declared
  /// loop order (this is also the loop-extent check: the executor derives
  /// every loop's trip count from the index the chain names).
  void check_terms() {
    for (int t = 0; t < n_terms_; ++t) {
      const auto u = static_cast<std::size_t>(t);
      if (term_seen_[u] != 1) continue;
      const auto& chain = term_chain_[u];
      const auto& want = plan_.order[u];
      bool match = chain.size() == want.size();
      for (std::size_t i = 0; match && i < chain.size(); ++i) {
        match = nodes_[static_cast<std::size_t>(chain[i])].index == want[i];
      }
      if (!match) {
        error("loop-order-mismatch", path_str(chain, term_name(t)),
              "term's enclosing loop chain is (" + chain_str(chain) +
                  ") but its declared loop order is (" + order_str(want) +
                  ")");
      }
    }
  }

  std::string chain_str(const std::vector<int>& chain) const {
    std::ostringstream os;
    for (std::size_t i = 0; i < chain.size(); ++i) {
      if (i) os << ",";
      os << index_name(nodes_[static_cast<std::size_t>(chain[i])].index);
    }
    return os.str();
  }

  std::string order_str(const std::vector<int>& ids) const {
    std::ostringstream os;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (i) os << ",";
      os << index_name(ids[i]);
    }
    return os.str();
  }

  /// Buffer def-use, scope and extent rules. Also recomputes each buffer's
  /// Eq. 5 index set (`truth_`), which the parallel pass uses as the
  /// independent disjointness witness.
  void check_buffers() {
    allocated_.assign(static_cast<std::size_t>(n_terms_), 0);
    truth_.assign(static_cast<std::size_t>(n_terms_), IndexSet{});
    for (std::size_t b = 0; b < buffers_.size() &&
                            b < static_cast<std::size_t>(n_terms_);
         ++b) {
      const BufferSpec& spec = buffers_[b];
      const int x = static_cast<int>(b);
      const int y = plan_.path.consumer_of(x);
      if (spec.producer < 0) {
        // Unallocated slot (the final term, or a corrupt spec). A reset
        // for it would zero a zero-length buffer — harmless but drift.
        if (reset_seen_[b] > 0) {
          warn("buffer-reset-bogus", "",
               "reset exists for " + term_name(x) +
                   ", which has no intermediate buffer");
        }
        if (y >= 0) {
          error("buffer-missing", "",
                "term " + term_name(x) + " feeds " + term_name(y) +
                    " but the plan allocates no buffer for it");
        }
        continue;
      }
      if (spec.producer != x) {
        error("buffer-spec-mismatch", "",
              "buffer slot " + std::to_string(b) + " names producer " +
                  std::to_string(spec.producer));
        continue;
      }
      if (y < 0) {
        error("buffer-spec-mismatch", "",
              "final term " + term_name(x) +
                  " writes the kernel output, not a buffer");
        continue;
      }
      allocated_[b] = 1;
      if (spec.consumer != y) {
        error("buffer-spec-mismatch", "",
              "buffer of " + term_name(x) + " names consumer term " +
                  std::to_string(spec.consumer + 1) + " but the path's "
                  "consumer is " + term_name(y));
      }

      // Extents: every buffer dimension must equal the kernel's declared
      // extent of the index it materializes.
      bool extent_ok = spec.indices.size() == spec.dims.size();
      std::int64_t size = 1;
      for (std::size_t m = 0; extent_ok && m < spec.indices.size(); ++m) {
        const int id = spec.indices[m];
        if (id < 0 || id >= k_.num_indices() ||
            spec.dims[m] != k_.index_dim(id)) {
          extent_ok = false;
          break;
        }
        size *= spec.dims[m];
      }
      if (!extent_ok || size != spec.size) {
        error("buffer-extent-mismatch", "",
              "buffer of " + term_name(x) +
                  " has dims/size inconsistent with the kernel's declared "
                  "index extents");
      }

      // Eq. 5 recompute at the producer/consumer deepest common ancestor.
      const auto& ax = term_chain_[b];
      const auto& ay = term_chain_[static_cast<std::size_t>(y)];
      std::size_t common = 0;
      while (common < ax.size() && common < ay.size() &&
             ax[common] == ay[common]) {
        ++common;
      }
      IndexSet removed;
      for (std::size_t a = 0; a < common; ++a) {
        removed.insert(nodes_[static_cast<std::size_t>(ax[a])].index);
      }
      const IndexSet truth = plan_.path.term(x).out - removed;
      truth_[b] = truth;
      IndexSet spec_set;
      for (int id : spec.indices) {
        if (id >= 0 && id < IndexSet::kMaxIndex) spec_set.insert(id);
      }
      if (spec_set != truth) {
        error("buffer-scope", path_str({ax.begin(), ax.begin() +
                                        static_cast<std::ptrdiff_t>(common)},
                                       term_name(x)),
              "buffer indices (" + order_str(spec.indices) +
                  ") differ from the Eq. 5 recomputation (" +
                  order_str(truth.to_vector()) +
                  ") at the producer/consumer common scope — the buffer is "
                  "allocated at a different scope than the cost model "
                  "charged");
      } else {
        // Same set: the layout must also follow the producer's loop order
        // so the producer's innermost writes stay contiguous (what the
        // cache model assumed).
        std::vector<int> want;
        for (int id : plan_.order[b]) {
          if (truth.contains(id)) want.push_back(id);
        }
        if (want != spec.indices) {
          warn("buffer-layout-drift", "",
               "buffer of " + term_name(x) + " orders indices (" +
                   order_str(spec.indices) + ") instead of the producer's "
                   "loop order (" + order_str(want) + ")");
        }
      }

      // Def-use: reset exists, sits in the DCA body, and precedes the
      // producer's branch; the producer's branch precedes the consumer's.
      const int dca_body = common == 0
                               ? kTopBody
                               : ax[common - 1];
      const std::vector<Action>& body =
          dca_body == kTopBody
              ? plan_.tree.top()
              : nodes_[static_cast<std::size_t>(dca_body)].body;
      const auto branch_pos = [&](const std::vector<int>& chain,
                                  int term) -> int {
        Action::Kind kind;
        int id;
        if (common < chain.size()) {
          kind = Action::Kind::kLoop;
          id = chain[common];
        } else {
          kind = Action::Kind::kTerm;
          id = term;
        }
        for (std::size_t p = 0; p < body.size(); ++p) {
          if (body[p].kind == kind && body[p].id == id) {
            return static_cast<int>(p);
          }
        }
        return -1;
      };
      const int px = branch_pos(ax, x);
      const int py = branch_pos(ay, y);
      const std::string scope =
          path_str({ax.begin(),
                    ax.begin() + static_cast<std::ptrdiff_t>(common)});
      if (px < 0 || py < 0) {
        error("tree-malformed", scope,
              "producer/consumer branches of " + term_name(x) +
                  " not found in their common scope");
        continue;
      }
      if (px > py || (px == py && common >= ax.size())) {
        error("buffer-use-before-def", scope,
              term_name(y) + " reads the buffer of " + term_name(x) +
                  " before the producer has run");
      }
      if (reset_seen_[b] == 0) {
        error("buffer-reset-missing", scope,
              "buffer of " + term_name(x) + " is never reset — reads see "
              "stale values from the previous iteration");
        continue;
      }
      if (reset_body_[b] != dca_body) {
        error("buffer-reset-scope", scope,
              "buffer of " + term_name(x) + " is reset at the wrong loop "
              "depth (not in the producer/consumer deepest-common-ancestor "
              "body) — values would leak across iterations of the scope "
              "the cost model charged the buffer to");
      } else if (reset_pos_[b] > px) {
        error("buffer-reset-order", scope,
              "reset of " + term_name(x) + "'s buffer runs after the "
              "producer wrote it");
      }
    }
  }

  /// True when the executor's dense-chain collapse would fold this node's
  /// whole subtree into a single strided term (mirrors Impl::try_collapse).
  bool collapsible(int node_id) const {
    int cur = node_id;
    while (true) {
      const Node& n = nodes_[static_cast<std::size_t>(cur)];
      if (n.sparse || n.body.size() != 1) return false;
      const Action& a = n.body.front();
      if (a.kind == Action::Kind::kTerm) return true;
      if (a.kind != Action::Kind::kLoop) return false;
      if (a.id < 0 || a.id >= static_cast<int>(nodes_.size())) return false;
      cur = a.id;
    }
  }

  /// Region classification (mirrors FusedExecutor::analyze_parallel from
  /// the tree + specs) and the independent disjointness proof.
  void analyze_regions() {
    const int nb = n_terms_;
    // Sharedness, executor rule: a buffer is worker-private only when its
    // reset, producer and consumer all sit under the same top-level loop.
    shared_.assign(static_cast<std::size_t>(nb), 0);
    const auto& top = plan_.tree.top();
    for (int b = 0; b < nb; ++b) {
      const auto u = static_cast<std::size_t>(b);
      if (!allocated_[u]) continue;
      const int pt = term_top_[u];
      const int ct = plan_.path.consumer_of(b) >= 0
                         ? term_top_[static_cast<std::size_t>(
                               plan_.path.consumer_of(b))]
                         : -1;
      const bool local =
          pt >= 0 && pt < static_cast<int>(top.size()) &&
          top[static_cast<std::size_t>(pt)].kind == Action::Kind::kLoop &&
          ct == pt && reset_top_[u] == pt;
      shared_[u] = local ? 0 : 1;
    }

    const bool out_sparse = k_.output_is_sparse();
    const int final_term = n_terms_ - 1;
    for (std::size_t t = 0; t < top.size(); ++t) {
      if (top[t].kind != Action::Kind::kLoop) continue;
      const auto nid = static_cast<std::size_t>(top[t].id);
      const Node& root = nodes_[nid];
      RegionFacts f;
      f.top_position = static_cast<int>(t);
      f.node_id = top[t].id;
      f.root_index = root.index;
      f.sparse = root.sparse;
      f.writes_out_dense =
          !out_sparse &&
          term_top_[static_cast<std::size_t>(final_term)] ==
              static_cast<int>(t);
      f.writes_out_sparse =
          out_sparse &&
          term_top_[static_cast<std::size_t>(final_term)] ==
              static_cast<int>(t);
      if (f.writes_out_dense) {
        f.out_dense_rooted = k_.output().iset.contains(root.index);
      }

      // Classification, exactly as the executor would decide from the
      // plan's metadata.
      bool safe = !root.sparse || root.csf_level == 0;
      for (int b = 0; b < nb && safe; ++b) {
        const auto u = static_cast<std::size_t>(b);
        if (!allocated_[u] || !shared_[u]) continue;
        if (reset_top_[u] == static_cast<int>(t)) {
          safe = false;
          break;
        }
        if (term_top_[u] != static_cast<int>(t)) continue;
        const bool rooted =
            std::find(buffers_[u].indices.begin(), buffers_[u].indices.end(),
                      root.index) != buffers_[u].indices.end();
        if (!rooted) safe = false;
      }
      f.par_safe = safe;

      // Independent proof: when the region would be partitioned, every
      // shared buffer written under the root must truly be strided by the
      // root index — from the Eq. 5 recomputation, not the spec the
      // classification trusted. Distinct tasks own distinct root values,
      // so root-stridedness is exactly disjointness of their write sets.
      if (safe) {
        for (int b = 0; b < nb; ++b) {
          const auto u = static_cast<std::size_t>(b);
          if (!allocated_[u] || !shared_[u]) continue;
          if (term_top_[u] != static_cast<int>(t)) continue;
          if (!truth_[u].contains(root.index)) {
            error("par-write-overlap",
                  path_str({}, index_name(root.index)),
                  "root loop " + index_name(root.index) + " would be "
                  "partitioned, but the recomputed index set of " +
                  term_name(b) + "'s shared buffer does not contain the "
                  "root — distinct tasks would write overlapping regions");
          }
        }
      }

      // Nested-split eligibility (mirrors the executor's compiled-body
      // view: a single-loop body that the dense-chain collapse would not
      // fold away).
      int inner_id = -1;
      if (root.body.size() == 1 &&
          root.body.front().kind == Action::Kind::kLoop) {
        const int cand = root.body.front().id;
        if (cand >= 0 && cand < static_cast<int>(nodes_.size()) &&
            (!collapse_ || !collapsible(cand))) {
          inner_id = cand;
        }
      }
      bool nest = safe && inner_id >= 0;
      if (nest) {
        const Node& inner = nodes_[static_cast<std::size_t>(inner_id)];
        if (inner.sparse) {
          const int want_level = root.sparse ? root.csf_level + 1 : 0;
          nest = inner.csf_level == want_level;
        }
        for (int b = 0; b < nb && nest; ++b) {
          const auto u = static_cast<std::size_t>(b);
          if (!allocated_[u] || !shared_[u]) continue;
          if (term_top_[u] == static_cast<int>(t)) nest = false;
        }
      }
      f.nest_safe = nest;
      if (nest && f.writes_out_dense) {
        const Node& inner = nodes_[static_cast<std::size_t>(inner_id)];
        f.out_dense_inner_rooted = k_.output().iset.contains(inner.index);
      }
      regions_.push_back(f);
    }
  }

  void check_cost() {
    // Fingerprint first: it needs no tree.
    if (stats_ != nullptr && stats_->fingerprint() != 0 &&
        plan_.sparsity_fingerprint != 0 &&
        stats_->fingerprint() != plan_.sparsity_fingerprint) {
      error("fingerprint-mismatch", "",
            "plan was derived from a structurally different tensor than "
            "the sparsity statistics in hand (stale cached plan?)");
    }

    PlannerOptions effective = popts_;
    if (plan_.buffer_dim_bound > 0) {
      effective.buffer_dim_bound = plan_.buffer_dim_bound;
    }

    if (plan_.buffer_dim_bound > 0 &&
        effective.cost == CostKind::kBoundedBufferBlas && !malformed_) {
      const int dim = plan_.tree.max_buffer_dim();
      if (dim > effective.buffer_dim_bound) {
        error("buffer-bound-violation", "",
              "tree materializes a " + std::to_string(dim) +
                  "-dimensional intermediate but the plan records bound " +
                  std::to_string(effective.buffer_dim_bound));
      }
    }

    if (opts_.check_cost) {
      const std::unique_ptr<TreeCost> model =
          make_cost_model(effective, stats_);
      Cost got;
      bool evaluated = false;
      try {
        got = evaluate_cost(k_, plan_.path, plan_.order, *model);
        evaluated = true;
      } catch (const Error& e) {
        error("order-invalid", "",
              std::string("cost recomputation rejected the loop order: ") +
                  e.what());
      }
      if (evaluated &&
          (!rel_close(got.primary, plan_.cost.primary, opts_.rel_tol) ||
           !rel_close(got.secondary, plan_.cost.secondary, opts_.rel_tol) ||
           !rel_close(got.tertiary, plan_.cost.tertiary, opts_.rel_tol))) {
        error("cost-drift", "",
              "recorded cost " + plan_.cost.to_string() +
                  " != recomputed " + got.to_string() +
                  " under model " + model->name() +
                  " — planner and cost model have drifted");
      }
    }

    if (opts_.check_flops && stats_ != nullptr) {
      const double got = path_flops(k_, plan_.path, *stats_);
      if (!rel_close(got, plan_.flops, opts_.rel_tol)) {
        error("flops-drift", "",
              "recorded FLOP estimate " + std::to_string(plan_.flops) +
                  " != recomputed " + std::to_string(got));
      }
    }
  }

  static constexpr int kTopBody = -1;
  static constexpr int kNoReset = -2;

  const bool collapse_;  ///< mirror the executor's dense-chain collapse
  const Kernel& k_;
  const Plan& plan_;
  const PlannerOptions& popts_;
  const SparsityStats* stats_;
  const VerifyOptions& opts_;
  const int n_terms_;
  const std::vector<Node>& nodes_;
  const std::vector<BufferSpec>& buffers_;

  VerifyReport report_;
  bool malformed_ = false;
  std::vector<std::vector<int>> term_chain_;
  std::vector<int> term_top_;
  std::vector<int> term_seen_;
  std::vector<int> reset_top_;
  std::vector<int> reset_body_;  ///< node id owning the reset (kTopBody=top)
  std::vector<int> reset_pos_;   ///< position within that body
  std::vector<int> reset_seen_;
  std::vector<int> node_seen_;
  std::vector<char> allocated_;
  std::vector<char> shared_;
  std::vector<IndexSet> truth_;  ///< Eq. 5 recomputed buffer index sets
  std::vector<RegionFacts> regions_;
};

}  // namespace

PlanVerifier::PlanVerifier(const Kernel& kernel,
                           const PlannerOptions& planner_options,
                           const SparsityStats* stats,
                           const VerifyOptions& options)
    : kernel_(&kernel),
      planner_options_(planner_options),
      stats_(stats),
      options_(options) {}

VerifyReport PlanVerifier::verify(const Plan& plan) const {
  Checker checker(*kernel_, plan, planner_options_, stats_, options_);
  return checker.run();
}

VerifyReport PlanVerifier::verify(const Plan& plan,
                                  const FusedExecutor& exec) const {
  Checker checker(*kernel_, plan, planner_options_, stats_, options_,
                  exec.collapse_dense());
  VerifyReport report = checker.run();
  if (checker.malformed()) return report;

  // Cross-check the verifier's region facts (derived from the plan's tree)
  // against the compiled executor's locality analysis (derived from access
  // strides). Disagreement in the permissive direction — the executor
  // would partition where the verifier cannot prove disjointness — is an
  // error; the executor being *more* conservative only loses parallelism.
  const auto mine = checker.regions();
  const auto theirs = exec.parallel_regions();
  const auto add = [&](VerifySeverity sev, std::string msg) {
    report.diags.push_back({"par-analysis-mismatch", sev, "",
                            std::move(msg)});
  };
  if (mine.size() != theirs.size()) {
    add(VerifySeverity::kError,
        "verifier sees " + std::to_string(mine.size()) +
            " root regions, the executor compiled " +
            std::to_string(theirs.size()));
    return report;
  }
  for (std::size_t r = 0; r < mine.size(); ++r) {
    const RegionFacts& m = mine[r];
    const FusedExecutor::ParallelRegionInfo& e = theirs[r];
    const std::string where =
        "root region '" +
        (m.root_index >= 0 && m.root_index < kernel_->num_indices()
             ? kernel_->index_name(m.root_index)
             : std::string("?")) +
        "'";
    if (m.top_position != e.top_position || m.root_index != e.root_index) {
      add(VerifySeverity::kError,
          where + ": region placement differs between plan tree and "
                  "compiled program");
      continue;
    }
    const auto flag = [&](const char* name, bool mine_v, bool exec_v,
                          bool permissive_is_error) {
      if (mine_v == exec_v) return;
      const bool exec_permissive = exec_v && !mine_v;
      if (permissive_is_error && exec_permissive) {
        add(VerifySeverity::kError,
            where + ": executor claims " + name +
                " but the verifier cannot prove it from the plan");
      } else {
        add(VerifySeverity::kWarning,
            where + ": " + name + " differs (verifier=" +
                (mine_v ? "true" : "false") + ", executor=" +
                (exec_v ? "true" : "false") + ")");
      }
    };
    flag("par_safe", m.par_safe, e.par_safe, true);
    flag("nest_safe", m.nest_safe, e.nest_safe, true);
    flag("out_dense_rooted", m.out_dense_rooted, e.out_dense_rooted, true);
    flag("out_dense_inner_rooted", m.out_dense_inner_rooted,
         e.out_dense_inner_rooted, true);
    flag("writes_out_dense", m.writes_out_dense, e.writes_out_dense, false);
    flag("writes_out_sparse", m.writes_out_sparse, e.writes_out_sparse,
         false);
  }
  const auto exec_shared = exec.shared_buffers();
  for (std::size_t b = 0; b < exec_shared.size(); ++b) {
    const bool mine_shared =
        checker.buffer_allocated(b) && checker.buffer_shared(b);
    if (mine_shared != exec_shared[b]) {
      // A buffer the executor treats as private while the verifier proves
      // it shared means workers would race on it.
      add(exec_shared[b] ? VerifySeverity::kWarning : VerifySeverity::kError,
          "buffer of X" + std::to_string(b + 1) +
              ": sharedness differs (verifier=" +
              (mine_shared ? "shared" : "private") + ", executor=" +
              (exec_shared[b] ? "shared" : "private") + ")");
    }
  }
  return report;
}

VerifyReport verify_plan(const Kernel& kernel, const Plan& plan,
                         const PlannerOptions& planner_options,
                         const SparsityStats* stats) {
  return PlanVerifier(kernel, planner_options, stats).verify(plan);
}

void verify_plan_or_throw(const Kernel& kernel, const Plan& plan,
                          const PlannerOptions& planner_options,
                          const SparsityStats* stats) {
  const VerifyReport report =
      verify_plan(kernel, plan, planner_options, stats);
  SPTTN_CHECK_MSG(report.ok(), "plan verification failed for kernel "
                                   << kernel.to_string() << ":\n"
                                   << report.to_string());
}

VerifyReport verify_external_plan(const Kernel& kernel, const Plan& plan,
                                  const FusedExecutor* exec) {
  PlannerOptions relaxed;
  relaxed.restrict_csf_order = false;
  VerifyOptions structural;
  structural.check_cost = false;
  structural.check_flops = false;
  const PlanVerifier verifier(kernel, relaxed, nullptr, structural);
  return exec != nullptr ? verifier.verify(plan, *exec) : verifier.verify(plan);
}

}  // namespace spttn
