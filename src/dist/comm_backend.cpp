#include "dist/comm_backend.hpp"

#include <algorithm>
#include <cmath>

#include "exec/kernels.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

#ifdef SPTTN_WITH_MPI
#include "dist/mpi_comm.hpp"
#endif

namespace spttn {

CommBackend::CommBackend(int ranks, CommParams params)
    : ranks_(ranks), params_(params) {
  SPTTN_CHECK_MSG(ranks >= 1, "rank count must be positive, got " << ranks);
  SPTTN_CHECK_MSG(std::isfinite(params.alpha_seconds) &&
                      params.alpha_seconds >= 0.0,
                  "CommParams::alpha_seconds must be finite and >= 0, got "
                      << params.alpha_seconds);
  SPTTN_CHECK_MSG(
      std::isfinite(params.beta_seconds_per_byte) &&
          params.beta_seconds_per_byte >= 0.0,
      "CommParams::beta_seconds_per_byte must be finite and >= 0, got "
          << params.beta_seconds_per_byte);
}

CommBackend::~CommBackend() = default;

void CommBackend::begin_run() {
  events_.clear();
  sources_.clear();
  do_begin_run();
}

void CommBackend::do_begin_run() {}

void CommBackend::run_ranks(bool concurrent,
                            const std::function<void(std::int64_t)>& body) {
  do_run_ranks(concurrent && ranks_ > 1, body);
}

void CommBackend::do_run_ranks(
    bool concurrent, const std::function<void(std::int64_t)>& body) {
  if (concurrent) {
    ThreadPool::global().parallel_apply(ranks_, body);
  } else {
    for (std::int64_t r = 0; r < ranks_; ++r) body(r);
  }
}

int CommBackend::allgather(const DenseTensor& payload) {
  const int slot = static_cast<int>(sources_.size());
  sources_.push_back(&payload);
  CommEvent ev = do_allgather(payload, slot);
  ev.kind = CollectiveKind::kAllgather;
  events_.push_back(ev);
  return slot;
}

const DenseTensor& CommBackend::gathered(int rank, int slot) const {
  SPTTN_CHECK_MSG(rank >= 0 && rank < ranks_, "rank " << rank
                                                      << " out of range");
  SPTTN_CHECK_MSG(
      slot >= 0 && slot < static_cast<int>(sources_.size()),
      "allgather slot " << slot << " out of range " << sources_.size());
  return do_gathered(rank, slot);
}

const DenseTensor& CommBackend::do_gathered(int /*rank*/, int slot) const {
  return *sources_[static_cast<std::size_t>(slot)];
}

void CommBackend::allreduce(std::span<const DenseTensor* const> partials,
                            DenseTensor* out) {
  SPTTN_CHECK_MSG(static_cast<int>(partials.size()) == ranks_,
                  "allreduce wants one partial slot per rank, got "
                      << partials.size() << " for " << ranks_ << " ranks");
  CommEvent ev = do_allreduce(partials, out);
  ev.kind = CollectiveKind::kAllreduce;
  // A one-process collective is free and was never charged by the inline
  // model; keep the event log empty so single-rank runs report no comm.
  if (ranks_ > 1) events_.push_back(ev);
}

void CommBackend::fold_partials(std::span<const DenseTensor* const> partials,
                                DenseTensor* out, std::int64_t tile) {
  const std::int64_t n = out->size();
  if (n == 0) return;
  const auto fold_range = [&](std::int64_t begin, std::int64_t len) {
    for (const DenseTensor* p : partials) {
      if (p == nullptr) continue;
      xaxpy(len, 1.0, p->data() + begin, 1, out->data() + begin, 1);
    }
  };
  if (tile <= 0 || tile >= n) {
    fold_range(0, n);
    return;
  }
  const std::int64_t tiles = (n + tile - 1) / tile;
  ThreadPool::global().parallel_apply(tiles, [&](std::int64_t t) {
    const std::int64_t begin = t * tile;
    fold_range(begin, std::min(tile, n - begin));
  });
}

// ------------------------------------------------------------ ModeledComm

ModeledComm::ModeledComm(int ranks, CommParams params)
    : CommBackend(ranks, params) {}

CommEvent ModeledComm::do_allgather(const DenseTensor& payload, int /*slot*/) {
  CommEvent ev;
  ev.bytes = payload.size() * static_cast<std::int64_t>(sizeof(double));
  ev.seconds = allgather_seconds(ev.bytes, ranks_, params_);
  ev.modeled = true;
  return ev;
}

CommEvent ModeledComm::do_allreduce(
    std::span<const DenseTensor* const> partials, DenseTensor* out) {
  // Sequential ascending-rank fold: byte-for-byte the historical inline
  // xaxpy loop of DistSpttn::run.
  fold_partials(partials, out, /*tile=*/0);
  CommEvent ev;
  ev.bytes = out->size() * static_cast<std::int64_t>(sizeof(double));
  ev.seconds = allreduce_seconds(ev.bytes, ranks_, params_);
  ev.modeled = true;
  return ev;
}

// -------------------------------------------------------------- ShmemComm

ShmemComm::ShmemComm(int ranks, CommParams params)
    : CommBackend(ranks, params) {}

void ShmemComm::do_begin_run() { replicas_.clear(); }

CommEvent ShmemComm::do_allgather(const DenseTensor& payload, int slot) {
  SPTTN_CHECK(static_cast<std::size_t>(slot) == replicas_.size());
  // Receive buffers are setup, not transport: allocate untimed, then
  // measure the actual byte movement (every rank's copy lands in parallel,
  // as a real allgather's per-rank receives do).
  std::vector<DenseTensor>& reps = replicas_.emplace_back();
  reps.reserve(static_cast<std::size_t>(ranks_));
  for (int r = 0; r < ranks_; ++r) reps.emplace_back(payload.dims());
  Timer t;
  ThreadPool::global().parallel_apply(ranks_, [&](std::int64_t r) {
    std::copy(payload.data(), payload.data() + payload.size(),
              reps[static_cast<std::size_t>(r)].data());
  });
  CommEvent ev;
  ev.bytes = payload.size() * static_cast<std::int64_t>(sizeof(double));
  ev.seconds = t.seconds();
  ev.modeled = false;
  return ev;
}

const DenseTensor& ShmemComm::do_gathered(int rank, int slot) const {
  return replicas_[static_cast<std::size_t>(slot)]
                  [static_cast<std::size_t>(rank)];
}

CommEvent ShmemComm::do_allreduce(std::span<const DenseTensor* const> partials,
                                  DenseTensor* out) {
  // Tiled ascending-rank fold on the pool: tiles are fixed-size (host
  // independent) and elements are independent, so the result is bit
  // identical to the sequential fold no matter how tiles are scheduled.
  // The reduced output is readable in place by every rank (shared memory
  // is the transport), so the measured movement is the reduction itself.
  Timer t;
  fold_partials(partials, out, kReduceTile);
  CommEvent ev;
  ev.bytes = out->size() * static_cast<std::int64_t>(sizeof(double));
  ev.seconds = t.seconds();
  ev.modeled = false;
  return ev;
}

// ---------------------------------------------------------------- factory

std::unique_ptr<CommBackend> make_comm_backend(const std::string& name,
                                               int ranks, CommParams params) {
  if (name == "modeled") return std::make_unique<ModeledComm>(ranks, params);
  if (name == "shmem") return std::make_unique<ShmemComm>(ranks, params);
  if (name == "mpi") {
#ifdef SPTTN_WITH_MPI
    return std::make_unique<MpiComm>(ranks, params);
#else
    throw Error(
        "comm backend 'mpi' requires configuring with -DSPTTN_WITH_MPI=ON");
#endif
  }
  throw Error("unknown comm backend '" + name +
              "' (available: modeled, shmem" +
#ifdef SPTTN_WITH_MPI
              ", mpi" +
#endif
              std::string(")"));
}

std::vector<std::string> comm_backend_names() {
  std::vector<std::string> names{"modeled", "shmem"};
#ifdef SPTTN_WITH_MPI
  names.push_back("mpi");
#endif
  return names;
}

}  // namespace spttn
