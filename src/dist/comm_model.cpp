#include "dist/comm_model.hpp"

#include <cmath>

namespace spttn {

namespace {

double log2_ceil(int p) {
  int steps = 0;
  for (int span = 1; span < p; span *= 2) ++steps;
  return static_cast<double>(steps);
}

double collective(std::int64_t bytes, int p, double latency_terms,
                  double volume_factor, const CommParams& params) {
  if (p <= 1 || bytes <= 0) return 0.0;
  return latency_terms * params.alpha_seconds +
         volume_factor * static_cast<double>(bytes) *
             params.beta_seconds_per_byte;
}

}  // namespace

double allreduce_seconds(std::int64_t bytes, int p, const CommParams& params) {
  const double frac = static_cast<double>(p - 1) / static_cast<double>(p);
  return collective(bytes, p, 2 * log2_ceil(p), 2 * frac, params);
}

double allgather_seconds(std::int64_t bytes, int p, const CommParams& params) {
  const double frac = static_cast<double>(p - 1) / static_cast<double>(p);
  return collective(bytes, p, log2_ceil(p), frac, params);
}

double reduce_scatter_seconds(std::int64_t bytes, int p,
                              const CommParams& params) {
  const double frac = static_cast<double>(p - 1) / static_cast<double>(p);
  return collective(bytes, p, log2_ceil(p), frac, params);
}

double bcast_seconds(std::int64_t bytes, int p, const CommParams& params) {
  return collective(bytes, p, log2_ceil(p), 1.0, params);
}

}  // namespace spttn
