// Alpha-beta cost model for the collectives of the simulated distributed
// runtime (paper Section 5.2; constants recorded in EXPERIMENTS.md).
//
// Every collective over `bytes` payload on `p` ranks is charged
//   latency_terms * alpha + volume_factor * bytes * beta
// with the standard volume factors of the recursive-halving/doubling
// algorithms (Thakur et al.): an all-reduce moves 2(p-1)/p of the payload,
// allgather and reduce-scatter (p-1)/p each, broadcast one full copy down a
// binomial tree. One process (or zero bytes) always costs zero.
#pragma once

#include <cstdint>

namespace spttn {

/// Machine constants of the alpha-beta model. Defaults approximate one
/// modern cluster node pair: 1 us message latency, 10 GB/s injection
/// bandwidth per rank.
struct CommParams {
  double alpha_seconds = 1e-6;        ///< per-message latency
  double beta_seconds_per_byte = 1e-10;  ///< inverse bandwidth
};

/// MPI_Allreduce (recursive halving + doubling):
/// 2*ceil(log2 p)*alpha + 2*(p-1)/p * bytes * beta.
double allreduce_seconds(std::int64_t bytes, int p, const CommParams& params);

/// MPI_Allgather (recursive doubling), `bytes` = full gathered payload:
/// ceil(log2 p)*alpha + (p-1)/p * bytes * beta.
double allgather_seconds(std::int64_t bytes, int p, const CommParams& params);

/// MPI_Reduce_scatter (recursive halving), `bytes` = full reduced payload:
/// ceil(log2 p)*alpha + (p-1)/p * bytes * beta.
double reduce_scatter_seconds(std::int64_t bytes, int p,
                              const CommParams& params);

/// MPI_Bcast (binomial tree, pipelined):
/// ceil(log2 p)*alpha + bytes * beta.
double bcast_seconds(std::int64_t bytes, int p, const CommParams& params);

}  // namespace spttn
