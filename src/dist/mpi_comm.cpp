#ifdef SPTTN_WITH_MPI

#include "dist/mpi_comm.hpp"

#include <mpi.h>

#include <algorithm>

#include "util/error.hpp"
#include "util/timer.hpp"

namespace spttn {

MpiComm::MpiComm(int ranks, CommParams params) : CommBackend(ranks, params) {
  int initialized = 0;
  MPI_Initialized(&initialized);
  SPTTN_CHECK_MSG(initialized != 0,
                  "MpiComm requires MPI_Init before construction");
  int world = 0;
  MPI_Comm_size(MPI_COMM_WORLD, &world);
  SPTTN_CHECK_MSG(world == 1,
                  "MpiComm currently simulates ranks in one process and "
                  "requires a world of size 1, got "
                      << world << " (see dist/mpi_comm.hpp)");
}

void MpiComm::do_begin_run() { replicas_.clear(); }

CommEvent MpiComm::do_allgather(const DenseTensor& payload, int slot) {
  SPTTN_CHECK(static_cast<std::size_t>(slot) == replicas_.size());
  std::vector<DenseTensor>& reps = replicas_.emplace_back();
  reps.reserve(static_cast<std::size_t>(ranks_));
  for (int r = 0; r < ranks_; ++r) reps.emplace_back(payload.dims());
  Timer t;
  // World of size 1: the gather degenerates to a self-copy into rank 0's
  // receive buffer; the remaining simulated ranks replicate from it.
  MPI_Allgather(payload.data(), static_cast<int>(payload.size()), MPI_DOUBLE,
                reps[0].data(), static_cast<int>(payload.size()), MPI_DOUBLE,
                MPI_COMM_WORLD);
  for (int r = 1; r < ranks_; ++r) {
    std::copy(reps[0].data(), reps[0].data() + reps[0].size(),
              reps[static_cast<std::size_t>(r)].data());
  }
  CommEvent ev;
  ev.bytes = payload.size() * static_cast<std::int64_t>(sizeof(double));
  ev.seconds = t.seconds();
  ev.modeled = false;
  return ev;
}

const DenseTensor& MpiComm::do_gathered(int rank, int slot) const {
  return replicas_[static_cast<std::size_t>(slot)]
                  [static_cast<std::size_t>(rank)];
}

CommEvent MpiComm::do_allreduce(std::span<const DenseTensor* const> partials,
                                DenseTensor* out) {
  Timer t;
  // Simulated ranks share the process: fold their partials locally
  // (ascending rank order, the cross-backend determinism contract), then
  // issue the cross-process all-reduce — in place, a no-op on a world of
  // size 1 but the real collective once partitions are distributed.
  fold_partials(partials, out, /*tile=*/0);
  MPI_Allreduce(MPI_IN_PLACE, out->data(), static_cast<int>(out->size()),
                MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD);
  CommEvent ev;
  ev.bytes = out->size() * static_cast<std::int64_t>(sizeof(double));
  ev.seconds = t.seconds();
  ev.modeled = false;
  return ev;
}

}  // namespace spttn

#endif  // SPTTN_WITH_MPI
