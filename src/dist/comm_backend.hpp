// Pluggable communication backends for the distributed runtime.
//
// DistSpttn::run is transport-agnostic: rank scheduling, the dense-factor
// allgathers, and the output all-reduce all flow through a CommBackend.
// Every collective issued through the backend is recorded as a CommEvent
// (kind, payload bytes, seconds, modeled-vs-measured), so DistResult can
// report a per-collective breakdown regardless of transport.
//
// Three implementations:
//  - ModeledComm: the alpha-beta cost model of dist/comm_model.hpp. No
//    bytes move; seconds are charged analytically. This is the historical
//    simulated transport, preserved bit-for-bit: DistResult::time() under
//    ModeledComm equals what the pre-backend inline charging produced.
//  - ShmemComm: a real shared-memory transport. Ranks run as tasks on the
//    process-wide ThreadPool, allgathers materialize one replica of the
//    payload per rank (ranks then read their own replica during local
//    execution), and the output all-reduce is a tiled rank-ordered fold
//    over the per-rank partials. Seconds are *measured* wall-clock, which
//    is what calibrates the alpha-beta constants against reality.
//  - MpiComm (dist/mpi_comm.hpp, behind the SPTTN_WITH_MPI CMake option):
//    collectives issued through MPI. Interface-complete scaffolding for a
//    multi-process runtime; see the header for its current limits.
//
// Determinism contract: allreduce folds partials element-wise in ascending
// rank order for every backend, so kernel outputs are bit-identical across
// backends and across sequential/concurrent rank scheduling.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dist/comm_model.hpp"
#include "tensor/dense_tensor.hpp"

namespace spttn {

/// Which collective a CommEvent records.
enum class CollectiveKind { kAllgather, kAllreduce };

/// One collective issued through a CommBackend during a run.
struct CommEvent {
  CollectiveKind kind = CollectiveKind::kAllgather;
  /// Payload bytes of the collective (the gathered factor / reduced
  /// output), uniform across backends so modeled and measured rows are
  /// volume-comparable. Transports may move more than this internally
  /// (ShmemComm writes one replica per rank).
  std::int64_t bytes = 0;
  /// Charged (modeled) or measured (real transport) wall-clock seconds.
  double seconds = 0;
  /// True when `seconds` comes from the alpha-beta model, false when it
  /// was measured around real buffer movement.
  bool modeled = true;
};

/// Transport interface of the distributed runtime. One instance serves one
/// rank count; DistSpttn::run resets per-run state via begin_run().
///
/// Public methods are non-virtual wrappers that maintain the event log;
/// backends implement the do_* hooks.
class CommBackend {
 public:
  CommBackend(int ranks, CommParams params);
  virtual ~CommBackend();

  CommBackend(const CommBackend&) = delete;
  CommBackend& operator=(const CommBackend&) = delete;

  /// Stable backend identifier ("modeled", "shmem", "mpi").
  virtual std::string name() const = 0;
  /// True when collective seconds are charged to the alpha-beta model
  /// rather than measured around real buffer movement.
  virtual bool modeled() const = 0;

  int ranks() const { return ranks_; }
  const CommParams& params() const { return params_; }

  /// Reset per-run state (event log, gathered replicas). DistSpttn::run
  /// calls this first, so one backend instance serves repeated runs.
  void begin_run();

  /// Collectives issued since begin_run(), in issue order.
  const std::vector<CommEvent>& events() const { return events_; }

  /// Schedule body(r) for every rank in [0, ranks). Backends choose the
  /// schedule; the base implementation runs ranks sequentially, or as one
  /// task each on the process-wide ThreadPool when `concurrent` is set
  /// (lanes own contiguous rank ranges, so a rank's work stays on one
  /// thread unless stolen).
  void run_ranks(bool concurrent, const std::function<void(std::int64_t)>& body);

  /// Allgather a dense factor: after the call every rank can read the full
  /// payload through gathered(). Returns the slot id to pass to gathered().
  /// Logged as one CommEvent with bytes = payload bytes.
  int allgather(const DenseTensor& payload);

  /// Rank-local view of allgathered slot `slot` (a per-rank replica for
  /// real transports, the original payload for ModeledComm).
  const DenseTensor& gathered(int rank, int slot) const;

  /// All-reduce the per-rank output partials into `out`: fold element-wise
  /// in ascending rank order (bit-deterministic; null entries are idle
  /// ranks and are skipped). `out` must be zero-initialized. On a single
  /// rank the fold still happens but no event is logged (a one-process
  /// collective is free, matching the historical charging).
  void allreduce(std::span<const DenseTensor* const> partials,
                 DenseTensor* out);

 protected:
  virtual void do_run_ranks(bool concurrent,
                            const std::function<void(std::int64_t)>& body);
  /// Move the payload (if the transport moves bytes) and price the
  /// collective. `slot` is the id the wrapper will hand out.
  virtual CommEvent do_allgather(const DenseTensor& payload, int slot) = 0;
  virtual const DenseTensor& do_gathered(int rank, int slot) const;
  virtual CommEvent do_allreduce(std::span<const DenseTensor* const> partials,
                                 DenseTensor* out) = 0;
  /// Clear backend-owned per-run state (base clears nothing).
  virtual void do_begin_run();

  /// Element-wise ascending-rank fold of `partials` into `out` — the one
  /// deterministic reduction both shipped backends use. `tile` > 0 splits
  /// the element range into fixed tiles run on the process-wide pool
  /// (tiling never changes fold order: elements are independent and each
  /// is still summed in ascending rank order).
  static void fold_partials(std::span<const DenseTensor* const> partials,
                            DenseTensor* out, std::int64_t tile);

  const int ranks_;
  const CommParams params_;
  std::vector<CommEvent> events_;
  /// Slot id -> original payload (for do_gathered's default).
  std::vector<const DenseTensor*> sources_;
};

/// The alpha-beta model as a backend: the historical simulated transport,
/// now a test double. No bytes move; ranks read the original factors; the
/// all-reduce is the sequential ascending-rank fold; seconds come from
/// dist/comm_model.hpp.
class ModeledComm final : public CommBackend {
 public:
  ModeledComm(int ranks, CommParams params = {});
  std::string name() const override { return "modeled"; }
  bool modeled() const override { return true; }

 protected:
  CommEvent do_allgather(const DenseTensor& payload, int slot) override;
  CommEvent do_allreduce(std::span<const DenseTensor* const> partials,
                         DenseTensor* out) override;
};

/// Real shared-memory transport: allgathers copy the payload into one
/// replica per rank (ranks read their replica during local execution), the
/// all-reduce is a tiled ascending-rank fold over the partials on the
/// process-wide pool, and every event's seconds are measured wall-clock.
/// The reduced output is readable in place by every rank (shared memory is
/// the transport), so the measured all-reduce covers the reduction's
/// buffer movement; EXPERIMENTS.md describes calibrating CommParams from
/// these measurements.
class ShmemComm final : public CommBackend {
 public:
  ShmemComm(int ranks, CommParams params = {});
  std::string name() const override { return "shmem"; }
  bool modeled() const override { return false; }

 protected:
  CommEvent do_allgather(const DenseTensor& payload, int slot) override;
  const DenseTensor& do_gathered(int rank, int slot) const override;
  CommEvent do_allreduce(std::span<const DenseTensor* const> partials,
                         DenseTensor* out) override;
  void do_begin_run() override;

 private:
  /// Elements per all-reduce tile; fixed (not pool-derived) so the
  /// partition shape never depends on the host.
  static constexpr std::int64_t kReduceTile = 8192;
  /// replicas_[slot][rank] = this rank's copy of the gathered payload.
  std::vector<std::vector<DenseTensor>> replicas_;
};

/// Construct a backend by name: "modeled", "shmem", or "mpi" (the latter
/// only when built with -DSPTTN_WITH_MPI=ON; otherwise throws Error).
std::unique_ptr<CommBackend> make_comm_backend(const std::string& name,
                                               int ranks,
                                               CommParams params = {});

/// Backend names constructible in this binary, in preference order.
std::vector<std::string> comm_backend_names();

}  // namespace spttn
