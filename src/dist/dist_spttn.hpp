// Distributed-memory SpTTN execution (paper Section 5.2) over pluggable
// communication backends.
//
// The sparse tensor's nonzeros are partitioned cyclically over a ProcGrid;
// each rank runs the planner-chosen loop nest on its local CSF (timed for
// real). Rank scheduling, the dense-factor allgathers, and the closing
// output all-reduce all flow through a CommBackend (dist/comm_backend.hpp):
// ModeledComm charges the alpha-beta model of dist/comm_model.hpp — the
// historical simulated transport, how CoNST and SparseAuto validate
// distributed schedules without a live cluster — while ShmemComm moves real
// bytes (per-rank factor replicas, tiled partial reduction) and reports
// measured seconds. Every backend folds rank partials element-wise in
// ascending rank order, so kernel outputs are bit-identical across
// backends and across sequential/concurrent rank scheduling. Sparse
// outputs (TTTP) live with their owning rank and need no reduction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dist/comm_backend.hpp"
#include "dist/comm_model.hpp"
#include "dist/grid.hpp"
#include "exec/spttn.hpp"

namespace spttn {

/// Per-collective-kind totals derived from a DistResult's event log.
struct CommBreakdown {
  int count = 0;
  std::int64_t bytes = 0;
  double seconds = 0;
};

/// Outcome of one distributed run.
struct DistResult {
  int ranks = 1;
  ProcGrid grid;
  /// Name of the transport the run used ("modeled", "shmem", "mpi").
  std::string backend = "modeled";
  /// True when comm seconds were charged to the alpha-beta model, false
  /// when they were measured around real buffer movement.
  bool modeled = true;
  /// Measured wall-clock of each rank's local kernel (zero for idle ranks).
  std::vector<double> local_seconds;
  double max_local_seconds = 0;
  /// Total collective time / volume (factor allgathers + output
  /// all-reduce; zero on a single rank). Sum over `events`.
  double comm_seconds = 0;
  std::int64_t comm_bytes = 0;
  /// Every collective the backend issued, in issue order.
  std::vector<CommEvent> events;
  /// Load imbalance: max over ranks of local nnz divided by the mean.
  double imbalance = 1.0;

  /// Totals for one collective kind (allgather vs allreduce observability).
  CommBreakdown breakdown(CollectiveKind kind) const;

  /// End-to-end time: slowest rank plus collectives.
  double time() const { return max_local_seconds + comm_seconds; }
};

/// A bound kernel prepared for execution on `ranks` processes.
///
/// Construction partitions the nonzeros (cheap, metadata only); run() plans
/// once from the global sparsity statistics — SPMD ranks execute the same
/// nest — then executes every rank's local problem and merges the partials
/// through the communication backend. Planning goes through the
/// process-wide KernelCache, so repeated runs over the same bound tensor
/// (rank-count sweeps, iterative drivers) reuse one cached plan instead of
/// re-searching per run.
class DistSpttn {
 public:
  /// `params` feeds ModeledComm charging (and backends constructed through
  /// the backend-less run() overload); rejected unless finite and >= 0.
  DistSpttn(const BoundKernel& bound, int ranks, CommParams params = {});

  const ProcGrid& grid() const { return grid_; }
  /// Nonzeros owned by each rank; sums to the global nnz.
  const std::vector<std::int64_t>& local_nnz() const { return local_nnz_; }

  /// Execute over the historical modeled transport (constructs a
  /// ModeledComm from this instance's CommParams). Bit-for-bit the
  /// pre-backend behavior, including DistResult::time().
  DistResult run(const PlannerOptions& options, DenseTensor* dense_out,
                 std::span<double> sparse_out, int local_threads = 1,
                 bool concurrent_ranks = false) const;

  /// Execute over an explicit transport. For dense-output kernels the
  /// reduced result is written to `dense_out` (may be null to discard,
  /// e.g. for scaling benches); for sparse-output kernels the merged
  /// per-nonzero values go to `sparse_out` in global (sorted-COO) entry
  /// order (may be empty to discard). `comm.ranks()` must equal this
  /// instance's rank count.
  ///
  /// `local_threads` > 1 runs each rank's local loop nest through the
  /// process-wide thread pool (hybrid MPI+threads, paper Section 5.2's
  /// 64-rank-per-node setup maps ranks*threads onto one machine here).
  /// `concurrent_ranks` asks the backend to schedule ranks concurrently on
  /// the pool; every rank computes into a private partial either way and
  /// the backend folds partials in ascending rank order, so results are
  /// bit-identical to sequential rank scheduling. Per-rank wall-clock is
  /// measured around each rank's own run either way — on an oversubscribed
  /// machine concurrent ranks time-share cores, so keep the default for
  /// timing-faithful per-rank seconds and opt in for simulation throughput
  /// (e.g. sweeping many rank counts). Combining concurrent_ranks with
  /// local_threads > 1 stays correct and bit-identical (each rank executes
  /// the same partition shape inline, since rank tasks already occupy the
  /// pool) but adds no concurrency — prefer local_threads = 1 when ranks
  /// run concurrently. Peak memory holds one output partial per non-empty
  /// rank until the backend's all-reduce (the collective operates on the
  /// rank partials, exactly as a real transport would).
  DistResult run(CommBackend& comm, const PlannerOptions& options,
                 DenseTensor* dense_out, std::span<double> sparse_out,
                 int local_threads = 1, bool concurrent_ranks = false) const;

 private:
  const BoundKernel* bound_;
  int ranks_;
  CommParams params_;
  ProcGrid grid_;
  std::vector<CooTensor> local_coo_;  ///< one partition per rank
  /// Global entry index of each rank's e-th local nonzero.
  std::vector<std::vector<std::int64_t>> entry_map_;
  std::vector<std::int64_t> local_nnz_;
};

}  // namespace spttn
