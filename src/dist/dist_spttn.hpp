// Simulated distributed-memory SpTTN execution (paper Section 5.2).
//
// The sparse tensor's nonzeros are partitioned cyclically over a ProcGrid;
// each rank runs the planner-chosen loop nest on its local CSF (timed for
// real; optionally all ranks execute concurrently on the process-wide
// thread pool, each into a rank-private output partial), dense factors are
// charged as allgathers and dense outputs as an all-reduce under the
// alpha-beta model of dist/comm_model.hpp. The closing reduction folds the
// rank partials in ascending rank order, so sequential and concurrent rank
// execution are bit-identical. Sparse outputs (TTTP) live with their
// owning rank and need no reduction. This mirrors how CoNST and
// SparseAuto validate distributed schedules without a live MPI cluster.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dist/comm_model.hpp"
#include "dist/grid.hpp"
#include "exec/spttn.hpp"

namespace spttn {

/// Outcome of one simulated distributed run.
struct DistResult {
  int ranks = 1;
  ProcGrid grid;
  /// Measured wall-clock of each rank's local kernel (zero for idle ranks).
  std::vector<double> local_seconds;
  double max_local_seconds = 0;
  /// Modeled collective time / volume (factor allgathers + output
  /// all-reduce; zero on a single rank).
  double comm_seconds = 0;
  std::int64_t comm_bytes = 0;
  /// Load imbalance: max over ranks of local nnz divided by the mean.
  double imbalance = 1.0;

  /// Simulated end-to-end time: slowest rank plus collectives.
  double time() const { return max_local_seconds + comm_seconds; }
};

/// A bound kernel prepared for execution on `ranks` simulated processes.
///
/// Construction partitions the nonzeros (cheap, metadata only); run() plans
/// once from the global sparsity statistics — SPMD ranks execute the same
/// nest — then executes every rank's local problem and merges the partials.
/// Planning goes through the process-wide KernelCache, so repeated runs
/// over the same bound tensor (rank-count sweeps, iterative drivers) reuse
/// one cached plan instead of re-searching per run.
class DistSpttn {
 public:
  DistSpttn(const BoundKernel& bound, int ranks, CommParams params = {});

  const ProcGrid& grid() const { return grid_; }
  /// Nonzeros owned by each rank; sums to the global nnz.
  const std::vector<std::int64_t>& local_nnz() const { return local_nnz_; }

  /// Execute. For dense-output kernels the reduced result is written to
  /// `dense_out` (may be null to discard, e.g. for scaling benches); for
  /// sparse-output kernels the merged per-nonzero values go to `sparse_out`
  /// in global (sorted-COO) entry order (may be empty to discard).
  /// `local_threads` > 1 runs each rank's local loop nest through the
  /// process-wide thread pool (hybrid MPI+threads, paper Section 5.2's
  /// 64-rank-per-node setup maps ranks*threads onto one machine here).
  /// `concurrent_ranks` fans the simulated ranks themselves out over the
  /// pool; every rank computes into a private partial and the closing
  /// reduction folds partials in ascending rank order, so results are
  /// bit-identical to the (default) sequential rank loop — which folds as
  /// it goes through one reused scratch partial, keeping peak memory at a
  /// single extra output copy. Per-rank wall-clock is measured around
  /// each rank's own run either way — on an oversubscribed machine
  /// concurrent ranks time-share cores, so keep the default for
  /// timing-faithful per-rank seconds and opt in for simulation
  /// throughput (e.g. sweeping many rank counts). Combining
  /// concurrent_ranks with local_threads > 1 stays correct and
  /// bit-identical (each rank executes the same partition shape inline,
  /// since rank tasks already occupy the pool) but adds no concurrency —
  /// prefer local_threads = 1 when ranks run concurrently.
  DistResult run(const PlannerOptions& options, DenseTensor* dense_out,
                 std::span<double> sparse_out, int local_threads = 1,
                 bool concurrent_ranks = false) const;

 private:
  const BoundKernel* bound_;
  int ranks_;
  CommParams params_;
  ProcGrid grid_;
  std::vector<CooTensor> local_coo_;  ///< one partition per rank
  /// Global entry index of each rank's e-th local nonzero.
  std::vector<std::vector<std::int64_t>> entry_map_;
  std::vector<std::int64_t> local_nnz_;
};

}  // namespace spttn
