// Processor grid for the simulated distributed-memory runtime
// (paper Section 5.2: SpTTN-Cyclops distributes the sparse tensor cyclically
// over a grid of MPI ranks matched to the tensor's mode sizes).
//
// The grid is a mixed-radix layout: rank r has coordinate rank_coord(r) and
// nonzero (i1,...,im) lives on the rank whose coordinate is
// (i1 mod d1, ..., im mod dm) — the cyclic distribution CTF and
// SpTTN-Cyclops use, which balances nonzeros without inspecting them.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace spttn {

/// An m-dimensional processor grid with prod(dims) == p ranks.
class ProcGrid {
 public:
  ProcGrid() = default;

  /// Factor `p` ranks over the modes of a tensor with the given extents.
  /// Prime factors of p are assigned greedily (largest first) to the mode
  /// with the largest per-process extent, so balanced tensors get balanced
  /// grids and skewed tensors concentrate ranks on their large modes.
  static ProcGrid make(int p, std::span<const std::int64_t> mode_dims);
  static ProcGrid make(int p, const std::vector<std::int64_t>& mode_dims) {
    return make(p, std::span<const std::int64_t>(mode_dims));
  }

  int size() const { return size_; }
  int order() const { return static_cast<int>(dims_.size()); }
  const std::vector<int>& dims() const { return dims_; }

  /// Owning rank of a tensor coordinate under the cyclic layout:
  /// mixed-radix combination of (coord[m] mod dims[m]).
  int owner_of(std::span<const std::int64_t> coord) const;
  int owner_of(const std::vector<std::int64_t>& coord) const {
    return owner_of(std::span<const std::int64_t>(coord));
  }

  /// Grid coordinate of a rank; inverse of the mixed-radix rule owner_of
  /// uses (rank = sum_m coord[m] * prod_{m'>m} dims[m']).
  std::vector<int> rank_coord(int rank) const;

  /// "4x2x1"-style rendering for tables.
  std::string describe() const;

 private:
  int size_ = 1;
  std::vector<int> dims_;
};

}  // namespace spttn
