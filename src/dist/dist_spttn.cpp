#include "dist/dist_spttn.hpp"

#include <algorithm>

#include "analysis/plan_verifier.hpp"
#include "exec/executor.hpp"
#include "exec/kernels.hpp"
#include "serve/kernel_cache.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace spttn {

DistSpttn::DistSpttn(const BoundKernel& bound, int ranks, CommParams params)
    : bound_(&bound), ranks_(ranks), params_(params) {
  SPTTN_CHECK_MSG(ranks >= 1, "rank count must be positive, got " << ranks);
  SPTTN_CHECK_MSG(bound.coo != nullptr, "bound kernel has no sparse tensor");
  const CooTensor& coo = *bound.coo;
  SPTTN_CHECK_MSG(coo.is_sorted(), "sparse tensor must be sort_dedup()ed");
  grid_ = ProcGrid::make(ranks, coo.dims());

  local_coo_.assign(static_cast<std::size_t>(ranks), CooTensor(coo.dims()));
  entry_map_.assign(static_cast<std::size_t>(ranks), {});
  for (std::int64_t e = 0; e < coo.nnz(); ++e) {
    const auto owner = static_cast<std::size_t>(grid_.owner_of(coo.coord(e)));
    local_coo_[owner].push_back(coo.coord(e), coo.value(e));
    entry_map_[owner].push_back(e);
  }
  local_nnz_.resize(static_cast<std::size_t>(ranks));
  for (std::size_t r = 0; r < local_coo_.size(); ++r) {
    // Entries arrive in global sorted order, so sorting is an (idempotent)
    // flag flip that keeps entry_map_ aligned with the CSF value order.
    local_coo_[r].sort_dedup();
    local_nnz_[r] = local_coo_[r].nnz();
  }
}

DistResult DistSpttn::run(const PlannerOptions& options,
                          DenseTensor* dense_out,
                          std::span<double> sparse_out,
                          int local_threads, bool concurrent_ranks) const {
  const Kernel& kernel = bound_->kernel;
  const bool sparse_output = kernel.output_is_sparse();

  DistResult res;
  res.ranks = ranks_;
  res.grid = grid_;
  res.local_seconds.assign(static_cast<std::size_t>(ranks_), 0.0);

  // One cached plan serves every simulated rank (SPMD: all ranks run the
  // same nest), and — through the process-wide cache — every repeated run
  // over the same bound tensor (rank-count sweeps, iterative drivers)
  // skips the planner search after the first.
  const Plan plan = plan_kernel(*bound_, options, KernelCache::global());

  // Every rank rebuilds the compiled nest from (path, order); verify the
  // shared plan once up front so a corrupt cached plan fails loudly here
  // rather than as racing writes inside a rank's partial.
  verify_plan_or_throw(kernel, plan, options, &bound_->stats);

  if (sparse_output && !sparse_out.empty()) {
    SPTTN_CHECK_MSG(
        static_cast<std::int64_t>(sparse_out.size()) == bound_->coo->nnz(),
        "sparse output span size " << sparse_out.size()
                                   << " != nnz " << bound_->coo->nnz());
    std::fill(sparse_out.begin(), sparse_out.end(), 0.0);
  }

  // SPMD compute: every rank executes the same nest on its local CSF into
  // a rank-private partial (the value a real rank would hold before the
  // closing collective), and partials fold into the reduced output in
  // ascending rank order. The fold order — not the execution order — fixes
  // every output bit, so the sequential rank loop (which reuses one
  // scratch partial and folds as it goes, keeping peak memory at one
  // output copy) and the concurrent fan-out (which holds one partial per
  // rank until the merge) produce bit-identical results. Each rank's
  // wall-clock is measured around its own local run either way (honest
  // measurement; on an oversubscribed machine concurrent ranks time-share
  // cores, so use concurrent_ranks = false for timing-faithful rows).
  const bool concurrent = concurrent_ranks && ranks_ > 1;
  DenseTensor reduced;
  if (!sparse_output) reduced = make_output(*bound_);
  std::vector<DenseTensor> rank_dense(
      concurrent && !sparse_output ? static_cast<std::size_t>(ranks_) : 0);
  const auto run_rank = [&](std::int64_t r, DenseTensor* dense_partial) {
    const auto ur = static_cast<std::size_t>(r);
    const CooTensor& local = local_coo_[ur];
    if (local.nnz() == 0) return;
    const CsfTensor csf(local);
    // Raw (path, order) construction: SPMD ranks intentionally execute the
    // globally-planned nest on their local partitions, whose structure
    // fingerprints differ from the global tensor the plan was derived from.
    FusedExecutor exec(kernel, plan.path, plan.order);
    ExecArgs args;
    args.sparse = &csf;
    args.dense = bound_->dense;
    args.num_threads = local_threads;
    std::vector<double> local_vals;  // this rank's sparse pattern values
    if (sparse_output) {
      local_vals.assign(static_cast<std::size_t>(local.nnz()), 0.0);
      args.out_sparse = local_vals;
    } else {
      args.out_dense = dense_partial;
    }
    Timer t;
    exec.execute(args);
    res.local_seconds[ur] = t.seconds();
    // Sparse outputs scatter straight to the owner entries — disjoint per
    // rank (entry_map_ partitions the nonzeros), so the scatter is safe
    // and bit-identical under concurrent ranks, and the rank-local buffer
    // dies here instead of retaining O(global nnz) until a merge.
    if (sparse_output && !sparse_out.empty()) {
      const auto& map = entry_map_[ur];
      for (std::size_t e = 0; e < local_vals.size(); ++e) {
        sparse_out[static_cast<std::size_t>(map[e])] = local_vals[e];
      }
    }
  };
  if (concurrent) {
    ThreadPool::global().parallel_apply(ranks_, [&](std::int64_t r) {
      DenseTensor* partial = nullptr;
      if (!sparse_output &&
          local_coo_[static_cast<std::size_t>(r)].nnz() > 0) {
        rank_dense[static_cast<std::size_t>(r)] = make_output(*bound_);
        partial = &rank_dense[static_cast<std::size_t>(r)];
      }
      run_rank(r, partial);
    });
    for (int r = 0; r < ranks_; ++r) {
      const auto ur = static_cast<std::size_t>(r);
      if (sparse_output || local_coo_[ur].nnz() == 0) continue;
      xaxpy(reduced.size(), 1.0, rank_dense[ur].data(), 1, reduced.data(),
            1);
    }
  } else {
    DenseTensor scratch;
    if (!sparse_output) scratch = make_output(*bound_);
    for (int r = 0; r < ranks_; ++r) {
      if (local_coo_[static_cast<std::size_t>(r)].nnz() == 0) continue;
      // The executor zeroes the scratch partial on entry (accumulate is
      // off), so one allocation serves every rank.
      run_rank(r, sparse_output ? nullptr : &scratch);
      if (!sparse_output) {
        xaxpy(reduced.size(), 1.0, scratch.data(), 1, reduced.data(), 1);
      }
    }
  }

  const std::int64_t dense_out_size = sparse_output ? 0 : reduced.size();
  if (!sparse_output && dense_out != nullptr) *dense_out = std::move(reduced);

  res.max_local_seconds =
      *std::max_element(res.local_seconds.begin(), res.local_seconds.end());

  // Collectives: every dense factor is allgathered so each rank can index
  // it by arbitrary local coordinates; dense outputs close with an
  // all-reduce. Sparse outputs stay with their owners.
  if (ranks_ > 1) {
    for (const DenseTensor* d : bound_->dense) {
      if (d == nullptr) continue;
      const std::int64_t bytes =
          d->size() * static_cast<std::int64_t>(sizeof(double));
      res.comm_bytes += bytes;
      res.comm_seconds += allgather_seconds(bytes, ranks_, params_);
    }
    if (!sparse_output) {
      const std::int64_t bytes =
          dense_out_size * static_cast<std::int64_t>(sizeof(double));
      res.comm_bytes += bytes;
      res.comm_seconds += allreduce_seconds(bytes, ranks_, params_);
    }
  }

  const std::int64_t total = bound_->coo->nnz();
  if (total > 0) {
    const std::int64_t max_nnz =
        *std::max_element(local_nnz_.begin(), local_nnz_.end());
    res.imbalance = static_cast<double>(max_nnz) *
                    static_cast<double>(ranks_) / static_cast<double>(total);
  }
  return res;
}

}  // namespace spttn
