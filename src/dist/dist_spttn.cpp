#include "dist/dist_spttn.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/plan_verifier.hpp"
#include "exec/executor.hpp"
#include "serve/kernel_cache.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace spttn {

CommBreakdown DistResult::breakdown(CollectiveKind kind) const {
  CommBreakdown b;
  for (const CommEvent& ev : events) {
    if (ev.kind != kind) continue;
    ++b.count;
    b.bytes += ev.bytes;
    b.seconds += ev.seconds;
  }
  return b;
}

DistSpttn::DistSpttn(const BoundKernel& bound, int ranks, CommParams params)
    : bound_(&bound), ranks_(ranks), params_(params) {
  SPTTN_CHECK_MSG(ranks >= 1, "rank count must be positive, got " << ranks);
  SPTTN_CHECK_MSG(std::isfinite(params.alpha_seconds) &&
                      params.alpha_seconds >= 0.0,
                  "CommParams::alpha_seconds must be finite and >= 0, got "
                      << params.alpha_seconds);
  SPTTN_CHECK_MSG(
      std::isfinite(params.beta_seconds_per_byte) &&
          params.beta_seconds_per_byte >= 0.0,
      "CommParams::beta_seconds_per_byte must be finite and >= 0, got "
          << params.beta_seconds_per_byte);
  SPTTN_CHECK_MSG(bound.coo != nullptr, "bound kernel has no sparse tensor");
  const CooTensor& coo = *bound.coo;
  SPTTN_CHECK_MSG(coo.is_sorted(), "sparse tensor must be sort_dedup()ed");
  grid_ = ProcGrid::make(ranks, coo.dims());

  local_coo_.assign(static_cast<std::size_t>(ranks), CooTensor(coo.dims()));
  entry_map_.assign(static_cast<std::size_t>(ranks), {});
  for (std::int64_t e = 0; e < coo.nnz(); ++e) {
    const auto owner = static_cast<std::size_t>(grid_.owner_of(coo.coord(e)));
    local_coo_[owner].push_back(coo.coord(e), coo.value(e));
    entry_map_[owner].push_back(e);
  }
  local_nnz_.resize(static_cast<std::size_t>(ranks));
  for (std::size_t r = 0; r < local_coo_.size(); ++r) {
    // Entries arrive in global sorted order, so sorting is an (idempotent)
    // flag flip that keeps entry_map_ aligned with the CSF value order.
    local_coo_[r].sort_dedup();
    local_nnz_[r] = local_coo_[r].nnz();
  }
}

DistResult DistSpttn::run(const PlannerOptions& options,
                          DenseTensor* dense_out,
                          std::span<double> sparse_out,
                          int local_threads, bool concurrent_ranks) const {
  ModeledComm comm(ranks_, params_);
  return run(comm, options, dense_out, sparse_out, local_threads,
             concurrent_ranks);
}

DistResult DistSpttn::run(CommBackend& comm, const PlannerOptions& options,
                          DenseTensor* dense_out,
                          std::span<double> sparse_out,
                          int local_threads, bool concurrent_ranks) const {
  SPTTN_CHECK_MSG(comm.ranks() == ranks_,
                  "backend built for " << comm.ranks() << " ranks, runtime "
                                       << "partitioned for " << ranks_);
  const Kernel& kernel = bound_->kernel;
  const bool sparse_output = kernel.output_is_sparse();

  DistResult res;
  res.ranks = ranks_;
  res.grid = grid_;
  res.backend = comm.name();
  res.modeled = comm.modeled();
  res.local_seconds.assign(static_cast<std::size_t>(ranks_), 0.0);

  // One cached plan serves every rank (SPMD: all ranks run the same nest),
  // and — through the process-wide cache — every repeated run over the
  // same bound tensor (rank-count sweeps, iterative drivers) skips the
  // planner search after the first.
  const Plan plan = plan_kernel(*bound_, options, KernelCache::global());

  // Every rank rebuilds the compiled nest from (path, order); verify the
  // shared plan once up front so a corrupt cached plan fails loudly here
  // rather than as racing writes inside a rank's partial.
  verify_plan_or_throw(kernel, plan, options, &bound_->stats);

  if (sparse_output && !sparse_out.empty()) {
    SPTTN_CHECK_MSG(
        static_cast<std::int64_t>(sparse_out.size()) == bound_->coo->nnz(),
        "sparse output span size " << sparse_out.size()
                                   << " != nnz " << bound_->coo->nnz());
    std::fill(sparse_out.begin(), sparse_out.end(), 0.0);
  }

  comm.begin_run();

  // Allgather every dense factor up front so each rank can index it by
  // arbitrary local coordinates: ModeledComm charges the model and ranks
  // read the original, real transports hand each rank its own replica of
  // the gathered payload. On a single rank factors are already local and
  // no collective is issued (matching the historical charging).
  std::vector<int> slot_of(bound_->dense.size(), -1);
  if (ranks_ > 1) {
    for (std::size_t i = 0; i < bound_->dense.size(); ++i) {
      if (bound_->dense[i] == nullptr) continue;
      slot_of[i] = comm.allgather(*bound_->dense[i]);
    }
  }

  // SPMD compute: every rank executes the same nest on its local CSF into
  // a rank-private partial (the value a real rank holds before the closing
  // collective). Rank scheduling belongs to the backend; results cannot
  // depend on it because the backend's all-reduce folds the partials in
  // ascending rank order — the fold order, not the execution order, fixes
  // every output bit. Each rank's wall-clock is measured around its own
  // local run either way (honest measurement; on an oversubscribed machine
  // concurrent ranks time-share cores, so use concurrent_ranks = false for
  // timing-faithful rows).
  std::vector<DenseTensor> rank_dense(
      sparse_output ? 0 : static_cast<std::size_t>(ranks_));
  const auto run_rank = [&](std::int64_t r) {
    const auto ur = static_cast<std::size_t>(r);
    const CooTensor& local = local_coo_[ur];
    if (local.nnz() == 0) return;
    const CsfTensor csf(local);
    // Raw (path, order) construction: SPMD ranks intentionally execute the
    // globally-planned nest on their local partitions, whose structure
    // fingerprints differ from the global tensor the plan was derived from.
    FusedExecutor exec(kernel, plan.path, plan.order);
    ExecArgs args;
    args.sparse = &csf;
    args.dense.assign(bound_->dense.size(), nullptr);
    for (std::size_t i = 0; i < bound_->dense.size(); ++i) {
      args.dense[i] = slot_of[i] >= 0
                          ? &comm.gathered(static_cast<int>(r), slot_of[i])
                          : bound_->dense[i];
    }
    args.num_threads = local_threads;
    std::vector<double> local_vals;  // this rank's sparse pattern values
    if (sparse_output) {
      local_vals.assign(static_cast<std::size_t>(local.nnz()), 0.0);
      args.out_sparse = local_vals;
    } else {
      rank_dense[ur] = make_output(*bound_);
      args.out_dense = &rank_dense[ur];
    }
    Timer t;
    exec.execute(args);
    res.local_seconds[ur] = t.seconds();
    // Sparse outputs scatter straight to the owner entries — disjoint per
    // rank (entry_map_ partitions the nonzeros), so the scatter is safe
    // and bit-identical under concurrent ranks, and the rank-local buffer
    // dies here instead of retaining O(global nnz) until a merge.
    if (sparse_output && !sparse_out.empty()) {
      const auto& map = entry_map_[ur];
      for (std::size_t e = 0; e < local_vals.size(); ++e) {
        sparse_out[static_cast<std::size_t>(map[e])] = local_vals[e];
      }
    }
  };
  comm.run_ranks(concurrent_ranks, run_rank);

  // Closing collective: dense outputs all-reduce the rank partials
  // (ascending-rank element-wise fold, bit-deterministic per the backend
  // contract). Sparse outputs stay with their owners and need no
  // reduction.
  if (!sparse_output) {
    DenseTensor reduced = make_output(*bound_);
    std::vector<const DenseTensor*> partials(
        static_cast<std::size_t>(ranks_), nullptr);
    for (int r = 0; r < ranks_; ++r) {
      const auto ur = static_cast<std::size_t>(r);
      if (local_nnz_[ur] > 0) partials[ur] = &rank_dense[ur];
    }
    comm.allreduce(partials, &reduced);
    if (dense_out != nullptr) *dense_out = std::move(reduced);
  }

  res.max_local_seconds =
      *std::max_element(res.local_seconds.begin(), res.local_seconds.end());

  res.events = comm.events();
  for (const CommEvent& ev : res.events) {
    res.comm_bytes += ev.bytes;
    res.comm_seconds += ev.seconds;
  }

  const std::int64_t total = bound_->coo->nnz();
  if (total > 0) {
    const std::int64_t max_nnz =
        *std::max_element(local_nnz_.begin(), local_nnz_.end());
    res.imbalance = static_cast<double>(max_nnz) *
                    static_cast<double>(ranks_) / static_cast<double>(total);
  }
  return res;
}

}  // namespace spttn
