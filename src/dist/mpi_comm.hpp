// MPI transport scaffolding, compiled only under -DSPTTN_WITH_MPI=ON.
//
// Interface-complete against CommBackend: allgathers and all-reduces are
// issued as real MPI collectives and timed, so on a launcher-driven build
// Figure 8's comm column is measured network movement. Current limits,
// documented rather than hidden:
//  - DistSpttn still *simulates* ranks inside one process (partitioning,
//    local execution, and partials all live here), so MpiComm requires the
//    process's communicator to be of size 1 and the collectives degenerate
//    to self-communication. Distributing the partition itself (each MPI
//    process owning only its local COO) is the follow-up that makes this a
//    true multi-node runtime; the runtime seam it needs — all data flowing
//    through CommBackend — is what this class pins down.
//  - MPI_Init/MPI_Finalize are owned by the embedder (mpirun launchers
//    initialize once per process); MpiComm only checks initialization.
#pragma once

#ifdef SPTTN_WITH_MPI

#include "dist/comm_backend.hpp"

namespace spttn {

class MpiComm final : public CommBackend {
 public:
  /// Requires MPI to be initialized and (for now) a world of size 1; see
  /// the header comment.
  MpiComm(int ranks, CommParams params = {});

  std::string name() const override { return "mpi"; }
  bool modeled() const override { return false; }

 protected:
  CommEvent do_allgather(const DenseTensor& payload, int slot) override;
  const DenseTensor& do_gathered(int rank, int slot) const override;
  CommEvent do_allreduce(std::span<const DenseTensor* const> partials,
                         DenseTensor* out) override;
  void do_begin_run() override;

 private:
  /// One gathered replica per simulated rank, like ShmemComm (the MPI
  /// collective lands the payload once per process; simulated ranks inside
  /// the process then take replicas).
  std::vector<std::vector<DenseTensor>> replicas_;
};

}  // namespace spttn

#endif  // SPTTN_WITH_MPI
