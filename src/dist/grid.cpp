#include "dist/grid.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace spttn {

namespace {

/// Prime factors of n in descending order (e.g. 12 -> {3, 2, 2}).
std::vector<int> prime_factors_desc(int n) {
  std::vector<int> factors;
  for (int f = 2; f * f <= n; ++f) {
    while (n % f == 0) {
      factors.push_back(f);
      n /= f;
    }
  }
  if (n > 1) factors.push_back(n);
  std::sort(factors.rbegin(), factors.rend());
  return factors;
}

}  // namespace

ProcGrid ProcGrid::make(int p, std::span<const std::int64_t> mode_dims) {
  SPTTN_CHECK_MSG(p >= 1, "processor count must be positive, got " << p);
  SPTTN_CHECK_MSG(!mode_dims.empty(), "grid needs at least one tensor mode");
  ProcGrid g;
  g.size_ = p;
  g.dims_.assign(mode_dims.size(), 1);
  // Greedy balanced assignment: each prime factor (largest first) goes to
  // the mode with the largest per-process extent dim/grid_dim, so the
  // products stay as even as the factorization allows while skewed modes
  // absorb more ranks.
  for (int f : prime_factors_desc(p)) {
    std::size_t best = 0;
    double best_extent = -1;
    for (std::size_t m = 0; m < g.dims_.size(); ++m) {
      const double extent =
          static_cast<double>(mode_dims[m]) / static_cast<double>(g.dims_[m]);
      if (extent > best_extent) {
        best_extent = extent;
        best = m;
      }
    }
    g.dims_[best] *= f;
  }
  return g;
}

int ProcGrid::owner_of(std::span<const std::int64_t> coord) const {
  SPTTN_CHECK_MSG(coord.size() == dims_.size(),
                  "coordinate order " << coord.size()
                                      << " != grid order " << dims_.size());
  int rank = 0;
  for (std::size_t m = 0; m < dims_.size(); ++m) {
    rank = rank * dims_[m] + static_cast<int>(coord[m] % dims_[m]);
  }
  return rank;
}

std::vector<int> ProcGrid::rank_coord(int rank) const {
  SPTTN_CHECK_MSG(rank >= 0 && rank < size_, "rank " << rank
                                                     << " out of range");
  std::vector<int> coord(dims_.size(), 0);
  for (std::size_t m = dims_.size(); m-- > 0;) {
    coord[m] = rank % dims_[m];
    rank /= dims_[m];
  }
  return coord;
}

std::string ProcGrid::describe() const {
  std::string s;
  for (std::size_t m = 0; m < dims_.size(); ++m) {
    if (m) s += "x";
    s += std::to_string(dims_[m]);
  }
  return s;
}

}  // namespace spttn
