#include "tensor/generate.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace spttn {

namespace {

/// Pack a coordinate into a hash key (dims small enough in practice).
std::uint64_t coord_key(std::span<const std::int64_t> c) {
  std::uint64_t h = 0x452821e638d01377ULL;
  for (std::int64_t v : c) h = hash_mix(h ^ static_cast<std::uint64_t>(v));
  return h;
}

/// Geometric-ish sample with mean `mean`, at least 1.
std::int64_t sample_fanout(double mean, Rng& rng) {
  if (mean <= 1.0) return 1;
  // Shifted geometric: 1 + Geom(p) with p = 1/mean keeps the mean at ~mean.
  const double p = 1.0 / mean;
  double u = rng.next_double();
  while (u <= 0.0) u = rng.next_double();
  const std::int64_t extra =
      static_cast<std::int64_t>(std::floor(std::log(u) / std::log(1.0 - p)));
  return 1 + std::max<std::int64_t>(0, extra);
}

}  // namespace

CooTensor random_coo(std::vector<std::int64_t> dims, std::int64_t nnz_target,
                     Rng& rng) {
  CooTensor t(dims);
  const int d = t.order();
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(nnz_target) * 2);
  std::vector<std::int64_t> c(static_cast<std::size_t>(d));
  std::int64_t attempts = 0;
  const std::int64_t max_attempts = nnz_target * 16 + 1024;
  while (t.nnz() < nnz_target && attempts < max_attempts) {
    ++attempts;
    for (int m = 0; m < d; ++m) {
      c[static_cast<std::size_t>(m)] =
          static_cast<std::int64_t>(rng.next_below(
              static_cast<std::uint64_t>(t.dim(m))));
    }
    if (!seen.insert(coord_key(c)).second) continue;
    t.push_back(c, 2.0 * rng.next_double() - 1.0);
  }
  t.sort_dedup();
  return t;
}

CooTensor hierarchical_coo(std::vector<std::int64_t> dims,
                           std::int64_t root_count,
                           const std::vector<double>& fanout, Rng& rng) {
  const int d = static_cast<int>(dims.size());
  SPTTN_CHECK_MSG(static_cast<int>(fanout.size()) == d - 1,
                  "need one fanout per level below the root");
  CooTensor t(dims);
  root_count = std::min<std::int64_t>(root_count, dims[0]);

  // Sample distinct root indices.
  std::unordered_set<std::int64_t> roots;
  roots.reserve(static_cast<std::size_t>(root_count) * 2);
  while (static_cast<std::int64_t>(roots.size()) < root_count) {
    roots.insert(static_cast<std::int64_t>(
        rng.next_below(static_cast<std::uint64_t>(dims[0]))));
  }

  // Expand each root level by level, sampling distinct children.
  std::vector<std::int64_t> c(static_cast<std::size_t>(d));
  std::vector<std::int64_t> child_buf;
  const auto expand = [&](auto&& self, int level) -> void {
    if (level == d) {
      t.push_back(c, 2.0 * rng.next_double() - 1.0);
      return;
    }
    const double mean = fanout[static_cast<std::size_t>(level - 1)];
    std::int64_t n_children = sample_fanout(mean, rng);
    n_children =
        std::min<std::int64_t>(n_children, dims[static_cast<std::size_t>(level)]);
    child_buf.clear();
    std::unordered_set<std::int64_t> chosen;
    while (static_cast<std::int64_t>(chosen.size()) < n_children) {
      chosen.insert(static_cast<std::int64_t>(rng.next_below(
          static_cast<std::uint64_t>(dims[static_cast<std::size_t>(level)]))));
    }
    for (std::int64_t v : chosen) {
      c[static_cast<std::size_t>(level)] = v;
      self(self, level + 1);
    }
  };
  for (std::int64_t r : roots) {
    c[0] = r;
    expand(expand, 1);
  }
  t.sort_dedup();
  return t;
}

CooTensor lowrank_coo(std::vector<std::int64_t> dims, int rank,
                      std::int64_t nnz_target, double noise, Rng& rng) {
  const int d = static_cast<int>(dims.size());
  std::vector<DenseTensor> factors;
  factors.reserve(static_cast<std::size_t>(d));
  for (int m = 0; m < d; ++m) {
    factors.push_back(
        random_dense({dims[static_cast<std::size_t>(m)], rank}, rng));
  }
  CooTensor t = random_coo(dims, nnz_target, rng);
  for (std::int64_t e = 0; e < t.nnz(); ++e) {
    const auto c = t.coord(e);
    double v = 0;
    for (int r = 0; r < rank; ++r) {
      double p = 1;
      for (int m = 0; m < d; ++m) {
        p *= factors[static_cast<std::size_t>(m)].at(
            {c[static_cast<std::size_t>(m)], r});
      }
      v += p;
    }
    t.value(e) = v + noise * rng.next_normal();
  }
  return t;
}

const std::vector<TensorPreset>& tensor_presets() {
  // Shapes follow the published datasets (FROSTT [52] and DARPA [25]);
  // fanouts chosen to give realistic multi-nonzero fibers at deep levels.
  static const std::vector<TensorPreset> presets = {
      {"nell-2", {12092, 9184, 28818}, 76879419, {210.0, 30.0}},
      {"nips", {2482, 2862, 14036, 17}, 3101609, {160.0, 5.2, 1.5}},
      {"enron", {6066, 5699, 244268, 1176}, 54202099, {100.0, 30.0, 3.0}},
      {"vast-3d", {165427, 11374, 2}, 26021854, {85.0, 1.85}},
      {"darpa", {22476, 22476, 2312256}, 28436033, {130.0, 9.7}},
      {"synth3", {8192, 8192, 8192}, 549755, {9.0, 7.5}},
      {"synth4", {1024, 1024, 1024, 1024}, 1073741, {60.0, 13.0, 1.4}},
  };
  return presets;
}

const TensorPreset& find_preset(const std::string& name) {
  for (const auto& p : tensor_presets()) {
    if (p.name == name) return p;
  }
  SPTTN_CHECK_MSG(false, "unknown tensor preset '" << name << "'");
  // Unreachable; silences the compiler.
  return tensor_presets().front();
}

CooTensor make_preset_tensor(const std::string& name, double scale, Rng& rng) {
  const TensorPreset& p = find_preset(name);
  SPTTN_CHECK_MSG(scale > 0 && scale <= 1.0, "scale must be in (0, 1]");
  // nnz scales linearly; mode sizes scale by sqrt(scale) so the CSF fan-out
  // profile (the statistic the schedules' relative costs depend on) is
  // preserved while mode extents stay large enough to host the fibers.
  const double dim_scale = std::sqrt(scale);
  std::vector<std::int64_t> dims(p.dims.size());
  for (std::size_t m = 0; m < p.dims.size(); ++m) {
    dims[m] = std::max<std::int64_t>(
        4, static_cast<std::int64_t>(
               std::llround(static_cast<double>(p.dims[m]) * dim_scale)));
  }
  // Fanouts are capped by the scaled mode sizes; root count carries the
  // remaining nnz budget so realized nnz ≈ published nnz * scale.
  std::vector<double> fanout(p.fanout.size());
  double per_root = 1.0;
  for (std::size_t l = 0; l < p.fanout.size(); ++l) {
    fanout[l] = std::min(p.fanout[l], static_cast<double>(dims[l + 1]) * 0.8);
    per_root *= fanout[l];
  }
  const double target_nnz = static_cast<double>(p.nnz) * scale;
  const std::int64_t roots = std::max<std::int64_t>(
      1, std::min<std::int64_t>(
             dims[0],
             static_cast<std::int64_t>(std::llround(target_nnz / per_root))));
  return hierarchical_coo(dims, roots, fanout, rng);
}

DenseTensor random_dense(std::vector<std::int64_t> dims, Rng& rng) {
  DenseTensor t(std::move(dims));
  t.fill_random(rng);
  return t;
}

std::int64_t GeneratedNetwork::dim_of(const std::string& index_name) const {
  for (const auto& [n, d] : dims) {
    if (n == index_name) return d;
  }
  return -1;
}

GeneratedNetwork random_network(int order, std::int64_t sparse_extent,
                                std::int64_t rank_extent, Rng& rng) {
  SPTTN_CHECK_MSG(order >= 2, "random_network needs order >= 2");
  SPTTN_CHECK_MSG(sparse_extent >= 3 && rank_extent >= 1,
                  "random_network extents too small");
  GeneratedNetwork net;
  net.name = "net" + std::to_string(order);

  std::vector<std::string> mode(static_cast<std::size_t>(order));
  std::string sparse_ref = "T(";
  for (int m = 0; m < order; ++m) {
    mode[static_cast<std::size_t>(m)] = "i" + std::to_string(m);
    const std::int64_t extent = sparse_extent + rng.next_in(-1, 1);
    net.dims.emplace_back(mode[static_cast<std::size_t>(m)], extent);
    net.sparse_dims.push_back(extent);
    if (m > 0) sparse_ref += ",";
    sparse_ref += mode[static_cast<std::size_t>(m)];
  }
  sparse_ref += ")";

  // With probability 1/2, one random mode keeps no factor (MTTKRP keeps
  // its row mode the same way) and flows straight into the output.
  const int kept =
      rng.next_below(2) == 0
          ? static_cast<int>(rng.next_below(static_cast<std::uint64_t>(order)))
          : -1;
  std::vector<std::string> out_indices;
  if (kept >= 0) out_indices.push_back(mode[static_cast<std::size_t>(kept)]);
  bool used_r = false;
  std::string factors;
  for (int m = 0; m < order; ++m) {
    if (m == kept) continue;
    std::string fidx;
    if (rng.next_below(2) == 0) {
      fidx = "r";  // shared rank index across all such factors
      if (!used_r) {
        net.dims.emplace_back("r", rank_extent);
        out_indices.push_back("r");
        used_r = true;
      }
    } else {
      fidx = "s" + std::to_string(m);
      net.dims.emplace_back(fidx, rank_extent);
      out_indices.push_back(fidx);
    }
    factors += "*U" + std::to_string(m) + "(" +
               mode[static_cast<std::size_t>(m)] + "," + fidx + ")";
  }
  // Degenerate draw where every mode is kept-less and shared: still fine —
  // the output is Z(r). A draw with kept >= 0 and no factors cannot happen
  // for order >= 2.
  std::string out = "Z(";
  for (std::size_t i = 0; i < out_indices.size(); ++i) {
    if (i > 0) out += ",";
    out += out_indices[i];
  }
  out += ")";
  net.expr = out + " = " + sparse_ref + factors;
  return net;
}

GeneratedNetwork tensor_train_network(int order, std::int64_t sparse_extent,
                                      std::int64_t bond_extent) {
  SPTTN_CHECK_MSG(order >= 3, "tensor_train_network needs order >= 3");
  SPTTN_CHECK_MSG(sparse_extent >= 2 && bond_extent >= 1,
                  "tensor_train_network extents too small");
  GeneratedNetwork net;
  net.name = "tt" + std::to_string(order);
  const int spatial = order - 1;  // trailing mode "n" rides uncontracted

  std::string sparse_ref = "T(";
  for (int m = 0; m < spatial; ++m) {
    const std::string im = "i" + std::to_string(m);
    net.dims.emplace_back(im, sparse_extent);
    net.sparse_dims.push_back(sparse_extent);
    sparse_ref += im + ",";
  }
  sparse_ref += "n)";
  net.dims.emplace_back("n", sparse_extent);
  net.sparse_dims.push_back(sparse_extent);

  // Carriages A0(i0,b0), A1(b0,i1,b1), ..., with the last bond exposed as
  // the output index "e" — the tttc4 shape at any order.
  std::string factors;
  std::string prev_bond;
  for (int m = 0; m < spatial; ++m) {
    const std::string im = "i" + std::to_string(m);
    const std::string bond =
        m + 1 == spatial ? std::string("e") : "b" + std::to_string(m);
    net.dims.emplace_back(bond, bond_extent);
    factors += "*A" + std::to_string(m) + "(";
    if (!prev_bond.empty()) factors += prev_bond + ",";
    factors += im + "," + bond + ")";
    prev_bond = bond;
  }
  net.expr = "Z(e,n) = " + sparse_ref + factors;
  return net;
}

}  // namespace spttn
