// FROSTT .tns text format I/O.
//
// The paper's datasets (nell-2, nips, enron, vast, darpa) are distributed
// as whitespace-separated "i1 i2 ... id value" lines with 1-based indices;
// comment lines start with '#'. This reader/writer lets users run the
// library on the real tensors when they have them.
#pragma once

#include <iosfwd>
#include <string>

#include "tensor/coo_tensor.hpp"

namespace spttn {

/// Parse a .tns stream. Dimensions are inferred as the per-mode maxima
/// unless `dims` is provided (then coordinates are validated against it).
/// The result is sort_dedup()ed. Throws spttn::Error on malformed input.
CooTensor read_tns(std::istream& in,
                   const std::vector<std::int64_t>& dims = {});

/// Convenience file wrapper around read_tns.
CooTensor read_tns_file(const std::string& path,
                        const std::vector<std::int64_t>& dims = {});

/// Write a tensor in .tns format (1-based indices, %.17g values).
void write_tns(std::ostream& out, const CooTensor& tensor);
void write_tns_file(const std::string& path, const CooTensor& tensor);

}  // namespace spttn
