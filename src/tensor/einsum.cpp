#include "tensor/einsum.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace spttn {

namespace {

bool is_ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Parse "Name(i,j,k)" starting at pos; advances pos past the closing paren.
TensorRef parse_ref(const std::string& s, std::size_t& pos,
                    std::map<std::string, int>& index_ids,
                    std::vector<std::string>& index_names) {
  TensorRef ref;
  const std::size_t name_start = pos;
  while (pos < s.size() && is_ident_char(s[pos])) ++pos;
  SPTTN_CHECK_MSG(pos > name_start, "expected tensor name at '"
                                        << s.substr(name_start) << "'");
  ref.name = s.substr(name_start, pos - name_start);
  SPTTN_CHECK_MSG(pos < s.size() && s[pos] == '(',
                  "expected '(' after tensor name " << ref.name);
  ++pos;
  while (true) {
    const std::size_t idx_start = pos;
    while (pos < s.size() && is_ident_char(s[pos])) ++pos;
    SPTTN_CHECK_MSG(pos > idx_start,
                    "expected index name in " << ref.name << "(...)");
    const std::string idx_name = s.substr(idx_start, pos - idx_start);
    auto [it, inserted] =
        index_ids.emplace(idx_name, static_cast<int>(index_names.size()));
    if (inserted) index_names.push_back(idx_name);
    const int id = it->second;
    SPTTN_CHECK_MSG(!ref.iset.contains(id),
                    "repeated index '" << idx_name << "' within tensor "
                                       << ref.name
                                       << " (diagonals unsupported)");
    ref.idx.push_back(id);
    ref.iset.insert(id);
    SPTTN_CHECK_MSG(pos < s.size(), "unterminated index list in " << ref.name);
    if (s[pos] == ',') {
      ++pos;
      continue;
    }
    if (s[pos] == ')') {
      ++pos;
      return ref;
    }
    SPTTN_CHECK_MSG(false, "unexpected character '" << s[pos] << "' in "
                                                    << ref.name << "(...)");
  }
}

}  // namespace

Kernel Kernel::parse(const std::string& expr, const std::string& sparse_name) {
  const std::string s = strip_whitespace(expr);
  Kernel k;
  std::map<std::string, int> index_ids;

  std::size_t pos = 0;
  k.output_ = parse_ref(s, pos, index_ids, k.index_names_);
  SPTTN_CHECK_MSG(pos < s.size() && s[pos] == '=',
                  "expected '=' after output tensor");
  ++pos;
  while (true) {
    k.inputs_.push_back(parse_ref(s, pos, index_ids, k.index_names_));
    if (pos < s.size() && s[pos] == '*') {
      ++pos;
      continue;
    }
    break;
  }
  SPTTN_CHECK_MSG(pos == s.size(),
                  "trailing characters after kernel expression: '"
                      << s.substr(pos) << "'");
  SPTTN_CHECK_MSG(!k.inputs_.empty(), "kernel needs at least one input");
  SPTTN_CHECK_MSG(k.index_names_.size() <= IndexSet::kMaxIndex,
                  "too many distinct indices");

  // Identify the sparse operand.
  k.sparse_input_ = 0;
  if (!sparse_name.empty()) {
    k.sparse_input_ = -1;
    for (std::size_t i = 0; i < k.inputs_.size(); ++i) {
      if (k.inputs_[i].name == sparse_name)
        k.sparse_input_ = static_cast<int>(i);
    }
    SPTTN_CHECK_MSG(k.sparse_input_ >= 0,
                    "sparse tensor '" << sparse_name << "' not among inputs");
  }

  for (const auto& ref : k.inputs_) k.all_ |= ref.iset;
  SPTTN_CHECK_MSG(k.output_.iset.subset_of(k.all_),
                  "output uses an index not present in any input");

  k.index_dims_.assign(k.index_names_.size(), -1);
  return k;
}

int Kernel::index_id(const std::string& name) const {
  for (std::size_t i = 0; i < index_names_.size(); ++i) {
    if (index_names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

std::int64_t Kernel::index_dim(int id) const {
  SPTTN_CHECK(id >= 0 && id < num_indices());
  const std::int64_t d = index_dims_[static_cast<std::size_t>(id)];
  SPTTN_CHECK_MSG(d > 0, "dimension of index '" << index_name(id)
                                                << "' is unbound");
  return d;
}

void Kernel::set_index_dim(int id, std::int64_t dim) {
  SPTTN_CHECK(id >= 0 && id < num_indices());
  SPTTN_CHECK_MSG(dim > 0, "dimension must be positive");
  std::int64_t& slot = index_dims_[static_cast<std::size_t>(id)];
  SPTTN_CHECK_MSG(slot < 0 || slot == dim,
                  "conflicting dimensions for index '"
                      << index_name(id) << "': " << slot << " vs " << dim);
  slot = dim;
}

bool Kernel::dims_bound() const {
  return std::all_of(index_dims_.begin(), index_dims_.end(),
                     [](std::int64_t d) { return d > 0; });
}

bool Kernel::output_is_sparse() const {
  return output_.idx == sparse_ref().idx;
}

int Kernel::csf_level(int id) const {
  const auto& sidx = sparse_ref().idx;
  for (std::size_t l = 0; l < sidx.size(); ++l) {
    if (sidx[l] == id) return static_cast<int>(l);
  }
  return -1;
}

std::string Kernel::to_string() const {
  const auto render = [&](const TensorRef& ref) {
    std::string s = ref.name + "(";
    for (std::size_t i = 0; i < ref.idx.size(); ++i) {
      if (i) s += ",";
      s += index_name(ref.idx[i]);
    }
    return s + ")";
  };
  std::string s = render(output_) + " = ";
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    if (i) s += " * ";
    s += render(inputs_[i]);
  }
  return s;
}

std::string Kernel::dims_to_string() const {
  std::string s;
  for (int id = 0; id < num_indices(); ++id) {
    if (id) s += " ";
    s += index_name(id) + "=";
    s += index_dims_[static_cast<std::size_t>(id)] > 0
             ? std::to_string(index_dims_[static_cast<std::size_t>(id)])
             : std::string("?");
  }
  return s;
}

}  // namespace spttn
