// Compressed Sparse Fiber (CSF) tree — the execution format for the sparse
// operand of an SpTTN kernel (paper Section 2.2).
//
// Level l of the tree compresses mode mode_order()[l] of the source tensor.
// num_nodes(l) equals the paper's nnz(I1...I(l+1)) count for the permuted
// mode order, which the cost models consume directly.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "tensor/coo_tensor.hpp"

namespace spttn {

/// CSF tree over a sorted, deduplicated COO tensor.
class CsfTensor {
 public:
  CsfTensor() = default;

  /// Build from COO. `mode_order[l]` gives the source mode compressed at
  /// level l; empty means identity order. The COO must be sort_dedup()ed.
  explicit CsfTensor(const CooTensor& coo, std::vector<int> mode_order = {});

  int order() const { return static_cast<int>(level_dims_.size()); }
  std::int64_t nnz() const { return static_cast<std::int64_t>(vals_.size()); }

  /// Mode sizes per level (already permuted by mode_order).
  const std::vector<std::int64_t>& level_dims() const { return level_dims_; }
  /// Source-tensor mode compressed at each level.
  const std::vector<int>& mode_order() const { return mode_order_; }

  /// Number of nodes at a level == nnz over the first (level+1) permuted
  /// modes. The last level has nnz() nodes.
  std::int64_t num_nodes(int level) const {
    return static_cast<std::int64_t>(
        idx_[static_cast<std::size_t>(level)].size());
  }

  /// Index values of nodes at a level.
  std::span<const std::int64_t> level_idx(int level) const {
    return idx_[static_cast<std::size_t>(level)];
  }

  /// Child ranges: node n at `level` owns children
  /// [level_ptr(level)[n], level_ptr(level)[n+1]) at level+1.
  /// Defined for level in [0, order-2].
  std::span<const std::int64_t> level_ptr(int level) const {
    return ptr_[static_cast<std::size_t>(level)];
  }

  /// Nonzero values aligned with the last level's nodes.
  std::span<const double> vals() const { return vals_; }
  std::span<double> vals() { return vals_; }

  /// Reconstruct a COO tensor in the original (unpermuted) mode order.
  /// Test helper; round-trips with the constructor.
  CooTensor to_coo() const;

  /// Fingerprint of the source tensor's sparsity structure (coordinates,
  /// dims, nnz — values excluded), mixed with the mode order. Matches
  /// SparsityStats::fingerprint() for stats taken from the same tensor
  /// with the identity CSF order; 0 for a default-constructed CSF. The
  /// executor compares it against the plan's recorded fingerprint so a
  /// cached plan can never silently run against a structurally different
  /// tensor.
  std::uint64_t structure_fingerprint() const { return fingerprint_; }

  std::string describe() const;

 private:
  std::vector<std::int64_t> level_dims_;
  std::vector<int> mode_order_;
  std::vector<std::vector<std::int64_t>> idx_;
  std::vector<std::vector<std::int64_t>> ptr_;
  std::vector<double> vals_;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace spttn
