// Row-major dense tensor of doubles.
//
// The dense operands of an SpTTN kernel (factor matrices, intermediates,
// dense outputs) are stored in this format. Strides are exposed so the
// executor can do incremental pointer arithmetic in inner loops.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace spttn {

class Rng;

/// N-dimensional row-major dense array of double.
class DenseTensor {
 public:
  DenseTensor() = default;

  /// Construct zero-initialized tensor with the given mode sizes.
  explicit DenseTensor(std::vector<std::int64_t> dims);

  int order() const { return static_cast<int>(dims_.size()); }
  const std::vector<std::int64_t>& dims() const { return dims_; }
  std::int64_t dim(int mode) const { return dims_[static_cast<std::size_t>(mode)]; }
  const std::vector<std::int64_t>& strides() const { return strides_; }
  std::int64_t stride(int mode) const {
    return strides_[static_cast<std::size_t>(mode)];
  }
  std::int64_t size() const { return static_cast<std::int64_t>(data_.size()); }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::span<double> values() { return data_; }
  std::span<const double> values() const { return data_; }

  /// Flat offset of a multi-index (bounds-checked).
  std::int64_t offset(std::span<const std::int64_t> idx) const;

  /// Element access by multi-index (bounds-checked).
  double& at(std::span<const std::int64_t> idx) {
    return data_[static_cast<std::size_t>(offset(idx))];
  }
  double at(std::span<const std::int64_t> idx) const {
    return data_[static_cast<std::size_t>(offset(idx))];
  }
  double& at(std::initializer_list<std::int64_t> idx) {
    return at(std::span<const std::int64_t>(idx.begin(), idx.size()));
  }
  double at(std::initializer_list<std::int64_t> idx) const {
    return at(std::span<const std::int64_t>(idx.begin(), idx.size()));
  }

  /// Set every element to v.
  void fill(double v);
  /// Set every element to 0.
  void zero() { fill(0.0); }

  /// Fill with i.i.d. uniform values in [-1, 1).
  void fill_random(Rng& rng);

  /// Elementwise maximum absolute difference against another tensor of the
  /// same shape.
  double max_abs_diff(const DenseTensor& other) const;

  /// Frobenius norm.
  double norm() const;

  /// Short debug description, e.g. "dense[64x32]".
  std::string describe() const;

 private:
  std::vector<std::int64_t> dims_;
  std::vector<std::int64_t> strides_;
  std::vector<double> data_;
};

}  // namespace spttn
