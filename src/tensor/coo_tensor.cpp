#include "tensor/coo_tensor.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <unordered_set>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace spttn {

CooTensor::CooTensor(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
  for (std::int64_t d : dims_) SPTTN_CHECK_MSG(d > 0, "dims must be positive");
}

void CooTensor::push_back(std::span<const std::int64_t> coord, double value) {
  SPTTN_CHECK(static_cast<int>(coord.size()) == order());
  for (int m = 0; m < order(); ++m) {
    SPTTN_CHECK_MSG(coord[static_cast<std::size_t>(m)] >= 0 &&
                        coord[static_cast<std::size_t>(m)] < dim(m),
                    "coordinate out of range in mode " << m);
  }
  coords_.insert(coords_.end(), coord.begin(), coord.end());
  vals_.push_back(value);
  sorted_ = false;
}

void CooTensor::sort_dedup() {
  const int d = order();
  const std::int64_t n = nnz();
  std::vector<std::int64_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(), [&](std::int64_t a, std::int64_t b) {
    const std::int64_t* ca = coords_.data() + a * d;
    const std::int64_t* cb = coords_.data() + b * d;
    return std::lexicographical_compare(ca, ca + d, cb, cb + d);
  });

  std::vector<std::int64_t> new_coords;
  new_coords.reserve(coords_.size());
  std::vector<double> new_vals;
  new_vals.reserve(vals_.size());
  for (std::int64_t e : perm) {
    const std::int64_t* c = coords_.data() + e * d;
    const bool dup =
        !new_vals.empty() &&
        std::equal(c, c + d, new_coords.end() - d, new_coords.end());
    if (dup) {
      new_vals.back() += vals_[static_cast<std::size_t>(e)];
    } else {
      new_coords.insert(new_coords.end(), c, c + d);
      new_vals.push_back(vals_[static_cast<std::size_t>(e)]);
    }
  }
  coords_ = std::move(new_coords);
  vals_ = std::move(new_vals);
  sorted_ = true;
}

std::int64_t CooTensor::nnz_prefix(int k) const {
  SPTTN_CHECK_MSG(sorted_, "nnz_prefix requires sort_dedup()");
  SPTTN_CHECK(k >= 0 && k <= order());
  if (k == 0) return nnz() > 0 ? 1 : 0;
  const int d = order();
  std::int64_t count = 0;
  for (std::int64_t e = 0; e < nnz(); ++e) {
    if (e == 0) {
      ++count;
      continue;
    }
    const std::int64_t* prev = coords_.data() + (e - 1) * d;
    const std::int64_t* cur = coords_.data() + e * d;
    if (!std::equal(cur, cur + k, prev)) ++count;
  }
  return count;
}

std::int64_t CooTensor::nnz_projection(std::span<const int> modes) const {
  if (modes.empty()) return nnz() > 0 ? 1 : 0;
  const int d = order();
  // Fast path: pack the projected coordinates into one 64-bit key. The keys
  // are the coordinates themselves (mixed-radix), not hashes, so distinct
  // projections can never collide.
  int total_bits = 0;
  for (int m : modes) {
    total_bits += std::bit_width(static_cast<std::uint64_t>(dim(m) - 1));
  }
  if (total_bits <= 64) {
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(static_cast<std::size_t>(nnz()) * 2);
    for (std::int64_t e = 0; e < nnz(); ++e) {
      const std::int64_t* c = coords_.data() + e * d;
      std::uint64_t key = 0;
      for (int m : modes) {
        key = key * static_cast<std::uint64_t>(dim(m)) +
              static_cast<std::uint64_t>(c[m]);
      }
      seen.insert(key);
    }
    return static_cast<std::int64_t>(seen.size());
  }
  // Huge-extent fallback: compare full coordinate tuples. Sort entry ids by
  // projected coordinate and count runs — exact, deterministic, O(n log n).
  const auto proj_less = [&](std::int64_t a, std::int64_t b) {
    const std::int64_t* ca = coords_.data() + a * d;
    const std::int64_t* cb = coords_.data() + b * d;
    for (int m : modes) {
      if (ca[m] != cb[m]) return ca[m] < cb[m];
    }
    return false;
  };
  std::vector<std::int64_t> perm(static_cast<std::size_t>(nnz()));
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(), proj_less);
  std::int64_t count = 0;
  for (std::size_t e = 0; e < perm.size(); ++e) {
    if (e == 0 || proj_less(perm[e - 1], perm[e])) ++count;
  }
  return count;
}

std::uint64_t CooTensor::structure_hash() const {
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  h = hash_mix(h ^ static_cast<std::uint64_t>(order()));
  for (std::int64_t dsz : dims_) {
    h = hash_mix(h ^ static_cast<std::uint64_t>(dsz));
  }
  h = hash_mix(h ^ static_cast<std::uint64_t>(nnz()));
  for (std::int64_t c : coords_) {
    h = hash_mix(h ^ static_cast<std::uint64_t>(c));
  }
  // Never 0: callers use 0 as "no fingerprint available".
  return h == 0 ? 1 : h;
}

void CooTensor::fill_random_values(Rng& rng) {
  for (double& v : vals_) v = 2.0 * rng.next_double() - 1.0;
}

double CooTensor::value_sum() const {
  double s = 0;
  for (double v : vals_) s += v;
  return s;
}

std::string CooTensor::describe() const {
  std::string s = "coo[";
  for (std::size_t m = 0; m < dims_.size(); ++m) {
    if (m) s += "x";
    s += std::to_string(dims_[m]);
  }
  return s + ", nnz=" + std::to_string(nnz()) + "]";
}

}  // namespace spttn
