#include "tensor/csf_tensor.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace spttn {

CsfTensor::CsfTensor(const CooTensor& coo, std::vector<int> mode_order) {
  SPTTN_CHECK_MSG(coo.is_sorted(), "CSF requires sort_dedup()ed COO input");
  const int d = coo.order();
  if (mode_order.empty()) {
    mode_order.resize(static_cast<std::size_t>(d));
    std::iota(mode_order.begin(), mode_order.end(), 0);
  }
  SPTTN_CHECK_MSG(static_cast<int>(mode_order.size()) == d,
                  "mode_order size must equal tensor order");
  {
    std::vector<int> sorted = mode_order;
    std::sort(sorted.begin(), sorted.end());
    for (int m = 0; m < d; ++m) {
      SPTTN_CHECK_MSG(sorted[static_cast<std::size_t>(m)] == m,
                      "mode_order must be a permutation of 0..order-1");
    }
  }
  mode_order_ = mode_order;
  level_dims_.resize(static_cast<std::size_t>(d));
  for (int l = 0; l < d; ++l) {
    level_dims_[static_cast<std::size_t>(l)] =
        coo.dim(mode_order_[static_cast<std::size_t>(l)]);
  }

  const std::int64_t n = coo.nnz();
  // Sort entry ids by permuted coordinate order. If the permutation is
  // identity the COO is already sorted.
  std::vector<std::int64_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  bool identity = true;
  for (int l = 0; l < d; ++l) {
    if (mode_order_[static_cast<std::size_t>(l)] != l) identity = false;
  }
  if (!identity) {
    std::sort(perm.begin(), perm.end(), [&](std::int64_t a, std::int64_t b) {
      const auto ca = coo.coord(a);
      const auto cb = coo.coord(b);
      for (int l = 0; l < d; ++l) {
        const int m = mode_order_[static_cast<std::size_t>(l)];
        if (ca[static_cast<std::size_t>(m)] != cb[static_cast<std::size_t>(m)])
          return ca[static_cast<std::size_t>(m)] <
                 cb[static_cast<std::size_t>(m)];
      }
      return false;
    });
  }

  idx_.assign(static_cast<std::size_t>(d), {});
  ptr_.assign(static_cast<std::size_t>(d > 0 ? d - 1 : 0), {});
  vals_.reserve(static_cast<std::size_t>(n));

  // Single pass: a new node is opened at level l whenever the permuted
  // prefix of length l+1 differs from the previous entry's prefix.
  for (std::int64_t r = 0; r < n; ++r) {
    const auto c = coo.coord(perm[static_cast<std::size_t>(r)]);
    int first_new_level = 0;
    if (r > 0) {
      const auto p = coo.coord(perm[static_cast<std::size_t>(r - 1)]);
      first_new_level = d;  // may equal d if duplicate coordinate (forbidden)
      for (int l = 0; l < d; ++l) {
        const int m = mode_order_[static_cast<std::size_t>(l)];
        if (c[static_cast<std::size_t>(m)] != p[static_cast<std::size_t>(m)]) {
          first_new_level = l;
          break;
        }
      }
      SPTTN_CHECK_MSG(first_new_level < d, "duplicate coordinate in COO");
    }
    for (int l = first_new_level; l < d; ++l) {
      const int m = mode_order_[static_cast<std::size_t>(l)];
      if (l < d - 1) {
        // Opening a node at level l: record where its children start.
        ptr_[static_cast<std::size_t>(l)].push_back(static_cast<std::int64_t>(
            idx_[static_cast<std::size_t>(l + 1)].size()));
      }
      idx_[static_cast<std::size_t>(l)].push_back(
          c[static_cast<std::size_t>(m)]);
    }
    vals_.push_back(coo.value(perm[static_cast<std::size_t>(r)]));
  }
  // Close the ptr arrays with end sentinels.
  for (int l = 0; l + 1 < d; ++l) {
    ptr_[static_cast<std::size_t>(l)].push_back(
        static_cast<std::int64_t>(idx_[static_cast<std::size_t>(l + 1)].size()));
  }

  // Structure fingerprint: the identity order reproduces the source COO's
  // structure_hash() exactly (so it can be compared against stats taken
  // from the same tensor); a permuted order is mixed in because it yields
  // a different tree.
  fingerprint_ = coo.structure_hash();
  if (!identity) {
    for (int m : mode_order_) {
      fingerprint_ = hash_mix(fingerprint_ ^ static_cast<std::uint64_t>(m));
    }
    if (fingerprint_ == 0) fingerprint_ = 1;
  }
}

CooTensor CsfTensor::to_coo() const {
  const int d = order();
  std::vector<std::int64_t> dims(static_cast<std::size_t>(d));
  for (int l = 0; l < d; ++l) {
    dims[static_cast<std::size_t>(mode_order_[static_cast<std::size_t>(l)])] =
        level_dims_[static_cast<std::size_t>(l)];
  }
  CooTensor out(dims);

  // Depth-first walk carrying the partial coordinate.
  std::vector<std::int64_t> coord(static_cast<std::size_t>(d));
  struct Frame {
    int level;
    std::int64_t n;
  };
  // Iterative DFS over node ranges.
  std::vector<Frame> stack;
  for (std::int64_t n0 = 0; n0 < num_nodes(0); ++n0) {
    stack.push_back({0, n0});
    while (!stack.empty()) {
      const Frame f = stack.back();
      stack.pop_back();
      coord[static_cast<std::size_t>(
          mode_order_[static_cast<std::size_t>(f.level)])] =
          idx_[static_cast<std::size_t>(f.level)]
              [static_cast<std::size_t>(f.n)];
      if (f.level == d - 1) {
        out.push_back(coord, vals_[static_cast<std::size_t>(f.n)]);
        continue;
      }
      const auto p = level_ptr(f.level);
      // Push children in reverse so DFS visits them in ascending order.
      for (std::int64_t ch = p[static_cast<std::size_t>(f.n + 1)];
           ch-- > p[static_cast<std::size_t>(f.n)];) {
        stack.push_back({f.level + 1, ch});
      }
    }
  }
  out.sort_dedup();
  return out;
}

std::string CsfTensor::describe() const {
  std::string s = "csf[levels=";
  for (int l = 0; l < order(); ++l) {
    if (l) s += ",";
    s += std::to_string(num_nodes(l));
  }
  return s + "]";
}

}  // namespace spttn
