// Synthetic sparse-tensor generators.
//
// The paper evaluates on FROSTT tensors plus random tensors of controlled
// sparsity. The datasets are not redistributable here, so we substitute
// generators that reproduce the statistics the algorithms actually depend
// on: mode sizes and the per-CSF-level nonzero counts nnz(I1...Ik)
// (see DESIGN.md, substitution table).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/coo_tensor.hpp"
#include "tensor/dense_tensor.hpp"

namespace spttn {

class Rng;

/// Uniformly random sparse tensor: nnz_target distinct coordinates sampled
/// uniformly, values in [-1,1). Result is sorted and deduplicated (the
/// realized nnz may be slightly below target when density is high).
CooTensor random_coo(std::vector<std::int64_t> dims, std::int64_t nnz_target,
                     Rng& rng);

/// Fiber-structured random tensor controlling CSF statistics.
///
/// root_count roots are sampled at mode 0; a node at level l gets a
/// geometrically distributed number of children with mean fanout[l].
/// Expected nnz == root_count * prod(fanout). This models real tensors,
/// whose deeper CSF levels have multiple nonzeros per fiber — the property
/// that makes factorize-and-fuse asymptotically faster (paper §2.4).
CooTensor hierarchical_coo(std::vector<std::int64_t> dims,
                           std::int64_t root_count,
                           const std::vector<double>& fanout, Rng& rng);

/// Sparse tensor whose values follow a rank-`rank` CP model plus noise,
/// observed at nnz_target random positions. Used by the decomposition and
/// completion examples where convergence is meaningful.
CooTensor lowrank_coo(std::vector<std::int64_t> dims, int rank,
                      std::int64_t nnz_target, double noise, Rng& rng);

/// Catalog entry describing a FROSTT-like synthetic stand-in.
struct TensorPreset {
  std::string name;      ///< e.g. "nell-2"
  std::vector<std::int64_t> dims;
  std::int64_t nnz;      ///< published nonzero count
  std::vector<double> fanout;  ///< CSF fanout per level below the root
};

/// Stand-ins for the paper's datasets (published shapes; fanouts chosen to
/// reproduce plausible fiber statistics).
const std::vector<TensorPreset>& tensor_presets();

/// Find a preset by name; throws when unknown.
const TensorPreset& find_preset(const std::string& name);

/// Instantiate a preset scaled by `scale` in every mode size and in nnz
/// (fanouts preserved), so cost ratios between schedules are preserved while
/// fitting laptop memory. scale=1 reproduces published sizes.
CooTensor make_preset_tensor(const std::string& name, double scale, Rng& rng);

/// Random dense factor matrix of shape rows x cols, entries in [-1,1).
DenseTensor random_dense(std::vector<std::int64_t> dims, Rng& rng);

/// A generated contraction of one sparse tensor with a network of dense
/// factors — kernels beyond the paper suite (order-6/8 networks,
/// tensor-train chains) for the anytime planner and its differential tests.
struct GeneratedNetwork {
  std::string name;
  std::string expr;
  /// Every index extent, suite-style (name, extent) pairs.
  std::vector<std::pair<std::string, std::int64_t>> dims;
  /// Extents of the sparse operand's modes in CSF (expression) order.
  std::vector<std::int64_t> sparse_dims;

  /// Extent of index `index_name`, or -1 when unbound.
  std::int64_t dim_of(const std::string& index_name) const;
};

/// Random order-`order` contraction: sparse T(i0..i{order-1}) with one
/// dense factor per mode. Each factored mode either joins a shared rank
/// index "r" (MTTKRP-style) or gets its own output index "s<m>"
/// (TTMc-style), and with probability 1/2 one random mode keeps no factor
/// and passes straight to the output. Sparse extents jitter ±1 around
/// `sparse_extent`. Deterministic in `rng`'s seed.
GeneratedNetwork random_network(int order, std::int64_t sparse_extent,
                                std::int64_t rank_extent, Rng& rng);

/// Tensor-train (MPS) chain generalizing the suite's tttc4 shape to any
/// order: sparse T(i0..i{order-2},n) contracted with a chain
/// A0(i0,b0) * A1(b0,i1,b1) * ... whose last carriage exposes "e";
/// output Z(e,n). Deterministic (no randomness needed).
GeneratedNetwork tensor_train_network(int order, std::int64_t sparse_extent,
                                      std::int64_t bond_extent);

}  // namespace spttn
