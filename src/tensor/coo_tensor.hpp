// Coordinate-format sparse tensor.
//
// COO is the interchange format: generators produce COO, the distributed
// layer partitions COO, and CSF trees (the execution format) are built from
// sorted COO. Per-prefix nonzero counts nnz(I1...Ik) — Section 2.2 of the
// paper — are computed here and drive the contraction-path cost model.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace spttn {

class Rng;

/// Sparse tensor in coordinate format with double values.
///
/// Coordinates are stored row-major: entry e occupies
/// coords[e*order .. e*order+order-1].
class CooTensor {
 public:
  CooTensor() = default;
  explicit CooTensor(std::vector<std::int64_t> dims);

  int order() const { return static_cast<int>(dims_.size()); }
  const std::vector<std::int64_t>& dims() const { return dims_; }
  std::int64_t dim(int mode) const {
    return dims_[static_cast<std::size_t>(mode)];
  }
  std::int64_t nnz() const { return static_cast<std::int64_t>(vals_.size()); }

  /// Append one entry (does not check for duplicates; call sort_dedup()).
  void push_back(std::span<const std::int64_t> coord, double value);
  void push_back(std::initializer_list<std::int64_t> coord, double value) {
    push_back(std::span<const std::int64_t>(coord.begin(), coord.size()),
              value);
  }

  /// Coordinate of entry e (span of `order` values).
  std::span<const std::int64_t> coord(std::int64_t e) const {
    return {coords_.data() + e * order(), static_cast<std::size_t>(order())};
  }
  double value(std::int64_t e) const {
    return vals_[static_cast<std::size_t>(e)];
  }
  double& value(std::int64_t e) { return vals_[static_cast<std::size_t>(e)]; }
  std::span<const double> values() const { return vals_; }
  std::span<double> values() { return vals_; }

  /// Sort entries lexicographically by coordinate and sum duplicates.
  void sort_dedup();
  bool is_sorted() const { return sorted_; }

  /// nnz(I1..Ik): number of distinct length-k coordinate prefixes
  /// (paper Section 2.2). Requires sorted tensor; k in [0, order].
  std::int64_t nnz_prefix(int k) const;

  /// Number of distinct projections onto an arbitrary subset of modes
  /// (the generalized reduced-tensor nonzero count). Exact: projected
  /// coordinates are packed into 64-bit keys when the projected extents
  /// fit, and compared as full tuples otherwise, so the count can never be
  /// skewed by hash collisions. Does not require sortedness. `modes` lists
  /// mode positions in [0, order).
  std::int64_t nnz_projection(std::span<const int> modes) const;

  /// Fingerprint of the sparsity structure: dims, nnz, and every
  /// coordinate in entry storage order (values excluded). Compare hashes
  /// between sort_dedup()ed tensors only — sorting canonicalizes the
  /// entry order, making the hash a pure function of the coordinate set.
  /// Two sorted tensors with equal hashes share every planner-relevant
  /// statistic, so plans and compiled executors keyed on it are safely
  /// reusable across tensors that differ only in values (e.g. a residual
  /// sharing a pattern).
  std::uint64_t structure_hash() const;

  /// Replace values with i.i.d. uniform values in [-1, 1).
  void fill_random_values(Rng& rng);

  /// Total of all values (test helper).
  double value_sum() const;

  /// Short description like "coo[1024x1024x1024, nnz=1048576]".
  std::string describe() const;

  /// Direct access for bulk operations (distribution layer).
  const std::vector<std::int64_t>& raw_coords() const { return coords_; }

 private:
  std::vector<std::int64_t> dims_;
  std::vector<std::int64_t> coords_;
  std::vector<double> vals_;
  bool sorted_ = false;
};

}  // namespace spttn
