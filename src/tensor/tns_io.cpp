#include "tensor/tns_io.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace spttn {

CooTensor read_tns(std::istream& in, const std::vector<std::int64_t>& dims) {
  std::string line;
  int order = -1;
  std::vector<std::vector<std::int64_t>> coords;
  std::vector<double> values;
  std::vector<std::int64_t> maxima;
  std::int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    std::istringstream ls{std::string(trimmed)};
    std::vector<double> fields;
    double v;
    while (ls >> v) fields.push_back(v);
    SPTTN_CHECK_MSG(fields.size() >= 2,
                    "tns line " << line_no << ": need indices and a value");
    if (order < 0) {
      order = static_cast<int>(fields.size()) - 1;
      SPTTN_CHECK_MSG(dims.empty() ||
                          static_cast<int>(dims.size()) == order,
                      "tns order " << order << " != provided dims "
                                   << dims.size());
      maxima.assign(static_cast<std::size_t>(order), 0);
    }
    SPTTN_CHECK_MSG(static_cast<int>(fields.size()) == order + 1,
                    "tns line " << line_no << ": inconsistent arity");
    std::vector<std::int64_t> c(static_cast<std::size_t>(order));
    for (int m = 0; m < order; ++m) {
      const double f = fields[static_cast<std::size_t>(m)];
      const auto idx = static_cast<std::int64_t>(f);
      SPTTN_CHECK_MSG(static_cast<double>(idx) == f && idx >= 1,
                      "tns line " << line_no << ": bad index " << f);
      c[static_cast<std::size_t>(m)] = idx - 1;  // to 0-based
      maxima[static_cast<std::size_t>(m)] =
          std::max(maxima[static_cast<std::size_t>(m)], idx);
    }
    coords.push_back(std::move(c));
    values.push_back(fields.back());
  }
  SPTTN_CHECK_MSG(order > 0, "tns stream contains no entries");

  std::vector<std::int64_t> shape = dims.empty() ? maxima : dims;
  CooTensor t(shape);
  for (std::size_t e = 0; e < coords.size(); ++e) {
    t.push_back(coords[e], values[e]);
  }
  t.sort_dedup();
  return t;
}

CooTensor read_tns_file(const std::string& path,
                        const std::vector<std::int64_t>& dims) {
  std::ifstream in(path);
  SPTTN_CHECK_MSG(in.good(), "cannot open tns file '" << path << "'");
  return read_tns(in, dims);
}

void write_tns(std::ostream& out, const CooTensor& tensor) {
  for (std::int64_t e = 0; e < tensor.nnz(); ++e) {
    const auto c = tensor.coord(e);
    for (int m = 0; m < tensor.order(); ++m) {
      out << c[static_cast<std::size_t>(m)] + 1 << ' ';
    }
    out << strfmt("%.17g", tensor.value(e)) << '\n';
  }
}

void write_tns_file(const std::string& path, const CooTensor& tensor) {
  std::ofstream out(path);
  SPTTN_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  write_tns(out, tensor);
}

}  // namespace spttn
