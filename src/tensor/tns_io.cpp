#include "tensor/tns_io.hpp"

#include <charconv>
#include <cstdlib>
#include <fstream>
#include <vector>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace spttn {

namespace {

/// Whitespace-split a line into tokens (empty pieces dropped).
std::vector<std::string_view> tokenize(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\r')) ++i;
    std::size_t j = i;
    while (j < s.size() && s[j] != ' ' && s[j] != '\t' && s[j] != '\r') ++j;
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

}  // namespace

CooTensor read_tns(std::istream& in, const std::vector<std::int64_t>& dims) {
  std::string line;
  int order = -1;
  std::vector<std::vector<std::int64_t>> coords;
  std::vector<double> values;
  std::vector<std::int64_t> maxima;
  std::int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const std::vector<std::string_view> fields = tokenize(trimmed);
    SPTTN_CHECK_MSG(fields.size() >= 2,
                    "tns line " << line_no << ": need indices and a value");
    if (order < 0) {
      order = static_cast<int>(fields.size()) - 1;
      SPTTN_CHECK_MSG(dims.empty() ||
                          static_cast<int>(dims.size()) == order,
                      "tns order " << order << " != provided dims "
                                   << dims.size());
      maxima.assign(static_cast<std::size_t>(order), 0);
    }
    SPTTN_CHECK_MSG(static_cast<int>(fields.size()) == order + 1,
                    "tns line " << line_no << ": inconsistent arity");
    std::vector<std::int64_t> c(static_cast<std::size_t>(order));
    for (int m = 0; m < order; ++m) {
      // Indices parse as integers, never through double: a double mantissa
      // silently corrupts indices above 2^53, and a fractional field is a
      // malformed file, not a value to truncate.
      const std::string_view f = fields[static_cast<std::size_t>(m)];
      std::int64_t idx = 0;
      const auto [ptr, ec] =
          std::from_chars(f.data(), f.data() + f.size(), idx);
      SPTTN_CHECK_MSG(ec == std::errc{} && ptr == f.data() + f.size(),
                      "tns line " << line_no << ": index field '" << f
                                  << "' in mode " << m
                                  << " is not an integer");
      SPTTN_CHECK_MSG(idx >= 1, "tns line " << line_no << ": index " << idx
                                            << " in mode " << m
                                            << " must be >= 1");
      // Out-of-range entries fail here, with the offending line, instead of
      // deep inside CooTensor::push_back after parsing finished.
      SPTTN_CHECK_MSG(
          dims.empty() || idx <= dims[static_cast<std::size_t>(m)],
          "tns line " << line_no << ": index " << idx << " in mode " << m
                      << " exceeds dim " << dims[static_cast<std::size_t>(m)]);
      c[static_cast<std::size_t>(m)] = idx - 1;  // to 0-based
      maxima[static_cast<std::size_t>(m)] =
          std::max(maxima[static_cast<std::size_t>(m)], idx);
    }
    const std::string vtok(fields.back());
    char* vend = nullptr;
    const double value = std::strtod(vtok.c_str(), &vend);
    SPTTN_CHECK_MSG(vend == vtok.c_str() + vtok.size() && !vtok.empty(),
                    "tns line " << line_no << ": value field '" << vtok
                                << "' is not a number");
    coords.push_back(std::move(c));
    values.push_back(value);
  }
  if (order <= 0 && !dims.empty()) {
    // An empty stream with explicit dims is a legitimate all-zero tensor
    // (e.g. a filtered or rank-partitioned file with no local entries).
    CooTensor empty(dims);
    empty.sort_dedup();
    return empty;
  }
  SPTTN_CHECK_MSG(order > 0,
                  "tns stream contains no entries (pass explicit dims to "
                  "accept an empty tensor)");

  std::vector<std::int64_t> shape = dims.empty() ? maxima : dims;
  CooTensor t(shape);
  for (std::size_t e = 0; e < coords.size(); ++e) {
    t.push_back(coords[e], values[e]);
  }
  t.sort_dedup();
  return t;
}

CooTensor read_tns_file(const std::string& path,
                        const std::vector<std::int64_t>& dims) {
  std::ifstream in(path);
  SPTTN_CHECK_MSG(in.good(), "cannot open tns file '" << path << "'");
  return read_tns(in, dims);
}

void write_tns(std::ostream& out, const CooTensor& tensor) {
  for (std::int64_t e = 0; e < tensor.nnz(); ++e) {
    const auto c = tensor.coord(e);
    for (int m = 0; m < tensor.order(); ++m) {
      out << c[static_cast<std::size_t>(m)] + 1 << ' ';
    }
    out << strfmt("%.17g", tensor.value(e)) << '\n';
  }
}

void write_tns_file(const std::string& path, const CooTensor& tensor) {
  std::ofstream out(path);
  SPTTN_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  write_tns(out, tensor);
}

}  // namespace spttn
