// Einsum-style kernel specification for SpTTN contractions (paper Section 3).
//
// A kernel is written as, e.g.
//     "A(i,a) = T(i,j,k) * B(j,a) * C(k,a)"        (MTTKRP)
//     "S(i,j,k) = T(i,j,k) * U(i,r) * V(j,r) * W(k,r)"  (TTTP)
// By convention the FIRST input is the sparse tensor; the order of its
// indices is the CSF storage order. Indices absent from the output are
// contracted (summed).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/index_set.hpp"

namespace spttn {

/// One tensor occurrence in a kernel: name plus ordered index ids.
struct TensorRef {
  std::string name;
  std::vector<int> idx;  ///< index ids in storage order
  IndexSet iset;         ///< set form of idx

  int order() const { return static_cast<int>(idx.size()); }
};

/// Parsed SpTTN kernel: one sparse input, N dense inputs, one output that is
/// either dense or shares the sparse input's pattern.
class Kernel {
 public:
  /// Parse an expression "Out(..) = T(..) * A(..) * ...". The input named
  /// `sparse_name` is the sparse operand; empty means the first input.
  static Kernel parse(const std::string& expr,
                      const std::string& sparse_name = "");

  const std::vector<TensorRef>& inputs() const { return inputs_; }
  const TensorRef& input(int i) const {
    return inputs_[static_cast<std::size_t>(i)];
  }
  int num_inputs() const { return static_cast<int>(inputs_.size()); }
  const TensorRef& output() const { return output_; }

  /// Position of the sparse operand within inputs().
  int sparse_input() const { return sparse_input_; }
  const TensorRef& sparse_ref() const {
    return inputs_[static_cast<std::size_t>(sparse_input_)];
  }

  int num_indices() const { return static_cast<int>(index_names_.size()); }
  const std::string& index_name(int id) const {
    return index_names_[static_cast<std::size_t>(id)];
  }
  /// Id for a name, or -1 when the kernel does not use it.
  int index_id(const std::string& name) const;

  /// Dimension of index id; must have been set via set_index_dim.
  std::int64_t index_dim(int id) const;
  void set_index_dim(int id, std::int64_t dim);
  bool dims_bound() const;

  IndexSet all_indices() const { return all_; }
  IndexSet output_indices() const { return output_.iset; }
  IndexSet sparse_modes() const { return sparse_ref().iset; }
  /// Indices appearing only on dense tensors (and possibly the output).
  IndexSet dense_only_indices() const { return all_ - sparse_modes(); }
  /// Indices summed away (not in the output).
  IndexSet contracted_indices() const { return all_ - output_.iset; }

  /// True when the output has exactly the sparse operand's indices in the
  /// same order — the TTTP case, stored as values on T's pattern.
  bool output_is_sparse() const;

  /// CSF level of a sparse-mode index id (position in the sparse ref),
  /// or -1 for dense indices.
  int csf_level(int id) const;

  /// Render back to the canonical string form.
  std::string to_string() const;

  /// Human-readable dims summary like "i=1024 j=1024 k=1024 r=32".
  std::string dims_to_string() const;

 private:
  std::vector<TensorRef> inputs_;
  TensorRef output_;
  int sparse_input_ = 0;
  std::vector<std::string> index_names_;
  std::vector<std::int64_t> index_dims_;  // -1 = unbound
  IndexSet all_;
};

}  // namespace spttn
