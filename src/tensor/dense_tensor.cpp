#include "tensor/dense_tensor.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace spttn {

DenseTensor::DenseTensor(std::vector<std::int64_t> dims)
    : dims_(std::move(dims)) {
  strides_.resize(dims_.size());
  std::int64_t stride = 1;
  for (std::size_t m = dims_.size(); m-- > 0;) {
    SPTTN_CHECK_MSG(dims_[m] > 0, "dense dimension must be positive");
    strides_[m] = stride;
    stride *= dims_[m];
  }
  data_.assign(static_cast<std::size_t>(stride), 0.0);
}

std::int64_t DenseTensor::offset(std::span<const std::int64_t> idx) const {
  SPTTN_CHECK_MSG(idx.size() == dims_.size(),
                  "index arity " << idx.size() << " != order " << dims_.size());
  std::int64_t off = 0;
  for (std::size_t m = 0; m < idx.size(); ++m) {
    SPTTN_CHECK_MSG(idx[m] >= 0 && idx[m] < dims_[m],
                    "index " << idx[m] << " out of range for mode " << m
                             << " (dim " << dims_[m] << ")");
    off += idx[m] * strides_[m];
  }
  return off;
}

void DenseTensor::fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void DenseTensor::fill_random(Rng& rng) {
  for (double& x : data_) x = 2.0 * rng.next_double() - 1.0;
}

double DenseTensor::max_abs_diff(const DenseTensor& other) const {
  SPTTN_CHECK(dims_ == other.dims_);
  double m = 0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::fabs(data_[i] - other.data_[i]));
  }
  return m;
}

double DenseTensor::norm() const {
  double s = 0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

std::string DenseTensor::describe() const {
  std::string s = "dense[";
  for (std::size_t m = 0; m < dims_.size(); ++m) {
    if (m) s += "x";
    s += std::to_string(dims_[m]);
  }
  return s + "]";
}

}  // namespace spttn
