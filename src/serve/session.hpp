// Reusable execution sessions — "bind a sparse tensor once, serve many
// contractions" (the serving half of the plan/format caching layer).
//
// A Session owns one CSF build and one exact SparsityStats extraction for
// its sparse tensor and resolves every kernel expression through a
// KernelCache, so iterative drivers (CP-ALS sweeps, Tucker-HOOI, gradient
// epochs) and request-serving loops pay the planner search at most once
// per distinct kernel — and not even once when a previous session over the
// same structure already populated the cache.
//
//   Session s(tensor);
//   const int mttkrp = s.prepare("M(i,r) = T(i,j,k)*B(j,r)*C(k,r)", {&B,&C});
//   DenseTensor out = s.make_output(mttkrp);
//   for (int sweep = 0; sweep < n; ++sweep) s.run(mttkrp, &out);   // no search
//
// submit() enqueues the execution on the process-wide ThreadPool and
// returns a waitable TaskHandle, making the session a batching front-end:
// independent requests overlap on pool lanes while each request's own loop
// nest runs single-threaded (the request is the unit of parallelism).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "serve/kernel_cache.hpp"
#include "util/thread_pool.hpp"

namespace spttn {

/// One sparse tensor bound for repeated/batched contraction service.
///
/// Thread-safety: prepare() calls must not race with each other or with
/// executions. run()/submit() on already prepared kernels are safe from
/// concurrent threads (the cached executors build private runtime state
/// per execution). values() mutation must be externally ordered against
/// executions, like any tensor data.
class Session {
 public:
  /// Bind `sparse` (sorted) once: builds the CSF, extracts exact sparsity
  /// statistics, and computes the structure fingerprint. `cache` defaults
  /// to the process-wide KernelCache; pass a private one to isolate (e.g.
  /// in tests). The tensor must outlive the session.
  explicit Session(const CooTensor& sparse, PlannerOptions options = {},
                   KernelCache* cache = nullptr);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Resolve a kernel over the bound tensor: parse, bind dims against the
  /// dense factors (in order of appearance), and fetch-or-plan through the
  /// cache. Returns a kernel id for run()/submit(). Preparing the same
  /// expression again returns the existing id (the factor pointers of the
  /// first call stay bound). The dense tensors must outlive the session.
  int prepare(const std::string& expr,
              std::vector<const DenseTensor*> dense_factors,
              const std::string& sparse_name = "");

  /// Execute a prepared kernel. Exactly one of out_dense/out_sparse
  /// applies (kernel output dense vs sharing the sparse pattern).
  /// `num_threads` > 1 partitions the root loops over the process pool.
  void run(int kernel_id, DenseTensor* out_dense,
           std::span<double> out_sparse = {}, int num_threads = 1);

  /// Execute with replacement dense bindings (same shapes as prepared) —
  /// the per-mode kernel families of ALS-style drivers rebind factors
  /// between invocations.
  void run_with(int kernel_id,
                const std::vector<const DenseTensor*>& dense_factors,
                DenseTensor* out_dense, std::span<double> out_sparse = {},
                int num_threads = 1);

  /// Enqueue an execution on the process-wide ThreadPool; the returned
  /// handle's wait() blocks until it ran (helping inline when unclaimed)
  /// and rethrows any execution error. The outputs and factors must stay
  /// alive until the handle completes; the task keeps the session's bound
  /// state (CSF, plans) alive on its own, so the Session object may be
  /// destroyed with submissions still in flight. Submitted executions run
  /// their loop nest single-threaded on one lane — concurrent requests
  /// are the parallelism.
  TaskHandle submit(int kernel_id, DenseTensor* out_dense,
                    std::span<double> out_sparse = {});

  /// Allocate a correctly shaped dense output for a prepared kernel.
  DenseTensor make_output(int kernel_id) const;

  int num_kernels() const;
  const Kernel& kernel(int kernel_id) const;
  /// The (possibly cached) plan serving this kernel.
  const Plan& plan(int kernel_id) const;
  /// True when prepare() found the plan already cached (no search ran).
  bool plan_was_cached(int kernel_id) const;

  /// Mutable nonzero values of the bound CSF, aligned with the sorted COO
  /// entry order — in-place value updates (residuals, reweighting) reuse
  /// every cached plan because plans depend only on structure.
  ///
  /// Mutation hazard guard: while any submit()ted execution is still
  /// queued or running, handing out a mutable view would race with the
  /// executor reading the same values, so this throws spttn::Error until
  /// every outstanding handle completed (wait() on them first). run() and
  /// synchronous callers are unaffected — they already ordered themselves.
  std::span<double> values();

  /// Number of submit()ted executions not yet completed.
  std::size_t in_flight() const;

  const CsfTensor& csf() const;
  const SparsityStats& stats() const;
  /// Structure fingerprint of the bound tensor (CooTensor::structure_hash).
  std::uint64_t fingerprint() const;
  KernelCache& cache() const;

 private:
  struct Impl;
  /// Shared, not unique: submitted tasks capture it so in-flight requests
  /// outlive the Session object itself.
  std::shared_ptr<Impl> impl_;
};

}  // namespace spttn
