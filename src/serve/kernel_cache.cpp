#include "serve/kernel_cache.hpp"

#include <cstring>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "analysis/plan_verifier.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace spttn {

std::uint64_t KernelSignature::hash() const {
  std::uint64_t h = 0x452821e638d01377ULL;
  for (char c : expr) h = hash_mix(h ^ static_cast<std::uint64_t>(c));
  for (std::int64_t e : extents) {
    h = hash_mix(h ^ static_cast<std::uint64_t>(e));
  }
  h = hash_mix(h ^ sparsity_fingerprint);
  h = hash_mix(h ^ options_hash);
  return h;
}

std::uint64_t planner_options_hash(const PlannerOptions& options) {
  std::uint64_t h = 0xbe5466cf34e90c6cULL;
  h = hash_mix(h ^ static_cast<std::uint64_t>(options.cost));
  h = hash_mix(h ^ static_cast<std::uint64_t>(options.buffer_dim_bound));
  h = hash_mix(h ^ (options.allow_bound_relaxation ? 1u : 0u));
  h = hash_mix(h ^ (options.restrict_csf_order ? 2u : 0u));
  std::uint64_t tol_bits = 0;
  static_assert(sizeof(tol_bits) == sizeof(options.flop_group_tolerance));
  std::memcpy(&tol_bits, &options.flop_group_tolerance, sizeof(tol_bits));
  h = hash_mix(h ^ tol_bits);
  h = hash_mix(h ^ static_cast<std::uint64_t>(options.cache_d));
  h = hash_mix(h ^ (options.sparse_aware_cache ? 4u : 0u));
  h = hash_mix(h ^ static_cast<std::uint64_t>(options.max_paths_searched));
  // search_threads and verify deliberately excluded: the parallel search
  // returns a plan identical to the sequential one and verification never
  // changes the plan (see PlannerOptions docs), so neither may fragment
  // the cache.
  return h;
}

KernelSignature make_signature(const Kernel& kernel,
                               const SparsityStats& stats,
                               const PlannerOptions& options) {
  SPTTN_CHECK_MSG(kernel.dims_bound(),
                  "signature needs bound index dimensions");
  KernelSignature sig;
  sig.expr = kernel.to_string();
  sig.extents.reserve(static_cast<std::size_t>(kernel.num_indices()));
  for (int id = 0; id < kernel.num_indices(); ++id) {
    sig.extents.push_back(kernel.index_dim(id));
  }
  sig.sparsity_fingerprint = stats.fingerprint();
  sig.options_hash = planner_options_hash(options);
  return sig;
}

namespace {

struct SigHash {
  std::size_t operator()(const KernelSignature& s) const {
    return static_cast<std::size_t>(s.hash());
  }
};

}  // namespace

struct KernelCache::Impl {
  mutable std::mutex m;
  std::size_t capacity = 128;
  /// MRU-first recency list of resident entries.
  std::list<std::shared_ptr<const Entry>> lru;
  std::unordered_map<KernelSignature,
                     std::list<std::shared_ptr<const Entry>>::iterator,
                     SigHash>
      by_sig;
  Counters counters;

  /// Publish `entry`, evicting LRU victims beyond capacity. Returns the
  /// resident entry for the signature (the existing one when a concurrent
  /// planner already published it — first writer wins, the loser's work
  /// is dropped rather than invalidating handed-out pointers).
  std::shared_ptr<const Entry> publish(std::shared_ptr<const Entry> entry,
                                       bool replace) {
    std::lock_guard<std::mutex> lk(m);
    const auto it = by_sig.find(entry->signature);
    if (it != by_sig.end()) {
      if (!replace) {
        lru.splice(lru.begin(), lru, it->second);  // refresh recency
        return *it->second;
      }
      lru.erase(it->second);
      by_sig.erase(it);
    }
    lru.push_front(std::move(entry));
    by_sig[lru.front()->signature] = lru.begin();
    counters.inserts += 1;
    while (lru.size() > capacity) {
      by_sig.erase(lru.back()->signature);
      lru.pop_back();
      counters.evictions += 1;
    }
    return lru.front();
  }
};

KernelCache::KernelCache(std::size_t capacity)
    : impl_(std::make_unique<Impl>()) {
  impl_->capacity = capacity < 1 ? 1 : capacity;
}

KernelCache::~KernelCache() = default;

std::shared_ptr<const KernelCache::Entry> KernelCache::lookup(
    const KernelSignature& sig) {
  std::lock_guard<std::mutex> lk(impl_->m);
  const auto it = impl_->by_sig.find(sig);
  if (it == impl_->by_sig.end()) {
    impl_->counters.misses += 1;
    return nullptr;
  }
  impl_->counters.hits += 1;
  impl_->lru.splice(impl_->lru.begin(), impl_->lru, it->second);
  return *it->second;
}

std::shared_ptr<const KernelCache::Entry> KernelCache::get_or_plan(
    const Kernel& kernel, const SparsityStats& stats,
    const PlannerOptions& options, bool* was_cached) {
  KernelSignature sig = make_signature(kernel, stats, options);
  if (auto hit = lookup(sig)) {
    if (was_cached != nullptr) *was_cached = true;
    return hit;
  }
  if (was_cached != nullptr) *was_cached = false;
  // Miss: plan and compile outside the lock so concurrent misses on
  // different kernels search in parallel.
  auto entry = std::make_shared<Entry>();
  entry->signature = std::move(sig);
  entry->kernel = kernel;
  entry->plan = make_plan(kernel, stats, options);
  entry->exec = std::make_shared<FusedExecutor>(kernel, entry->plan);
  // Admission gate: beyond make_plan's own verification this cross-checks
  // the verifier's region classification against the compiled executor's
  // locality analysis — entries are handed to concurrent callers, so a
  // plan the two analyses disagree on must never be published.
  const VerifyReport report =
      PlanVerifier(kernel, options, &stats).verify(entry->plan, *entry->exec);
  SPTTN_CHECK_MSG(report.ok(), "kernel cache rejects unverifiable plan for "
                                   << kernel.to_string() << ":\n"
                                   << report.to_string());
  return impl_->publish(std::move(entry), /*replace=*/false);
}

std::shared_ptr<const KernelCache::Entry> KernelCache::get_or_plan(
    const BoundKernel& bound, const PlannerOptions& options,
    bool* was_cached) {
  return get_or_plan(bound.kernel, bound.stats, options, was_cached);
}

std::shared_ptr<const KernelCache::Entry> KernelCache::put(
    KernelSignature sig, const Kernel& kernel, Plan plan) {
  // Admission gate: put() accepts externally produced plans (autotuners,
  // future deserialization), so the structural rules must pass before the
  // plan is published. The planner options and stats the plan was derived
  // from are not available here — cost consistency and the CSF-order
  // restriction are planning-time checks — so only the option-independent
  // rules run.
  PlannerOptions relaxed;
  relaxed.restrict_csf_order = false;
  VerifyOptions structural;
  structural.check_cost = false;
  structural.check_flops = false;
  const VerifyReport report =
      PlanVerifier(kernel, relaxed, nullptr, structural).verify(plan);
  SPTTN_CHECK_MSG(report.ok(), "kernel cache rejects unverifiable plan for "
                                   << kernel.to_string() << ":\n"
                                   << report.to_string());
  auto entry = std::make_shared<Entry>();
  entry->signature = std::move(sig);
  entry->kernel = kernel;
  entry->plan = std::move(plan);
  entry->exec = std::make_shared<FusedExecutor>(kernel, entry->plan);
  return impl_->publish(std::move(entry), /*replace=*/true);
}

KernelCache::Counters KernelCache::counters() const {
  std::lock_guard<std::mutex> lk(impl_->m);
  Counters c = impl_->counters;
  c.entries = impl_->lru.size();
  return c;
}

std::size_t KernelCache::capacity() const { return impl_->capacity; }

void KernelCache::clear() {
  std::lock_guard<std::mutex> lk(impl_->m);
  impl_->lru.clear();
  impl_->by_sig.clear();
  impl_->counters = Counters{};
}

KernelCache& KernelCache::global() {
  static KernelCache cache;
  return cache;
}

Plan plan_kernel(const BoundKernel& bound, const PlannerOptions& options,
                 KernelCache& cache) {
  return cache.get_or_plan(bound, options)->plan;
}

void run_plan(const BoundKernel& bound, KernelCache& cache,
              DenseTensor* out_dense, std::span<double> out_sparse,
              int num_threads, const PlannerOptions& options) {
  const auto entry = cache.get_or_plan(bound, options);
  ExecArgs args;
  args.sparse = &bound.csf;
  args.dense = bound.dense;
  args.out_dense = out_dense;
  args.out_sparse = out_sparse;
  args.num_threads = num_threads;
  entry->exec->execute(args);
}

}  // namespace spttn
