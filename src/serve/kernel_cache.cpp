#include "serve/kernel_cache.hpp"

#include <algorithm>
#include <charconv>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <list>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "analysis/plan_verifier.hpp"
#include "core/plan_io.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace spttn {

std::uint64_t KernelSignature::hash() const {
  std::uint64_t h = 0x452821e638d01377ULL;
  for (char c : expr) h = hash_mix(h ^ static_cast<std::uint64_t>(c));
  for (std::int64_t e : extents) {
    h = hash_mix(h ^ static_cast<std::uint64_t>(e));
  }
  h = hash_mix(h ^ sparsity_fingerprint);
  h = hash_mix(h ^ options_hash);
  return h;
}

std::uint64_t planner_options_hash(const PlannerOptions& options) {
  std::uint64_t h = 0xbe5466cf34e90c6cULL;
  h = hash_mix(h ^ static_cast<std::uint64_t>(options.cost));
  h = hash_mix(h ^ static_cast<std::uint64_t>(options.buffer_dim_bound));
  h = hash_mix(h ^ (options.allow_bound_relaxation ? 1u : 0u));
  h = hash_mix(h ^ (options.restrict_csf_order ? 2u : 0u));
  std::uint64_t tol_bits = 0;
  static_assert(sizeof(tol_bits) == sizeof(options.flop_group_tolerance));
  std::memcpy(&tol_bits, &options.flop_group_tolerance, sizeof(tol_bits));
  h = hash_mix(h ^ tol_bits);
  h = hash_mix(h ^ static_cast<std::uint64_t>(options.cache_d));
  h = hash_mix(h ^ (options.sparse_aware_cache ? 4u : 0u));
  h = hash_mix(h ^ static_cast<std::uint64_t>(options.max_paths_searched));
  // search_threads, verify, and lower deliberately excluded: the parallel
  // search returns a plan identical to the sequential one, verification
  // never changes the plan, and the execution tier is selected per run
  // with bit-identical results (see PlannerOptions docs), so none may
  // fragment the cache.
  //
  // The anytime fields follow the same rule from the other side: under the
  // exact strategy they are inert (the plan cannot depend on them), so they
  // are excluded and the exact-options hash is byte-identical to the
  // pre-strategy one — no cache fragmentation, and persisted exact
  // artifacts keyed by the old hash stay valid. Under the anytime strategy
  // the budget, seed, and search knobs select the plan, so they are mixed
  // in: two sessions planning the same kernel under different budgets must
  // not serve each other's plans.
  if (options.strategy != StrategyKind::kExact) {
    h = hash_mix(h ^ 0xa17e11117e5eedULL);
    h = hash_mix(h ^ static_cast<std::uint64_t>(options.strategy));
    h = hash_mix(h ^ static_cast<std::uint64_t>(options.budget.max_millis));
    h = hash_mix(h ^ static_cast<std::uint64_t>(options.budget.max_nodes));
    h = hash_mix(h ^ options.anytime_seed);
    h = hash_mix(h ^ static_cast<std::uint64_t>(options.anytime_restarts));
    h = hash_mix(h ^ static_cast<std::uint64_t>(options.anytime_beam));
  }
  return h;
}

KernelSignature make_signature(const Kernel& kernel,
                               const SparsityStats& stats,
                               const PlannerOptions& options) {
  SPTTN_CHECK_MSG(kernel.dims_bound(),
                  "signature needs bound index dimensions");
  KernelSignature sig;
  sig.expr = kernel.to_string();
  sig.extents.reserve(static_cast<std::size_t>(kernel.num_indices()));
  for (int id = 0; id < kernel.num_indices(); ++id) {
    sig.extents.push_back(kernel.index_dim(id));
  }
  sig.sparsity_fingerprint = stats.fingerprint();
  sig.options_hash = planner_options_hash(options);
  return sig;
}

std::size_t estimate_entry_bytes(const KernelSignature& sig,
                                 const Kernel& kernel, const Plan& plan,
                                 const FusedExecutor* exec) {
  // Deliberately an estimate: the point is a byte budget that tracks the
  // actual heavy parts (the per-execution buffer working set dominates for
  // large-intermediate kernels; structure metadata dominates for tiny
  // ones), not an allocator-exact audit.
  std::size_t b = sizeof(KernelCache::Entry);
  b += sig.expr.size() + sig.extents.size() * sizeof(std::int64_t);
  // Kernel: tensor refs (name + index lists) and the index name table.
  const auto ref_bytes = [](const TensorRef& r) {
    return sizeof(TensorRef) + r.name.size() + r.idx.size() * sizeof(int);
  };
  b += ref_bytes(kernel.output());
  for (const TensorRef& in : kernel.inputs()) b += ref_bytes(in);
  b += static_cast<std::size_t>(kernel.num_indices()) *
       (sizeof(std::string) + sizeof(std::int64_t) + 8);
  // Plan: path terms, loop order, tree nodes/actions/buffers.
  b += plan.path.terms.size() * sizeof(PathTerm);
  for (const std::vector<int>& o : plan.order) {
    b += sizeof(std::vector<int>) + o.size() * sizeof(int);
  }
  std::size_t actions = plan.tree.top().size();
  for (const LoopTree::Node& n : plan.tree.nodes()) {
    b += sizeof(LoopTree::Node) + n.body.size() * sizeof(LoopTree::Action);
    actions += n.body.size();
  }
  b += plan.tree.top().size() * sizeof(LoopTree::Action);
  for (const BufferSpec& spec : plan.tree.buffers()) {
    b += sizeof(BufferSpec) +
         spec.indices.size() * sizeof(int) +
         spec.dims.size() * sizeof(std::int64_t);
  }
  // Compiled executor: the exact program footprint when the caller hands
  // us the compiled executor (interpreted action tree + lowered flat
  // program); otherwise the historical per-action heuristic (roughly a
  // cache line per loop/action). Plus the intermediate-buffer storage
  // every execution materializes.
  if (exec != nullptr) {
    b += exec->program_bytes();
  } else {
    b += (plan.tree.nodes().size() + actions) * 64;
  }
  b += static_cast<std::size_t>(plan.tree.total_buffer_size()) *
       sizeof(double);
  return b;
}

namespace {

struct SigHash {
  std::size_t operator()(const KernelSignature& s) const {
    return static_cast<std::size_t>(s.hash());
  }
};

std::string hex16(std::uint64_t v) {
  return strfmt("%016llx", static_cast<unsigned long long>(v));
}

std::uint64_t parse_hex_or_throw(const std::string& s, const char* what) {
  std::uint64_t v = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v, 16);
  SPTTN_CHECK_MSG(!s.empty() && ec == std::errc() && p == s.data() + s.size(),
                  "malformed or missing " << what << " '" << s << "'");
  return v;
}

using Clock = std::chrono::steady_clock;

}  // namespace

struct KernelCache::Impl {
  mutable std::mutex m;
  Config config;
  /// MRU-first recency list of resident entries.
  std::list<std::shared_ptr<const Entry>> lru;
  std::unordered_map<KernelSignature,
                     std::list<std::shared_ptr<const Entry>>::iterator,
                     SigHash>
      by_sig;
  Counters counters;

  /// One in-flight planner search; concurrent misses on the signature wait
  /// here instead of running duplicate searches.
  struct Flight {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<const Entry> result;
    std::exception_ptr error;
  };
  std::unordered_map<KernelSignature, std::shared_ptr<Flight>, SigHash>
      flights;

  bool pass_through() const {
    return config.capacity == 0 || config.max_bytes == 0;
  }

  void erase_resident(std::list<std::shared_ptr<const Entry>>::iterator it) {
    counters.bytes_resident -= (*it)->bytes;
    by_sig.erase((*it)->signature);
    lru.erase(it);
  }

  /// Drop every entry past its TTL. Caller holds m.
  void sweep_expired(Clock::time_point now) {
    if (config.ttl.count() <= 0) return;
    for (auto it = lru.begin(); it != lru.end();) {
      if (now - (*it)->inserted > config.ttl) {
        counters.expired += 1;
        erase_resident(it++);
      } else {
        ++it;
      }
    }
  }

  /// Resident probe with TTL enforcement and recency refresh. Caller
  /// holds m; does not touch hit/miss counters.
  std::shared_ptr<const Entry> find_resident(const KernelSignature& sig,
                                             Clock::time_point now) {
    const auto it = by_sig.find(sig);
    if (it == by_sig.end()) return nullptr;
    if (config.ttl.count() > 0 && now - (*it->second)->inserted > config.ttl) {
      counters.expired += 1;
      erase_resident(it->second);
      return nullptr;
    }
    lru.splice(lru.begin(), lru, it->second);  // refresh recency
    return *it->second;
  }

  /// Publish `entry`, evicting expired entries and LRU victims beyond the
  /// entry-count and byte budgets. Returns the resident entry for the
  /// signature (the existing one when a concurrent planner already
  /// published it — first writer wins, the loser's work is dropped rather
  /// than invalidating handed-out pointers). On a pass-through cache (or
  /// for an entry that alone exceeds the byte budget) the entry is
  /// returned unpublished: plan, verify, serve — never insert.
  std::shared_ptr<const Entry> publish(std::shared_ptr<Entry> entry,
                                       bool replace) {
    std::lock_guard<std::mutex> lk(m);
    if (pass_through() || entry->bytes > config.max_bytes) return entry;
    const auto now = Clock::now();
    sweep_expired(now);
    const auto it = by_sig.find(entry->signature);
    if (it != by_sig.end()) {
      if (!replace) {
        lru.splice(lru.begin(), lru, it->second);  // refresh recency
        return *it->second;
      }
      erase_resident(it->second);
    }
    entry->inserted = now;
    counters.inserts += 1;
    counters.bytes_resident += entry->bytes;
    lru.push_front(std::move(entry));
    by_sig[lru.front()->signature] = lru.begin();
    while (lru.size() > config.capacity ||
           counters.bytes_resident > config.max_bytes) {
      counters.evictions += 1;
      erase_resident(std::prev(lru.end()));
    }
    return lru.front();
  }
};

KernelCache::KernelCache(std::size_t capacity)
    : impl_(std::make_unique<Impl>()) {
  impl_->config.capacity = capacity;
}

KernelCache::KernelCache(const Config& config)
    : impl_(std::make_unique<Impl>()) {
  impl_->config = config;
}

KernelCache::~KernelCache() = default;

std::shared_ptr<const KernelCache::Entry> KernelCache::lookup(
    const KernelSignature& sig) {
  std::lock_guard<std::mutex> lk(impl_->m);
  auto hit = impl_->find_resident(sig, Clock::now());
  if (hit == nullptr) {
    impl_->counters.misses += 1;
  } else {
    impl_->counters.hits += 1;
  }
  return hit;
}

std::shared_ptr<const KernelCache::Entry> KernelCache::get_or_plan(
    const Kernel& kernel, const SparsityStats& stats,
    const PlannerOptions& options, bool* was_cached) {
  KernelSignature sig = make_signature(kernel, stats, options);
  std::shared_ptr<Impl::Flight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lk(impl_->m);
    if (auto hit = impl_->find_resident(sig, Clock::now())) {
      impl_->counters.hits += 1;
      if (was_cached != nullptr) *was_cached = true;
      return hit;
    }
    impl_->counters.misses += 1;
    auto [it, fresh] = impl_->flights.try_emplace(sig, nullptr);
    if (fresh) {
      it->second = std::make_shared<Impl::Flight>();
      leader = true;
      impl_->counters.planned += 1;
    } else {
      impl_->counters.coalesced += 1;
    }
    flight = it->second;
  }

  if (!leader) {
    // Single-flight: another thread is already searching this signature;
    // wait for its published entry instead of running a duplicate search.
    std::unique_lock<std::mutex> flk(flight->m);
    flight->cv.wait(flk, [&] { return flight->done; });
    if (flight->error) std::rethrow_exception(flight->error);
    if (was_cached != nullptr) *was_cached = true;
    return flight->result;
  }

  if (was_cached != nullptr) *was_cached = false;
  // Leader: plan and compile outside the cache lock so misses on different
  // kernels still search in parallel.
  std::shared_ptr<const Entry> published;
  try {
    auto entry = std::make_shared<Entry>();
    entry->signature = sig;
    entry->kernel = kernel;
    entry->plan = make_plan(kernel, stats, options);
    entry->exec = std::make_shared<FusedExecutor>(kernel, entry->plan);
    // Admission gate: beyond make_plan's own verification this
    // cross-checks the verifier's region classification against the
    // compiled executor's locality analysis — entries are handed to
    // concurrent callers, so a plan the two analyses disagree on must
    // never be published.
    const VerifyReport report = PlanVerifier(kernel, options, &stats)
                                    .verify(entry->plan, *entry->exec);
    SPTTN_CHECK_MSG(report.ok(),
                    "kernel cache rejects unverifiable plan for "
                        << kernel.to_string() << ":\n"
                        << report.to_string());
    entry->bytes = estimate_entry_bytes(entry->signature, kernel,
                                        entry->plan, entry->exec.get());
    published = impl_->publish(std::move(entry), /*replace=*/false);
  } catch (...) {
    {
      std::lock_guard<std::mutex> lk(impl_->m);
      impl_->flights.erase(sig);
    }
    {
      std::lock_guard<std::mutex> flk(flight->m);
      flight->error = std::current_exception();
      flight->done = true;
    }
    flight->cv.notify_all();
    throw;
  }
  {
    std::lock_guard<std::mutex> lk(impl_->m);
    impl_->flights.erase(sig);
  }
  {
    std::lock_guard<std::mutex> flk(flight->m);
    flight->result = published;
    flight->done = true;
  }
  flight->cv.notify_all();
  return published;
}

std::shared_ptr<const KernelCache::Entry> KernelCache::get_or_plan(
    const BoundKernel& bound, const PlannerOptions& options,
    bool* was_cached) {
  return get_or_plan(bound.kernel, bound.stats, options, was_cached);
}

std::shared_ptr<const KernelCache::Entry> KernelCache::put(
    KernelSignature sig, const Kernel& kernel, Plan plan) {
  // Admission gate: put() accepts externally produced plans (autotuners,
  // deserialized artifacts), so the structural rules must pass before the
  // plan is published; see verify_external_plan for why the cost rules
  // stay planning-time checks.
  const VerifyReport report = verify_external_plan(kernel, plan);
  SPTTN_CHECK_MSG(report.ok(), "kernel cache rejects unverifiable plan for "
                                   << kernel.to_string() << ":\n"
                                   << report.to_string());
  auto entry = std::make_shared<Entry>();
  entry->signature = std::move(sig);
  entry->kernel = kernel;
  entry->plan = std::move(plan);
  entry->exec = std::make_shared<FusedExecutor>(kernel, entry->plan);
  entry->bytes = estimate_entry_bytes(entry->signature, kernel, entry->plan,
                                      entry->exec.get());
  return impl_->publish(std::move(entry), /*replace=*/true);
}

std::string KernelCache::DirReport::to_string() const {
  std::ostringstream os;
  os << processed << " artifact(s) processed, " << rejected << " rejected";
  for (const std::string& e : errors) os << "\n  " << e;
  return os.str();
}

KernelCache::DirReport KernelCache::save_dir(const std::string& dir) const {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  SPTTN_CHECK_MSG(!ec, "cannot create plan cache dir '" << dir
                       << "': " << ec.message());
  // Snapshot the resident set; serialization and I/O run outside the lock.
  std::vector<std::shared_ptr<const Entry>> snapshot;
  {
    std::lock_guard<std::mutex> lk(impl_->m);
    snapshot.assign(impl_->lru.begin(), impl_->lru.end());
  }
  DirReport report;
  for (const auto& entry : snapshot) {
    const fs::path path =
        fs::path(dir) / ("plan_" + hex16(entry->signature.hash()) + ".plan");
    try {
      const std::string text = serialize_plan(
          entry->kernel, entry->plan,
          {{"options_hash", hex16(entry->signature.options_hash)},
           {"sparsity_fingerprint",
            hex16(entry->signature.sparsity_fingerprint)}});
      std::ofstream os(path, std::ios::binary | std::ios::trunc);
      SPTTN_CHECK_MSG(os.good(), "cannot open '" << path.string()
                                                 << "' for writing");
      os << text;
      os.flush();
      SPTTN_CHECK_MSG(os.good(), "write to '" << path.string() << "' failed");
      report.processed += 1;
    } catch (const std::exception& ex) {
      report.rejected += 1;
      report.errors.push_back(path.string() + ": " + ex.what());
    }
  }
  return report;
}

KernelCache::DirReport KernelCache::load_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  DirReport report;
  {
    std::lock_guard<std::mutex> lk(impl_->m);
    if (impl_->pass_through()) {
      report.errors.push_back(
          "cache is pass-through (zero capacity or byte budget); "
          "no artifact can become resident");
      return report;
    }
  }
  std::error_code ec;
  std::vector<fs::path> files;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->is_regular_file() && it->path().extension() == ".plan") {
      files.push_back(it->path());
    }
  }
  if (ec) {
    report.errors.push_back("cannot read plan cache dir '" + dir +
                            "': " + ec.message());
    return report;
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& path : files) {
    try {
      std::ifstream is(path, std::ios::binary);
      SPTTN_CHECK_MSG(is.good(), "cannot open '" << path.string() << "'");
      std::ostringstream buf;
      buf << is.rdbuf();
      LoadedPlan loaded = deserialize_plan(buf.str());

      const std::uint64_t sig_fingerprint = parse_hex_or_throw(
          loaded.meta_value("sparsity_fingerprint"), "sparsity_fingerprint");
      const std::uint64_t options_hash =
          parse_hex_or_throw(loaded.meta_value("options_hash"),
                             "options_hash");
      // Sparsity-fingerprint consistency: the structure the artifact is
      // keyed under must be the structure the plan was derived from. A
      // stale artifact (re-keyed, or edited) is rejected here; the
      // executor's runtime guard would also refuse it, but a load-time
      // rejection keeps poisoned entries out of the cache entirely.
      SPTTN_CHECK_MSG(
          sig_fingerprint == loaded.plan.sparsity_fingerprint,
          "sparsity fingerprint mismatch: artifact keyed for "
              << hex16(sig_fingerprint) << " but the plan was derived from "
              << hex16(loaded.plan.sparsity_fingerprint));

      // Structural verification BEFORE the executor ever sees the plan: a
      // malformed tree yields diagnostics from the verifier, never UB in
      // the executor's compile step.
      const VerifyReport structural =
          verify_external_plan(loaded.kernel, loaded.plan);
      SPTTN_CHECK_MSG(structural.ok(), "plan verification failed:\n"
                                           << structural.to_string());

      auto entry = std::make_shared<Entry>();
      entry->kernel = loaded.kernel;
      entry->plan = std::move(loaded.plan);
      entry->exec =
          std::make_shared<FusedExecutor>(entry->kernel, entry->plan);
      const VerifyReport cross = verify_external_plan(
          entry->kernel, entry->plan, entry->exec.get());
      SPTTN_CHECK_MSG(cross.ok(), "executor cross-check failed:\n"
                                      << cross.to_string());

      KernelSignature sig;
      sig.expr = entry->kernel.to_string();
      sig.extents.reserve(
          static_cast<std::size_t>(entry->kernel.num_indices()));
      for (int id = 0; id < entry->kernel.num_indices(); ++id) {
        sig.extents.push_back(entry->kernel.index_dim(id));
      }
      sig.sparsity_fingerprint = sig_fingerprint;
      sig.options_hash = options_hash;
      entry->signature = std::move(sig);
      entry->bytes = estimate_entry_bytes(entry->signature, entry->kernel,
                                          entry->plan, entry->exec.get());
      impl_->publish(std::move(entry), /*replace=*/false);
      report.processed += 1;
    } catch (const std::exception& ex) {
      report.rejected += 1;
      report.errors.push_back(path.string() + ": " + ex.what());
    }
  }
  return report;
}

KernelCache::Counters KernelCache::counters() const {
  std::lock_guard<std::mutex> lk(impl_->m);
  Counters c = impl_->counters;
  c.entries = impl_->lru.size();
  return c;
}

std::size_t KernelCache::capacity() const { return impl_->config.capacity; }

const KernelCache::Config& KernelCache::config() const {
  return impl_->config;
}

void KernelCache::clear() {
  std::lock_guard<std::mutex> lk(impl_->m);
  impl_->lru.clear();
  impl_->by_sig.clear();
  impl_->counters = Counters{};
}

KernelCache& KernelCache::global() {
  static KernelCache cache;
  return cache;
}

Plan plan_kernel(const BoundKernel& bound, const PlannerOptions& options,
                 KernelCache& cache) {
  return cache.get_or_plan(bound, options)->plan;
}

void run_plan(const BoundKernel& bound, KernelCache& cache,
              DenseTensor* out_dense, std::span<double> out_sparse,
              int num_threads, const PlannerOptions& options) {
  const auto entry = cache.get_or_plan(bound, options);
  ExecArgs args;
  args.sparse = &bound.csf;
  args.dense = bound.dense;
  args.out_dense = out_dense;
  args.out_sparse = out_sparse;
  args.num_threads = num_threads;
  args.tier = options.lower ? ExecTier::kLowered : ExecTier::kInterpret;
  entry->exec->execute(args);
}

}  // namespace spttn
