// Plan/format cache — the search-once-execute-many half of the serving
// layer (ROADMAP: caching / batching / heavy traffic).
//
// The paper's value proposition is that one planner search amortizes over
// many executions of the same kernel. KernelCache makes that amortization
// a process-wide property instead of a per-call-site discipline: it
// memoizes the planner's result (Plan) together with the compiled loop
// nest (FusedExecutor) under a canonical kernel signature — expression
// structure, index extents, planner options, and an exact sparsity
// fingerprint — so any consumer (sessions, the decomposition drivers, the
// simulated distributed runtime, the autotuner) that binds a structurally
// identical problem skips the path enumeration and order DP entirely.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "exec/executor.hpp"
#include "exec/spttn.hpp"

namespace spttn {

/// Canonical identity of a planned kernel. Two bound problems with equal
/// signatures have identical planner inputs, so they share one Plan and
/// one compiled executor.
struct KernelSignature {
  /// Canonical expression rendering (tensor names, index names, order).
  std::string expr;
  /// Dimension of every kernel index, in index-id order.
  std::vector<std::int64_t> extents;
  /// Exact sparsity-structure fingerprint (SparsityStats::fingerprint());
  /// 0 for modeled stats — such signatures still cache, keyed on the
  /// modeled prefix counts being absent, but never match an exact one.
  std::uint64_t sparsity_fingerprint = 0;
  /// Hash of the PlannerOptions fields that affect the chosen plan
  /// (search_threads is excluded: the parallel search is plan-identical).
  std::uint64_t options_hash = 0;

  bool operator==(const KernelSignature&) const = default;

  /// Combined hash for unordered containers.
  std::uint64_t hash() const;
};

/// Signature of a bound kernel under the given planner options.
KernelSignature make_signature(const Kernel& kernel,
                               const SparsityStats& stats,
                               const PlannerOptions& options);

/// Hash of the plan-relevant PlannerOptions fields.
std::uint64_t planner_options_hash(const PlannerOptions& options);

/// Thread-safe LRU cache of planned kernels.
///
/// Entries are immutable once published and handed out as shared
/// pointers, so a hit costs one mutex-guarded map probe; eviction can
/// never invalidate an entry a caller still executes. The compiled
/// FusedExecutor's program is immutable during execution (each execute()
/// builds its own runtime state), so concurrent executions of one cached
/// entry are safe — that is what lets many serving sessions share it.
class KernelCache {
 public:
  /// One memoized planning result.
  struct Entry {
    KernelSignature signature;
    Kernel kernel;  ///< dims bound; the shape the executor validates against
    Plan plan;
    /// Compiled nest; safe for concurrent execute() calls.
    std::shared_ptr<FusedExecutor> exec;
  };

  /// Hit/miss/eviction counters for observability (bench_search --cache,
  /// the serving example, and capacity tuning).
  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t inserts = 0;
    std::size_t entries = 0;
  };

  /// `capacity` bounds the number of resident entries (LRU eviction);
  /// at least 1.
  explicit KernelCache(std::size_t capacity = 128);
  ~KernelCache();

  KernelCache(const KernelCache&) = delete;
  KernelCache& operator=(const KernelCache&) = delete;

  /// Probe without planning; null on miss. Counts a hit or a miss.
  std::shared_ptr<const Entry> lookup(const KernelSignature& sig);

  /// The workhorse: return the cached entry for (kernel, stats, options),
  /// planning and compiling on a miss. Planning runs outside the cache
  /// lock, so concurrent misses on different kernels search concurrently;
  /// two racers on the same signature both plan and the loser adopts the
  /// winner's published entry. `was_cached`, when non-null, reports
  /// whether the entry was served without running the planner.
  ///
  /// Admission gate: a freshly planned entry is published only after the
  /// static plan verifier passes, including the cross-check of its region
  /// classification against the compiled executor's locality analysis
  /// (analysis/plan_verifier.hpp); throws spttn::Error otherwise.
  std::shared_ptr<const Entry> get_or_plan(const Kernel& kernel,
                                           const SparsityStats& stats,
                                           const PlannerOptions& options = {},
                                           bool* was_cached = nullptr);
  std::shared_ptr<const Entry> get_or_plan(const BoundKernel& bound,
                                           const PlannerOptions& options = {},
                                           bool* was_cached = nullptr);

  /// Publish an externally produced plan (e.g. an autotuned winner) under
  /// `sig`, compiling its executor; replaces any resident entry with the
  /// same signature and returns the published entry. The structural rules
  /// of the static plan verifier gate admission (the planner options and
  /// stats behind `sig` are not recoverable from the hash, so cost
  /// consistency stays a planning-time check); throws spttn::Error on a
  /// plan that fails them.
  std::shared_ptr<const Entry> put(KernelSignature sig, const Kernel& kernel,
                                   Plan plan);

  Counters counters() const;
  std::size_t capacity() const;
  void clear();

  /// Process-wide cache shared by the convenience overloads
  /// (spttn::plan_kernel/run_plan with a cache), the decomposition
  /// drivers, and DistSpttn.
  static KernelCache& global();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Cache-aware planning: fetch or compute the plan for `bound`.
Plan plan_kernel(const BoundKernel& bound, const PlannerOptions& options,
                 KernelCache& cache);

/// Cache-aware execution: plan via `cache` (a hit skips the search) and run
/// the cached compiled nest against the bound tensors. Semantics otherwise
/// match run_plan(bound, plan, ...).
void run_plan(const BoundKernel& bound, KernelCache& cache,
              DenseTensor* out_dense, std::span<double> out_sparse,
              int num_threads = 1, const PlannerOptions& options = {});

}  // namespace spttn
