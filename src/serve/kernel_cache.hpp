// Plan/format cache — the search-once-execute-many half of the serving
// layer (ROADMAP: caching / batching / heavy traffic).
//
// The paper's value proposition is that one planner search amortizes over
// many executions of the same kernel. KernelCache makes that amortization
// a process-wide property instead of a per-call-site discipline: it
// memoizes the planner's result (Plan) together with the compiled loop
// nest (FusedExecutor) under a canonical kernel signature — expression
// structure, index extents, planner options, and an exact sparsity
// fingerprint — so any consumer (sessions, the decomposition drivers, the
// simulated distributed runtime, the autotuner) that binds a structurally
// identical problem skips the path enumeration and order DP entirely.
//
// Fleet-grade admission policy: compiled executors and their per-execution
// buffer working sets are the heavy part of an entry, so the cache budgets
// bytes (Config::max_bytes) in addition to entry count, with TTL expiry as
// a second knob for long-lived servers. Plans persist: save_dir writes
// every resident plan as a versioned, checksummed artifact (core/plan_io)
// and load_dir re-admits them through the static plan verifier plus the
// sparsity-fingerprint consistency check, so a restarted process serves
// every warmed kernel with zero planner searches — and a stale or
// corrupted artifact can never reach an executor.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "exec/executor.hpp"
#include "exec/spttn.hpp"

namespace spttn {

/// Canonical identity of a planned kernel. Two bound problems with equal
/// signatures have identical planner inputs, so they share one Plan and
/// one compiled executor.
struct KernelSignature {
  /// Canonical expression rendering (tensor names, index names, order).
  std::string expr;
  /// Dimension of every kernel index, in index-id order.
  std::vector<std::int64_t> extents;
  /// Exact sparsity-structure fingerprint (SparsityStats::fingerprint());
  /// 0 for modeled stats — such signatures still cache, keyed on the
  /// modeled prefix counts being absent, but never match an exact one.
  std::uint64_t sparsity_fingerprint = 0;
  /// Hash of the PlannerOptions fields that affect the chosen plan
  /// (search_threads is excluded: the parallel search is plan-identical).
  std::uint64_t options_hash = 0;

  bool operator==(const KernelSignature&) const = default;

  /// Combined hash for unordered containers.
  std::uint64_t hash() const;
};

/// Signature of a bound kernel under the given planner options.
KernelSignature make_signature(const Kernel& kernel,
                               const SparsityStats& stats,
                               const PlannerOptions& options);

/// Hash of the plan-relevant PlannerOptions fields.
std::uint64_t planner_options_hash(const PlannerOptions& options);

/// Thread-safe byte-budgeted LRU cache of planned kernels.
///
/// Entries are immutable once published and handed out as shared
/// pointers, so a hit costs one mutex-guarded map probe; eviction can
/// never invalidate an entry a caller still executes. The compiled
/// FusedExecutor's program is immutable during execution (each execute()
/// builds its own runtime state), so concurrent executions of one cached
/// entry are safe — that is what lets many serving sessions share it.
class KernelCache {
 public:
  /// Admission/eviction policy. Entry count and resident bytes are both
  /// budgets (eviction triggers on whichever is exceeded); TTL is absolute
  /// from insertion. A zero capacity or zero byte budget makes the cache a
  /// pass-through: get_or_plan still plans, verifies and returns working
  /// entries (and still deduplicates concurrent planning), but nothing is
  /// ever inserted — there is no insert-then-immediately-evict churn.
  struct Config {
    /// Maximum resident entries; 0 = pass-through.
    std::size_t capacity = 128;
    /// Maximum summed Entry::bytes resident; 0 = pass-through, the default
    /// (SIZE_MAX) is unbounded.
    std::size_t max_bytes = std::numeric_limits<std::size_t>::max();
    /// Entries older than this (since insertion) are expired on the next
    /// probe or insertion sweep; zero disables expiry.
    std::chrono::milliseconds ttl{0};
  };

  /// One memoized planning result.
  struct Entry {
    KernelSignature signature;
    Kernel kernel;  ///< dims bound; the shape the executor validates against
    Plan plan;
    /// Compiled nest; safe for concurrent execute() calls.
    std::shared_ptr<FusedExecutor> exec;
    /// Estimated resident size: plan tree + loop order + path + signature
    /// structures, the compiled program's metadata, and the executor's
    /// per-execution buffer working set. The byte budget sums these.
    std::size_t bytes = 0;
    /// Insertion time (steady clock) driving TTL expiry; meaningless for
    /// pass-through entries that were never resident.
    std::chrono::steady_clock::time_point inserted{};
  };

  /// Hit/miss/eviction counters for observability (bench_serve, the
  /// serving example, and capacity/byte-budget tuning). `planned` counts
  /// actual planner searches; with single-flight deduplication it can be
  /// far below `misses` under concurrent load (the difference shows up in
  /// `coalesced`).
  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;  ///< capacity- or byte-budget evictions
    std::uint64_t expired = 0;    ///< TTL expirations
    std::uint64_t inserts = 0;
    /// Planner searches actually executed (misses that were not coalesced).
    std::uint64_t planned = 0;
    /// Misses served by waiting on another thread's in-flight search for
    /// the same signature instead of running a duplicate search.
    std::uint64_t coalesced = 0;
    std::size_t entries = 0;
    /// Summed Entry::bytes of the resident entries.
    std::size_t bytes_resident = 0;
  };

  /// Legacy count-only constructor: `capacity` bounds the number of
  /// resident entries, bytes unbounded. Capacity 0 = pass-through.
  explicit KernelCache(std::size_t capacity = 128);
  /// Fleet configuration: entry count, byte budget, TTL.
  explicit KernelCache(const Config& config);
  ~KernelCache();

  KernelCache(const KernelCache&) = delete;
  KernelCache& operator=(const KernelCache&) = delete;

  /// Probe without planning; null on miss. Counts a hit or a miss; an
  /// entry past its TTL is expired (counted, erased) and reported a miss.
  std::shared_ptr<const Entry> lookup(const KernelSignature& sig);

  /// The workhorse: return the cached entry for (kernel, stats, options),
  /// planning and compiling on a miss. Planning runs outside the cache
  /// lock, so concurrent misses on different kernels search concurrently;
  /// concurrent misses on the SAME signature are single-flighted — one
  /// thread runs the search, the others block on its result and share the
  /// published entry (Counters::coalesced), so N racing clients cost one
  /// planner search instead of N. If the search throws, every coalesced
  /// waiter observes the same error. `was_cached`, when non-null, reports
  /// whether the entry was served without running the planner on this
  /// thread (a resident hit or a coalesced wait).
  ///
  /// Admission gate: a freshly planned entry is published only after the
  /// static plan verifier passes, including the cross-check of its region
  /// classification against the compiled executor's locality analysis
  /// (analysis/plan_verifier.hpp); throws spttn::Error otherwise.
  std::shared_ptr<const Entry> get_or_plan(const Kernel& kernel,
                                           const SparsityStats& stats,
                                           const PlannerOptions& options = {},
                                           bool* was_cached = nullptr);
  std::shared_ptr<const Entry> get_or_plan(const BoundKernel& bound,
                                           const PlannerOptions& options = {},
                                           bool* was_cached = nullptr);

  /// Publish an externally produced plan (e.g. an autotuned winner) under
  /// `sig`, compiling its executor; replaces any resident entry with the
  /// same signature and returns the published entry. The structural rules
  /// of the static plan verifier gate admission (the planner options and
  /// stats behind `sig` are not recoverable from the hash, so cost
  /// consistency stays a planning-time check); throws spttn::Error on a
  /// plan that fails them.
  std::shared_ptr<const Entry> put(KernelSignature sig, const Kernel& kernel,
                                   Plan plan);

  /// Outcome of one save_dir/load_dir sweep. `errors` carries one
  /// structured message per artifact that failed (I/O, deserialization,
  /// verification, fingerprint drift); the sweep itself never throws for
  /// per-file defects.
  struct DirReport {
    int processed = 0;  ///< artifacts written (save) or admitted (load)
    int rejected = 0;   ///< artifacts skipped with an error
    std::vector<std::string> errors;

    std::string to_string() const;
  };

  /// Persist every resident entry to `dir` (created if needed) as one
  /// versioned artifact per signature (core/plan_io format, file name
  /// derived from the signature hash). Concurrent cache use is safe; the
  /// sweep snapshots the resident set. Throws spttn::Error only when `dir`
  /// cannot be created; per-file failures land in the report.
  DirReport save_dir(const std::string& dir) const;

  /// Re-admit previously saved artifacts: every `*.plan` file in `dir` is
  /// deserialized, its kernel rebuilt, and the plan pushed through the
  /// full admission gate — the static plan verifier's structural rules,
  /// the executor locality cross-check, and the sparsity-fingerprint
  /// consistency check (the artifact's signature fingerprint must equal
  /// the plan's recorded fingerprint) — before it becomes resident. A
  /// corrupted, truncated, version-mismatched or wrong-fingerprint
  /// artifact is rejected with a structured error; it can never execute.
  /// Loaded entries land with fresh TTL and count as inserts, not
  /// planner searches — after a warm load, get_or_plan over the same
  /// problems is pure hits (Counters::planned stays 0). On a pass-through
  /// cache the sweep rejects everything (nothing can become resident).
  DirReport load_dir(const std::string& dir);

  Counters counters() const;
  std::size_t capacity() const;
  const Config& config() const;
  void clear();

  /// Process-wide cache shared by the convenience overloads
  /// (spttn::plan_kernel/run_plan with a cache), the decomposition
  /// drivers, and DistSpttn.
  static KernelCache& global();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Estimated resident bytes of one cache entry: signature + kernel + plan
/// (path, order, tree, buffers) structure sizes plus the compiled
/// executor's program metadata and per-execution buffer working set.
/// When `exec` is provided, its actual program footprint (the interpreted
/// action tree plus the lowered flat program,
/// FusedExecutor::program_bytes) replaces the per-action metadata
/// heuristic, so max_bytes budgeting charges what the executor really
/// holds. Exposed for tests and the spttn_cache inspect CLI.
std::size_t estimate_entry_bytes(const KernelSignature& sig,
                                 const Kernel& kernel, const Plan& plan,
                                 const FusedExecutor* exec = nullptr);

/// Cache-aware planning: fetch or compute the plan for `bound`.
Plan plan_kernel(const BoundKernel& bound, const PlannerOptions& options,
                 KernelCache& cache);

/// Cache-aware execution: plan via `cache` (a hit skips the search) and run
/// the cached compiled nest against the bound tensors. Semantics otherwise
/// match run_plan(bound, plan, ...).
void run_plan(const BoundKernel& bound, KernelCache& cache,
              DenseTensor* out_dense, std::span<double> out_sparse,
              int num_threads = 1, const PlannerOptions& options = {});

}  // namespace spttn
