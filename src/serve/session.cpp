#include "serve/session.hpp"

#include <atomic>
#include <unordered_map>
#include <utility>

#include "util/error.hpp"

namespace spttn {

struct Session::Impl {
  const CooTensor* coo = nullptr;
  PlannerOptions options;
  KernelCache* cache = nullptr;
  CsfTensor csf;
  SparsityStats stats;
  /// submit()ted executions not yet completed; values() refuses to hand
  /// out a mutable view while this is nonzero.
  std::atomic<std::size_t> in_flight{0};

  struct Prepared {
    std::vector<const DenseTensor*> slots;  // per kernel input; sparse null
    std::shared_ptr<const KernelCache::Entry> entry;
    bool was_cached = false;
  };
  std::vector<Prepared> kernels;
  std::unordered_map<std::string, int> by_expr;

  const Prepared& at(int kernel_id) const {
    SPTTN_CHECK_MSG(kernel_id >= 0 &&
                        kernel_id < static_cast<int>(kernels.size()),
                    "unknown session kernel id " << kernel_id);
    return kernels[static_cast<std::size_t>(kernel_id)];
  }

  void run_with(int kernel_id,
                const std::vector<const DenseTensor*>& dense_factors,
                DenseTensor* out_dense, std::span<double> out_sparse,
                int num_threads) {
    const Prepared& prep = at(kernel_id);
    ExecArgs args;
    args.sparse = &csf;
    args.dense = dense_factors;
    args.out_dense = out_dense;
    args.out_sparse = out_sparse;
    args.num_threads = num_threads;
    // Tier preference is per session (PlannerOptions::lower), applied per
    // execution: the cached executor is shared with sessions that may have
    // chosen differently.
    args.tier =
        options.lower ? ExecTier::kLowered : ExecTier::kInterpret;
    prep.entry->exec->execute(args);
  }
};

Session::Session(const CooTensor& sparse, PlannerOptions options,
                 KernelCache* cache)
    : impl_(std::make_shared<Impl>()) {
  SPTTN_CHECK_MSG(sparse.is_sorted(),
                  "session tensor must be sort_dedup()ed");
  impl_->coo = &sparse;
  impl_->options = options;
  impl_->cache = cache != nullptr ? cache : &KernelCache::global();
  impl_->csf = CsfTensor(sparse);
  impl_->stats = SparsityStats::from_coo(sparse);
}

Session::~Session() = default;

int Session::prepare(const std::string& expr,
                     std::vector<const DenseTensor*> dense_factors,
                     const std::string& sparse_name) {
  const auto it = impl_->by_expr.find(expr);
  if (it != impl_->by_expr.end()) return it->second;

  Impl::Prepared prep;
  const Kernel kernel = bind_kernel_dims(expr, *impl_->coo, dense_factors,
                                         &prep.slots, sparse_name);
  prep.entry = impl_->cache->get_or_plan(kernel, impl_->stats, impl_->options,
                                         &prep.was_cached);
  const int id = static_cast<int>(impl_->kernels.size());
  impl_->kernels.push_back(std::move(prep));
  impl_->by_expr.emplace(expr, id);
  return id;
}

void Session::run(int kernel_id, DenseTensor* out_dense,
                  std::span<double> out_sparse, int num_threads) {
  run_with(kernel_id, impl_->at(kernel_id).slots, out_dense, out_sparse,
           num_threads);
}

void Session::run_with(int kernel_id,
                       const std::vector<const DenseTensor*>& dense_factors,
                       DenseTensor* out_dense, std::span<double> out_sparse,
                       int num_threads) {
  impl_->run_with(kernel_id, dense_factors, out_dense, out_sparse,
                  num_threads);
}

TaskHandle Session::submit(int kernel_id, DenseTensor* out_dense,
                           std::span<double> out_sparse) {
  // Resolve the prepared kernel before enqueueing so an unknown id fails
  // at the submit site, not inside a worker.
  (void)impl_->at(kernel_id);
  // The task captures the shared Impl — not the Session — so the bound
  // state stays alive even if the Session is destroyed while the request
  // is still queued or running.
  impl_->in_flight.fetch_add(1, std::memory_order_acq_rel);
  return ThreadPool::global().submit(
      [impl = impl_, kernel_id, out_dense, out_sparse] {
        struct Landed {  // decrement even when the execution throws
          Impl* impl;
          ~Landed() { impl->in_flight.fetch_sub(1, std::memory_order_acq_rel); }
        } landed{impl.get()};
        impl->run_with(kernel_id, impl->at(kernel_id).slots, out_dense,
                       out_sparse, /*num_threads=*/1);
      });
}

DenseTensor Session::make_output(int kernel_id) const {
  const Kernel& k = impl_->at(kernel_id).entry->kernel;
  SPTTN_CHECK_MSG(!k.output_is_sparse(),
                  "kernel output shares the sparse pattern; use a value "
                  "span instead");
  std::vector<std::int64_t> dims;
  for (int id : k.output().idx) dims.push_back(k.index_dim(id));
  return DenseTensor(dims);
}

int Session::num_kernels() const {
  return static_cast<int>(impl_->kernels.size());
}

const Kernel& Session::kernel(int kernel_id) const {
  return impl_->at(kernel_id).entry->kernel;
}

const Plan& Session::plan(int kernel_id) const {
  return impl_->at(kernel_id).entry->plan;
}

bool Session::plan_was_cached(int kernel_id) const {
  return impl_->at(kernel_id).was_cached;
}

std::span<double> Session::values() {
  const std::size_t pending =
      impl_->in_flight.load(std::memory_order_acquire);
  SPTTN_CHECK_MSG(pending == 0,
                  "values() while " << pending
                                    << " submitted execution(s) are in "
                                       "flight: mutating nonzero values "
                                       "would race the executor; wait() on "
                                       "the outstanding handles first");
  return impl_->csf.vals();
}

std::size_t Session::in_flight() const {
  return impl_->in_flight.load(std::memory_order_acquire);
}

const CsfTensor& Session::csf() const { return impl_->csf; }

const SparsityStats& Session::stats() const { return impl_->stats; }

std::uint64_t Session::fingerprint() const {
  return impl_->csf.structure_fingerprint();
}

KernelCache& Session::cache() const { return *impl_->cache; }

}  // namespace spttn
