#include "exec/lower.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace spttn {

namespace {

using cprog::Base;
using cprog::CAccess;
using cprog::CActionRef;
using cprog::CLoop;
using cprog::CompiledView;
using cprog::CTerm;
using lowered::InnerKind;
using lowered::LChain;
using lowered::LLoop;
using lowered::LOp;
using lowered::LoweredProgram;
using lowered::LReset;
using lowered::LTerm;
using lowered::Operand;

struct Lowerer {
  const CompiledView& prog;
  const LowerLimits& lim;
  LoweredProgram out;

  /// Intern a base pointer source. Slots are few (inputs + buffers +
  /// outputs), so a linear scan beats hashing. Returns -1 on table
  /// overflow, which rejects the operand.
  int slot_for(Base base, int id) {
    for (std::size_t s = 0; s < out.slots.size(); ++s) {
      if (out.slots[s].base == base && out.slots[s].id == id) {
        return static_cast<int>(s);
      }
    }
    if (out.slots.size() >= static_cast<std::size_t>(lowered::kMaxSlots)) {
      return -1;
    }
    out.slots.push_back({base, id});
    return static_cast<int>(out.slots.size()) - 1;
  }

  bool lower_operand(const CAccess& a, Operand* o) {
    // kSparseVal / kOutSparse are leaf-addressed singletons; the others key
    // the slot table by their id.
    const bool indexed = a.base == Base::kDense || a.base == Base::kBuffer;
    const int slot = slot_for(a.base, indexed ? a.id : 0);
    if (slot < 0) return false;
    const int cap = std::min(lim.max_operand_deps, lowered::kMaxDeps);
    if (static_cast<int>(a.outer.size()) > cap) return false;
    o->slot = slot;
    o->leaf = a.base == Base::kSparseVal || a.base == Base::kOutSparse;
    o->ndeps = static_cast<std::uint8_t>(a.outer.size());
    for (std::size_t d = 0; d < a.outer.size(); ++d) {
      o->deps[d].idx = a.outer[d].first;
      o->deps[d].stride = a.outer[d].second;
    }
    return true;
  }

  /// Kernel selection mirrors Impl::run_inner's dispatch exactly (out
  /// stride 0 => dot, lhs 0 => axpy(alpha = *lhs), rhs 0 => axpy(alpha =
  /// *rhs), else hadamard), with the unit-stride instantiation chosen by
  /// the same conditions kernels.cpp fast-paths on.
  bool lower_term(const CTerm& ct, LTerm* t) {
    const int depth = static_cast<int>(ct.extent.size());
    if (depth > std::min(lim.max_term_levels, lowered::kMaxTermLevels)) {
      return false;
    }
    if (!lower_operand(ct.lhs, &t->lhs) || !lower_operand(ct.rhs, &t->rhs) ||
        !lower_operand(ct.out, &t->out)) {
      return false;
    }
    if (depth == 0) {
      t->inner = InnerKind::kScalar;
      return true;
    }
    const auto last = static_cast<std::size_t>(depth - 1);
    t->n = ct.extent[last];
    t->ls = ct.lhs.inner[last];
    t->rs = ct.rhs.inner[last];
    t->os = ct.out.inner[last];
    if (t->os == 0) {
      t->inner = t->ls == 1 && t->rs == 1 ? InnerKind::kDotU : InnerKind::kDotG;
    } else if (t->ls == 0) {
      t->inner =
          t->rs == 1 && t->os == 1 ? InnerKind::kAxpyLU : InnerKind::kAxpyLG;
    } else if (t->rs == 0) {
      t->inner =
          t->ls == 1 && t->os == 1 ? InnerKind::kAxpyRU : InnerKind::kAxpyRG;
    } else {
      t->inner = t->ls == 1 && t->rs == 1 && t->os == 1 ? InnerKind::kHadU
                                                        : InnerKind::kHadG;
    }
    t->outer_depth = static_cast<std::uint8_t>(depth - 1);
    for (int l = 0; l + 1 < depth; ++l) {
      const auto lv = static_cast<std::size_t>(l);
      t->oext[lv] = ct.extent[lv];
      t->ols[lv] = ct.lhs.inner[lv];
      t->ors[lv] = ct.rhs.inner[lv];
      t->oos[lv] = ct.out.inner[lv];
    }
    return true;
  }

  /// Pull the chain loop's contribution out of one operand: at most one
  /// (index, stride) dependency on the loop index becomes the idx
  /// multiplier, and leaf addressing becomes the position multiplier (only
  /// valid when the chain loop IS the CSF leaf level — otherwise the leaf
  /// node is not a function of the loop position and the loop must stay
  /// generic).
  bool extract_chain_operand(Operand* o, int loop_index, bool loop_is_leaf,
                             std::int64_t* idx_mult, std::int64_t* leaf_mult) {
    *idx_mult = 0;
    *leaf_mult = 0;
    int found = -1;
    for (int d = 0; d < o->ndeps; ++d) {
      if (o->deps[static_cast<std::size_t>(d)].idx == loop_index) {
        if (found >= 0) return false;  // repeated index (diagonal access)
        found = d;
      }
    }
    if (found >= 0) {
      *idx_mult = o->deps[static_cast<std::size_t>(found)].stride;
      for (int d = found; d + 1 < o->ndeps; ++d) {
        o->deps[static_cast<std::size_t>(d)] =
            o->deps[static_cast<std::size_t>(d + 1)];
      }
      --o->ndeps;
    }
    if (o->leaf) {
      if (!loop_is_leaf) return false;
      *leaf_mult = 1;
      o->leaf = false;
    }
    return true;
  }

  /// Lower one compiled loop (whole subtree or nothing). Returns the
  /// lowered loop id, or -1 when any part of the subtree is rejected —
  /// in which case successfully lowered child loops keep their loop_of
  /// entries and still dispatch lowered under an interpreted parent.
  int lower_loop(int cid) {
    const CLoop& cl = prog.loops[static_cast<std::size_t>(cid)];

    if (lim.enable_chains && cl.sparse && cl.body.size() == 1 &&
        cl.body.front().kind == CActionRef::Kind::kTerm) {
      LTerm t;
      if (lower_term(prog.terms[static_cast<std::size_t>(cl.body.front().id)],
                     &t)) {
        const bool leaf_loop = cl.csf_level == prog.csf_order - 1;
        LChain c;
        if (extract_chain_operand(&t.lhs, cl.index, leaf_loop, &c.l_idx,
                                  &c.l_leaf) &&
            extract_chain_operand(&t.rhs, cl.index, leaf_loop, &c.r_idx,
                                  &c.r_leaf) &&
            extract_chain_operand(&t.out, cl.index, leaf_loop, &c.o_idx,
                                  &c.o_leaf)) {
          out.terms.push_back(t);
          c.term = static_cast<std::int32_t>(out.terms.size()) - 1;
          LLoop ll;
          ll.index = cl.index;
          ll.sparse = true;
          ll.csf_level = cl.csf_level;
          ll.extent = cl.extent;
          ll.is_chain = true;
          ll.chain = c;
          out.loops.push_back(std::move(ll));
          const auto id = static_cast<std::int32_t>(out.loops.size()) - 1;
          out.loop_of[static_cast<std::size_t>(cid)] = id;
          return id;
        }
      }
    }

    std::vector<LOp> body;
    body.reserve(cl.body.size());
    for (const CActionRef& a : cl.body) {
      switch (a.kind) {
        case CActionRef::Kind::kTerm: {
          LTerm t;
          if (!lower_term(prog.terms[static_cast<std::size_t>(a.id)], &t)) {
            return -1;
          }
          out.terms.push_back(t);
          body.push_back({LOp::Kind::kTerm,
                          static_cast<std::int32_t>(out.terms.size()) - 1});
          break;
        }
        case CActionRef::Kind::kReset: {
          const int slot = slot_for(Base::kBuffer, a.id);
          if (slot < 0) return -1;
          out.resets.push_back(
              {slot, prog.buffer_len[static_cast<std::size_t>(a.id)]});
          body.push_back({LOp::Kind::kReset,
                          static_cast<std::int32_t>(out.resets.size()) - 1});
          break;
        }
        case CActionRef::Kind::kLoop: {
          const int li = lower_loop(a.id);
          if (li < 0) return -1;
          body.push_back({LOp::Kind::kLoop, li});
          break;
        }
      }
    }
    LLoop ll;
    ll.index = cl.index;
    ll.sparse = cl.sparse;
    ll.csf_level = cl.csf_level;
    ll.extent = cl.extent;
    ll.body = std::move(body);
    out.loops.push_back(std::move(ll));
    const auto id = static_cast<std::int32_t>(out.loops.size()) - 1;
    out.loop_of[static_cast<std::size_t>(cid)] = id;
    return id;
  }
};

}  // namespace

lowered::LoweredProgram lower_program(const cprog::CompiledView& prog,
                                      const LowerLimits& limits) {
  Lowerer lw{prog, limits, {}};
  lw.out.loop_of.assign(prog.loops.size(), -1);
  for (const CActionRef& a : prog.top) {
    if (a.kind != CActionRef::Kind::kLoop) continue;
    if (lw.lower_loop(a.id) >= 0) ++lw.out.lowered_root_regions;
  }
  return std::move(lw.out);
}

}  // namespace spttn
