#include "exec/schedules.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace spttn {

namespace {

/// Term loop order: sparse modes in CSF order first, then dense indices in
/// ascending id order.
std::vector<int> csf_then_dense(const Kernel& kernel, const PathTerm& term) {
  std::vector<int> order;
  for (int id : kernel.sparse_ref().idx) {
    if (term.refs.contains(id)) order.push_back(id);
  }
  for (int id : term.refs.elements()) {
    if (kernel.csf_level(id) < 0) order.push_back(id);
  }
  return order;
}

}  // namespace

std::pair<ContractionPath, LoopOrder> sparselnr_schedule(
    const Kernel& kernel) {
  ContractionPath path = chain_path(kernel);
  LoopOrder order;
  order.reserve(static_cast<std::size_t>(path.num_terms()));
  for (int t = 0; t < path.num_terms(); ++t) {
    order.push_back(csf_then_dense(kernel, path.term(t)));
  }
  return {std::move(path), std::move(order)};
}

std::pair<ContractionPath, LoopOrder> unfused_pairwise_schedule(
    const Kernel& kernel) {
  ContractionPath path = chain_path(kernel);
  LoopOrder order;
  order.reserve(static_cast<std::size_t>(path.num_terms()));
  for (int t = 0; t < path.num_terms(); ++t) {
    std::vector<int> o = csf_then_dense(kernel, path.term(t));
    // Break fusion with the previous term by rotating a dense index to the
    // front when one exists; otherwise the shared sparse prefix will fuse
    // (fusion cannot be avoided for fully sparse terms without changing
    // CSF order).
    if (t > 0) {
      const auto dense_it =
          std::find_if(o.begin(), o.end(), [&](int id) {
            return kernel.csf_level(id) < 0;
          });
      if (dense_it != o.end()) {
        std::rotate(o.begin(), dense_it, dense_it + 1);
      }
    }
    order.push_back(std::move(o));
  }
  return {std::move(path), std::move(order)};
}

}  // namespace spttn
