// Baseline schedule constructors (paper Sections 2.4.3 and 7).
//
// These build (path, order) pairs the way the compared frameworks would,
// then run on the same fused executor, isolating the scheduling decision —
// which is exactly what the paper's comparison attributes the speedups to.
#pragma once

#include <utility>

#include "core/contraction_path.hpp"
#include "core/loop_order.hpp"

namespace spttn {

/// SparseLNR-style schedule: contract the sparse tensor with the dense
/// factors in expression order; each term's loops are (sparse modes in CSF
/// order, then dense indices), so only the outermost shared index fuses and
/// intermediates span the remaining shared indices (e.g. the K x R workspace
/// the paper describes for order-3 TTMc). Sparse modes out of CSF position
/// iterate densely, reproducing SparseLNR/TACO workspace behaviour.
std::pair<ContractionPath, LoopOrder> sparselnr_schedule(const Kernel& kernel);

/// Factorize-and-fuse schedule with the chain path but *unfused* loop nests
/// (paper Listing 2 / Figure 1a): each pairwise contraction keeps an
/// independent loop nest, so intermediates are materialized at full size.
/// Dense buffers stand in for CTF's sparse intermediates; useful to isolate
/// the benefit of fusion alone.
std::pair<ContractionPath, LoopOrder> unfused_pairwise_schedule(
    const Kernel& kernel);

}  // namespace spttn
