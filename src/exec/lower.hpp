// Lowering pass: compiled-program IR -> flat pre-resolved LoweredProgram.
//
// Runs once at FusedExecutor construction (and again on relower). Lowering
// is proved per subtree: a loop lowers only when everything under it does,
// but the children of a rejected loop may still lower individually — the
// executor dispatches per loop via LoweredProgram::loop_of, so rejected
// regions interpret while accepted ones run the specialized form.
#pragma once

#include "exec/compiled_program.hpp"
#include "exec/lowered_program.hpp"

namespace spttn {

/// Caps on what the lowerer takes on; anything beyond falls back to the
/// interpreter per region. The defaults accept every shape in the paper
/// suite. Exposed mainly so tests and ablations can force fallback through
/// FusedExecutor::relower (e.g. max_operand_deps = 0 rejects every operand
/// with an outer index dependency).
struct LowerLimits {
  int max_operand_deps = lowered::kMaxDeps;
  int max_term_levels = lowered::kMaxTermLevels;
  /// Fuse single-term sparse loops into tight nonzero-range chains.
  /// Disabling keeps generic lowered loops only (ablation knob); results
  /// are bit-identical either way.
  bool enable_chains = true;
};

lowered::LoweredProgram lower_program(const cprog::CompiledView& prog,
                                      const LowerLimits& limits = {});

}  // namespace spttn
