// Exact reference executor — the gold model for all correctness tests.
//
// Iterates the COO nonzeros directly and the dense-only indices exhaustively,
// computing the full input product per point. Deliberately shares no code
// with the fused executor so the two can check each other.
#pragma once

#include <span>
#include <vector>

#include "tensor/coo_tensor.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/einsum.hpp"

namespace spttn {

/// Execute `kernel` exactly. `dense` holds one entry per kernel input (the
/// sparse slot is ignored). Exactly one of out_dense / out_sparse is used,
/// depending on kernel.output_is_sparse(); outputs are zeroed first.
void reference_execute(const Kernel& kernel, const CooTensor& sparse,
                       std::span<const DenseTensor* const> dense,
                       DenseTensor* out_dense, std::span<double> out_sparse);

}  // namespace spttn
