#include "exec/executor.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "exec/compiled_program.hpp"
#include "exec/kernels.hpp"
#include "exec/lower.hpp"
#include "exec/lowered_program.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace spttn {

// The compiled-program IR lives in exec/compiled_program.hpp, shared with
// the lowering tier; the interpreter below keeps its unqualified spelling.
using cprog::Base;
using cprog::CAccess;
using cprog::CActionRef;
using cprog::CLoop;
using cprog::CTerm;

struct FusedExecutor::Impl {
  Kernel kernel;  // copy: plans outlive callers' kernels
  ContractionPath path;
  LoopTree tree;

  std::vector<CLoop> loops;
  std::vector<CTerm> terms;
  std::vector<CActionRef> top;
  std::vector<std::int64_t> buffer_len;  // element counts per producing term
  int offloaded_terms = 0;
  int collapsed_loops = 0;

  /// Lowered form of the same program (lower.cpp), built at construction.
  /// Execution picks the tier per call (ExecArgs::tier); `low.loop_of`
  /// says which loops have a lowered implementation.
  lowered::LoweredProgram low;

  bool collapse_dense = true;

  /// Sparsity fingerprint of the plan this nest was compiled from; 0 when
  /// built from a raw (path, order) pair or a plan with modeled stats.
  std::uint64_t plan_fingerprint = 0;

  // --- Parallel-execution metadata (analyze_parallel, at compile time) ---

  /// Parallelizability of one top-level action.
  struct TopMeta {
    bool par_safe = false;         ///< loop may be partitioned across workers
    bool writes_out_dense = false; ///< some term under it writes the output
    bool writes_out_sparse = false;
    /// Every dense-output write under the loop is strided by the loop's own
    /// index, so partitions write disjoint slices and no reduction is
    /// needed (the common case: MTTKRP rows, TTMc slices).
    bool out_dense_rooted = true;
    /// The sole second-level loop (loops[] id) when the root body is
    /// exactly one loop; -1 otherwise. Unit of the nested split.
    int inner_loop = -1;
    /// The root may be split across the second loop level: par_safe, a
    /// single-loop body at a consistent CSF level, and no shared-buffer
    /// writes under the root (two tasks sharing a root index would collide
    /// on the root-strided slice).
    bool nest_safe = false;
    /// Every dense-output write under the loop is also strided by the
    /// inner loop's index; together with out_dense_rooted this makes
    /// nested tasks' output slices disjoint (direct writes, no partials).
    bool out_dense_inner_rooted = true;
  };
  std::vector<TopMeta> top_meta;  // aligned with `top`
  int num_root_regions = 0;       ///< top-level kLoop actions
  /// Buffers that carry values across top-level actions (or are written in
  /// a non-parallelizable position); they live in storage shared by all
  /// workers. Non-shared buffers are private per worker runtime.
  std::vector<char> buffer_shared;

  /// Mutable per-execution (and per-thread) state. The compiled program
  /// above is immutable during execution, so parallel workers share it and
  /// own one Runtime each.
  struct Runtime {
    std::vector<std::int64_t> idx_val;
    std::vector<std::int64_t> csf_node;
    std::vector<std::vector<double>> owned;  // storage for private buffers
    std::vector<double*> buffers;            // per producing term
    const CsfTensor* csf = nullptr;
    std::vector<const double*> dense_data;
    double* out_dense_data = nullptr;
    double* out_sparse_data = nullptr;
    /// Tier for this execution (copied from ExecArgs; worker runtimes
    /// inherit it so parallel tasks dispatch identically).
    ExecTier tier = ExecTier::kInterpret;
  };

  /// Bind the lowered program to one runtime: resolve every interned slot
  /// to its base pointer. Cheap (slots are few); built at each lowered
  /// region dispatch.
  lowered::ExecCtx make_ctx(Runtime& rt) const {
    lowered::ExecCtx ctx;
    ctx.idx_val = rt.idx_val.data();
    ctx.csf_node = rt.csf_node.data();
    ctx.csf = rt.csf;
    ctx.leaf_level = static_cast<std::int32_t>(rt.csf_node.size()) - 1;
    for (std::size_t s = 0; s < low.slots.size(); ++s) {
      const lowered::SlotSource& src = low.slots[s];
      double* p = nullptr;
      switch (src.base) {
        case Base::kDense:
          p = const_cast<double*>(
              rt.dense_data[static_cast<std::size_t>(src.id)]);
          break;
        case Base::kBuffer:
          p = rt.buffers[static_cast<std::size_t>(src.id)];
          break;
        case Base::kSparseVal:
          p = const_cast<double*>(rt.csf->vals().data());
          break;
        case Base::kOutDense:
          p = rt.out_dense_data;
          break;
        case Base::kOutSparse:
          p = rt.out_sparse_data;
          break;
      }
      ctx.table[s] = p;
    }
    return ctx;
  }

  /// Tier dispatch for one loop over [begin, end): the single point both
  /// the sequential walk and every parallel task (root chunks and nested
  /// second-level splits) go through, so partitioning is tier-agnostic.
  void run_loop_range(Runtime& rt, int loop_id, std::int64_t begin,
                      std::int64_t end) const {
    const std::int32_t li = low.loop_of[static_cast<std::size_t>(loop_id)];
    if (rt.tier == ExecTier::kLowered && li >= 0) {
      lowered::ExecCtx ctx = make_ctx(rt);
      lowered::run_loop(low, ctx, li, begin, end);
      return;
    }
    run_loop(rt, loops[static_cast<std::size_t>(loop_id)], begin, end);
  }

  cprog::CompiledView view() const {
    return {loops, terms, top, buffer_len, kernel.sparse_ref().order()};
  }

  /// Build a runtime. Buffers marked shared alias `shared` storage (one
  /// allocation all workers see, writes disjoint by construction); the rest
  /// are private zero-initialized copies. Pass null to own everything
  /// (sequential execution).
  Runtime make_runtime(std::vector<std::vector<double>>* shared) const {
    Runtime rt;
    rt.idx_val.assign(static_cast<std::size_t>(kernel.num_indices()), 0);
    rt.csf_node.assign(static_cast<std::size_t>(kernel.sparse_ref().order()),
                       0);
    rt.owned.resize(buffer_len.size());
    rt.buffers.assign(buffer_len.size(), nullptr);
    for (std::size_t b = 0; b < buffer_len.size(); ++b) {
      if (buffer_len[b] == 0) continue;
      if (shared != nullptr && buffer_shared[b]) {
        rt.buffers[b] = (*shared)[b].data();
      } else {
        rt.owned[b].assign(static_cast<std::size_t>(buffer_len[b]), 0.0);
        rt.buffers[b] = rt.owned[b].data();
      }
    }
    return rt;
  }

  void compile(const LoopOrder& order);
  void analyze_parallel();
  CAccess make_access(const PathOperand& op,
                      const std::vector<int>& inner_chain);
  CAccess make_out_access(int term_id, const std::vector<int>& inner_chain);
  std::vector<std::int64_t> strides_for(
      const std::vector<int>& idx_order,
      const std::vector<std::int64_t>& dims) const;
  void split_access(const std::vector<int>& ids,
                    const std::vector<std::int64_t>& strides,
                    const std::vector<int>& inner_chain, CAccess* access);

  void run_actions(Runtime& rt, const std::vector<CActionRef>& body) const;
  void run_action(Runtime& rt, const CActionRef& a) const;
  void run_loop(Runtime& rt, const CLoop& loop, std::int64_t begin,
                std::int64_t end) const;
  void execute_parallel(Runtime& rt, const ExecArgs& args, int want_threads,
                        std::vector<std::vector<double>>& shared_bufs,
                        ExecStats* stats) const;
  void run_term(Runtime& rt, const CTerm& t) const;
  void run_inner(const CTerm& t, std::size_t level, const double* lhs,
                 const double* rhs, double* out) const;
  const double* resolve(const Runtime& rt, const CAccess& a) const;
  double* resolve_mut(const Runtime& rt, const CAccess& a) const;
};

FusedExecutor::FusedExecutor(const Kernel& kernel,
                             const ContractionPath& path,
                             const LoopOrder& order, bool collapse_dense)
    : impl_(std::make_unique<Impl>()) {
  impl_->kernel = kernel;
  impl_->path = path;
  impl_->collapse_dense = collapse_dense;
  impl_->tree = LoopTree::build(kernel, path, order);
  impl_->compile(order);
  impl_->analyze_parallel();
  impl_->low = lower_program(impl_->view(), LowerLimits{});
}

FusedExecutor::FusedExecutor(const Kernel& kernel, const Plan& plan)
    : FusedExecutor(kernel, plan.path, plan.order) {
  impl_->plan_fingerprint = plan.sparsity_fingerprint;
}

FusedExecutor::~FusedExecutor() = default;
FusedExecutor::FusedExecutor(FusedExecutor&&) noexcept = default;
FusedExecutor& FusedExecutor::operator=(FusedExecutor&&) noexcept = default;

const LoopTree& FusedExecutor::tree() const { return impl_->tree; }
int FusedExecutor::offloaded_terms() const { return impl_->offloaded_terms; }
int FusedExecutor::collapsed_loops() const { return impl_->collapsed_loops; }
bool FusedExecutor::collapse_dense() const { return impl_->collapse_dense; }

int FusedExecutor::lowered_regions() const {
  return impl_->low.lowered_root_regions;
}

std::size_t FusedExecutor::program_bytes() const {
  const Impl& im = *impl_;
  std::size_t b = 0;
  b += im.loops.capacity() * sizeof(CLoop);
  for (const CLoop& l : im.loops) {
    b += l.body.capacity() * sizeof(CActionRef);
  }
  b += im.terms.capacity() * sizeof(CTerm);
  for (const CTerm& t : im.terms) {
    for (const CAccess* a : {&t.lhs, &t.rhs, &t.out}) {
      b += a->outer.capacity() * sizeof(std::pair<int, std::int64_t>);
      b += a->inner.capacity() * sizeof(std::int64_t);
    }
    b += t.extent.capacity() * sizeof(std::int64_t);
  }
  b += im.top.capacity() * sizeof(CActionRef);
  b += im.buffer_len.capacity() * sizeof(std::int64_t);
  b += im.top_meta.capacity() * sizeof(Impl::TopMeta);
  b += im.buffer_shared.capacity() * sizeof(char);
  b += im.low.bytes();
  return b;
}

void FusedExecutor::relower(const LowerLimits& limits) {
  impl_->low = lower_program(impl_->view(), limits);
}

std::vector<FusedExecutor::ParallelRegionInfo>
FusedExecutor::parallel_regions() const {
  std::vector<ParallelRegionInfo> out;
  const Impl& im = *impl_;
  for (std::size_t t = 0; t < im.top.size(); ++t) {
    if (im.top[t].kind != CActionRef::Kind::kLoop) continue;
    const CLoop& root = im.loops[static_cast<std::size_t>(im.top[t].id)];
    const Impl::TopMeta& meta = im.top_meta[t];
    ParallelRegionInfo info;
    info.top_position = static_cast<int>(t);
    info.root_index = root.index;
    info.sparse = root.sparse;
    info.par_safe = meta.par_safe;
    info.nest_safe = meta.nest_safe;
    info.writes_out_dense = meta.writes_out_dense;
    info.writes_out_sparse = meta.writes_out_sparse;
    info.out_dense_rooted = meta.out_dense_rooted;
    info.out_dense_inner_rooted = meta.out_dense_inner_rooted;
    out.push_back(info);
  }
  return out;
}

std::vector<char> FusedExecutor::shared_buffers() const {
  const Impl& im = *impl_;
  std::vector<char> out(im.buffer_shared.size(), 0);
  for (std::size_t b = 0; b < out.size(); ++b) {
    out[b] = (im.buffer_len[b] > 0 && im.buffer_shared[b]) ? 1 : 0;
  }
  return out;
}

std::vector<std::int64_t> FusedExecutor::Impl::strides_for(
    const std::vector<int>& idx_order,
    const std::vector<std::int64_t>& dims) const {
  std::vector<std::int64_t> strides(idx_order.size());
  std::int64_t s = 1;
  for (std::size_t m = idx_order.size(); m-- > 0;) {
    strides[m] = s;
    s *= dims[m];
  }
  return strides;
}

void FusedExecutor::Impl::split_access(
    const std::vector<int>& ids, const std::vector<std::int64_t>& strides,
    const std::vector<int>& inner_chain, CAccess* access) {
  access->inner.assign(inner_chain.size(), 0);
  for (std::size_t m = 0; m < ids.size(); ++m) {
    const auto it =
        std::find(inner_chain.begin(), inner_chain.end(), ids[m]);
    if (it != inner_chain.end()) {
      access->inner[static_cast<std::size_t>(it - inner_chain.begin())] =
          strides[m];
    } else {
      access->outer.emplace_back(ids[m], strides[m]);
    }
  }
}

CAccess FusedExecutor::Impl::make_access(const PathOperand& op,
                                         const std::vector<int>& inner_chain) {
  CAccess a;
  if (op.kind == PathOperand::Kind::kInput) {
    if (op.id == kernel.sparse_input()) {
      a.base = Base::kSparseVal;
      a.inner.assign(inner_chain.size(), 0);
      return a;
    }
    a.base = Base::kDense;
    a.id = op.id;
    const auto& ref = kernel.input(op.id);
    std::vector<std::int64_t> dims(ref.idx.size());
    for (std::size_t m = 0; m < ref.idx.size(); ++m) {
      dims[m] = kernel.index_dim(ref.idx[m]);
    }
    split_access(ref.idx, strides_for(ref.idx, dims), inner_chain, &a);
    return a;
  }
  // Intermediate buffer produced by an earlier term.
  a.base = Base::kBuffer;
  a.id = op.id;
  const BufferSpec& spec = tree.buffers()[static_cast<std::size_t>(op.id)];
  split_access(spec.indices, strides_for(spec.indices, spec.dims),
               inner_chain, &a);
  return a;
}

CAccess FusedExecutor::Impl::make_out_access(
    int term_id, const std::vector<int>& inner_chain) {
  CAccess a;
  if (term_id + 1 < path.num_terms()) {
    a.base = Base::kBuffer;
    a.id = term_id;
    const BufferSpec& spec =
        tree.buffers()[static_cast<std::size_t>(term_id)];
    split_access(spec.indices, strides_for(spec.indices, spec.dims),
                 inner_chain, &a);
    return a;
  }
  if (kernel.output_is_sparse()) {
    a.base = Base::kOutSparse;
    a.inner.assign(inner_chain.size(), 0);
    return a;
  }
  a.base = Base::kOutDense;
  const auto& ref = kernel.output();
  std::vector<std::int64_t> dims(ref.idx.size());
  for (std::size_t m = 0; m < ref.idx.size(); ++m) {
    dims[m] = kernel.index_dim(ref.idx[m]);
  }
  split_access(ref.idx, strides_for(ref.idx, dims), inner_chain, &a);
  return a;
}

void FusedExecutor::Impl::compile(const LoopOrder& order) {
  (void)order;
  // Record buffer sizes (storage itself lives in each Runtime).
  buffer_len.assign(static_cast<std::size_t>(path.num_terms()), 0);
  for (const BufferSpec& spec : tree.buffers()) {
    if (spec.producer < 0) continue;
    buffer_len[static_cast<std::size_t>(spec.producer)] = spec.size;
  }

  // Try to collapse a node's entire subtree into a dense single-term chain:
  // returns the chain of loop indices when the subtree is a pure chain of
  // dense loops ending at exactly one term (no resets inside).
  const auto try_collapse =
      [&](int node_id, std::vector<int>* chain) -> int /*term or -1*/ {
    int cur = node_id;
    while (true) {
      const LoopTree::Node& n =
          tree.nodes()[static_cast<std::size_t>(cur)];
      if (n.sparse || n.body.size() != 1) return -1;
      chain->push_back(n.index);
      const LoopTree::Action& a = n.body.front();
      if (a.kind == LoopTree::Action::Kind::kTerm) return a.id;
      if (a.kind != LoopTree::Action::Kind::kLoop) return -1;
      cur = a.id;
    }
  };

  const auto make_term = [&](int term_id, const std::vector<int>& chain) {
    CTerm t;
    t.term_id = term_id;
    t.extent.reserve(chain.size());
    for (int id : chain) {
      t.extent.push_back(kernel.index_dim(id));
    }
    const PathTerm& term = path.term(term_id);
    t.lhs = make_access(term.lhs, chain);
    t.rhs = make_access(term.rhs, chain);
    t.out = make_out_access(term_id, chain);
    if (!chain.empty()) {
      ++offloaded_terms;
      collapsed_loops += static_cast<int>(chain.size());
    }
    terms.push_back(std::move(t));
    return static_cast<int>(terms.size()) - 1;
  };

  const auto compile_body = [&](auto&& self,
                                const std::vector<LoopTree::Action>& body,
                                bool top_level) -> std::vector<CActionRef> {
    std::vector<CActionRef> out;
    for (const auto& a : body) {
      switch (a.kind) {
        case LoopTree::Action::Kind::kTerm:
          out.push_back(
              {CActionRef::Kind::kTerm, make_term(a.id, {})});
          break;
        case LoopTree::Action::Kind::kReset:
          out.push_back({CActionRef::Kind::kReset, a.id});
          break;
        case LoopTree::Action::Kind::kLoop: {
          // Root loops are kept explicit even when their whole subtree is a
          // collapsible dense chain: they are the unit of work partitioning
          // (their bodies still collapse, so sequential execution loses only
          // the outermost strided level).
          std::vector<int> chain;
          const int term_id = (collapse_dense && !top_level)
                                  ? try_collapse(a.id, &chain)
                                  : -1;
          if (term_id >= 0) {
            out.push_back(
                {CActionRef::Kind::kTerm, make_term(term_id, chain)});
            break;
          }
          const LoopTree::Node& n =
              tree.nodes()[static_cast<std::size_t>(a.id)];
          CLoop loop;
          loop.index = n.index;
          loop.sparse = n.sparse;
          loop.csf_level = n.csf_level;
          loop.extent = kernel.index_dim(n.index);
          loop.body = self(self, n.body, false);
          loops.push_back(std::move(loop));
          out.push_back(
              {CActionRef::Kind::kLoop, static_cast<int>(loops.size()) - 1});
          break;
        }
      }
    }
    return out;
  };
  top = compile_body(compile_body, tree.top(), true);
}

void FusedExecutor::Impl::analyze_parallel() {
  const std::size_t nb = buffer_len.size();
  // Where each buffer's producer term, consumer term and reset action sit in
  // the top-level action sequence (-1 = not found, e.g. unused slots).
  std::vector<int> producer_top(nb, -1);
  std::vector<int> consumer_top(nb, -1);
  std::vector<int> reset_top(nb, -1);
  top_meta.assign(top.size(), {});

  const auto walk = [&](auto&& self, const CActionRef& a, int t) -> void {
    TopMeta& meta = top_meta[static_cast<std::size_t>(t)];
    switch (a.kind) {
      case CActionRef::Kind::kReset:
        reset_top[static_cast<std::size_t>(a.id)] = t;
        break;
      case CActionRef::Kind::kTerm: {
        const CTerm& ct = terms[static_cast<std::size_t>(a.id)];
        if (ct.out.base == Base::kBuffer) {
          producer_top[static_cast<std::size_t>(ct.out.id)] = t;
        }
        if (ct.out.base == Base::kOutDense) {
          meta.writes_out_dense = true;
          if (top[static_cast<std::size_t>(t)].kind ==
              CActionRef::Kind::kLoop) {
            const CLoop& root = loops[static_cast<std::size_t>(
                top[static_cast<std::size_t>(t)].id)];
            const bool rooted = std::any_of(
                ct.out.outer.begin(), ct.out.outer.end(),
                [&](const auto& p) { return p.first == root.index; });
            if (!rooted) meta.out_dense_rooted = false;
          }
        }
        if (ct.out.base == Base::kOutSparse) meta.writes_out_sparse = true;
        for (const CAccess* side : {&ct.lhs, &ct.rhs}) {
          if (side->base == Base::kBuffer) {
            consumer_top[static_cast<std::size_t>(side->id)] = t;
          }
        }
        break;
      }
      case CActionRef::Kind::kLoop:
        for (const CActionRef& child :
             loops[static_cast<std::size_t>(a.id)].body) {
          self(self, child, t);
        }
        break;
    }
  };
  for (std::size_t t = 0; t < top.size(); ++t) {
    walk(walk, top[t], static_cast<int>(t));
  }

  // A buffer is worker-private only when its whole lifetime (reset, write,
  // read) sits under one top-level loop; the reset scope encodes whether
  // values carry across root iterations (LoopTree places it at the deepest
  // common ancestor of producer and consumer).
  buffer_shared.assign(nb, 1);
  for (std::size_t b = 0; b < nb; ++b) {
    if (buffer_len[b] == 0) continue;
    const int t = producer_top[b];
    const bool local = t >= 0 &&
                       top[static_cast<std::size_t>(t)].kind ==
                           CActionRef::Kind::kLoop &&
                       consumer_top[b] == t && reset_top[b] == t;
    buffer_shared[b] = local ? 0 : 1;
  }

  // A root loop partitions safely when (a) a sparse root starts at CSF
  // level 0 and (b) every shared buffer it writes is strided by the root
  // index, so partitions touch disjoint slices. Shared buffers it only
  // reads were fully produced by an earlier top-level action (barrier).
  num_root_regions = 0;
  for (std::size_t t = 0; t < top.size(); ++t) {
    if (top[t].kind != CActionRef::Kind::kLoop) continue;
    ++num_root_regions;
    const CLoop& root = loops[static_cast<std::size_t>(top[t].id)];
    bool safe = !root.sparse || root.csf_level == 0;
    for (std::size_t b = 0; b < nb && safe; ++b) {
      if (buffer_len[b] == 0 || !buffer_shared[b]) continue;
      // A reset inside a partitioned loop would zero a shared buffer from
      // every worker; the buffer-locality rule above makes this imply a
      // cross-root carry, which cannot be partitioned.
      if (reset_top[b] == static_cast<int>(t)) {
        safe = false;
        break;
      }
      if (producer_top[b] != static_cast<int>(t)) continue;
      const BufferSpec& spec = tree.buffers()[b];
      const bool rooted =
          std::find(spec.indices.begin(), spec.indices.end(), root.index) !=
          spec.indices.end();
      if (!rooted) safe = false;
    }
    top_meta[t].par_safe = safe;

    // Nested-split eligibility: the root body must be exactly one loop (so
    // no sibling term, reset, or cross-iteration buffer carry sits between
    // root iterations), at the CSF level directly below the root for
    // sparse inners, with no shared-buffer writes under the root at all
    // (root-strided slices are disjoint per root *index*, which nested
    // tasks sharing a root index would violate).
    int inner_id = -1;
    if (root.body.size() == 1 &&
        root.body.front().kind == CActionRef::Kind::kLoop) {
      inner_id = root.body.front().id;
    }
    top_meta[t].inner_loop = inner_id;
    bool nest = safe && inner_id >= 0;
    if (nest) {
      const CLoop& inner = loops[static_cast<std::size_t>(inner_id)];
      if (inner.sparse) {
        const int want_level = root.sparse ? root.csf_level + 1 : 0;
        nest = inner.csf_level == want_level;
      }
      for (std::size_t b = 0; b < nb && nest; ++b) {
        if (buffer_len[b] == 0 || !buffer_shared[b]) continue;
        if (producer_top[b] == static_cast<int>(t)) nest = false;
      }
    }
    top_meta[t].nest_safe = nest;
    if (nest) {
      // Dense-output stride check against the inner index: collect every
      // term under this root and require the inner index among the output
      // access's outer strides.
      const CLoop& inner = loops[static_cast<std::size_t>(inner_id)];
      const auto check = [&](auto&& self, const CActionRef& a) -> void {
        switch (a.kind) {
          case CActionRef::Kind::kTerm: {
            const CTerm& ct = terms[static_cast<std::size_t>(a.id)];
            if (ct.out.base == Base::kOutDense) {
              const bool strided = std::any_of(
                  ct.out.outer.begin(), ct.out.outer.end(),
                  [&](const auto& p) { return p.first == inner.index; });
              if (!strided) top_meta[t].out_dense_inner_rooted = false;
            }
            break;
          }
          case CActionRef::Kind::kLoop:
            for (const CActionRef& child :
                 loops[static_cast<std::size_t>(a.id)].body) {
              self(self, child);
            }
            break;
          case CActionRef::Kind::kReset:
            break;
        }
      };
      check(check, top[t]);
    }
  }
}

const double* FusedExecutor::Impl::resolve(const Runtime& rt,
                                           const CAccess& a) const {
  const double* base = nullptr;
  switch (a.base) {
    case Base::kDense:
      base = rt.dense_data[static_cast<std::size_t>(a.id)];
      break;
    case Base::kBuffer:
      base = rt.buffers[static_cast<std::size_t>(a.id)];
      break;
    case Base::kSparseVal:
      return rt.csf->vals().data() + rt.csf_node.back();
    case Base::kOutDense:
      base = rt.out_dense_data;
      break;
    case Base::kOutSparse:
      return rt.out_sparse_data + rt.csf_node.back();
  }
  std::int64_t off = 0;
  for (const auto& [id, stride] : a.outer) {
    off += rt.idx_val[static_cast<std::size_t>(id)] * stride;
  }
  return base + off;
}

double* FusedExecutor::Impl::resolve_mut(const Runtime& rt,
                                         const CAccess& a) const {
  return const_cast<double*>(resolve(rt, a));
}

void FusedExecutor::Impl::run_inner(const CTerm& t, std::size_t level,
                                    const double* lhs, const double* rhs,
                                    double* out) const {
  const std::size_t depth = t.extent.size();
  if (level == depth) {
    *out += *lhs * *rhs;
    return;
  }
  const std::int64_t n = t.extent[level];
  const std::int64_t sl = t.lhs.inner[level];
  const std::int64_t sr = t.rhs.inner[level];
  const std::int64_t so = t.out.inner[level];
  if (level + 1 == depth) {
    // Innermost loop: dispatch to a strided BLAS-style kernel.
    if (so == 0) {
      *out += xdot(n, lhs, sl, rhs, sr);
    } else if (sl == 0) {
      xaxpy(n, *lhs, rhs, sr, out, so);
    } else if (sr == 0) {
      xaxpy(n, *rhs, lhs, sl, out, so);
    } else {
      xhad(n, 1.0, lhs, sl, rhs, sr, out, so);
    }
    return;
  }
  for (std::int64_t i = 0; i < n; ++i) {
    run_inner(t, level + 1, lhs + i * sl, rhs + i * sr, out + i * so);
  }
}

void FusedExecutor::Impl::run_term(Runtime& rt, const CTerm& t) const {
  run_inner(t, 0, resolve(rt, t.lhs), resolve(rt, t.rhs),
            resolve_mut(rt, t.out));
}

void FusedExecutor::Impl::run_loop(Runtime& rt, const CLoop& loop,
                                   std::int64_t begin,
                                   std::int64_t end) const {
  if (loop.sparse) {
    const int lvl = loop.csf_level;
    const auto idx = rt.csf->level_idx(lvl);
    for (std::int64_t n = begin; n < end; ++n) {
      rt.idx_val[static_cast<std::size_t>(loop.index)] =
          idx[static_cast<std::size_t>(n)];
      rt.csf_node[static_cast<std::size_t>(lvl)] = n;
      run_actions(rt, loop.body);
    }
  } else {
    auto& v = rt.idx_val[static_cast<std::size_t>(loop.index)];
    for (std::int64_t i = begin; i < end; ++i) {
      v = i;
      run_actions(rt, loop.body);
    }
  }
}

void FusedExecutor::Impl::run_action(Runtime& rt, const CActionRef& a) const {
  switch (a.kind) {
    case CActionRef::Kind::kTerm:
      run_term(rt, terms[static_cast<std::size_t>(a.id)]);
      break;
    case CActionRef::Kind::kReset:
      xzero(buffer_len[static_cast<std::size_t>(a.id)],
            rt.buffers[static_cast<std::size_t>(a.id)], 1);
      break;
    case CActionRef::Kind::kLoop: {
      const CLoop& loop = loops[static_cast<std::size_t>(a.id)];
      std::int64_t begin = 0;
      std::int64_t end = 0;
      if (loop.sparse) {
        const int lvl = loop.csf_level;
        if (lvl == 0) {
          end = rt.csf->num_nodes(0);
        } else {
          const auto ptr = rt.csf->level_ptr(lvl - 1);
          const std::int64_t parent =
              rt.csf_node[static_cast<std::size_t>(lvl - 1)];
          begin = ptr[static_cast<std::size_t>(parent)];
          end = ptr[static_cast<std::size_t>(parent + 1)];
        }
      } else {
        end = loop.extent;
      }
      run_loop_range(rt, a.id, begin, end);
      break;
    }
  }
}

void FusedExecutor::Impl::run_actions(
    Runtime& rt, const std::vector<CActionRef>& body) const {
  for (const CActionRef& a : body) run_action(rt, a);
}

void FusedExecutor::execute(const ExecArgs& args) {
  Impl& im = *impl_;
  const Kernel& k = im.kernel;
  SPTTN_CHECK_MSG(args.sparse != nullptr, "sparse operand not bound");
  const CsfTensor& csf = *args.sparse;
  SPTTN_CHECK_MSG(csf.order() == k.sparse_ref().order(),
                  "CSF order mismatch with kernel sparse operand");
  for (int l = 0; l < csf.order(); ++l) {
    SPTTN_CHECK_MSG(
        csf.level_dims()[static_cast<std::size_t>(l)] ==
            k.index_dim(k.sparse_ref().idx[static_cast<std::size_t>(l)]),
        "CSF level " << l << " dimension mismatch");
    SPTTN_CHECK_MSG(csf.mode_order()[static_cast<std::size_t>(l)] == l,
                    "CSF must be built in the kernel's sparse index order");
  }
  // Stale-stats guard: a plan derived from exact sparsity statistics may
  // only execute against the structure it was planned for. Both sides are
  // stored hashes, so the comparison is O(1); either side being 0 (raw
  // (path, order) construction, modeled stats, default CSF) skips it.
  SPTTN_CHECK_MSG(im.plan_fingerprint == 0 ||
                      csf.structure_fingerprint() == 0 ||
                      im.plan_fingerprint == csf.structure_fingerprint(),
                  "sparsity fingerprint mismatch: the plan was derived from "
                  "a structurally different tensor than the CSF being "
                  "executed (stale cached plan?)");
  SPTTN_CHECK_MSG(static_cast<int>(args.dense.size()) == k.num_inputs(),
                  "expected one dense slot per kernel input");
  const int want_threads = std::max(1, args.num_threads);
  // Shared storage for buffers carrying values across top-level actions;
  // workers alias it (their writes are disjoint by the safety analysis).
  std::vector<std::vector<double>> shared_bufs;
  if (want_threads > 1) {
    shared_bufs.resize(im.buffer_len.size());
    for (std::size_t b = 0; b < im.buffer_len.size(); ++b) {
      if (im.buffer_len[b] > 0 && im.buffer_shared[b]) {
        shared_bufs[b].assign(static_cast<std::size_t>(im.buffer_len[b]),
                              0.0);
      }
    }
  }
  Impl::Runtime rt =
      im.make_runtime(want_threads > 1 ? &shared_bufs : nullptr);
  rt.dense_data.assign(args.dense.size(), nullptr);
  for (int i = 0; i < k.num_inputs(); ++i) {
    if (i == k.sparse_input()) continue;
    const DenseTensor* d = args.dense[static_cast<std::size_t>(i)];
    SPTTN_CHECK_MSG(d != nullptr,
                    "dense input '" << k.input(i).name << "' not bound");
    const auto& ref = k.input(i);
    SPTTN_CHECK_MSG(d->order() == ref.order(),
                    "dense input '" << ref.name << "' order mismatch");
    for (int m = 0; m < ref.order(); ++m) {
      SPTTN_CHECK_MSG(
          d->dim(m) == k.index_dim(ref.idx[static_cast<std::size_t>(m)]),
          "dense input '" << ref.name << "' dim mismatch in mode " << m);
    }
    rt.dense_data[static_cast<std::size_t>(i)] = d->data();
  }

  if (k.output_is_sparse()) {
    SPTTN_CHECK_MSG(static_cast<std::int64_t>(args.out_sparse.size()) ==
                        csf.nnz(),
                    "sparse output must have one value per nonzero");
    rt.out_sparse_data = args.out_sparse.data();
    rt.out_dense_data = nullptr;
    if (!args.accumulate) {
      xzero(csf.nnz(), rt.out_sparse_data, 1);
    }
  } else {
    SPTTN_CHECK_MSG(args.out_dense != nullptr, "dense output not bound");
    const auto& ref = k.output();
    SPTTN_CHECK_MSG(args.out_dense->order() == ref.order(),
                    "output order mismatch");
    for (int m = 0; m < ref.order(); ++m) {
      SPTTN_CHECK_MSG(args.out_dense->dim(m) ==
                          k.index_dim(ref.idx[static_cast<std::size_t>(m)]),
                      "output dim mismatch in mode " << m);
    }
    rt.out_dense_data = args.out_dense->data();
    rt.out_sparse_data = nullptr;
    if (!args.accumulate) args.out_dense->zero();
  }

  rt.csf = &csf;
  rt.tier = args.tier;

  if (want_threads > 1) {
    im.execute_parallel(rt, args, want_threads, shared_bufs, args.stats);
    return;
  }
  im.run_actions(rt, im.top);
  if (args.stats != nullptr) {
    // Report the sequential execution faithfully instead of clobbering the
    // caller's struct with defaults: the resolved thread count and the
    // region census make "ran sequentially" distinguishable from "stats
    // never populated".
    ExecStats st;
    st.populated = true;
    st.threads_requested = want_threads;
    st.threads_used = 1;
    st.total_regions = im.num_root_regions;
    st.tier = args.tier;
    st.lowered_regions =
        args.tier == ExecTier::kLowered ? im.low.lowered_root_regions : 0;
    *args.stats = st;
  }
}

namespace {

/// One unit of parallel work within a root region: a contiguous range of
/// root positions, optionally narrowed (for a single root position) to a
/// sub-range of the second-level loop. `weight` is the estimated work
/// (subtree nnz for sparse roots, proportional iteration count for dense
/// roots), used for imbalance reporting only.
struct ParTask {
  std::int64_t root_begin = 0;
  std::int64_t root_end = 0;
  std::int64_t inner_begin = -1;  ///< >= 0: nested (root range is one position)
  std::int64_t inner_end = -1;
  std::int64_t weight = 0;
};

/// Nonzero-balanced partition of a sparse root loop: `leaf_begin[i]` is the
/// first leaf (nonzero) under root node i, so chunk boundaries chosen on it
/// equalize work, not index ranges. Returns non-empty [begin, end) node
/// ranges; at most `parts` of them.
std::vector<std::pair<std::int64_t, std::int64_t>> partition_by_nnz(
    const std::vector<std::int64_t>& leaf_begin, int parts) {
  const auto extent = static_cast<std::int64_t>(leaf_begin.size()) - 1;
  const std::int64_t total = leaf_begin.back();
  std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
  std::int64_t begin = 0;
  for (int c = 1; c <= parts && begin < extent; ++c) {
    std::int64_t end;
    if (c == parts) {
      end = extent;
    } else {
      const std::int64_t target = total * c / parts;
      end = std::lower_bound(leaf_begin.begin(), leaf_begin.end(), target) -
            leaf_begin.begin();
      end = std::clamp(end, begin, extent);
    }
    if (end > begin) chunks.emplace_back(begin, end);
    begin = end;
  }
  return chunks;
}

/// First-leaf offsets for every node of a CSF level (plus an end sentinel):
/// lb[i] is the first nonzero under node i at `level`, so lb[e] - lb[b]
/// counts the nonzeros below node range [b, e).
std::vector<std::int64_t> leaf_offsets(const CsfTensor& csf, int level) {
  const std::int64_t n = csf.num_nodes(level);
  std::vector<std::int64_t> lb(static_cast<std::size_t>(n) + 1);
  for (std::int64_t i = 0; i <= n; ++i) lb[static_cast<std::size_t>(i)] = i;
  for (int lvl = level; lvl + 1 < csf.order(); ++lvl) {
    const auto ptr = csf.level_ptr(lvl);
    for (auto& b : lb) b = ptr[static_cast<std::size_t>(b)];
  }
  return lb;
}

/// Deterministic tiled reduction of per-task output partials: the output
/// is cut into fixed-size tiles processed in parallel, and within a tile
/// the partials fold into dst in task order. The float summation shape
/// depends only on the partition shape (bit-identical run to run), while
/// each lane's working set stays O(tile) — one pass over memory instead of
/// the old pairwise tree's lg(P) full-length sweeps.
void reduce_partials(ThreadPool& pool,
                     std::vector<std::vector<double>>& parts,
                     std::int64_t len, double* dst) {
  if (parts.empty() || len <= 0) return;
  constexpr std::int64_t kTile = 4096;
  const std::int64_t tiles = (len + kTile - 1) / kTile;
  pool.parallel_apply(tiles, [&](std::int64_t tile) {
    const std::int64_t b = tile * kTile;
    const std::int64_t e = std::min(len, b + kTile);
    for (auto& p : parts) {
      xaxpy(e - b, 1.0, p.data() + b, 1, dst + b, 1);
    }
  });
}

}  // namespace

/// Parallel interpretation of the compiled program: top-level actions run
/// in order (each parallel_apply is a barrier), and every safe root loop is
/// partitioned across the process-wide work-stealing pool — by subtree
/// nonzero count for sparse roots, evenly for dense roots. A region whose
/// root partition is too coarse (extent below the lane budget) or too
/// skewed (one subtree owning most of the work) is re-partitioned with a
/// nested split: heavy root positions break into sub-ranges of the second
/// loop level. Outputs write directly when tasks are disjoint in the
/// partitioned indices, otherwise into per-task partials folded by a tiled
/// deterministic reduction.
void FusedExecutor::Impl::execute_parallel(
    Runtime& rt, const ExecArgs& args, int want_threads,
    std::vector<std::vector<double>>& shared_bufs, ExecStats* stats) const {
  ThreadPool& pool = ThreadPool::global();
  ExecStats st;
  st.populated = true;
  st.threads_requested = want_threads;
  st.total_regions = num_root_regions;
  st.tier = rt.tier;
  st.lowered_regions =
      rt.tier == ExecTier::kLowered ? low.lowered_root_regions : 0;
  const CsfTensor& csf = *rt.csf;
  const std::int64_t dense_out_len =
      rt.out_dense_data != nullptr && args.out_dense != nullptr
          ? args.out_dense->size()
          : 0;
  const std::int64_t sparse_out_len =
      rt.out_sparse_data != nullptr ? csf.nnz() : 0;
  /// Static root chunks whose weight skew exceeds this trigger the nested
  /// split (1.0 = perfectly balanced).
  constexpr double kNestSkewThreshold = 1.25;

  for (std::size_t t = 0; t < top.size(); ++t) {
    const CActionRef& a = top[t];
    const TopMeta& meta = top_meta[t];
    if (a.kind != CActionRef::Kind::kLoop) {
      run_action(rt, a);  // scalar terms and shared-buffer resets
      continue;
    }
    const CLoop& root = loops[static_cast<std::size_t>(a.id)];
    if (!meta.par_safe) {
      ++st.fallback_regions;
      run_action(rt, a);
      continue;
    }
    const CLoop* inner =
        meta.inner_loop >= 0
            ? &loops[static_cast<std::size_t>(meta.inner_loop)]
            : nullptr;

    // Work geometry of the root space. Sparse roots weigh positions by
    // subtree nnz; dense roots weigh every position by the (uniform) work
    // of one iteration so that small-extent roots still expose enough
    // total weight for the nested split to aim at.
    std::vector<std::int64_t> leaf_begin;  // sparse roots only
    std::int64_t extent = 0;
    std::int64_t dense_w_each = 1;
    if (root.sparse) {
      extent = csf.num_nodes(0);
      leaf_begin = leaf_offsets(csf, 0);
    } else {
      extent = root.extent;
      if (inner != nullptr) {
        dense_w_each = inner->sparse ? std::max<std::int64_t>(csf.nnz(), 1)
                                     : std::max<std::int64_t>(inner->extent, 1);
      }
    }
    const std::int64_t total_w =
        root.sparse ? (leaf_begin.empty() ? 0 : leaf_begin.back())
                    : extent * dense_w_each;
    const auto node_weight = [&](std::int64_t p) {
      return root.sparse ? leaf_begin[static_cast<std::size_t>(p + 1)] -
                               leaf_begin[static_cast<std::size_t>(p)]
                         : dense_w_each;
    };
    if (extent == 0 || total_w == 0) {
      run_action(rt, a);
      continue;
    }

    // Every task pays a Runtime (private-buffer allocation), and tasks
    // beyond the pool's lanes only help by smoothing weight imbalance the
    // stealing pool can absorb, so budget disjoint-write regions at a few
    // tasks per lane. Regions whose output needs per-task partials also
    // pay a full output copy per task and are budgeted at the lane count.
    const bool flat_partials =
        (meta.writes_out_dense && !meta.out_dense_rooted) ||
        (meta.writes_out_sparse && !root.sparse);
    const int flat_budget = std::min(
        want_threads, flat_partials ? pool.size() : 4 * pool.size());
    const std::int64_t requested_eff =
        std::min<std::int64_t>(flat_budget, total_w);

    // Static nnz-balanced (or even) root chunking.
    std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
    if (root.sparse) {
      chunks = partition_by_nnz(leaf_begin, flat_budget);
    } else {
      const auto parts = std::min<std::int64_t>(flat_budget, extent);
      for (std::int64_t c = 0; c < parts; ++c) {
        const std::int64_t b = extent * c / parts;
        const std::int64_t e = extent * (c + 1) / parts;
        if (e > b) chunks.emplace_back(b, e);
      }
    }
    std::vector<ParTask> tasks;
    tasks.reserve(chunks.size());
    std::int64_t max_chunk_w = 0;
    for (const auto& [b, e] : chunks) {
      ParTask task;
      task.root_begin = b;
      task.root_end = e;
      task.weight = root.sparse
                        ? leaf_begin[static_cast<std::size_t>(e)] -
                              leaf_begin[static_cast<std::size_t>(b)]
                        : (e - b) * dense_w_each;
      max_chunk_w = std::max(max_chunk_w, task.weight);
      tasks.push_back(task);
    }
    // True imbalance of the static partition measured against an even
    // `requested_eff`-way split — a single mega-chunk shows up as ~lanes
    // instead of hiding behind a chunk-count denominator of one.
    const double static_imbalance =
        requested_eff > 1 ? static_cast<double>(max_chunk_w) *
                                static_cast<double>(requested_eff) /
                                static_cast<double>(total_w)
                          : 1.0;

    // Decide whether to re-partition with the nested second-level split:
    // the static chunking failed to produce the requested parallelism
    // (small/skewed root) and the region admits it. Should the rebuild not
    // actually improve on the static chunking (e.g. the nested partials
    // budget is a single lane), the flat chunks below stay in effect.
    const bool want_nested =
        meta.nest_safe && inner != nullptr && requested_eff > 1 &&
        (static_cast<std::int64_t>(tasks.size()) < requested_eff ||
         static_imbalance > kNestSkewThreshold);
    bool has_nested = false;
    if (want_nested) {
      std::vector<ParTask> nested_tasks;
      // Rebuild the task list from scratch: heavy root positions split
      // into second-level sub-ranges aimed at `target` weight each; light
      // positions coalesce into contiguous chunks of ~target weight. The
      // shape depends only on the CSF structure and the budget, so the
      // partition (and therefore the reduction shape) is deterministic.
      const bool nested_partials =
          (meta.writes_out_dense &&
           !(meta.out_dense_rooted && meta.out_dense_inner_rooted)) ||
          (meta.writes_out_sparse && !(root.sparse && inner->sparse));
      const std::int64_t budget = std::max<std::int64_t>(
          1, std::min<std::int64_t>(
                 std::min(want_threads,
                          nested_partials ? pool.size() : 4 * pool.size()),
                 total_w));
      const std::int64_t target = (total_w + budget - 1) / budget;
      // Leaf offsets one level below the root for nnz-balanced inner cuts.
      std::vector<std::int64_t> inner_leaf;
      if (inner->sparse) {
        inner_leaf = leaf_offsets(csf, inner->csf_level);
      }
      const auto inner_range = [&](std::int64_t p) {
        if (!inner->sparse) {
          return std::pair<std::int64_t, std::int64_t>{0, inner->extent};
        }
        if (!root.sparse) {
          return std::pair<std::int64_t, std::int64_t>{
              0, csf.num_nodes(inner->csf_level)};
        }
        const auto ptr = csf.level_ptr(root.csf_level);
        return std::pair<std::int64_t, std::int64_t>{
            ptr[static_cast<std::size_t>(p)],
            ptr[static_cast<std::size_t>(p + 1)]};
      };
      const auto split_heavy = [&](std::int64_t p, std::int64_t w,
                                   std::int64_t tgt,
                                   std::vector<ParTask>* out) {
        const auto [ib, ie] = inner_range(p);
        const std::int64_t cap = ie - ib;
        const std::int64_t pieces = std::clamp<std::int64_t>(
            (w + tgt - 1) / tgt, 1, std::max<std::int64_t>(cap, 1));
        if (pieces < 2) {
          ParTask task;
          task.root_begin = p;
          task.root_end = p + 1;
          task.weight = w;
          out->push_back(task);
          return;
        }
        has_nested = true;
        std::int64_t prev = ib;
        for (std::int64_t c = 1; c <= pieces && prev < ie; ++c) {
          std::int64_t end;
          if (c == pieces) {
            end = ie;
          } else if (inner->sparse) {
            const std::int64_t goal =
                inner_leaf[static_cast<std::size_t>(ib)] +
                (inner_leaf[static_cast<std::size_t>(ie)] -
                 inner_leaf[static_cast<std::size_t>(ib)]) *
                    c / pieces;
            end = std::lower_bound(inner_leaf.begin() + ib,
                                   inner_leaf.begin() + ie, goal) -
                  inner_leaf.begin();
            end = std::clamp(end, prev, ie);
          } else {
            end = ib + cap * c / pieces;
            end = std::clamp(end, prev, ie);
          }
          if (end > prev) {
            ParTask task;
            task.root_begin = p;
            task.root_end = p + 1;
            task.inner_begin = prev;
            task.inner_end = end;
            task.weight =
                inner->sparse
                    ? inner_leaf[static_cast<std::size_t>(end)] -
                          inner_leaf[static_cast<std::size_t>(prev)]
                    : w * (end - prev) / std::max<std::int64_t>(cap, 1);
            out->push_back(task);
          }
          prev = end;
        }
      };
      std::int64_t run_begin = 0;
      std::int64_t run_w = 0;
      const auto flush_run = [&](std::int64_t end_exclusive) {
        if (run_begin < end_exclusive && run_w > 0) {
          ParTask task;
          task.root_begin = run_begin;
          task.root_end = end_exclusive;
          task.weight = run_w;
          nested_tasks.push_back(task);
        }
        run_begin = end_exclusive;
        run_w = 0;
      };
      for (std::int64_t p = 0; p < extent; ++p) {
        const std::int64_t w = node_weight(p);
        if (w > target) {
          flush_run(p);
          split_heavy(p, w, target, &nested_tasks);
          run_begin = p + 1;
          continue;
        }
        run_w += w;
        if (run_w >= target) flush_run(p + 1);
      }
      flush_run(extent);
      // Adopt the rebuild only when it improves the worst task — the flat
      // direct-write budget (4x lanes) often holds *more* tasks than the
      // partials-capped rebuild, so comparing counts would keep a
      // serialized mega-chunk just because the balanced partition is
      // smaller. Same output routing → any strict improvement wins; a
      // switch from direct writes to per-task partials additionally pays
      // an output copy per task plus the reduction pass, so it must beat
      // the flat partition by the skew threshold. A degenerate rebuild
      // (e.g. a one-lane partials budget) keeps the flat chunks.
      std::int64_t nested_max_w = 0;
      for (const ParTask& task : nested_tasks) {
        nested_max_w = std::max(nested_max_w, task.weight);
      }
      const bool same_routing = !nested_partials || flat_partials;
      const bool adopt =
          has_nested && nested_tasks.size() >= 2 &&
          (same_routing ? nested_max_w < max_chunk_w
                        : static_cast<double>(nested_max_w) *
                                  kNestSkewThreshold <
                              static_cast<double>(max_chunk_w));
      if (adopt) {
        tasks = std::move(nested_tasks);
      } else {
        has_nested = false;
        // Skew-aware heavy-chunk re-split (ROADMAP carried item). The
        // from-scratch rebuild above aims at the *partials* budget, which
        // can be far coarser than the flat chunking (direct-write regions
        // budget 4x the lanes, partials regions one task per lane); when
        // the flat partition already holds enough chunks but one of them
        // dwarfs the rest, the rebuild often degenerates (the heavy node
        // stays below the coarse target, nothing splits) and we used to
        // keep the skewed flat chunks and serialize behind the mega-chunk.
        // Instead, keep the light flat chunks and re-split only the heavy
        // ones against the flat partition's own per-task target.
        if (static_imbalance > kNestSkewThreshold) {
          const std::int64_t flat_target =
              (total_w + requested_eff - 1) / requested_eff;
          std::vector<ParTask> resplit;
          for (const ParTask& task : tasks) {
            if (task.weight <= flat_target) {
              resplit.push_back(task);
              continue;
            }
            // Walk the heavy chunk's root positions: heavy positions split
            // at the inner level, light runs coalesce to ~flat_target —
            // the scratch rebuild's shape, confined to this chunk.
            std::int64_t rb = task.root_begin;
            std::int64_t rw = 0;
            const auto flush = [&](std::int64_t end_exclusive) {
              if (rb < end_exclusive && rw > 0) {
                ParTask piece;
                piece.root_begin = rb;
                piece.root_end = end_exclusive;
                piece.weight = rw;
                resplit.push_back(piece);
              }
              rb = end_exclusive;
              rw = 0;
            };
            for (std::int64_t p = task.root_begin; p < task.root_end; ++p) {
              const std::int64_t w = node_weight(p);
              if (w > flat_target) {
                flush(p);
                if (meta.nest_safe && inner != nullptr) {
                  split_heavy(p, w, flat_target, &resplit);
                } else {
                  ParTask piece;
                  piece.root_begin = p;
                  piece.root_end = p + 1;
                  piece.weight = w;
                  resplit.push_back(piece);
                }
                rb = p + 1;
                continue;
              }
              rw += w;
              if (rw >= flat_target) flush(p + 1);
            }
            flush(task.root_end);
          }
          std::int64_t resplit_max_w = 0;
          for (const ParTask& task : resplit) {
            resplit_max_w = std::max(resplit_max_w, task.weight);
          }
          // split_heavy set has_nested iff the re-split produced inner
          // pieces; adoption mirrors the scratch rebuild — same routing
          // takes any strict improvement, a direct-write → partials switch
          // must clear the skew threshold.
          const bool resplit_same_routing =
              !has_nested || !nested_partials || flat_partials;
          const bool resplit_adopt =
              resplit.size() >= 2 &&
              (resplit_same_routing
                   ? resplit_max_w < max_chunk_w
                   : static_cast<double>(resplit_max_w) * kNestSkewThreshold <
                         static_cast<double>(max_chunk_w));
          if (resplit_adopt) {
            tasks = std::move(resplit);
          } else {
            has_nested = false;
          }
        }
      }
    }

    const auto n_tasks = static_cast<std::int64_t>(tasks.size());
    if (n_tasks < 2) {
      // Could not be split (single position, or all weight in unsplittable
      // work). Record the true skew of the attempted partition so the
      // serialization is observable, then run in place.
      if (requested_eff > 1) {
        st.partition_imbalance =
            std::max(st.partition_imbalance, static_imbalance);
      }
      run_action(rt, a);
      continue;
    }

    // Output routing. Tasks disjoint in the root index write dense outputs
    // strided by the root directly; nested tasks additionally need the
    // inner stride. Sparse (pattern-aligned) outputs write directly when
    // tasks own disjoint leaf ranges — true for sparse roots, and for
    // nested tasks only when the inner loop is also sparse.
    const bool dense_direct =
        !meta.writes_out_dense ||
        (meta.out_dense_rooted &&
         (!has_nested || meta.out_dense_inner_rooted));
    const bool sparse_direct =
        !meta.writes_out_sparse ||
        (root.sparse && (!has_nested || inner->sparse));
    std::vector<std::vector<double>> dense_partial;
    std::vector<std::vector<double>> sparse_partial;
    if (!dense_direct) {
      dense_partial.assign(static_cast<std::size_t>(n_tasks), {});
    }
    if (!sparse_direct) {
      sparse_partial.assign(static_cast<std::size_t>(n_tasks), {});
    }

    pool.parallel_apply(n_tasks, [&](std::int64_t c) {
      Runtime wrt = make_runtime(&shared_bufs);
      wrt.dense_data = rt.dense_data;
      wrt.csf = rt.csf;
      wrt.out_dense_data = rt.out_dense_data;
      wrt.out_sparse_data = rt.out_sparse_data;
      wrt.tier = rt.tier;
      if (!dense_direct) {
        auto& p = dense_partial[static_cast<std::size_t>(c)];
        p.assign(static_cast<std::size_t>(dense_out_len), 0.0);
        wrt.out_dense_data = p.data();
      }
      if (!sparse_direct) {
        auto& p = sparse_partial[static_cast<std::size_t>(c)];
        p.assign(static_cast<std::size_t>(sparse_out_len), 0.0);
        wrt.out_sparse_data = p.data();
      }
      const ParTask& task = tasks[static_cast<std::size_t>(c)];
      if (task.inner_begin < 0) {
        run_loop_range(wrt, a.id, task.root_begin, task.root_end);
      } else {
        // Nested task: bind the single root position, then run the second
        // loop over the narrowed range (the root body is exactly this
        // loop, by the nest_safe analysis).
        if (root.sparse) {
          const int lvl = root.csf_level;
          wrt.idx_val[static_cast<std::size_t>(root.index)] =
              csf.level_idx(lvl)[static_cast<std::size_t>(task.root_begin)];
          wrt.csf_node[static_cast<std::size_t>(lvl)] = task.root_begin;
        } else {
          wrt.idx_val[static_cast<std::size_t>(root.index)] =
              task.root_begin;
        }
        run_loop_range(wrt, meta.inner_loop, task.inner_begin,
                       task.inner_end);
      }
    });

    if (!dense_direct) {
      reduce_partials(pool, dense_partial, dense_out_len, rt.out_dense_data);
    }
    if (!sparse_direct) {
      reduce_partials(pool, sparse_partial, sparse_out_len,
                      rt.out_sparse_data);
    }

    ++st.parallel_regions;
    if (has_nested) ++st.nested_regions;
    // Fragmentation in the nested rebuild (heavy nodes interrupting light
    // runs) may emit a few more tasks than the lane budget; the surplus
    // only smooths imbalance, so the reported width honors the caller's
    // threads_used <= threads_requested contract.
    st.threads_used = std::max(
        st.threads_used,
        static_cast<int>(std::min<std::int64_t>(n_tasks, want_threads)));
    std::int64_t max_task_w = 0;
    for (const ParTask& task : tasks) {
      max_task_w = std::max(max_task_w, task.weight);
    }
    const double imbalance = static_cast<double>(max_task_w) *
                             static_cast<double>(n_tasks) /
                             static_cast<double>(total_w);
    st.partition_imbalance = std::max(st.partition_imbalance, imbalance);
  }
  if (stats != nullptr) *stats = st;
}

std::string FusedExecutor::describe(const Kernel& kernel) const {
  std::ostringstream os;
  os << impl_->tree.render(kernel, impl_->path);
  os << "offloaded terms: " << impl_->offloaded_terms << " (collapsed "
     << impl_->collapsed_loops << " dense loops)\n";
  return os.str();
}

}  // namespace spttn
