#include "exec/executor.hpp"

#include <algorithm>
#include <sstream>
#include <thread>

#include "exec/kernels.hpp"
#include "util/error.hpp"

namespace spttn {

namespace {

/// Where an operand's data lives.
enum class Base {
  kDense,      ///< a dense input tensor
  kBuffer,     ///< an intermediate buffer
  kSparseVal,  ///< the CSF leaf value of the sparse input
  kOutDense,   ///< the dense kernel output
  kOutSparse,  ///< the pattern-aligned sparse output values
};

/// Compiled strided access: offset = sum over outer (idx value * stride),
/// then `inner` strides advance through any collapsed trailing loops.
struct CAccess {
  Base base = Base::kDense;
  int id = 0;  ///< dense input position or producing-term buffer id
  std::vector<std::pair<int, std::int64_t>> outer;
  std::vector<std::int64_t> inner;  ///< aligned with CTerm::extent
};

struct CTerm {
  CAccess lhs, rhs, out;
  std::vector<std::int64_t> extent;  ///< trailing collapsed dense loops
  int term_id = 0;
};

struct CActionRef {
  enum class Kind { kLoop, kTerm, kReset } kind;
  int id;
};

struct CLoop {
  int index = -1;
  bool sparse = false;
  int csf_level = -1;
  std::int64_t extent = 0;  ///< dense trip count (unused for CSF loops)
  std::vector<CActionRef> body;
};

}  // namespace

struct FusedExecutor::Impl {
  Kernel kernel;  // copy: plans outlive callers' kernels
  ContractionPath path;
  LoopTree tree;

  std::vector<CLoop> loops;
  std::vector<CTerm> terms;
  std::vector<CActionRef> top;
  std::vector<std::int64_t> buffer_len;  // element counts per producing term
  int offloaded_terms = 0;
  int collapsed_loops = 0;

  bool collapse_dense = true;

  /// Mutable per-execution (and per-thread) state. The compiled program
  /// above is immutable during execution, so parallel workers share it and
  /// own one Runtime each.
  struct Runtime {
    std::vector<std::int64_t> idx_val;
    std::vector<std::int64_t> csf_node;
    std::vector<std::vector<double>> buffers;  // per producing term
    const CsfTensor* csf = nullptr;
    std::vector<const double*> dense_data;
    double* out_dense_data = nullptr;
    double* out_sparse_data = nullptr;
  };

  Runtime make_runtime() const {
    Runtime rt;
    rt.idx_val.assign(static_cast<std::size_t>(kernel.num_indices()), 0);
    rt.csf_node.assign(static_cast<std::size_t>(kernel.sparse_ref().order()),
                       0);
    rt.buffers.resize(buffer_len.size());
    for (std::size_t b = 0; b < buffer_len.size(); ++b) {
      rt.buffers[b].assign(static_cast<std::size_t>(buffer_len[b]), 0.0);
    }
    return rt;
  }

  void compile(const LoopOrder& order);
  CAccess make_access(const PathOperand& op,
                      const std::vector<int>& inner_chain);
  CAccess make_out_access(int term_id, const std::vector<int>& inner_chain);
  std::vector<std::int64_t> strides_for(
      const std::vector<int>& idx_order,
      const std::vector<std::int64_t>& dims) const;
  void split_access(const std::vector<int>& ids,
                    const std::vector<std::int64_t>& strides,
                    const std::vector<int>& inner_chain, CAccess* access);

  void run_actions(Runtime& rt, const std::vector<CActionRef>& body) const;
  void run_loop(Runtime& rt, const CLoop& loop, std::int64_t begin,
                std::int64_t end) const;
  void run_term(Runtime& rt, const CTerm& t) const;
  void run_inner(const CTerm& t, std::size_t level, const double* lhs,
                 const double* rhs, double* out) const;
  const double* resolve(const Runtime& rt, const CAccess& a) const;
  double* resolve_mut(const Runtime& rt, const CAccess& a) const;
};

FusedExecutor::FusedExecutor(const Kernel& kernel,
                             const ContractionPath& path,
                             const LoopOrder& order, bool collapse_dense)
    : impl_(std::make_unique<Impl>()) {
  impl_->kernel = kernel;
  impl_->path = path;
  impl_->collapse_dense = collapse_dense;
  impl_->tree = LoopTree::build(kernel, path, order);
  impl_->compile(order);
}

FusedExecutor::~FusedExecutor() = default;
FusedExecutor::FusedExecutor(FusedExecutor&&) noexcept = default;
FusedExecutor& FusedExecutor::operator=(FusedExecutor&&) noexcept = default;

const LoopTree& FusedExecutor::tree() const { return impl_->tree; }
int FusedExecutor::offloaded_terms() const { return impl_->offloaded_terms; }
int FusedExecutor::collapsed_loops() const { return impl_->collapsed_loops; }

std::vector<std::int64_t> FusedExecutor::Impl::strides_for(
    const std::vector<int>& idx_order,
    const std::vector<std::int64_t>& dims) const {
  std::vector<std::int64_t> strides(idx_order.size());
  std::int64_t s = 1;
  for (std::size_t m = idx_order.size(); m-- > 0;) {
    strides[m] = s;
    s *= dims[m];
  }
  return strides;
}

void FusedExecutor::Impl::split_access(
    const std::vector<int>& ids, const std::vector<std::int64_t>& strides,
    const std::vector<int>& inner_chain, CAccess* access) {
  access->inner.assign(inner_chain.size(), 0);
  for (std::size_t m = 0; m < ids.size(); ++m) {
    const auto it =
        std::find(inner_chain.begin(), inner_chain.end(), ids[m]);
    if (it != inner_chain.end()) {
      access->inner[static_cast<std::size_t>(it - inner_chain.begin())] =
          strides[m];
    } else {
      access->outer.emplace_back(ids[m], strides[m]);
    }
  }
}

CAccess FusedExecutor::Impl::make_access(const PathOperand& op,
                                         const std::vector<int>& inner_chain) {
  CAccess a;
  if (op.kind == PathOperand::Kind::kInput) {
    if (op.id == kernel.sparse_input()) {
      a.base = Base::kSparseVal;
      a.inner.assign(inner_chain.size(), 0);
      return a;
    }
    a.base = Base::kDense;
    a.id = op.id;
    const auto& ref = kernel.input(op.id);
    std::vector<std::int64_t> dims(ref.idx.size());
    for (std::size_t m = 0; m < ref.idx.size(); ++m) {
      dims[m] = kernel.index_dim(ref.idx[m]);
    }
    split_access(ref.idx, strides_for(ref.idx, dims), inner_chain, &a);
    return a;
  }
  // Intermediate buffer produced by an earlier term.
  a.base = Base::kBuffer;
  a.id = op.id;
  const BufferSpec& spec = tree.buffers()[static_cast<std::size_t>(op.id)];
  split_access(spec.indices, strides_for(spec.indices, spec.dims),
               inner_chain, &a);
  return a;
}

CAccess FusedExecutor::Impl::make_out_access(
    int term_id, const std::vector<int>& inner_chain) {
  CAccess a;
  if (term_id + 1 < path.num_terms()) {
    a.base = Base::kBuffer;
    a.id = term_id;
    const BufferSpec& spec =
        tree.buffers()[static_cast<std::size_t>(term_id)];
    split_access(spec.indices, strides_for(spec.indices, spec.dims),
                 inner_chain, &a);
    return a;
  }
  if (kernel.output_is_sparse()) {
    a.base = Base::kOutSparse;
    a.inner.assign(inner_chain.size(), 0);
    return a;
  }
  a.base = Base::kOutDense;
  const auto& ref = kernel.output();
  std::vector<std::int64_t> dims(ref.idx.size());
  for (std::size_t m = 0; m < ref.idx.size(); ++m) {
    dims[m] = kernel.index_dim(ref.idx[m]);
  }
  split_access(ref.idx, strides_for(ref.idx, dims), inner_chain, &a);
  return a;
}

void FusedExecutor::Impl::compile(const LoopOrder& order) {
  (void)order;
  // Record buffer sizes (storage itself lives in each Runtime).
  buffer_len.assign(static_cast<std::size_t>(path.num_terms()), 0);
  for (const BufferSpec& spec : tree.buffers()) {
    if (spec.producer < 0) continue;
    buffer_len[static_cast<std::size_t>(spec.producer)] = spec.size;
  }

  // Try to collapse a node's entire subtree into a dense single-term chain:
  // returns the chain of loop indices when the subtree is a pure chain of
  // dense loops ending at exactly one term (no resets inside).
  const auto try_collapse =
      [&](int node_id, std::vector<int>* chain) -> int /*term or -1*/ {
    int cur = node_id;
    while (true) {
      const LoopTree::Node& n =
          tree.nodes()[static_cast<std::size_t>(cur)];
      if (n.sparse || n.body.size() != 1) return -1;
      chain->push_back(n.index);
      const LoopTree::Action& a = n.body.front();
      if (a.kind == LoopTree::Action::Kind::kTerm) return a.id;
      if (a.kind != LoopTree::Action::Kind::kLoop) return -1;
      cur = a.id;
    }
  };

  const auto make_term = [&](int term_id, const std::vector<int>& chain) {
    CTerm t;
    t.term_id = term_id;
    t.extent.reserve(chain.size());
    for (int id : chain) {
      t.extent.push_back(kernel.index_dim(id));
    }
    const PathTerm& term = path.term(term_id);
    t.lhs = make_access(term.lhs, chain);
    t.rhs = make_access(term.rhs, chain);
    t.out = make_out_access(term_id, chain);
    if (!chain.empty()) {
      ++offloaded_terms;
      collapsed_loops += static_cast<int>(chain.size());
    }
    terms.push_back(std::move(t));
    return static_cast<int>(terms.size()) - 1;
  };

  const auto compile_body = [&](auto&& self,
                                const std::vector<LoopTree::Action>& body)
      -> std::vector<CActionRef> {
    std::vector<CActionRef> out;
    for (const auto& a : body) {
      switch (a.kind) {
        case LoopTree::Action::Kind::kTerm:
          out.push_back(
              {CActionRef::Kind::kTerm, make_term(a.id, {})});
          break;
        case LoopTree::Action::Kind::kReset:
          out.push_back({CActionRef::Kind::kReset, a.id});
          break;
        case LoopTree::Action::Kind::kLoop: {
          std::vector<int> chain;
          const int term_id =
              collapse_dense ? try_collapse(a.id, &chain) : -1;
          if (term_id >= 0) {
            out.push_back(
                {CActionRef::Kind::kTerm, make_term(term_id, chain)});
            break;
          }
          const LoopTree::Node& n =
              tree.nodes()[static_cast<std::size_t>(a.id)];
          CLoop loop;
          loop.index = n.index;
          loop.sparse = n.sparse;
          loop.csf_level = n.csf_level;
          loop.extent = kernel.index_dim(n.index);
          loop.body = self(self, n.body);
          loops.push_back(std::move(loop));
          out.push_back(
              {CActionRef::Kind::kLoop, static_cast<int>(loops.size()) - 1});
          break;
        }
      }
    }
    return out;
  };
  top = compile_body(compile_body, tree.top());
}

const double* FusedExecutor::Impl::resolve(const Runtime& rt,
                                           const CAccess& a) const {
  const double* base = nullptr;
  switch (a.base) {
    case Base::kDense:
      base = rt.dense_data[static_cast<std::size_t>(a.id)];
      break;
    case Base::kBuffer:
      base = rt.buffers[static_cast<std::size_t>(a.id)].data();
      break;
    case Base::kSparseVal:
      return rt.csf->vals().data() + rt.csf_node.back();
    case Base::kOutDense:
      base = rt.out_dense_data;
      break;
    case Base::kOutSparse:
      return rt.out_sparse_data + rt.csf_node.back();
  }
  std::int64_t off = 0;
  for (const auto& [id, stride] : a.outer) {
    off += rt.idx_val[static_cast<std::size_t>(id)] * stride;
  }
  return base + off;
}

double* FusedExecutor::Impl::resolve_mut(const Runtime& rt,
                                         const CAccess& a) const {
  return const_cast<double*>(resolve(rt, a));
}

void FusedExecutor::Impl::run_inner(const CTerm& t, std::size_t level,
                                    const double* lhs, const double* rhs,
                                    double* out) const {
  const std::size_t depth = t.extent.size();
  if (level == depth) {
    *out += *lhs * *rhs;
    return;
  }
  const std::int64_t n = t.extent[level];
  const std::int64_t sl = t.lhs.inner[level];
  const std::int64_t sr = t.rhs.inner[level];
  const std::int64_t so = t.out.inner[level];
  if (level + 1 == depth) {
    // Innermost loop: dispatch to a strided BLAS-style kernel.
    if (so == 0) {
      *out += xdot(n, lhs, sl, rhs, sr);
    } else if (sl == 0) {
      xaxpy(n, *lhs, rhs, sr, out, so);
    } else if (sr == 0) {
      xaxpy(n, *rhs, lhs, sl, out, so);
    } else {
      xhad(n, 1.0, lhs, sl, rhs, sr, out, so);
    }
    return;
  }
  for (std::int64_t i = 0; i < n; ++i) {
    run_inner(t, level + 1, lhs + i * sl, rhs + i * sr, out + i * so);
  }
}

void FusedExecutor::Impl::run_term(Runtime& rt, const CTerm& t) const {
  run_inner(t, 0, resolve(rt, t.lhs), resolve(rt, t.rhs),
            resolve_mut(rt, t.out));
}

void FusedExecutor::Impl::run_loop(Runtime& rt, const CLoop& loop,
                                   std::int64_t begin,
                                   std::int64_t end) const {
  if (loop.sparse) {
    const int lvl = loop.csf_level;
    const auto idx = rt.csf->level_idx(lvl);
    for (std::int64_t n = begin; n < end; ++n) {
      rt.idx_val[static_cast<std::size_t>(loop.index)] =
          idx[static_cast<std::size_t>(n)];
      rt.csf_node[static_cast<std::size_t>(lvl)] = n;
      run_actions(rt, loop.body);
    }
  } else {
    auto& v = rt.idx_val[static_cast<std::size_t>(loop.index)];
    for (std::int64_t i = begin; i < end; ++i) {
      v = i;
      run_actions(rt, loop.body);
    }
  }
}

void FusedExecutor::Impl::run_actions(
    Runtime& rt, const std::vector<CActionRef>& body) const {
  for (const CActionRef& a : body) {
    switch (a.kind) {
      case CActionRef::Kind::kTerm:
        run_term(rt, terms[static_cast<std::size_t>(a.id)]);
        break;
      case CActionRef::Kind::kReset: {
        auto& buf = rt.buffers[static_cast<std::size_t>(a.id)];
        xzero(buffer_len[static_cast<std::size_t>(a.id)], buf.data(), 1);
        break;
      }
      case CActionRef::Kind::kLoop: {
        const CLoop& loop = loops[static_cast<std::size_t>(a.id)];
        std::int64_t begin = 0;
        std::int64_t end = 0;
        if (loop.sparse) {
          const int lvl = loop.csf_level;
          if (lvl == 0) {
            end = rt.csf->num_nodes(0);
          } else {
            const auto ptr = rt.csf->level_ptr(lvl - 1);
            const std::int64_t parent =
                rt.csf_node[static_cast<std::size_t>(lvl - 1)];
            begin = ptr[static_cast<std::size_t>(parent)];
            end = ptr[static_cast<std::size_t>(parent + 1)];
          }
        } else {
          end = loop.extent;
        }
        run_loop(rt, loop, begin, end);
        break;
      }
    }
  }
}

void FusedExecutor::execute(const ExecArgs& args) {
  Impl& im = *impl_;
  const Kernel& k = im.kernel;
  SPTTN_CHECK_MSG(args.sparse != nullptr, "sparse operand not bound");
  const CsfTensor& csf = *args.sparse;
  SPTTN_CHECK_MSG(csf.order() == k.sparse_ref().order(),
                  "CSF order mismatch with kernel sparse operand");
  for (int l = 0; l < csf.order(); ++l) {
    SPTTN_CHECK_MSG(
        csf.level_dims()[static_cast<std::size_t>(l)] ==
            k.index_dim(k.sparse_ref().idx[static_cast<std::size_t>(l)]),
        "CSF level " << l << " dimension mismatch");
    SPTTN_CHECK_MSG(csf.mode_order()[static_cast<std::size_t>(l)] == l,
                    "CSF must be built in the kernel's sparse index order");
  }
  SPTTN_CHECK_MSG(static_cast<int>(args.dense.size()) == k.num_inputs(),
                  "expected one dense slot per kernel input");
  Impl::Runtime rt = im.make_runtime();
  rt.dense_data.assign(args.dense.size(), nullptr);
  for (int i = 0; i < k.num_inputs(); ++i) {
    if (i == k.sparse_input()) continue;
    const DenseTensor* d = args.dense[static_cast<std::size_t>(i)];
    SPTTN_CHECK_MSG(d != nullptr,
                    "dense input '" << k.input(i).name << "' not bound");
    const auto& ref = k.input(i);
    SPTTN_CHECK_MSG(d->order() == ref.order(),
                    "dense input '" << ref.name << "' order mismatch");
    for (int m = 0; m < ref.order(); ++m) {
      SPTTN_CHECK_MSG(
          d->dim(m) == k.index_dim(ref.idx[static_cast<std::size_t>(m)]),
          "dense input '" << ref.name << "' dim mismatch in mode " << m);
    }
    rt.dense_data[static_cast<std::size_t>(i)] = d->data();
  }

  if (k.output_is_sparse()) {
    SPTTN_CHECK_MSG(static_cast<std::int64_t>(args.out_sparse.size()) ==
                        csf.nnz(),
                    "sparse output must have one value per nonzero");
    rt.out_sparse_data = args.out_sparse.data();
    rt.out_dense_data = nullptr;
    if (!args.accumulate) {
      xzero(csf.nnz(), rt.out_sparse_data, 1);
    }
  } else {
    SPTTN_CHECK_MSG(args.out_dense != nullptr, "dense output not bound");
    const auto& ref = k.output();
    SPTTN_CHECK_MSG(args.out_dense->order() == ref.order(),
                    "output order mismatch");
    for (int m = 0; m < ref.order(); ++m) {
      SPTTN_CHECK_MSG(args.out_dense->dim(m) ==
                          k.index_dim(ref.idx[static_cast<std::size_t>(m)]),
                      "output dim mismatch in mode " << m);
    }
    rt.out_dense_data = args.out_dense->data();
    rt.out_sparse_data = nullptr;
    if (!args.accumulate) args.out_dense->zero();
  }

  rt.csf = &csf;

  // --- Parallel path: split the single root loop across worker threads.
  // Each worker owns a Runtime (private buffers); sparse-output writes are
  // disjoint per root subtree; dense outputs accumulate into per-thread
  // partials summed after the join. Falls back to sequential execution for
  // multi-root forests (buffers may cross root trees there).
  const int want_threads = std::max(1, args.num_threads);
  const bool parallelizable =
      want_threads > 1 && im.top.size() == 1 &&
      im.top[0].kind == CActionRef::Kind::kLoop;
  if (parallelizable) {
    const CLoop& root = im.loops[static_cast<std::size_t>(im.top[0].id)];
    SPTTN_CHECK_MSG(!root.sparse || root.csf_level == 0,
                    "root CSF loop must be level 0");
    const std::int64_t extent =
        root.sparse ? csf.num_nodes(0) : root.extent;
    const int threads =
        static_cast<int>(std::min<std::int64_t>(want_threads, extent));
    if (threads > 1) {
      const std::int64_t out_len =
          k.output_is_sparse() ? 0 : args.out_dense->size();
      std::vector<std::vector<double>> partials(
          static_cast<std::size_t>(threads));
      std::vector<std::thread> workers;
      workers.reserve(static_cast<std::size_t>(threads));
      for (int w = 0; w < threads; ++w) {
        const std::int64_t begin = extent * w / threads;
        const std::int64_t end = extent * (w + 1) / threads;
        workers.emplace_back([&, w, begin, end] {
          Impl::Runtime wrt = im.make_runtime();
          wrt.dense_data = rt.dense_data;
          wrt.csf = rt.csf;
          wrt.out_sparse_data = rt.out_sparse_data;
          if (out_len > 0) {
            partials[static_cast<std::size_t>(w)]
                .assign(static_cast<std::size_t>(out_len), 0.0);
            wrt.out_dense_data = partials[static_cast<std::size_t>(w)].data();
          }
          im.run_loop(wrt, root, begin, end);
        });
      }
      for (auto& worker : workers) worker.join();
      if (out_len > 0) {
        for (const auto& partial : partials) {
          xaxpy(out_len, 1.0, partial.data(), 1, rt.out_dense_data, 1);
        }
      }
      return;
    }
  }

  im.run_actions(rt, im.top);
}

std::string FusedExecutor::describe(const Kernel& kernel) const {
  std::ostringstream os;
  os << impl_->tree.render(kernel, impl_->path);
  os << "offloaded terms: " << impl_->offloaded_terms << " (collapsed "
     << impl_->collapsed_loops << " dense loops)\n";
  return os.str();
}

}  // namespace spttn
