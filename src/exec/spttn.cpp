#include "exec/spttn.hpp"

#include <algorithm>

#include "core/enumerate.hpp"
#include "core/order_dp.hpp"
#include "serve/kernel_cache.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace spttn {

Kernel bind_kernel_dims(const std::string& expr, const CooTensor& sparse,
                        const std::vector<const DenseTensor*>& dense_factors,
                        std::vector<const DenseTensor*>* slots,
                        const std::string& sparse_name) {
  Kernel k = Kernel::parse(expr, sparse_name);

  // Bind sparse dims.
  SPTTN_CHECK_MSG(sparse.order() == k.sparse_ref().order(),
                  "sparse tensor order mismatch for " << k.sparse_ref().name);
  for (int l = 0; l < sparse.order(); ++l) {
    k.set_index_dim(k.sparse_ref().idx[static_cast<std::size_t>(l)],
                    sparse.dim(l));
  }
  // Bind dense dims in order of appearance.
  if (slots != nullptr) {
    slots->assign(static_cast<std::size_t>(k.num_inputs()), nullptr);
  }
  std::size_t next = 0;
  for (int i = 0; i < k.num_inputs(); ++i) {
    if (i == k.sparse_input()) continue;
    SPTTN_CHECK_MSG(next < dense_factors.size(),
                    "missing dense tensor for input " << k.input(i).name);
    const DenseTensor* d = dense_factors[next++];
    SPTTN_CHECK_MSG(d != nullptr, "null dense factor");
    const TensorRef& ref = k.input(i);
    SPTTN_CHECK_MSG(d->order() == ref.order(),
                    "dense tensor order mismatch for " << ref.name);
    for (int m = 0; m < ref.order(); ++m) {
      k.set_index_dim(ref.idx[static_cast<std::size_t>(m)], d->dim(m));
    }
    if (slots != nullptr) (*slots)[static_cast<std::size_t>(i)] = d;
  }
  SPTTN_CHECK_MSG(next == dense_factors.size(),
                  "more dense tensors than kernel inputs");
  SPTTN_CHECK_MSG(k.dims_bound(), "kernel has unbound indices");
  return k;
}

BoundKernel bind(const std::string& expr, const CooTensor& sparse,
                 std::vector<const DenseTensor*> dense_factors,
                 const std::string& sparse_name) {
  BoundKernel bound;
  bound.kernel = bind_kernel_dims(expr, sparse, dense_factors, &bound.dense,
                                  sparse_name);
  bound.coo = &sparse;
  SPTTN_CHECK_MSG(sparse.is_sorted(), "sparse tensor must be sort_dedup()ed");
  bound.csf = CsfTensor(sparse);
  bound.stats = SparsityStats::from_coo(sparse);
  return bound;
}

Plan plan_kernel(const BoundKernel& bound, const PlannerOptions& options) {
  return make_plan(bound.kernel, bound.stats, options);
}

void run_plan(const BoundKernel& bound, const Plan& plan,
              DenseTensor* out_dense, std::span<double> out_sparse,
              int num_threads) {
  FusedExecutor exec(bound.kernel, plan);
  ExecArgs args;
  args.sparse = &bound.csf;
  args.dense = bound.dense;
  args.out_dense = out_dense;
  args.out_sparse = out_sparse;
  args.num_threads = num_threads;
  exec.execute(args);
}

DenseTensor make_output(const BoundKernel& bound) {
  SPTTN_CHECK_MSG(!bound.kernel.output_is_sparse(),
                  "kernel output shares the sparse pattern; use a value "
                  "span instead");
  std::vector<std::int64_t> dims;
  for (int id : bound.kernel.output().idx) {
    dims.push_back(bound.kernel.index_dim(id));
  }
  return DenseTensor(dims);
}

CooTensor permute_sparse_modes(const CooTensor& coo,
                               const std::vector<int>& mode_order) {
  SPTTN_CHECK(static_cast<int>(mode_order.size()) == coo.order());
  std::vector<std::int64_t> dims(mode_order.size());
  for (std::size_t l = 0; l < mode_order.size(); ++l) {
    dims[l] = coo.dim(mode_order[l]);
  }
  CooTensor out(dims);
  std::vector<std::int64_t> c(mode_order.size());
  for (std::int64_t e = 0; e < coo.nnz(); ++e) {
    const auto src = coo.coord(e);
    for (std::size_t l = 0; l < mode_order.size(); ++l) {
      c[l] = src[static_cast<std::size_t>(mode_order[l])];
    }
    out.push_back(c, coo.value(e));
  }
  out.sort_dedup();
  return out;
}

std::string rewrite_expr_with_csf_order(const std::string& expr,
                                        const std::vector<int>& mode_order,
                                        const std::string& sparse_name) {
  const Kernel k = Kernel::parse(expr, sparse_name);
  const TensorRef& sref = k.sparse_ref();
  SPTTN_CHECK(mode_order.size() == sref.idx.size());
  // Re-render the kernel with the sparse ref's index list permuted.
  const auto render = [&](const TensorRef& ref, bool permute) {
    std::string s = ref.name + "(";
    for (std::size_t m = 0; m < ref.idx.size(); ++m) {
      if (m) s += ",";
      const int id =
          permute ? ref.idx[static_cast<std::size_t>(mode_order[m])]
                  : ref.idx[m];
      s += k.index_name(id);
    }
    return s + ")";
  };
  std::string s = render(k.output(), false) + " = ";
  for (int i = 0; i < k.num_inputs(); ++i) {
    if (i) s += " * ";
    s += render(k.input(i), i == k.sparse_input());
  }
  return s;
}

CsfSearchResult search_csf_orders(const std::string& expr,
                                  const CooTensor& sparse,
                                  std::vector<const DenseTensor*> dense,
                                  const PlannerOptions& options,
                                  const std::string& sparse_name) {
  std::vector<int> perm(static_cast<std::size_t>(sparse.order()));
  for (std::size_t l = 0; l < perm.size(); ++l) perm[l] = static_cast<int>(l);
  CsfSearchResult best;
  bool first = true;
  do {
    const std::string rewritten =
        rewrite_expr_with_csf_order(expr, perm, sparse_name);
    const CooTensor permuted = permute_sparse_modes(sparse, perm);
    BoundKernel bound = bind(rewritten, permuted, dense, sparse_name);
    try {
      const Plan plan = make_plan(bound.kernel, bound.stats, options);
      if (first || plan.cost < best.cost) {
        best.mode_order = perm;
        best.cost = plan.cost;
        best.expr = rewritten;
        first = false;
      }
    } catch (const Error&) {
      // No executable nest under this order; skip.
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  SPTTN_CHECK_MSG(!first, "no CSF order admits an executable loop nest");
  return best;
}

AutotuneResult autotune_kernel(const BoundKernel& bound,
                               const PlannerOptions& options, int max_paths,
                               int sampled, int reps, std::uint64_t seed,
                               KernelCache* cache) {
  AutotuneResult result;
  const Kernel& kernel = bound.kernel;
  const auto paths = executable_paths(kernel, bound.stats);
  SPTTN_CHECK(!paths.empty());
  const std::unique_ptr<TreeCost> cost = make_cost_model(options, &bound.stats);
  Rng rng(seed);

  // Prepare one output holder reused across candidates.
  DenseTensor out_dense;
  std::vector<double> out_sparse;
  if (kernel.output_is_sparse()) {
    out_sparse.assign(static_cast<std::size_t>(bound.csf.nnz()), 0.0);
  } else {
    out_dense = make_output(bound);
  }

  const auto measure = [&](const ContractionPath& path,
                           const LoopOrder& order) {
    FusedExecutor exec(kernel, path, order);
    ExecArgs args;
    args.sparse = &bound.csf;
    args.dense = bound.dense;
    args.out_dense = kernel.output_is_sparse() ? nullptr : &out_dense;
    args.out_sparse = out_sparse;
    double best_s = 0;
    for (int r = 0; r < reps + 1; ++r) {
      Timer t;
      exec.execute(args);
      const double s = t.seconds();
      if (r == 0 || s < best_s) best_s = s;
    }
    return best_s;
  };

  bool have = false;
  int path_count = 0;
  for (const auto& path : paths) {
    if (++path_count > max_paths) break;
    DpOptions dopts;
    dopts.restrict_csf_order = options.restrict_csf_order;
    const DpResult dp = optimal_order(kernel, path, *cost, dopts);
    std::vector<LoopOrder> candidates;
    if (dp.feasible) candidates.push_back(dp.best);
    if (dp.has_second) candidates.push_back(dp.second);
    EnumerateOptions eopts;
    eopts.restrict_csf_order = options.restrict_csf_order;
    for (auto& order :
         sample_orders(kernel, path, eopts,
                       static_cast<std::size_t>(sampled), rng)) {
      candidates.push_back(std::move(order));
    }
    for (const auto& order : candidates) {
      double seconds = 0;
      try {
        seconds = measure(path, order);
      } catch (const Error&) {
        continue;  // order violates the sparse term's CSF requirement
      }
      ++result.candidates;
      if (!have || seconds < result.best_seconds) {
        have = true;
        result.best_seconds = seconds;
        result.best.path = path;
        result.best.order = order;
        result.best.cost = evaluate_cost(kernel, path, order, *cost);
        result.best.flops = path_flops(kernel, path, bound.stats);
      }
    }
  }
  SPTTN_CHECK_MSG(have, "autotuner found no runnable candidate");
  result.best.tree = LoopTree::build(kernel, result.best.path,
                                     result.best.order);
  result.best.sparsity_fingerprint = bound.stats.fingerprint();
  if (cache != nullptr) {
    // Record the measured winner so cache-aware planning serves it from
    // now on, even where the cost model would have chosen differently.
    cache->put(make_signature(kernel, bound.stats, options), kernel,
               result.best);
  }
  return result;
}

}  // namespace spttn
