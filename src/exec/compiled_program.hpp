// Compiled-program IR shared between the interpreter (executor.cpp) and the
// lowering tier (lower.cpp / lowered_program.cpp).
//
// FusedExecutor::Impl::compile flattens a LoopTree into these structs: loops
// tagged as CSF traversals or dense ranges, terms with pre-split strided
// accesses (outer indices resolved per iteration, trailing collapsed dense
// loops as `inner` strides). The interpreter walks them directly; the
// lowerer consumes a read-only CompiledView of the same program and emits a
// further-specialized flat form.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace spttn::cprog {

/// Where an operand's data lives.
enum class Base {
  kDense,      ///< a dense input tensor
  kBuffer,     ///< an intermediate buffer
  kSparseVal,  ///< the CSF leaf value of the sparse input
  kOutDense,   ///< the dense kernel output
  kOutSparse,  ///< the pattern-aligned sparse output values
};

/// Compiled strided access: offset = sum over outer (idx value * stride),
/// then `inner` strides advance through any collapsed trailing loops.
/// kSparseVal / kOutSparse accesses are addressed by the current CSF leaf
/// node instead (outer is empty, inner all zero).
struct CAccess {
  Base base = Base::kDense;
  int id = 0;  ///< dense input position or producing-term buffer id
  std::vector<std::pair<int, std::int64_t>> outer;
  std::vector<std::int64_t> inner;  ///< aligned with CTerm::extent
};

struct CTerm {
  CAccess lhs, rhs, out;
  std::vector<std::int64_t> extent;  ///< trailing collapsed dense loops
  int term_id = 0;
};

struct CActionRef {
  enum class Kind { kLoop, kTerm, kReset } kind;
  int id;
};

struct CLoop {
  int index = -1;
  bool sparse = false;
  int csf_level = -1;
  std::int64_t extent = 0;  ///< dense trip count (unused for CSF loops)
  std::vector<CActionRef> body;
};

/// Read-only view of one compiled program, handed to the lowerer. All
/// references alias FusedExecutor::Impl storage and stay valid for the
/// executor's lifetime.
struct CompiledView {
  const std::vector<CLoop>& loops;
  const std::vector<CTerm>& terms;
  const std::vector<CActionRef>& top;
  const std::vector<std::int64_t>& buffer_len;
  /// CSF order of the sparse operand; the leaf level is csf_order - 1.
  int csf_order = 0;
};

}  // namespace spttn::cprog
