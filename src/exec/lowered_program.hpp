// Lowered execution tier: flat, pre-resolved programs (ROADMAP item 1, the
// CoNST direction).
//
// The interpreter pays, per nonzero, a recursive run_action walk, a Kind
// switch, and an operand resolve that re-sums (index, stride) pairs — all
// determined entirely by the plan before the first nonzero is touched. The
// lowerer (lower.cpp) runs once at compile time and emits this IR instead:
//
//  - operands carry an interned base-pointer slot plus at most kMaxDeps
//    pre-split (index, stride) dependencies, so addressing is a short
//    fixed-bound loop over a std::array instead of vector walks;
//  - every term's innermost kernel (dot / axpy / hadamard, unit or generic
//    stride) is selected at lower time (InnerKind), so the per-call stride
//    inspection in run_inner disappears;
//  - a sparse loop whose body is exactly one term fuses into an LChain: one
//    tight loop over the nonzero range with branchless per-operand
//    addressing `invariant_base + idx[p]*idx_mult + p*leaf_mult`, dispatched
//    through a template instantiation per InnerKind so the kernel switch is
//    hoisted out of the nonzero loop entirely.
//
// Anything the lowerer cannot prove it handles stays with the interpreter:
// lowering is per top-level region (and per sub-loop), and the executor
// falls back node by node. Numerical contract: every lowered kernel mirrors
// the interpreter's exact accumulation order (the kernels.cpp loops), so
// lowered and interpreted runs are bit-identical, sequential or threaded.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "exec/compiled_program.hpp"

namespace spttn {
class CsfTensor;
}  // namespace spttn

namespace spttn::lowered {

/// Max pre-resolved (index, stride) dependencies per operand; accesses with
/// more outer indices fall back to the interpreter.
inline constexpr int kMaxDeps = 4;
/// Max collapsed trailing dense levels per term (innermost kernel plus
/// kMaxTermLevels - 1 outer strided levels).
inline constexpr int kMaxTermLevels = 4;
/// Max interned base pointers per program (dense inputs, buffers, sparse
/// values, outputs). Paper kernels use < 10.
inline constexpr int kMaxSlots = 48;

/// One pre-resolved outer dependency: add idx_val[idx] * stride.
struct Dep {
  std::int32_t idx = 0;
  std::int64_t stride = 0;
};

/// A term operand with its base pointer interned into the slot table and
/// outer offsets pre-split into a fixed-bound dependency array.
struct Operand {
  std::int32_t slot = 0;
  /// Add the current CSF leaf node position (sparse values / sparse output).
  bool leaf = false;
  std::uint8_t ndeps = 0;
  std::array<Dep, kMaxDeps> deps{};
};

/// Innermost kernel selected at lower time, mirroring the interpreter's
/// run_inner dispatch (out-stride 0 => dot, lhs-stride 0 => axpy with lhs
/// as alpha, rhs-stride 0 => axpy with rhs as alpha, else hadamard). The U
/// variants are the unit-stride instantiations.
enum class InnerKind : std::uint8_t {
  kScalar,  ///< depth 0: *out += *lhs * *rhs
  kDotU,
  kDotG,
  kAxpyLU,
  kAxpyLG,
  kAxpyRU,
  kAxpyRG,
  kHadU,
  kHadG,
};

/// A lowered term: three operands, pre-selected innermost kernel over
/// `n` elements with constant strides, and up to kMaxTermLevels - 1 outer
/// collapsed dense levels run in the interpreter's nesting order.
struct LTerm {
  Operand lhs, rhs, out;
  InnerKind inner = InnerKind::kScalar;
  std::int64_t n = 0;                 ///< innermost trip count
  std::int64_t ls = 0, rs = 0, os = 0;  ///< innermost strides
  std::uint8_t outer_depth = 0;       ///< collapsed levels above the innermost
  std::array<std::int64_t, kMaxTermLevels> oext{};
  std::array<std::int64_t, kMaxTermLevels> ols{};
  std::array<std::int64_t, kMaxTermLevels> ors{};
  std::array<std::int64_t, kMaxTermLevels> oos{};
};

/// Fused sparse loop + single term: per operand, the loop-varying part of
/// the address is idx[p] * idx_mult + p * leaf_mult (leaf_mult is 1 for
/// leaf-addressed operands when the chain loop is the CSF leaf level, else
/// 0); the loop-invariant part is resolved once before the nonzero loop.
struct LChain {
  std::int64_t l_idx = 0, l_leaf = 0;
  std::int64_t r_idx = 0, r_leaf = 0;
  std::int64_t o_idx = 0, o_leaf = 0;
  std::int32_t term = 0;  ///< LTerm holding the invariant operand parts
};

/// Body statement of a generic lowered loop.
struct LOp {
  enum class Kind : std::uint8_t { kLoop, kTerm, kReset } kind;
  std::int32_t id;
};

/// Pre-resolved buffer reset (memset run).
struct LReset {
  std::int32_t slot = 0;
  std::int64_t len = 0;
};

struct LLoop {
  std::int32_t index = -1;
  bool sparse = false;
  std::int32_t csf_level = -1;
  std::int64_t extent = 0;  ///< dense trip count (unused for CSF loops)
  bool is_chain = false;
  LChain chain{};
  std::vector<LOp> body;  ///< empty when is_chain
};

/// Where a slot's base pointer comes from (bound per execution from the
/// worker Runtime).
struct SlotSource {
  cprog::Base base = cprog::Base::kDense;
  std::int32_t id = 0;
};

/// The lowered program. `loop_of` maps every compiled loop id to its
/// lowered counterpart (-1 when that subtree stays interpreted); the
/// executor consults it at each dispatch point, so a program may run mixed
/// — lowered regions inline, rejected regions through the interpreter.
struct LoweredProgram {
  std::vector<LLoop> loops;
  std::vector<LTerm> terms;
  std::vector<LReset> resets;
  std::vector<SlotSource> slots;
  std::vector<std::int32_t> loop_of;
  /// Top-level kLoop regions whose whole subtree lowered.
  int lowered_root_regions = 0;

  /// Heap footprint of this program (for cache byte budgeting).
  std::size_t bytes() const;
};

/// Per-execution binding of a lowered program to one worker's runtime
/// state: raw pointers into the Runtime's index/node arrays plus the
/// resolved slot table. Cheap to build (one pass over `slots`).
struct ExecCtx {
  std::int64_t* idx_val = nullptr;
  std::int64_t* csf_node = nullptr;
  const CsfTensor* csf = nullptr;
  std::int32_t leaf_level = 0;
  std::array<double*, kMaxSlots> table{};
};

/// Run lowered loop `loop` over [begin, end) — node range for sparse loops,
/// index range for dense ones. The caller supplies the range exactly as it
/// does for the interpreter's run_loop, so parallel partitioning (root
/// chunks, nested second-level splits) is tier-agnostic.
void run_loop(const LoweredProgram& p, ExecCtx& ctx, std::int32_t loop,
              std::int64_t begin, std::int64_t end);

}  // namespace spttn::lowered
