#include "exec/unfactorized.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace spttn {

namespace {

/// Strided access of one tensor with respect to the global index ids.
struct Access {
  int input = -1;  ///< input position; -1 = the dense output
  std::vector<std::pair<int, std::int64_t>> strides;  ///< (index id, stride)
  /// Depth (loop level) at which all indices of this tensor are bound.
  int ready_level = 0;
};

}  // namespace

struct UnfactorizedExecutor::Impl {
  Kernel kernel;
  std::vector<int> loop_ids;       ///< loop order (index ids)
  std::vector<int> id_level;       ///< index id -> loop level
  int num_sparse = 0;
  std::vector<Access> inputs;      ///< dense inputs, sorted by ready_level
  Access output;                   ///< dense output (unused when sparse out)
  bool sparse_out = false;

  // Runtime state.
  std::vector<std::int64_t> idx_val;
  const CsfTensor* csf = nullptr;
  std::vector<const double*> dense_data;
  double* out_data = nullptr;
  double* out_sparse_data = nullptr;
  std::vector<std::int64_t> csf_node;

  std::int64_t offset(const Access& a) const {
    std::int64_t off = 0;
    for (const auto& [id, stride] : a.strides) {
      off += idx_val[static_cast<std::size_t>(id)] * stride;
    }
    return off;
  }

  void run(std::size_t level, double partial) {
    // Fold in inputs that became fully bound at this level.
    for (const Access& a : inputs) {
      if (static_cast<std::size_t>(a.ready_level) == level) {
        partial *= dense_data[static_cast<std::size_t>(a.input)][offset(a)];
      }
    }
    if (level == loop_ids.size()) {
      if (sparse_out) {
        out_sparse_data[csf_node.back()] += partial;
      } else {
        out_data[offset(output)] += partial;
      }
      return;
    }
    const int id = loop_ids[level];
    if (static_cast<int>(level) < num_sparse) {
      const int lvl = static_cast<int>(level);
      std::int64_t begin = 0;
      std::int64_t end = 0;
      if (lvl == 0) {
        end = csf->num_nodes(0);
      } else {
        const auto ptr = csf->level_ptr(lvl - 1);
        begin = ptr[static_cast<std::size_t>(csf_node[static_cast<std::size_t>(
            lvl - 1)])];
        end = ptr[static_cast<std::size_t>(
            csf_node[static_cast<std::size_t>(lvl - 1)] + 1)];
      }
      const auto idx = csf->level_idx(lvl);
      for (std::int64_t n = begin; n < end; ++n) {
        idx_val[static_cast<std::size_t>(id)] =
            idx[static_cast<std::size_t>(n)];
        csf_node[static_cast<std::size_t>(lvl)] = n;
        // The sparse value itself becomes available at the last level.
        const double p = (lvl + 1 == num_sparse)
                             ? partial * csf->vals()[static_cast<std::size_t>(n)]
                             : partial;
        run(level + 1, p);
      }
      return;
    }
    auto& v = idx_val[static_cast<std::size_t>(id)];
    for (std::int64_t i = 0; i < kernel.index_dim(id); ++i) {
      v = i;
      run(level + 1, partial);
    }
  }
};

UnfactorizedExecutor::UnfactorizedExecutor(const Kernel& kernel)
    : impl_(std::make_unique<Impl>()) {
  Impl& im = *impl_;
  im.kernel = kernel;
  SPTTN_CHECK(kernel.dims_bound());
  // Loop order: sparse modes (CSF order) then dense ids ascending.
  for (int id : kernel.sparse_ref().idx) im.loop_ids.push_back(id);
  im.num_sparse = static_cast<int>(im.loop_ids.size());
  for (int id = 0; id < kernel.num_indices(); ++id) {
    if (kernel.csf_level(id) < 0) im.loop_ids.push_back(id);
  }
  im.id_level.assign(static_cast<std::size_t>(kernel.num_indices()), -1);
  for (std::size_t l = 0; l < im.loop_ids.size(); ++l) {
    im.id_level[static_cast<std::size_t>(im.loop_ids[l])] =
        static_cast<int>(l);
  }

  const auto make_access = [&](const TensorRef& ref, int input) {
    Access a;
    a.input = input;
    std::int64_t stride = 1;
    std::vector<std::int64_t> strides(ref.idx.size());
    for (std::size_t m = ref.idx.size(); m-- > 0;) {
      strides[m] = stride;
      stride *= kernel.index_dim(ref.idx[m]);
    }
    int ready = 0;
    for (std::size_t m = 0; m < ref.idx.size(); ++m) {
      a.strides.emplace_back(ref.idx[m], strides[m]);
      ready = std::max(ready,
                       im.id_level[static_cast<std::size_t>(ref.idx[m])] + 1);
    }
    a.ready_level = ready;
    return a;
  };

  for (int i = 0; i < kernel.num_inputs(); ++i) {
    if (i == kernel.sparse_input()) continue;
    im.inputs.push_back(make_access(kernel.input(i), i));
  }
  im.sparse_out = kernel.output_is_sparse();
  if (!im.sparse_out) im.output = make_access(kernel.output(), -1);

  im.idx_val.assign(static_cast<std::size_t>(kernel.num_indices()), 0);
  im.csf_node.assign(static_cast<std::size_t>(im.num_sparse), 0);
}

UnfactorizedExecutor::~UnfactorizedExecutor() = default;
UnfactorizedExecutor::UnfactorizedExecutor(UnfactorizedExecutor&&) noexcept =
    default;
UnfactorizedExecutor& UnfactorizedExecutor::operator=(
    UnfactorizedExecutor&&) noexcept = default;

void UnfactorizedExecutor::execute(const CsfTensor& sparse,
                                   std::span<const DenseTensor* const> dense,
                                   DenseTensor* out_dense,
                                   std::span<double> out_sparse) {
  Impl& im = *impl_;
  SPTTN_CHECK(static_cast<int>(dense.size()) == im.kernel.num_inputs());
  im.dense_data.assign(dense.size(), nullptr);
  for (int i = 0; i < im.kernel.num_inputs(); ++i) {
    if (i == im.kernel.sparse_input()) continue;
    SPTTN_CHECK(dense[static_cast<std::size_t>(i)] != nullptr);
    im.dense_data[static_cast<std::size_t>(i)] =
        dense[static_cast<std::size_t>(i)]->data();
  }
  if (im.sparse_out) {
    SPTTN_CHECK(static_cast<std::int64_t>(out_sparse.size()) == sparse.nnz());
    im.out_sparse_data = out_sparse.data();
    for (double& v : out_sparse) v = 0;
  } else {
    SPTTN_CHECK(out_dense != nullptr);
    out_dense->zero();
    im.out_data = out_dense->data();
  }
  im.csf = &sparse;
  im.run(0, 1.0);
  im.csf = nullptr;
}

}  // namespace spttn
