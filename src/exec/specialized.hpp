// Hand-tuned kernels in the style of specialized libraries.
//
// splatt_mttkrp* mirror SPLATT's CSF MTTKRP (factored, fused, stack of
// rank-length accumulators); ttmc3_specialized mirrors the hand-written
// TTMc codes of Tucker libraries. They are the "specialized implementation"
// comparison points of the paper's Figure 7 and Section 7.
#pragma once

#include "tensor/csf_tensor.hpp"
#include "tensor/dense_tensor.hpp"

namespace spttn {

/// A(i,r) = sum_{j,k} T(i,j,k) * B(j,r) * C(k,r); T given as CSF (i,j,k).
void splatt_mttkrp3(const CsfTensor& t, const DenseTensor& b,
                    const DenseTensor& c, DenseTensor* a);

/// A(i,r) = sum_{j,k,l} T(i,j,k,l) * B(j,r) * C(k,r) * D(l,r).
void splatt_mttkrp4(const CsfTensor& t, const DenseTensor& b,
                    const DenseTensor& c, const DenseTensor& d,
                    DenseTensor* a);

/// S(i,r,s) = sum_{j,k} T(i,j,k) * U(j,r) * V(k,s).
void ttmc3_specialized(const CsfTensor& t, const DenseTensor& u,
                       const DenseTensor& v, DenseTensor* s);

/// S(i,j,k) = sum_r T(i,j,k) * U(i,r) * V(j,r) * W(k,r); values written in
/// CSF leaf order. out must have t.nnz() elements.
void tttp3_specialized(const CsfTensor& t, const DenseTensor& u,
                       const DenseTensor& v, const DenseTensor& w,
                       std::span<double> out);

}  // namespace spttn
