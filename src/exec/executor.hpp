// Fused loop-nest executor — the runtime half of SpTTN-Cyclops
// (paper Section 5, Algorithm 2).
//
// Stage 1 (construction) compiles a LoopTree into a flat program: loops are
// tagged as CSF traversals or dense ranges, buffers are allocated, reset
// actions are placed, and trailing dense loops exclusive to one term are
// collapsed into strided inner kernels (the runtime analogue of the paper's
// metaprogramming + BLAS hooks). Stage 2 (execute) interprets the program
// against bound tensors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/loop_tree.hpp"
#include "core/planner.hpp"
#include "tensor/csf_tensor.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/einsum.hpp"

namespace spttn {

struct LowerLimits;  // exec/lower.hpp

/// How the compiled program is driven at execute() time. Construction
/// always prepares both forms: the interpretable action tree and the
/// lowered flat program (lower.hpp) for every region the lowerer accepts.
/// The tier is selected per execution (ExecArgs::tier), never baked into
/// the executor, so one cached FusedExecutor serves callers with different
/// tier preferences concurrently. Both tiers produce bit-identical results
/// — the lowered kernels mirror the interpreter's accumulation order — and
/// work partitioning is tier-agnostic (lowering dispatches per region after
/// partitioning), so threaded runs are also bit-identical across tiers at a
/// fixed thread count.
enum class ExecTier {
  kInterpret,  ///< recursive walk over the compiled action tree
  kLowered,    ///< flat pre-resolved program with specialized inner kernels
};

/// Per-execution diagnostics, filled when ExecArgs.stats is set. The
/// runtime never falls back silently: every execution that received a
/// stats out-param fills it (populated = true), so "ran sequentially"
/// (threads_used == 1, total_regions counted) is distinguishable from
/// "stats never populated" (all defaults), and when num_threads > 1 the
/// outcome of every root loop (parallelized, nested, or not, and why not)
/// is observable here.
struct ExecStats {
  /// Set by every execute() call that was handed this struct, on both the
  /// sequential and the parallel path.
  bool populated = false;
  int threads_requested = 1;
  /// Widest work partitioning of any root-loop region (task count, capped
  /// at threads_requested — nested fragmentation may emit a few surplus
  /// tasks that only smooth imbalance; 1 when everything executed
  /// sequentially). No longer saturates at the root
  /// extent: regions whose root is too small or too skewed split across
  /// the second loop level. Actual concurrency is additionally bounded by
  /// the process pool's lane count — regions needing per-task output
  /// partials are budgeted at that; disjoint-write regions may carry more
  /// tasks than lanes (the work-stealing pool balances them).
  int threads_used = 1;
  /// Top-level loops executed through the thread pool (>= 2 tasks).
  int parallel_regions = 0;
  /// Top-level loops that requested threads but could not be partitioned
  /// safely (e.g. a cross-root buffer not indexed by the root loop).
  int fallback_regions = 0;
  /// Parallel regions that engaged the nested second-level split (root
  /// extent below the lane budget, or root-chunk skew above threshold).
  int nested_regions = 0;
  /// Top-level loop regions in the compiled program (filled on both the
  /// sequential and parallel paths).
  int total_regions = 0;
  /// Max over root regions of (largest task weight) / (mean task weight),
  /// where weight is subtree nnz for sparse roots and iteration count for
  /// dense roots; 1.0 when balanced or when there was no work to split.
  /// A region that a multi-lane request failed to split at all reports its
  /// weight skew against the *requested* partition (mean = total /
  /// requested lanes), so a serialized mega-chunk is visible instead of
  /// hiding behind the old always-1.0 default.
  double partition_imbalance = 1.0;
  /// Tier this execution was driven on (echoes ExecArgs::tier).
  ExecTier tier = ExecTier::kInterpret;
  /// Top-level loop regions that ran fully lowered this execution; the
  /// remaining `total_regions - lowered_regions` interpreted (either the
  /// tier was kInterpret, or the lowerer rejected the region's subtree —
  /// sub-loops of a rejected region may still dispatch lowered, but only
  /// fully-lowered regions are counted here).
  int lowered_regions = 0;
};

/// Tensor bindings for one execution.
struct ExecArgs {
  /// CSF of the sparse operand; its mode order must match the order of the
  /// sparse tensor's indices in the kernel expression.
  const CsfTensor* sparse = nullptr;
  /// One entry per kernel input; the sparse slot is ignored (may be null).
  std::vector<const DenseTensor*> dense;
  /// Output when the kernel output is dense.
  DenseTensor* out_dense = nullptr;
  /// Output values aligned with the CSF nonzeros when the output shares the
  /// sparse operand's pattern (e.g. TTTP).
  std::span<double> out_sparse;
  /// Accumulate into the output instead of zeroing it first.
  bool accumulate = false;
  /// Lanes of parallelism for the root loop(s), served by the process-wide
  /// work-stealing ThreadPool. Sparse root loops are partitioned by subtree
  /// nonzero count (not equal index ranges); dense root loops split evenly;
  /// multi-root forests parallelize each root loop with a barrier between
  /// roots. A root whose extent is below the lane budget, or whose chunks
  /// are skewed (one subtree owning most nonzeros), is additionally split
  /// across the second loop level into finer tasks the pool balances
  /// dynamically. Workers own private intermediates; cross-root buffers
  /// stay shared with disjoint writes; outputs either write disjoint
  /// slices directly or go through per-task partials folded by a tiled
  /// deterministic reduction (same partition shape => bit-identical
  /// results run to run). 1 = sequential.
  int num_threads = 1;
  /// Optional out-param receiving per-execution diagnostics.
  ExecStats* stats = nullptr;
  /// Execution tier. kLowered (the default) drives every region the
  /// lowerer accepted through the flat pre-resolved program and interprets
  /// the rest; kInterpret forces the action-tree walk everywhere. Results
  /// are bit-identical either way (see ExecTier), so this is purely a
  /// performance/ablation knob; PlannerOptions::lower maps onto it in the
  /// serving layer.
  ExecTier tier = ExecTier::kLowered;
};

/// Executes one fully-fused loop nest for an SpTTN kernel.
class FusedExecutor {
 public:
  /// Compile the nest for (path, order). The kernel must have bound dims.
  /// `collapse_dense` disables the inner-kernel offload when false (used by
  /// the ablation benchmarks to isolate the BLAS-hook benefit).
  FusedExecutor(const Kernel& kernel, const ContractionPath& path,
                const LoopOrder& order, bool collapse_dense = true);

  /// Convenience constructor from a planner result. Records the plan's
  /// sparsity fingerprint: execute() then verifies the CSF it is handed
  /// matches the structure the plan was derived from (both fingerprints
  /// non-zero and unequal => error), so a cached or reused plan cannot
  /// silently run against a structurally different tensor. Use the
  /// (path, order) constructor to opt out when running a plan against
  /// other structures is intended (e.g. SPMD ranks executing a
  /// globally-planned nest on local partitions).
  FusedExecutor(const Kernel& kernel, const Plan& plan);

  ~FusedExecutor();
  FusedExecutor(FusedExecutor&&) noexcept;
  FusedExecutor& operator=(FusedExecutor&&) noexcept;

  /// Run the kernel. Validates all bindings against the kernel shape.
  void execute(const ExecArgs& args);

  const LoopTree& tree() const;

  /// Number of terms whose inner loops were collapsed into strided kernels,
  /// and the total count of collapsed loops (diagnostics).
  int offloaded_terms() const;
  int collapsed_loops() const;

  /// Top-level loop regions whose whole subtree the lowerer accepted; a
  /// kLowered execution drives exactly these through the flat program.
  int lowered_regions() const;
  /// Heap footprint of the compiled action tree plus the lowered program
  /// (used by KernelCache::estimate_entry_bytes for byte budgeting).
  std::size_t program_bytes() const;
  /// Re-run the lowering pass with explicit limits (testing and ablation:
  /// e.g. LowerLimits{.max_operand_deps = 0} rejects every region and
  /// forces a kLowered execution through the interpreter fallback). Not
  /// thread-safe with respect to concurrent execute() calls.
  void relower(const LowerLimits& limits);

  /// Compile-time locality facts of one top-level root-loop region, as
  /// decided by analyze_parallel from the compiled program's access
  /// strides. Exposed so the plan verifier can cross-check its own
  /// independently derived region classification (PlanVerifier::verify
  /// with an executor) — the two analyses must agree before a region is
  /// partitioned across workers.
  struct ParallelRegionInfo {
    int top_position = -1;  ///< position in the top-level action sequence
    int root_index = -1;    ///< kernel index id of the root loop
    bool sparse = false;
    bool par_safe = false;
    bool nest_safe = false;
    bool writes_out_dense = false;
    bool writes_out_sparse = false;
    bool out_dense_rooted = true;
    bool out_dense_inner_rooted = true;
  };
  /// One entry per top-level kLoop action, in top order.
  std::vector<ParallelRegionInfo> parallel_regions() const;
  /// Per-term sharedness of the intermediate buffers: 1 when the buffer
  /// carries values across top-level actions (lives in storage shared by
  /// all workers). Slots without an allocated buffer (the final term) are
  /// reported 0.
  std::vector<char> shared_buffers() const;
  /// Whether trailing dense exclusive chains were collapsed into strided
  /// kernels when this nest was compiled.
  bool collapse_dense() const;

  std::string describe(const Kernel& kernel) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace spttn
