// Fused loop-nest executor — the runtime half of SpTTN-Cyclops
// (paper Section 5, Algorithm 2).
//
// Stage 1 (construction) compiles a LoopTree into a flat program: loops are
// tagged as CSF traversals or dense ranges, buffers are allocated, reset
// actions are placed, and trailing dense loops exclusive to one term are
// collapsed into strided inner kernels (the runtime analogue of the paper's
// metaprogramming + BLAS hooks). Stage 2 (execute) interprets the program
// against bound tensors.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/loop_tree.hpp"
#include "core/planner.hpp"
#include "tensor/csf_tensor.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/einsum.hpp"

namespace spttn {

/// Per-execution diagnostics, filled when ExecArgs.stats is set. The
/// runtime never falls back silently: when num_threads > 1 the outcome of
/// every root loop (parallelized or not, and why not) is observable here.
struct ExecStats {
  int threads_requested = 1;
  /// Widest work partitioning of any root-loop region (chunk count; 1 when
  /// everything executed sequentially). Saturates at the root extent.
  /// Actual concurrency is additionally bounded by the process pool's lane
  /// count — regions needing per-partition output partials are capped at
  /// that; disjoint-write regions may carry more chunks than lanes.
  int threads_used = 1;
  /// Top-level loops executed through the thread pool (>= 2 partitions).
  int parallel_regions = 0;
  /// Top-level loops that requested threads but could not be partitioned
  /// safely (e.g. a cross-root buffer not indexed by the root loop).
  int fallback_regions = 0;
  /// Max over parallel sparse-root regions of (largest chunk nnz) / (mean
  /// chunk nnz); 1.0 when balanced, dense-rooted, or sequential.
  double partition_imbalance = 1.0;
};

/// Tensor bindings for one execution.
struct ExecArgs {
  /// CSF of the sparse operand; its mode order must match the order of the
  /// sparse tensor's indices in the kernel expression.
  const CsfTensor* sparse = nullptr;
  /// One entry per kernel input; the sparse slot is ignored (may be null).
  std::vector<const DenseTensor*> dense;
  /// Output when the kernel output is dense.
  DenseTensor* out_dense = nullptr;
  /// Output values aligned with the CSF nonzeros when the output shares the
  /// sparse operand's pattern (e.g. TTTP).
  std::span<double> out_sparse;
  /// Accumulate into the output instead of zeroing it first.
  bool accumulate = false;
  /// Lanes of parallelism for the root loop(s), served by the process-wide
  /// ThreadPool. Sparse root loops are partitioned by subtree nonzero count
  /// (not equal index ranges); dense root loops split evenly; multi-root
  /// forests parallelize each root loop with a barrier between roots.
  /// Workers own private intermediates; cross-root buffers stay shared with
  /// disjoint writes; dense outputs either write disjoint slices directly
  /// or are tree-reduced deterministically. 1 = sequential.
  int num_threads = 1;
  /// Optional out-param receiving per-execution diagnostics.
  ExecStats* stats = nullptr;
};

/// Executes one fully-fused loop nest for an SpTTN kernel.
class FusedExecutor {
 public:
  /// Compile the nest for (path, order). The kernel must have bound dims.
  /// `collapse_dense` disables the inner-kernel offload when false (used by
  /// the ablation benchmarks to isolate the BLAS-hook benefit).
  FusedExecutor(const Kernel& kernel, const ContractionPath& path,
                const LoopOrder& order, bool collapse_dense = true);

  /// Convenience constructor from a planner result.
  FusedExecutor(const Kernel& kernel, const Plan& plan)
      : FusedExecutor(kernel, plan.path, plan.order) {}

  ~FusedExecutor();
  FusedExecutor(FusedExecutor&&) noexcept;
  FusedExecutor& operator=(FusedExecutor&&) noexcept;

  /// Run the kernel. Validates all bindings against the kernel shape.
  void execute(const ExecArgs& args);

  const LoopTree& tree() const;

  /// Number of terms whose inner loops were collapsed into strided kernels,
  /// and the total count of collapsed loops (diagnostics).
  int offloaded_terms() const;
  int collapsed_loops() const;

  std::string describe(const Kernel& kernel) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace spttn
