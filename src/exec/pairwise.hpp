// CTF-style pairwise-contraction baseline (paper Section 2.4.2).
//
// Executes the contraction path one term at a time, materializing every
// intermediate as an element-sparse hash map — the behaviour of general
// sparse tensor frameworks that build full (sparse) intermediates instead
// of fusing. Memory and time blow up exactly where the paper reports CTF
// struggling, which is the point of the baseline.
#pragma once

#include <cstdint>
#include <span>

#include "core/contraction_path.hpp"
#include "tensor/coo_tensor.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/einsum.hpp"

namespace spttn {

struct PairwiseStats {
  std::int64_t peak_intermediate_entries = 0;  ///< max hash-map size seen
  std::int64_t total_scalar_ops = 0;           ///< multiply-accumulates
};

/// Execute `kernel` along `path` with materialized intermediates.
/// `dense` has one slot per input (sparse slot ignored); outputs zeroed.
/// Throws spttn::Error if an intermediate would exceed `max_entries`
/// elements (the baseline's out-of-memory condition).
PairwiseStats pairwise_execute(const Kernel& kernel,
                               const ContractionPath& path,
                               const CooTensor& sparse,
                               std::span<const DenseTensor* const> dense,
                               DenseTensor* out_dense,
                               std::span<double> out_sparse,
                               std::int64_t max_entries = 1ll << 27);

/// Estimated scalar operations of executing `path` pairwise with
/// materialized intermediates: unlike the fused estimate (path_flops),
/// intermediates not derived from the sparse tensor are dense over their
/// full index space, and each term iterates the driving operand's entries
/// times the other side's free extents.
double pairwise_path_flops(const Kernel& kernel, const ContractionPath& path,
                           const SparsityStats& stats);

/// The contraction path a pairwise framework would choose: minimum
/// pairwise_path_flops over all paths (no executability filter — pairwise
/// execution does not need one).
ContractionPath pairwise_best_path(const Kernel& kernel,
                                   const SparsityStats& stats);

}  // namespace spttn
