#include "exec/lowered_program.hpp"

#include <cstring>

#include "tensor/csf_tensor.hpp"

namespace spttn::lowered {

namespace {

inline const double* opd_addr(const Operand& o, const ExecCtx& ctx) {
  const double* ptr = ctx.table[static_cast<std::size_t>(o.slot)];
  for (int d = 0; d < o.ndeps; ++d) {
    ptr += ctx.idx_val[o.deps[static_cast<std::size_t>(d)].idx] *
           o.deps[static_cast<std::size_t>(d)].stride;
  }
  if (o.leaf) ptr += ctx.csf_node[ctx.leaf_level];
  return ptr;
}

inline double* opd_addr_mut(const Operand& o, const ExecCtx& ctx) {
  return const_cast<double*>(opd_addr(o, ctx));
}

/// Innermost kernels, one instantiation per InnerKind. Each mirrors the
/// corresponding kernels.cpp loop exactly (same accumulation order, and
/// alpha = 1.0 hadamard multiplies are exact), so lowered execution is
/// bit-identical to the interpreter.
template <InnerKind K>
inline void apply_inner(const LTerm& t, const double* l, const double* r,
                        double* o) {
  const std::int64_t n = t.n;
  if constexpr (K == InnerKind::kScalar) {
    *o += *l * *r;
  } else if constexpr (K == InnerKind::kDotU) {
    double acc = 0;
    for (std::int64_t i = 0; i < n; ++i) acc += l[i] * r[i];
    *o += acc;
  } else if constexpr (K == InnerKind::kDotG) {
    double acc = 0;
    for (std::int64_t i = 0; i < n; ++i) acc += l[i * t.ls] * r[i * t.rs];
    *o += acc;
  } else if constexpr (K == InnerKind::kAxpyLU) {
    const double a = *l;
    for (std::int64_t i = 0; i < n; ++i) o[i] += a * r[i];
  } else if constexpr (K == InnerKind::kAxpyLG) {
    const double a = *l;
    for (std::int64_t i = 0; i < n; ++i) o[i * t.os] += a * r[i * t.rs];
  } else if constexpr (K == InnerKind::kAxpyRU) {
    const double a = *r;
    for (std::int64_t i = 0; i < n; ++i) o[i] += a * l[i];
  } else if constexpr (K == InnerKind::kAxpyRG) {
    const double a = *r;
    for (std::int64_t i = 0; i < n; ++i) o[i * t.os] += a * l[i * t.ls];
  } else if constexpr (K == InnerKind::kHadU) {
    for (std::int64_t i = 0; i < n; ++i) o[i] += l[i] * r[i];
  } else {
    static_assert(K == InnerKind::kHadG);
    for (std::int64_t i = 0; i < n; ++i) {
      o[i * t.os] += l[i * t.ls] * r[i * t.rs];
    }
  }
}

/// Outer collapsed levels in the interpreter's run_inner nesting order.
template <InnerKind K>
void run_levels(const LTerm& t, int level, const double* l, const double* r,
                double* o) {
  if (level == t.outer_depth) {
    apply_inner<K>(t, l, r, o);
    return;
  }
  const auto lv = static_cast<std::size_t>(level);
  for (std::int64_t i = 0; i < t.oext[lv]; ++i) {
    run_levels<K>(t, level + 1, l + i * t.ols[lv], r + i * t.ors[lv],
                  o + i * t.oos[lv]);
  }
}

template <InnerKind K>
void run_term_k(const LTerm& t, const double* l, const double* r, double* o) {
  if (t.outer_depth == 0) {
    apply_inner<K>(t, l, r, o);
  } else {
    run_levels<K>(t, 0, l, r, o);
  }
}

void run_term(const ExecCtx& ctx, const LTerm& t) {
  const double* l = opd_addr(t.lhs, ctx);
  const double* r = opd_addr(t.rhs, ctx);
  double* o = opd_addr_mut(t.out, ctx);
  switch (t.inner) {
    case InnerKind::kScalar: run_term_k<InnerKind::kScalar>(t, l, r, o); break;
    case InnerKind::kDotU: run_term_k<InnerKind::kDotU>(t, l, r, o); break;
    case InnerKind::kDotG: run_term_k<InnerKind::kDotG>(t, l, r, o); break;
    case InnerKind::kAxpyLU: run_term_k<InnerKind::kAxpyLU>(t, l, r, o); break;
    case InnerKind::kAxpyLG: run_term_k<InnerKind::kAxpyLG>(t, l, r, o); break;
    case InnerKind::kAxpyRU: run_term_k<InnerKind::kAxpyRU>(t, l, r, o); break;
    case InnerKind::kAxpyRG: run_term_k<InnerKind::kAxpyRG>(t, l, r, o); break;
    case InnerKind::kHadU: run_term_k<InnerKind::kHadU>(t, l, r, o); break;
    case InnerKind::kHadG: run_term_k<InnerKind::kHadG>(t, l, r, o); break;
  }
}

/// The fused sparse-loop body: branchless operand addressing per nonzero,
/// kernel switch hoisted out of the loop by the template instantiation.
template <InnerKind K>
void chain_loop(const LTerm& t, const LChain& c, const std::int64_t* idx,
                const double* lb, const double* rb, double* ob,
                std::int64_t begin, std::int64_t end) {
  if (t.outer_depth == 0) {
    for (std::int64_t p = begin; p < end; ++p) {
      const std::int64_t iv = idx[p];
      apply_inner<K>(t, lb + iv * c.l_idx + p * c.l_leaf,
                     rb + iv * c.r_idx + p * c.r_leaf,
                     ob + iv * c.o_idx + p * c.o_leaf);
    }
    return;
  }
  for (std::int64_t p = begin; p < end; ++p) {
    const std::int64_t iv = idx[p];
    run_levels<K>(t, 0, lb + iv * c.l_idx + p * c.l_leaf,
                  rb + iv * c.r_idx + p * c.r_leaf,
                  ob + iv * c.o_idx + p * c.o_leaf);
  }
}

void run_chain(const LoweredProgram& p, ExecCtx& ctx, const LLoop& loop,
               std::int64_t begin, std::int64_t end) {
  const LChain& c = loop.chain;
  const LTerm& t = p.terms[static_cast<std::size_t>(c.term)];
  // Loop-invariant operand parts resolve once; only the chain multipliers
  // vary inside the nonzero loop.
  const double* lb = opd_addr(t.lhs, ctx);
  const double* rb = opd_addr(t.rhs, ctx);
  double* ob = opd_addr_mut(t.out, ctx);
  const std::int64_t* idx = ctx.csf->level_idx(loop.csf_level).data();
  switch (t.inner) {
    case InnerKind::kScalar:
      chain_loop<InnerKind::kScalar>(t, c, idx, lb, rb, ob, begin, end);
      break;
    case InnerKind::kDotU:
      chain_loop<InnerKind::kDotU>(t, c, idx, lb, rb, ob, begin, end);
      break;
    case InnerKind::kDotG:
      chain_loop<InnerKind::kDotG>(t, c, idx, lb, rb, ob, begin, end);
      break;
    case InnerKind::kAxpyLU:
      chain_loop<InnerKind::kAxpyLU>(t, c, idx, lb, rb, ob, begin, end);
      break;
    case InnerKind::kAxpyLG:
      chain_loop<InnerKind::kAxpyLG>(t, c, idx, lb, rb, ob, begin, end);
      break;
    case InnerKind::kAxpyRU:
      chain_loop<InnerKind::kAxpyRU>(t, c, idx, lb, rb, ob, begin, end);
      break;
    case InnerKind::kAxpyRG:
      chain_loop<InnerKind::kAxpyRG>(t, c, idx, lb, rb, ob, begin, end);
      break;
    case InnerKind::kHadU:
      chain_loop<InnerKind::kHadU>(t, c, idx, lb, rb, ob, begin, end);
      break;
    case InnerKind::kHadG:
      chain_loop<InnerKind::kHadG>(t, c, idx, lb, rb, ob, begin, end);
      break;
  }
}

void run_op(const LoweredProgram& p, ExecCtx& ctx, const LOp& op);

void run_body(const LoweredProgram& p, ExecCtx& ctx, const LLoop& loop,
              std::int64_t begin, std::int64_t end) {
  if (loop.sparse) {
    const std::int64_t* idx = ctx.csf->level_idx(loop.csf_level).data();
    std::int64_t* iv = ctx.idx_val + loop.index;
    std::int64_t* node = ctx.csf_node + loop.csf_level;
    for (std::int64_t n = begin; n < end; ++n) {
      *iv = idx[n];
      *node = n;
      for (const LOp& op : loop.body) run_op(p, ctx, op);
    }
  } else {
    std::int64_t* iv = ctx.idx_val + loop.index;
    for (std::int64_t i = begin; i < end; ++i) {
      *iv = i;
      for (const LOp& op : loop.body) run_op(p, ctx, op);
    }
  }
}

void run_op(const LoweredProgram& p, ExecCtx& ctx, const LOp& op) {
  switch (op.kind) {
    case LOp::Kind::kTerm:
      run_term(ctx, p.terms[static_cast<std::size_t>(op.id)]);
      break;
    case LOp::Kind::kReset: {
      const LReset& r = p.resets[static_cast<std::size_t>(op.id)];
      std::memset(ctx.table[static_cast<std::size_t>(r.slot)], 0,
                  static_cast<std::size_t>(r.len) * sizeof(double));
      break;
    }
    case LOp::Kind::kLoop: {
      const LLoop& l = p.loops[static_cast<std::size_t>(op.id)];
      std::int64_t begin = 0;
      std::int64_t end = 0;
      if (l.sparse) {
        if (l.csf_level == 0) {
          end = ctx.csf->num_nodes(0);
        } else {
          const auto ptr = ctx.csf->level_ptr(l.csf_level - 1);
          const std::int64_t parent = ctx.csf_node[l.csf_level - 1];
          begin = ptr[static_cast<std::size_t>(parent)];
          end = ptr[static_cast<std::size_t>(parent + 1)];
        }
      } else {
        end = l.extent;
      }
      run_loop(p, ctx, op.id, begin, end);
      break;
    }
  }
}

}  // namespace

void run_loop(const LoweredProgram& p, ExecCtx& ctx, std::int32_t loop,
              std::int64_t begin, std::int64_t end) {
  const LLoop& l = p.loops[static_cast<std::size_t>(loop)];
  if (l.is_chain) {
    run_chain(p, ctx, l, begin, end);
    return;
  }
  run_body(p, ctx, l, begin, end);
}

std::size_t LoweredProgram::bytes() const {
  std::size_t b = sizeof(LoweredProgram);
  b += loops.capacity() * sizeof(LLoop);
  for (const LLoop& l : loops) b += l.body.capacity() * sizeof(LOp);
  b += terms.capacity() * sizeof(LTerm);
  b += resets.capacity() * sizeof(LReset);
  b += slots.capacity() * sizeof(SlotSource);
  b += loop_of.capacity() * sizeof(std::int32_t);
  return b;
}

}  // namespace spttn::lowered
