#include "exec/kernels.hpp"

#include <cstring>

namespace spttn {

void xaxpy(std::int64_t n, double alpha, const double* x, std::int64_t sx,
           double* y, std::int64_t sy) {
  if (sx == 1 && sy == 1) {
    for (std::int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
    return;
  }
  for (std::int64_t i = 0; i < n; ++i) y[i * sy] += alpha * x[i * sx];
}

double xdot(std::int64_t n, const double* x, std::int64_t sx, const double* y,
            std::int64_t sy) {
  double acc = 0;
  if (sx == 1 && sy == 1) {
    for (std::int64_t i = 0; i < n; ++i) acc += x[i] * y[i];
    return acc;
  }
  for (std::int64_t i = 0; i < n; ++i) acc += x[i * sx] * y[i * sy];
  return acc;
}

void xhad(std::int64_t n, double alpha, const double* x, std::int64_t sx,
          const double* y, std::int64_t sy, double* z, std::int64_t sz) {
  if (sx == 1 && sy == 1 && sz == 1) {
    for (std::int64_t i = 0; i < n; ++i) z[i] += alpha * x[i] * y[i];
    return;
  }
  for (std::int64_t i = 0; i < n; ++i) {
    z[i * sz] += alpha * x[i * sx] * y[i * sy];
  }
}

void xger(std::int64_t m, std::int64_t n, double alpha, const double* x,
          std::int64_t sx, const double* y, std::int64_t sy, double* a,
          std::int64_t sam, std::int64_t san) {
  for (std::int64_t i = 0; i < m; ++i) {
    xaxpy(n, alpha * x[i * sx], y, sy, a + i * sam, san);
  }
}

void xgemv(std::int64_t m, std::int64_t n, double alpha, const double* a,
           std::int64_t sam, std::int64_t san, const double* x,
           std::int64_t sx, double* y, std::int64_t sy) {
  for (std::int64_t i = 0; i < m; ++i) {
    y[i * sy] += alpha * xdot(n, a + i * sam, san, x, sx);
  }
}

void xgemm(std::int64_t m, std::int64_t n, std::int64_t k, double alpha,
           const double* a, std::int64_t sam, std::int64_t sak,
           const double* b, std::int64_t sbk, std::int64_t sbn, double* c,
           std::int64_t scm, std::int64_t scn) {
  // ikj order: streams b and c rows; adequate for the small dense factors
  // SpTTN kernels involve.
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const double aik = alpha * a[i * sam + kk * sak];
      if (aik == 0.0) continue;
      xaxpy(n, aik, b + kk * sbk, sbn, c + i * scm, scn);
    }
  }
}

void xzero(std::int64_t n, double* y, std::int64_t sy) {
  if (sy == 1) {
    std::memset(y, 0, static_cast<std::size_t>(n) * sizeof(double));
    return;
  }
  for (std::int64_t i = 0; i < n; ++i) y[i * sy] = 0.0;
}

}  // namespace spttn
