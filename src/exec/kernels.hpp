// Internal BLAS-style kernels for the innermost dense loops.
//
// The paper offloads independent dense loops to BLAS (xAXPY, xGER, and a
// manually implemented xAXPY on their machines); this repository has no
// external BLAS, so these routines play that role. All take explicit
// strides; unit-stride fast paths are specialized.
#pragma once

#include <cstdint>

namespace spttn {

/// y[i*sy] += alpha * x[i*sx]  (BLAS-1 AXPY)
void xaxpy(std::int64_t n, double alpha, const double* x, std::int64_t sx,
           double* y, std::int64_t sy);

/// return sum_i x[i*sx] * y[i*sy]  (BLAS-1 DOT)
double xdot(std::int64_t n, const double* x, std::int64_t sx, const double* y,
            std::int64_t sy);

/// z[i*sz] += alpha * x[i*sx] * y[i*sy]  (elementwise triple / Hadamard
/// accumulate; used when producer terms multiply two factor rows)
void xhad(std::int64_t n, double alpha, const double* x, std::int64_t sx,
          const double* y, std::int64_t sy, double* z, std::int64_t sz);

/// a[i*sam + j*san] += alpha * x[i*sx] * y[j*sy]  (BLAS-2 GER)
void xger(std::int64_t m, std::int64_t n, double alpha, const double* x,
          std::int64_t sx, const double* y, std::int64_t sy, double* a,
          std::int64_t sam, std::int64_t san);

/// y[i*sy] += alpha * sum_j a[i*sam + j*san] * x[j*sx]  (BLAS-2 GEMV)
void xgemv(std::int64_t m, std::int64_t n, double alpha, const double* a,
           std::int64_t sam, std::int64_t san, const double* x,
           std::int64_t sx, double* y, std::int64_t sy);

/// c[i*scm + j*scn] += alpha * sum_k a[i*sam + k*sak] * b[k*sbk + j*sbn]
/// (BLAS-3 GEMM, ikj loop order with blocking on k)
void xgemm(std::int64_t m, std::int64_t n, std::int64_t k, double alpha,
           const double* a, std::int64_t sam, std::int64_t sak,
           const double* b, std::int64_t sbk, std::int64_t sbn, double* c,
           std::int64_t scm, std::int64_t scn);

/// y[i*sy] = 0
void xzero(std::int64_t n, double* y, std::int64_t sy);

}  // namespace spttn
