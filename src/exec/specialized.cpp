#include "exec/specialized.hpp"

#include <vector>

#include "exec/kernels.hpp"
#include "util/error.hpp"

namespace spttn {

void splatt_mttkrp3(const CsfTensor& t, const DenseTensor& b,
                    const DenseTensor& c, DenseTensor* a) {
  SPTTN_CHECK(t.order() == 3);
  const std::int64_t rank = a->dim(1);
  SPTTN_CHECK(b.dim(1) == rank && c.dim(1) == rank);
  a->zero();
  const auto i_idx = t.level_idx(0);
  const auto i_ptr = t.level_ptr(0);
  const auto j_idx = t.level_idx(1);
  const auto j_ptr = t.level_ptr(1);
  const auto k_idx = t.level_idx(2);
  const auto vals = t.vals();
  std::vector<double> acc(static_cast<std::size_t>(rank));
  for (std::int64_t ni = 0; ni < t.num_nodes(0); ++ni) {
    double* arow = a->data() + i_idx[static_cast<std::size_t>(ni)] * rank;
    for (std::int64_t nj = i_ptr[static_cast<std::size_t>(ni)];
         nj < i_ptr[static_cast<std::size_t>(ni + 1)]; ++nj) {
      xzero(rank, acc.data(), 1);
      for (std::int64_t nk = j_ptr[static_cast<std::size_t>(nj)];
           nk < j_ptr[static_cast<std::size_t>(nj + 1)]; ++nk) {
        const double* crow =
            c.data() + k_idx[static_cast<std::size_t>(nk)] * rank;
        xaxpy(rank, vals[static_cast<std::size_t>(nk)], crow, 1, acc.data(),
              1);
      }
      const double* brow =
          b.data() + j_idx[static_cast<std::size_t>(nj)] * rank;
      xhad(rank, 1.0, acc.data(), 1, brow, 1, arow, 1);
    }
  }
}

void splatt_mttkrp4(const CsfTensor& t, const DenseTensor& b,
                    const DenseTensor& c, const DenseTensor& d,
                    DenseTensor* a) {
  SPTTN_CHECK(t.order() == 4);
  const std::int64_t rank = a->dim(1);
  a->zero();
  const auto i_idx = t.level_idx(0);
  const auto i_ptr = t.level_ptr(0);
  const auto j_idx = t.level_idx(1);
  const auto j_ptr = t.level_ptr(1);
  const auto k_idx = t.level_idx(2);
  const auto k_ptr = t.level_ptr(2);
  const auto l_idx = t.level_idx(3);
  const auto vals = t.vals();
  std::vector<double> acc_j(static_cast<std::size_t>(rank));
  std::vector<double> acc_k(static_cast<std::size_t>(rank));
  for (std::int64_t ni = 0; ni < t.num_nodes(0); ++ni) {
    double* arow = a->data() + i_idx[static_cast<std::size_t>(ni)] * rank;
    for (std::int64_t nj = i_ptr[static_cast<std::size_t>(ni)];
         nj < i_ptr[static_cast<std::size_t>(ni + 1)]; ++nj) {
      xzero(rank, acc_j.data(), 1);
      for (std::int64_t nk = j_ptr[static_cast<std::size_t>(nj)];
           nk < j_ptr[static_cast<std::size_t>(nj + 1)]; ++nk) {
        xzero(rank, acc_k.data(), 1);
        for (std::int64_t nl = k_ptr[static_cast<std::size_t>(nk)];
             nl < k_ptr[static_cast<std::size_t>(nk + 1)]; ++nl) {
          const double* drow =
              d.data() + l_idx[static_cast<std::size_t>(nl)] * rank;
          xaxpy(rank, vals[static_cast<std::size_t>(nl)], drow, 1,
                acc_k.data(), 1);
        }
        const double* crow =
            c.data() + k_idx[static_cast<std::size_t>(nk)] * rank;
        xhad(rank, 1.0, acc_k.data(), 1, crow, 1, acc_j.data(), 1);
      }
      const double* brow =
          b.data() + j_idx[static_cast<std::size_t>(nj)] * rank;
      xhad(rank, 1.0, acc_j.data(), 1, brow, 1, arow, 1);
    }
  }
}

void ttmc3_specialized(const CsfTensor& t, const DenseTensor& u,
                       const DenseTensor& v, DenseTensor* s) {
  SPTTN_CHECK(t.order() == 3);
  const std::int64_t r = u.dim(1);
  const std::int64_t sd = v.dim(1);
  SPTTN_CHECK(s->dim(1) == r && s->dim(2) == sd);
  s->zero();
  const auto i_idx = t.level_idx(0);
  const auto i_ptr = t.level_ptr(0);
  const auto j_idx = t.level_idx(1);
  const auto j_ptr = t.level_ptr(1);
  const auto k_idx = t.level_idx(2);
  const auto vals = t.vals();
  std::vector<double> x(static_cast<std::size_t>(sd));
  for (std::int64_t ni = 0; ni < t.num_nodes(0); ++ni) {
    double* si = s->data() + i_idx[static_cast<std::size_t>(ni)] * r * sd;
    for (std::int64_t nj = i_ptr[static_cast<std::size_t>(ni)];
         nj < i_ptr[static_cast<std::size_t>(ni + 1)]; ++nj) {
      xzero(sd, x.data(), 1);
      for (std::int64_t nk = j_ptr[static_cast<std::size_t>(nj)];
           nk < j_ptr[static_cast<std::size_t>(nj + 1)]; ++nk) {
        const double* vrow =
            v.data() + k_idx[static_cast<std::size_t>(nk)] * sd;
        xaxpy(sd, vals[static_cast<std::size_t>(nk)], vrow, 1, x.data(), 1);
      }
      const double* urow =
          u.data() + j_idx[static_cast<std::size_t>(nj)] * r;
      // S(i,:,:) += urow ⊗ x  (rank-1 update)
      xger(r, sd, 1.0, urow, 1, x.data(), 1, si, sd, 1);
    }
  }
}

void tttp3_specialized(const CsfTensor& t, const DenseTensor& u,
                       const DenseTensor& v, const DenseTensor& w,
                       std::span<double> out) {
  SPTTN_CHECK(t.order() == 3);
  SPTTN_CHECK(static_cast<std::int64_t>(out.size()) == t.nnz());
  const std::int64_t rank = u.dim(1);
  const auto i_idx = t.level_idx(0);
  const auto i_ptr = t.level_ptr(0);
  const auto j_idx = t.level_idx(1);
  const auto j_ptr = t.level_ptr(1);
  const auto k_idx = t.level_idx(2);
  const auto vals = t.vals();
  std::vector<double> uv(static_cast<std::size_t>(rank));
  for (std::int64_t ni = 0; ni < t.num_nodes(0); ++ni) {
    const double* urow = u.data() + i_idx[static_cast<std::size_t>(ni)] * rank;
    for (std::int64_t nj = i_ptr[static_cast<std::size_t>(ni)];
         nj < i_ptr[static_cast<std::size_t>(ni + 1)]; ++nj) {
      const double* vrow =
          v.data() + j_idx[static_cast<std::size_t>(nj)] * rank;
      xzero(rank, uv.data(), 1);
      xhad(rank, 1.0, urow, 1, vrow, 1, uv.data(), 1);
      for (std::int64_t nk = j_ptr[static_cast<std::size_t>(nj)];
           nk < j_ptr[static_cast<std::size_t>(nj + 1)]; ++nk) {
        const double* wrow =
            w.data() + k_idx[static_cast<std::size_t>(nk)] * rank;
        out[static_cast<std::size_t>(nk)] =
            vals[static_cast<std::size_t>(nk)] *
            xdot(rank, uv.data(), 1, wrow, 1);
      }
    }
  }
}

}  // namespace spttn
