// Public convenience API for SpTTN-Cyclops-style execution.
//
// Typical use:
//   auto bound = spttn::bind("A(i,r) = T(i,j,k)*B(j,r)*C(k,r)", T, {&B, &C});
//   spttn::Plan plan = spttn::plan_kernel(bound);
//   spttn::run_plan(bound, plan, &A, {});
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "exec/executor.hpp"
#include "tensor/coo_tensor.hpp"
#include "tensor/csf_tensor.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/einsum.hpp"

namespace spttn {

/// A kernel bound to concrete tensors: dimensions resolved, CSF built,
/// sparsity statistics extracted.
struct BoundKernel {
  Kernel kernel;
  const CooTensor* coo = nullptr;
  CsfTensor csf;
  SparsityStats stats;
  /// One slot per kernel input; the sparse slot is null.
  std::vector<const DenseTensor*> dense;
};

/// Parse `expr`, take `sparse` as the first input's tensor (or the input
/// named `sparse_name`), bind the remaining inputs to `dense_factors` in
/// order of appearance, infer all index dimensions, and build the CSF.
BoundKernel bind(const std::string& expr, const CooTensor& sparse,
                 std::vector<const DenseTensor*> dense_factors,
                 const std::string& sparse_name = "");

/// Parse `expr` and bind index dimensions only (no CSF build, no stats):
/// the piece of bind() shared with the serving layer, which binds many
/// kernels against one already-built CSF of the same sparse tensor.
/// `slots`, when non-null, receives one entry per kernel input (the sparse
/// slot is null), ready for ExecArgs::dense.
Kernel bind_kernel_dims(const std::string& expr, const CooTensor& sparse,
                        const std::vector<const DenseTensor*>& dense_factors,
                        std::vector<const DenseTensor*>* slots,
                        const std::string& sparse_name = "");

/// Plan with the paper's default metric (bounded buffer dim = 2 + most
/// independent dense loops + fewest modeled cache misses).
Plan plan_kernel(const BoundKernel& bound, const PlannerOptions& options = {});

/// Execute a plan. Exactly one of out_dense/out_sparse applies, depending
/// on the kernel's output sparsity. `num_threads` > 1 partitions the root
/// loop(s) over the process-wide thread pool (see ExecArgs::num_threads).
void run_plan(const BoundKernel& bound, const Plan& plan,
              DenseTensor* out_dense, std::span<double> out_sparse,
              int num_threads = 1);

/// Allocate a correctly shaped dense output for the bound kernel.
DenseTensor make_output(const BoundKernel& bound);

// --- Extensions beyond the paper's evaluated system ---

/// Result of searching over CSF storage permutations (the paper fixes the
/// CSF order to the expression order; its conclusion lists richer search
/// spaces as future work).
struct CsfSearchResult {
  std::vector<int> mode_order;  ///< chosen permutation of sparse modes
  Cost cost;                    ///< planner cost under that order
  std::string expr;             ///< rewritten kernel expression
};

/// Try every permutation of the sparse tensor's modes, re-plan, and return
/// the permutation whose optimal loop nest has the lowest model cost. The
/// caller can then rebuild the problem with permute_sparse_modes().
CsfSearchResult search_csf_orders(const std::string& expr,
                                  const CooTensor& sparse,
                                  std::vector<const DenseTensor*> dense,
                                  const PlannerOptions& options = {},
                                  const std::string& sparse_name = "");

/// Physically permute a COO tensor's modes (helper for applying a
/// CsfSearchResult).
CooTensor permute_sparse_modes(const CooTensor& coo,
                               const std::vector<int>& mode_order);

/// Rewrite a kernel expression with the sparse operand's indices permuted.
std::string rewrite_expr_with_csf_order(const std::string& expr,
                                        const std::vector<int>& mode_order,
                                        const std::string& sparse_name = "");

/// Measurement-based autotuning (paper Section 4: "Enumeration enables
/// autotuning"): time the DP-optimal and second-best loop nests of the
/// cheapest executable paths plus `sampled` random orders, return the
/// fastest. When `cache` is non-null the winner is recorded under the
/// kernel's signature (replacing any model-chosen plan), so subsequent
/// cache-aware planning and sessions over the same problem serve the
/// measured-fastest nest.
class KernelCache;
struct AutotuneResult {
  Plan best;
  double best_seconds = 0;
  int candidates = 0;
};
AutotuneResult autotune_kernel(const BoundKernel& bound,
                               const PlannerOptions& options = {},
                               int max_paths = 3, int sampled = 4,
                               int reps = 2, std::uint64_t seed = 1,
                               KernelCache* cache = nullptr);

}  // namespace spttn
