// TACO-style unfactorized baseline (paper Section 2.4.1).
//
// One loop nest over all kernel indices: CSF traversal of the sparse modes,
// then every dense index, multiplying all inputs in the innermost loop (with
// the loop-invariant partial products hoisted, as a compiler would). This is
// the default schedule of TACO/COMET the paper compares against.
#pragma once

#include <memory>
#include <span>

#include "tensor/csf_tensor.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/einsum.hpp"

namespace spttn {

/// Unfactorized all-at-once executor.
class UnfactorizedExecutor {
 public:
  /// Loop order: sparse modes in CSF order, then dense indices in order of
  /// first appearance (the order TACO derives from the expression).
  explicit UnfactorizedExecutor(const Kernel& kernel);
  ~UnfactorizedExecutor();
  UnfactorizedExecutor(UnfactorizedExecutor&&) noexcept;
  UnfactorizedExecutor& operator=(UnfactorizedExecutor&&) noexcept;

  /// Execute; outputs are zeroed first. `dense` has one slot per input.
  void execute(const CsfTensor& sparse,
               std::span<const DenseTensor* const> dense,
               DenseTensor* out_dense, std::span<double> out_sparse);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace spttn
