#include "exec/reference.hpp"

#include "util/error.hpp"

namespace spttn {

void reference_execute(const Kernel& kernel, const CooTensor& sparse,
                       std::span<const DenseTensor* const> dense,
                       DenseTensor* out_dense, std::span<double> out_sparse) {
  SPTTN_CHECK(kernel.dims_bound());
  SPTTN_CHECK(static_cast<int>(dense.size()) == kernel.num_inputs());
  const bool sparse_out = kernel.output_is_sparse();
  if (sparse_out) {
    SPTTN_CHECK(static_cast<std::int64_t>(out_sparse.size()) == sparse.nnz());
    for (double& v : out_sparse) v = 0;
  } else {
    SPTTN_CHECK(out_dense != nullptr);
    out_dense->zero();
  }

  const std::vector<int> dense_ids = kernel.dense_only_indices().to_vector();
  std::vector<std::int64_t> idx_val(
      static_cast<std::size_t>(kernel.num_indices()), 0);

  // Multi-index scratch for tensor accesses.
  std::vector<std::int64_t> access;

  const auto input_value = [&](int i) -> double {
    const TensorRef& ref = kernel.input(i);
    access.clear();
    for (int id : ref.idx) {
      access.push_back(idx_val[static_cast<std::size_t>(id)]);
    }
    return dense[static_cast<std::size_t>(i)]->at(access);
  };

  for (std::int64_t e = 0; e < sparse.nnz(); ++e) {
    const auto coord = sparse.coord(e);
    for (int l = 0; l < sparse.order(); ++l) {
      idx_val[static_cast<std::size_t>(
          kernel.sparse_ref().idx[static_cast<std::size_t>(l)])] =
          coord[static_cast<std::size_t>(l)];
    }
    // Recurse over the dense-only indices.
    const auto loop = [&](auto&& self, std::size_t level) -> void {
      if (level == dense_ids.size()) {
        double prod = sparse.value(e);
        for (int i = 0; i < kernel.num_inputs(); ++i) {
          if (i == kernel.sparse_input()) continue;
          prod *= input_value(i);
        }
        if (sparse_out) {
          out_sparse[static_cast<std::size_t>(e)] += prod;
        } else {
          access.clear();
          for (int id : kernel.output().idx) {
            access.push_back(idx_val[static_cast<std::size_t>(id)]);
          }
          out_dense->at(access) += prod;
        }
        return;
      }
      const int id = dense_ids[level];
      for (std::int64_t v = 0; v < kernel.index_dim(id); ++v) {
        idx_val[static_cast<std::size_t>(id)] = v;
        self(self, level + 1);
      }
    };
    loop(loop, 0);
  }
}

}  // namespace spttn
