#include "exec/pairwise.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/error.hpp"

namespace spttn {

namespace {

/// Element-sparse tensor keyed by mixed-radix packed coordinates.
struct SparseTemp {
  std::vector<int> ids;                      ///< index ids, fixed order
  std::vector<std::int64_t> radix_stride;    ///< per-id packing stride
  std::unordered_map<std::int64_t, double> entries;

  void init(const Kernel& kernel, const std::vector<int>& index_ids) {
    ids = index_ids;
    radix_stride.resize(ids.size());
    std::int64_t stride = 1;
    for (std::size_t m = ids.size(); m-- > 0;) {
      radix_stride[m] = stride;
      const double next = static_cast<double>(stride) *
                          static_cast<double>(kernel.index_dim(ids[m]));
      SPTTN_CHECK_MSG(next < 9.0e18, "intermediate key space overflows");
      stride = static_cast<std::int64_t>(kernel.index_dim(ids[m])) * stride;
    }
  }
};

/// One side of a pairwise contraction, adapted to a common interface:
/// iterate (coordinates, value) entries.
struct OperandView {
  // Exactly one of these is active.
  const SparseTemp* temp = nullptr;
  const CooTensor* coo = nullptr;
  const DenseTensor* dense_tensor = nullptr;
  std::vector<int> ids;  ///< index ids of this operand

  bool is_dense() const { return dense_tensor != nullptr; }
  std::int64_t sparse_entry_count() const {
    if (temp != nullptr) return static_cast<std::int64_t>(temp->entries.size());
    if (coo != nullptr) return coo->nnz();
    return 0;
  }
};

}  // namespace

PairwiseStats pairwise_execute(const Kernel& kernel,
                               const ContractionPath& path,
                               const CooTensor& sparse,
                               std::span<const DenseTensor* const> dense,
                               DenseTensor* out_dense,
                               std::span<double> out_sparse,
                               std::int64_t max_entries) {
  SPTTN_CHECK(kernel.dims_bound());
  PairwiseStats stats;
  const bool sparse_out = kernel.output_is_sparse();
  if (sparse_out) {
    SPTTN_CHECK(static_cast<std::int64_t>(out_sparse.size()) == sparse.nnz());
    for (double& v : out_sparse) v = 0;
  } else {
    SPTTN_CHECK(out_dense != nullptr);
    out_dense->zero();
  }

  // Pattern lookup for sparse outputs: packed coordinate -> nonzero slot.
  std::unordered_map<std::int64_t, std::int64_t> pattern_pos;
  std::vector<std::int64_t> sparse_radix(
      static_cast<std::size_t>(sparse.order()));
  {
    std::int64_t stride = 1;
    for (std::size_t m = sparse_radix.size(); m-- > 0;) {
      sparse_radix[m] = stride;
      stride *= sparse.dim(static_cast<int>(m));
    }
  }
  const auto pack_sparse_coord = [&](std::span<const std::int64_t> c) {
    std::int64_t key = 0;
    for (std::size_t m = 0; m < c.size(); ++m) key += c[m] * sparse_radix[m];
    return key;
  };
  if (sparse_out) {
    pattern_pos.reserve(static_cast<std::size_t>(sparse.nnz()) * 2);
    for (std::int64_t e = 0; e < sparse.nnz(); ++e) {
      pattern_pos.emplace(pack_sparse_coord(sparse.coord(e)), e);
    }
  }

  std::vector<SparseTemp> temps(static_cast<std::size_t>(path.num_terms()));
  std::vector<std::int64_t> idx_val(
      static_cast<std::size_t>(kernel.num_indices()), 0);

  const auto operand_view = [&](const PathOperand& op) {
    OperandView v;
    if (op.kind == PathOperand::Kind::kIntermediate) {
      v.temp = &temps[static_cast<std::size_t>(op.id)];
      v.ids = v.temp->ids;
      return v;
    }
    if (op.id == kernel.sparse_input()) {
      v.coo = &sparse;
      v.ids = kernel.sparse_ref().idx;
      return v;
    }
    v.dense_tensor = dense[static_cast<std::size_t>(op.id)];
    SPTTN_CHECK(v.dense_tensor != nullptr);
    v.ids = kernel.input(op.id).idx;
    return v;
  };

  for (int t = 0; t < path.num_terms(); ++t) {
    const PathTerm& term = path.term(t);
    OperandView a = operand_view(term.lhs);
    OperandView b = operand_view(term.rhs);
    // Keep a sparse operand (if any) on the left to drive iteration.
    if (a.is_dense() && !b.is_dense()) std::swap(a, b);

    const bool last = (t + 1 == path.num_terms());
    SparseTemp* out_temp = nullptr;
    if (!last) {
      out_temp = &temps[static_cast<std::size_t>(t)];
      out_temp->init(kernel, term.out.to_vector());
    }
    const std::vector<int> out_ids =
        last ? std::vector<int>() : out_temp->ids;

    // Emit one multiply-accumulate with the currently bound idx_val.
    const auto emit = [&](double value) {
      ++stats.total_scalar_ops;
      if (!last) {
        std::int64_t key = 0;
        for (std::size_t m = 0; m < out_ids.size(); ++m) {
          key += idx_val[static_cast<std::size_t>(out_ids[m])] *
                 out_temp->radix_stride[m];
        }
        out_temp->entries[key] += value;
        SPTTN_CHECK_MSG(
            static_cast<std::int64_t>(out_temp->entries.size()) <=
                max_entries,
            "pairwise intermediate exceeds memory cap ("
                << max_entries << " entries) — the baseline's OOM condition");
        return;
      }
      if (sparse_out) {
        std::int64_t key = 0;
        for (int m = 0; m < sparse.order(); ++m) {
          key += idx_val[static_cast<std::size_t>(
                     kernel.sparse_ref().idx[static_cast<std::size_t>(m)])] *
                 sparse_radix[static_cast<std::size_t>(m)];
        }
        const auto it = pattern_pos.find(key);
        SPTTN_CHECK(it != pattern_pos.end());
        out_sparse[static_cast<std::size_t>(it->second)] += value;
        return;
      }
      std::vector<std::int64_t> access;
      access.reserve(kernel.output().idx.size());
      for (int id : kernel.output().idx) {
        access.push_back(idx_val[static_cast<std::size_t>(id)]);
      }
      out_dense->at(access) += value;
    };

    // Iterate the free (non-shared-with-a) indices of b densely.
    const auto iterate_b_free = [&](auto&& self, const std::vector<int>& free,
                                    std::size_t level, double av) -> void {
      if (level == free.size()) {
        double bv = 1.0;
        if (b.is_dense()) {
          std::vector<std::int64_t> access;
          access.reserve(b.ids.size());
          for (int id : b.ids) {
            access.push_back(idx_val[static_cast<std::size_t>(id)]);
          }
          bv = b.dense_tensor->at(access);
        }
        emit(av * bv);
        return;
      }
      const int id = free[level];
      for (std::int64_t v = 0; v < kernel.index_dim(id); ++v) {
        idx_val[static_cast<std::size_t>(id)] = v;
        self(self, free, level + 1, av);
      }
    };

    // Shared ids between the operands (for sparse-sparse joins).
    std::vector<int> shared;
    for (int id : a.ids) {
      if (std::find(b.ids.begin(), b.ids.end(), id) != b.ids.end()) {
        shared.push_back(id);
      }
    }
    std::vector<int> b_free;
    for (int id : b.ids) {
      if (std::find(a.ids.begin(), a.ids.end(), id) == a.ids.end()) {
        b_free.push_back(id);
      }
    }

    const auto for_each_a = [&](const auto& fn) {
      if (a.coo != nullptr) {
        for (std::int64_t e = 0; e < a.coo->nnz(); ++e) {
          const auto c = a.coo->coord(e);
          for (std::size_t m = 0; m < a.ids.size(); ++m) {
            idx_val[static_cast<std::size_t>(a.ids[m])] = c[m];
          }
          fn(a.coo->value(e));
        }
      } else if (a.temp != nullptr) {
        for (const auto& [key, value] : a.temp->entries) {
          std::int64_t rem = key;
          for (std::size_t m = 0; m < a.ids.size(); ++m) {
            idx_val[static_cast<std::size_t>(a.ids[m])] =
                rem / a.temp->radix_stride[m];
            rem %= a.temp->radix_stride[m];
          }
          fn(value);
        }
      } else {
        // Dense-dense term: iterate a's full index space.
        const auto loop = [&](auto&& self, std::size_t level) -> void {
          if (level == a.ids.size()) {
            std::vector<std::int64_t> access;
            access.reserve(a.ids.size());
            for (int id : a.ids) {
              access.push_back(idx_val[static_cast<std::size_t>(id)]);
            }
            fn(a.dense_tensor->at(access));
            return;
          }
          const int id = a.ids[level];
          for (std::int64_t v = 0; v < kernel.index_dim(id); ++v) {
            idx_val[static_cast<std::size_t>(id)] = v;
            self(self, level + 1);
          }
        };
        loop(loop, 0);
      }
    };

    if (!b.is_dense()) {
      // Sparse-sparse join: index b's entries by shared-coordinate key.
      std::vector<std::int64_t> shared_radix(shared.size());
      {
        std::int64_t stride = 1;
        for (std::size_t m = shared.size(); m-- > 0;) {
          shared_radix[m] = stride;
          stride *= kernel.index_dim(shared[m]);
        }
      }
      const auto shared_key = [&] {
        std::int64_t key = 0;
        for (std::size_t m = 0; m < shared.size(); ++m) {
          key += idx_val[static_cast<std::size_t>(shared[m])] *
                 shared_radix[m];
        }
        return key;
      };
      // entry -> (packed free coords of b, value)
      struct BEntry {
        std::vector<std::int64_t> free_vals;
        double value;
      };
      std::unordered_multimap<std::int64_t, BEntry> b_index;
      {
        OperandView bb = b;
        std::swap(a, bb);  // reuse for_each_a machinery on b
        for_each_a([&](double value) {
          BEntry e;
          e.free_vals.reserve(b_free.size());
          for (int id : b_free) {
            e.free_vals.push_back(idx_val[static_cast<std::size_t>(id)]);
          }
          e.value = value;
          b_index.emplace(shared_key(), std::move(e));
        });
        std::swap(a, bb);
      }
      for_each_a([&](double av) {
        auto [lo, hi] = b_index.equal_range(shared_key());
        for (auto it = lo; it != hi; ++it) {
          for (std::size_t m = 0; m < b_free.size(); ++m) {
            idx_val[static_cast<std::size_t>(b_free[m])] =
                it->second.free_vals[m];
          }
          emit(av * it->second.value);
        }
      });
    } else {
      for_each_a(
          [&](double av) { iterate_b_free(iterate_b_free, b_free, 0, av); });
    }

    stats.peak_intermediate_entries =
        std::max(stats.peak_intermediate_entries,
                 out_temp == nullptr
                     ? 0
                     : static_cast<std::int64_t>(out_temp->entries.size()));
    // Free consumed intermediates eagerly, like a real runtime would.
    const auto release = [&](const PathOperand& op) {
      if (op.kind == PathOperand::Kind::kIntermediate) {
        temps[static_cast<std::size_t>(op.id)].entries.clear();
      }
    };
    release(term.lhs);
    release(term.rhs);
  }
  return stats;
}

namespace {

/// Materialized entry count of a path operand under pairwise execution.
double operand_entries(const Kernel& kernel, const ContractionPath& path,
                       const PathOperand& op, bool carries_sparse,
                       const SparsityStats& stats) {
  if (op.kind == PathOperand::Kind::kInput &&
      op.id == kernel.sparse_input()) {
    return static_cast<double>(stats.prefix_nnz(stats.order()));
  }
  // Dense inputs and dense-derived intermediates span their full space;
  // sparse-derived intermediates keep the pattern projection on their
  // sparse modes times dense extents.
  const IndexSet sparse_part = op.iset & kernel.sparse_modes();
  double entries = 1;
  if (carries_sparse && !sparse_part.empty()) {
    std::uint64_t mask = 0;
    for (int id : sparse_part.elements()) {
      mask |= (std::uint64_t{1} << kernel.csf_level(id));
    }
    entries *= static_cast<double>(stats.projection_nnz(mask));
    for (int id : (op.iset - sparse_part).elements()) {
      entries *= static_cast<double>(kernel.index_dim(id));
    }
    return entries;
  }
  for (int id : op.iset.elements()) {
    entries *= static_cast<double>(kernel.index_dim(id));
  }
  (void)path;
  return entries;
}

}  // namespace

double pairwise_path_flops(const Kernel& kernel, const ContractionPath& path,
                           const SparsityStats& stats) {
  // Track which operands carry sparse structure through the path.
  std::vector<bool> term_carries(static_cast<std::size_t>(path.num_terms()));
  const auto carries = [&](const PathOperand& op) {
    if (op.kind == PathOperand::Kind::kInput) {
      return op.id == kernel.sparse_input();
    }
    return static_cast<bool>(term_carries[static_cast<std::size_t>(op.id)]);
  };
  double total = 0;
  for (int t = 0; t < path.num_terms(); ++t) {
    const PathTerm& term = path.term(t);
    const bool lhs_sparse = carries(term.lhs);
    const bool rhs_sparse = carries(term.rhs);
    term_carries[static_cast<std::size_t>(t)] = lhs_sparse || rhs_sparse;
    const double le =
        operand_entries(kernel, path, term.lhs, lhs_sparse, stats);
    const double re =
        operand_entries(kernel, path, term.rhs, rhs_sparse, stats);
    // The smaller side drives iteration; the other side contributes its
    // free-index extents per driving entry (sparse-sparse joins multiply
    // matching entries, approximated by the shared-space ratio).
    const PathOperand& drive = le <= re ? term.lhs : term.rhs;
    const PathOperand& other = le <= re ? term.rhs : term.lhs;
    double free_extent = 1;
    for (int id : (other.iset - drive.iset).elements()) {
      free_extent *= static_cast<double>(kernel.index_dim(id));
    }
    double matches = free_extent;
    if ((le <= re ? rhs_sparse : lhs_sparse)) {
      // Sparse other side: expected matches per driving entry.
      double shared = 1;
      for (int id : (other.iset & drive.iset).elements()) {
        shared *= static_cast<double>(kernel.index_dim(id));
      }
      matches = std::max(
          1.0, (le <= re ? re : le) / std::max(1.0, shared));
    }
    total += 2.0 * std::min(le, re) * matches;
  }
  return total;
}

ContractionPath pairwise_best_path(const Kernel& kernel,
                                   const SparsityStats& stats) {
  std::vector<ContractionPath> all = enumerate_paths(kernel);
  SPTTN_CHECK(!all.empty());
  std::size_t best = 0;
  double best_flops = pairwise_path_flops(kernel, all[0], stats);
  for (std::size_t i = 1; i < all.size(); ++i) {
    const double f = pairwise_path_flops(kernel, all[i], stats);
    if (f < best_flops) {
      best_flops = f;
      best = i;
    }
  }
  return all[best];
}

}  // namespace spttn
