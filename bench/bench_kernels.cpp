// Microbenchmarks of the internal BLAS-style kernels the executor offloads
// inner loops to (google-benchmark). Not a paper figure; used to sanity-
// check that the offload hooks sit on reasonably fast primitives.
#include <benchmark/benchmark.h>

#include <vector>

#include "exec/kernels.hpp"
#include "util/rng.hpp"

namespace {

std::vector<double> rand_vec(std::size_t n) {
  spttn::Rng rng(n);
  std::vector<double> v(n);
  for (double& x : v) x = 2 * rng.next_double() - 1;
  return v;
}

void BM_xaxpy(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  const auto x = rand_vec(static_cast<std::size_t>(n));
  auto y = rand_vec(static_cast<std::size_t>(n));
  for (auto _ : state) {
    spttn::xaxpy(n, 1.000001, x.data(), 1, y.data(), 1);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_xaxpy)->Range(1 << 4, 1 << 12);

void BM_xdot(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  const auto x = rand_vec(static_cast<std::size_t>(n));
  const auto y = rand_vec(static_cast<std::size_t>(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(spttn::xdot(n, x.data(), 1, y.data(), 1));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_xdot)->Range(1 << 4, 1 << 12);

void BM_xger(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  const auto x = rand_vec(static_cast<std::size_t>(n));
  const auto y = rand_vec(static_cast<std::size_t>(n));
  auto a = rand_vec(static_cast<std::size_t>(n * n));
  for (auto _ : state) {
    spttn::xger(n, n, 1.0, x.data(), 1, y.data(), 1, a.data(), n, 1);
    benchmark::DoNotOptimize(a.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_xger)->Range(1 << 4, 1 << 8);

void BM_xgemm(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  const auto a = rand_vec(static_cast<std::size_t>(n * n));
  const auto b = rand_vec(static_cast<std::size_t>(n * n));
  auto c = rand_vec(static_cast<std::size_t>(n * n));
  for (auto _ : state) {
    spttn::xgemm(n, n, n, 1.0, a.data(), n, 1, b.data(), n, 1, c.data(), n,
                 1);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_xgemm)->Range(1 << 4, 1 << 7);

}  // namespace

BENCHMARK_MAIN();
