// Execution-tier benchmark: the four paper kernel families (MTTKRP-3/4,
// TTMc-3, TTTP-3) timed on ONE planned FusedExecutor under both tiers —
// the recursive interpreter and the lowered flat program — against the
// hand-specialized kernels of specialized.cpp as the tight-loop ceiling.
// The lowered column is the tier the KernelCache serves by default; the
// specialized column bounds how much headroom remains.
//
//   bench_kernels                     # table on stdout
//   bench_kernels --json=out.json     # also emit the machine-readable run
//                                     # (schema shared with bench_serve;
//                                     # BENCH_kernels.json is a checked-in
//                                     # Release run)
#include <fstream>

#include "bench_common.hpp"
#include "util/cli.hpp"

using namespace spttn;
using namespace spttn::bench;

namespace {

struct KernelRow {
  std::string kernel;
  std::int64_t nnz = 0;
  int lowered_regions = 0;
  double interp_s = 0;
  double lowered_s = 0;
  double spec_s = 0;  // 0 when no specialized implementation applies
};

/// Time one executor under a tier; the plan (and the partitioning it
/// implies) is shared across tiers so the comparison isolates dispatch.
double time_tier(FusedExecutor& exec, const Problem& p, Output& o,
                 ExecTier tier, int reps) {
  ExecArgs args;
  args.sparse = &p.bound.csf;
  args.dense = p.bound.dense;
  args.out_dense = o.sparse_vals.empty() ? &o.dense : nullptr;
  args.out_sparse = o.sparse_vals;
  args.tier = tier;
  return time_median([&] { exec.execute(args); }, reps);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_kernels");
  const auto* dim = cli.add_int("dim", 96, "sparse index extents");
  const auto* rank = cli.add_int("rank", 32, "dense ranks");
  const auto* nnz = cli.add_int("nnz", 300000, "sparse nonzeros (pre-dedup)");
  const auto* reps = cli.add_int("reps", 5, "timing repetitions");
  const auto* seed = cli.add_int("seed", 17, "generator seed");
  const std::string* json =
      cli.add_string("json", "", "also write results to this JSON file");
  cli.parse(argc, argv);

  const std::int64_t d = *dim;
  const auto dims3 = std::vector<std::int64_t>{d, d, d};
  const auto dims4 = std::vector<std::int64_t>{d / 4, d / 4, d / 4, d / 4};
  const std::vector<std::pair<std::string, std::int64_t>> ranks = {
      {"r", *rank}, {"s", *rank}};

  struct Spec {
    std::string name;
    std::string expr;
    const std::vector<std::int64_t>* dims;
  };
  const std::vector<Spec> specs = {
      {"mttkrp3", mttkrp3_expr(), &dims3},
      {"mttkrp4", mttkrp4_expr(), &dims4},
      {"ttmc3", ttmc3_expr(), &dims3},
      {"tttp3", tttp3_expr(), &dims3},
  };

  std::vector<KernelRow> rows;
  Table table(strfmt("Execution tiers — interpreted vs lowered vs "
                     "specialized, R=%lld",
                     static_cast<long long>(*rank)));
  table.set_header({"kernel", "nnz", "regions", "interp[s]", "lowered[s]",
                    "spec[s]", "lowered vs interp", "spec vs lowered"});
  for (const Spec& s : specs) {
    Rng rng(static_cast<std::uint64_t>(*seed) ^
            hash_mix(s.name.size() * 31));
    CooTensor t = random_coo(*s.dims, *nnz, rng);
    auto p = make_problem(s.expr, std::move(t), ranks, rng);

    const Plan plan = plan_kernel(p->bound, {});
    FusedExecutor exec(p->kernel(), plan);
    Output o = Output::make(*p);

    KernelRow row;
    row.kernel = s.name;
    row.nnz = p->sparse.nnz();
    row.lowered_regions = exec.lowered_regions();
    const int r = static_cast<int>(*reps);
    row.interp_s = time_tier(exec, *p, o, ExecTier::kInterpret, r);
    row.lowered_s = time_tier(exec, *p, o, ExecTier::kLowered, r);

    // The hand-specialized ceilings (specialized.cpp).
    if (s.name == "mttkrp3") {
      row.spec_s = time_median(
          [&] {
            splatt_mttkrp3(p->bound.csf, p->factors[0], p->factors[1],
                           &o.dense);
          },
          r);
    } else if (s.name == "mttkrp4") {
      row.spec_s = time_median(
          [&] {
            splatt_mttkrp4(p->bound.csf, p->factors[0], p->factors[1],
                           p->factors[2], &o.dense);
          },
          r);
    } else if (s.name == "ttmc3") {
      row.spec_s = time_median(
          [&] {
            ttmc3_specialized(p->bound.csf, p->factors[0], p->factors[1],
                              &o.dense);
          },
          r);
    } else if (s.name == "tttp3") {
      row.spec_s = time_median(
          [&] {
            tttp3_specialized(p->bound.csf, p->factors[0], p->factors[1],
                              p->factors[2], o.sparse_vals);
          },
          r);
    }

    const auto ratio = [](double base, double ours) -> std::string {
      if (base <= 0 || ours <= 0) return "-";
      return strfmt("%.2fx", base / ours);
    };
    table.add_row({row.kernel,
                   human_count(static_cast<double>(row.nnz)),
                   std::to_string(row.lowered_regions),
                   strfmt("%.4f", row.interp_s),
                   strfmt("%.4f", row.lowered_s),
                   row.spec_s > 0 ? strfmt("%.4f", row.spec_s) : "-",
                   ratio(row.interp_s, row.lowered_s),
                   ratio(row.lowered_s, row.spec_s)});
    rows.push_back(row);
  }
  table.add_note("one plan per kernel; both tiers share the executor, the "
                 "partitioning, and the accumulation order (bit-identical "
                 "outputs)");
  table.print(std::cout);

  if (!json->empty()) {
    std::ofstream os(*json);
    os << "{\n  \"bench\": \"bench_kernels\",\n  \"unit\": \"s\",\n"
       << "  \"dim\": " << d << ",\n  \"rank\": " << *rank
       << ",\n  \"reps\": " << *reps << ",\n  \"seed\": " << *seed
       << ",\n  \"kernels\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const KernelRow& r = rows[i];
      os << "    {\"kernel\": \"" << r.kernel << "\", \"nnz\": " << r.nnz
         << ", \"lowered_regions\": " << r.lowered_regions
         << ", \"interpreted_s\": " << strfmt("%.6f", r.interp_s)
         << ", \"lowered_s\": " << strfmt("%.6f", r.lowered_s)
         << ", \"specialized_s\": "
         << (r.spec_s > 0 ? strfmt("%.6f", r.spec_s) : std::string("null"))
         << ", \"lowered_speedup\": "
         << strfmt("%.3f", r.lowered_s > 0 ? r.interp_s / r.lowered_s : 0)
         << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::cout << "wrote " << *json << "\n";
  }
  return 0;
}
