// Sustained-load serving bench: concurrent client threads fire mixed
// kernel-family requests through Sessions backed by one shared KernelCache
// and report per-kernel latency percentiles (p50/p99/max) plus aggregate
// throughput — the fleet-serving view of the paper's search-once /
// execute-many claim. Persists machine-readable rows to BENCH_serve.json
// (--json=path), same schema family as BENCH_verify.json.
//
// Every client runs its requests synchronously on its own thread (the
// request is the unit of parallelism, matching Session::submit's model);
// the cache is warmed by the prepare phase, so the measured latencies are
// pure serve-path: signature hash, cache probe, and the compiled nest.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <thread>
#include <vector>

#include "analysis/kernel_suite.hpp"
#include "bench_common.hpp"
#include "serve/kernel_cache.hpp"
#include "serve/session.hpp"
#include "util/cli.hpp"

using namespace spttn;
using namespace spttn::bench;

namespace {

double percentile(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

struct Row {
  std::string kernel;
  std::size_t requests = 0;
  double p50_us = 0;
  double p99_us = 0;
  double max_us = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_serve");
  const std::int64_t* clients =
      cli.add_int("clients", 4, "concurrent client threads");
  const std::int64_t* requests =
      cli.add_int("requests", 200, "requests per client");
  const std::int64_t* seed = cli.add_int("seed", 42, "random tensor seed");
  const std::string* json =
      cli.add_string("json", "BENCH_serve.json",
                     "output path for machine-readable rows ('' = skip)");
  cli.parse(argc, argv);

  // Mixed families: MTTKRP (dense output), TTMc (larger intermediate),
  // TTTP (sparse output) — the three shapes a serving mix alternates over.
  const std::vector<std::string> wanted = {"mttkrp3", "ttmc3", "tttp3"};
  std::vector<std::unique_ptr<SuiteInstance>> instances;
  for (const SuiteKernel& sk : paper_kernel_suite()) {
    if (std::find(wanted.begin(), wanted.end(), sk.name) != wanted.end()) {
      instances.push_back(
          make_suite_instance(sk, static_cast<std::uint64_t>(*seed)));
    }
  }
  const std::size_t nk = instances.size();

  // One shared cache, one session per bound structure; prepare warms every
  // plan so the measurement loop never searches.
  KernelCache cache;
  std::vector<std::unique_ptr<Session>> sessions;
  std::vector<int> kernel_ids;
  std::vector<std::string> names;
  for (std::size_t k = 0; k < nk; ++k) {
    auto s = std::make_unique<Session>(instances[k]->sparse, PlannerOptions{},
                                       &cache);
    // Factors in order of appearance; dense_slots() holds a null at the
    // sparse operand's position, which prepare() re-derives itself.
    std::vector<const DenseTensor*> slots;
    for (const DenseTensor* d : instances[k]->dense_slots()) {
      if (d != nullptr) slots.push_back(d);
    }
    kernel_ids.push_back(
        s->prepare(instances[k]->bound.kernel.to_string(), slots));
    names.push_back(wanted.size() == nk ? wanted[k] : "kernel");
    sessions.push_back(std::move(s));
  }

  const int n_clients = static_cast<int>(*clients);
  const std::size_t per_client = static_cast<std::size_t>(*requests);
  // lat[client][kernel] = request latencies in microseconds.
  std::vector<std::vector<std::vector<double>>> lat(
      static_cast<std::size_t>(n_clients),
      std::vector<std::vector<double>>(nk));

  const auto wall0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < n_clients; ++c) {
    threads.emplace_back([&, c] {
      // Per-client outputs: requests are independent, like real clients.
      std::vector<DenseTensor> out_dense(nk);
      std::vector<std::vector<double>> out_sparse(nk);
      for (std::size_t k = 0; k < nk; ++k) {
        if (sessions[k]->kernel(kernel_ids[k]).output_is_sparse()) {
          out_sparse[k].assign(
              static_cast<std::size_t>(instances[k]->sparse.nnz()), 0.0);
        } else {
          out_dense[k] = sessions[k]->make_output(kernel_ids[k]);
        }
      }
      for (std::size_t r = 0; r < per_client; ++r) {
        const std::size_t k = (r + static_cast<std::size_t>(c)) % nk;
        const bool sparse_out =
            sessions[k]->kernel(kernel_ids[k]).output_is_sparse();
        const auto t0 = std::chrono::steady_clock::now();
        sessions[k]->run(kernel_ids[k],
                         sparse_out ? nullptr : &out_dense[k],
                         out_sparse[k]);
        const auto t1 = std::chrono::steady_clock::now();
        lat[static_cast<std::size_t>(c)][k].push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
      }
    });
  }
  for (auto& th : threads) th.join();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall0)
                            .count();

  Table table(strfmt("Sustained serving load: %d client(s) x %zu request(s)",
                     n_clients, per_client));
  table.set_header({"kernel", "requests", "p50[us]", "p99[us]", "max[us]"});
  std::vector<Row> rows;
  std::vector<double> all;
  for (std::size_t k = 0; k < nk; ++k) {
    std::vector<double> merged;
    for (int c = 0; c < n_clients; ++c) {
      const auto& v = lat[static_cast<std::size_t>(c)][k];
      merged.insert(merged.end(), v.begin(), v.end());
    }
    all.insert(all.end(), merged.begin(), merged.end());
    std::sort(merged.begin(), merged.end());
    Row row;
    row.kernel = names[k];
    row.requests = merged.size();
    row.p50_us = percentile(merged, 0.50);
    row.p99_us = percentile(merged, 0.99);
    row.max_us = merged.empty() ? 0.0 : merged.back();
    rows.push_back(row);
    table.add_row({row.kernel, strfmt("%zu", row.requests),
                   strfmt("%.1f", row.p50_us), strfmt("%.1f", row.p99_us),
                   strfmt("%.1f", row.max_us)});
  }
  std::sort(all.begin(), all.end());
  Row total;
  total.kernel = "ALL";
  total.requests = all.size();
  total.p50_us = percentile(all, 0.50);
  total.p99_us = percentile(all, 0.99);
  total.max_us = all.empty() ? 0.0 : all.back();
  table.add_row({total.kernel, strfmt("%zu", total.requests),
                 strfmt("%.1f", total.p50_us), strfmt("%.1f", total.p99_us),
                 strfmt("%.1f", total.max_us)});
  const auto counters = cache.counters();
  const double rps = wall_s > 0 ? static_cast<double>(all.size()) / wall_s : 0;
  table.add_note(strfmt(
      "throughput %.0f req/s; cache: %llu hits, %llu planner searches",
      rps, static_cast<unsigned long long>(counters.hits),
      static_cast<unsigned long long>(counters.planned)));
  table.print(std::cout);

  if (!json->empty()) {
    std::ofstream os(*json);
    os << "{\n  \"bench\": \"bench_serve\",\n  \"unit\": \"us\",\n"
       << "  \"clients\": " << n_clients << ",\n  \"requests_per_client\": "
       << per_client << ",\n  \"seed\": " << *seed
       << ",\n  \"throughput_rps\": " << strfmt("%.1f", rps)
       << ",\n  \"planner_searches\": " << counters.planned
       << ",\n  \"kernels\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      os << "    {\"kernel\": \"" << r.kernel << "\", \"requests\": "
         << r.requests << ", \"p50_us\": " << strfmt("%.2f", r.p50_us)
         << ", \"p99_us\": " << strfmt("%.2f", r.p99_us)
         << ", \"max_us\": " << strfmt("%.2f", r.max_us) << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::cout << "wrote " << *json << "\n";
  }
  return 0;
}
