// Section 7 TTMc results: single-thread order-3 and order-4 TTMc versus
// TACO (unfactorized), SparseLNR (partially fused) and CTF (pairwise).
// Paper: 29.3x/125.9x over TACO, 4x-110.5x over SparseLNR, 0.8x-12.6x over
// CTF; TACO/SparseLNR only run at all on two of the tensors. The SpTTN
// column is reported per execution tier (interpreted and lowered) so the
// tier gap is visible on the paper's own kernels; --json emits the run in
// the bench_serve/bench_kernels schema.
#include <fstream>

#include "bench_common.hpp"
#include "util/cli.hpp"

using namespace spttn;
using namespace spttn::bench;

namespace {

struct JsonRow {
  std::string table;
  std::string tensor;
  std::int64_t nnz = 0;
  double interp_s = 0;
  double lowered_s = 0;
  double taco_s = 0;
  double lnr_s = 0;
};

void write_json(const std::string& path, std::int64_t rank,
                std::int64_t seed, const std::vector<JsonRow>& rows) {
  std::ofstream os(path);
  os << "{\n  \"bench\": \"bench_ttmc\",\n  \"unit\": \"s\",\n"
     << "  \"rank\": " << rank << ",\n  \"seed\": " << seed
     << ",\n  \"kernels\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& r = rows[i];
    const auto opt = [](double s) {
      return s > 0 ? strfmt("%.6f", s) : std::string("null");
    };
    os << "    {\"kernel\": \"" << r.table << "\", \"tensor\": \""
       << r.tensor << "\", \"nnz\": " << r.nnz
       << ", \"interpreted_s\": " << opt(r.interp_s)
       << ", \"lowered_s\": " << opt(r.lowered_s)
       << ", \"taco_s\": " << opt(r.taco_s)
       << ", \"sparselnr_s\": " << opt(r.lnr_s) << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_ttmc");
  const auto* rank = cli.add_int("rank", 16, "dense ranks R=S(=T)");
  const auto* scale = cli.add_double("scale", 0.002, "tensor scale");
  const auto* reps = cli.add_int("reps", 3, "timing repetitions");
  const auto* seed = cli.add_int("seed", 11, "generator seed");
  const std::string* json =
      cli.add_string("json", "", "also write results to this JSON file");
  cli.parse(argc, argv);

  std::vector<JsonRow> jrows;

  Table t3(strfmt("Section 7 — order-3 TTMc, R=S=%lld",
                  static_cast<long long>(*rank)));
  t3.set_header({"tensor", "nnz", "SpTTN-int[s]", "SpTTN-low[s]", "TACO[s]",
                 "SparseLNR[s]", "CTF[s]", "tier", "vs TACO", "vs SpLNR",
                 "vs CTF"});
  for (const std::string& name :
       {std::string("nell-2"), std::string("vast-3d"), std::string("darpa"),
        std::string("synth3")}) {
    Rng rng(static_cast<std::uint64_t>(*seed) ^ hash_mix(name.size() * 7));
    CooTensor t = make_preset_tensor(name, *scale, rng);
    auto p = make_problem(ttmc3_expr(), std::move(t),
                          {{"r", *rank}, {"s", *rank}}, rng);
    const RunResult interp = run_spttn(*p, static_cast<int>(*reps), {},
                                       nullptr, ExecTier::kInterpret);
    const RunResult ours = run_spttn(*p, static_cast<int>(*reps), {},
                                     nullptr, ExecTier::kLowered);
    const RunResult taco = run_taco_unfactorized(*p, 1);
    const RunResult lnr = run_sparselnr(*p, 1);
    const RunResult ctf = run_ctf_pairwise(*p, 1);
    t3.add_row({name, human_count(static_cast<double>(p->sparse.nnz())),
                interp.cell(), ours.cell(), taco.cell(), lnr.cell(),
                ctf.cell(), speedup_cell(interp, ours),
                speedup_cell(taco, ours), speedup_cell(lnr, ours),
                speedup_cell(ctf, ours)});
    jrows.push_back({"ttmc3", name, p->sparse.nnz(), interp.seconds,
                     ours.seconds, taco.seconds, lnr.seconds});
  }
  t3.add_note("paper: 29.3x (nell-2) and 125.9x (vast-3d) over TACO; "
              "110.5x and 4x over SparseLNR");
  t3.print(std::cout);

  Table t4(strfmt("Section 7 — order-4 TTMc (Figure 6 kernel), R=S=T=%lld",
                  static_cast<long long>(*rank)));
  t4.set_header({"tensor", "nnz", "SpTTN-int[s]", "SpTTN-low[s]", "TACO[s]",
                 "SparseLNR[s]", "tier", "vs TACO", "vs SpLNR", "maxdepth",
                 "bufdim"});
  for (const std::string& name : {std::string("nips"), std::string("synth4")}) {
    Rng rng(static_cast<std::uint64_t>(*seed) ^ hash_mix(name.size() * 13));
    CooTensor t = make_preset_tensor(name, *scale, rng);
    if (t.order() != 4) continue;
    auto p = make_problem(ttmc4_expr(), std::move(t),
                          {{"r", *rank}, {"s", *rank}, {"t", *rank}}, rng);
    Plan plan;
    const RunResult interp = run_spttn(*p, static_cast<int>(*reps), {},
                                       nullptr, ExecTier::kInterpret);
    const RunResult ours = run_spttn(*p, static_cast<int>(*reps), {}, &plan,
                                     ExecTier::kLowered);
    const RunResult taco = run_taco_unfactorized(*p, 1);
    const RunResult lnr = run_sparselnr(*p, 1);
    t4.add_row({name, human_count(static_cast<double>(p->sparse.nnz())),
                interp.cell(), ours.cell(), taco.cell(), lnr.cell(),
                speedup_cell(interp, ours), speedup_cell(taco, ours),
                speedup_cell(lnr, ours),
                std::to_string(plan.tree.max_depth()),
                std::to_string(plan.tree.max_buffer_dim())});
    jrows.push_back({"ttmc4", name, p->sparse.nnz(), interp.seconds,
                     ours.seconds, taco.seconds, lnr.seconds});
  }
  t4.add_note("paper Fig. 6: SpTTN nest has depth 5 (SparseLNR: 6, "
              "intermediate L x R x S)");
  t4.print(std::cout);

  if (!json->empty()) write_json(*json, *rank, *seed, jrows);
  return 0;
}
