// Section 7 TTMc results: single-thread order-3 and order-4 TTMc versus
// TACO (unfactorized), SparseLNR (partially fused) and CTF (pairwise).
// Paper: 29.3x/125.9x over TACO, 4x-110.5x over SparseLNR, 0.8x-12.6x over
// CTF; TACO/SparseLNR only run at all on two of the tensors.
#include "bench_common.hpp"
#include "util/cli.hpp"

using namespace spttn;
using namespace spttn::bench;

int main(int argc, char** argv) {
  Cli cli("bench_ttmc");
  const auto* rank = cli.add_int("rank", 16, "dense ranks R=S(=T)");
  const auto* scale = cli.add_double("scale", 0.002, "tensor scale");
  const auto* reps = cli.add_int("reps", 3, "timing repetitions");
  const auto* seed = cli.add_int("seed", 11, "generator seed");
  cli.parse(argc, argv);

  Table t3(strfmt("Section 7 — order-3 TTMc, R=S=%lld",
                  static_cast<long long>(*rank)));
  t3.set_header({"tensor", "nnz", "SpTTN[s]", "TACO[s]", "SparseLNR[s]",
                 "CTF[s]", "vs TACO", "vs SpLNR", "vs CTF"});
  for (const std::string& name :
       {std::string("nell-2"), std::string("vast-3d"), std::string("darpa"),
        std::string("synth3")}) {
    Rng rng(static_cast<std::uint64_t>(*seed) ^ hash_mix(name.size() * 7));
    CooTensor t = make_preset_tensor(name, *scale, rng);
    auto p = make_problem(ttmc3_expr(), std::move(t),
                          {{"r", *rank}, {"s", *rank}}, rng);
    const RunResult ours = run_spttn(*p, static_cast<int>(*reps));
    const RunResult taco = run_taco_unfactorized(*p, 1);
    const RunResult lnr = run_sparselnr(*p, 1);
    const RunResult ctf = run_ctf_pairwise(*p, 1);
    t3.add_row({name, human_count(static_cast<double>(p->sparse.nnz())),
                ours.cell(), taco.cell(), lnr.cell(), ctf.cell(),
                speedup_cell(taco, ours), speedup_cell(lnr, ours),
                speedup_cell(ctf, ours)});
  }
  t3.add_note("paper: 29.3x (nell-2) and 125.9x (vast-3d) over TACO; "
              "110.5x and 4x over SparseLNR");
  t3.print(std::cout);

  Table t4(strfmt("Section 7 — order-4 TTMc (Figure 6 kernel), R=S=T=%lld",
                  static_cast<long long>(*rank)));
  t4.set_header({"tensor", "nnz", "SpTTN[s]", "TACO[s]", "SparseLNR[s]",
                 "vs TACO", "vs SpLNR", "maxdepth", "bufdim"});
  for (const std::string& name : {std::string("nips"), std::string("synth4")}) {
    Rng rng(static_cast<std::uint64_t>(*seed) ^ hash_mix(name.size() * 13));
    CooTensor t = make_preset_tensor(name, *scale, rng);
    if (t.order() != 4) continue;
    auto p = make_problem(ttmc4_expr(), std::move(t),
                          {{"r", *rank}, {"s", *rank}, {"t", *rank}}, rng);
    Plan plan;
    const RunResult ours = run_spttn(*p, static_cast<int>(*reps), {}, &plan);
    const RunResult taco = run_taco_unfactorized(*p, 1);
    const RunResult lnr = run_sparselnr(*p, 1);
    t4.add_row({name, human_count(static_cast<double>(p->sparse.nnz())),
                ours.cell(), taco.cell(), lnr.cell(),
                speedup_cell(taco, ours), speedup_cell(lnr, ours),
                std::to_string(plan.tree.max_depth()),
                std::to_string(plan.tree.max_buffer_dim())});
  }
  t4.add_note("paper Fig. 6: SpTTN nest has depth 5 (SparseLNR: 6, "
              "intermediate L x R x S)");
  t4.print(std::cout);
  return 0;
}
