// Figure 10: runtime distribution over randomly sampled loop orders of the
// all-mode order-3 TTMc kernel (paper: N=1024, R=32, 0.1% sparsity, 25% of
// the CSF-consistent loop orders; red cut-off line; green line = runtime of
// the order picked by SpTTN-Cyclops).
#include <algorithm>

#include "bench_common.hpp"
#include "core/enumerate.hpp"
#include "util/cli.hpp"

using namespace spttn;
using namespace spttn::bench;

int main(int argc, char** argv) {
  Cli cli("bench_fig10_loop_orders");
  const auto* n = cli.add_int("n", 256, "mode size (paper: 1024)");
  const auto* rank = cli.add_int("rank", 32, "dense rank R (paper: 32)");
  const auto* sparsity = cli.add_double("sparsity", 0.001, "nnz fraction");
  const auto* fraction =
      cli.add_double("fraction", 0.05, "fraction of orders to run "
                                       "(paper: 0.25)");
  const auto* seed = cli.add_int("seed", 3, "generator seed");
  cli.parse(argc, argv);

  Rng rng(static_cast<std::uint64_t>(*seed));
  const auto nnz = static_cast<std::int64_t>(static_cast<double>(*n) *
                                             static_cast<double>(*n) *
                                             static_cast<double>(*n) *
                                             *sparsity);
  CooTensor t = random_coo({*n, *n, *n}, nnz, rng);
  auto p = make_problem(allmode_ttmc3_expr(), std::move(t),
                        {{"r", *rank}, {"s", *rank}, {"u", *rank}}, rng);

  // The contraction path SpTTN-Cyclops picks, and its chosen loop order.
  Plan plan;
  const RunResult chosen = run_spttn(*p, 3, {}, &plan);

  // Sample loop orders of that path (CSF-consistent, like the paper).
  const double total_orders =
      count_orders(p->kernel(), plan.path, /*restrict_csf_order=*/true);
  const auto samples = static_cast<std::size_t>(
      std::max(1.0, total_orders * *fraction));
  std::vector<LoopOrder> orders =
      sample_orders(p->kernel(), plan.path, {}, samples, rng);

  std::vector<double> times;
  times.reserve(orders.size());
  for (const auto& order : orders) {
    FusedExecutor exec(p->kernel(), plan.path, order);
    Output o = Output::make(*p);
    ExecArgs args;
    args.sparse = &p->bound.csf;
    args.dense = p->bound.dense;
    args.out_dense = &o.dense;
    times.push_back(time_median([&] { exec.execute(args); }, 1));
  }
  std::sort(times.begin(), times.end());
  const Summary s = summarize(times);

  Table table(strfmt(
      "Figure 10 — all-mode TTMc over %zu random loop orders (of %.0f), "
      "N=%lld R=%lld",
      orders.size(), total_orders, static_cast<long long>(*n),
      static_cast<long long>(*rank)));
  table.set_header({"statistic", "seconds"});
  table.add_row({"best sampled order", strfmt("%.4f", s.min)});
  table.add_row({"25th percentile", strfmt("%.4f", times[times.size() / 4])});
  table.add_row({"median sampled order", strfmt("%.4f", s.median)});
  table.add_row({"75th percentile",
                 strfmt("%.4f", times[3 * times.size() / 4])});
  table.add_row({"worst sampled order", strfmt("%.4f", s.max)});
  table.add_row({"SpTTN-Cyclops pick (green line)", chosen.cell()});
  const std::size_t rank_pos = static_cast<std::size_t>(
      std::lower_bound(times.begin(), times.end(), chosen.seconds) -
      times.begin());
  table.add_row({"rank of the pick among samples",
                 strfmt("%zu / %zu", rank_pos, times.size())});
  table.add_note("paper: the picked order sits below the cut-off, near the "
                 "best of the sampled distribution");

  // ASCII histogram of the sampled distribution (the figure's scatter).
  table.print(std::cout);
  const int bins = 12;
  std::cout << "runtime histogram (each * ~ one sampled order):\n";
  for (int b = 0; b < bins; ++b) {
    const double lo = s.min + (s.max - s.min) * b / bins;
    const double hi = s.min + (s.max - s.min) * (b + 1) / bins;
    int count = 0;
    for (double v : times) {
      if (v >= lo && (v < hi || b == bins - 1)) ++count;
    }
    std::cout << strfmt("  [%.4f, %.4f) ", lo, hi);
    for (int i = 0; i < count; ++i) std::cout << '*';
    if (chosen.seconds >= lo && (chosen.seconds < hi || b == bins - 1)) {
      std::cout << "  <= SpTTN-Cyclops";
    }
    std::cout << '\n';
  }
  return 0;
}
