// Section 7 TTTc results: the order-6 tensor-train contraction kernel
// (paper Eq. 4). Paper: 534x over TACO at N=40, 0.1% sparsity; good strong
// scaling for N=80 at 1% and 0.1%. Mode sizes default smaller here so the
// unfactorized baseline remains runnable; --n raises them.
#include "dist/dist_spttn.hpp"

#include "bench_common.hpp"
#include "util/cli.hpp"

using namespace spttn;
using namespace spttn::bench;

namespace {

std::string tttc_expr() {
  // Z(e,n) = sum T(i,j,k,l,m,n) A(i,a) B(a,j,b) C(b,k,c) D(c,l,d) E(d,m,e)
  return "Z(e,n) = T(i,j,k,l,m,n)*A(i,a)*B(a,j,b)*C(b,k,c)*D(c,l,d)*"
         "E(d,m,e)";
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_tttc");
  const auto* n = cli.add_int("n", 14, "mode size (paper: 40/80)");
  const auto* rank = cli.add_int("rank", 8, "tensor-train rank (paper: 16)");
  const auto* reps = cli.add_int("reps", 2, "timing repetitions");
  const auto* seed = cli.add_int("seed", 17, "generator seed");
  const auto* max_ranks = cli.add_int("max-ranks", 16, "scaling rank counts");
  cli.parse(argc, argv);

  Table table(strfmt("Section 7 — TTTc (order-6 tensor train), N=%lld R=%lld",
                     static_cast<long long>(*n),
                     static_cast<long long>(*rank)));
  table.set_header({"sparsity", "nnz", "SpTTN[s]", "TACO[s]", "vs TACO",
                    "plan depth", "bufdim", "paths searched"});

  std::unique_ptr<Problem> scaling_problem;
  for (const double sparsity : {0.01, 0.001}) {
    Rng rng(static_cast<std::uint64_t>(*seed));
    double space = 1;
    for (int m = 0; m < 6; ++m) space *= static_cast<double>(*n);
    const auto nnz = static_cast<std::int64_t>(space * sparsity) + 1;
    CooTensor t = random_coo({*n, *n, *n, *n, *n, *n}, nnz, rng);
    auto p = make_problem(
        tttc_expr(), std::move(t),
        {{"a", *rank}, {"b", *rank}, {"c", *rank}, {"d", *rank}, {"e", *rank}},
        rng);
    Plan plan;
    const RunResult ours = run_spttn(*p, static_cast<int>(*reps), {}, &plan);
    // Unfactorized TTTc costs nnz * R^5 scalar ops; guard the bench budget
    // (the paper likewise could not run TACO on the large TTTc inputs).
    RunResult taco;
    double taco_ops = static_cast<double>(p->sparse.nnz());
    for (int q = 0; q < 5; ++q) taco_ops *= static_cast<double>(*rank);
    if (taco_ops < 1.5e9) {
      taco = run_taco_unfactorized(*p, 1);
    } else {
      taco.note = "skipped";
    }
    table.add_row({strfmt("%.2g%%", sparsity * 100),
                   human_count(static_cast<double>(p->sparse.nnz())),
                   ours.cell(), taco.cell(), speedup_cell(taco, ours),
                   std::to_string(plan.tree.max_depth()),
                   std::to_string(plan.tree.max_buffer_dim()),
                   std::to_string(plan.paths_searched)});
    if (sparsity == 0.001) scaling_problem = std::move(p);
  }
  table.add_note("paper: 534x over TACO at N=40, 0.1% (unfactorized TTTc "
                 "pays the full rank^5 inner loop)");
  table.print(std::cout);

  // Strong-scaling table for the sparser instance.
  Table scaling("Section 7 — TTTc strong scaling (simulated ranks)");
  scaling.set_header({"ranks", "grid", "max-local[s]", "comm[s]", "total[s]",
                      "speedup"});
  double t1 = 0;
  for (int r = 1; r <= *max_ranks; r *= 2) {
    DistSpttn dist(scaling_problem->bound, r);
    const DistResult res = dist.run({}, nullptr, {});
    if (r == 1) t1 = res.time();
    scaling.add_row({std::to_string(r), res.grid.describe(),
                     strfmt("%.4f", res.max_local_seconds),
                     strfmt("%.5f", res.comm_seconds),
                     strfmt("%.4f", res.time()),
                     strfmt("%.2fx", t1 / res.time())});
  }
  scaling.add_note("paper: good scaling for both sparsities of the N=80 "
                   "tensor");
  scaling.print(std::cout);
  return 0;
}
