// Shared harness for the paper-reproduction benchmarks: framework runners
// (SpTTN-Cyclops, TACO-style, SparseLNR-style, CTF-style, SPLATT-style),
// problem construction, and timing.
//
// Every bench binary prints a table whose rows mirror one figure or table
// of the paper; EXPERIMENTS.md maps binaries to figures and records
// paper-vs-measured outcomes.
#pragma once

#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exec/executor.hpp"
#include "exec/pairwise.hpp"
#include "exec/reference.hpp"
#include "exec/schedules.hpp"
#include "exec/specialized.hpp"
#include "exec/spttn.hpp"
#include "exec/unfactorized.hpp"
#include "tensor/generate.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace spttn::bench {

/// A bound problem plus owned tensors.
struct Problem {
  CooTensor sparse;
  std::vector<DenseTensor> factors;
  BoundKernel bound;

  const Kernel& kernel() const { return bound.kernel; }
};

/// Build a problem for `expr` on the given sparse tensor; dense factors are
/// sized by `dense_dims` lookup (name of index -> extent) and filled
/// randomly.
inline std::unique_ptr<Problem> make_problem(
    const std::string& expr, CooTensor sparse,
    const std::vector<std::pair<std::string, std::int64_t>>& dense_dims,
    Rng& rng) {
  auto p = std::make_unique<Problem>();
  p->sparse = std::move(sparse);
  Kernel k = Kernel::parse(expr);
  const auto dim_of = [&](int id) -> std::int64_t {
    const int lvl = k.csf_level(id);
    if (lvl >= 0) return p->sparse.dim(lvl);
    for (const auto& [n, d] : dense_dims) {
      if (n == k.index_name(id)) return d;
    }
    SPTTN_CHECK_MSG(false, "no extent for index " << k.index_name(id));
    return -1;
  };
  for (int i = 0; i < k.num_inputs(); ++i) {
    if (i == k.sparse_input()) continue;
    std::vector<std::int64_t> dims;
    for (int id : k.input(i).idx) dims.push_back(dim_of(id));
    p->factors.push_back(random_dense(dims, rng));
  }
  std::vector<const DenseTensor*> ptrs;
  for (const auto& f : p->factors) ptrs.push_back(&f);
  p->bound = spttn::bind(expr, p->sparse, ptrs);
  return p;
}

/// Outcome of one framework run.
struct RunResult {
  bool ok = false;
  double seconds = 0;
  std::string note;

  std::string cell() const {
    if (!ok) return note.empty() ? std::string("-") : note;
    return strfmt("%.4f", seconds);
  }
};

/// Median-of-reps timing of fn() with one warmup.
template <typename Fn>
double time_median(Fn&& fn, int reps) {
  const Summary s = time_fn(
      [&] {
        Timer t;
        fn();
        return t.seconds();
      },
      reps, /*warmup=*/1);
  return s.median;
}

/// Allocate output holders for a problem.
struct Output {
  DenseTensor dense;
  std::vector<double> sparse_vals;

  static Output make(const Problem& p) {
    Output o;
    if (p.kernel().output_is_sparse()) {
      o.sparse_vals.assign(static_cast<std::size_t>(p.sparse.nnz()), 0.0);
    } else {
      o.dense = make_output(p.bound);
    }
    return o;
  }
};

/// SpTTN-Cyclops: plan (excluded from timing, reported separately) + fused
/// execution on the requested tier (lowered by default, matching ExecArgs).
inline RunResult run_spttn(const Problem& p, int reps,
                           const PlannerOptions& options = {},
                           Plan* plan_out = nullptr,
                           ExecTier tier = ExecTier::kLowered) {
  RunResult r;
  try {
    const Plan plan = plan_kernel(p.bound, options);
    if (plan_out != nullptr) *plan_out = plan;
    FusedExecutor exec(p.kernel(), plan);
    Output o = Output::make(p);
    ExecArgs args;
    args.sparse = &p.bound.csf;
    args.dense = p.bound.dense;
    args.out_dense = o.sparse_vals.empty() ? &o.dense : nullptr;
    args.out_sparse = o.sparse_vals;
    args.tier = tier;
    r.seconds = time_median([&] { exec.execute(args); }, reps);
    r.ok = true;
  } catch (const Error& e) {
    r.note = "error";
  }
  return r;
}

/// TACO-style unfactorized schedule.
inline RunResult run_taco_unfactorized(const Problem& p, int reps) {
  RunResult r;
  try {
    UnfactorizedExecutor exec(p.kernel());
    Output o = Output::make(p);
    r.seconds = time_median(
        [&] {
          exec.execute(p.bound.csf, p.bound.dense,
                       o.sparse_vals.empty() ? &o.dense : nullptr,
                       o.sparse_vals);
        },
        reps);
    r.ok = true;
  } catch (const Error&) {
    r.note = "error";
  }
  return r;
}

/// SparseLNR-style partially fused schedule on the shared fused executor.
inline RunResult run_sparselnr(const Problem& p, int reps) {
  RunResult r;
  try {
    const auto [path, order] = sparselnr_schedule(p.kernel());
    FusedExecutor exec(p.kernel(), path, order);
    Output o = Output::make(p);
    ExecArgs args;
    args.sparse = &p.bound.csf;
    args.dense = p.bound.dense;
    args.out_dense = o.sparse_vals.empty() ? &o.dense : nullptr;
    args.out_sparse = o.sparse_vals;
    r.seconds = time_median([&] { exec.execute(args); }, reps);
    r.ok = true;
  } catch (const Error&) {
    r.note = "error";
  }
  return r;
}

/// CTF-style pairwise contraction with materialized sparse intermediates.
/// OOM (entry cap) is reported like the paper reports CTF failures.
inline RunResult run_ctf_pairwise(const Problem& p, int reps,
                                  std::int64_t max_entries = 1ll << 26) {
  RunResult r;
  try {
    const ContractionPath path =
        pairwise_best_path(p.kernel(), p.bound.stats);
    Output o = Output::make(p);
    r.seconds = time_median(
        [&] {
          pairwise_execute(p.kernel(), path, p.sparse, p.bound.dense,
                           o.sparse_vals.empty() ? &o.dense : nullptr,
                           o.sparse_vals, max_entries);
        },
        reps);
    r.ok = true;
  } catch (const Error&) {
    r.note = "OOM";
  }
  return r;
}

/// SPLATT-style specialized kernels (MTTKRP order 3/4 only).
inline RunResult run_splatt(const Problem& p, int reps) {
  RunResult r;
  const Kernel& k = p.kernel();
  Output o = Output::make(p);
  if (k.sparse_ref().order() == 3 && p.factors.size() == 2) {
    r.seconds = time_median(
        [&] {
          splatt_mttkrp3(p.bound.csf, p.factors[0], p.factors[1], &o.dense);
        },
        reps);
    r.ok = true;
  } else if (k.sparse_ref().order() == 4 && p.factors.size() == 3) {
    r.seconds = time_median(
        [&] {
          splatt_mttkrp4(p.bound.csf, p.factors[0], p.factors[1],
                         p.factors[2], &o.dense);
        },
        reps);
    r.ok = true;
  } else {
    r.note = "n/a";
  }
  return r;
}

/// "Ax" speedup cell of base vs ours.
inline std::string speedup_cell(const RunResult& base, const RunResult& ours) {
  if (!base.ok || !ours.ok || ours.seconds <= 0) return "-";
  return strfmt("%.1fx", base.seconds / ours.seconds);
}

/// MTTKRP / TTMc / TTTP / all-mode TTMc expression helpers (order 3).
inline std::string mttkrp3_expr() {
  return "A(i,r) = T(i,j,k)*B(j,r)*C(k,r)";
}
inline std::string mttkrp4_expr() {
  return "A(i,r) = T(i,j,k,l)*B(j,r)*C(k,r)*D(l,r)";
}
inline std::string ttmc3_expr() {
  return "S(i,r,s) = T(i,j,k)*U(j,r)*V(k,s)";
}
inline std::string ttmc4_expr() {
  return "S(i,r,s,t) = T(i,j,k,l)*U(j,r)*V(k,s)*W(l,t)";
}
inline std::string tttp3_expr() {
  return "S(i,j,k) = T(i,j,k)*U(i,r)*V(j,r)*W(k,r)";
}
inline std::string allmode_ttmc3_expr() {
  return "S(r,s,u) = T(i,j,k)*U(i,r)*V(j,s)*W(k,u)";
}

}  // namespace spttn::bench
