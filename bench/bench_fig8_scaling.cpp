// Figure 8: strong scaling of TTMc, MTTKRP and TTTP on synthetic tensors
// with identical mode sizes (paper: order-3 N=8192 / order-4 N=1024, 0.1%
// sparsity, R=32; 64 MPI ranks per node).
//
// Local kernels execute for real per rank (max measured); collectives flow
// through a pluggable CommBackend selected with --backend: "modeled"
// charges the alpha-beta model (see src/dist/comm_model.hpp and
// EXPERIMENTS.md for constants — the paper's simulation-first methodology),
// "shmem" moves real bytes on the process-wide pool and reports *measured*
// collective seconds, turning Figure 8 from simulated into measured.
#include "dist/comm_backend.hpp"
#include "dist/dist_spttn.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "bench_common.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

using namespace spttn;
using namespace spttn::bench;

namespace {

// Shared-memory strong scaling on the work-partitioned executor: one
// process, the root loop chunked by subtree nnz over the persistent thread
// pool. Correctness is checked every row against the 1-thread result.
void thread_scaling_table(const std::string& title, const Problem& p,
                          const std::vector<int>& threads, int reps) {
  const Plan plan = plan_kernel(p.bound);
  FusedExecutor exec(p.kernel(), plan);
  Table table(title);
  table.set_header({"threads", "parts", "time[s]", "speedup", "efficiency",
                    "imbalance", "max|diff|"});
  Output base = Output::make(p);
  Output out = Output::make(p);
  double t1 = 0;
  for (int nt : threads) {
    // Strong scaling measures "what if the machine ran nt lanes": size the
    // pool to the row. Without this, on a host with fewer cores than the
    // widest row the partials budget (clamped to the pool's lanes) would
    // silently keep the nested split out of the parts column.
    ThreadPool::set_global_threads(nt);
    ExecArgs args;
    args.sparse = &p.bound.csf;
    args.dense = p.bound.dense;
    args.out_dense = out.sparse_vals.empty() ? &out.dense : nullptr;
    args.out_sparse = out.sparse_vals;
    args.num_threads = nt;
    ExecStats stats;
    args.stats = &stats;
    const double secs = time_median([&] { exec.execute(args); }, reps);
    double diff = 0;
    if (nt == threads.front()) {
      t1 = secs;
      if (out.sparse_vals.empty()) {
        base.dense = out.dense;
      } else {
        base.sparse_vals = out.sparse_vals;
      }
    } else if (out.sparse_vals.empty()) {
      diff = out.dense.max_abs_diff(base.dense);
    } else {
      for (std::size_t e = 0; e < out.sparse_vals.size(); ++e) {
        diff = std::max(diff,
                        std::abs(out.sparse_vals[e] - base.sparse_vals[e]));
      }
    }
    table.add_row({std::to_string(nt), std::to_string(stats.threads_used),
                   strfmt("%.4f", secs), strfmt("%.2fx", t1 / secs),
                   strfmt("%.0f%%", 100.0 * t1 / secs / nt),
                   strfmt("%.2f", stats.partition_imbalance),
                   strfmt("%.1e", diff)});
  }
  ThreadPool::set_global_threads(0);  // restore the default-sized pool
  table.add_note("root loop chunked by subtree nnz (nested second-level "
                 "split when small/skewed, stealing pool balances); outputs "
                 "must match the 1-thread row to 1e-12");
  table.print(std::cout);
}

// Strong-scaling table over a skewed tensor: one root slice owns most of
// the nonzeros, so the static nnz-balanced chunking alone would serialize.
// The parts column shows the nested split carrying the region past the
// root extent, and the imbalance column the executed partition's skew.
void skew_scaling_table(const std::string& title,
                        const std::vector<int>& threads, int rank,
                        int reps, Rng& rng) {
  const std::int64_t heavy_j = 2048;
  const std::int64_t heavy_k = 256;
  CooTensor t({64, heavy_j, heavy_k});
  // ~95% of the nonzeros under root slice i=0; one nonzero elsewhere.
  for (std::int64_t j = 0; j < heavy_j; ++j) {
    for (std::int64_t k = 0; k < heavy_k; ++k) {
      if ((j * 131 + k * 17) % 5 == 0) {
        t.push_back({0, j, k}, rng.next_double() + 0.25);
      }
    }
  }
  for (std::int64_t i = 1; i < 64; ++i) {
    t.push_back({i, i % heavy_j, i % heavy_k}, 1.0);
  }
  t.sort_dedup();
  auto p = make_problem(mttkrp3_expr(), std::move(t),
                        {{"r", static_cast<std::int64_t>(rank)}}, rng);
  thread_scaling_table(title + strfmt(" nnz=%lld (~95%% in one root slice)",
                                      static_cast<long long>(p->sparse.nnz())),
                       *p, threads, reps);
}

/// Machine-readable rows for one scaling table (--json output). The old
/// schema's fields (comm_s, total_s, ...) are kept verbatim so
/// tools/bench_diff can compare across the backend-era schema change.
struct ScalingJson {
  std::string figure;
  std::string kernel;
  std::string backend;
  bool modeled = true;
  struct Row {
    int ranks = 0;
    std::string grid;
    double max_local_s = 0, comm_s = 0, total_s = 0, speedup = 0,
           imbalance = 0;
    double allgather_s = 0, allreduce_s = 0;
    std::int64_t allgather_bytes = 0, allreduce_bytes = 0;
    int allgather_count = 0, allreduce_count = 0;
  };
  std::vector<Row> rows;
};

void scaling_table(const std::string& title, const Problem& p,
                   const std::vector<int>& ranks, const std::string& backend,
                   int local_threads, bool concurrent_ranks,
                   ScalingJson* json = nullptr) {
  Table table(title + ", backend=" + backend);
  table.set_header({"ranks", "grid", "max-local[s]", "allgather[s]",
                    "allreduce[s]", "comm[s]", "total[s]", "speedup",
                    "efficiency", "imbalance"});
  double t1 = 0;
  bool modeled = true;
  for (int r : ranks) {
    DistSpttn dist(p.bound, r);
    const auto comm = make_comm_backend(backend, r);
    const DistResult res =
        dist.run(*comm, {}, nullptr, {}, local_threads, concurrent_ranks);
    modeled = res.modeled;
    const CommBreakdown ag = res.breakdown(CollectiveKind::kAllgather);
    const CommBreakdown ar = res.breakdown(CollectiveKind::kAllreduce);
    if (r == ranks.front()) t1 = res.time();
    table.add_row({std::to_string(r), res.grid.describe(),
                   strfmt("%.4f", res.max_local_seconds),
                   strfmt("%.5f", ag.seconds), strfmt("%.5f", ar.seconds),
                   strfmt("%.5f", res.comm_seconds),
                   strfmt("%.4f", res.time()),
                   strfmt("%.2fx", t1 / res.time()),
                   strfmt("%.0f%%", 100.0 * t1 / res.time() /
                                        static_cast<double>(r) *
                                        static_cast<double>(ranks.front())),
                   strfmt("%.2f", res.imbalance)});
    if (json != nullptr) {
      json->backend = res.backend;
      json->modeled = res.modeled;
      json->rows.push_back({r, res.grid.describe(), res.max_local_seconds,
                            res.comm_seconds, res.time(), t1 / res.time(),
                            res.imbalance, ag.seconds, ar.seconds, ag.bytes,
                            ar.bytes, ag.count, ar.count});
    }
  }
  table.add_note(modeled
                     ? "collectives charged to the alpha-beta model "
                       "(simulated; the paper's methodology)"
                     : "collectives measured around real buffer movement "
                       "(per-rank factor replicas, tiled partial reduce)");
  table.add_note("paper Fig. 8: near-linear scaling for all three kernels");
  table.print(std::cout);
}

void write_fig8_json(const std::string& path,
                     const std::vector<ScalingJson>& figs) {
  std::ofstream os(path);
  os << "{\n  \"bench\": \"bench_fig8_scaling\",\n  \"unit\": \"s\",\n"
     << "  \"figures\": [\n";
  for (std::size_t f = 0; f < figs.size(); ++f) {
    os << "    {\"figure\": \"" << figs[f].figure << "\", \"kernel\": \""
       << figs[f].kernel << "\", \"backend\": \"" << figs[f].backend
       << "\", \"modeled\": " << (figs[f].modeled ? "true" : "false")
       << ", \"rows\": [\n";
    for (std::size_t i = 0; i < figs[f].rows.size(); ++i) {
      const auto& r = figs[f].rows[i];
      os << "      {\"ranks\": " << r.ranks << ", \"grid\": \"" << r.grid
         << "\", \"max_local_s\": " << strfmt("%.6f", r.max_local_s)
         << ", \"comm_s\": " << strfmt("%.6f", r.comm_s) << ", \"total_s\": "
         << strfmt("%.6f", r.total_s) << ", \"speedup\": "
         << strfmt("%.3f", r.speedup) << ", \"imbalance\": "
         << strfmt("%.3f", r.imbalance)
         << ",\n       \"allgather_s\": " << strfmt("%.6f", r.allgather_s)
         << ", \"allgather_bytes\": " << r.allgather_bytes
         << ", \"allgather_count\": " << r.allgather_count
         << ", \"allreduce_s\": " << strfmt("%.6f", r.allreduce_s)
         << ", \"allreduce_bytes\": " << r.allreduce_bytes
         << ", \"allreduce_count\": " << r.allreduce_count << "}"
         << (i + 1 < figs[f].rows.size() ? "," : "") << "\n";
    }
    os << "    ]}" << (f + 1 < figs.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_fig8_scaling");
  const auto* n3 = cli.add_int("n3", 512, "order-3 mode size (paper: 8192)");
  const auto* n4 = cli.add_int("n4", 96, "order-4 mode size (paper: 1024)");
  const auto* rank = cli.add_int("rank", 32, "dense rank R (paper: 32)");
  const auto* sparsity =
      cli.add_double("sparsity", 0.001, "nnz fraction (paper: 0.1%)");
  const auto* max_ranks = cli.add_int("max-ranks", 64, "largest rank count");
  const auto* max_threads = cli.add_int(
      "threads", 8, "largest shared-memory thread count (0 = skip)");
  const auto* local_threads = cli.add_int(
      "local-threads", 1, "pool lanes per simulated rank (hybrid mode)");
  const auto* concurrent_ranks = cli.add_bool(
      "concurrent-ranks", false,
      "run simulated ranks concurrently on the pool (bit-identical "
      "results, faster simulation; per-rank seconds then time-share "
      "cores, so leave off for timing-faithful rows)");
  const auto* skew = cli.add_bool(
      "skew", true, "also run the skewed-root MTTKRP scaling table");
  const std::string* backend_list = cli.add_string(
      "backend", "modeled,shmem",
      "comma-separated comm backends for the scaling tables: 'modeled' "
      "(alpha-beta charged, simulated) and/or 'shmem' (real buffer "
      "movement, measured collective seconds)");
  const auto* reps = cli.add_int("reps", 3, "timing repetitions per row");
  const auto* seed = cli.add_int("seed", 7, "generator seed");
  const std::string* json =
      cli.add_string("json", "BENCH_fig8.json",
                     "output path for machine-readable rows ('' = skip)");
  cli.parse(argc, argv);
  std::vector<ScalingJson> json_figs;

  const std::vector<std::string> backends = split(*backend_list, ',');
  for (const std::string& b : backends) make_comm_backend(b, 1);  // validate

  std::vector<int> ranks;
  for (int r = 1; r <= *max_ranks; r *= 2) ranks.push_back(r);
  std::vector<int> threads;
  for (int t = 1; t <= *max_threads; t *= 2) threads.push_back(t);

  Rng rng(static_cast<std::uint64_t>(*seed));
  const auto nnz3 = static_cast<std::int64_t>(
      static_cast<double>(*n3) * static_cast<double>(*n3) *
      static_cast<double>(*n3) * *sparsity);
  const auto nnz4 = static_cast<std::int64_t>(
      static_cast<double>(*n4) * static_cast<double>(*n4) *
      static_cast<double>(*n4) * static_cast<double>(*n4) * *sparsity);

  {
    CooTensor t = random_coo({*n3, *n3, *n3}, nnz3, rng);
    auto p = make_problem(ttmc3_expr(), std::move(t),
                          {{"r", *rank}, {"s", *rank}}, rng);
    for (const std::string& b : backends) {
      scaling_table(strfmt("Figure 8(a) — TTMc strong scaling, order-3 "
                           "N=%lld nnz=%lld R=%lld",
                           static_cast<long long>(*n3),
                           static_cast<long long>(p->sparse.nnz()),
                           static_cast<long long>(*rank)),
                    *p, ranks, b, *local_threads, *concurrent_ranks,
                    &json_figs.emplace_back(ScalingJson{"8a", "ttmc3", b, true, {}}));
    }
  }
  {
    CooTensor t = random_coo({*n4, *n4, *n4, *n4}, nnz4, rng);
    auto p = make_problem(mttkrp4_expr(), std::move(t), {{"r", *rank}}, rng);
    for (const std::string& b : backends) {
      scaling_table(strfmt("Figure 8(b) — MTTKRP strong scaling, order-4 "
                           "N=%lld nnz=%lld R=%lld",
                           static_cast<long long>(*n4),
                           static_cast<long long>(p->sparse.nnz()),
                           static_cast<long long>(*rank)),
                    *p, ranks, b, *local_threads, *concurrent_ranks,
                    &json_figs.emplace_back(ScalingJson{"8b", "mttkrp4", b, true, {}}));
    }
    if (!threads.empty() && threads.back() > 1) {
      thread_scaling_table(
          strfmt("Figure 8(b') — MTTKRP shared-memory thread scaling, "
                 "order-4 N=%lld nnz=%lld R=%lld",
                 static_cast<long long>(*n4),
                 static_cast<long long>(p->sparse.nnz()),
                 static_cast<long long>(*rank)),
          *p, threads, *reps);
    }
  }
  {
    CooTensor t = random_coo({*n3, *n3, *n3}, nnz3, rng);
    auto p = make_problem(tttp3_expr(), std::move(t), {{"r", *rank}}, rng);
    for (const std::string& b : backends) {
      scaling_table(strfmt("Figure 8(c) — TTTP strong scaling, order-3 "
                           "N=%lld nnz=%lld R=%lld",
                           static_cast<long long>(*n3),
                           static_cast<long long>(p->sparse.nnz()),
                           static_cast<long long>(*rank)),
                    *p, ranks, b, *local_threads, *concurrent_ranks,
                    &json_figs.emplace_back(ScalingJson{"8c", "tttp3", b, true, {}}));
    }
    if (!threads.empty() && threads.back() > 1) {
      thread_scaling_table(
          strfmt("Figure 8(c') — TTTP shared-memory thread scaling, "
                 "order-3 N=%lld nnz=%lld R=%lld",
                 static_cast<long long>(*n3),
                 static_cast<long long>(p->sparse.nnz()),
                 static_cast<long long>(*rank)),
          *p, threads, *reps);
    }
  }
  if (*skew && !threads.empty() && threads.back() > 1) {
    skew_scaling_table(
        strfmt("Figure 8(d') — skewed-root MTTKRP thread scaling, R=%lld",
               static_cast<long long>(*rank)),
        threads, static_cast<int>(*rank), static_cast<int>(*reps), rng);
  }
  if (!json->empty()) write_fig8_json(*json, json_figs);
  return 0;
}
