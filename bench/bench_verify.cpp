// Verifier overhead: planning time with and without the static plan
// verifier (PlannerOptions::verify) across the paper kernel suite, plus the
// isolated cost of one verification pass. Persists machine-readable rows to
// BENCH_verify.json (--json=path) so the perf trajectory of the verifier is
// diffable across PRs — the first of the BENCH_*.json series.
#include <fstream>

#include "analysis/kernel_suite.hpp"
#include "analysis/plan_verifier.hpp"
#include "bench_common.hpp"
#include "util/cli.hpp"

using namespace spttn;
using namespace spttn::bench;

namespace {

struct Row {
  std::string kernel;
  double plan_ms = 0;         ///< make_plan, verification off
  double plan_verify_ms = 0;  ///< make_plan with options.verify
  double verify_ms = 0;       ///< one PlanVerifier::verify pass
  double overhead_pct = 0;    ///< (plan_verify - plan) / plan
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_verify");
  const std::int64_t* reps = cli.add_int("reps", 20, "timing repetitions");
  const std::int64_t* seed = cli.add_int("seed", 42, "random tensor seed");
  const std::string* json =
      cli.add_string("json", "BENCH_verify.json",
                     "output path for machine-readable rows ('' = skip)");
  cli.parse(argc, argv);

  Table table("Static plan verification overhead (paper kernel suite)");
  table.set_header({"kernel", "plan[ms]", "plan+verify[ms]", "verify[ms]",
                    "overhead"});

  std::vector<Row> rows;
  for (const SuiteKernel& sk : paper_kernel_suite()) {
    const auto inst =
        make_suite_instance(sk, static_cast<std::uint64_t>(*seed));
    const Kernel& kernel = inst->bound.kernel;
    const SparsityStats& stats = inst->bound.stats;

    Row row;
    row.kernel = sk.name;
    PlannerOptions off;
    off.verify = false;
    row.plan_ms =
        time_median([&] { (void)make_plan(kernel, stats, off); },
                    static_cast<int>(*reps)) *
        1e3;
    PlannerOptions on;
    on.verify = true;
    row.plan_verify_ms =
        time_median([&] { (void)make_plan(kernel, stats, on); },
                    static_cast<int>(*reps)) *
        1e3;
    const Plan plan = make_plan(kernel, stats, off);
    const PlanVerifier verifier(kernel, off, &stats);
    row.verify_ms =
        time_median([&] { (void)verifier.verify(plan); },
                    static_cast<int>(*reps)) *
        1e3;
    // In Debug builds make_plan always verifies, so the A/B delta is ~0
    // there; the isolated verify column is the honest number either way.
    row.overhead_pct =
        row.plan_ms > 0
            ? 100.0 * (row.plan_verify_ms - row.plan_ms) / row.plan_ms
            : 0.0;
    rows.push_back(row);

    table.add_row({row.kernel, strfmt("%.3f", row.plan_ms),
                   strfmt("%.3f", row.plan_verify_ms),
                   strfmt("%.3f", row.verify_ms),
                   strfmt("%+.1f%%", row.overhead_pct)});
  }
  table.add_note("verify[ms] is one isolated PlanVerifier::verify pass; the "
                 "plan columns are full make_plan searches.");
  table.print(std::cout);

  if (!json->empty()) {
    std::ofstream os(*json);
    os << "{\n  \"bench\": \"bench_verify\",\n  \"unit\": \"ms\",\n"
       << "  \"reps\": " << *reps << ",\n  \"seed\": " << *seed
       << ",\n  \"kernels\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      os << "    {\"kernel\": \"" << r.kernel << "\", \"plan_ms\": "
         << strfmt("%.4f", r.plan_ms) << ", \"plan_verify_ms\": "
         << strfmt("%.4f", r.plan_verify_ms) << ", \"verify_ms\": "
         << strfmt("%.4f", r.verify_ms) << ", \"overhead_pct\": "
         << strfmt("%.2f", r.overhead_pct) << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::cout << "wrote " << *json << "\n";
  }
  return 0;
}
