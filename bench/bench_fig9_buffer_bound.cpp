// Figure 9: impact of the intermediate-tensor dimension bound on the
// all-mode order-3 TTMc kernel, R = 64.
//
// Loop Nest #1 is planned under a buffer-dimension bound of 1 (scalar + 1-D
// intermediates, dense index hoisted above the sparse suffix); Loop Nest #2
// under a bound of 2 (1-D and 2-D intermediates, trailing dense loops
// offloaded to BLAS-style kernels). The paper observes Nest #2 wins despite
// the larger footprint.
#include "bench_common.hpp"
#include "util/cli.hpp"

using namespace spttn;
using namespace spttn::bench;

int main(int argc, char** argv) {
  Cli cli("bench_fig9_buffer_bound");
  const auto* rank = cli.add_int("rank", 64, "dense rank R (paper: 64)");
  const auto* scale = cli.add_double("scale", 0.002, "tensor scale");
  const auto* reps = cli.add_int("reps", 3, "timing repetitions");
  const auto* seed = cli.add_int("seed", 5, "generator seed");
  const auto* verbose = cli.add_bool("show-nests", false,
                                     "print the two loop nests");
  cli.parse(argc, argv);

  Table table(strfmt("Figure 9 — all-mode TTMc, bound 1 vs bound 2, R=%lld",
                     static_cast<long long>(*rank)));
  table.set_header({"tensor", "nnz", "nest#1[s] (bound 1)",
                    "nest#2[s] (bound 2)", "#2 vs #1", "bufdim#1", "bufdim#2",
                    "offload#1", "offload#2"});

  for (const std::string& name :
       {std::string("nell-2"), std::string("nips"), std::string("vast-3d"),
        std::string("synth3")}) {
    Rng rng(static_cast<std::uint64_t>(*seed) ^ hash_mix(name.size() * 31));
    CooTensor t0 = make_preset_tensor(name, *scale, rng);
    // All-mode TTMc of an order-k tensor needs order 3 here.
    if (t0.order() != 3) continue;
    auto p = make_problem(allmode_ttmc3_expr(), std::move(t0),
                          {{"r", *rank}, {"s", *rank}, {"u", *rank}}, rng);

    PlannerOptions b1;
    b1.buffer_dim_bound = 1;
    b1.allow_bound_relaxation = false;
    PlannerOptions b2;
    b2.buffer_dim_bound = 2;
    b2.allow_bound_relaxation = false;
    Plan plan1;
    Plan plan2;
    const RunResult r1 = run_spttn(*p, static_cast<int>(*reps), b1, &plan1);
    const RunResult r2 = run_spttn(*p, static_cast<int>(*reps), b2, &plan2);

    FusedExecutor e1(p->kernel(), plan1);
    FusedExecutor e2(p->kernel(), plan2);
    table.add_row({name, human_count(static_cast<double>(p->sparse.nnz())),
                   r1.cell(), r2.cell(), speedup_cell(r1, r2),
                   std::to_string(plan1.tree.max_buffer_dim()),
                   std::to_string(plan2.tree.max_buffer_dim()),
                   std::to_string(e1.collapsed_loops()),
                   std::to_string(e2.collapsed_loops())});
    if (*verbose) {
      std::cout << "--- " << name << " nest #1 (bound 1):\n"
                << plan1.describe(p->kernel()) << "\n--- " << name
                << " nest #2 (bound 2):\n"
                << plan2.describe(p->kernel()) << "\n";
    }
  }
  table.add_note("paper: the bound-2 nest outperforms the bound-1 nest "
                 "despite the larger footprint (more BLAS offload)");
  table.print(std::cout);
  return 0;
}
