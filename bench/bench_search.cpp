// Section 4 complexity results: search-space sizes (contraction paths and
// loop orders, with and without the CSF-order restriction), DP subproblem
// counts, and DP-vs-enumeration wall time. Demonstrates the
// O(N^3 2^m m) vs O((m!)^N) gap the paper's Algorithm 1 delivers.
//
// --cache switches to the amortized-planning table: an iterative driver
// (CP-ALS-style sweeps over the per-mode kernel family) planning through
// the KernelCache, showing per-iteration plan time collapsing to ~0 after
// the first sweep populates the cache.
#include <fstream>

#include "bench_common.hpp"
#include "core/enumerate.hpp"
#include "core/order_dp.hpp"
#include "serve/kernel_cache.hpp"
#include "util/cli.hpp"

using namespace spttn;
using namespace spttn::bench;

namespace {

/// Amortized planning cost: sweeps of the order-3/4 kernel families, each
/// kernel planned per sweep — uncached (fresh search every time) vs through
/// a KernelCache (search only on the miss sweep).
int run_cache_mode(std::int64_t n, std::int64_t rank, std::uint64_t seed,
                   int sweeps, const std::string& json) {
  SPTTN_CHECK_MSG(sweeps >= 2,
                  "--sweeps must be >= 2 (sweep 1 populates the cache, "
                  "later sweeps measure the hits), got " << sweeps);
  struct Family {
    std::string name;
    std::vector<std::string> exprs;
    int order;
  };
  const std::vector<Family> families = {
      {"CP-ALS MTTKRP-3 family",
       {"M0(i,r) = T(i,j,k)*U1(j,r)*U2(k,r)",
        "M1(j,r) = T(i,j,k)*U0(i,r)*U2(k,r)",
        "M2(k,r) = T(i,j,k)*U0(i,r)*U1(j,r)"},
       3},
      {"HOOI TTMc-3 family",
       {"Y0(i,a,b) = T(i,j,k)*U1(j,a)*U2(k,b)",
        "Y1(j,a,b) = T(i,j,k)*U0(i,a)*U2(k,b)",
        "Y2(k,a,b) = T(i,j,k)*U0(i,a)*U1(j,b)"},
       3},
      {"MTTKRP-4 family",
       {"M0(i,r) = T(i,j,k,l)*U1(j,r)*U2(k,r)*U3(l,r)",
        "M1(j,r) = T(i,j,k,l)*U0(i,r)*U2(k,r)*U3(l,r)"},
       4},
  };

  Table table("Amortized planning cost — KernelCache across sweeps");
  table.set_header({"kernel family", "kernels", "sweep1[ms]", "sweep2+[ms]",
                    "uncached/sweep[ms]", "speedup", "hits", "misses"});

  struct JsonRow {
    std::string family;
    std::size_t kernels = 0;
    double sweep1_ms = 0, rest_ms = 0, uncached_ms = 0;
    std::uint64_t hits = 0, misses = 0;
  };
  std::vector<JsonRow> json_rows;

  for (const auto& fam : families) {
    Rng rng(seed);
    std::vector<std::int64_t> dims(static_cast<std::size_t>(fam.order), n);
    CooTensor sparse = random_coo(dims, n * n / 2, rng);
    sparse.sort_dedup();
    const SparsityStats stats = SparsityStats::from_coo(sparse);

    // Bind every kernel of the family once (dims only; no CSF needed to
    // measure planning).
    std::vector<Kernel> kernels;
    std::vector<std::vector<DenseTensor>> owned(fam.exprs.size());
    for (std::size_t e = 0; e < fam.exprs.size(); ++e) {
      Kernel k = Kernel::parse(fam.exprs[e]);
      const auto dim_of = [&](int id) -> std::int64_t {
        const int lvl = k.csf_level(id);
        return lvl >= 0 ? sparse.dim(lvl) : rank;
      };
      std::vector<const DenseTensor*> ptrs;
      owned[e].reserve(static_cast<std::size_t>(k.num_inputs()));
      for (int i = 0; i < k.num_inputs(); ++i) {
        if (i == k.sparse_input()) continue;
        std::vector<std::int64_t> fdims;
        for (int id : k.input(i).idx) fdims.push_back(dim_of(id));
        owned[e].push_back(DenseTensor(fdims));
        ptrs.push_back(&owned[e].back());
      }
      kernels.push_back(
          bind_kernel_dims(fam.exprs[e], sparse, ptrs, nullptr));
    }

    // Uncached baseline: a fresh search for every kernel, every sweep.
    Timer uncached_t;
    for (int s = 0; s < sweeps; ++s) {
      for (const Kernel& k : kernels) (void)make_plan(k, stats);
    }
    const double uncached_per_sweep =
        uncached_t.millis() / static_cast<double>(sweeps);

    // Cached: sweep 1 misses (search runs), later sweeps hit.
    KernelCache cache;
    Timer sweep1_t;
    for (const Kernel& k : kernels) (void)cache.get_or_plan(k, stats);
    const double sweep1_ms = sweep1_t.millis();
    Timer rest_t;
    for (int s = 1; s < sweeps; ++s) {
      for (const Kernel& k : kernels) (void)cache.get_or_plan(k, stats);
    }
    const double rest_ms =
        rest_t.millis() / static_cast<double>(sweeps - 1);
    const auto counters = cache.counters();

    table.add_row(
        {fam.name, std::to_string(kernels.size()), strfmt("%.3f", sweep1_ms),
         strfmt("%.4f", rest_ms), strfmt("%.3f", uncached_per_sweep),
         rest_ms > 0 ? strfmt("%.0fx", uncached_per_sweep / rest_ms) : "inf",
         std::to_string(counters.hits), std::to_string(counters.misses)});
    json_rows.push_back({fam.name, kernels.size(), sweep1_ms, rest_ms,
                         uncached_per_sweep, counters.hits,
                         counters.misses});
  }
  table.add_note("sweep1 = misses populate the cache (full search); "
                 "sweep2+ = per-sweep cost served from cache");
  table.add_note("uncached = make_plan per kernel per sweep (what iterative "
                 "drivers paid before the serving layer)");
  table.print(std::cout);

  if (!json.empty()) {
    std::ofstream os(json);
    os << "{\n  \"bench\": \"bench_search\",\n  \"mode\": \"cache\",\n"
       << "  \"unit\": \"ms\",\n  \"n\": " << n << ",\n  \"sweeps\": "
       << sweeps << ",\n  \"families\": [\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      const JsonRow& r = json_rows[i];
      os << "    {\"family\": \"" << r.family << "\", \"kernels\": "
         << r.kernels << ", \"sweep1_ms\": " << strfmt("%.4f", r.sweep1_ms)
         << ", \"rest_ms\": " << strfmt("%.4f", r.rest_ms)
         << ", \"uncached_ms\": " << strfmt("%.4f", r.uncached_ms)
         << ", \"hits\": " << r.hits << ", \"misses\": " << r.misses << "}"
         << (i + 1 < json_rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::cout << "wrote " << json << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_search");
  const auto* n = cli.add_int("n", 64, "sparse mode size for the stats");
  const auto* rank = cli.add_int("rank", 8, "dense rank");
  const auto* seed = cli.add_int("seed", 19, "generator seed");
  const auto* cache = cli.add_bool("cache", false,
                                   "measure amortized planning cost "
                                   "through the KernelCache");
  const auto* sweeps = cli.add_int("sweeps", 16, "iterations for --cache");
  const std::string* json =
      cli.add_string("json", "BENCH_search.json",
                     "output path for machine-readable rows ('' = skip)");
  cli.parse(argc, argv);

  if (*cache) {
    return run_cache_mode(*n, *rank, static_cast<std::uint64_t>(*seed),
                          static_cast<int>(*sweeps), *json);
  }

  struct Case {
    std::string name;
    std::string expr;
    int order;
  };
  const std::vector<Case> cases = {
      {"MTTKRP-3", mttkrp3_expr(), 3},
      {"TTMc-3", ttmc3_expr(), 3},
      {"TTTP-3", tttp3_expr(), 3},
      {"all-mode TTMc-3", allmode_ttmc3_expr(), 3},
      {"MTTKRP-4", mttkrp4_expr(), 4},
      {"TTMc-4", ttmc4_expr(), 4},
  };

  Table table("Section 4 — search-space sizes and Algorithm 1 cost");
  table.set_header({"kernel", "paths", "exec paths", "orders(best path)",
                    "orders(CSF)", "DP subprobs", "DP evals", "DP[ms]",
                    "enum[ms]", "agree"});

  struct JsonRow {
    std::string kernel;
    int paths = 0;
    std::size_t exec_paths = 0;
    double orders_csf = 0;
    std::int64_t dp_subproblems = 0, dp_evaluations = 0;
    double dp_ms = 0, enum_ms = 0;
    std::string agree;
  };
  std::vector<JsonRow> json_rows;

  // Exact-vs-anytime comparison: the same kernel planned by both
  // strategies, uncapped (anytime must land on the exact flop choice) and
  // node-budgeted (shows what the budget buys and what gap it leaves).
  struct AnytimeRow {
    std::string kernel;
    std::string budget;  ///< "uncapped" | "nodes=<N>"
    double cost_ratio = 0;  ///< anytime plan flops / exact plan flops
    std::int64_t nodes_expanded = 0;
    int restarts = 0;
    double gap = 0;
    bool exhausted = false;
    double exact_plan_s = 0, anytime_plan_s = 0;
  };
  std::vector<AnytimeRow> anytime_rows;

  for (const auto& c : cases) {
    Rng rng(static_cast<std::uint64_t>(*seed));
    std::vector<std::int64_t> dims(static_cast<std::size_t>(c.order), *n);
    CooTensor t = random_coo(dims, *n * *n / 2, rng);
    std::vector<std::pair<std::string, std::int64_t>> dense_dims;
    for (const char* idx : {"r", "s", "t", "u", "a"}) {
      dense_dims.emplace_back(idx, *rank);
    }
    auto p = make_problem(c.expr, std::move(t), dense_dims, rng);
    const Kernel& kernel = p->kernel();

    int total = 0;
    const auto exec_paths = executable_paths(kernel, p->bound.stats, &total);
    const ContractionPath& best = exec_paths.front();
    const double orders_free = count_orders(kernel, best, false);
    const double orders_csf = count_orders(kernel, best, true);

    const BoundedBufferBlasCost cost(2, 1, &p->bound.stats, true);
    Timer dp_timer;
    const DpResult dp = optimal_order(kernel, best, cost);
    const double dp_ms = dp_timer.millis();

    // Enumerate the same space (CSF-restricted), capped to keep the bench
    // bounded; "agree" checks the DP matched the enumerated minimum when
    // the full space was visited.
    EnumerateOptions eopts;
    eopts.limit = 2000000;
    Timer enum_timer;
    const EnumerationSearchResult brute =
        search_orders(kernel, best, cost, eopts);
    const double enum_ms = enum_timer.millis();
    const bool complete =
        static_cast<double>(brute.visited) >= orders_csf;
    std::string agree = "capped";
    if (complete) {
      agree = (dp.feasible == brute.feasible &&
               (!dp.feasible || dp.best_cost == brute.best_cost))
                  ? "yes"
                  : "NO";
    }

    table.add_row({c.name, std::to_string(total),
                   std::to_string(exec_paths.size()),
                   human_count(orders_free), human_count(orders_csf),
                   std::to_string(dp.subproblems),
                   std::to_string(dp.evaluations), strfmt("%.2f", dp_ms),
                   strfmt("%.2f", enum_ms), agree});
    json_rows.push_back({c.name, total, exec_paths.size(), orders_csf,
                         static_cast<std::int64_t>(dp.subproblems),
                         static_cast<std::int64_t>(dp.evaluations), dp_ms,
                         enum_ms, agree});

    // Strategy comparison on the same kernel + stats. Wall-clock includes
    // the verifier pass anytime plans always pay before serving.
    Timer exact_t;
    const Plan exact_plan = make_plan(kernel, p->bound.stats);
    const double exact_s = exact_t.millis() / 1000.0;
    for (const std::int64_t cap : {std::int64_t{0}, std::int64_t{256}}) {
      PlannerOptions ao;
      ao.strategy = StrategyKind::kAnytime;
      ao.budget.max_nodes = cap;
      Timer anytime_t;
      const Plan anytime_plan = make_plan(kernel, p->bound.stats, ao);
      const double anytime_s = anytime_t.millis() / 1000.0;
      anytime_rows.push_back(
          {c.name, cap == 0 ? "uncapped" : strfmt("nodes=%lld",
                                                  static_cast<long long>(cap)),
           exact_plan.flops > 0 ? anytime_plan.flops / exact_plan.flops : 1.0,
           anytime_plan.nodes_expanded, anytime_plan.restarts,
           anytime_plan.optimality_gap, anytime_plan.budget_exhausted,
           exact_s, anytime_s});
    }
  }
  table.add_note("upper bound on paths: n!(n-1)!/2^(n-1) (Section 4.1.1); "
                 "orders per path: prod |I_i|! (/k_i! with CSF order)");
  table.add_note("DP: O(N^2 2^m) subproblems, O(Nm) work each "
                 "(Section 4.2)");
  table.print(std::cout);

  Table cmp("Exact vs anytime planner strategy");
  cmp.set_header({"kernel", "budget", "cost ratio", "nodes", "restarts",
                  "gap", "exhausted", "exact[s]", "anytime[s]"});
  for (const AnytimeRow& r : anytime_rows) {
    cmp.add_row({r.kernel, r.budget, strfmt("%.4f", r.cost_ratio),
                 std::to_string(r.nodes_expanded),
                 std::to_string(r.restarts), strfmt("%.4f", r.gap),
                 r.exhausted ? "yes" : "no", strfmt("%.4f", r.exact_plan_s),
                 strfmt("%.4f", r.anytime_plan_s)});
  }
  cmp.add_note("cost ratio = anytime plan flops / exact plan flops "
               "(1.0000 = flop-optimal choice recovered)");
  cmp.add_note("gap = proven bound: best_flops/flops_lower_bound - 1; "
               "0 when the pruned BFS completed without dropping states");
  cmp.print(std::cout);

  if (!json->empty()) {
    std::ofstream os(*json);
    os << "{\n  \"bench\": \"bench_search\",\n  \"mode\": \"search-space\","
       << "\n  \"unit\": \"ms\",\n  \"n\": " << *n << ",\n  \"rank\": "
       << *rank << ",\n  \"seed\": " << *seed << ",\n  \"kernels\": [\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      const JsonRow& r = json_rows[i];
      os << "    {\"kernel\": \"" << r.kernel << "\", \"paths\": " << r.paths
         << ", \"exec_paths\": " << r.exec_paths << ", \"orders_csf\": "
         << strfmt("%.0f", r.orders_csf) << ", \"dp_subproblems\": "
         << r.dp_subproblems << ", \"dp_evaluations\": " << r.dp_evaluations
         << ", \"dp_ms\": " << strfmt("%.3f", r.dp_ms) << ", \"enum_ms\": "
         << strfmt("%.3f", r.enum_ms) << ", \"agree\": \"" << r.agree
         << "\"}" << (i + 1 < json_rows.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"anytime\": [\n";
    for (std::size_t i = 0; i < anytime_rows.size(); ++i) {
      const AnytimeRow& r = anytime_rows[i];
      os << "    {\"kernel\": \"" << r.kernel << "\", \"budget\": \""
         << r.budget << "\", \"cost_ratio\": " << strfmt("%.6f", r.cost_ratio)
         << ", \"nodes_expanded\": " << r.nodes_expanded
         << ", \"restarts\": " << r.restarts << ", \"gap\": "
         << strfmt("%.6f", r.gap) << ", \"budget_exhausted\": "
         << (r.exhausted ? "true" : "false") << ", \"exact_plan_s\": "
         << strfmt("%.6f", r.exact_plan_s) << ", \"anytime_plan_s\": "
         << strfmt("%.6f", r.anytime_plan_s) << "}"
         << (i + 1 < anytime_rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::cout << "wrote " << *json << "\n";
  }
  return 0;
}
